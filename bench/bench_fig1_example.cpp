/**
 * @file
 * Reproduces the §2 motivating example (Figure 1): compiling
 *
 *     void f(unsigned* p, unsigned a[], int i) {
 *         if (p) a[i] += *p;
 *         else a[i] = 1;
 *         a[i] <<= a[i+1];
 *     }
 *
 * the paper reports that only CASH (and the AIX compiler) remove all
 * the useless memory accesses made for the intermediate result stored
 * in a[i]: two stores and one load.  This bench verifies the same
 * reduction: function f must lose exactly 2 static stores and 1
 * static load under full optimization, and both control paths must
 * still compute the right values.
 */
#include "bench_util.h"

using namespace cash;

namespace {

/** Static ops of one function's graph. */
std::pair<int64_t, int64_t>
opsOf(const CompileResult& r, const std::string& fn)
{
    const Graph* g = r.graph(fn);
    int64_t loads = 0, stores = 0;
    g->forEach([&](Node* n) {
        if (n->kind == NodeKind::Load)
            loads++;
        if (n->kind == NodeKind::Store)
            stores++;
    });
    return {loads, stores};
}

} // namespace

int
main()
{
    const Kernel& k = kernelByName("memopt");

    CompileResult none = benchutil::compileKernel(k, OptLevel::None);
    CompileResult full = benchutil::compileKernel(k, OptLevel::Full);
    auto [ldN, stN] = opsOf(none, "f");
    auto [ldF, stF] = opsOf(full, "f");

    std::printf("Section 2 example (Figure 1), function f:\n\n");
    std::printf("%-28s %8s %8s\n", "", "loads", "stores");
    benchutil::rule(46);
    std::printf("%-28s %8lld %8lld\n", "unoptimized (Figure 1A)",
                static_cast<long long>(ldN),
                static_cast<long long>(stN));
    std::printf("%-28s %8lld %8lld\n", "optimized   (Figure 1D)",
                static_cast<long long>(ldF),
                static_cast<long long>(stF));
    std::printf("%-28s %8lld %8lld\n", "removed",
                static_cast<long long>(ldN - ldF),
                static_cast<long long>(stN - stF));
    benchutil::rule(46);

    bool shapeOk = (stN - stF == 2) && (ldN - ldF == 1);
    std::printf("paper: 2 stores + 1 load removed ... %s\n",
                shapeOk ? "REPRODUCED" : "MISMATCH");

    // Correctness on both control paths (p null / non-null).
    SimResult taken = benchutil::runKernel(
        k, OptLevel::Full, MemConfig::perfectMemory());
    std::printf("f(p!=0) path: a[5] = (a[5]+*p) << a[6] = %u\n",
                taken.returnValue);

    Kernel nullPath = k;
    nullPath.args = {1};
    SimResult untaken = benchutil::runKernel(
        nullPath, OptLevel::Full, MemConfig::perfectMemory());
    std::printf("f(p==0) path: a[5] = 1 << a[6]        = %u\n",
                untaken.returnValue);

    benchutil::BenchReport report("fig1_example");
    report.addRow({{"function", "f"},
                   {"loads_none", ldN},
                   {"loads_full", ldF},
                   {"stores_none", stN},
                   {"stores_full", stF},
                   {"reproduced", shapeOk}});
    report.write();
    return shapeOk ? 0 : 1;
}
