/**
 * @file
 * Reproduces Figure 18: "static and dynamic memory operations removed
 * by optimization" — per benchmark, the percentage of static loads and
 * stores removed by the memory optimizations, plus the dynamic memory
 * operation counts executed on the simulator (unoptimized versus fully
 * optimized).
 *
 * Paper's qualitative result: up to ~28% of static loads and ~8% of
 * static stores are removed; dynamic reductions appear on a subset of
 * the programs.
 */
#include "bench_util.h"

using namespace cash;

int
main()
{
    std::printf("Figure 18: memory operations removed by "
                "optimization\n\n");
    std::printf("%-12s | %7s %7s %7s | %7s %7s %7s | %9s %9s %8s\n",
                "", "static", "static", "loads", "static", "static",
                "stores", "dynamic", "dynamic", "dyn");
    std::printf("%-12s | %7s %7s %7s | %7s %7s %7s | %9s %9s %8s\n",
                "kernel", "ld none", "ld full", "removed", "st none",
                "st full", "removed", "ops none", "ops full", "removed");
    benchutil::rule(100);

    benchutil::BenchReport report("fig18_memops");
    double sumLd = 0, sumSt = 0;
    int n = 0;
    for (const Kernel& k : benchutil::suiteForRun()) {
        CompileResult none = benchutil::compileKernel(k, OptLevel::None);
        CompileResult full = benchutil::compileKernel(k, OptLevel::Full);
        int64_t ldN = none.staticLoads(), ldF = full.staticLoads();
        int64_t stN = none.staticStores(), stF = full.staticStores();

        SimResult dynNone =
            benchutil::runKernel(k, OptLevel::None,
                                 MemConfig::perfectMemory());
        SimResult dynFull =
            benchutil::runKernel(k, OptLevel::Full,
                                 MemConfig::perfectMemory());
        int64_t dN = dynNone.stats.get("sim.dynLoads") +
                     dynNone.stats.get("sim.dynStores");
        int64_t dF = dynFull.stats.get("sim.dynLoads") +
                     dynFull.stats.get("sim.dynStores");

        std::printf("%-12s | %7lld %7lld %7s | %7lld %7lld %7s | "
                    "%9lld %9lld %8s\n",
                    k.name.c_str(), static_cast<long long>(ldN),
                    static_cast<long long>(ldF),
                    benchutil::pct(ldN - ldF, ldN).c_str(),
                    static_cast<long long>(stN),
                    static_cast<long long>(stF),
                    benchutil::pct(stN - stF, stN).c_str(),
                    static_cast<long long>(dN),
                    static_cast<long long>(dF),
                    benchutil::pct(dN - dF, dN).c_str());
        report.addRow({{"kernel", k.name},
                       {"static_loads_none", ldN},
                       {"static_loads_full", ldF},
                       {"static_stores_none", stN},
                       {"static_stores_full", stF},
                       {"dyn_memops_none", dN},
                       {"dyn_memops_full", dF}});
        sumLd += 100.0 * static_cast<double>(ldN - ldF) /
                 static_cast<double>(ldN ? ldN : 1);
        sumSt += 100.0 * static_cast<double>(stN - stF) /
                 static_cast<double>(stN ? stN : 1);
        n++;
    }
    benchutil::rule(100);
    std::printf("mean static loads removed:  %s\n",
                fmtDouble(sumLd / n, 1).c_str());
    std::printf("mean static stores removed: %s\n",
                fmtDouble(sumSt / n, 1).c_str());
    std::printf("\nPaper: up to 28%% of static loads and up to 8%% of "
                "static stores removed;\ndynamic reductions on some "
                "programs only.\n");
    report.meta("mean_static_loads_removed_pct", sumLd / n);
    report.meta("mean_static_stores_removed_pct", sumSt / n);
    report.write();
    return 0;
}
