/**
 * @file
 * Interprocedural dependence-graph slicing: how many cross-call token
 * edges the whole-program MOD/REF layer (analysis/modref.h +
 * interproc_token_pruning) removes, and what that buys in simulated
 * cycles.
 *
 * For every multi-function kernel in the suite the bench compiles at
 * -O3 with the interprocedural layer off (`ipo=off`: every call reads
 * and writes Top, the pre-PR model) and on (the default), counts the
 * direct token edges with a Call endpoint in the final graphs, and
 * runs both binaries on realistic dual-ported memory.  Three gates
 * make this a self-checking acceptance artifact:
 *
 *   1. on the dedicated multi-function kernels (helperdot, callchain,
 *      recsum) the layer must remove >= 30% of inter-call token edges;
 *   2. every pruned program must pass the full lint battery — with the
 *      independently rederived interprocedural checker model — with
 *      zero error findings (the --analyze-strict equivalent);
 *   3. a graph.corrupt-token canary injected into a pruned
 *      multi-function kernel must still be caught by the extended
 *      checker (the differential proof that pruning did not blunt it).
 *
 * Writes BENCH_interproc.json (schema cash-bench-v1).
 */
#include "bench_util.h"

#include "analysis/interproc.h"
#include "analysis/lint.h"
#include "analysis/ordering_checker.h"
#include "opt/opt_util.h"
#include "support/fault_injection.h"

using namespace cash;

namespace {

/**
 * Inter-call token edges: ordered call pairs (a before b by a token
 * path).  Counting the closure rather than raw graph edges makes the
 * metric independent of how fan-in happens to be represented
 * (combines vs. chains) — it is exactly the call-to-call
 * serialization the token graph imposes, which is what the MOD/REF
 * layer exists to cut.
 */
int64_t
interCallTokenEdges(const CompileResult& r)
{
    int64_t edges = 0;
    for (const auto& g : r.graphs) {
        OrderingChecker checker(*g, &r.cfg->oracle, r.layout.get());
        for (const Node* a : checker.sideEffects())
            for (const Node* b : checker.sideEffects()) {
                if (a == b || a->kind != NodeKind::Call ||
                    b->kind != NodeKind::Call)
                    continue;
                if (checker.tokenReaches(a, b))
                    edges++;
            }
    }
    return edges;
}

/** Calls in the final graphs (multi-function kernel detector). */
int64_t
callNodes(const CompileResult& r)
{
    int64_t calls = 0;
    for (const auto& g : r.graphs)
        g->forEach([&](Node* n) {
            if (n->kind == NodeKind::Call)
                calls++;
        });
    return calls;
}

/** The --analyze-strict equivalent: full battery + interproc model. */
int64_t
lintErrors(const CompileResult& r)
{
    InterprocModel interproc(r.graphPtrs(), r.cfg->paramLocation,
                             *r.layout);
    LintContext ctx;
    ctx.oracle = &r.cfg->oracle;
    ctx.layout = r.layout.get();
    ctx.interproc = &interproc;
    return runLints(r.graphPtrs(), ctx).errors();
}

} // namespace

int
main()
{
    std::printf("Interprocedural token pruning: cross-call edges and "
                "cycles at -O3,\nipo=off (calls read/write Top) vs. "
                "ipo=on (MOD/REF summaries)\n\n");
    std::printf("%-12s %6s %10s %10s %8s %10s %10s %8s\n", "kernel",
                "calls", "edges-off", "edges-on", "removed",
                "cyc-off", "cyc-on", "speedup");
    benchutil::rule(82);

    benchutil::BenchReport report("interproc");
    MemConfig mem = MemConfig::realistic(2);

    // The kernels the >= 30% acceptance gate is measured on.
    const std::vector<std::string> gated = {"helperdot", "callchain",
                                            "recsum"};
    int64_t gatedOff = 0, gatedOn = 0;
    int64_t lintErrorTotal = 0;
    int multiFunction = 0;

    for (const Kernel& k : benchutil::suiteForRun()) {
        CompileResult off = compileSource(
            k.source,
            CompileOptions().opt(OptLevel::Full).interprocOpt(false));
        if (callNodes(off) == 0)
            continue; // single-function kernel: nothing cross-call
        multiFunction++;

        CompileResult on = compileSource(
            k.source, CompileOptions().opt(OptLevel::Full));
        int64_t edgesOff = interCallTokenEdges(off);
        int64_t edgesOn = interCallTokenEdges(on);
        int64_t pruned = on.stats.get(
            "opt.interproc_token_pruning.pruned_edges");
        lintErrorTotal += lintErrors(on);

        DataflowSimulator simOff(off.graphPtrs(), *off.layout, mem);
        DataflowSimulator simOn(on.graphPtrs(), *on.layout, mem);
        SimResult ro = simOff.run(k.entry, k.args);
        SimResult rn = simOn.run(k.entry, k.args);
        if (ro.returnValue != rn.returnValue) {
            std::fprintf(stderr,
                         "FAIL %s: ipo=off returned %u, ipo=on %u\n",
                         k.name.c_str(), ro.returnValue,
                         rn.returnValue);
            return 1;
        }

        bool isGated = false;
        for (const std::string& g : gated)
            if (g == k.name)
                isGated = true;
        if (isGated) {
            gatedOff += edgesOff;
            gatedOn += edgesOn;
        }

        double speed = static_cast<double>(ro.cycles) /
                       static_cast<double>(rn.cycles ? rn.cycles : 1);
        std::printf("%-12s %6lld %10lld %10lld %8s %10llu %10llu "
                    "%7sx\n",
                    k.name.c_str(),
                    static_cast<long long>(callNodes(on)),
                    static_cast<long long>(edgesOff),
                    static_cast<long long>(edgesOn),
                    benchutil::pct(edgesOff - edgesOn, edgesOff)
                        .c_str(),
                    static_cast<unsigned long long>(ro.cycles),
                    static_cast<unsigned long long>(rn.cycles),
                    fmtDouble(speed, 2).c_str());
        report.addRow({{"kernel", k.name},
                       {"calls", callNodes(on)},
                       {"edges_ipo_off", edgesOff},
                       {"edges_ipo_on", edgesOn},
                       {"pass_pruned_edges", pruned},
                       {"cycles_ipo_off", ro.cycles},
                       {"cycles_ipo_on", rn.cycles},
                       {"speedup", speed},
                       {"gated", isGated}});
    }
    benchutil::rule(82);

    double removedPct =
        gatedOff ? 100.0 * static_cast<double>(gatedOff - gatedOn) /
                       static_cast<double>(gatedOff)
                 : 0.0;
    std::printf("\ngated kernels (helperdot, callchain, recsum): "
                "%lld -> %lld inter-call token\nedges (%s removed; "
                "acceptance gate: >= 30%%)\n",
                static_cast<long long>(gatedOff),
                static_cast<long long>(gatedOn),
                benchutil::pct(gatedOff - gatedOn, gatedOff).c_str());
    report.meta("gated_edges_ipo_off", gatedOff);
    report.meta("gated_edges_ipo_on", gatedOn);
    report.meta("gated_removed_pct", removedPct);
    report.meta("multi_function_kernels", multiFunction);
    report.meta("lint_errors_on_pruned", lintErrorTotal);

    // Canary differential: corrupt a token edge in a *pruned*
    // multi-function kernel and require the interprocedural checker
    // to flag it (detection must survive the sparser token graph).
    const Kernel& canaryKernel = kernelByName("callchain");
    FaultPlan plan =
        FaultPlan::parse("graph.corrupt-token:pass=dead_code,round=1");
    CompileResult corrupted = compileSource(
        canaryKernel.source, CompileOptions()
                                 .passes({"dead_code"})
                                 .verification(false)
                                 .inject(&plan));
    int64_t canaryErrors = lintErrors(corrupted);
    std::printf("canary: graph.corrupt-token on callchain -> %lld "
                "checker error(s)\n",
                static_cast<long long>(canaryErrors));
    report.meta("canary_errors", canaryErrors);
    report.write();

    if (gatedOff == 0 ||
        gatedOff - gatedOn <
            (gatedOff * 3 + 9) / 10) { // ceil(30%) without floats
        std::fprintf(stderr,
                     "FAIL: interprocedural layer removed < 30%% of "
                     "inter-call token edges\n");
        return 1;
    }
    if (lintErrorTotal != 0) {
        std::fprintf(stderr, "FAIL: pruned kernels are not clean "
                             "under the interprocedural checker\n");
        return 1;
    }
    if (canaryErrors == 0) {
        std::fprintf(stderr, "FAIL: injected token corruption escaped "
                             "the interprocedural checker\n");
        return 1;
    }
    return 0;
}
