/**
 * @file
 * Compiler throughput: functions optimized per wall-clock second at
 * -j1 versus -jN.
 *
 * CASH compiles every function to an independent Pegasus graph (§3),
 * so the optimization phase is embarrassingly parallel; this bench
 * pins down how well the work-stealing pool converts cores into
 * compile throughput, and cross-checks that the parallel compile is
 * byte-identical to the serial one (stats modulo wall-clock timing,
 * and per-graph IR shape).
 *
 * Workloads:
 *   - "suite": every Table-2 kernel compiled per job count (few
 *     functions each — the many-small-translation-units shape);
 *   - "wide": one synthetic translation unit with many independent
 *     loop-nest functions (the one-big-file shape that actually
 *     exercises per-function parallelism inside a single compile).
 */
#include <chrono>

#include "bench_util.h"
#include "support/thread_pool.h"

using namespace cash;

namespace {

using Clock = std::chrono::steady_clock;

/** One synthetic translation unit with @p functions loop kernels. */
std::string
wideSource(int functions)
{
    std::string src = "int data[512];\nint acc[512];\nint tab[64];\n";
    for (int f = 0; f < functions; f++) {
        std::string fn = std::to_string(f);
        src += "int work" + fn +
               "(int n) {\n"
               "    int i; int s = " + fn + ";\n"
               "    for (i = 0; i < n; i++) {\n"
               "        data[i] = i * " + std::to_string(f + 1) + ";\n"
               "        acc[i] = acc[i] + data[i] + tab[i & 63];\n"
               "        s = s + acc[i];\n"
               "    }\n"
               "    for (i = 1; i < n; i++)\n"
               "        acc[i] = acc[i] + acc[i - 1];\n"
               "    return s + acc[n - 1];\n"
               "}\n";
    }
    return src;
}

/** Stats minus wall-clock keys: must match across job counts. */
std::string
statsFingerprint(const StatSet& stats)
{
    std::string out;
    for (const auto& [k, v] : stats.all()) {
        if (k.rfind("time.", 0) == 0)
            continue;
        if (k.size() > 8 && k.compare(k.size() - 8, 8, ".time_us") == 0)
            continue;
        out += k + "=" + std::to_string(v) + ";";
    }
    return out;
}

struct Measurement
{
    int64_t functions = 0;   ///< Functions optimized over all reps.
    double wallUs = 0;
    std::string fingerprint; ///< Determinism cross-check.
};

Measurement
measureWide(const std::string& src, int jobs, int reps)
{
    Measurement m;
    Clock::time_point t0 = Clock::now();
    for (int rep = 0; rep < reps; rep++) {
        CompileResult r = compileSource(
            src, CompileOptions().opt(OptLevel::Full).jobs(jobs));
        m.functions += static_cast<int64_t>(r.graphs.size());
        if (rep == 0)
            m.fingerprint = statsFingerprint(r.stats);
    }
    m.wallUs = std::chrono::duration<double, std::micro>(Clock::now() -
                                                         t0)
                   .count();
    return m;
}

Measurement
measureSuite(int jobs, int reps)
{
    Measurement m;
    std::vector<Kernel> suite = benchutil::suiteForRun();
    Clock::time_point t0 = Clock::now();
    for (int rep = 0; rep < reps; rep++) {
        for (const Kernel& k : suite) {
            CompileResult r = compileSource(
                k.source,
                CompileOptions().opt(OptLevel::Full).jobs(jobs));
            m.functions += static_cast<int64_t>(r.graphs.size());
            if (rep == 0)
                m.fingerprint += statsFingerprint(r.stats);
        }
    }
    m.wallUs = std::chrono::duration<double, std::micro>(Clock::now() -
                                                         t0)
                   .count();
    return m;
}

void
reportRows(benchutil::BenchReport& report, const std::string& workload,
           int jobs, const Measurement& m, double baselineUs)
{
    double perSec = m.wallUs > 0
                        ? 1e6 * static_cast<double>(m.functions) /
                              m.wallUs
                        : 0;
    double speedup = m.wallUs > 0 ? baselineUs / m.wallUs : 0;
    report.addRow({{"workload", workload},
                   {"jobs", jobs},
                   {"functions", m.functions},
                   {"wall_us", static_cast<int64_t>(m.wallUs)},
                   {"funcs_per_sec", perSec},
                   {"speedup_vs_j1", speedup}});
    std::printf("%-8s %5d %10lld %12.0f %14.0f %10.2fx\n",
                workload.c_str(), jobs,
                static_cast<long long>(m.functions), m.wallUs, perSec,
                speedup);
}

} // namespace

int
main()
{
    const bool smoke = benchutil::smokeMode();
    const int hw = ThreadPool::hardwareConcurrency();
    const int wideFuncs = smoke ? 8 : 48;
    const int wideReps = smoke ? 1 : 5;
    const int suiteReps = smoke ? 1 : 3;

    std::vector<int> jobCounts = {1};
    for (int j = 2; j < hw; j *= 2)
        jobCounts.push_back(j);
    if (hw > 1)
        jobCounts.push_back(hw);

    std::printf("Compile throughput: per-function optimization on the "
                "work-stealing pool\n");
    std::printf("(%d hardware threads; wide = one %d-function unit, "
                "suite = Table-2 kernels)\n\n",
                hw, wideFuncs);
    std::printf("%-8s %5s %10s %12s %14s %11s\n", "workload", "jobs",
                "functions", "wall_us", "funcs/sec", "speedup");
    benchutil::rule(66);

    benchutil::BenchReport report("compile_throughput");
    report.meta("hardware_threads", hw);
    report.meta("wide_functions", wideFuncs);
    report.meta("wide_reps", wideReps);
    report.meta("suite_reps", suiteReps);

    const std::string wide = wideSource(wideFuncs);
    // Warm-up (first-touch allocations, kernel-suite construction).
    measureWide(wide, 1, 1);

    std::string wantWide, wantSuite;
    double baseWideUs = 0, baseSuiteUs = 0;
    for (int jobs : jobCounts) {
        Measurement mw = measureWide(wide, jobs, wideReps);
        if (jobs == 1) {
            baseWideUs = mw.wallUs;
            wantWide = mw.fingerprint;
        } else if (mw.fingerprint != wantWide) {
            std::fprintf(stderr,
                         "bench: -j%d wide compile diverged from -j1\n",
                         jobs);
            return 1;
        }
        reportRows(report, "wide", jobs, mw, baseWideUs);
    }
    for (int jobs : jobCounts) {
        Measurement ms = measureSuite(jobs, suiteReps);
        if (jobs == 1) {
            baseSuiteUs = ms.wallUs;
            wantSuite = ms.fingerprint;
        } else if (ms.fingerprint != wantSuite) {
            std::fprintf(stderr,
                         "bench: -j%d suite compile diverged from -j1\n",
                         jobs);
            return 1;
        }
        reportRows(report, "suite", jobs, ms, baseSuiteUs);
    }

    report.write();
    return 0;
}
