/**
 * @file
 * Reproduces the §6.3 loop-decoupling experiment (Figures 15-17): a
 * loop whose accesses carry a constant dependence distance is sliced
 * into independent loops whose slip is bounded at run time by a token
 * generator tk(n).
 *
 * Workloads: the distance-3 stencil (the paper's a[i]/a[i+3] shape)
 * and sweeps of the dependence distance, demonstrating that larger
 * distances permit more slip and hence more memory-level parallelism.
 * Also confirms the paper's observation that the transformation is
 * *rarely applicable*: across the whole kernel suite only a couple of
 * loops qualify.
 */
#include "bench_util.h"

using namespace cash;

namespace {

std::string
stencilSource(int distance)
{
    std::string d = std::to_string(distance);
    return R"(
int cells[8192];
int stencil(int n)
{
    int i;
    for (i = 0; i + )" + d + R"( < n; i++)
        cells[i + )" + d + R"(] = (cells[i] + cells[i + )" + d +
           R"(]) >> 1;
    return cells[n - 1];
}
int stencil_run(int n)
{
    int i;
    for (i = 0; i < n; i++)
        cells[i] = i * 37 % 256;
    return stencil(n);
}
)";
}

} // namespace

int
main()
{
    std::printf("Figures 15-17: loop decoupling with token generators "
                "tk(d)\n(realistic dual-ported memory, distance-d "
                "stencil, n = 4096)\n\n");
    std::printf("%-10s %12s %12s %9s %10s\n", "distance", "medium(cyc)",
                "full (cyc)", "full x", "tokengens");
    benchutil::rule(58);

    benchutil::BenchReport report("fig16_decoupling");
    std::vector<int> distances = {1, 2, 3, 4, 8};
    uint32_t n = 4096;
    if (benchutil::smokeMode()) {
        distances = {3};
        n = 512;
    }
    for (int d : distances) {
        Kernel k;
        k.source = stencilSource(d);
        k.entry = "stencil_run";
        k.args = {n};
        MemConfig mem = MemConfig::realistic(2);
        SimResult rm = benchutil::runKernel(k, OptLevel::Medium, mem);
        SimResult rf = benchutil::runKernel(k, OptLevel::Full, mem);
        CompileResult full =
            benchutil::compileKernel(k, OptLevel::Full);
        int64_t tks = full.stats.get("opt.ring_split.tokengens");
        double speed = static_cast<double>(rm.cycles) /
                       static_cast<double>(rf.cycles ? rf.cycles : 1);
        std::printf("%-10d %12llu %12llu %9s %10lld\n", d,
                    static_cast<unsigned long long>(rm.cycles),
                    static_cast<unsigned long long>(rf.cycles),
                    fmtDouble(speed, 2).c_str(),
                    static_cast<long long>(tks));
        report.addRow({{"distance", d},
                       {"n", static_cast<int64_t>(n)},
                       {"cycles_medium", rm.cycles},
                       {"cycles_full", rf.cycles},
                       {"speedup_full", speed},
                       {"tokengens", tks}});
    }
    benchutil::rule(58);

    // Applicability across the suite (paper: 28 loops in all of
    // MediaBench+SPEC — i.e. rarely).
    int applicable = 0;
    for (const Kernel& k : benchutil::suiteForRun()) {
        CompileResult r = benchutil::compileKernel(k, OptLevel::Full);
        if (r.stats.get("opt.loop_decoupling.loops") > 0)
            applicable++;
    }
    std::printf("\nkernels where loop decoupling applied: %d of %zu "
                "(paper: 28 loops across\nits whole suite — the "
                "transformation is powerful but rarely applicable,\n"
                "\"more applicable to Fortran-type loops\").\n",
                applicable, kernelSuite().size());
    report.meta("kernels_with_decoupling", applicable);
    report.write();
    return 0;
}
