/**
 * @file
 * Tiled-fabric placement sweep (docs/FABRIC.md): cost of leaving the
 * paper's idealized fabric for a bounded NxM grid of tiles.
 *
 * For each benchsuite kernel this sweeps grid sizes 1x1/2x2/4x4/8x8
 * (unit hop latency, unbounded credits), reports the placement
 * quality (cut edges, occupancy) and the simulated slowdown versus
 * the idealized 1x1 fabric, and writes BENCH_fabric_placement.json.
 *
 * The 1x1 column doubles as a regression gate: a trivial fabric must
 * reproduce the no-fabric cycle count *exactly* (the simulator takes
 * the fabric-free fast path), so any divergence fails the run.
 */
#include "bench_util.h"

#include "fabric/placer.h"

using namespace cash;

namespace {

struct FabricRun
{
    SimResult sim;
    Placement quality;  ///< Entry-graph placement (largest weight).
};

FabricRun
runOnFabric(const CompileResult& r, const Kernel& k,
            const FabricModel& fm)
{
    FabricRun out;
    FabricSession fs;
    const FabricSession* fsPtr = nullptr;
    if (!fm.trivial()) {
        fs = placeAll(r.graphPtrs(), fm);
        fsPtr = &fs;
        auto it = fs.placements.find(k.entry);
        if (it != fs.placements.end())
            out.quality = it->second;
    }
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory(), SimEngine::Macro,
                          fsPtr);
    out.sim = sim.run(k.entry, k.args);
    return out;
}

} // namespace

int
main()
{
    std::vector<std::string> fabrics = {"1x1", "2x2", "4x4", "8x8"};
    if (benchutil::smokeMode())
        fabrics = {"1x1", "2x2"};
    benchutil::BenchReport report("fabric_placement");
    report.meta("mem", "perfect");
    report.meta("engine", "macro");

    std::printf("Tiled-fabric placement sweep: cycle cost of mapping "
                "each kernel onto an\nNxM tile grid (unit hop "
                "latency, unbounded credits) versus the paper's\n"
                "idealized fabric (1x1).  Slowdown is cycles/cycles"
                "(1x1); cut%% is the\nfraction of data+token edges "
                "crossing tiles in the entry graph.\n\n");
    std::printf("%-12s %-6s %12s %9s %7s %8s %10s\n", "kernel",
                "fabric", "cycles", "slowdown", "cut%", "max/tile",
                "crossings");
    benchutil::rule(72);

    bool gateOk = true;
    for (const Kernel& k : benchutil::suiteForRun()) {
        CompileResult r = benchutil::compileKernel(k, OptLevel::Full);
        DataflowSimulator base(r.graphPtrs(), *r.layout,
                               MemConfig::perfectMemory());
        SimResult baseRes = base.run(k.entry, k.args);

        uint64_t oneByOne = 0;
        for (const std::string& spec : fabrics) {
            FabricModel fm;
            Status st = FabricModel::parse(spec, &fm);
            if (!st.isOk()) {
                std::fprintf(stderr, "bench: %s\n",
                             st.message().c_str());
                return 1;
            }
            FabricRun fr = runOnFabric(r, k, fm);
            if (!fr.sim.ok()) {
                std::fprintf(stderr, "bench: %s on %s failed: %s\n",
                             k.name.c_str(), spec.c_str(),
                             fr.sim.error.c_str());
                return 1;
            }
            if (fm.trivial()) {
                oneByOne = fr.sim.cycles;
                // Gate: trivial fabric == no-fabric baseline, both
                // in cycles and in the returned value.
                if (fr.sim.cycles != baseRes.cycles ||
                    fr.sim.returnValue != baseRes.returnValue) {
                    std::fprintf(stderr,
                                 "bench: GATE FAILED: %s 1x1 fabric "
                                 "diverges from baseline "
                                 "(%llu vs %llu cycles)\n",
                                 k.name.c_str(),
                                 static_cast<unsigned long long>(
                                     fr.sim.cycles),
                                 static_cast<unsigned long long>(
                                     baseRes.cycles));
                    gateOk = false;
                }
            } else if (fr.sim.returnValue != baseRes.returnValue) {
                std::fprintf(stderr,
                             "bench: GATE FAILED: %s on %s returned "
                             "%u, expected %u\n",
                             k.name.c_str(), spec.c_str(),
                             fr.sim.returnValue, baseRes.returnValue);
                gateOk = false;
            }

            const Placement& q = fr.quality;
            double slowdown =
                oneByOne ? static_cast<double>(fr.sim.cycles) /
                               static_cast<double>(oneByOne)
                         : 1.0;
            double cutPct =
                q.totalEdges ? 100.0 * static_cast<double>(q.cutEdges) /
                                   static_cast<double>(q.totalEdges)
                             : 0.0;
            std::printf("%-12s %-6s %12llu %9s %7s %8lld %10lld\n",
                        k.name.c_str(), spec.c_str(),
                        static_cast<unsigned long long>(fr.sim.cycles),
                        fmtDouble(slowdown, 2).c_str(),
                        fmtDouble(cutPct, 1).c_str(),
                        static_cast<long long>(q.maxTileOps),
                        static_cast<long long>(fr.sim.stats.get(
                            "fabric.cross_deliveries")));
            report.addRow(
                {{"kernel", k.name},
                 {"fabric", spec},
                 {"cycles", fr.sim.cycles},
                 {"slowdown", slowdown},
                 {"edges_total", q.totalEdges},
                 {"edges_cut", q.cutEdges},
                 {"cut_hops", q.cutHops},
                 {"nodes", q.numNodes},
                 {"max_tile_ops", q.maxTileOps},
                 {"used_tiles", q.usedTiles},
                 {"cross_deliveries",
                  fr.sim.stats.get("fabric.cross_deliveries")},
                 {"hop_cycles", fr.sim.stats.get("fabric.hop_cycles")},
                 {"baseline_identical",
                  fm.trivial() && fr.sim.cycles == baseRes.cycles}});
        }
    }
    benchutil::rule(72);
    std::printf("Expected shape: slowdown grows with the grid (more "
                "cut edges, longer\naverage hops) but stays within a "
                "small factor — communication is local\nbecause the "
                "placer keeps connected subgraphs on one tile.\n");
    report.write();
    if (!gateOk) {
        std::fprintf(stderr,
                     "bench: 1x1/identity gate failed (see above)\n");
        return 1;
    }
    return 0;
}
