/**
 * @file
 * Reproduces Figure 19: performance of the optimization levels under
 * several memory systems.
 *
 * The paper reports, per benchmark, execution time of the spatial
 * implementation for the "Medium" optimization set (pointer analysis
 * during construction + token removal + induction-variable
 * pipelining) and the full set, across memory systems from perfect to
 * a realistic two-level hierarchy with varying port counts.  Its
 * qualitative findings: the "Medium" ingredients matter most, and
 * "even small amounts of bandwidth can be utilized quite effectively".
 */
#include "bench_util.h"

using namespace cash;

int
main()
{
    struct MemRow
    {
        const char* name;
        MemConfig cfg;
    };
    std::vector<MemRow> mems = {
        {"perfect", MemConfig::perfectMemory()},
        {"real-1port", MemConfig::realistic(1)},
        {"real-2port", MemConfig::realistic(2)},
        {"real-4port", MemConfig::realistic(4)},
    };
    if (benchutil::smokeMode())
        mems = {{"perfect", MemConfig::perfectMemory()},
                {"real-2port", MemConfig::realistic(2)}};
    benchutil::BenchReport report("fig19_speedup");

    std::printf("Figure 19: speedup of optimization levels over the "
                "unoptimized spatial\nimplementation (None), per "
                "memory system.  Values are cycle-count ratios\n"
                "None/level (higher is better).\n\n");

    for (const MemRow& mem : mems) {
        std::printf("memory system: %s\n", mem.name);
        std::printf("%-12s %12s %12s %12s %9s %9s\n", "kernel",
                    "none (cyc)", "medium(cyc)", "full (cyc)",
                    "medium x", "full x");
        benchutil::rule(72);
        double gmMed = 0, gmFull = 0;
        int n = 0;
        for (const Kernel& k : benchutil::suiteForRun()) {
            SimResult rn =
                benchutil::runKernel(k, OptLevel::None, mem.cfg);
            SimResult rm =
                benchutil::runKernel(k, OptLevel::Medium, mem.cfg);
            SimResult rf =
                benchutil::runKernel(k, OptLevel::Full, mem.cfg);
            double sm = static_cast<double>(rn.cycles) /
                        static_cast<double>(rm.cycles ? rm.cycles : 1);
            double sf = static_cast<double>(rn.cycles) /
                        static_cast<double>(rf.cycles ? rf.cycles : 1);
            std::printf("%-12s %12llu %12llu %12llu %9s %9s\n",
                        k.name.c_str(),
                        static_cast<unsigned long long>(rn.cycles),
                        static_cast<unsigned long long>(rm.cycles),
                        static_cast<unsigned long long>(rf.cycles),
                        fmtDouble(sm, 2).c_str(),
                        fmtDouble(sf, 2).c_str());
            report.addRow({{"kernel", k.name},
                           {"mem", mem.name},
                           {"cycles_none", rn.cycles},
                           {"cycles_medium", rm.cycles},
                           {"cycles_full", rf.cycles},
                           {"speedup_medium", sm},
                           {"speedup_full", sf}});
            gmMed += sm;
            gmFull += sf;
            n++;
        }
        benchutil::rule(72);
        std::printf("%-12s %38s %9s %9s\n\n", "mean", "",
                    fmtDouble(gmMed / n, 2).c_str(),
                    fmtDouble(gmFull / n, 2).c_str());
    }

    std::printf("Paper's qualitative shape to check: (1) Medium "
                "captures most of the benefit;\n(2) performance "
                "improves with bandwidth but 1-2 ports already do "
                "well;\n(3) read-only splitting and loop decoupling "
                "help only a few kernels.\n");
    report.write();
    return 0;
}
