/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  A. construction precision — read/write sets during token insertion
 *     (§3.3) versus the coarse program-order chain recovered later by
 *     §4.3 (the paper: "the programs benefited most from using pointer
 *     analysis to reduce token edges during construction");
 *  B. `#pragma independent` — the paper's §7.1 claim that a handful of
 *     pragmas is "extremely effective in aiding optimization";
 *  C. the individual §6 pipelining transforms, isolated — the paper's
 *     closing observation that the optimizations compose
 *     super-linearly.
 */
#include "bench_util.h"
#include "support/strings.h"

using namespace cash;

namespace {

/** Kernel source with all pragma lines removed. */
std::string
stripPragmas(const std::string& src)
{
    std::string out;
    for (const std::string& line : split(src, '\n'))
        if (trim(line).rfind("#pragma", 0) != 0)
            out += line + "\n";
    return out;
}

uint64_t
cyclesWith(const Kernel& k, const CompileOptions& co,
           const MemConfig& mem)
{
    CompileResult r = compileSource(k.source, co);
    DataflowSimulator sim(r.graphPtrs(), *r.layout, mem);
    return sim.run(k.entry, k.args).cycles;
}

void
ablationConstruction(benchutil::BenchReport& report)
{
    std::printf("A. token construction: coarse program-order chain vs "
                "read/write sets (§3.3),\n   both followed by the full "
                "§4-§6 pipeline (2-port realistic memory)\n\n");
    std::printf("%-12s %12s %12s %8s\n", "kernel", "coarse(cyc)",
                "rwsets(cyc)", "ratio");
    benchutil::rule(48);
    MemConfig mem = MemConfig::realistic(2);
    std::vector<const char*> names = {"saxpy", "dct",     "fir",
                                      "adpcm", "stencil", "quant"};
    if (benchutil::smokeMode())
        names = {"saxpy", "stencil"};
    for (const char* name : names) {
        const Kernel& k = kernelByName(name);
        CompileOptions coarse =
            CompileOptions().opt(OptLevel::Full).pointsTo(false);
        CompileOptions precise = CompileOptions().opt(OptLevel::Full);
        uint64_t c = cyclesWith(k, coarse, mem);
        uint64_t p = cyclesWith(k, precise, mem);
        report.addRow({{"section", "construction"},
                       {"kernel", name},
                       {"cycles_coarse", c},
                       {"cycles_rwsets", p}});
        std::printf("%-12s %12llu %12llu %8s\n", name,
                    static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(p),
                    fmtDouble(static_cast<double>(c) /
                                  static_cast<double>(p),
                              2)
                        .c_str());
    }
    std::printf("\nWith a single coarse chain every access lands in one "
                "partition, so the §6 ring\ntransforms lose their "
                "per-object structure even after §4.3 removes edges — "
                "the\npaper's reason for folding pointer analysis into "
                "construction.\n\n");
}

void
ablationPragmas(benchutil::BenchReport& report)
{
    std::printf("B. #pragma independent on vs stripped "
                "(2-port realistic memory)\n\n");
    std::printf("%-12s %8s %14s %14s %8s\n", "kernel", "pragmas",
                "with (cyc)", "without (cyc)", "gain");
    benchutil::rule(62);
    MemConfig mem = MemConfig::realistic(2);
    for (const Kernel& k : benchutil::suiteForRun()) {
        if (k.pragmas == 0)
            continue;
        CompileOptions co = CompileOptions().opt(OptLevel::Full);
        uint64_t with = cyclesWith(k, co, mem);
        Kernel stripped = k;
        stripped.source = stripPragmas(k.source);
        uint64_t without = cyclesWith(stripped, co, mem);
        report.addRow({{"section", "pragmas"},
                       {"kernel", k.name},
                       {"pragmas", k.pragmas},
                       {"cycles_with", with},
                       {"cycles_without", without}});
        std::printf("%-12s %8d %14llu %14llu %8s\n", k.name.c_str(),
                    k.pragmas, static_cast<unsigned long long>(with),
                    static_cast<unsigned long long>(without),
                    fmtDouble(static_cast<double>(without) /
                                  static_cast<double>(with),
                              2)
                        .c_str());
    }
    std::printf("\nWithout the pragmas, pointer parameters may alias "
                "every exposed object, the\npartitions collapse and "
                "pipelining serializes — the paper: \"for a few "
                "programs\nthese pragmas are extremely effective in "
                "aiding optimization\".\n\n");
}

void
ablationCompose(benchutil::BenchReport& report)
{
    std::printf("C. composition: Medium alone, Full-without-§6, and "
                "Full (figure12 kernel,\n   2-port realistic "
                "memory)\n\n");
    Kernel k;
    k.source = figure12Source();
    k.entry = "fig12_run";
    k.args = {1024};
    MemConfig mem = MemConfig::realistic(2);
    CompileOptions none = CompileOptions().opt(OptLevel::None);
    CompileOptions medium = CompileOptions().opt(OptLevel::Medium);
    CompileOptions fullO = CompileOptions().opt(OptLevel::Full);
    uint64_t cn = cyclesWith(k, none, mem);
    uint64_t cm = cyclesWith(k, medium, mem);
    uint64_t cf = cyclesWith(k, fullO, mem);
    report.addRow({{"section", "composition"},
                   {"kernel", "figure12"},
                   {"cycles_none", cn},
                   {"cycles_medium", cm},
                   {"cycles_full", cf}});
    std::printf("  none:   %8llu cycles\n",
                static_cast<unsigned long long>(cn));
    std::printf("  medium: %8llu cycles (%.2fx)\n",
                static_cast<unsigned long long>(cm),
                static_cast<double>(cn) / static_cast<double>(cm));
    std::printf("  full:   %8llu cycles (%.2fx)\n",
                static_cast<unsigned long long>(cf),
                static_cast<double>(cn) / static_cast<double>(cf));
    std::printf("\nDisambiguation alone (medium) unlocks the monotone "
                "a-stream; adding §5\nforwarding and §6 decoupling "
                "unlocks the b-stream too — \"more powerful than\n"
                "simply the product of their individual effect\".\n");
}

} // namespace

int
main()
{
    std::printf("Ablation studies over the reproduction's design "
                "choices\n");
    benchutil::rule(64);
    std::printf("\n");
    benchutil::BenchReport report("ablation");
    ablationConstruction(report);
    ablationPragmas(report);
    ablationCompose(report);
    report.write();
    return 0;
}
