/**
 * @file
 * Service throughput benchmark (docs/SERVICE.md): an in-process
 * `cashd` core driven by hundreds of concurrent client connections.
 *
 * Two phases over the same server:
 *   * **cold** — every request is a unique source, so every request
 *     pays a full compile (cache misses only);
 *   * **warm** — the clients replay a small set of already-cached
 *     sources, so requests are served from the content-addressed
 *     result cache.
 *
 * The interesting numbers are the requests/second of each phase and
 * their ratio: the service exists so repeat traffic (editors,
 * build-system retries, CI re-runs) costs a cache lookup instead of a
 * compile.  The run FAILS (exit 1) unless warm throughput is at least
 * 5x cold throughput and cached bodies are byte-identical to their
 * uncached originals — the acceptance bar for the caching layer, not
 * just a report.
 *
 * Writes BENCH_service_qps.json (schema cash-bench-v1).  Honors
 * CASH_BENCH_SMOKE=1 (reduced client count / request volume).
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/client.h"
#include "service/server.h"

#include <unistd.h>

using namespace cash;
using namespace cash::benchutil;

namespace {

/** Unique Mini-C source #n: distinct text → distinct cache key. */
std::string
uniqueSource(int n)
{
    return "int work(int n) {\n"
           "  int s = " + std::to_string(n) + ";\n"
           "  int i;\n"
           "  for (i = 0; i < n; i++) s = s + i * " +
           std::to_string(n % 7 + 1) + ";\n"
           "  return s;\n"
           "}\n";
}

struct PhaseResult
{
    int64_t requests = 0;
    int64_t failures = 0;
    double seconds = 0;
    double qps = 0;
};

/**
 * Run @p clients threads against @p socketPath; client c issues
 * requests for sources source(c, r), r in [0, perClient).  Captures
 * each response's body into @p bodies (indexed c * perClient + r)
 * when non-null.
 */
template <typename SourceFn>
PhaseResult
runPhase(const std::string& socketPath, int clients, int perClient,
         SourceFn source, std::vector<std::string>* bodies)
{
    PhaseResult pr;
    pr.requests = static_cast<int64_t>(clients) * perClient;
    std::atomic<int64_t> failures{0};

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; c++) {
        threads.emplace_back([&, c] {
            ServiceClient client;
            if (!client.connect(socketPath).isOk()) {
                failures += perClient;
                return;
            }
            for (int r = 0; r < perClient; r++) {
                Json resp;
                Status st = client.call(
                    makeCompileRequest("compile", source(c, r)),
                    &resp);
                if (!st.isOk() || !resp.getBool("ok") ||
                    !resp.get("body")) {
                    failures++;
                    continue;
                }
                if (bodies)
                    (*bodies)[static_cast<size_t>(c) * perClient + r] =
                        resp.get("body")->dump();
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    auto t1 = std::chrono::steady_clock::now();

    pr.failures = failures.load();
    pr.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    pr.qps = pr.seconds > 0
                 ? static_cast<double>(pr.requests) / pr.seconds
                 : 0;
    return pr;
}

} // namespace

int
main()
{
    const bool smoke = smokeMode();
    // Hundreds of concurrent clients in a full run; the threads are
    // I/O-bound (blocked in recv), the server's pool does the work.
    const int coldClients = smoke ? 8 : 100;
    const int coldPerClient = smoke ? 1 : 2;
    const int warmClients = smoke ? 16 : 200;
    const int warmPerClient = smoke ? 4 : 10;
    // Warm traffic replays sources the cold phase already compiled.
    const int warmDistinct = 4;

    ServiceConfig cfg;
    cfg.socketPath = "/tmp/cash_bench_qps_" +
                     std::to_string(::getpid()) + ".sock";
    ServiceServer server(cfg);
    Status st = server.start();
    if (!st.isOk()) {
        std::fprintf(stderr, "bench_service_qps: %s\n",
                     st.message().c_str());
        return 1;
    }

    std::printf("service qps: %s\n", versionString("cashd").c_str());
    std::printf("  cold: %d clients x %d unique compiles\n",
                coldClients, coldPerClient);
    std::printf("  warm: %d clients x %d cached requests\n",
                warmClients, warmPerClient);

    // Cold phase: every request a unique source → all misses.
    std::vector<std::string> coldBodies(
        static_cast<size_t>(coldClients) * coldPerClient);
    PhaseResult cold = runPhase(
        cfg.socketPath, coldClients, coldPerClient,
        [&](int c, int r) {
            return uniqueSource(c * coldPerClient + r);
        },
        &coldBodies);

    // Warm phase: replay the first warmDistinct cold sources.
    std::vector<std::string> warmBodies(
        static_cast<size_t>(warmClients) * warmPerClient);
    PhaseResult warm = runPhase(
        cfg.socketPath, warmClients, warmPerClient,
        [&](int c, int r) {
            return uniqueSource((c + r) % warmDistinct);
        },
        &warmBodies);

    // Byte identity: every warm (cached) body must equal the cold
    // (uncached) body of the same source.
    int64_t mismatches = 0;
    for (int c = 0; c < warmClients; c++) {
        for (int r = 0; r < warmPerClient; r++) {
            size_t wi = static_cast<size_t>(c) * warmPerClient + r;
            size_t ci = static_cast<size_t>((c + r) % warmDistinct);
            if (warmBodies[wi].empty() || coldBodies[ci].empty() ||
                warmBodies[wi] != coldBodies[ci])
                mismatches++;
        }
    }

    StatSet m = server.metrics();
    server.stop();

    double speedup = cold.qps > 0 ? warm.qps / cold.qps : 0;
    const double kRequiredSpeedup = 5.0;
    bool speedupOk = speedup >= kRequiredSpeedup;
    bool ok = speedupOk && mismatches == 0 && cold.failures == 0 &&
              warm.failures == 0;

    rule(64);
    std::printf("%-8s %10s %10s %10s %12s\n", "phase", "requests",
                "failures", "seconds", "req/s");
    rule(64);
    std::printf("%-8s %10lld %10lld %10.3f %12.1f\n", "cold",
                static_cast<long long>(cold.requests),
                static_cast<long long>(cold.failures), cold.seconds,
                cold.qps);
    std::printf("%-8s %10lld %10lld %10.3f %12.1f\n", "warm",
                static_cast<long long>(warm.requests),
                static_cast<long long>(warm.failures), warm.seconds,
                warm.qps);
    rule(64);
    std::printf("warm/cold speedup: %.1fx (required >= %.0fx)  "
                "byte mismatches: %lld\n",
                speedup, kRequiredSpeedup,
                static_cast<long long>(mismatches));
    std::printf("cache: %lld hits / %lld misses (%lld%%), "
                "p50 %lld us, p99 %lld us\n",
                static_cast<long long>(m.get("svc.cache.hits")),
                static_cast<long long>(m.get("svc.cache.misses")),
                static_cast<long long>(m.get("svc.cache.hit_rate_pct")),
                static_cast<long long>(m.get("svc.latency.p50_us")),
                static_cast<long long>(m.get("svc.latency.p99_us")));

    BenchReport report("service_qps");
    report.meta("version", versionString("cashd"));
    report.meta("cold_clients", coldClients);
    report.meta("warm_clients", warmClients);
    report.meta("required_speedup", kRequiredSpeedup);
    report.meta("speedup", speedup);
    report.meta("speedup_ok", speedupOk);
    report.meta("byte_mismatches", mismatches);
    report.meta("pool_workers", m.get("svc.pool.workers"));
    auto addPhase = [&](const char* name, const PhaseResult& p) {
        report.addRow({{"phase", name},
                       {"requests", p.requests},
                       {"failures", p.failures},
                       {"seconds", p.seconds},
                       {"qps", p.qps}});
    };
    addPhase("cold", cold);
    addPhase("warm", warm);
    report.addRow({{"phase", "totals"},
                   {"cache_hits", m.get("svc.cache.hits")},
                   {"cache_misses", m.get("svc.cache.misses")},
                   {"hit_rate_pct", m.get("svc.cache.hit_rate_pct")},
                   {"latency_p50_us", m.get("svc.latency.p50_us")},
                   {"latency_p95_us", m.get("svc.latency.p95_us")},
                   {"latency_p99_us", m.get("svc.latency.p99_us")},
                   {"connections",
                    m.get("svc.connections.accepted")}});
    if (!report.write())
        return 1;

    if (!ok) {
        std::fprintf(stderr,
                     "bench_service_qps: FAILED (speedup %.1fx, "
                     "%lld mismatches, %lld/%lld failures)\n",
                     speedup, static_cast<long long>(mismatches),
                     static_cast<long long>(cold.failures),
                     static_cast<long long>(warm.failures));
        return 1;
    }
    std::printf("OK\n");
    return 0;
}
