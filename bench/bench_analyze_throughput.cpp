/**
 * @file
 * Analyzer throughput: ordering-checker side-effect pairs screened
 * per wall-clock second over the benchsuite.
 *
 * The soundness checker (docs/ANALYSIS.md) builds a bitset transitive
 * closure over the token graph and then screens every side-effect
 * pair against it; this bench guards that construction against
 * accidental O(n³) regressions by reporting pairs/sec per kernel and
 * level.  It doubles as the clean-pipeline gate: any error-severity
 * finding on an uncorrupted compile is a bug, and the bench exits
 * nonzero so CI fails.
 */
#include <chrono>

#include "analysis/lint.h"
#include "analysis/ordering_checker.h"
#include "bench_util.h"

using namespace cash;
using namespace cash::benchutil;

namespace {

using Clock = std::chrono::steady_clock;

const OptLevel kLevels[] = {OptLevel::None, OptLevel::Medium,
                            OptLevel::Full};

} // namespace

int
main()
{
    BenchReport report("analyze_throughput");
    std::vector<Kernel> suite = suiteForRun();
    const int reps = smokeMode() ? 2 : 20;

    std::printf("%-16s %-7s %6s %6s %7s %8s %6s %12s\n", "kernel",
                "level", "tokens", "pairs", "conflic", "findings",
                "errors", "pairs/sec");
    rule(78);

    int64_t totalPairs = 0, totalErrors = 0;
    double totalUs = 0;
    for (const Kernel& k : suite) {
        for (OptLevel level : kLevels) {
            CompileResult r = compileKernel(k, level);

            // One lint run for the finding counts (all rules).
            LintContext lctx;
            lctx.oracle = &r.cfg->oracle;
            lctx.layout = r.layout.get();
            LintReport lint = runLints(r.graphPtrs(), lctx);

            // Timed loop: the ordering checker alone, rebuilt from
            // scratch each rep (closure construction dominates).
            OrderingStats agg;
            Clock::time_point t0 = Clock::now();
            for (int rep = 0; rep < reps; rep++) {
                agg = OrderingStats();
                for (const Graph* g : r.graphPtrs()) {
                    OrderingChecker checker(g ? *g : *r.graphs[0],
                                            &r.cfg->oracle,
                                            r.layout.get());
                    std::vector<LintFinding> sink;
                    checker.check(sink);
                    agg.tokenNodes += checker.stats().tokenNodes;
                    agg.tokenEdges += checker.stats().tokenEdges;
                    agg.sideEffects += checker.stats().sideEffects;
                    agg.pairsConsidered +=
                        checker.stats().pairsConsidered;
                    agg.pairsConflicting +=
                        checker.stats().pairsConflicting;
                }
            }
            double us =
                static_cast<double>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - t0)
                        .count()) /
                reps;
            double pairsPerSec =
                us > 0 ? agg.pairsConsidered * 1e6 / us : 0;

            std::printf("%-16s %-7s %6lld %6lld %7lld %8lld %6lld %12.0f\n",
                        k.name.c_str(), optLevelName(level),
                        static_cast<long long>(agg.tokenNodes),
                        static_cast<long long>(agg.pairsConsidered),
                        static_cast<long long>(agg.pairsConflicting),
                        static_cast<long long>(lint.findings.size()),
                        static_cast<long long>(lint.errors()),
                        pairsPerSec);

            report.addRow(
                {{"kernel", k.name},
                 {"level", optLevelName(level)},
                 {"functions", static_cast<int64_t>(r.graphs.size())},
                 {"token_nodes", agg.tokenNodes},
                 {"token_edges", agg.tokenEdges},
                 {"side_effects", agg.sideEffects},
                 {"pairs", agg.pairsConsidered},
                 {"conflicting_pairs", agg.pairsConflicting},
                 {"findings", static_cast<int64_t>(lint.findings.size())},
                 {"errors", lint.errors()},
                 {"warnings", lint.warnings()},
                 {"infos", lint.infos()},
                 {"reps", static_cast<int64_t>(reps)},
                 {"wall_us", us},
                 {"pairs_per_sec", pairsPerSec}});
            totalPairs += agg.pairsConsidered;
            totalErrors += lint.errors();
            totalUs += us;
        }
    }

    report.meta("kernels", static_cast<int64_t>(suite.size()));
    report.meta("levels", static_cast<int64_t>(3));
    report.meta("reps", static_cast<int64_t>(reps));
    report.meta("total_pairs", totalPairs);
    report.meta("total_errors", totalErrors);
    report.meta("pairs_per_sec_overall",
                totalUs > 0 ? totalPairs * 1e6 / totalUs : 0.0);
    bool wrote = report.write();

    if (totalErrors > 0) {
        std::fprintf(stderr,
                     "bench_analyze_throughput: %lld error finding(s)"
                     " on a clean pipeline — soundness bug\n",
                     static_cast<long long>(totalErrors));
        return 1;
    }
    return wrote ? 0 : 1;
}
