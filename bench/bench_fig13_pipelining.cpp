/**
 * @file
 * Reproduces the §6.1/§6.2 loop-pipelining experiments
 * (Figures 10-14): fine-grained per-object token rings, read-only
 * loop splitting and address-monotonicity pipelining.
 *
 * Workloads:
 *  - the paper's Figure 12 loop (`b[i+1] = i & 0xf; a[i] = b[i] + *p`)
 *  - a read-only reduction (all accesses reads)
 *  - the saxpy streaming kernel (three disambiguated monotone streams)
 *
 * Reported per workload: cycles at None / Medium / Full, plus which
 * ring transformations fired.
 */
#include "bench_util.h"

using namespace cash;

namespace {

const char* kReadOnlySrc = R"(
int table[4096];
int sumAll(int n)
{
    int s = 0;
    int i;
    for (i = 0; i < n; i++)
        s += table[i];
    return s;
}
int readonly_run(int n)
{
    int i;
    for (i = 0; i < n; i++)
        table[i] = i * 3;
    return sumAll(n) + sumAll(n / 2);
}
)";

void
row(benchutil::BenchReport& report, const char* name,
    const std::string& source, const std::string& entry,
    std::vector<uint32_t> args)
{
    Kernel k;
    k.source = source;
    k.entry = entry;
    k.args = std::move(args);
    MemConfig mem = MemConfig::realistic(2);
    SimResult rn = benchutil::runKernel(k, OptLevel::None, mem);
    SimResult rm = benchutil::runKernel(k, OptLevel::Medium, mem);
    SimResult rf = benchutil::runKernel(k, OptLevel::Full, mem);

    CompileResult full = benchutil::compileKernel(k, OptLevel::Full);
    int64_t rings = full.stats.get("opt.ring_split.rings");

    double speed = static_cast<double>(rn.cycles) /
                   static_cast<double>(rf.cycles ? rf.cycles : 1);
    std::printf("%-14s %12llu %12llu %12llu %8s %7lld\n", name,
                static_cast<unsigned long long>(rn.cycles),
                static_cast<unsigned long long>(rm.cycles),
                static_cast<unsigned long long>(rf.cycles),
                fmtDouble(speed, 2).c_str(),
                static_cast<long long>(rings));
    report.addRow({{"workload", name},
                   {"cycles_none", rn.cycles},
                   {"cycles_medium", rm.cycles},
                   {"cycles_full", rf.cycles},
                   {"speedup_full", speed},
                   {"rings", rings}});
}

} // namespace

int
main()
{
    std::printf("Figures 10-14: loop pipelining through fine-grained "
                "token rings\n(realistic dual-ported memory)\n\n");
    std::printf("%-14s %12s %12s %12s %8s %7s\n", "workload",
                "none (cyc)", "medium(cyc)", "full (cyc)", "full x",
                "rings");
    benchutil::rule(72);

    benchutil::BenchReport report("fig13_pipelining");
    row(report, "figure12", figure12Source(), "fig12_run", {1024});
    row(report, "read-only", kReadOnlySrc, "readonly_run", {1024});
    if (!benchutil::smokeMode()) {
        const Kernel& sax = kernelByName("saxpy");
        row(report, "saxpy", sax.source, sax.entry, sax.args);
        const Kernel& fir = kernelByName("fir");
        row(report, "fir", fir.source, fir.entry, fir.args);
    }

    benchutil::rule(72);
    std::printf("\n'rings' counts the generator/collector splits "
                "applied (§6.1/§6.2 transforms).\nPipelined loops "
                "overlap successive iterations' memory accesses, so "
                "the loop\nbound shifts from serialized round-trips "
                "to memory bandwidth.\n");
    report.write();
    return 0;
}
