/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation (§7): it compiles the kernel suite at the relevant
 * optimization levels, runs the spatial simulator on the relevant
 * memory systems, and prints the same rows/series the paper reports.
 */
#ifndef CASH_BENCH_BENCH_UTIL_H
#define CASH_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "benchsuite/kernels.h"
#include "driver/compiler.h"
#include "sim/dataflow_sim.h"
#include "support/strings.h"
#include "support/trace.h"

namespace cash {
namespace benchutil {

/**
 * Smoke mode (CASH_BENCH_SMOKE=1 in the environment): run a reduced
 * workload so CI can validate the binary and its JSON artifact in
 * seconds.  The artifact records which mode produced it.
 */
inline bool
smokeMode()
{
    const char* v = std::getenv("CASH_BENCH_SMOKE");
    return v && *v && std::string(v) != "0";
}

/** The kernel suite, truncated in smoke mode. */
inline std::vector<Kernel>
suiteForRun()
{
    std::vector<Kernel> ks = kernelSuite();
    if (smokeMode() && ks.size() > 2)
        ks.resize(2);
    return ks;
}

/** One typed cell value in a bench-report row. */
struct JsonValue
{
    enum class Kind { Str, Int, Num, Bool } kind = Kind::Int;
    std::string s;
    int64_t i = 0;
    double num = 0;

    JsonValue(const char* v) : kind(Kind::Str), s(v) {}
    JsonValue(const std::string& v) : kind(Kind::Str), s(v) {}
    JsonValue(int v) : kind(Kind::Int), i(v) {}
    JsonValue(int64_t v) : kind(Kind::Int), i(v) {}
    JsonValue(uint64_t v) : kind(Kind::Int), i(static_cast<int64_t>(v)) {}
    JsonValue(double v) : kind(Kind::Num), num(v) {}
    JsonValue(bool v) : kind(Kind::Bool), i(v) {}

    std::string
    str() const
    {
        switch (kind) {
          case Kind::Str: return "\"" + jsonEscape(s) + "\"";
          case Kind::Int: return std::to_string(i);
          case Kind::Bool: return i ? "true" : "false";
          case Kind::Num: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6g", num);
            return buf;
          }
        }
        return "null";
    }
};

/** An ordered key→value record (one row, or the meta block). */
using JsonRow = std::vector<std::pair<std::string, JsonValue>>;

/**
 * Accumulates one benchmark's results and writes the
 * `BENCH_<name>.json` artifact (schema "cash-bench-v1", see
 * docs/OBSERVABILITY.md) into the current directory, so each bench
 * run leaves a machine-diffable record next to its textual table.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    void meta(const std::string& key, JsonValue v)
    {
        meta_.emplace_back(key, std::move(v));
    }

    void addRow(JsonRow row) { rows_.push_back(std::move(row)); }

    /** Write BENCH_<name>.json; prints a note with the path. */
    bool
    write() const
    {
        std::string path = "BENCH_" + name_ + ".json";
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         path.c_str());
            return false;
        }
        os << "{\n  \"schema\": \"cash-bench-v1\",\n"
           << "  \"bench\": \"" << jsonEscape(name_) << "\",\n"
           << "  \"smoke\": " << (smokeMode() ? "true" : "false")
           << ",\n  \"meta\": {";
        writeRowBody(os, meta_, "    ");
        os << "},\n  \"rows\": [";
        bool first = true;
        for (const JsonRow& row : rows_) {
            os << (first ? "\n" : ",\n") << "    {";
            writeRowBody(os, row, "      ");
            os << "}";
            first = false;
        }
        os << "\n  ]\n}\n";
        std::printf("\n[wrote %s]\n", path.c_str());
        return true;
    }

  private:
    static void
    writeRowBody(std::ofstream& os, const JsonRow& row,
                 const std::string& pad)
    {
        bool first = true;
        for (const auto& [k, v] : row) {
            os << (first ? "\n" : ",\n") << pad << "\"" << jsonEscape(k)
               << "\": " << v.str();
            first = false;
        }
        if (!first)
            os << "\n" << pad.substr(0, pad.size() - 2);
    }

    std::string name_;
    JsonRow meta_;
    std::vector<JsonRow> rows_;
};

/** Compile @p k at @p level (verification on). */
inline CompileResult
compileKernel(const Kernel& k, OptLevel level)
{
    return compileSource(k.source, CompileOptions().opt(level));
}

/** Compile and simulate @p k; returns the SimResult. */
inline SimResult
runKernel(const Kernel& k, OptLevel level, const MemConfig& mem)
{
    CompileResult r = compileKernel(k, level);
    DataflowSimulator sim(r.graphPtrs(), *r.layout, mem);
    return sim.run(k.entry, k.args);
}

/** printf a horizontal rule of @p width characters. */
inline void
rule(int width)
{
    for (int i = 0; i < width; i++)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

inline std::string
pct(int64_t removed, int64_t total)
{
    if (total == 0)
        return "0.0%";
    return fmtDouble(100.0 * static_cast<double>(removed) /
                         static_cast<double>(total),
                     1) +
           "%";
}

} // namespace benchutil
} // namespace cash

#endif // CASH_BENCH_BENCH_UTIL_H
