/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation (§7): it compiles the kernel suite at the relevant
 * optimization levels, runs the spatial simulator on the relevant
 * memory systems, and prints the same rows/series the paper reports.
 */
#ifndef CASH_BENCH_BENCH_UTIL_H
#define CASH_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "driver/compiler.h"
#include "sim/dataflow_sim.h"
#include "support/strings.h"

namespace cash {
namespace benchutil {

/** Compile @p k at @p level (verification on). */
inline CompileResult
compileKernel(const Kernel& k, OptLevel level)
{
    CompileOptions co;
    co.level = level;
    return compileSource(k.source, co);
}

/** Compile and simulate @p k; returns the SimResult. */
inline SimResult
runKernel(const Kernel& k, OptLevel level, const MemConfig& mem)
{
    CompileResult r = compileKernel(k, level);
    DataflowSimulator sim(r.graphPtrs(), *r.layout, mem);
    return sim.run(k.entry, k.args);
}

/** printf a horizontal rule of @p width characters. */
inline void
rule(int width)
{
    for (int i = 0; i < width; i++)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

inline std::string
pct(int64_t removed, int64_t total)
{
    if (total == 0)
        return "0.0%";
    return fmtDouble(100.0 * static_cast<double>(removed) /
                         static_cast<double>(total),
                     1) +
           "%";
}

} // namespace benchutil
} // namespace cash

#endif // CASH_BENCH_BENCH_UTIL_H
