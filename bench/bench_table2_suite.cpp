/**
 * @file
 * Reproduces Table 2: "Statistics of the program fragments compiled
 * and number of pragma statements introduced."
 *
 * The paper compiled selected functions of MediaBench and SPECint95;
 * this reproduction compiles the stand-in kernel suite.  Columns:
 * functions compiled, source lines, `#pragma independent` count, and
 * (via google-benchmark) the compilation time per kernel — the §7.1
 * compile-speed discussion.
 */
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "frontend/parser.h"

using namespace cash;

namespace {

int
sourceLines(const std::string& s)
{
    int n = 1;
    for (char c : s)
        if (c == '\n')
            n++;
    return n;
}

void
printTable()
{
    std::printf("Table 2: compiled kernel suite "
                "(MediaBench/SPEC stand-ins)\n");
    std::printf("%-12s %-14s %6s %7s %8s %10s\n", "Benchmark",
                "models", "Funcs", "Lines", "Pragmas", "IR nodes");
    benchutil::rule(64);
    benchutil::BenchReport report("table2_suite");
    int tf = 0, tl = 0, tp = 0;
    int64_t tn = 0;
    for (const Kernel& k : benchutil::suiteForRun()) {
        CompileResult r = benchutil::compileKernel(k, OptLevel::Full);
        int funcs = 0;
        for (const FuncDecl* f : r.ast->functions)
            if (f->body)
                funcs++;
        int lines = sourceLines(k.source);
        int64_t nodes = r.totalNodes();
        std::printf("%-12s %-14s %6d %7d %8d %10lld\n", k.name.c_str(),
                    k.domain.c_str(), funcs, lines, k.pragmas,
                    static_cast<long long>(nodes));
        report.addRow({{"kernel", k.name},
                       {"domain", k.domain},
                       {"functions", funcs},
                       {"lines", lines},
                       {"pragmas", k.pragmas},
                       {"ir_nodes", nodes}});
        tf += funcs;
        tl += lines;
        tp += k.pragmas;
        tn += nodes;
    }
    benchutil::rule(64);
    std::printf("%-12s %-14s %6d %7d %8d %10lld\n", "Total", "", tf, tl,
                tp, static_cast<long long>(tn));
    std::printf("\nAs in the paper, only a handful of pragmas are "
                "needed, mostly declaring\nthat pointer arguments do "
                "not alias each other.\n\n");

    // §7.1: "About half the time spent in CASH is spent on the
    // optimizations" — measure our frontend/optimizer split.
    int64_t fe = 0, op = 0;
    for (const Kernel& k : benchutil::suiteForRun()) {
        CompileResult r = benchutil::compileKernel(k, OptLevel::Full);
        fe += r.stats.get("time.frontend.us");
        op += r.stats.get("time.optimize.us");
    }
    std::printf("compile-time split over the suite: frontend+build "
                "%lld us, optimizations %lld us (%s%% in opts; paper: "
                "~50%%)\n\n",
                static_cast<long long>(fe), static_cast<long long>(op),
                fmtDouble(100.0 * static_cast<double>(op) /
                              static_cast<double>(fe + op),
                          0)
                    .c_str());
    report.meta("time_frontend_us", fe);
    report.meta("time_optimize_us", op);
    report.write();
}

void
BM_CompileKernel(benchmark::State& state)
{
    const Kernel& k = kernelSuite()[static_cast<size_t>(state.range(0))];
    state.SetLabel(k.name);
    for (auto _ : state) {
        CompileResult r = benchutil::compileKernel(k, OptLevel::Full);
        benchmark::DoNotOptimize(r.graphs.data());
    }
}

} // namespace

BENCHMARK(BM_CompileKernel)
    ->DenseRange(0, static_cast<int>(kernelSuite().size()) - 1)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char** argv)
{
    printTable();
    if (benchutil::smokeMode())
        return 0;  // CI validates the JSON artifact only
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
