/**
 * @file
 * Reproduces Table 1: "Lines of C++ code, including comments and
 * white-space, implementing the optimizations described in this
 * paper."  The paper's point is that the Pegasus representation makes
 * the optimizations *small*; we count the real line counts of our
 * pass implementations the same way.
 */
#include <fstream>
#include <map>

#include "bench_util.h"

#ifndef CASH_SOURCE_DIR
#define CASH_SOURCE_DIR "."
#endif

namespace {

int
countLines(const std::string& relPath)
{
    std::ifstream in(std::string(CASH_SOURCE_DIR) + "/" + relPath);
    if (!in)
        return -1;
    int lines = 0;
    std::string line;
    while (std::getline(in, line))
        lines++;
    return lines;
}

} // namespace

int
main()
{
    using Row = std::pair<const char*, std::vector<const char*>>;
    // Paper rows → our implementing files.
    const std::vector<Row> rows = {
        {"Useless dependence removal",
         {"src/opt/token_removal.cpp"}},
        {"Immutable loads", {"src/opt/immutable_loads.cpp"}},
        {"Dead-code elimination (incl. memory op)",
         {"src/opt/dead_code.cpp"}},
        {"Load-after-store and store-before-store removal",
         {"src/opt/store_forwarding.cpp", "src/opt/dead_store.cpp"}},
        {"Redundant load and store removal (PRE)",
         {"src/opt/memory_merge.cpp"}},
        {"Transitive reduction of token edges",
         {"src/opt/transitive_reduction.cpp"}},
        {"Loop-invariant code discovery (scalar and memory)",
         {"src/opt/loop_invariant.cpp"}},
        {"Loop decoupling+monotone loops",
         {"src/opt/loop_decoupling.cpp",
          "src/opt/monotone_pipelining.cpp",
          "src/opt/readonly_split.cpp", "src/opt/ring_split.cpp"}},
    };
    // Paper's reported counts for side-by-side comparison.
    const std::map<std::string, int> paperLoc = {
        {"Useless dependence removal", 160},
        {"Immutable loads", 70},
        {"Dead-code elimination (incl. memory op)", 66},
        {"Load-after-store and store-before-store removal", 153},
        {"Redundant load and store removal (PRE)", 94},
        {"Transitive reduction of token edges", 61},
        {"Loop-invariant code discovery (scalar and memory)", 74},
        {"Loop decoupling+monotone loops", 310},
    };

    std::printf("Table 1: lines of C++ implementing each optimization\n");
    std::printf("%-52s %8s %8s\n", "Optimization", "paper", "ours");
    cash::benchutil::rule(70);
    cash::benchutil::BenchReport report("table1_loc");
    int totalOurs = 0, totalPaper = 0;
    for (const Row& row : rows) {
        int loc = 0;
        for (const char* f : row.second) {
            int c = countLines(f);
            if (c > 0)
                loc += c;
        }
        int paper = paperLoc.at(row.first);
        totalOurs += loc;
        totalPaper += paper;
        std::printf("%-52s %8d %8d\n", row.first, paper, loc);
        report.addRow({{"optimization", row.first},
                       {"paper_loc", paper},
                       {"our_loc", loc}});
    }
    cash::benchutil::rule(70);
    std::printf("%-52s %8d %8d\n", "Total", totalPaper, totalOurs);
    std::printf("\nBoth implementations are term-rewriting passes of a "
                "few hundred lines each —\nthe compactness claim of "
                "the representation carries over.\n");
    report.meta("total_paper_loc", totalPaper);
    report.meta("total_our_loc", totalOurs);
    report.write();
    return 0;
}
