#include <gtest/gtest.h>

#include "test_util.h"

using namespace cash;
using testutil::interpret;

namespace {

TEST(Interpreter, ReturnConstant)
{
    EXPECT_EQ(interpret("int f(void) { return 42; }", "f"), 42u);
}

TEST(Interpreter, Arithmetic)
{
    EXPECT_EQ(interpret("int f(int a, int b) { return a * b + a - b; }",
                        "f", {7, 3}),
              7u * 3 + 7 - 3);
}

TEST(Interpreter, SignedDivision)
{
    EXPECT_EQ(interpret("int f(int a, int b) { return a / b; }", "f",
                        {static_cast<uint32_t>(-7), 2}),
              static_cast<uint32_t>(-3));
    EXPECT_EQ(interpret("int f(int a, int b) { return a % b; }", "f",
                        {static_cast<uint32_t>(-7), 2}),
              static_cast<uint32_t>(-1));
}

TEST(Interpreter, UnsignedOps)
{
    EXPECT_EQ(interpret("unsigned f(unsigned a) { return a >> 1; }",
                        "f", {0x80000000u}),
              0x40000000u);
    EXPECT_EQ(interpret("int f(int a) { return a >> 1; }", "f",
                        {0x80000000u}),
              0xC0000000u);
}

TEST(Interpreter, IfElse)
{
    const char* src = "int f(int x) { if (x > 10) return 1;"
                      " else return 2; }";
    EXPECT_EQ(interpret(src, "f", {11}), 1u);
    EXPECT_EQ(interpret(src, "f", {10}), 2u);
}

TEST(Interpreter, WhileLoopSum)
{
    const char* src = "int f(int n) { int s = 0; int i = 0;"
                      " while (i < n) { s += i; i++; } return s; }";
    EXPECT_EQ(interpret(src, "f", {10}), 45u);
}

TEST(Interpreter, ForLoopWithBreakContinue)
{
    const char* src =
        "int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) {"
        "   if (i == 5) continue;"
        "   if (i == 8) break;"
        "   s += i; }"
        " return s; }";
    EXPECT_EQ(interpret(src, "f", {100}), 0u + 1 + 2 + 3 + 4 + 6 + 7);
}

TEST(Interpreter, GlobalArrayStores)
{
    const char* src =
        "int a[10];"
        "int f(int n) { int i; for (i = 0; i < n; i++) a[i] = i * i;"
        " int s = 0; for (i = 0; i < n; i++) s += a[i]; return s; }";
    EXPECT_EQ(interpret(src, "f", {5}), 0u + 1 + 4 + 9 + 16);
}

TEST(Interpreter, GlobalInitializers)
{
    const char* src = "int t[4] = {10, 20, 30, 40}; int base = 5;"
                      "int f(void) { return base + t[2]; }";
    EXPECT_EQ(interpret(src, "f"), 35u);
}

TEST(Interpreter, PointerArithmetic)
{
    const char* src =
        "int a[8];"
        "int f(void) { int* p = a; int i;"
        " for (i = 0; i < 8; i++) { *p = i + 1; p++; }"
        " return *(a + 3) + a[7]; }";
    EXPECT_EQ(interpret(src, "f"), 4u + 8);
}

TEST(Interpreter, CharArraysSignExtend)
{
    const char* src =
        "char c[4];"
        "int f(void) { c[0] = (char)200; return c[0]; }";
    EXPECT_EQ(interpret(src, "f"),
              static_cast<uint32_t>(static_cast<int8_t>(200)));
}

TEST(Interpreter, UnsignedCharZeroExtends)
{
    const char* src =
        "unsigned char c[4];"
        "int f(void) { c[0] = (unsigned char)200; return c[0]; }";
    EXPECT_EQ(interpret(src, "f"), 200u);
}

TEST(Interpreter, FunctionCalls)
{
    const char* src =
        "int sq(int x) { return x * x; }"
        "int f(int n) { return sq(n) + sq(n + 1); }";
    EXPECT_EQ(interpret(src, "f", {3}), 9u + 16);
}

TEST(Interpreter, Recursion)
{
    const char* src =
        "int fact(int n) { if (n <= 1) return 1;"
        " return n * fact(n - 1); }";
    EXPECT_EQ(interpret(src, "fact", {6}), 720u);
}

TEST(Interpreter, AddressTakenLocal)
{
    const char* src =
        "void inc(int* p) { *p += 1; }"
        "int f(void) { int x = 10; inc(&x); inc(&x); return x; }";
    EXPECT_EQ(interpret(src, "f"), 12u);
}

TEST(Interpreter, LocalArrayOnFrame)
{
    const char* src =
        "int f(int n) { int buf[16]; int i;"
        " for (i = 0; i < n; i++) buf[i] = i * 3;"
        " int s = 0; for (i = 0; i < n; i++) s += buf[i]; return s; }";
    EXPECT_EQ(interpret(src, "f", {8}), 3u * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(Interpreter, ShortCircuitEvaluation)
{
    const char* src =
        "int g_calls;"
        "int bump(void) { g_calls += 1; return 1; }"
        "int f(int x) { if (x && bump()) return g_calls;"
        " return g_calls + 100; }";
    EXPECT_EQ(interpret(src, "f", {0}), 100u);
    EXPECT_EQ(interpret(src, "f", {1}), 1u);
}

TEST(Interpreter, TernaryExpression)
{
    EXPECT_EQ(interpret("int f(int x) { return x > 0 ? x : -x; }", "f",
                        {static_cast<uint32_t>(-5)}),
              5u);
}

TEST(Interpreter, StringLiteralAccess)
{
    const char* src = "int f(void) { char* s = \"AB\"; return s[1]; }";
    EXPECT_EQ(interpret(src, "f"), static_cast<uint32_t>('B'));
}

TEST(Interpreter, DivisionByZeroFails)
{
    EXPECT_THROW(interpret("int f(int a) { return a / 0; }", "f", {1}),
                 FatalError);
}

TEST(Interpreter, StepLimitCatchesInfiniteLoop)
{
    Program prog = parseProgram("int f(void) { while (1) {} return 0; }");
    analyzeProgram(prog);
    MemoryLayout layout;
    layout.build(prog);
    Interpreter interp(prog, layout);
    interp.setStepLimit(10000);
    EXPECT_THROW(interp.call("f", {}), FatalError);
}

TEST(Interpreter, Section2Example)
{
    // The paper's motivating example: a[i] += *p; a[i] <<= a[i+1].
    const char* src = R"(
unsigned a[8];
void f(unsigned* p, unsigned* arr, int i)
{
    if (p) arr[i] += *p;
    else arr[i] = 1;
    arr[i] <<= arr[i + 1];
}
unsigned src0[1];
int run(int useNull)
{
    a[5] = 2u; a[6] = 3u;
    src0[0] = 4u;
    if (useNull) f((unsigned*)0, a, 5);
    else f(src0, a, 5);
    return (int)a[5];
}
)";
    // p != 0: a[5] = (2+4) << 3 = 48.
    EXPECT_EQ(interpret(src, "run", {0}), 48u);
    // p == 0: a[5] = 1 << 3 = 8.
    EXPECT_EQ(interpret(src, "run", {1}), 8u);
}

} // namespace
