/**
 * @file
 * Loop-pipelining transformations (§6): read-only splitting, address
 * monotonicity, loop decoupling with token generators.
 */
#include <gtest/gtest.h>

#include "benchsuite/kernels.h"
#include "test_util.h"

using namespace cash;

namespace {

CompileResult
full(const std::string& src)
{
    return compileSource(src, CompileOptions().opt(OptLevel::Full));
}

int
tokengens(const Graph& g)
{
    int n = 0;
    g.forEach([&](Node* node) {
        if (node->kind == NodeKind::TokenGen)
            n++;
    });
    return n;
}

TEST(ReadonlySplit, FiresOnPureReadLoop)
{
    const char* src = "int t[256];"
                      "int f(int n) { int s = 0; int i;"
                      " for (i = 0; i < n; i++) s += t[i];"
                      " return s; }";
    CompileResult r = full(src);
    EXPECT_GE(r.stats.get("opt.readonly_split.loops"), 1);
    testutil::crossCheck(src, "f", {100});
}

TEST(ReadonlySplit, SkipsLoopsWithWrites)
{
    const char* src = "int t[256];"
                      "int f(int n) { int i;"
                      " for (i = 0; i < n; i++) t[i] = t[i] + 1;"
                      " return t[0]; }";
    CompileResult r = full(src);
    EXPECT_EQ(r.stats.get("opt.readonly_split.loops"), 0);
}

TEST(Monotone, FiresOnStreamingStores)
{
    const char* src = "int t[256];"
                      "int f(int n) { int i;"
                      " for (i = 0; i < n; i++) t[i] = i * 2;"
                      " return t[n - 1]; }";
    CompileResult r = full(src);
    EXPECT_GE(r.stats.get("opt.monotone.loops"), 1);
    EXPECT_EQ(testutil::crossCheck(src, "f", {100}), 198u);
}

TEST(Monotone, SkipsDataDependentAddresses)
{
    // hist[data[i]]++ — addresses unknowable, no pipelining.
    const char* src =
        "int data[64]; int hist[16];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) hist[data[i] & 15] += 1;"
        " return hist[0]; }";
    CompileResult r = full(src);
    EXPECT_EQ(r.stats.get("opt.monotone.loops"), 0);
    EXPECT_EQ(r.stats.get("opt.loop_decoupling.loops"), 0);
    testutil::crossCheck(src, "f", {64});
}

TEST(Monotone, SkipsDistanceCarriedDependence)
{
    // b[i+1] written, b[i] read: distance 1 — monotone splitting alone
    // would be wrong; decoupling owns it.
    const char* src = "int b2[256];"
                      "int f(int n) { int i;"
                      " for (i = 0; i + 1 < n; i++)"
                      "   b2[i + 1] = b2[i] + 1;"
                      " return b2[n - 1]; }";
    CompileResult r = full(src);
    EXPECT_EQ(r.stats.get("opt.monotone.loops"), 0);
    EXPECT_GE(r.stats.get("opt.loop_decoupling.loops"), 1);
    EXPECT_EQ(testutil::crossCheck(src, "f", {32}), 31u);
}

TEST(Decoupling, InsertsTokenGeneratorWithDistance)
{
    CompileResult r = full(decouplingExampleSource());
    const Graph* g = r.graph("stencil");
    ASSERT_EQ(tokengens(*g), 1);
    g->forEach([&](Node* n) {
        if (n->kind == NodeKind::TokenGen)
            EXPECT_EQ(n->tkCount, 3);
    });
}

TEST(Decoupling, PreservesSemanticsAcrossSizes)
{
    for (uint32_t n : {5u, 7u, 16u, 100u, 511u})
        testutil::crossCheck(decouplingExampleSource(), "stencil_run",
                             {n});
}

TEST(Decoupling, SpeedsUpUnderRealisticMemory)
{
    SimResult medium = testutil::simulate(
        decouplingExampleSource(), "stencil_run", {2048},
        OptLevel::Medium, MemConfig::realistic(2));
    SimResult fullr = testutil::simulate(
        decouplingExampleSource(), "stencil_run", {2048},
        OptLevel::Full, MemConfig::realistic(2));
    EXPECT_EQ(medium.returnValue, fullr.returnValue);
    EXPECT_LT(fullr.cycles, medium.cycles);
}

TEST(Decoupling, NegativeDirectionDistance)
{
    // Reading ahead (a[i] = a[i+2]): the store trails the load by 2.
    const char* src = "int a[256];"
                      "int f(int n) { int i;"
                      " for (i = 0; i + 2 < n; i++)"
                      "   a[i] = a[i + 2] + 1;"
                      " return a[0]; }";
    CompileResult r = full(src);
    EXPECT_GE(r.stats.get("opt.ring_split.tokengens"), 1);
    testutil::crossCheck(src, "f", {64});
}

TEST(Figure12, PipelinesBothArrays)
{
    CompileResult r = full(figure12Source());
    // b carries a distance-1 dependence (decoupling), a is a monotone
    // write stream; both rings must split.
    EXPECT_GE(r.stats.get("opt.ring_split.rings"), 2);
    testutil::crossCheck(figure12Source(), "fig12_run", {128});
}

TEST(Pipelining, SaxpySpeedsUpWithMedium)
{
    const Kernel& k = kernelByName("saxpy");
    SimResult none = testutil::simulate(k.source, k.entry, k.args,
                                        OptLevel::None,
                                        MemConfig::realistic(2));
    SimResult medium = testutil::simulate(k.source, k.entry, k.args,
                                          OptLevel::Medium,
                                          MemConfig::realistic(2));
    EXPECT_EQ(none.returnValue, medium.returnValue);
    // Paper: induction-variable pipelining is a dominant win.
    EXPECT_LT(medium.cycles * 2, none.cycles);
}

TEST(Pipelining, RingSplitKeepsExitOrdering)
{
    // Work after the loop must still observe all the loop's stores.
    const char* src =
        "int t[512];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) t[i] = i + 1;"
        " int s = 0;"
        " for (i = 0; i < n; i++) s += t[i];"
        " return s; }";
    for (uint32_t n : {1u, 2u, 63u, 256u})
        testutil::crossCheck(src, "f", {n});
}

TEST(Pipelining, NestedLoopInnerSplits)
{
    // The inner read loop of fir-like code splits even under an outer
    // loop (the ring protocol must survive re-entry).
    const char* src =
        "int sig[128]; int out2[128];"
        "int f(int n) { int i; int j;"
        " for (i = 0; i < n; i++) sig[i] = i;"
        " for (i = 0; i + 4 <= n; i++) {"
        "   int acc = 0;"
        "   for (j = 0; j < 4; j++) acc += sig[i + j];"
        "   out2[i] = acc;"
        " }"
        " int s = 0; for (i = 0; i + 4 <= n; i++) s ^= out2[i];"
        " return s; }";
    CompileResult r = full(src);
    EXPECT_GE(r.stats.get("opt.readonly_split.loops"), 1);
    for (uint32_t n : {4u, 5u, 32u, 100u})
        testutil::crossCheck(src, "f", {n});
}

TEST(Pipelining, CharStrideRespectsAccessSize)
{
    // Byte accesses at stride 1: adjacent iterations touch adjacent
    // bytes; |step| >= size holds exactly, so splitting is legal.
    const char* src =
        "char buf[256];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) buf[i] = (char)i;"
        " int s = 0; for (i = 0; i < n; i++) s += buf[i];"
        " return s; }";
    for (uint32_t n : {16u, 200u})
        testutil::crossCheck(src, "f", {n});
}

} // namespace
