/**
 * @file
 * Whole-kernel differential tests: every suite kernel must produce the
 * interpreter's result at every optimization level, on both perfect
 * and realistic memory.
 */
#include <gtest/gtest.h>

#include "benchsuite/kernels.h"
#include "opt/opt_util.h"
#include "test_util.h"

using namespace cash;

namespace {

class KernelTest : public ::testing::TestWithParam<
                       std::tuple<std::string, OptLevel>>
{
};

TEST_P(KernelTest, MatchesInterpreter)
{
    const auto& [name, level] = GetParam();
    const Kernel& k = kernelByName(name);
    uint32_t expect = testutil::interpret(k.source, k.entry, k.args);
    SimResult got = testutil::simulate(k.source, k.entry, k.args, level);
    EXPECT_EQ(got.returnValue, expect) << k.name << " at level "
                                       << optLevelName(level);
    EXPECT_GT(got.cycles, 0u);
}

std::vector<std::tuple<std::string, OptLevel>>
allConfigs()
{
    std::vector<std::tuple<std::string, OptLevel>> out;
    for (const Kernel& k : kernelSuite())
        for (OptLevel level :
             {OptLevel::None, OptLevel::Medium, OptLevel::Full})
            out.push_back({k.name, level});
    return out;
}

std::string
configName(const ::testing::TestParamInfo<
           std::tuple<std::string, OptLevel>>& info)
{
    return std::get<0>(info.param) + "_" +
           optLevelName(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Suite, KernelTest,
                         ::testing::ValuesIn(allConfigs()), configName);

TEST(KernelSuite, RealisticMemoryAgrees)
{
    for (const Kernel& k : kernelSuite()) {
        uint32_t expect =
            testutil::interpret(k.source, k.entry, k.args);
        SimResult got =
            testutil::simulate(k.source, k.entry, k.args,
                               OptLevel::Full, MemConfig::realistic(2));
        EXPECT_EQ(got.returnValue, expect) << k.name;
    }
}

TEST(KernelSuite, Figure12KernelCrossChecks)
{
    testutil::crossCheck(figure12Source(), "fig12_run", {256});
}

TEST(KernelSuite, CoarseConstructionIsEquivalent)
{
    // Building from the coarse program-order token chain and letting
    // §4.3 recover parallelism must preserve semantics everywhere.
    for (const Kernel& k : kernelSuite()) {
        uint32_t expect =
            testutil::interpret(k.source, k.entry, k.args);
        CompileResult r = compileSource(
            k.source,
            CompileOptions().opt(OptLevel::Full).pointsTo(false));
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        EXPECT_EQ(sim.run(k.entry, k.args).returnValue, expect)
            << k.name;
    }
}

TEST(KernelSuite, TokenGraphStaysTransitivelyReduced)
{
    // §3.4 invariant, checked on every fully optimized kernel graph:
    // no token source of an operation is already ordered before
    // another source of the same operation.
    for (const Kernel& k : kernelSuite()) {
        CompileResult r = compileSource(
            k.source, CompileOptions().opt(OptLevel::Full));
        for (const auto& g : r.graphs) {
            g->forEach([&](Node* n) {
                int ti = optutil::tokenConsumerInput(n);
                if (ti < 0 || ti >= n->numInputs())
                    return;
                std::vector<PortRef> srcs =
                    optutil::expandTokenSources(n->input(ti));
                for (size_t i = 0; i < srcs.size(); i++) {
                    for (size_t j = 0; j < srcs.size(); j++) {
                        if (i == j)
                            continue;
                        EXPECT_FALSE(optutil::orderedAfter(
                            srcs[i].node, srcs[j].node))
                            << k.name << " " << g->name << ": "
                            << n->str() << " has redundant source n"
                            << srcs[i].node->id;
                    }
                }
            });
        }
    }
}

class MemConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(MemConfigSweep, ResultsAreMemorySystemInvariant)
{
    // Timing must never change results: sweep kernels across port
    // counts and compare against the interpreter.
    const auto& [name, ports] = GetParam();
    const Kernel& k = kernelByName(name);
    uint32_t expect = testutil::interpret(k.source, k.entry, k.args);
    MemConfig mem =
        ports == 0 ? MemConfig::perfectMemory()
                   : MemConfig::realistic(ports);
    SimResult got = testutil::simulate(k.source, k.entry, k.args,
                                       OptLevel::Full, mem);
    EXPECT_EQ(got.returnValue, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ports, MemConfigSweep,
    ::testing::Combine(::testing::Values("saxpy", "stencil", "dct",
                                         "histogram", "wavelet",
                                         "vortexdb"),
                       ::testing::Values(0, 1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>&
           info) {
        return std::get<0>(info.param) + "_p" +
               std::to_string(std::get<1>(info.param));
    });

TEST(KernelSuite, DecouplingKernelCrossChecks)
{
    testutil::crossCheck(decouplingExampleSource(), "stencil_run",
                         {512});
}

} // namespace
