/**
 * @file
 * Tiled-fabric backend (docs/FABRIC.md): FabricModel spec grammar,
 * TargetSpec parsing and cache-key identity, placer determinism and
 * capacity invariants, and the simulator's cross-tile timing model
 * (hop latency, credit backpressure, 1x1 byte-identity, macro/event
 * exactness).
 */
#include <gtest/gtest.h>

#include <map>

#include "driver/target_spec.h"
#include "fabric/placer.h"
#include "pegasus/graph.h"
#include "service/protocol.h"
#include "support/json.h"
#include "test_util.h"

using namespace cash;

namespace {

// A kernel with two functions, loops and real memory traffic —
// enough structure that a multi-tile placement actually cuts edges.
const char* kDotSrc =
    "int xs[64]; int ys[64];"
    "int dot(int* a, int* b, int n) {"
    "  #pragma independent a b\n"
    "  int acc = 0; int i;"
    "  for (i = 0; i < n; i++) acc += a[i] * b[i];"
    "  return acc; }"
    "int run(int n) { int i;"
    "  for (i = 0; i < n; i++) { xs[i] = i + 1; ys[i] = 2 * i + 1; }"
    "  return dot(xs, ys, n); }";

// ---------------------------------------------------------------------
// FabricModel spec grammar
// ---------------------------------------------------------------------

TEST(FabricModel, ParseAndRoundTrip)
{
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("4x4", &fm).isOk());
    EXPECT_EQ(fm.rows, 4);
    EXPECT_EQ(fm.cols, 4);
    EXPECT_EQ(fm.hopLatency, 1);
    EXPECT_EQ(fm.tileCapacity, 0);
    EXPECT_EQ(fm.linkCredits, 0);
    EXPECT_EQ(fm.str(), "4x4");

    ASSERT_TRUE(FabricModel::parse("2x3:hop2", &fm).isOk());
    EXPECT_EQ(fm.rows, 2);
    EXPECT_EQ(fm.cols, 3);
    EXPECT_EQ(fm.hopLatency, 2);
    EXPECT_EQ(fm.str(), "2x3:hop2");

    ASSERT_TRUE(FabricModel::parse("8x8:hop2:cap16:credit8", &fm).isOk());
    EXPECT_EQ(fm.tileCapacity, 16);
    EXPECT_EQ(fm.linkCredits, 8);
    EXPECT_EQ(fm.str(), "8x8:hop2:cap16:credit8");

    // Canonical form drops default-valued suffixes.
    ASSERT_TRUE(FabricModel::parse("2x2:hop1", &fm).isOk());
    EXPECT_EQ(fm.str(), "2x2");

    // str() round-trips through parse() for every field combination.
    for (const char* spec :
         {"1x1", "1x2", "4x4", "2x3:hop5", "4x4:cap8",
          "2x2:credit1", "8x8:hop2:cap16:credit8"}) {
        FabricModel a, b;
        ASSERT_TRUE(FabricModel::parse(spec, &a).isOk()) << spec;
        ASSERT_TRUE(FabricModel::parse(a.str(), &b).isOk()) << spec;
        EXPECT_EQ(a, b) << spec;
    }
}

TEST(FabricModel, TrivialAndHopDistance)
{
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("1x1", &fm).isOk());
    EXPECT_TRUE(fm.trivial());
    ASSERT_TRUE(FabricModel::parse("1x2", &fm).isOk());
    EXPECT_FALSE(fm.trivial());

    ASSERT_TRUE(FabricModel::parse("3x4", &fm).isOk());
    EXPECT_EQ(fm.numTiles(), 12);
    // Tile ids are row-major: tile 0 = (0,0), tile 11 = (2,3).
    EXPECT_EQ(fm.hopDist(0, 0), 0);
    EXPECT_EQ(fm.hopDist(0, 1), 1);
    EXPECT_EQ(fm.hopDist(0, 4), 1);   // one row down
    EXPECT_EQ(fm.hopDist(0, 11), 5);  // 2 rows + 3 cols
    EXPECT_EQ(fm.hopDist(11, 0), 5);  // symmetric
}

TEST(FabricModel, ParseErrors)
{
    FabricModel fm;
    for (const char* bad :
         {"", "4", "x4", "4x", "0x4", "4x0", "-1x2", "axb",
          "4x4:", "4x4:hop", "4x4:hop0", "4x4:cap-1", "4x4:bogus7",
          "4x4:credit", "65x64" /* 4160 tiles > 4096 */}) {
        EXPECT_FALSE(FabricModel::parse(bad, &fm).isOk()) << bad;
    }
    // Exactly at the tile limit is accepted.
    EXPECT_TRUE(FabricModel::parse("64x64", &fm).isOk());
}

// ---------------------------------------------------------------------
// TargetSpec
// ---------------------------------------------------------------------

TEST(TargetSpec, DefaultsMatchHistoricalFlags)
{
    TargetSpec t;
    EXPECT_EQ(t.level, OptLevel::Full);
    EXPECT_EQ(t.mem, "real2");
    EXPECT_EQ(t.engine, "macro");
    EXPECT_TRUE(t.fabric.trivial());
    EXPECT_EQ(t.str(), "opt=full,mem=real2,engine=macro");
}

TEST(TargetSpec, ParseAndRoundTrip)
{
    TargetSpec t;
    ASSERT_TRUE(TargetSpec::parse(
                    "opt=O2,mem=real1,engine=event,fabric=4x4:hop2",
                    &t)
                    .isOk());
    EXPECT_EQ(t.level, OptLevel::Full);
    EXPECT_EQ(t.mem, "real1");
    EXPECT_EQ(t.engine, "event");
    EXPECT_EQ(t.fabric.rows, 4);
    EXPECT_EQ(t.fabric.hopLatency, 2);
    EXPECT_EQ(t.str(),
              "opt=full,mem=real1,engine=event,fabric=4x4:hop2");

    TargetSpec again;
    ASSERT_TRUE(TargetSpec::parse(t.str(), &again).isOk());
    EXPECT_EQ(t, again);

    // Empty spec (and stray commas/spaces) parse to the defaults.
    TargetSpec empty;
    ASSERT_TRUE(TargetSpec::parse("", &empty).isOk());
    EXPECT_EQ(empty, TargetSpec());
    ASSERT_TRUE(TargetSpec::parse(" , ,", &empty).isOk());
    EXPECT_EQ(empty, TargetSpec());
}

TEST(TargetSpec, OptLevelAliasesAgree)
{
    // The deprecated -O flags and the canonical names resolve to the
    // same level, and therefore the same canonical string.
    for (const char* alias : {"full", "2", "3", "O2", "O3"}) {
        TargetSpec t;
        ASSERT_TRUE(t.setField("opt", alias).isOk()) << alias;
        EXPECT_EQ(t.level, OptLevel::Full) << alias;
        EXPECT_EQ(t.str(), TargetSpec().str()) << alias;
    }
    for (const char* alias : {"none", "0", "O0"}) {
        TargetSpec t;
        ASSERT_TRUE(t.setField("opt", alias).isOk()) << alias;
        EXPECT_EQ(t.level, OptLevel::None) << alias;
    }
    for (const char* alias : {"medium", "1", "O1"}) {
        TargetSpec t;
        ASSERT_TRUE(t.setField("opt", alias).isOk()) << alias;
        EXPECT_EQ(t.level, OptLevel::Medium) << alias;
    }
}

TEST(TargetSpec, MergeIsLastSettingWins)
{
    TargetSpec t;
    ASSERT_TRUE(t.merge("fabric=2x2").isOk());
    ASSERT_TRUE(t.merge("opt=none").isOk());
    EXPECT_EQ(t.level, OptLevel::None);   // later merge applied
    EXPECT_EQ(t.fabric.rows, 2);          // earlier field kept
    ASSERT_TRUE(t.merge("opt=none,opt=full").isOk());
    EXPECT_EQ(t.level, OptLevel::Full);   // within one spec too

    // A failed merge must not partially apply fields.
    TargetSpec before = t;
    EXPECT_FALSE(t.merge("mem=perfect,engine=bogus").isOk());
    EXPECT_EQ(t, before);
}

TEST(TargetSpec, FieldLevelErrors)
{
    TargetSpec t;
    Status st = t.setField("opt", "bogus");
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("target field 'opt'"),
              std::string::npos)
        << st.message();

    st = t.setField("wibble", "1");
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("unknown target field"),
              std::string::npos)
        << st.message();

    st = t.merge("noequals");
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("key=value"), std::string::npos)
        << st.message();

    st = t.setField("fabric", "4x4:hop0");
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("target field 'fabric'"),
              std::string::npos)
        << st.message();
}

TEST(TargetSpec, BuilderMatchesParser)
{
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("2x2:credit4", &fm).isOk());
    TargetSpec built = TargetSpec()
                           .opt(OptLevel::None)
                           .memSystem("perfect")
                           .simEngine("event")
                           .fabricModel(fm);
    TargetSpec parsed;
    ASSERT_TRUE(TargetSpec::parse(
                    "opt=none,mem=perfect,engine=event,"
                    "fabric=2x2:credit4",
                    &parsed)
                    .isOk());
    EXPECT_EQ(built, parsed);
    EXPECT_EQ(built.str(), parsed.str());
}

TEST(TargetSpec, ResolveProducesSimulatorInputs)
{
    TargetSpec t;
    ASSERT_TRUE(t.merge("mem=perfect,engine=event").isOk());
    MemConfig mc;
    SimEngine se;
    ASSERT_TRUE(t.resolve(&mc, &se).isOk());
    EXPECT_EQ(se, SimEngine::Event);
    EXPECT_TRUE(mc.perfect);
    EXPECT_EQ(mc.name, MemConfig::perfectMemory().name);
}

// ---------------------------------------------------------------------
// Service cache-key identity across the three entry paths
// ---------------------------------------------------------------------

namespace {

std::string
keyFor(Json options)
{
    Json j = Json::object();
    j.set("op", Json::string("simulate"));
    j.set("source", Json::string("int f(int a) { return a + 1; }"));
    options.set("run", Json::string("f(1)"));
    j.set("options", std::move(options));
    SvcRequest req;
    Status st = parseSvcRequest(j, &req);
    EXPECT_TRUE(st.isOk()) << st.message();
    return svcCacheKey(req);
}

} // namespace

TEST(TargetSpec, CacheKeyIdenticalAcrossEntryPaths)
{
    // (a) legacy per-field options.
    Json legacy = Json::object();
    legacy.set("opt", Json::string("0"));
    legacy.set("mem", Json::string("perfect"));
    legacy.set("engine", Json::string("event"));

    // (b) options.target as the canonical spec string.
    Json asString = Json::object();
    asString.set("target",
                 Json::string("opt=none,mem=perfect,engine=event"));

    // (c) options.target as an object.
    Json fields = Json::object();
    fields.set("opt", Json::string("O0"));
    fields.set("mem", Json::string("perfect"));
    fields.set("engine", Json::string("event"));
    Json asObject = Json::object();
    asObject.set("target", std::move(fields));

    const std::string ka = keyFor(std::move(legacy));
    const std::string kb = keyFor(std::move(asString));
    const std::string kc = keyFor(std::move(asObject));
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(kb, kc);

    // The fabric participates in the key: string and object forms
    // agree with each other but differ from the no-fabric key.
    Json fabStr = Json::object();
    fabStr.set("target",
               Json::string(
                   "opt=none,mem=perfect,engine=event,fabric=2x2"));
    Json fabFields = Json::object();
    fabFields.set("opt", Json::string("none"));
    fabFields.set("mem", Json::string("perfect"));
    fabFields.set("engine", Json::string("event"));
    fabFields.set("fabric", Json::string("2x2"));
    Json fabObj = Json::object();
    fabObj.set("target", std::move(fabFields));

    const std::string kf1 = keyFor(std::move(fabStr));
    const std::string kf2 = keyFor(std::move(fabObj));
    EXPECT_EQ(kf1, kf2);
    EXPECT_NE(kf1, ka);
}

TEST(TargetSpec, ServiceRejectsBadTarget)
{
    Json j = Json::object();
    j.set("op", Json::string("compile"));
    j.set("source", Json::string("int f() { return 0; }"));
    Json options = Json::object();
    options.set("target", Json::string("fabric=0x0"));
    j.set("options", std::move(options));
    SvcRequest req;
    Status st = parseSvcRequest(j, &req);
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("options.target"), std::string::npos)
        << st.message();
}

// ---------------------------------------------------------------------
// Placer: determinism and invariants
// ---------------------------------------------------------------------

TEST(Placer, DeterministicAcrossRunsAndJobCounts)
{
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("4x4", &fm).isOk());

    CompileResult j1 = compileSource(
        kDotSrc, CompileOptions().opt(OptLevel::Full).jobs(1));
    CompileResult j8 = compileSource(
        kDotSrc, CompileOptions().opt(OptLevel::Full).jobs(8));
    ASSERT_EQ(j1.graphs.size(), j8.graphs.size());

    for (size_t i = 0; i < j1.graphs.size(); i++) {
        Placement a = placeGraph(*j1.graphs[i], fm);
        Placement b = placeGraph(*j1.graphs[i], fm);  // repeat
        Placement c = placeGraph(*j8.graphs[i], fm);  // -j8 compile
        EXPECT_EQ(a.tileOf, b.tileOf) << j1.graphs[i]->name;
        EXPECT_EQ(a.tileOf, c.tileOf) << j1.graphs[i]->name;
        EXPECT_EQ(a.cutEdges, c.cutEdges);
        EXPECT_EQ(a.cutHops, c.cutHops);
    }

    // A different seed may move nodes, but stays deterministic too.
    Placement s1 = placeGraph(*j1.graphs[0], fm, 12345);
    Placement s2 = placeGraph(*j1.graphs[0], fm, 12345);
    EXPECT_EQ(s1.tileOf, s2.tileOf);
}

TEST(Placer, CapacityAndQualityInvariants)
{
    CompileResult r = compileSource(kDotSrc, {});
    for (const char* spec : {"1x2", "2x2", "4x4", "3x3:cap4",
                             "2x2:cap1" /* infeasible cap: widened */}) {
        FabricModel fm;
        ASSERT_TRUE(FabricModel::parse(spec, &fm).isOk());
        for (const auto& g : r.graphs) {
            Placement pl = placeGraph(*g, fm);
            const int64_t n =
                static_cast<int64_t>(g->liveNodes().size());
            ASSERT_EQ(pl.numTiles, fm.numTiles()) << spec;
            ASSERT_EQ(pl.numNodes, n) << spec;
            ASSERT_EQ(static_cast<int64_t>(pl.tileOf.size()), n);

            // Every node lands on a real tile; no tile exceeds the
            // effective capacity the placer reports.
            std::map<int32_t, int64_t> load;
            for (int32_t t : pl.tileOf) {
                ASSERT_GE(t, 0) << spec;
                ASSERT_LT(t, pl.numTiles) << spec;
                load[t]++;
            }
            const int64_t ceilAvg =
                (n + fm.numTiles() - 1) / fm.numTiles();
            EXPECT_GE(pl.capacity, ceilAvg) << spec;
            int64_t maxLoad = 0;
            for (const auto& kv : load)
                maxLoad = std::max(maxLoad, kv.second);
            EXPECT_LE(maxLoad, pl.capacity)
                << spec << " graph " << g->name;
            EXPECT_EQ(maxLoad, pl.maxTileOps);
            EXPECT_EQ(static_cast<int64_t>(load.size()),
                      pl.usedTiles);
            EXPECT_LE(pl.cutEdges, pl.totalEdges);
            EXPECT_GE(pl.cutHops, pl.cutEdges);
        }
    }
}

TEST(Placer, PlaceAllKeysByGraphName)
{
    CompileResult r = compileSource(kDotSrc, {});
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("2x2", &fm).isOk());
    FabricSession fs = placeAll(r.graphPtrs(), fm);
    EXPECT_EQ(fs.model, fm);
    ASSERT_EQ(fs.placements.size(), r.graphs.size());
    for (const auto& g : r.graphs) {
        auto it = fs.placements.find(g->name);
        ASSERT_NE(it, fs.placements.end()) << g->name;
        EXPECT_EQ(static_cast<size_t>(it->second.numNodes),
                  g->liveNodes().size());
    }
}

// ---------------------------------------------------------------------
// Simulator integration: timing model on hand-built placements
// ---------------------------------------------------------------------

namespace {

/** Baseline (idealized-fabric) simulation of kDotSrc's run(n). */
SimResult
baselineRun(const CompileResult& r, uint32_t n,
            SimEngine engine = SimEngine::Event)
{
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory(), engine);
    return sim.run("run", {n});
}

/** Simulate run(n) under an explicit FabricSession. */
SimResult
fabricRun(const CompileResult& r, const FabricSession& fs, uint32_t n,
          SimEngine engine = SimEngine::Event)
{
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory(), engine, &fs);
    return sim.run("run", {n});
}

/**
 * Hand-built placement: node at dense index i (liveNodes() order)
 * goes to tile (i % stride == 0 ? 0 : 1) — or all on @p fixed when
 * fixed >= 0.  This is the test's way of pinning exact cut edges
 * without depending on the placer heuristics.
 */
FabricSession
handSession(const CompileResult& r, const FabricModel& fm, int fixed,
            int stride = 2)
{
    FabricSession fs;
    fs.model = fm;
    for (const auto& g : r.graphs) {
        Placement pl;
        pl.numTiles = fm.numTiles();
        const size_t n = g->liveNodes().size();
        pl.tileOf.resize(n);
        for (size_t i = 0; i < n; i++)
            pl.tileOf[i] =
                fixed >= 0 ? fixed : (i % stride == 0 ? 0 : 1);
        pl.numNodes = static_cast<int64_t>(n);
        fs.placements[g->name] = std::move(pl);
    }
    return fs;
}

} // namespace

TEST(FabricSim, TrivialFabricIsByteIdentical)
{
    CompileResult r = compileSource(kDotSrc, {});
    SimResult base = baselineRun(r, 16);
    ASSERT_TRUE(base.ok());

    // A 1x1 session must not perturb anything — same cycles, same
    // result, and no fabric.* keys in the stats.
    FabricModel one;  // 1x1 default
    FabricSession fs = handSession(r, one, /*fixed=*/0);
    SimResult got = fabricRun(r, fs, 16);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.returnValue, base.returnValue);
    EXPECT_EQ(got.cycles, base.cycles);
    EXPECT_FALSE(got.stats.has("fabric.tiles"));
    EXPECT_FALSE(base.stats.has("fabric.tiles"));

    // Same at the macro engine.
    SimResult mbase = baselineRun(r, 16, SimEngine::Macro);
    SimResult mgot = fabricRun(r, fs, 16, SimEngine::Macro);
    EXPECT_EQ(mgot.returnValue, mbase.returnValue);
    EXPECT_EQ(mgot.cycles, mbase.cycles);
}

TEST(FabricSim, SameTilePlacementCostsNothing)
{
    CompileResult r = compileSource(kDotSrc, {});
    SimResult base = baselineRun(r, 16);

    // 1x2 fabric but every node on one tile: the fabric is active
    // (stats keys appear) yet no edge crosses, so timing is
    // unchanged.  Tile 0 and tile 1 behave identically.
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("1x2:hop7", &fm).isOk());
    for (int fixed : {0, 1}) {
        FabricSession fs = handSession(r, fm, fixed);
        SimResult got = fabricRun(r, fs, 16);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.returnValue, base.returnValue);
        EXPECT_EQ(got.cycles, base.cycles);
        EXPECT_EQ(got.stats.get("fabric.tiles"), 2);
        EXPECT_EQ(got.stats.get("fabric.cross_deliveries"), 0);
        EXPECT_EQ(got.stats.get("fabric.hop_cycles"), 0);
    }
}

TEST(FabricSim, CrossTileHopLatencyGoldens)
{
    CompileResult r = compileSource(kDotSrc, {});
    SimResult base = baselineRun(r, 16);

    // Alternate-parity placement on a 1x2 grid: every cut edge is
    // exactly one hop, so hop_cycles must equal hopLatency *
    // cross_deliveries — the golden law of the timing model.
    auto atHop = [&](int hop) {
        FabricModel fm;
        EXPECT_TRUE(FabricModel::parse("1x2", &fm).isOk());
        fm.hopLatency = hop;
        FabricSession fs = handSession(r, fm, /*fixed=*/-1);
        return fabricRun(r, fs, 16);
    };
    SimResult h2 = atHop(2);
    SimResult h4 = atHop(4);
    ASSERT_TRUE(h2.ok());
    ASSERT_TRUE(h4.ok());

    // Semantics never change; only timing does.
    EXPECT_EQ(h2.returnValue, base.returnValue);
    EXPECT_EQ(h4.returnValue, base.returnValue);

    const int64_t cross2 = h2.stats.get("fabric.cross_deliveries");
    const int64_t cross4 = h4.stats.get("fabric.cross_deliveries");
    ASSERT_GT(cross2, 0);
    EXPECT_EQ(cross2, cross4);  // same placement, same traffic
    EXPECT_EQ(h2.stats.get("fabric.hop_cycles"), 2 * cross2);
    EXPECT_EQ(h4.stats.get("fabric.hop_cycles"), 4 * cross4);

    // Hop latency on the critical path: strictly slower than the
    // idealized fabric, monotone in the hop cost.
    EXPECT_GT(h2.cycles, base.cycles);
    EXPECT_GT(h4.cycles, h2.cycles);

    // Deterministic: an identical re-run reproduces the cycles.
    SimResult h2again = atHop(2);
    EXPECT_EQ(h2again.cycles, h2.cycles);
}

TEST(FabricSim, CreditBackpressureInvariants)
{
    CompileResult r = compileSource(kDotSrc, {});

    FabricModel unbounded;
    ASSERT_TRUE(FabricModel::parse("1x2:hop2", &unbounded).isOk());
    FabricModel starved = unbounded;
    starved.linkCredits = 1;

    FabricSession fsU = handSession(r, unbounded, /*fixed=*/-1);
    FabricSession fsS = handSession(r, starved, /*fixed=*/-1);
    SimResult u = fabricRun(r, fsU, 16);
    SimResult s = fabricRun(r, fsS, 16);
    ASSERT_TRUE(u.ok());
    ASSERT_TRUE(s.ok());

    // Credits only delay; they never change the answer.
    EXPECT_EQ(s.returnValue, u.returnValue);
    EXPECT_GE(s.cycles, u.cycles);

    // With one credit per channel this traffic pattern must stall,
    // and every stall accounts at least one cycle.
    EXPECT_EQ(u.stats.get("fabric.credit_stalls"), 0);
    const int64_t stalls = s.stats.get("fabric.credit_stalls");
    EXPECT_GT(stalls, 0);
    EXPECT_GE(s.stats.get("fabric.credit_stall_cycles"), stalls);
    EXPECT_EQ(s.stats.get("fabric.link_credits"), 1);
}

TEST(FabricSim, PlacedQualityReportInStats)
{
    CompileResult r = compileSource(kDotSrc, {});
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("2x2", &fm).isOk());
    FabricSession fs = placeAll(r.graphPtrs(), fm);
    SimResult got = fabricRun(r, fs, 16);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.stats.get("fabric.tiles"), 4);
    EXPECT_GT(got.stats.get("fabric.nodes"), 0);
    EXPECT_GT(got.stats.get("fabric.edges.total"), 0);
    EXPECT_LE(got.stats.get("fabric.edges.cut"),
              got.stats.get("fabric.edges.total"));
    EXPECT_GE(got.stats.get("fabric.occupancy.max"), 1);
    EXPECT_GE(got.stats.get("fabric.occupancy.mean_x100"), 100);
}

TEST(FabricSim, MacroEngineMatchesEventEngineOnFabric)
{
    // The macro engine compiles whole regions into super-operators;
    // with a fabric those regions must stay within one tile, and with
    // unbounded credits the two engines agree cycle-for-cycle under
    // perfect memory.
    CompileResult r = compileSource(kDotSrc, {});
    for (const char* spec : {"2x2", "4x4:hop2", "1x2:hop3"}) {
        FabricModel fm;
        ASSERT_TRUE(FabricModel::parse(spec, &fm).isOk());
        FabricSession fs = placeAll(r.graphPtrs(), fm);
        SimResult ev = fabricRun(r, fs, 24, SimEngine::Event);
        SimResult ma = fabricRun(r, fs, 24, SimEngine::Macro);
        ASSERT_TRUE(ev.ok()) << spec;
        ASSERT_TRUE(ma.ok()) << spec;
        EXPECT_EQ(ma.returnValue, ev.returnValue) << spec;
        EXPECT_EQ(ma.cycles, ev.cycles) << spec;
    }

    // With *finite* credits the macro engine delivers a region's
    // collapsed inputs once instead of per internal edge, so it can
    // consume fewer channel slots and finish no later than the event
    // engine (docs/FABRIC.md, "Macro engine exactness").  Semantics
    // still match exactly.
    FabricModel fm;
    ASSERT_TRUE(FabricModel::parse("2x2:credit2", &fm).isOk());
    FabricSession fs = placeAll(r.graphPtrs(), fm);
    SimResult ev = fabricRun(r, fs, 24, SimEngine::Event);
    SimResult ma = fabricRun(r, fs, 24, SimEngine::Macro);
    ASSERT_TRUE(ev.ok());
    ASSERT_TRUE(ma.ok());
    EXPECT_EQ(ma.returnValue, ev.returnValue);
    EXPECT_LE(ma.cycles, ev.cycles);
}

TEST(FabricSim, ResultsMatchInterpreterAcrossFabrics)
{
    const uint32_t expect = testutil::interpret(kDotSrc, "run", {20});
    CompileResult r = compileSource(kDotSrc, {});
    for (const char* spec :
         {"2x2", "4x4:hop3", "2x2:credit1", "8x8"}) {
        FabricModel fm;
        ASSERT_TRUE(FabricModel::parse(spec, &fm).isOk());
        FabricSession fs = placeAll(r.graphPtrs(), fm);
        for (SimEngine engine : {SimEngine::Event, SimEngine::Macro}) {
            SimResult got = fabricRun(r, fs, 20, engine);
            ASSERT_TRUE(got.ok()) << spec;
            EXPECT_EQ(got.returnValue, expect) << spec;
        }
    }
}

} // namespace
