#include <gtest/gtest.h>

#include "test_util.h"

using namespace cash;
using testutil::crossCheck;
using testutil::interpret;
using testutil::simulate;

namespace {

TEST(EndToEnd, ReturnConstant)
{
    EXPECT_EQ(crossCheck("int f(void) { return 7; }", "f"), 7u);
}

TEST(EndToEnd, StraightLineArith)
{
    EXPECT_EQ(crossCheck("int f(int a, int b)"
                         "{ return (a + b) * (a - b) / 3; }",
                         "f", {9, 4}),
              (9u + 4) * (9 - 4) / 3);
}

TEST(EndToEnd, IfElseJoin)
{
    const char* src = "int f(int x) { int r;"
                      " if (x > 2) r = x * 2; else r = x + 100;"
                      " return r; }";
    crossCheck(src, "f", {5});
    crossCheck(src, "f", {1});
}

TEST(EndToEnd, NestedIf)
{
    const char* src =
        "int f(int x) {"
        "  int r = 0;"
        "  if (x > 0) { if (x > 10) r = 1; else r = 2; }"
        "  else { if (x < -10) r = 3; else r = 4; }"
        "  return r; }";
    for (uint32_t v : {0u, 5u, 20u, static_cast<uint32_t>(-5),
                       static_cast<uint32_t>(-20)})
        crossCheck(src, "f", {v});
}

TEST(EndToEnd, ScalarLoop)
{
    const char* src = "int f(int n) { int s = 0; int i;"
                      " for (i = 0; i < n; i++) s += i * i;"
                      " return s; }";
    crossCheck(src, "f", {0});
    crossCheck(src, "f", {1});
    crossCheck(src, "f", {17});
}

TEST(EndToEnd, Fibonacci)
{
    // The paper's Figure 2 program.
    const char* src =
        "int fib(int k) { int a = 0; int b = 1;"
        " while (k != 0) { int tmp = a; a = b; b = tmp + b; k -= 1; }"
        " return a; }";
    EXPECT_EQ(crossCheck(src, "fib", {10}), 55u);
    crossCheck(src, "fib", {0});
    crossCheck(src, "fib", {1});
}

TEST(EndToEnd, MemoryLoopStoresAndLoads)
{
    const char* src =
        "int a[64];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) a[i] = i * 2;"
        " int s = 0;"
        " for (i = 0; i < n; i++) s += a[i];"
        " return s; }";
    crossCheck(src, "f", {32});
}

TEST(EndToEnd, PointerParams)
{
    const char* src =
        "int xs[16]; int ys[16];"
        "void copy(int* d, int* s, int n)"
        "{ int i; for (i = 0; i < n; i++) d[i] = s[i]; }"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) xs[i] = i + 5;"
        " copy(ys, xs, n);"
        " int t = 0; for (i = 0; i < n; i++) t += ys[i];"
        " return t; }";
    crossCheck(src, "f", {12});
}

TEST(EndToEnd, CallsAndRecursion)
{
    const char* src =
        "int fact(int n) { if (n <= 1) return 1;"
        " return n * fact(n - 1); }"
        "int f(int n) { return fact(n) + fact(n - 1); }";
    EXPECT_EQ(crossCheck(src, "f", {5}), 120u + 24u);
}

TEST(EndToEnd, BreakAndContinue)
{
    const char* src =
        "int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) {"
        "   if ((i & 1) == 0) continue;"
        "   if (i > 20) break;"
        "   s += i; }"
        " return s; }";
    crossCheck(src, "f", {40});
}

TEST(EndToEnd, Section2ExampleBothPaths)
{
    const char* src = R"(
unsigned a[8];
unsigned srcv[1];
void f(unsigned* p, unsigned* arr, int i)
{
    #pragma independent p arr
    if (p) arr[i] += *p;
    else arr[i] = 1;
    arr[i] <<= arr[i + 1];
}
int run(int useNull)
{
    a[5] = 2u; a[6] = 3u;
    srcv[0] = 4u;
    if (useNull) f((unsigned*)0, a, 5);
    else f(srcv, a, 5);
    return (int)a[5];
}
)";
    EXPECT_EQ(crossCheck(src, "run", {0}), 48u);
    EXPECT_EQ(crossCheck(src, "run", {1}), 8u);
}

TEST(EndToEnd, DoWhileLoop)
{
    const char* src =
        "int f(int n) { int i = 0; int s = 0;"
        " do { s += i; i++; } while (i < n);"
        " return s; }";
    crossCheck(src, "f", {1});
    crossCheck(src, "f", {10});
}

TEST(EndToEnd, NestedLoops)
{
    const char* src =
        "int f(int n) { int s = 0; int i; int j;"
        " for (i = 0; i < n; i++)"
        "   for (j = 0; j <= i; j++)"
        "     s += i * j;"
        " return s; }";
    crossCheck(src, "f", {9});
}

TEST(EndToEnd, CharBuffers)
{
    const char* src =
        "char buf[32];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) buf[i] = (char)(i * 7);"
        " int s = 0; for (i = 0; i < n; i++) s += buf[i];"
        " return s; }";
    crossCheck(src, "f", {30});
}

TEST(EndToEnd, FrameLocalArray)
{
    const char* src =
        "int f(int n) { int t[8]; int i;"
        " for (i = 0; i < 8; i++) t[i] = i + n;"
        " int s = 0; for (i = 0; i < 8; i++) s += t[i] * t[i];"
        " return s; }";
    crossCheck(src, "f", {3});
}

TEST(EndToEnd, CyclesAreCountedOnPerfectMemory)
{
    SimResult r = simulate("int f(void) { return 1 + 2; }", "f", {},
                           OptLevel::Full);
    EXPECT_EQ(r.returnValue, 3u);
    // Constant-folded: the graph should finish almost immediately.
    EXPECT_LE(r.cycles, 4u);
}

} // namespace
