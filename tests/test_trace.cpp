/**
 * @file
 * Observability layer: TraceRecorder / ScopedTimer spans, JSON
 * escaping and well-formedness of the Chrome-trace export, stats-delta
 * capture, and the end-to-end guarantee that a full compile records
 * one trace event per optimization-pass run.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>

#include "driver/compiler.h"
#include "sim/dataflow_sim.h"
#include "support/stats.h"
#include "support/trace.h"
#include "test_util.h"

using namespace cash;

namespace {

// ---------------------------------------------------------------------
// A minimal JSON well-formedness checker (syntax only), so the tests
// can assert that the Chrome-trace export would load in Perfetto
// without depending on an external JSON library.
// ---------------------------------------------------------------------

struct JsonChecker
{
    const std::string& s;
    size_t i = 0;

    explicit JsonChecker(const std::string& text) : s(text) {}

    void ws()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' ||
                                s[i] == '\n' || s[i] == '\r'))
            i++;
    }

    bool literal(const char* lit)
    {
        size_t n = std::strlen(lit);
        if (s.compare(i, n, lit) != 0)
            return false;
        i += n;
        return true;
    }

    bool string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        i++;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                i++;
                if (i >= s.size())
                    return false;
                char c = s[i];
                if (c == 'u') {
                    for (int k = 0; k < 4; k++)
                        if (++i >= s.size() || !std::isxdigit(
                                static_cast<unsigned char>(s[i])))
                            return false;
                } else if (!std::strchr("\"\\/bfnrt", c)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(s[i]) < 0x20) {
                return false;  // raw control char inside a string
            }
            i++;
        }
        if (i >= s.size())
            return false;
        i++;  // closing quote
        return true;
    }

    bool number()
    {
        size_t start = i;
        if (i < s.size() && s[i] == '-')
            i++;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == '+' || s[i] == '-'))
            i++;
        return i > start;
    }

    bool value()
    {
        ws();
        if (i >= s.size())
            return false;
        switch (s[i]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        i++;  // '{'
        ws();
        if (i < s.size() && s[i] == '}') {
            i++;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (i >= s.size() || s[i] != ':')
                return false;
            i++;
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                i++;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != '}')
            return false;
        i++;
        return true;
    }

    bool array()
    {
        i++;  // '['
        ws();
        if (i < s.size() && s[i] == ']') {
            i++;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                i++;
                continue;
            }
            break;
        }
        if (i >= s.size() || s[i] != ']')
            return false;
        i++;
        return true;
    }

    bool wellFormed()
    {
        bool ok = value();
        ws();
        return ok && i == s.size();
    }
};

bool
validJson(const std::string& text)
{
    JsonChecker c(text);
    return c.wellFormed();
}

TEST(JsonChecker, SelfTest)
{
    EXPECT_TRUE(validJson("{\"a\": [1, 2.5, -3], \"b\": \"x\\ny\"}"));
    EXPECT_TRUE(validJson("[]"));
    EXPECT_FALSE(validJson("{\"a\": }"));
    EXPECT_FALSE(validJson("[1, 2"));
    EXPECT_FALSE(validJson("{\"a\" 1}"));
}

// ---------------------------------------------------------------------
// JSON escaping
// ---------------------------------------------------------------------

TEST(Trace, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string("ctl\x01") + "x"), "ctl\\u0001x");
    EXPECT_EQ(jsonEscape("\r\b\f"), "\\r\\b\\f");
}

TEST(Trace, HistBucket)
{
    EXPECT_EQ(histBucket(0), "0");
    EXPECT_EQ(histBucket(1), "1");
    EXPECT_EQ(histBucket(2), "2");
    EXPECT_EQ(histBucket(3), "le4");
    EXPECT_EQ(histBucket(4), "le4");
    EXPECT_EQ(histBucket(5), "le8");
    EXPECT_EQ(histBucket(100), "le128");
    EXPECT_EQ(histBucket(1024), "le1024");
    EXPECT_EQ(histBucket(5000), "gt1024");
}

// ---------------------------------------------------------------------
// Timers and the recorder
// ---------------------------------------------------------------------

TEST(Trace, DisabledRecorderDropsEverything)
{
    TraceRecorder rec;  // disabled by default
    {
        ScopedTimer t(&rec, "outer", "test");
    }
    rec.counterEvent("c", 0, 1);
    EXPECT_TRUE(rec.events().empty());
}

TEST(Trace, TimerNesting)
{
    TraceRecorder rec;
    rec.enable();
    {
        ScopedTimer outer(&rec, "outer", "test");
        {
            ScopedTimer inner(&rec, "inner", "test");
            inner.arg("k", static_cast<int64_t>(7));
        }
    }
    ASSERT_EQ(rec.events().size(), 2u);
    // Inner closes first, so it is recorded first.
    const TraceEvent& inner = rec.events()[0];
    const TraceEvent& outer = rec.events()[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(inner.phase, 'X');
    // Containment: the inner span lies within the outer span.
    EXPECT_GE(inner.ts, outer.ts);
    EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur);
    ASSERT_EQ(inner.args.size(), 1u);
    EXPECT_EQ(inner.args[0].key, "k");
    EXPECT_EQ(inner.args[0].i, 7);
}

TEST(Trace, MaxEventsCapCountsDrops)
{
    TraceRecorder rec;
    rec.enable();
    rec.setMaxEvents(3);
    for (int i = 0; i < 10; i++)
        rec.counterEvent("c", i, i);
    EXPECT_EQ(rec.events().size(), 3u);
    EXPECT_EQ(rec.dropped(), 7u);
    rec.clear();
    EXPECT_TRUE(rec.events().empty());
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, ChromeTraceIsWellFormedJson)
{
    TraceRecorder rec;
    rec.enable();
    {
        // Hostile names exercise the escaper through the writer.
        ScopedTimer t(&rec, "name \"with\" quotes\n", "cat\\slash");
        t.arg("str", std::string("v\t1"));
        t.arg("num", static_cast<int64_t>(-5));
    }
    rec.counterEvent("sim.lsq.occupancy", 42, 3);
    rec.instantEvent("marker", "test", 7);
    std::string json = rec.chromeTraceJson();
    EXPECT_TRUE(validJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Stats deltas
// ---------------------------------------------------------------------

TEST(Trace, StatsDeltaCapture)
{
    StatSet before;
    before.add("opt.dead_code.removed", 3);
    before.add("untouched", 1);
    StatSet after = before;
    after.add("opt.dead_code.removed", 2);
    after.add("fresh.counter", 5);

    StatSet d = after.diff(before);
    EXPECT_EQ(d.get("opt.dead_code.removed"), 2);
    EXPECT_EQ(d.get("fresh.counter"), 5);
    EXPECT_FALSE(d.has("untouched"));

    // A counter only present in the snapshot shows up negated.
    StatSet empty;
    StatSet d2 = empty.diff(before);
    EXPECT_EQ(d2.get("untouched"), -1);
}

TEST(Trace, StatSetJsonIsWellFormed)
{
    StatSet s;
    s.add("sim.cycles", 100);
    s.add("weird\"name", 1);
    EXPECT_TRUE(validJson(statSetJson(s)));
    EXPECT_TRUE(validJson(statSetJson(StatSet{})));
}

// ---------------------------------------------------------------------
// End-to-end: compile + simulate under a tracer
// ---------------------------------------------------------------------

const char* kProgram = R"(
int a[64];
int sum(int n) {
    int s = 0; int i;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}
int run(int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = i;
    return sum(n);
}
)";

TEST(Trace, OneEventPerPassRun)
{
    TraceRecorder rec;
    rec.enable();
    CompileResult r = compileSource(
        kProgram, CompileOptions().opt(OptLevel::Full).trace(&rec));

    // The pass manager bumps opt.pass.<name>.runs once per pass run
    // and records exactly one "opt"-category span for each.
    int64_t runs = 0;
    for (const auto& [k, v] : r.stats.all())
        if (k.rfind("opt.pass.", 0) == 0 &&
            k.size() > 5 && k.compare(k.size() - 5, 5, ".runs") == 0)
            runs += v;
    ASSERT_GT(runs, 0);
    EXPECT_EQ(static_cast<int64_t>(rec.byCategory("opt").size()), runs);

    // Every span carries the IR-shape args.
    for (const TraceEvent* ev : rec.byCategory("opt")) {
        bool sawNodes = false, sawRound = false;
        for (const TraceArg& a : ev->args) {
            sawNodes |= a.key == "nodes_before";
            sawRound |= a.key == "round";
        }
        EXPECT_TRUE(sawNodes) << ev->name;
        EXPECT_TRUE(sawRound) << ev->name;
    }

    // Frontend phases and the per-graph optimize spans are present.
    EXPECT_FALSE(rec.byCategory("frontend").empty());
    EXPECT_EQ(rec.byCategory("opt.graph").size(), r.graphs.size());

    // Per-pass wall time was accumulated in the stats alongside.
    EXPECT_TRUE(r.stats.has("opt.pass.dead_code.time_us"));
    EXPECT_TRUE(r.stats.has("opt.pass.dead_code.nodes_removed"));
}

TEST(Trace, SimulatorRecordsActivationsAndCounters)
{
    TraceRecorder rec;
    rec.enable();
    CompileResult r = compileSource(
        kProgram, CompileOptions().opt(OptLevel::Full).trace(&rec));

    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::realistic(2));
    sim.setTracer(&rec);
    SimResult out = sim.run("run", {16});
    EXPECT_EQ(out.returnValue, 120u);

    // One activation span per procedure call: run + the sum callee.
    EXPECT_EQ(rec.byCategory("sim.activation").size(), 2u);
    // LSQ occupancy counter samples, one per memory access.
    size_t counters = 0;
    for (const TraceEvent& ev : rec.events())
        if (ev.phase == 'C' && ev.name == "sim.lsq.occupancy")
            counters++;
    EXPECT_EQ(counters,
              static_cast<size_t>(out.stats.get("sim.mem.accesses")));

    // New simulator counter families.
    EXPECT_GT(out.stats.get("sim.fire.load"), 0);
    EXPECT_GT(out.stats.get("sim.fire.store"), 0);
    int64_t occHist = 0, latHist = 0;
    for (const auto& [k, v] : out.stats.all()) {
        if (k.rfind("sim.mem.lsq.occHist.", 0) == 0)
            occHist += v;
        if (k.rfind("sim.mem.latencyHist.", 0) == 0)
            latHist += v;
    }
    EXPECT_EQ(occHist, out.stats.get("sim.mem.accesses"));
    EXPECT_EQ(latHist, out.stats.get("sim.mem.accesses"));

    // The whole trace still serializes to well-formed JSON.
    EXPECT_TRUE(validJson(rec.chromeTraceJson()));
}

} // namespace
