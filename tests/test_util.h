/**
 * @file
 * Shared helpers for the CASH test suite: compile a Mini-C snippet and
 * run it on the baseline interpreter and/or the dataflow simulator.
 */
#ifndef CASH_TESTS_TEST_UTIL_H
#define CASH_TESTS_TEST_UTIL_H

#include <string>
#include <vector>

#include "baseline/interpreter.h"
#include "driver/compiler.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "sim/dataflow_sim.h"

namespace cash {
namespace testutil {

/** Interpret @p fn(args) in @p source with the golden interpreter. */
inline uint32_t
interpret(const std::string& source, const std::string& fn,
          const std::vector<uint32_t>& args = {})
{
    Program prog = parseProgram(source);
    analyzeProgram(prog);
    MemoryLayout layout;
    layout.build(prog);
    Interpreter interp(prog, layout);
    return interp.call(fn, args).returnValue;
}

/** Compile at @p level and simulate @p fn(args); returns the result. */
inline SimResult
simulate(const std::string& source, const std::string& fn,
         const std::vector<uint32_t>& args = {},
         OptLevel level = OptLevel::Full,
         MemConfig mem = MemConfig::perfectMemory())
{
    CompileResult r =
        compileSource(source, CompileOptions().opt(level));
    DataflowSimulator sim(r.graphPtrs(), *r.layout, mem);
    return sim.run(fn, args);
}

/**
 * Assert-helper: simulated result *and final global memory image*
 * equal the interpreter's at every optimization level.  Returns the
 * interpreted value.
 */
inline uint32_t
crossCheck(const std::string& source, const std::string& fn,
           const std::vector<uint32_t>& args = {})
{
    Program prog = parseProgram(source);
    analyzeProgram(prog);
    MemoryLayout layout;
    layout.build(prog);
    Interpreter interp(prog, layout);
    uint32_t expect = interp.call(fn, args).returnValue;

    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        CompileResult r =
            compileSource(source, CompileOptions().opt(level));
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        SimResult got = sim.run(fn, args);
        if (got.returnValue != expect)
            throw FatalError(
                "cross-check failed for " + fn + " at level " +
                optLevelName(level) + ": interpreter=" +
                std::to_string(expect) + " sim=" +
                std::to_string(got.returnValue));
        for (const MemObject& obj : r.layout->objects()) {
            if (!obj.isGlobal)
                continue;
            for (uint32_t a = obj.address;
                 a < obj.address + obj.size; a++) {
                if (sim.memory().bytes()[a] != interp.memory()[a])
                    throw FatalError(
                        "memory divergence for " + fn + " at level " +
                        optLevelName(level) + ", object " + obj.name +
                        " byte " + std::to_string(a - obj.address));
            }
        }
    }
    return expect;
}

} // namespace testutil
} // namespace cash

#endif // CASH_TESTS_TEST_UTIL_H
