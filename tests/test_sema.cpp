/**
 * @file
 * Semantic analysis: name resolution, typing, address-taken marking,
 * register/memory classification, and error detection.
 */
#include <gtest/gtest.h>

#include "test_util.h"

using namespace cash;

namespace {

Program
analyze(const std::string& src)
{
    Program p = parseProgram(src);
    analyzeProgram(p);
    return p;
}

TEST(Sema, ResolvesGlobalsAndLocals)
{
    Program p = analyze("int g; int f(int x) { int y = g + x;"
                        " return y; }");
    FuncDecl* f = p.functions[0];
    ASSERT_EQ(f->locals.size(), 1u);
    EXPECT_EQ(f->locals[0]->name, "y");
    EXPECT_GE(f->locals[0]->varId, 0);
}

TEST(Sema, UndeclaredIdentifierFails)
{
    EXPECT_THROW(analyze("int f(void) { return zz; }"), FatalError);
}

TEST(Sema, RedeclarationInSameScopeFails)
{
    EXPECT_THROW(analyze("int f(void) { int a; int a; return 0; }"),
                 FatalError);
}

TEST(Sema, ShadowingInNestedScopeAllowed)
{
    Program p = analyze("int f(int a) { { int a = 2; a += 1; }"
                        " return a; }");
    EXPECT_EQ(p.functions[0]->locals.size(), 1u);
}

TEST(Sema, GlobalsLiveInMemory)
{
    Program p = analyze("int g; void f(void) { g = 1; }");
    EXPECT_TRUE(p.globals[0]->inMemory);
    EXPECT_FALSE(p.globals[0]->addressTaken);
}

TEST(Sema, ScalarLocalsGetRegisters)
{
    Program p = analyze("int f(void) { int a = 1; int b = 2;"
                        " return a + b; }");
    for (VarDecl* l : p.functions[0]->locals) {
        EXPECT_FALSE(l->inMemory) << l->name;
        EXPECT_GE(l->varId, 0);
    }
}

TEST(Sema, AddressTakenLocalDemotedToMemory)
{
    Program p = analyze("int f(void) { int a = 1; int* p = &a;"
                        " return *p; }");
    VarDecl* a = p.functions[0]->locals[0];
    EXPECT_TRUE(a->addressTaken);
    EXPECT_TRUE(a->inMemory);
    EXPECT_EQ(a->varId, -1);
}

TEST(Sema, LocalArraysLiveInMemory)
{
    Program p = analyze("int f(void) { int t[4]; t[0] = 1;"
                        " return t[0]; }");
    EXPECT_TRUE(p.functions[0]->locals[0]->inMemory);
}

TEST(Sema, AddressOfParameterRejected)
{
    EXPECT_THROW(analyze("int f(int x) { return *(&x); }"), FatalError);
}

TEST(Sema, ArrayDecaysInCalls)
{
    Program p = analyze("int g(int* p) { return p[0]; }"
                        "int a[4];"
                        "int f(void) { return g(a); }");
    (void)p;
}

TEST(Sema, WrongArgumentCountFails)
{
    EXPECT_THROW(analyze("int g(int a, int b) { return a; }"
                         "int f(void) { return g(1); }"),
                 FatalError);
}

TEST(Sema, CallToUndeclaredFunctionFails)
{
    EXPECT_THROW(analyze("int f(void) { return nosuch(1); }"),
                 FatalError);
}

TEST(Sema, VoidReturnChecks)
{
    EXPECT_THROW(analyze("void f(void) { return 1; }"), FatalError);
    EXPECT_THROW(analyze("int f(void) { return; }"), FatalError);
}

TEST(Sema, BreakOutsideLoopFails)
{
    EXPECT_THROW(analyze("void f(void) { break; }"), FatalError);
    EXPECT_THROW(analyze("void f(void) { continue; }"), FatalError);
}

TEST(Sema, AssignToNonLvalueFails)
{
    EXPECT_THROW(analyze("void f(int a) { (a + 1) = 2; }"), FatalError);
}

TEST(Sema, AssignToArrayNameFails)
{
    EXPECT_THROW(analyze("int t[4]; void f(int* p) { t = p; }"),
                 FatalError);
}

TEST(Sema, StringLiteralMaterializesConstGlobal)
{
    Program p = analyze("int f(void) { char* s = \"hi\"; "
                        "return s[0]; }");
    bool found = false;
    for (VarDecl* g : p.globals) {
        if (g->name.rfind("__str", 0) == 0) {
            found = true;
            EXPECT_TRUE(g->type->isConst);
            EXPECT_EQ(g->type->arraySize, 3);  // 'h','i',NUL
        }
    }
    EXPECT_TRUE(found);
}

TEST(Sema, ConstArrayStaysConst)
{
    Program p = analyze("const int t[2] = {1, 2};"
                        "int f(void) { return t[1]; }");
    EXPECT_TRUE(p.globals[0]->type->isConst);
}

TEST(Sema, UsualArithmeticConversions)
{
    Program p = analyze("unsigned f(unsigned a, int b)"
                        "{ return a + b; }");
    auto* ret =
        static_cast<ReturnStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(ret->value->type->kind, TypeKind::UInt);
}

TEST(Sema, CharPromotesToInt)
{
    Program p = analyze("char c[1]; int f(void) { return c[0] + 1; }");
    auto* ret =
        static_cast<ReturnStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(ret->value->type->kind, TypeKind::Int);
}

TEST(Sema, ComparisonsTypeAsInt)
{
    Program p = analyze("int f(int* p, int* q) { return p == q; }");
    auto* ret =
        static_cast<ReturnStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(ret->value->type->kind, TypeKind::Int);
}

TEST(Sema, SubscriptOfNonPointerFails)
{
    EXPECT_THROW(analyze("int f(int a) { return a[0]; }"), FatalError);
}

TEST(Sema, DerefOfNonPointerFails)
{
    EXPECT_THROW(analyze("int f(int a) { return *a; }"), FatalError);
}

TEST(Sema, RedefinitionOfFunctionFails)
{
    EXPECT_THROW(analyze("int f(void) { return 1; }"
                         "int f(void) { return 2; }"),
                 FatalError);
}

TEST(Sema, PrototypeThenDefinitionOk)
{
    Program p = analyze("int f(int x);"
                        "int g(void) { return f(1); }"
                        "int f(int x) { return x; }");
    // The call must resolve to the definition.
    EXPECT_EQ(testutil::interpret("int f(int x);"
                                  "int g(void) { return f(5); }"
                                  "int f(int x) { return x * 2; }",
                                  "g"),
              10u);
}

} // namespace
