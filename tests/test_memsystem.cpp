/**
 * @file
 * Memory-system models (§7.3): caches, TLB, LSQ arbitration and the
 * combined hierarchy timing.
 */
#include <gtest/gtest.h>

#include "sim/cache.h"
#include "sim/lsq.h"
#include "sim/memory_system.h"
#include "sim/tlb.h"
#include "test_util.h"

using namespace cash;

namespace {

TEST(Cache, HitAfterMiss)
{
    Cache c("l1", 8 * 1024, 2, 32, 2);
    auto r1 = c.access(0x1000, false);
    EXPECT_FALSE(r1.hit);
    auto r2 = c.access(0x1000, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.latency, 2u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineHits)
{
    Cache c("l1", 8 * 1024, 2, 32, 2);
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x101C, false).hit);  // same 32B line
    EXPECT_FALSE(c.access(0x1020, false).hit); // next line
}

TEST(Cache, LruEviction)
{
    // Direct-mapped-ish: 2-way, force 3 lines into one set.
    Cache c("t", 2 * 32 * 4, 2, 32, 1);  // 4 sets
    uint32_t setStride = 32 * 4;
    c.access(0x0, false);
    c.access(0x0 + setStride, false);
    c.access(0x0 + 2 * setStride, false);  // evicts 0x0
    EXPECT_FALSE(c.access(0x0, false).hit);
    EXPECT_TRUE(c.access(0x0 + 2 * setStride, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c("t", 2 * 32 * 4, 2, 32, 1);
    uint32_t setStride = 32 * 4;
    c.access(0x0, true);  // dirty
    c.access(0x0 + setStride, false);
    auto r = c.access(0x0 + 2 * setStride, false);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Tlb, MissThenHit)
{
    Tlb tlb(64, 4096, 30);
    EXPECT_EQ(tlb.access(0x5000), 30u);
    EXPECT_EQ(tlb.access(0x5FFC), 0u);  // same page
    EXPECT_EQ(tlb.access(0x6000), 30u); // next page
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb(4, 4096, 30);
    for (uint32_t p = 0; p < 5; p++)
        tlb.access(p * 4096);
    // Page 0 was evicted by page 4 (LRU).
    EXPECT_EQ(tlb.access(0), 30u);
    // Re-inserting page 0 evicted the then-LRU page 1.
    EXPECT_EQ(tlb.access(1 * 4096), 30u);
}

TEST(Lsq, PortSerialization)
{
    Lsq lsq(32, 2);
    // Three requests in the same cycle: two issue at t=0, the third
    // waits for a port.
    EXPECT_EQ(lsq.issue(0), 0u);
    EXPECT_EQ(lsq.issue(0), 0u);
    EXPECT_EQ(lsq.issue(0), 1u);
    EXPECT_EQ(lsq.portStalls(), 1u);
}

TEST(Lsq, SizeLimitsOutstanding)
{
    Lsq lsq(2, 4);
    uint64_t t0 = lsq.issue(0);
    lsq.complete(100);
    uint64_t t1 = lsq.issue(0);
    lsq.complete(100);
    // Queue full until t=100.
    uint64_t t2 = lsq.issue(1);
    EXPECT_GE(t2, 100u);
    EXPECT_GE(lsq.fullStalls(), 1u);
    (void)t0;
    (void)t1;
}

TEST(MemorySystem, PerfectIsFlat)
{
    MemorySystem ms(MemConfig::perfectMemory());
    for (int i = 0; i < 100; i++) {
        auto t = ms.request(0x1000 + i * 64, false, 4, 10);
        EXPECT_EQ(t.start, 10u);
        EXPECT_EQ(t.complete, 12u);
    }
}

TEST(MemorySystem, ColdMissPaysDram)
{
    MemorySystem ms(MemConfig::realistic(2));
    auto t = ms.request(0x4000, false, 4, 0);
    // TLB miss (30) + L1 (2) + L2 (8) + DRAM line fill (72 + 7*4).
    EXPECT_EQ(t.complete - t.start, 30u + 2 + 8 + 72 + 28);
}

TEST(MemorySystem, WarmHitIsL1Latency)
{
    MemorySystem ms(MemConfig::realistic(2));
    ms.request(0x4000, false, 4, 0);
    auto t = ms.request(0x4004, false, 4, 500);
    EXPECT_EQ(t.complete - t.start, 2u);
}

TEST(MemorySystem, L2HitAfterL1Eviction)
{
    MemConfig cfg = MemConfig::realistic(2);
    MemorySystem ms(cfg);
    ms.request(0x4000, false, 4, 0);
    // Stream through enough lines to evict 0x4000 from the 8KB L1 but
    // not from the 256KB L2.
    uint64_t t = 1000;
    for (uint32_t a = 0; a < 16 * 1024; a += 32)
        ms.request(0x10000 + a, false, 4, t += 200);
    auto r = ms.request(0x4000, false, 4, t + 10000);
    EXPECT_EQ(r.complete - r.start, cfg.l1Latency + cfg.l2Latency);
}

TEST(MemorySystem, StatsReported)
{
    MemorySystem ms(MemConfig::realistic(1));
    ms.request(0x4000, false, 4, 0);
    ms.request(0x4000, true, 4, 10);
    StatSet stats;
    ms.reportStats(stats);
    EXPECT_EQ(stats.get("sim.mem.accesses"), 2);
    EXPECT_EQ(stats.get("sim.mem.l1.hits"), 1);
    EXPECT_EQ(stats.get("sim.mem.l1.misses"), 1);
}

TEST(MemorySystem, BandwidthMattersUnderLoad)
{
    // 1-port vs 4-port: a burst of independent accesses finishes the
    // port-arbitration phase 4x faster.
    MemorySystem one(MemConfig::realistic(1));
    MemorySystem four(MemConfig::realistic(4));
    uint64_t lastOne = 0, lastFour = 0;
    for (int i = 0; i < 64; i++) {
        lastOne = std::max(lastOne,
                           one.request(0x8000u + i * 4, false, 4, 0)
                               .start);
        lastFour = std::max(lastFour,
                            four.request(0x8000u + i * 4, false, 4, 0)
                                .start);
    }
    EXPECT_GT(lastOne, lastFour * 3);
}

} // namespace
