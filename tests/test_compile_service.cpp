/**
 * @file
 * Tests for the compile service (docs/SERVICE.md): the JSON codec,
 * the `cash-svc-v1` frame/request/response layers, the
 * content-addressed result cache, and an in-process ServiceServer
 * driven through real Unix-domain sockets — cache hit determinism,
 * concurrent-vs-serial byte identity, malformed-input recovery and
 * graceful shutdown with in-flight requests.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "driver/driver_lib.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/json.h"

using namespace cash;

namespace {

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

TEST(Json, ParseRoundtrip)
{
    const std::string text =
        R"({"a":1,"b":[true,false,null],"c":{"x":-2,"y":"s"},"d":1.5})";
    Json j;
    ASSERT_TRUE(Json::parse(text, &j).isOk());
    EXPECT_EQ(j.dump(), text);
    EXPECT_EQ(j.getInt("a"), 1);
    ASSERT_NE(j.get("b"), nullptr);
    EXPECT_EQ(j.get("b")->items().size(), 3u);
    EXPECT_TRUE(j.get("b")->items()[0].asBool());
    EXPECT_EQ(j.get("c")->getInt("x"), -2);
    EXPECT_EQ(j.get("c")->getString("y"), "s");
    EXPECT_DOUBLE_EQ(j.get("d")->asDouble(), 1.5);
}

TEST(Json, StringEscapes)
{
    Json j;
    ASSERT_TRUE(
        Json::parse(R"(["\"\\\/\b\f\n\r\t","\u0041\u00e9\u20ac"])", &j)
            .isOk());
    EXPECT_EQ(j.items()[0].asString(), "\"\\/\b\f\n\r\t");
    EXPECT_EQ(j.items()[1].asString(), "A\xc3\xa9\xe2\x82\xac");

    // Surrogate pair → 4-byte UTF-8 (U+1F600).
    ASSERT_TRUE(Json::parse(R"("\ud83d\ude00")", &j).isOk());
    EXPECT_EQ(j.asString(), "\xf0\x9f\x98\x80");

    // Dump escapes what it must and survives a reparse.
    Json s = Json::string(std::string("a\"b\\c\nd\x01") + "e");
    Json back;
    ASSERT_TRUE(Json::parse(s.dump(), &back).isOk());
    EXPECT_EQ(back.asString(), s.asString());
}

TEST(Json, Numbers)
{
    Json j;
    ASSERT_TRUE(Json::parse("[0,-7,9007199254740993,2.5e3]", &j).isOk());
    EXPECT_EQ(j.items()[0].kind(), Json::Kind::Int);
    EXPECT_EQ(j.items()[1].asInt(), -7);
    // Integral literals stay exact int64 (doubles would round this).
    EXPECT_EQ(j.items()[2].asInt(), 9007199254740993LL);
    EXPECT_EQ(j.items()[3].kind(), Json::Kind::Double);
    EXPECT_DOUBLE_EQ(j.items()[3].asDouble(), 2500.0);
}

TEST(Json, ParseErrors)
{
    Json j;
    EXPECT_FALSE(Json::parse("", &j).isOk());
    EXPECT_FALSE(Json::parse("{", &j).isOk());
    EXPECT_FALSE(Json::parse("[1,]", &j).isOk());
    EXPECT_FALSE(Json::parse("{\"a\":1} trailing", &j).isOk());
    EXPECT_FALSE(Json::parse("\"\\q\"", &j).isOk());
    EXPECT_FALSE(Json::parse("\"\\ud83d\"", &j).isOk()); // lone surrogate
    EXPECT_FALSE(Json::parse("01", &j).isOk());
    EXPECT_FALSE(Json::parse("nul", &j).isOk());

    // Depth limit bounds recursion.
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_FALSE(Json::parse(deep, &j, 64).isOk());
    EXPECT_TRUE(Json::parse(deep, &j, 128).isOk());
}

// ---------------------------------------------------------------------
// Protocol: frames, cache keys, result cache
// ---------------------------------------------------------------------

TEST(SvcProtocol, FrameRoundtrip)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(writeFrame(fds[0], "hello").isOk());
    ASSERT_TRUE(writeFrame(fds[0], "").isOk());
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(readFrame(fds[1], &payload, &eof).isOk());
    EXPECT_FALSE(eof);
    EXPECT_EQ(payload, "hello");
    ASSERT_TRUE(readFrame(fds[1], &payload, &eof).isOk());
    EXPECT_EQ(payload, "");

    // Closing between frames is a *clean* EOF ...
    ::close(fds[0]);
    ASSERT_TRUE(readFrame(fds[1], &payload, &eof).isOk());
    EXPECT_TRUE(eof);
    ::close(fds[1]);

    // ... closing inside a frame is an error (truncation).
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    uint8_t hdr[4] = {0, 0, 0, 100}; // promises 100 payload bytes
    ASSERT_EQ(::send(fds[0], hdr, 4, 0), 4);
    ASSERT_EQ(::send(fds[0], "short", 5, 0), 5);
    ::close(fds[0]);
    EXPECT_FALSE(readFrame(fds[1], &payload, &eof).isOk());
    ::close(fds[1]);

    // Oversize frames are rejected without allocating the payload.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    uint8_t big[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(fds[0], big, 4, 0), 4);
    Status st = readFrame(fds[1], &payload, &eof, 1024);
    EXPECT_FALSE(st.isOk());
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(SvcProtocol, CacheKeyCoversResultsNotIdentity)
{
    Json j;
    ASSERT_TRUE(Json::parse(
        R"({"op":"compile","id":7,"label":"a.c",)"
        R"("source":"int f(){return 1;}",)"
        R"("options":{"opt":"full","jobs":4}})", &j).isOk());
    SvcRequest a;
    ASSERT_TRUE(parseSvcRequest(j, &a).isOk());

    // id / label / jobs cannot change the result → same key.
    SvcRequest b = a;
    b.id = 99;
    b.label = "other.c";
    b.driver.jobs = 1;
    EXPECT_EQ(svcCacheKey(a), svcCacheKey(b));

    // Anything result-affecting → different key.
    SvcRequest c = a;
    c.driver.source += " ";
    EXPECT_NE(svcCacheKey(a), svcCacheKey(c));
    SvcRequest d = a;
    d.driver.target.level = OptLevel::None;
    EXPECT_NE(svcCacheKey(a), svcCacheKey(d));
    SvcRequest e = a;
    e.driver.runSpec = "f()";
    EXPECT_NE(svcCacheKey(a), svcCacheKey(e));
    SvcRequest f = a;
    f.driver.wantDot = true;
    EXPECT_NE(svcCacheKey(a), svcCacheKey(f));
    SvcRequest g = a;
    g.driver.target.simEngine("event");
    EXPECT_NE(svcCacheKey(a), svcCacheKey(g));
}

TEST(SvcProtocol, RequestValidation)
{
    auto parse = [](const std::string& text, SvcRequest* out) {
        Json j;
        Status st = Json::parse(text, &j);
        if (!st.isOk())
            return st;
        return parseSvcRequest(j, out);
    };
    SvcRequest req;
    EXPECT_FALSE(parse(R"({"op":"conjure"})", &req).isOk());
    EXPECT_FALSE(parse(R"({"op":"compile"})", &req).isOk()); // no source
    EXPECT_FALSE(parse(
        R"({"op":"simulate","source":"int f(){return 1;}"})",
        &req).isOk()); // simulate requires options.run
    EXPECT_FALSE(parse(
        R"({"op":"compile","source":"int f(){return 1;}",)"
        R"("options":{"mem":"imaginary"}})", &req).isOk());
    EXPECT_FALSE(parse(
        R"({"op":"compile","source":"int f(){return 1;}",)"
        R"("options":{"opt":17}})", &req).isOk());

    ASSERT_TRUE(parse(
        R"({"op":"analyze","source":"int f(){return 1;}"})",
        &req).isOk());
    EXPECT_TRUE(req.driver.analyze); // op analyze forces the flag

    // Unknown extra fields are ignored (forward compatibility).
    ASSERT_TRUE(parse(
        R"({"op":"ping","future_field":{"x":1}})", &req).isOk());
}

TEST(SvcCache, LruAndByteCaps)
{
    ResultCache cache(/*maxEntries=*/2, /*maxBytes=*/1 << 20);
    std::string out;
    EXPECT_FALSE(cache.lookup("a", &out));
    cache.insert("a", "1");
    cache.insert("b", "2");
    EXPECT_TRUE(cache.lookup("a", &out)); // refresh a
    EXPECT_EQ(out, "1");
    cache.insert("c", "3");               // evicts b (LRU)
    EXPECT_FALSE(cache.lookup("b", &out));
    EXPECT_TRUE(cache.lookup("a", &out));
    EXPECT_TRUE(cache.lookup("c", &out));
    ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 2);
    EXPECT_EQ(s.evictions, 1);

    // Byte cap: inserting over budget keeps at least the newest entry.
    ResultCache tiny(/*maxEntries=*/16, /*maxBytes=*/8);
    tiny.insert("k1", "0123456789");
    EXPECT_TRUE(tiny.lookup("k1", &out));
    tiny.insert("k2", "xyz");
    EXPECT_FALSE(tiny.lookup("k1", &out));
    EXPECT_TRUE(tiny.lookup("k2", &out));
}

// ---------------------------------------------------------------------
// In-process server end-to-end
// ---------------------------------------------------------------------

const char* kProgA =
    "int suma(int n) {\n"
    "  int s = 0;\n"
    "  int i;\n"
    "  for (i = 0; i < n; i++) s = s + i;\n"
    "  return s;\n"
    "}\n";

const char* kProgB =
    "int scale(int n) {\n"
    "  int s = 1;\n"
    "  int i;\n"
    "  for (i = 0; i < n; i++) s = s * 2;\n"
    "  return s;\n"
    "}\n";

const char* kProgC =
    "int triangle(int n) {\n"
    "  int s = 0;\n"
    "  int i;\n"
    "  int j;\n"
    "  for (i = 0; i < n; i++)\n"
    "    for (j = 0; j < i; j++) s = s + 1;\n"
    "  return s;\n"
    "}\n";

std::string
testSocketPath(const std::string& tag)
{
    return "/tmp/cash_svc_test_" + std::to_string(::getpid()) + "_" +
           tag + ".sock";
}

class ServiceFixture : public ::testing::Test
{
  protected:
    void
    startServer(const std::string& tag, size_t maxQueue = 4096)
    {
        cfg_.socketPath = testSocketPath(tag);
        cfg_.jobs = 2;
        cfg_.maxQueueDepth = maxQueue;
        server_ = std::make_unique<ServiceServer>(cfg_);
        ASSERT_TRUE(server_->start().isOk());
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
    }

    ServiceConfig cfg_;
    std::unique_ptr<ServiceServer> server_;
};

TEST_F(ServiceFixture, HandshakeReportsVersion)
{
    startServer("hello");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());
    EXPECT_EQ(client.hello().getString("schema"), kSvcSchema);
    EXPECT_EQ(client.hello().getInt("protocol"), kSvcProtocolVersion);
    EXPECT_EQ(client.hello().getString("server"), "cashd");
    EXPECT_EQ(client.hello().getString("version"), kCashVersion);
    EXPECT_TRUE(client.ping().isOk());
}

TEST_F(ServiceFixture, CacheHitIsByteIdentical)
{
    startServer("cache");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());

    Json opts = Json::object();
    opts.set("run", Json::string("suma(10)"));
    opts.set("dot", Json::boolean(true));

    auto bodyOf = [](const Json& resp) {
        const Json* b = resp.get("body");
        return b ? b->dump() : std::string();
    };

    Json r1, r2, r3;
    Json q1 = makeCompileRequest("compile", kProgA, opts, "first");
    q1.set("id", Json::number(int64_t{1}));
    ASSERT_TRUE(client.call(std::move(q1), &r1).isOk());
    ASSERT_TRUE(r1.getBool("ok"));
    EXPECT_FALSE(r1.getBool("cached"));
    EXPECT_EQ(r1.get("body")->getInt("exit"), 0);
    EXPECT_EQ(r1.get("body")->get("sim")->getInt("return"), 45);
    EXPECT_FALSE(r1.get("body")->getString("dot").empty());

    // Identical request, different id + label → cache hit, and the
    // body (the cached unit) is byte-identical.
    Json q2 = makeCompileRequest("compile", kProgA, opts, "second");
    q2.set("id", Json::number(int64_t{2}));
    ASSERT_TRUE(client.call(std::move(q2), &r2).isOk());
    ASSERT_TRUE(r2.getBool("ok"));
    EXPECT_TRUE(r2.getBool("cached"));
    EXPECT_EQ(bodyOf(r1), bodyOf(r2));

    // A different request is a miss.
    Json q3 = makeCompileRequest("compile", kProgB, opts);
    ASSERT_TRUE(client.call(std::move(q3), &r3).isOk());
    EXPECT_FALSE(r3.getBool("cached"));
    EXPECT_NE(bodyOf(r1), bodyOf(r3));

    StatSet m = server_->metrics();
    EXPECT_EQ(m.get("svc.cache.hits"), 1);
    EXPECT_EQ(m.get("svc.cache.misses"), 2);
    EXPECT_EQ(m.get("svc.requests.compile"), 3);
    EXPECT_GE(m.get("svc.latency.count"), 3);
}

TEST_F(ServiceFixture, ConcurrentClientsMatchSerialByteForByte)
{
    const std::vector<std::string> sources = {kProgA, kProgB, kProgC,
                                              kProgA, kProgC, kProgB};

    // Serial reference pass on a dedicated server (cold cache).
    std::vector<std::string> serial(sources.size());
    {
        startServer("serial");
        ServiceClient client;
        ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());
        for (size_t i = 0; i < sources.size(); i++) {
            Json resp;
            ASSERT_TRUE(client
                            .call(makeCompileRequest("compile",
                                                     sources[i]),
                                  &resp)
                            .isOk());
            ASSERT_TRUE(resp.getBool("ok"));
            serial[i] = resp.get("body")->dump();
        }
        server_->stop();
    }

    // Concurrent pass: one client thread per request, fresh server.
    startServer("conc");
    std::vector<std::string> conc(sources.size());
    std::vector<std::thread> threads;
    for (size_t i = 0; i < sources.size(); i++) {
        threads.emplace_back([&, i] {
            ServiceClient client;
            if (!client.connect(cfg_.socketPath).isOk())
                return;
            Json resp;
            if (!client.call(makeCompileRequest("compile", sources[i]),
                             &resp)
                     .isOk())
                return;
            if (resp.getBool("ok"))
                conc[i] = resp.get("body")->dump();
        });
    }
    for (std::thread& t : threads)
        t.join();

    for (size_t i = 0; i < sources.size(); i++) {
        ASSERT_FALSE(conc[i].empty()) << "request " << i << " failed";
        EXPECT_EQ(conc[i], serial[i]) << "request " << i;
    }
}

TEST_F(ServiceFixture, MalformedJsonIsRecoverable)
{
    startServer("badjson");

    // Raw socket: hand-rolled frames below the client abstraction.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk()); // hello

    // A well-formed frame holding garbage JSON: structured error,
    // connection stays usable.
    ASSERT_TRUE(writeFrame(fd, "{this is not json").isOk());
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk());
    ASSERT_FALSE(eof);
    Json resp;
    ASSERT_TRUE(Json::parse(payload, &resp).isOk());
    EXPECT_FALSE(resp.getBool("ok", true));
    EXPECT_EQ(resp.get("error")->getString("code"), kSvcErrBadRequest);

    // A valid request on the *same* connection still works.
    ASSERT_TRUE(writeFrame(fd, R"({"op":"ping","id":5})").isOk());
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk());
    ASSERT_TRUE(Json::parse(payload, &resp).isOk());
    EXPECT_TRUE(resp.getBool("ok"));
    EXPECT_EQ(resp.getInt("id"), 5);

    // Bad request fields: structured error, connection stays usable.
    ASSERT_TRUE(writeFrame(fd, R"({"op":"compile","id":6})").isOk());
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk());
    ASSERT_TRUE(Json::parse(payload, &resp).isOk());
    EXPECT_FALSE(resp.getBool("ok", true));
    EXPECT_EQ(resp.getInt("id"), 6);
    EXPECT_EQ(resp.get("error")->getString("code"), kSvcErrBadRequest);

    StatSet m = server_->metrics();
    EXPECT_EQ(m.get("svc.protocol.errors"), 2);
    ::close(fd);
}

TEST_F(ServiceFixture, TruncatedFrameGetsStructuredErrorAndHangup)
{
    startServer("badframe");
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string payload;
    bool eof = false;
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk()); // hello

    // Header promises 64 bytes; deliver 3 and half-close.  Frame-level
    // damage: the server answers bad_frame once, then hangs up.
    uint8_t hdr[4] = {0, 0, 0, 64};
    ASSERT_EQ(::send(fd, hdr, 4, 0), 4);
    ASSERT_EQ(::send(fd, "abc", 3, 0), 3);
    ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk());
    ASSERT_FALSE(eof);
    Json resp;
    ASSERT_TRUE(Json::parse(payload, &resp).isOk());
    EXPECT_FALSE(resp.getBool("ok", true));
    EXPECT_EQ(resp.get("error")->getString("code"), kSvcErrBadFrame);

    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk());
    EXPECT_TRUE(eof); // server hung up
    ::close(fd);

    // An oversize length prefix is the same class of damage.
    ASSERT_EQ((fd = ::socket(AF_UNIX, SOCK_STREAM, 0)) >= 0, true);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk()); // hello
    uint8_t big[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(fd, big, 4, 0), 4);
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk());
    ASSERT_FALSE(eof);
    ASSERT_TRUE(Json::parse(payload, &resp).isOk());
    EXPECT_EQ(resp.get("error")->getString("code"), kSvcErrBadFrame);
    ASSERT_TRUE(readFrame(fd, &payload, &eof).isOk());
    EXPECT_TRUE(eof);
    ::close(fd);
}

TEST_F(ServiceFixture, GracefulStopDrainsInFlightRequests)
{
    startServer("drain");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());

    // Fire a compile from a helper thread, wait until the server has
    // accepted it into the queue, then stop() — the response must
    // still arrive (stop drains, it does not drop).
    Json resp;
    bool ok = false;
    std::thread t([&] {
        Json opts = Json::object();
        opts.set("run", Json::string("triangle(40)"));
        ok = client.call(makeCompileRequest("simulate", kProgC, opts),
                         &resp)
                 .isOk();
    });
    for (int spin = 0; spin < 2000; spin++) {
        if (server_->metrics().get("svc.requests.compile") >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(server_->metrics().get("svc.requests.compile"), 1);
    server_->stop();
    t.join();

    ASSERT_TRUE(ok);
    ASSERT_TRUE(resp.getBool("ok"));
    EXPECT_EQ(resp.get("body")->get("sim")->getInt("return"), 780);
    EXPECT_FALSE(server_->running());
}

TEST_F(ServiceFixture, ShutdownOpFlagsTheServer)
{
    startServer("shutdownop");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());
    EXPECT_FALSE(server_->waitForStopRequest(0));
    ASSERT_TRUE(client.shutdownServer().isOk());
    EXPECT_TRUE(server_->waitForStopRequest(5000));
    server_->stop();
    EXPECT_FALSE(server_->running());
}

TEST_F(ServiceFixture, EngineOptionSelectsValidatesAndCacheKeys)
{
    startServer("engine");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());

    // Perfect memory: the macro engine's exactness contract promises
    // byte-identical return *and* cycles vs the event engine
    // (docs/SIMULATOR.md), so the service results must agree exactly.
    auto simulate = [&](const char* engine, Json* resp) {
        Json opts = Json::object();
        opts.set("run", Json::string("suma(10)"));
        opts.set("mem", Json::string("perfect"));
        if (engine)
            opts.set("engine", Json::string(engine));
        return client.call(
            makeCompileRequest("simulate", kProgA, opts), resp);
    };

    Json macro1, event1;
    ASSERT_TRUE(simulate(nullptr, &macro1).isOk()); // default: macro
    ASSERT_TRUE(macro1.getBool("ok"));
    const Json* ms = macro1.get("body")->get("sim");
    EXPECT_EQ(ms->getInt("return"), 45);

    ASSERT_TRUE(simulate("event", &event1).isOk());
    ASSERT_TRUE(event1.getBool("ok"));
    const Json* es = event1.get("body")->get("sim");
    EXPECT_EQ(es->getInt("return"), 45);
    EXPECT_EQ(es->getInt("cycles"), ms->getInt("cycles"));
    // The engine is part of the cache key: an otherwise identical
    // request on the other engine must not reuse the macro entry.
    EXPECT_FALSE(event1.getBool("cached"));

    // An explicit macro request matches the default-engine entry and
    // replays byte-identically from the cache.
    Json macro2;
    ASSERT_TRUE(simulate("macro", &macro2).isOk());
    ASSERT_TRUE(macro2.getBool("ok"));
    EXPECT_TRUE(macro2.getBool("cached"));
    EXPECT_EQ(macro1.get("body")->dump(), macro2.get("body")->dump());

    // An unknown engine is rejected up front as a bad request —
    // nothing compiles, nothing is cached.
    Json bad;
    ASSERT_TRUE(simulate("warp", &bad).isOk());
    EXPECT_FALSE(bad.getBool("ok", true));
    EXPECT_EQ(bad.get("error")->getString("code"), kSvcErrBadRequest);

    StatSet m = server_->metrics();
    EXPECT_EQ(m.get("svc.cache.hits"), 1);
    EXPECT_EQ(m.get("svc.cache.misses"), 2);
}

TEST_F(ServiceFixture, AnalyzeAndArtifactsThroughTheService)
{
    startServer("analyze");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());

    Json opts = Json::object();
    opts.set("analyze", Json::boolean(true));
    opts.set("cfg", Json::boolean(true));
    opts.set("graph", Json::boolean(true));
    Json resp;
    ASSERT_TRUE(
        client.call(makeCompileRequest("analyze", kProgA, opts), &resp)
            .isOk());
    ASSERT_TRUE(resp.getBool("ok"));
    const Json* body = resp.get("body");
    ASSERT_NE(body->get("analysis"), nullptr);
    EXPECT_EQ(body->get("analysis")->getInt("errors"), 0);
    EXPECT_FALSE(body->getString("cfg").empty());
    EXPECT_FALSE(body->getString("graph").empty());
    // The embedded stats document is the deterministic variant.
    const Json* stats = body->get("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->getString("schema"), "cash-stats-v1");
}

// ---------------------------------------------------------------------
// Guardrails: event cap, wall-clock budget
// ---------------------------------------------------------------------

TEST(DriverGuardrail, WallBudgetDegradesToTimeoutOutcome)
{
    // The driver-level plumbing under the service guardrail: a 1 ms
    // wall budget on a multi-million-event simulation degrades to a
    // reported outcome, never a hang or an abort.
    DriverRequest req;
    req.source = kProgC;
    req.runSpec = "triangle(2000)";
    req.simWallMs = 1;
    DriverReply rep = runDriverRequest(req);
    ASSERT_TRUE(rep.ranSim);
    EXPECT_EQ(rep.simOutcome, SimOutcome::Timeout);
    EXPECT_EQ(rep.exitCode, 1);
    EXPECT_NE(rep.simError.find("wall-clock"), std::string::npos)
        << rep.simError;
}

TEST_F(ServiceFixture, EventCapClampsRunawayRequests)
{
    // A request asking for an unlimited event budget gets the
    // server's cap instead and degrades to an ordinary event_limit
    // outcome.
    cfg_.maxEventsCap = 1000;
    startServer("evcap");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());

    Json opts = Json::object();
    opts.set("run", Json::string("triangle(40)"));
    Json resp;
    ASSERT_TRUE(
        client.call(makeCompileRequest("simulate", kProgC, opts),
                    &resp)
            .isOk());
    ASSERT_TRUE(resp.getBool("ok"));
    const Json* sim = resp.get("body")->get("sim");
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->getString("outcome"), "event_limit");
    EXPECT_EQ(resp.get("body")->getInt("exit"), 1);
}

TEST_F(ServiceFixture, WallGuardTimesOutAndNeverCaches)
{
    cfg_.simWallMs = 1;
    cfg_.maxEventsCap = 0; // isolate the wall guard
    startServer("wall");
    ServiceClient client;
    ASSERT_TRUE(client.connect(cfg_.socketPath).isOk());

    Json opts = Json::object();
    opts.set("run", Json::string("triangle(2000)"));
    auto timedOut = [&](Json* resp) {
        Status st = client.call(
            makeCompileRequest("simulate", kProgC, opts), resp);
        ASSERT_TRUE(st.isOk());
        ASSERT_TRUE(resp->getBool("ok"));
        const Json* sim = resp->get("body")->get("sim");
        ASSERT_NE(sim, nullptr);
        EXPECT_EQ(sim->getString("outcome"), "timeout");
    };

    Json r1, r2;
    timedOut(&r1);
    // A timeout depends on host load, so the result must not enter
    // the cache: the identical request recomputes (and times out
    // again under the same budget) instead of replaying a hit.
    timedOut(&r2);
    EXPECT_FALSE(r2.getBool("cached"));
    EXPECT_EQ(server_->metrics().get("svc.cache.hits"), 0);
}

// ---------------------------------------------------------------------
// Client: connect retry, I/O timeouts
// ---------------------------------------------------------------------

TEST(ClientRetry, BacksOffUntilTheServerAppears)
{
    std::string path = testSocketPath("retry");
    ::unlink(path.c_str());

    // Start the server ~150 ms from now; the client's capped backoff
    // (20, 40, 80, ... ms) must ride out the ECONNREFUSED window.
    ServiceConfig cfg;
    cfg.socketPath = path;
    cfg.jobs = 1;
    std::unique_ptr<ServiceServer> server;
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        server = std::make_unique<ServiceServer>(cfg);
        ASSERT_TRUE(server->start().isOk());
    });

    ServiceClient client;
    Status st = client.connectWithRetry(path, 10, 20);
    starter.join();
    EXPECT_TRUE(st.isOk()) << st.message();
    EXPECT_TRUE(client.ping().isOk());
    client.close();
    if (server)
        server->stop();
}

TEST(ClientRetry, ExhaustsAttemptsAgainstADeadSocket)
{
    std::string path = testSocketPath("noserver");
    ::unlink(path.c_str());
    ServiceClient client;
    auto t0 = std::chrono::steady_clock::now();
    Status st = client.connectWithRetry(path, 3, 30);
    auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_FALSE(st.isOk());
    // Two backoff sleeps (30 + 60 ms) separate the three attempts.
    EXPECT_GE(elapsed.count(), 80);
    EXPECT_FALSE(client.connected());
}

TEST(ClientTimeout, BoundsAHungServer)
{
    // A listener that accepts into its backlog but never sends the
    // hello frame: without SO_RCVTIMEO the handshake blocks forever.
    std::string path = testSocketPath("hung");
    ::unlink(path.c_str());
    int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 8), 0);

    ServiceClient client;
    ASSERT_TRUE(client.setIoTimeoutMs(200).isOk());
    auto t0 = std::chrono::steady_clock::now();
    Status st = client.connect(path);
    auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    EXPECT_FALSE(st.isOk());
    EXPECT_LT(elapsed.count(), 5000);
    ::close(lfd);
    ::unlink(path.c_str());
}

} // namespace
