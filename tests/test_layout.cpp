/**
 * @file
 * Memory layout: object placement, alignment, initial images, frame
 * offsets and extern-array backing.
 */
#include <gtest/gtest.h>

#include "test_util.h"

using namespace cash;

namespace {

struct Built
{
    Program prog;
    MemoryLayout layout;
};

Built
build(const std::string& src)
{
    Built b{parseProgram(src), {}};
    analyzeProgram(b.prog);
    b.layout.build(b.prog);
    return b;
}

TEST(Layout, GlobalsStartAtBase)
{
    Built b = build("int a; int c[4];");
    EXPECT_EQ(b.layout.object(b.prog.globals[0]->objectId).address,
              MemoryLayout::kGlobalBase);
}

TEST(Layout, GlobalsDoNotOverlap)
{
    Built b = build("int a; int t[10]; char c; int z;");
    const auto& objs = b.layout.objects();
    for (size_t i = 0; i < objs.size(); i++) {
        for (size_t j = i + 1; j < objs.size(); j++) {
            bool disjoint =
                objs[i].address + objs[i].size <= objs[j].address ||
                objs[j].address + objs[j].size <= objs[i].address;
            EXPECT_TRUE(disjoint) << objs[i].name << " vs "
                                  << objs[j].name;
        }
    }
}

TEST(Layout, WordAlignment)
{
    Built b = build("char c; int x;");
    uint32_t addr = b.layout.object(b.prog.globals[1]->objectId).address;
    EXPECT_EQ(addr % 4, 0u);
}

TEST(Layout, ScalarInitializerInImage)
{
    Built b = build("int a = 0x12345678;");
    const MemObject& obj = b.layout.object(0);
    const auto& img = b.layout.globalImage();
    uint32_t off = obj.address - MemoryLayout::kGlobalBase;
    EXPECT_EQ(img[off], 0x78);
    EXPECT_EQ(img[off + 1], 0x56);
    EXPECT_EQ(img[off + 2], 0x34);
    EXPECT_EQ(img[off + 3], 0x12);
}

TEST(Layout, ArrayInitializerList)
{
    Built b = build("int t[3] = {10, 20, 30};");
    const MemObject& obj = b.layout.object(0);
    const auto& img = b.layout.globalImage();
    uint32_t off = obj.address - MemoryLayout::kGlobalBase;
    EXPECT_EQ(img[off], 10);
    EXPECT_EQ(img[off + 4], 20);
    EXPECT_EQ(img[off + 8], 30);
}

TEST(Layout, CharArrayInitializer)
{
    Built b = build("char t[2] = {65, 66};");
    const MemObject& obj = b.layout.object(0);
    const auto& img = b.layout.globalImage();
    uint32_t off = obj.address - MemoryLayout::kGlobalBase;
    EXPECT_EQ(img[off], 65);
    EXPECT_EQ(img[off + 1], 66);
}

TEST(Layout, PointerInitializerToGlobalArray)
{
    Built b = build("int arr[4]; int* p = arr;");
    const MemObject& arr = b.layout.object(0);
    const MemObject& p = b.layout.object(1);
    const auto& img = b.layout.globalImage();
    uint32_t off = p.address - MemoryLayout::kGlobalBase;
    uint32_t stored = static_cast<uint32_t>(img[off]) |
                      (static_cast<uint32_t>(img[off + 1]) << 8) |
                      (static_cast<uint32_t>(img[off + 2]) << 16) |
                      (static_cast<uint32_t>(img[off + 3]) << 24);
    EXPECT_EQ(stored, arr.address);
}

TEST(Layout, ExternArraysGetBacking)
{
    Built b = build("extern int a[];");
    EXPECT_EQ(b.layout.object(0).size,
              4u * MemoryLayout::kExternArrayElems);
}

TEST(Layout, FrameOffsetsForMemoryLocals)
{
    Built b = build("int f(void) { int t[4]; int x = 0; int* p = &x;"
                    " t[0] = *p; return t[0]; }");
    const FuncDecl* f = b.prog.functions[0];
    EXPECT_GT(b.layout.frameSize(f), 0u);
    // t (16 bytes) + x (4 bytes), aligned.
    EXPECT_GE(b.layout.frameSize(f), 20u);
}

TEST(Layout, NoFrameForRegisterOnlyFunctions)
{
    Built b = build("int f(int a) { return a * 2; }");
    EXPECT_EQ(b.layout.frameSize(b.prog.functions[0]), 0u);
}

TEST(Layout, FindGlobalByName)
{
    Built b = build("int alpha; int beta;");
    EXPECT_EQ(b.layout.findGlobal("beta"),
              b.prog.globals[1]->objectId);
    EXPECT_EQ(b.layout.findGlobal("nope"), -1);
}

TEST(Layout, ConstFlagPropagates)
{
    Built b = build("const int k = 5; int v;");
    EXPECT_TRUE(b.layout.object(0).isConst);
    EXPECT_FALSE(b.layout.object(1).isConst);
}

TEST(Layout, GlobalTopCoversAllObjects)
{
    Built b = build("int a[100]; char c[33]; int z;");
    for (const MemObject& o : b.layout.objects())
        if (o.isGlobal)
            EXPECT_LE(o.address + o.size, b.layout.globalTop());
}

} // namespace
