/**
 * @file
 * Hyperblock formation (§3.1): loop headers start hyperblocks,
 * if-joins stay inside them, exits/back-edges are classified.
 */
#include <gtest/gtest.h>

#include "cfg/hyperblock.h"
#include "cfg/lower.h"
#include "test_util.h"

using namespace cash;

namespace {

struct Built
{
    Program prog;
    MemoryLayout layout;
    std::unique_ptr<CfgProgram> cfg;
    CfgFunction* fn = nullptr;
    std::unique_ptr<DominatorTree> dom;
    std::unique_ptr<LoopForest> loops;
    std::unique_ptr<HyperblockPartition> hbp;
};

Built
form(const std::string& src, const std::string& fname = "f")
{
    Built b;
    b.prog = parseProgram(src);
    analyzeProgram(b.prog);
    b.layout.build(b.prog);
    b.cfg = lowerProgram(b.prog, b.layout);
    b.fn = b.cfg->find(fname);
    b.dom = std::make_unique<DominatorTree>(*b.fn);
    b.loops = std::make_unique<LoopForest>(*b.fn, *b.dom);
    b.hbp = std::make_unique<HyperblockPartition>(*b.fn, *b.dom,
                                                  *b.loops);
    return b;
}

TEST(Hyperblock, StraightLineIsOneHyperblock)
{
    Built b = form("int f(int a) { return a + 1; }");
    EXPECT_EQ(b.hbp->hyperblocks().size(), 1u);
}

TEST(Hyperblock, IfElseStaysInOneHyperblock)
{
    // Predication folds the diamond into the entry hyperblock.
    Built b = form("int f(int x) { int r;"
                   " if (x) r = 1; else r = 2;"
                   " return r + x; }");
    EXPECT_EQ(b.hbp->hyperblocks().size(), 1u);
}

TEST(Hyperblock, LoopHeaderStartsHyperblock)
{
    Built b = form("int f(int n) { int s = 0; int i;"
                   " for (i = 0; i < n; i++) s += i;"
                   " return s; }");
    // entry, loop, exit.
    EXPECT_EQ(b.hbp->hyperblocks().size(), 3u);
    int loopHbs = 0;
    for (const Hyperblock& hb : b.hbp->hyperblocks())
        if (hb.isLoop)
            loopHbs++;
    EXPECT_EQ(loopHbs, 1);
}

TEST(Hyperblock, LoopBodyDiamondJoinsLoopHyperblock)
{
    Built b = form("int f(int n) { int s = 0; int i;"
                   " for (i = 0; i < n; i++) {"
                   "   if (i & 1) s += i; else s -= i;"
                   " }"
                   " return s; }");
    // The if-else inside the loop must not create extra hyperblocks.
    EXPECT_EQ(b.hbp->hyperblocks().size(), 3u);
}

TEST(Hyperblock, SelfLoopHasBackEdgeExit)
{
    Built b = form("int f(int n) { int i = 0;"
                   " while (i < n) i++; return i; }");
    const Hyperblock* loop = nullptr;
    for (const Hyperblock& hb : b.hbp->hyperblocks())
        if (hb.isLoop)
            loop = &hb;
    ASSERT_NE(loop, nullptr);
    bool back = false, forward = false;
    for (const HbExit& e : loop->exits) {
        if (e.isBackEdge && e.targetHb == loop->id)
            back = true;
        if (!e.isBackEdge && e.targetHb != loop->id)
            forward = true;
    }
    EXPECT_TRUE(back);
    EXPECT_TRUE(forward);
}

TEST(Hyperblock, NestedLoopsMakeSeparateHyperblocks)
{
    Built b = form("int f(int n) { int s = 0; int i; int j;"
                   " for (i = 0; i < n; i++)"
                   "   for (j = 0; j < i; j++)"
                   "     s += j;"
                   " return s; }");
    int loopHbs = 0;
    for (const Hyperblock& hb : b.hbp->hyperblocks())
        if (hb.loopIndex >= 0 &&
            b.loops->loops()[hb.loopIndex].header == hb.header)
            loopHbs++;
    EXPECT_EQ(loopHbs, 2);
    // The inner hyperblock is a self-loop; the outer spans several
    // hyperblocks, so its header HB is not self-looping.
    int selfLoops = 0;
    for (const Hyperblock& hb : b.hbp->hyperblocks())
        if (hb.isLoop)
            selfLoops++;
    EXPECT_EQ(selfLoops, 1);
}

TEST(Hyperblock, IncomingEdgesMatchExits)
{
    Built b = form("int f(int n) { int s = 0; int i;"
                   " for (i = 0; i < n; i++) s += i;"
                   " return s; }");
    for (const Hyperblock& hb : b.hbp->hyperblocks()) {
        for (const HbEntry& in : hb.incoming) {
            const Hyperblock& src = b.hbp->hb(in.fromHb);
            ASSERT_LT(static_cast<size_t>(in.exitIndex),
                      src.exits.size());
            EXPECT_EQ(src.exits[in.exitIndex].targetHb, hb.id);
        }
    }
}

TEST(Hyperblock, InHyperblockReachability)
{
    Built b = form("int f(int x) { int r;"
                   " if (x) r = 1; else r = 2;"
                   " return r; }");
    const Hyperblock& hb = b.hbp->hyperblocks()[0];
    int header = hb.header;
    // Header reaches every block of its hyperblock.
    for (int blk : hb.blocks)
        EXPECT_TRUE(b.hbp->reaches(header, blk));
    // The two branch arms do not reach each other.
    if (hb.blocks.size() >= 4) {
        int thenB = hb.blocks[1], elseB = hb.blocks[2];
        EXPECT_FALSE(b.hbp->reaches(thenB, elseB));
        EXPECT_FALSE(b.hbp->reaches(elseB, thenB));
    }
}

TEST(Hyperblock, BreakBlockLeavesLoopHyperblock)
{
    Built b = form("int f(int n) { int i;"
                   " for (i = 0; i < n; i++)"
                   "   if (i == 7) break;"
                   " return i; }");
    // The break target and loop body partition correctly: every block
    // belongs to exactly one hyperblock.
    std::set<int> seen;
    for (const Hyperblock& hb : b.hbp->hyperblocks()) {
        for (int blk : hb.blocks) {
            EXPECT_FALSE(seen.count(blk));
            seen.insert(blk);
        }
    }
}

} // namespace
