/**
 * @file
 * Checker-side interprocedural model (analysis/interproc.h), the
 * `interproc_token_pruning` pass, the summary-divergence and
 * prunable-call-edge lints, and the TargetSpec `ipo` knob.
 *
 * The model is the independent rederivation that `cashc --analyze`
 * uses to re-prove every pruned edge safe, so these tests deliberately
 * cross-check it against the optimizer's stamped summaries instead of
 * trusting either side alone.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/interproc.h"
#include "analysis/lint.h"
#include "analysis/modref.h"
#include "driver/target_spec.h"
#include "test_util.h"

using namespace cash;

namespace {

// Two helpers with disjoint write sets that share a read-only
// coefficient table: the union-rw construction rule keeps the
// cross-call edges (kco_ overlaps), the fine-grained pruning pass
// removes them (no write/read or write/write overlap).
const char* kShareReadSrc = R"(
int ga_[16];
int gb_[16];
int kco_[4];

void scale(int* v, int n)
{
    int i;
    for (i = 0; i < n; i++)
        v[i] = v[i] * kco_[i & 3];
}

int total(int* v, int n)
{
    int i;
    int s = 0;
    for (i = 0; i < n; i++)
        s += v[i];
    return s;
}

int run(int n)
{
    int i;
    for (i = 0; i < 4; i++)
        kco_[i] = i + 1;
    for (i = 0; i < n; i++) {
        ga_[i] = i;
        gb_[i] = i + 1;
    }
    scale(ga_, n);
    scale(gb_, n);
    return total(ga_, n) + total(gb_, n);
}
)";

int
globalLoc(const CompileResult& r, const std::string& name)
{
    for (const MemObject& obj : r.layout->objects())
        if (obj.isGlobal && obj.name == name)
            return obj.id;
    ADD_FAILURE() << "no global named " << name;
    return -1;
}

bool
setContains(const LocationSet& s, int loc)
{
    if (s.isTop())
        return true;
    const auto& locs = s.locations();
    return std::find(locs.begin(), locs.end(), loc) != locs.end();
}

bool
subsetOf(const LocationSet& a, const LocationSet& b)
{
    if (b.isTop())
        return true;
    if (a.isTop())
        return false;
    for (int loc : a.locations())
        if (!setContains(b, loc))
            return false;
    return true;
}

InterprocModel
modelFor(const CompileResult& r)
{
    return InterprocModel(r.graphPtrs(), r.cfg->paramLocation,
                          *r.layout);
}

LintReport
lint(const CompileResult& r, const InterprocModel* model,
     const std::vector<std::string>& rules = {})
{
    LintContext ctx;
    ctx.oracle = &r.cfg->oracle;
    ctx.layout = r.layout.get();
    ctx.interproc = model;
    return runLints(r.graphPtrs(), ctx, rules);
}

std::vector<Node*>
callsTo(const CompileResult& r, const std::string& graphName,
        const std::string& callee)
{
    std::vector<Node*> out;
    for (const auto& g : r.graphs) {
        if (g->name != graphName)
            continue;
        g->forEach([&](Node* n) {
            if (n->kind == NodeKind::Call && n->callee &&
                n->callee->name == callee)
                out.push_back(n);
        });
    }
    return out;
}

} // namespace

TEST(Interproc, CallEffectsResolveAgainstOptimizedGraph)
{
    CompileResult r = compileSource(kShareReadSrc);
    InterprocModel model = modelFor(r);
    const int ga = globalLoc(r, "ga_");
    const int gb = globalLoc(r, "gb_");
    const int kco = globalLoc(r, "kco_");

    const Graph* run = r.graph("run");
    ASSERT_TRUE(run);

    // Each scale call writes exactly one of the two arrays, never the
    // coefficient table, and the model can tell the two sites apart
    // even on the fully optimized (pruned) graph.
    std::vector<Node*> scales = callsTo(r, "run", "scale");
    ASSERT_EQ(scales.size(), 2u);
    bool sawGa = false, sawGb = false;
    for (const Node* call : scales) {
        LocationSet writes = model.callWriteSet(*run, call);
        LocationSet reads = model.callReadSet(*run, call);
        ASSERT_FALSE(writes.isTop());
        ASSERT_FALSE(reads.isTop());
        EXPECT_FALSE(setContains(writes, kco));
        EXPECT_TRUE(setContains(reads, kco));
        EXPECT_NE(setContains(writes, ga), setContains(writes, gb));
        sawGa = sawGa || setContains(writes, ga);
        sawGb = sawGb || setContains(writes, gb);
    }
    EXPECT_TRUE(sawGa);
    EXPECT_TRUE(sawGb);

    for (const Node* call : callsTo(r, "run", "total"))
        EXPECT_TRUE(model.callWriteSet(*run, call).empty());
}

TEST(Interproc, RederivationIsCoveredByOptimizerStamps)
{
    // The summary-divergence invariant, checked directly: on every
    // stamped call the independent model's sets are subsets of what
    // the optimizer stamped (equality is not required — the two sides
    // may over-approximate differently, but the stamp that
    // optimizations consumed must cover the rederivation).
    CompileResult r = compileSource(kShareReadSrc);
    InterprocModel model = modelFor(r);
    for (const auto& g : r.graphs)
        g->forEach([&](Node* n) {
            if (n->kind != NodeKind::Call || !n->callEffectsValid)
                return;
            EXPECT_TRUE(
                subsetOf(model.callReadSet(*g, n), n->callReads))
                << g->name << " n" << n->id;
            EXPECT_TRUE(
                subsetOf(model.callWriteSet(*g, n), n->callWrites))
                << g->name << " n" << n->id;
        });
}

TEST(Interproc, PruningFiresAndKeepsGraphsCheckable)
{
    CompileResult r = compileSource(kShareReadSrc);
    EXPECT_GT(r.stats.get("opt.interproc_token_pruning.pruned_edges"),
              0);

    // With the interprocedural model the full battery re-proves the
    // pruned graphs sound; without it (calls at Top) the same graphs
    // are *not* provable — which is exactly why the checker had to be
    // extended interprocedurally.
    InterprocModel model = modelFor(r);
    EXPECT_EQ(lint(r, &model).errors(), 0);
    EXPECT_GT(lint(r, nullptr).errors(), 0);
}

TEST(Interproc, PruningPreservesResults)
{
    CompileResult on = compileSource(kShareReadSrc);
    CompileResult off = compileSource(
        kShareReadSrc, CompileOptions().interprocOpt(false));
    EXPECT_EQ(off.stats.get("opt.interproc_token_pruning.pruned_edges"),
              0);

    MemConfig mem = MemConfig::realistic(2);
    DataflowSimulator simOn(on.graphPtrs(), *on.layout, mem);
    DataflowSimulator simOff(off.graphPtrs(), *off.layout, mem);
    SimResult a = simOn.run("run", {12});
    SimResult b = simOff.run("run", {12});
    EXPECT_EQ(a.returnValue, b.returnValue);
    EXPECT_EQ(a.returnValue,
              testutil::interpret(kShareReadSrc, "run", {12}));
    // The whole point: the pruned program is strictly more parallel.
    EXPECT_LE(a.cycles, b.cycles);
}

TEST(Interproc, PrunableCallEdgeLintFlagsUnprunedGraphs)
{
    // ipo=off keeps the serial cross-call chain; the info-severity
    // lint must point at the edges interproc_token_pruning would drop.
    CompileResult off = compileSource(
        kShareReadSrc, CompileOptions().interprocOpt(false));
    InterprocModel offModel = modelFor(off);
    LintReport flagged =
        lint(off, &offModel, {"prunable-call-edge"});
    EXPECT_GT(flagged.infos(), 0);
    EXPECT_EQ(flagged.errors(), 0);
    for (const LintFinding& f : flagged.findings)
        EXPECT_EQ(f.rule, "prunable-call-edge");

    // On the default (pruned) graphs there is nothing left to flag.
    CompileResult on = compileSource(kShareReadSrc);
    InterprocModel onModel = modelFor(on);
    EXPECT_EQ(lint(on, &onModel, {"prunable-call-edge"}).infos(), 0);
}

TEST(Interproc, SummaryDivergenceLintCatchesLyingStamps)
{
    CompileResult r = compileSource(kShareReadSrc);
    InterprocModel model = modelFor(r);
    EXPECT_EQ(lint(r, &model, {"summary-divergence"}).errors(), 0);

    // Forge an optimizer stamp that claims a scale call writes
    // nothing: the independent rederivation must catch the lie.
    std::vector<Node*> scales = callsTo(r, "run", "scale");
    ASSERT_FALSE(scales.empty());
    scales[0]->callWrites = LocationSet();
    LintReport report = lint(r, &model, {"summary-divergence"});
    ASSERT_GT(report.errors(), 0);
    EXPECT_EQ(report.findings[0].rule, "summary-divergence");
    EXPECT_NE(report.findings[0].explanation.find("not covered"),
              std::string::npos);
}

TEST(Interproc, LintRulesAreRegistered)
{
    std::vector<std::string> names = standardLintNames();
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "summary-divergence"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "prunable-call-edge"),
              names.end());
    EXPECT_TRUE(LintRegistry::global().has("summary_divergence"));
    EXPECT_TRUE(LintRegistry::global().has("prunable-call-edge"));
}

TEST(Interproc, TargetSpecIpoKnob)
{
    // Default: on, and absent from the canonical string so every
    // pre-existing cache key is unchanged.
    TargetSpec def;
    EXPECT_TRUE(def.interproc);
    EXPECT_EQ(def.str().find("ipo"), std::string::npos);

    TargetSpec t;
    ASSERT_TRUE(
        TargetSpec::parse("opt=full,mem=real2,ipo=off", &t).isOk());
    EXPECT_FALSE(t.interproc);
    EXPECT_NE(t.str().find("ipo=off"), std::string::npos);

    // Round trip, and merge with last-setting-wins semantics.
    TargetSpec again;
    ASSERT_TRUE(TargetSpec::parse(t.str(), &again).isOk());
    EXPECT_EQ(t, again);
    ASSERT_TRUE(again.merge("ipo=on").isOk());
    EXPECT_TRUE(again.interproc);

    TargetSpec bad;
    EXPECT_FALSE(bad.setField("ipo", "sometimes").isOk());
    EXPECT_FALSE(TargetSpec::parse("ipo=2x2", &bad).isOk());
}
