/**
 * @file
 * Support library: string helpers, the statistics registry, IR text
 * rendering and the benchmark-suite registry.
 */
#include <gtest/gtest.h>

#include "benchsuite/kernels.h"
#include "pegasus/dot.h"
#include "support/stats.h"
#include "support/strings.h"
#include "test_util.h"

using namespace cash;

namespace {

TEST(Strings, JoinAndSplit)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    std::vector<std::string> parts = split("x,y,z", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "y");
    EXPECT_EQ(split("one", ',').size(), 1u);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsWithAndPadding)
{
    EXPECT_TRUE(startsWith("pragma independent", "pragma"));
    EXPECT_FALSE(startsWith("pr", "pragma"));
    EXPECT_EQ(padLeft("7", 3), "  7");
    EXPECT_EQ(padRight("7", 3), "7  ");
    EXPECT_EQ(padLeft("1234", 3), "1234");
}

TEST(Strings, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 1), "2.0");
}

TEST(Stats, CountersAccumulate)
{
    StatSet s;
    EXPECT_EQ(s.get("x"), 0);
    EXPECT_FALSE(s.has("x"));
    s.add("x");
    s.add("x", 4);
    EXPECT_EQ(s.get("x"), 5);
    s.set("x", 2);
    EXPECT_EQ(s.get("x"), 2);
}

TEST(Stats, MergeSums)
{
    StatSet a, b;
    a.add("n", 3);
    b.add("n", 4);
    b.add("m", 1);
    a.merge(b);
    EXPECT_EQ(a.get("n"), 7);
    EXPECT_EQ(a.get("m"), 1);
}

TEST(Stats, MergeGaugesTakeLastWriter)
{
    // set()-style gauges merge by last writer, not by summing, so
    // merging per-function sets in declaration order is deterministic.
    StatSet a, b, c;
    a.set("gauge", 10);
    b.set("gauge", 7);
    c.set("gauge", 42);
    a.merge(b);
    EXPECT_EQ(a.get("gauge"), 7);
    a.merge(c);
    EXPECT_EQ(a.get("gauge"), 42);
    EXPECT_TRUE(a.isGauge("gauge"));
    EXPECT_FALSE(a.isGauge("missing"));
}

TEST(Stats, GaugeFlagSurvivesMergeAndClear)
{
    StatSet a, b;
    b.set("g", 5);
    a.merge(b);            // a learns that "g" is a gauge
    StatSet c;
    c.set("g", 9);
    a.merge(c);
    EXPECT_EQ(a.get("g"), 9);
    EXPECT_TRUE(a.isGauge("g"));

    a.clear();
    EXPECT_FALSE(a.isGauge("g"));
    a.add("g", 2);         // plain accumulator after clear()
    StatSet d;
    d.add("g", 3);
    a.merge(d);
    EXPECT_EQ(a.get("g"), 5);
}

TEST(Stats, MixedMergeKeepsAccumulatorsSumming)
{
    StatSet a, b;
    a.add("adds", 1);
    a.set("peak", 10);
    b.add("adds", 2);
    b.set("peak", 4);
    a.merge(b);
    EXPECT_EQ(a.get("adds"), 3);
    EXPECT_EQ(a.get("peak"), 4);
}

TEST(Stats, StrIsSorted)
{
    StatSet s;
    s.add("b.z", 1);
    s.add("a.y", 2);
    std::string out = s.str();
    EXPECT_LT(out.find("a.y"), out.find("b.z"));
}

TEST(Dot, RendersEveryLiveNode)
{
    CompileResult r = compileSource(
        "int a[4]; int f(int i) { a[i] += 1; return a[i]; }");
    const Graph* g = r.graph("f");
    std::string dot = toDot(*g);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    int nodes = 0;
    g->forEach([&](Node* n) {
        nodes++;
        EXPECT_NE(dot.find("n" + std::to_string(n->id) + " ["),
                  std::string::npos)
            << n->str();
    });
    EXPECT_GT(nodes, 0);
    // Token edges render dashed; predicates dotted.
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("style=dotted"), std::string::npos);
}

TEST(Dot, TextListingIsStable)
{
    CompileResult r =
        compileSource("int f(int a) { return a * 2 + 1; }");
    std::string t1 = toText(*r.graph("f"));
    std::string t2 = toText(*r.graph("f"));
    EXPECT_EQ(t1, t2);
    EXPECT_NE(t1.find("graph f"), std::string::npos);
}

TEST(KernelRegistry, AllKernelsWellFormed)
{
    EXPECT_GE(kernelSuite().size(), 20u);
    for (const Kernel& k : kernelSuite()) {
        EXPECT_FALSE(k.name.empty());
        EXPECT_FALSE(k.source.empty());
        EXPECT_FALSE(k.entry.empty());
        // Entry must exist and be defined.
        Program p = parseProgram(k.source);
        analyzeProgram(p);
        FuncDecl* f = p.findFunction(k.entry);
        ASSERT_NE(f, nullptr) << k.name;
        EXPECT_NE(f->body, nullptr) << k.name;
        EXPECT_EQ(f->params.size(), k.args.size()) << k.name;
    }
}

TEST(KernelRegistry, PragmaCountsMatchSources)
{
    for (const Kernel& k : kernelSuite()) {
        Program p = parseProgram(k.source);
        EXPECT_EQ(static_cast<int>(p.pragmas.size()), k.pragmas)
            << k.name;
    }
}

TEST(KernelRegistry, LookupByName)
{
    EXPECT_EQ(kernelByName("saxpy").entry, "saxpy_run");
    EXPECT_THROW(kernelByName("nonexistent"), FatalError);
}

TEST(Diagnostics, FatalThrowsPanicAborts)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    SourceLoc loc{3, 7};
    try {
        fatalAt(loc, "bad thing");
        FAIL();
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("3:7"),
                  std::string::npos);
    }
}

} // namespace
