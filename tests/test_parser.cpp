#include <gtest/gtest.h>

#include <random>

#include "frontend/parser.h"
#include "frontend/sema.h"

using namespace cash;

namespace {

TEST(Parser, GlobalScalars)
{
    Program p = parseProgram("int a; unsigned b = 5; char c;");
    ASSERT_EQ(p.globals.size(), 3u);
    EXPECT_EQ(p.globals[0]->name, "a");
    EXPECT_EQ(p.globals[1]->name, "b");
    ASSERT_NE(p.globals[1]->init, nullptr);
    EXPECT_EQ(p.globals[2]->type->kind, TypeKind::Char);
}

TEST(Parser, GlobalArrays)
{
    Program p = parseProgram("int a[10]; int b[4*4]; extern int c[];");
    EXPECT_EQ(p.globals[0]->type->arraySize, 10);
    EXPECT_EQ(p.globals[1]->type->arraySize, 16);
    EXPECT_EQ(p.globals[2]->type->arraySize, 0);
    EXPECT_TRUE(p.globals[2]->isExtern);
}

TEST(Parser, ArrayInitializerList)
{
    Program p = parseProgram("int t[4] = {1, 2, 3, 4};");
    EXPECT_EQ(p.globals[0]->initList.size(), 4u);
}

TEST(Parser, ConstGlobal)
{
    Program p = parseProgram("const int k[2] = {1, 2};");
    EXPECT_TRUE(p.globals[0]->type->isConst);
}

TEST(Parser, FunctionWithParams)
{
    Program p = parseProgram("int add(int a, int b) { return a + b; }");
    ASSERT_EQ(p.functions.size(), 1u);
    FuncDecl* f = p.functions[0];
    EXPECT_EQ(f->name, "add");
    ASSERT_EQ(f->params.size(), 2u);
    EXPECT_EQ(f->params[0]->name, "a");
    ASSERT_NE(f->body, nullptr);
}

TEST(Parser, PointerParamsAndArrayDecay)
{
    Program p = parseProgram("void f(int* p, int a[], char** q) {}");
    FuncDecl* f = p.functions[0];
    EXPECT_TRUE(f->params[0]->type->isPointer());
    EXPECT_TRUE(f->params[1]->type->isPointer());
    EXPECT_TRUE(f->params[2]->type->isPointer());
    EXPECT_TRUE(f->params[2]->type->element->isPointer());
}

TEST(Parser, Prototypes)
{
    Program p = parseProgram("int g(int x); int g(int x) { return x; }");
    EXPECT_EQ(p.functions.size(), 2u);
    EXPECT_EQ(p.functions[0]->body, nullptr);
    ASSERT_NE(p.functions[1]->body, nullptr);
}

TEST(Parser, PrecedenceMulOverAdd)
{
    Program p = parseProgram("int f(int x) { return 1 + x * 2; }");
    auto* ret = static_cast<ReturnStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(exprToString(ret->value), "(1 + (x * 2))");
}

TEST(Parser, PrecedenceShiftAndCompare)
{
    Program p = parseProgram("int f(int x) { return x << 2 < 8; }");
    auto* ret = static_cast<ReturnStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(exprToString(ret->value), "((x << 2) < 8)");
}

TEST(Parser, TernaryAndAssignAreRightAssociative)
{
    Program p =
        parseProgram("int f(int x, int y) { x = y = x ? 1 : 2; "
                     "return x; }");
    auto* es = static_cast<ExprStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(exprToString(es->expr), "(x = (y = (x ? 1 : 2)))");
}

TEST(Parser, CompoundAssignOnArrayElement)
{
    Program p =
        parseProgram("int a[4]; void f(int i) { a[i] <<= a[i+1]; }");
    auto* es = static_cast<ExprStmt*>(p.functions[0]->body->stmts[0]);
    ASSERT_EQ(es->expr->kind, ExprKind::Assign);
    EXPECT_EQ(static_cast<AssignExpr*>(es->expr)->op, AssignOp::Shl);
}

TEST(Parser, DerefAndAddressOf)
{
    Program p = parseProgram("void f(int* p) { *p = *(p + 1); }");
    auto* es = static_cast<ExprStmt*>(p.functions[0]->body->stmts[0]);
    auto* a = static_cast<AssignExpr*>(es->expr);
    EXPECT_EQ(a->lhs->kind, ExprKind::Deref);
    EXPECT_EQ(a->rhs->kind, ExprKind::Deref);
}

TEST(Parser, CastExpression)
{
    Program p = parseProgram("int f(int x) { return (char)x; }");
    auto* ret = static_cast<ReturnStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(ret->value->kind, ExprKind::Cast);
}

TEST(Parser, CastToPointer)
{
    Program p = parseProgram("void f(void) { int* p; p = (int*)0; }");
    ASSERT_EQ(p.functions.size(), 1u);
}

TEST(Parser, ForLoopPieces)
{
    Program p = parseProgram(
        "int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) s += i; return s; }");
    auto* fs = static_cast<ForStmt*>(p.functions[0]->body->stmts[2]);
    EXPECT_NE(fs->init, nullptr);
    EXPECT_NE(fs->cond, nullptr);
    EXPECT_NE(fs->step, nullptr);
}

TEST(Parser, ForWithDeclInit)
{
    Program p = parseProgram(
        "int f(int n) { int s = 0;"
        " for (int i = 0; i < n; i++) s += i; return s; }");
    auto* fs = static_cast<ForStmt*>(p.functions[0]->body->stmts[1]);
    EXPECT_EQ(fs->init->kind, StmtKind::Decl);
}

TEST(Parser, DoWhile)
{
    Program p = parseProgram(
        "int f(int n) { int i = 0; do { i++; } while (i < n);"
        " return i; }");
    EXPECT_EQ(p.functions[0]->body->stmts[1]->kind, StmtKind::DoWhile);
}

TEST(Parser, PragmaInsideFunctionIsScoped)
{
    Program p = parseProgram(
        "void f(int* p, int* q) {\n#pragma independent p q\n *p = *q; }");
    ASSERT_EQ(p.pragmas.size(), 1u);
    EXPECT_EQ(p.pragmas[0].funcName, "f");
    EXPECT_EQ(p.pragmas[0].first, "p");
    EXPECT_EQ(p.pragmas[0].second, "q");
}

TEST(Parser, MultipleDeclaratorsPerLine)
{
    Program p = parseProgram("void f(void) { int a = 1, b = 2, c; }");
    auto* ds = static_cast<DeclStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(ds->decls.size(), 3u);
}

TEST(Parser, SyntaxErrorsThrow)
{
    EXPECT_THROW(parseProgram("int f( { }"), FatalError);
    EXPECT_THROW(parseProgram("int x = ;"), FatalError);
    EXPECT_THROW(parseProgram("void f(void) { if }"), FatalError);
    EXPECT_THROW(parseProgram("void f(void) { return 1 }"), FatalError);
}

TEST(Parser, LogicalOperatorsParse)
{
    Program p = parseProgram(
        "int f(int a, int b) { return a && b || !a; }");
    auto* ret = static_cast<ReturnStmt*>(p.functions[0]->body->stmts[0]);
    EXPECT_EQ(exprToString(ret->value), "((a && b) || (!a))");
}

TEST(Parser, FuzzedSourcesNeverCrash)
{
    // Robustness property: arbitrary mutations of valid sources must
    // either parse or raise FatalError — never crash or hang.
    const std::string base =
        "int a[8]; int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) { if (i & 1) s += a[i]; }"
        " return s; }";
    std::mt19937 rng(1234);
    for (int trial = 0; trial < 400; trial++) {
        std::string src = base;
        int edits = 1 + static_cast<int>(rng() % 4);
        for (int e = 0; e < edits; e++) {
            size_t pos = rng() % src.size();
            switch (rng() % 3) {
              case 0:  // delete a chunk
                src.erase(pos, 1 + rng() % 5);
                break;
              case 1:  // duplicate a chunk
                src.insert(pos, src.substr(pos, 1 + rng() % 5));
                break;
              default: {  // splice random punctuation
                const char* bits[] = {"(", ")", "{", "}", ";", "+",
                                      "*",  "=", "[", "]", "if", "0"};
                src.insert(pos, bits[rng() % 12]);
                break;
              }
            }
        }
        try {
            Program p = parseProgram(src);
            (void)p;
        } catch (const FatalError&) {
            // expected for malformed inputs
        }
    }
    SUCCEED();
}

TEST(Parser, FuzzedSourcesThroughSema)
{
    const std::string base =
        "int g; int f(int* p, int n) { int i;"
        " for (i = 0; i < n; i++) g += p[i];"
        " return g; }";
    std::mt19937 rng(77);
    for (int trial = 0; trial < 200; trial++) {
        std::string src = base;
        size_t pos = rng() % src.size();
        src.erase(pos, 1 + rng() % 8);
        try {
            Program p = parseProgram(src);
            analyzeProgram(p);
        } catch (const FatalError&) {
        }
    }
    SUCCEED();
}

} // namespace
