/**
 * @file
 * Symbolic (affine) address analysis and induction variables
 * (§4.3 heuristics).
 */
#include <gtest/gtest.h>

#include "analysis/induction.h"
#include "analysis/symbolic.h"
#include "test_util.h"

using namespace cash;

namespace {

TEST(Affine, ConstantsAndSums)
{
    AffineExpr a = AffineExpr::constantOf(5);
    AffineExpr b = AffineExpr::constantOf(3);
    int64_t c;
    ASSERT_TRUE(a.plus(b).isConstant(&c));
    EXPECT_EQ(c, 8);
    ASSERT_TRUE(a.minus(b).isConstant(&c));
    EXPECT_EQ(c, 2);
    ASSERT_TRUE(a.times(-4).isConstant(&c));
    EXPECT_EQ(c, -20);
}

TEST(Affine, BaseTermsCancel)
{
    SymBase x{nullptr, 1, -1};
    AffineExpr a = AffineExpr::baseOf(x).plus(AffineExpr::constantOf(8));
    AffineExpr b = AffineExpr::baseOf(x);
    int64_t c;
    ASSERT_TRUE(a.minus(b).isConstant(&c));
    EXPECT_EQ(c, 8);
}

TEST(Affine, DisjointnessRespectsAccessSizes)
{
    SymBase x{nullptr, 1, -1};
    AffineExpr p = AffineExpr::baseOf(x);
    AffineExpr p4 = p.plus(AffineExpr::constantOf(4));
    AffineExpr p2 = p.plus(AffineExpr::constantOf(2));
    EXPECT_TRUE(SymbolicAddress::disjoint(p, 4, p4, 4));
    EXPECT_FALSE(SymbolicAddress::disjoint(p, 4, p2, 4));   // overlap
    EXPECT_TRUE(SymbolicAddress::disjoint(p, 1, p2, 1));
    EXPECT_FALSE(SymbolicAddress::disjoint(p, 4, p, 4));    // equal
}

TEST(Affine, UnknownDifferenceIsNotDisjoint)
{
    SymBase x{nullptr, 1, -1}, y{nullptr, 2, -1};
    AffineExpr a = AffineExpr::baseOf(x);
    AffineExpr b = AffineExpr::baseOf(y);
    EXPECT_FALSE(SymbolicAddress::disjoint(a, 4, b, 4));
}

// --- graph-level decomposition ---------------------------------------

struct BuiltGraph
{
    CompileResult r;
    const Graph* g = nullptr;
};

BuiltGraph
build(const std::string& src, const std::string& fn = "f")
{
    BuiltGraph b{compileSource(src, {OptLevel::Medium, true, true}),
                 nullptr};
    b.g = b.r.graph(fn);
    return b;
}

std::vector<Node*>
memNodes(const Graph& g, NodeKind k)
{
    std::vector<Node*> out;
    g.forEach([&](Node* n) {
        if (n->kind == k)
            out.push_back(n);
    });
    return out;
}

TEST(Symbolic, ConstantOffsetsOnSameBase)
{
    BuiltGraph b =
        build("int f(int* p, int i)"
              "{ return p[i] + p[i + 1] + p[i + 2]; }");
    std::vector<Node*> loads = memNodes(*b.g, NodeKind::Load);
    ASSERT_EQ(loads.size(), 3u);
    SymbolicAddress sym;
    AffineExpr a0 = sym.expr(loads[0]->input(2));
    AffineExpr a1 = sym.expr(loads[1]->input(2));
    AffineExpr a2 = sym.expr(loads[2]->input(2));
    EXPECT_TRUE(SymbolicAddress::disjoint(a0, 4, a1, 4));
    EXPECT_TRUE(SymbolicAddress::disjoint(a0, 4, a2, 4));
    EXPECT_TRUE(SymbolicAddress::disjoint(a1, 4, a2, 4));
}

TEST(Symbolic, GlobalArrayConstantIndices)
{
    BuiltGraph b = build("int t[8]; int f(void)"
                         "{ return t[2] + t[5]; }");
    std::vector<Node*> loads = memNodes(*b.g, NodeKind::Load);
    ASSERT_EQ(loads.size(), 2u);
    SymbolicAddress sym;
    EXPECT_TRUE(SymbolicAddress::disjoint(
        sym.expr(loads[0]->input(2)), 4,
        sym.expr(loads[1]->input(2)), 4));
}

TEST(Induction, DetectsLoopCounter)
{
    BuiltGraph b = build("int a[64];"
                         "int f(int n) { int s = 0; int i;"
                         " for (i = 0; i < n; i++) s += a[i];"
                         " return s; }");
    InductionAnalysis ivs(*b.g);
    int found = 0;
    for (const auto& [merge, iv] : ivs.all()) {
        if (iv.step == 1)
            found++;
    }
    EXPECT_GE(found, 1);
}

TEST(Induction, DetectsNegativeStep)
{
    BuiltGraph b = build("int a[64];"
                         "int f(int n) { int s = 0; int i;"
                         " for (i = n; i > 0; i--) s += a[i];"
                         " return s; }");
    InductionAnalysis ivs(*b.g);
    bool neg = false;
    for (const auto& [merge, iv] : ivs.all())
        if (iv.step == -1)
            neg = true;
    EXPECT_TRUE(neg);
}

TEST(Induction, IterTermsGiveCrossAccessDistance)
{
    BuiltGraph b = build("int a[64];"
                         "void f(int n) { int i;"
                         " for (i = 0; i + 3 < n; i++)"
                         "   a[i + 3] = a[i]; }");
    InductionAnalysis ivs(*b.g);
    SymbolicAddress sym(&ivs);
    std::vector<Node*> loads = memNodes(*b.g, NodeKind::Load);
    std::vector<Node*> stores = memNodes(*b.g, NodeKind::Store);
    ASSERT_EQ(loads.size(), 1u);
    ASSERT_EQ(stores.size(), 1u);
    AffineExpr la = sym.expr(loads[0]->input(2));
    AffineExpr sa = sym.expr(stores[0]->input(2));
    int hb = loads[0]->hyperblock;
    EXPECT_EQ(la.iterCoeff(hb), 4);
    EXPECT_EQ(sa.iterCoeff(hb), 4);
    int64_t c;
    ASSERT_TRUE(sa.withoutIter(hb).minus(la.withoutIter(hb))
                    .isConstant(&c));
    EXPECT_EQ(c, 12);  // 3 elements * 4 bytes
    // Same iteration: disjoint.
    EXPECT_TRUE(SymbolicAddress::disjoint(la, 4, sa, 4));
}

TEST(Induction, NonInductiveMergeIsOpaque)
{
    BuiltGraph b = build("int a[64];"
                         "int f(int n) { int x = 1; int i;"
                         " for (i = 0; i < n; i++) x = x * 3 + a[i];"
                         " return x; }");
    InductionAnalysis ivs(*b.g);
    // x's merge must not be classified as an induction variable.
    for (const auto& [merge, iv] : ivs.all())
        EXPECT_EQ(std::abs(iv.step), 1) << "unexpected IV step "
                                        << iv.step;
}

TEST(Symbolic, DifferentIterationVariablesStayOpaque)
{
    // Addresses indexed by different loops' counters cannot be
    // compared: the difference is not constant.
    BuiltGraph b = build(
        "int a[64];"
        "int f(int n) { int s = 0; int i; int j;"
        " for (i = 0; i < n; i++) s += a[i];"
        " for (j = 0; j < n; j++) s += a[j + 1];"
        " return s; }");
    InductionAnalysis ivs(*b.g);
    SymbolicAddress sym(&ivs);
    std::vector<Node*> loads = memNodes(*b.g, NodeKind::Load);
    ASSERT_EQ(loads.size(), 2u);
    AffineExpr a0 = sym.expr(loads[0]->input(2));
    AffineExpr a1 = sym.expr(loads[1]->input(2));
    EXPECT_FALSE(SymbolicAddress::disjoint(a0, 4, a1, 4));
}

} // namespace
