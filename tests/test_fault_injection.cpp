// Deterministic fault injection: corrupting any single pass yields a
// structured diagnostic and a rollback, everything else keeps
// compiling and simulating to golden results at any job count, and
// simulator failures degrade to reported outcomes instead of aborts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "opt/pass.h"
#include "pegasus/dot.h"
#include "pegasus/verifier.h"
#include "support/fault_injection.h"
#include "test_util.h"

using namespace cash;

namespace {

const char* kMultiSrc =
    "int a[8];"
    "int sum(int n) { int s = 0; int i;"
    " for (i = 0; i < n; i++) s += i; return s; }"
    "int fill(int n) { int i;"
    " for (i = 0; i < n; i++) a[i & 7] = i + 2; return a[0]; }"
    "int both(int n) { return sum(n) + fill(n); }";

/** Deterministic stats only (drop wall-clock keys), as in
 *  test_parallel_compile.cpp. */
std::string
statsFingerprint(const StatSet& stats)
{
    std::string out;
    for (const auto& [k, v] : stats.all()) {
        if (k.rfind("time.", 0) == 0)
            continue;
        if (k.size() > 8 && k.compare(k.size() - 8, 8, ".time_us") == 0)
            continue;
        out += k + "=" + std::to_string(v) + "\n";
    }
    return out;
}

std::string
graphDot(const CompileResult& r, const std::string& name)
{
    const Graph* g = r.graph(name);
    return g ? toDot(*g) : "";
}

uint64_t
runCycles(const CompileResult& r, const std::string& fn, uint32_t arg)
{
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    SimResult out = sim.run(fn, {arg});
    EXPECT_TRUE(out.ok()) << out.error;
    return out.cycles;
}

TEST(FaultInjection, SpecParsing)
{
    FaultPlan p = FaultPlan::parse(
        "graph.corrupt-token:pass=dead_code,func=f,round=2,seed=7;"
        "pass.throw:pass=scalar_opts;sim.drop-event:seq=41");
    ASSERT_EQ(p.specs().size(), 3u);
    EXPECT_EQ(p.specs()[0].point, "graph.corrupt-token");
    EXPECT_EQ(p.specs()[0].pass, "dead_code");
    EXPECT_EQ(p.specs()[0].func, "f");
    EXPECT_EQ(p.specs()[0].round, 2);
    EXPECT_EQ(p.specs()[0].seed, 7u);
    EXPECT_TRUE(p.dropEvent(41));
    EXPECT_FALSE(p.dropEvent(40));

    // A typo must never silently disable the fault.
    EXPECT_THROW(FaultPlan::parse("no.such.point"), FatalError);
    EXPECT_THROW(FaultPlan::parse("pass.throw:bogus=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("sim.drop-event:seq=zzz"),
                 FatalError);
}

TEST(FaultInjection, SpecParsingErrorPaths)
{
    // Every malformed spec dies loudly — the point of $CASH_INJECT /
    // --inject is that a fault you asked for always happens.
    EXPECT_THROW(FaultPlan::parse("pass.throw:pass"), FatalError);
    EXPECT_THROW(FaultPlan::parse("pass.throw:round="), FatalError);
    EXPECT_THROW(FaultPlan::parse("pass.throw:round=-1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("pass.throw:seed=1x"), FatalError);
    // Overflows a uint64 by one digit.
    EXPECT_THROW(FaultPlan::parse("sim.drop-event:seq="
                                  "184467440737095516160"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("pass.throw;oops"), FatalError);
    // An empty point name is unknown, not skipped.
    EXPECT_THROW(FaultPlan::parse(":pass=x"), FatalError);

    // Benign slack: empty specs/segments and stray whitespace parse
    // to exactly what remains.
    EXPECT_TRUE(FaultPlan::parse("").specs().empty());
    EXPECT_TRUE(FaultPlan::parse(" ; ;").specs().empty());
    FaultPlan p = FaultPlan::parse(
        "  pass.throw : pass = dce , , round = 3 ;");
    ASSERT_EQ(p.specs().size(), 1u);
    EXPECT_EQ(p.specs()[0].pass, "dce");
    EXPECT_EQ(p.specs()[0].round, 3);

    // str() is a parseable round trip (repro commands rely on it).
    FaultPlan q = FaultPlan::parse(p.str());
    EXPECT_EQ(q.str(), p.str());
}

TEST(FaultInjection, EnvPlanIsStableAndMatchesSelectively)
{
    // The suite never sets $CASH_INJECT, so the process-wide plan is
    // empty — and fromEnv() is latched, returning the same object on
    // every call.
    const FaultPlan& env = FaultPlan::fromEnv();
    EXPECT_TRUE(env.specs().empty());
    EXPECT_EQ(&env, &FaultPlan::fromEnv());

    // match() treats absent keys as wildcards and set keys exactly.
    FaultPlan p = FaultPlan::parse(
        "pass.throw:pass=dce,func=f,round=2;graph.corrupt-token");
    EXPECT_NE(p.match("graph.corrupt-token", "g", "any", 9), nullptr);
    EXPECT_NE(p.match("pass.throw", "f", "dce", 2), nullptr);
    EXPECT_EQ(p.match("pass.throw", "f", "dce", 3), nullptr);
    EXPECT_EQ(p.match("pass.throw", "g", "dce", 2), nullptr);
    EXPECT_EQ(p.match("sim.drop-event", "f", "dce", 2), nullptr);
}

TEST(FaultInjection, CorruptAnyPassRollsBackAndOthersStayGolden)
{
    // Golden reference: clean compile, cycles for the untouched
    // functions.
    CompileResult clean = compileSource(kMultiSrc, {});
    ASSERT_TRUE(clean.ok());
    const uint64_t goldenSum = runCycles(clean, "sum", 10);
    const uint32_t goldenFill =
        testutil::interpret(kMultiSrc, "fill", {10});

    std::set<std::string> names;
    for (const std::string& n :
         standardPipelineNames(OptLevel::Full))
        names.insert(n);

    for (const std::string& pass : names) {
        FaultPlan plan = FaultPlan::parse(
            "graph.corrupt-token:pass=" + pass + ",func=fill,round=1");
        CompileResult r = compileSource(
            kMultiSrc, CompileOptions().inject(&plan));

        // The verifier caught the corruption; the pass was rolled
        // back and quarantined, and the diagnostic names it.
        ASSERT_FALSE(r.ok()) << pass;
        for (const PassFailure& d : r.diagnostics) {
            EXPECT_EQ(d.function, "fill") << pass;
            EXPECT_EQ(d.pass, pass);
            EXPECT_EQ(static_cast<int>(d.code),
                      static_cast<int>(ErrorCode::VerifyError));
            EXPECT_FALSE(d.str().empty());
        }
        EXPECT_GT(r.stats.get("opt.rollbacks"), 0) << pass;
        EXPECT_GT(r.stats.get("opt.quarantined_passes"), 0) << pass;

        // Rolled-back graphs still verify and still compute the right
        // answer.
        for (const auto& g : r.graphs)
            EXPECT_TRUE(verifyGraph(*g).empty()) << pass << "/"
                                                 << g->name;
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        SimResult out = sim.run("fill", {10});
        ASSERT_TRUE(out.ok()) << pass << ": " << out.error;
        EXPECT_EQ(out.returnValue, goldenFill) << pass;

        // Functions the fault never touched are byte-identical to the
        // clean compile and simulate to golden cycle counts.
        EXPECT_EQ(graphDot(r, "sum"), graphDot(clean, "sum")) << pass;
        EXPECT_EQ(runCycles(r, "sum", 10), goldenSum) << pass;
    }
}

TEST(FaultInjection, DiagnosticsDeterministicAcrossJobCounts)
{
    FaultPlan plan = FaultPlan::parse(
        "graph.corrupt-token:pass=dead_code,func=fill,round=1");
    CompileResult serial = compileSource(
        kMultiSrc, CompileOptions().inject(&plan).jobs(1));
    CompileResult parallel = compileSource(
        kMultiSrc, CompileOptions().inject(&plan).jobs(8));

    ASSERT_EQ(serial.diagnostics.size(), parallel.diagnostics.size());
    for (size_t i = 0; i < serial.diagnostics.size(); i++)
        EXPECT_EQ(serial.diagnostics[i].str(),
                  parallel.diagnostics[i].str());
    EXPECT_EQ(statsFingerprint(serial.stats),
              statsFingerprint(parallel.stats));
    for (const auto& g : serial.graphs)
        EXPECT_EQ(toDot(*g), graphDot(parallel, g->name));
    EXPECT_EQ(runCycles(serial, "both", 6),
              runCycles(parallel, "both", 6));
}

TEST(FaultInjection, PassThrowIsIsolated)
{
    FaultPlan plan = FaultPlan::parse(
        "pass.throw:pass=scalar_opts,func=sum,round=1");
    CompileResult r =
        compileSource(kMultiSrc, CompileOptions().inject(&plan));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].function, "sum");
    EXPECT_EQ(r.diagnostics[0].pass, "scalar_opts");
    EXPECT_EQ(static_cast<int>(r.diagnostics[0].code),
              static_cast<int>(ErrorCode::PassError));
    EXPECT_TRUE(r.diagnostics[0].message.find("injected") !=
                std::string::npos);

    // The thrown-into function still compiles (unoptimized by that
    // pass) and runs correctly.
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    SimResult out = sim.run("sum", {10});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.returnValue,
              testutil::interpret(kMultiSrc, "sum", {10}));
}

TEST(FaultInjection, StrictModeFailsFast)
{
    FaultPlan plan = FaultPlan::parse(
        "pass.throw:pass=scalar_opts,func=sum,round=1");
    EXPECT_THROW(
        compileSource(kMultiSrc,
                      CompileOptions().inject(&plan).strictMode(true)),
        FatalError);
}

TEST(FaultInjection, DroppedEventDeadlocksWithDiagnostic)
{
    const char* src = "int f(int n) { int s = 0; int i;"
                      " for (i = 0; i < n; i++) s += i * 3;"
                      " return s; }";
    CompileResult r = compileSource(src, {});
    ASSERT_TRUE(r.ok());

    // Find a delivery whose loss starves the graph: dropping event
    // seq=K is deterministic, so scan K upward until the run
    // deadlocks.
    int deadlockSeq = -1;
    SimResult first;
    for (int seq = 0; seq < 64 && deadlockSeq < 0; seq++) {
        FaultPlan plan = FaultPlan::parse(
            "sim.drop-event:seq=" + std::to_string(seq));
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        sim.setMaxEvents(2000000);
        sim.setFaultPlan(&plan);
        SimResult out = sim.run("f", {10});
        if (out.outcome == SimOutcome::Deadlock) {
            deadlockSeq = seq;
            first = std::move(out);
        }
    }
    ASSERT_GE(deadlockSeq, 0)
        << "no single dropped event caused a deadlock";

    // The deadlock dump names at least one starved node and the
    // inputs it waits on.
    EXPECT_EQ(first.stats.get("sim.outcome.deadlock"), 1);
    EXPECT_EQ(first.stats.get("sim.events.dropped"), 1);
    ASSERT_FALSE(first.deadlock.stuck.empty());
    EXPECT_FALSE(first.deadlock.stuck[0].node.empty());
    EXPECT_FALSE(first.deadlock.stuck[0].waitingOn.empty());
    EXPECT_TRUE(first.error.find("deadlock") != std::string::npos);

    // Same spec, same failure: the report reproduces byte for byte.
    FaultPlan plan = FaultPlan::parse(
        "sim.drop-event:seq=" + std::to_string(deadlockSeq));
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    sim.setMaxEvents(2000000);
    sim.setFaultPlan(&plan);
    SimResult again = sim.run("f", {10});
    EXPECT_EQ(static_cast<int>(again.outcome),
              static_cast<int>(SimOutcome::Deadlock));
    EXPECT_EQ(again.deadlock.str(), first.deadlock.str());
}

TEST(FaultInjection, MissingGraphIsAnOutcomeNotAnAbort)
{
    CompileResult r = compileSource(
        "int g(int n) { return n + 1; }"
        "int f(int n) { return g(n) * 2; }",
        {});

    // Unknown entry point.
    DataflowSimulator all(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    SimResult miss = all.run("nope", {});
    EXPECT_EQ(static_cast<int>(miss.outcome),
              static_cast<int>(SimOutcome::MissingGraph));
    EXPECT_EQ(miss.stats.get("sim.outcome.missing_graph"), 1);

    // Callee graph withheld: the call fires and degrades instead of
    // aborting the process.
    std::vector<const Graph*> only = {r.graph("f")};
    DataflowSimulator part(only, *r.layout,
                           MemConfig::perfectMemory());
    SimResult out = part.run("f", {3});
    EXPECT_EQ(static_cast<int>(out.outcome),
              static_cast<int>(SimOutcome::MissingGraph));
    EXPECT_TRUE(out.error.find("'g'") != std::string::npos);
}

TEST(FaultInjection, HandBuiltTokenSelfLoopDeadlockNamesStarvedNode)
{
    // A Load whose token input can only come from its own token
    // output: the address arrives (wired from the initial token), the
    // token never does.  The deadlock report must name the load and
    // the starved token input.
    Graph g;
    g.name = "stuck";
    g.numParams = 0;
    Node* it = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    g.initialToken = it;
    Node* pred = g.newConst(1, VT::Pred, 0);
    Node* ld = g.newNode(NodeKind::Load, VT::Word, 0);
    g.addInput(ld, {pred, 0});
    g.addInput(ld, {ld, 1});  // token self-loop: never satisfied
    g.addInput(ld, {it, 0});  // address: arrives at t=0
    Node* ret = g.newNode(NodeKind::Return, VT::Word, 0);
    g.addInput(ret, {pred, 0});
    g.addInput(ret, {ld, 1});
    g.addInput(ret, {ld, 0});
    g.returnNodes.push_back(ret);

    MemoryLayout layout;
    DataflowSimulator sim({&g}, layout, MemConfig::perfectMemory());
    SimResult out = sim.run("stuck", {});
    ASSERT_EQ(static_cast<int>(out.outcome),
              static_cast<int>(SimOutcome::Deadlock));
    ASSERT_FALSE(out.deadlock.stuck.empty());
    const StuckNode& s = out.deadlock.stuck[0];
    EXPECT_EQ(s.function, "stuck");
    EXPECT_TRUE(s.node.find("load") != std::string::npos) << s.node;
    ASSERT_EQ(s.waitingOn.size(), 1u);
    EXPECT_EQ(s.waitingOn[0], "in1 (token)");
    EXPECT_EQ(out.deadlock.lsqOccupancy, 0u);
    EXPECT_TRUE(out.deadlock.str().find("load") != std::string::npos);
}

TEST(FaultInjection, CorruptTokenCaughtByAnalysisBeforeSimulation)
{
    // Differential proof for the ordering checker (docs/ANALYSIS.md):
    // with the structural verifier OFF, the independent checker alone
    // must catch a corrupted token edge in any pass, roll the pass
    // back and keep the simulation golden.  The checker shares no
    // code with the verifier, so this is a second, independent line
    // of defense in front of the simulator.
    const uint32_t goldenFill =
        testutil::interpret(kMultiSrc, "fill", {10});
    for (const std::string& pass :
         standardPipelineNames(OptLevel::Full)) {
        FaultPlan plan = FaultPlan::parse(
            "graph.corrupt-token:pass=" + pass + ",func=fill,round=1");
        CompileResult r = compileSource(
            kMultiSrc, CompileOptions()
                           .inject(&plan)
                           .verification(false)
                           .orderingCheck(true));
        ASSERT_FALSE(r.ok()) << pass;
        bool analysisCaught = false;
        for (const PassFailure& d : r.diagnostics) {
            EXPECT_EQ(d.function, "fill") << pass;
            if (d.code == ErrorCode::AnalysisError)
                analysisCaught = true;
        }
        EXPECT_TRUE(analysisCaught)
            << pass << ": " << r.diagnostics[0].str();
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        SimResult out = sim.run("fill", {10});
        ASSERT_TRUE(out.ok()) << pass << ": " << out.error;
        EXPECT_EQ(out.returnValue, goldenFill) << pass;
    }
}

TEST(FaultInjection, CorruptTokenEdgeIsDeterministic)
{
    CompileResult a = compileSource(kMultiSrc, {});
    CompileResult b = compileSource(kMultiSrc, {});
    Graph* ga = a.graphs[1].get();
    Graph* gb = b.graphs[1].get();
    std::string da = corruptTokenEdge(*ga, 3);
    std::string db = corruptTokenEdge(*gb, 3);
    EXPECT_EQ(da, db);
    EXPECT_FALSE(da.empty());
    // The damage is verifier-visible.
    EXPECT_FALSE(verifyGraph(*ga).empty());
}

} // namespace
