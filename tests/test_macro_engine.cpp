/**
 * @file
 * Differential suite for the macro-firing simulation engine against
 * the exact event engine (docs/SIMULATOR.md, "Macro-firing engine"),
 * over the benchsuite kernels at every optimization level and across
 * parallel-compile job counts.
 *
 * The contract under test:
 *  - return values are byte-identical on every memory model;
 *  - cycle counts and architectural stats (dynamic loads / stores,
 *    nullified operations, calls) are byte-identical under
 *    contention-free (perfect) memory;
 *  - under realistic memory the macro engine collapses within-cycle
 *    dispatch order, so same-cycle arbitration inside the memory
 *    hierarchy may resolve differently: cycles may drift by a small
 *    bounded amount while return values stay exact;
 *  - the macro engine itself is run-to-run deterministic, including
 *    firing totals and equivalent-event accounting;
 *  - fault injection (sim.drop-event) degrades as gracefully under
 *    the macro engine as under the event engine: a deterministic
 *    deadlock with a reproducible starvation report, never a crash.
 */
#include <gtest/gtest.h>

#include "benchsuite/kernels.h"
#include "support/fault_injection.h"
#include "test_util.h"

namespace cash {
namespace {

/** Everything the contract promises byte-identical on perfect memory. */
struct Fingerprint
{
    uint32_t returnValue = 0;
    uint64_t cycles = 0;
    int64_t dynLoads = 0;
    int64_t dynStores = 0;
    int64_t nullified = 0;
    int64_t calls = 0;

    bool operator==(const Fingerprint& o) const
    {
        return returnValue == o.returnValue && cycles == o.cycles &&
               dynLoads == o.dynLoads && dynStores == o.dynStores &&
               nullified == o.nullified && calls == o.calls;
    }
};

std::ostream&
operator<<(std::ostream& os, const Fingerprint& f)
{
    return os << "{ret=" << f.returnValue << " cycles=" << f.cycles
              << " loads=" << f.dynLoads << " stores=" << f.dynStores
              << " nullified=" << f.nullified << " calls=" << f.calls
              << "}";
}

Fingerprint
fingerprint(const SimResult& r)
{
    Fingerprint f;
    f.returnValue = r.returnValue;
    f.cycles = r.cycles;
    f.dynLoads = r.stats.get("sim.dynLoads");
    f.dynStores = r.stats.get("sim.dynStores");
    f.nullified = r.stats.get("sim.nullified");
    f.calls = r.stats.get("sim.calls");
    return f;
}

SimResult
runOn(const CompileResult& r, const Kernel& k, const MemConfig& mem,
      SimEngine engine)
{
    DataflowSimulator sim(r.graphPtrs(), *r.layout, mem, engine);
    return sim.run(k.entry, k.args);
}

class MacroDifferential : public testing::TestWithParam<std::string>
{
};

TEST_P(MacroDifferential, ByteIdenticalOnPerfectMemory)
{
    const Kernel& k = kernelByName(GetParam());
    const uint32_t expect =
        testutil::interpret(k.source, k.entry, k.args);

    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        SCOPED_TRACE(std::string("level ") + optLevelName(level));
        CompileResult r =
            compileSource(k.source, CompileOptions().opt(level));

        SimResult ev = runOn(r, k, MemConfig::perfectMemory(),
                             SimEngine::Event);
        SimResult ma = runOn(r, k, MemConfig::perfectMemory(),
                             SimEngine::Macro);
        EXPECT_EQ(ev.returnValue, expect);
        EXPECT_EQ(fingerprint(ma), fingerprint(ev));

        // Equivalent-event accounting measures the same work the
        // event engine performs: collapsed interior deliveries are
        // credited back, so the total never undercounts real events
        // and tracks the event engine's count up to deliveries
        // abandoned at termination.
        EXPECT_GE(ma.stats.get("sim.events.equivalent"),
                  ma.stats.get("sim.events"));
    }
}

TEST_P(MacroDifferential, ReturnsExactOnRealisticMemory)
{
    const Kernel& k = kernelByName(GetParam());
    CompileResult r =
        compileSource(k.source, CompileOptions().opt(OptLevel::Full));

    SimResult ev =
        runOn(r, k, MemConfig::realistic(2), SimEngine::Event);
    SimResult ma =
        runOn(r, k, MemConfig::realistic(2), SimEngine::Macro);

    // Values are exact; timing may drift where same-cycle memory
    // requests reach the hierarchy in a different within-cycle order
    // (docs/SIMULATOR.md).  The drift bound is deliberately tight:
    // anything past ~1% is a real scheduling bug, not arbitration.
    // Exception: on multi-call kernels the interprocedural pruning
    // (docs/ANALYSIS.md) runs whole calls concurrently, so the ports
    // are contended on *every* cycle and the engines' within-cycle
    // arbitration orders diverge for the whole run — values and
    // dynamic op counts stay exact, but the timing bound has to admit
    // the sustained arbitration drift.
    int64_t calls = 0;
    for (const Graph* g : r.graphPtrs())
        g->forEach([&](Node* n) {
            if (n->kind == NodeKind::Call)
                calls++;
        });
    uint64_t slack = calls > 1 ? 4 + std::max(ma.cycles, ev.cycles) / 8
                               : 4 + std::max(ma.cycles, ev.cycles) / 100;
    EXPECT_EQ(ma.returnValue, ev.returnValue);
    EXPECT_EQ(ma.stats.get("sim.dynLoads"),
              ev.stats.get("sim.dynLoads"));
    EXPECT_EQ(ma.stats.get("sim.dynStores"),
              ev.stats.get("sim.dynStores"));
    uint64_t hi = std::max(ma.cycles, ev.cycles);
    uint64_t lo = std::min(ma.cycles, ev.cycles);
    EXPECT_LE(hi - lo, slack)
        << "macro=" << ma.cycles << " event=" << ev.cycles;
}

TEST_P(MacroDifferential, MacroEngineIsDeterministic)
{
    const Kernel& k = kernelByName(GetParam());
    CompileResult r =
        compileSource(k.source, CompileOptions().opt(OptLevel::Full));

    DataflowSimulator simA(r.graphPtrs(), *r.layout,
                           MemConfig::perfectMemory(),
                           SimEngine::Macro);
    DataflowSimulator simB(r.graphPtrs(), *r.layout,
                           MemConfig::perfectMemory(),
                           SimEngine::Macro);
    SimResult a = simA.run(k.entry, k.args);
    SimResult b = simB.run(k.entry, k.args);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_EQ(a.stats.get("sim.firings"), b.stats.get("sim.firings"));
    EXPECT_EQ(a.stats.get("sim.events.equivalent"),
              b.stats.get("sim.events.equivalent"));
    EXPECT_EQ(a.stats.get("sim.region.fired"),
              b.stats.get("sim.region.fired"));

    // Re-running a reset simulator replays the exact same schedule.
    simA.reset();
    SimResult c = simA.run(k.entry, k.args);
    EXPECT_EQ(fingerprint(a), fingerprint(c));
    EXPECT_EQ(a.stats.get("sim.firings"), c.stats.get("sim.firings"));
}

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const Kernel& k : kernelSuite())
        names.push_back(k.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(Benchsuite, MacroDifferential,
                         testing::ValuesIn(kernelNames()),
                         [](const auto& info) { return info.param; });

// The engines must agree regardless of how many compiler jobs built
// the graphs (PR 2's parallel-compile determinism seeds): a jobs=8
// compile feeds the same differential contract as jobs=1, and the
// macro runs themselves are byte-identical across job counts.
TEST(MacroEngineJobs, DifferentialHoldsAcrossJobCounts)
{
    int tested = 0;
    for (const Kernel& k : kernelSuite()) {
        if (tested++ == 3)
            break;
        SCOPED_TRACE(k.name);
        Fingerprint prev;
        bool havePrev = false;
        for (int jobs : {1, 8}) {
            SCOPED_TRACE(std::string("jobs ") +
                         std::to_string(jobs));
            CompileResult r = compileSource(
                k.source,
                CompileOptions().opt(OptLevel::Full).jobs(jobs));
            SimResult ev = runOn(r, k, MemConfig::perfectMemory(),
                                 SimEngine::Event);
            SimResult ma = runOn(r, k, MemConfig::perfectMemory(),
                                 SimEngine::Macro);
            EXPECT_EQ(fingerprint(ma), fingerprint(ev));
            if (havePrev) {
                EXPECT_EQ(fingerprint(ma), prev);
            }
            prev = fingerprint(ma);
            havePrev = true;
        }
    }
}

// Region statistics surface the super-operator shape: the suite's
// larger kernels must actually compile regions, and firing them must
// inline interior operators (otherwise the engine silently fell back
// to pure event dispatch and the bench numbers are meaningless).
TEST(MacroEngineRegions, SuiteKernelsCompileAndFireRegions)
{
    int64_t totalRegions = 0, totalFired = 0, totalInlined = 0;
    for (const Kernel& k : kernelSuite()) {
        CompileResult r = compileSource(
            k.source, CompileOptions().opt(OptLevel::Full));
        SimResult ma = runOn(r, k, MemConfig::perfectMemory(),
                             SimEngine::Macro);
        totalRegions += ma.stats.get("sim.region.count");
        totalFired += ma.stats.get("sim.region.fired");
        totalInlined += ma.stats.get("sim.region.ops_inlined");

        // The event engine must not report region stats.
        SimResult ev = runOn(r, k, MemConfig::perfectMemory(),
                             SimEngine::Event);
        EXPECT_EQ(ev.stats.get("sim.region.count"), 0) << k.name;
    }
    EXPECT_GT(totalRegions, 0);
    EXPECT_GT(totalFired, 0);
    EXPECT_GT(totalInlined, totalFired)
        << "regions fired but inlined <= one op per firing";
}

// Dropping a load-bearing delivery must starve the macro engine into
// the same graceful deadlock outcome the event engine produces: a
// populated starvation report, correct outcome stats, and byte-level
// reproducibility — never a crash or a silent wrong answer.
TEST(MacroEngineFaults, DropEventDegradesGracefully)
{
    const char* src = "int f(int n) { int s = 0;"
                      " for (int i = 0; i < n; i++) s = s + i;"
                      " return s; }";
    CompileResult r = compileSource(src, {});
    ASSERT_TRUE(r.ok());

    int deadlockSeq = -1;
    SimResult first;
    for (int seq = 0; seq < 64 && deadlockSeq < 0; seq++) {
        FaultPlan plan = FaultPlan::parse(
            "sim.drop-event:seq=" + std::to_string(seq));
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory(),
                              SimEngine::Macro);
        sim.setMaxEvents(2000000);
        sim.setFaultPlan(&plan);
        SimResult out = sim.run("f", {10});
        // Every single-drop run either still completes (the delivery
        // was not load-bearing) or deadlocks; nothing else.
        ASSERT_TRUE(out.outcome == SimOutcome::Ok ||
                    out.outcome == SimOutcome::Deadlock)
            << "seq " << seq;
        if (out.outcome == SimOutcome::Deadlock) {
            deadlockSeq = seq;
            first = std::move(out);
        }
    }
    ASSERT_GE(deadlockSeq, 0)
        << "no single dropped event starved the macro engine";

    EXPECT_EQ(first.stats.get("sim.outcome.deadlock"), 1);
    EXPECT_EQ(first.stats.get("sim.events.dropped"), 1);
    ASSERT_FALSE(first.deadlock.stuck.empty());
    EXPECT_FALSE(first.deadlock.stuck[0].node.empty());
    EXPECT_FALSE(first.deadlock.stuck[0].waitingOn.empty());
    EXPECT_TRUE(first.error.find("deadlock") != std::string::npos);

    FaultPlan plan = FaultPlan::parse(
        "sim.drop-event:seq=" + std::to_string(deadlockSeq));
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory(),
                          SimEngine::Macro);
    sim.setMaxEvents(2000000);
    sim.setFaultPlan(&plan);
    SimResult again = sim.run("f", {10});
    EXPECT_EQ(static_cast<int>(again.outcome),
              static_cast<int>(SimOutcome::Deadlock));
    EXPECT_EQ(again.deadlock.str(), first.deadlock.str());
}

} // namespace
} // namespace cash
