/**
 * @file
 * Optimizer-side whole-program MOD/REF summaries (analysis/modref.h):
 * leaf-function exactness, call-site translation through the caller's
 * points-to bindings, recursion via the SCC fixpoint, call-instruction
 * stamping, and the --dump-summaries / stats-JSON renderings.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/modref.h"
#include "test_util.h"

using namespace cash;

namespace {

const char* kTwoHelperSrc = R"(
int ga_[16];
int gb_[16];
int kco_[4];

void scale(int* v, int n)
{
    int i;
    for (i = 0; i < n; i++)
        v[i] = v[i] * kco_[i & 3];
}

int total(int* v, int n)
{
    int i;
    int s = 0;
    for (i = 0; i < n; i++)
        s += v[i];
    return s;
}

int run(int n)
{
    int i;
    for (i = 0; i < 4; i++)
        kco_[i] = i + 1;
    for (i = 0; i < n; i++) {
        ga_[i] = i;
        gb_[i] = i + 1;
    }
    scale(ga_, n);
    scale(gb_, n);
    return total(ga_, n) + total(gb_, n);
}
)";

const char* kRecursiveSrc = R"(
int tree_[64];

int redsum(int lo, int hi)
{
    if (hi - lo < 2)
        return tree_[lo];
    int mid = (lo + hi) / 2;
    return redsum(lo, mid) + redsum(mid, hi);
}

int run(int n)
{
    int i;
    for (i = 0; i < n; i++)
        tree_[i] = i;
    return redsum(0, n);
}
)";

/** Location id of global @p name; fatal-asserts when missing. */
int
globalLoc(const CompileResult& r, const std::string& name)
{
    for (const MemObject& obj : r.layout->objects())
        if (obj.isGlobal && obj.name == name)
            return obj.id;
    ADD_FAILURE() << "no global named " << name;
    return -1;
}

bool
setContains(const LocationSet& s, int loc)
{
    if (s.isTop())
        return true;
    const auto& locs = s.locations();
    return std::find(locs.begin(), locs.end(), loc) != locs.end();
}

const FunctionModRef&
functionSummary(const CompileResult& r, const std::string& name)
{
    for (const FunctionModRef& f : r.summaries->functions())
        if (f.name == name)
            return f;
    throw FatalError("no summary for " + name);
}

} // namespace

TEST(ModRef, LeafSummariesAreExact)
{
    CompileResult r = compileSource(kTwoHelperSrc);
    ASSERT_TRUE(r.summaries);

    // scale reads {v, kco_} and writes {v}: in its own location space
    // the pointer parameter is an external location, so the concrete
    // ga_/gb_ objects must NOT appear, and nothing is Top.
    const FunctionModRef& scale = functionSummary(r, "scale");
    EXPECT_FALSE(scale.ref.isTop());
    EXPECT_FALSE(scale.mod.isTop());
    EXPECT_FALSE(scale.recursive);
    EXPECT_EQ(scale.callSites, 0);
    EXPECT_TRUE(setContains(scale.ref, globalLoc(r, "kco_")));
    EXPECT_FALSE(setContains(scale.ref, globalLoc(r, "ga_")));
    EXPECT_FALSE(setContains(scale.mod, globalLoc(r, "kco_")));

    // total is read-only.
    const FunctionModRef& total = functionSummary(r, "total");
    EXPECT_FALSE(total.ref.isTop());
    EXPECT_TRUE(total.mod.empty());
}

TEST(ModRef, CallSitesTranslateThroughArgumentBindings)
{
    CompileResult r = compileSource(kTwoHelperSrc);
    const int ga = globalLoc(r, "ga_");
    const int gb = globalLoc(r, "gb_");
    const int kco = globalLoc(r, "kco_");

    // run's four call sites, in (block, index) order: scale(ga_),
    // scale(gb_), total(ga_), total(gb_).  The callee's v-external
    // must resolve to exactly the argument's object.
    std::vector<CallSiteModRef> sites;
    for (const CallSiteModRef& c : r.summaries->callSites())
        if (c.caller == "run")
            sites.push_back(c);
    ASSERT_EQ(sites.size(), 4u);

    EXPECT_EQ(sites[0].callee, "scale");
    EXPECT_TRUE(setContains(sites[0].reads, ga));
    EXPECT_TRUE(setContains(sites[0].reads, kco));
    EXPECT_FALSE(setContains(sites[0].reads, gb));
    EXPECT_TRUE(setContains(sites[0].writes, ga));
    EXPECT_FALSE(setContains(sites[0].writes, gb));
    EXPECT_FALSE(setContains(sites[0].writes, kco));

    EXPECT_EQ(sites[1].callee, "scale");
    EXPECT_TRUE(setContains(sites[1].writes, gb));
    EXPECT_FALSE(setContains(sites[1].writes, ga));

    EXPECT_EQ(sites[2].callee, "total");
    EXPECT_TRUE(sites[2].writes.empty());
    EXPECT_TRUE(setContains(sites[2].reads, ga));
    EXPECT_FALSE(setContains(sites[2].reads, gb));

    // run's own summary is the union over its body and callees.
    const FunctionModRef& run = functionSummary(r, "run");
    EXPECT_TRUE(setContains(run.ref, ga));
    EXPECT_TRUE(setContains(run.ref, gb));
    EXPECT_TRUE(setContains(run.mod, ga));
    EXPECT_TRUE(setContains(run.mod, kco));
}

TEST(ModRef, RecursionConvergesWithoutTop)
{
    CompileResult r = compileSource(kRecursiveSrc);
    const FunctionModRef& red = functionSummary(r, "redsum");
    EXPECT_TRUE(red.recursive);
    EXPECT_FALSE(red.ref.isTop());
    EXPECT_TRUE(setContains(red.ref, globalLoc(r, "tree_")));
    EXPECT_TRUE(red.mod.empty());
    // The non-recursive caller sits in its own condensation component.
    EXPECT_NE(red.scc, functionSummary(r, "run").scc);
    EXPECT_FALSE(functionSummary(r, "run").recursive);
}

TEST(ModRef, FullOptStampsCallEffects)
{
    CompileResult r = compileSource(kTwoHelperSrc);
    int stamped = 0;
    for (const auto& fn : r.cfg->functions)
        for (const auto& b : fn->blocks)
            for (const Instr& i : b->instrs) {
                if (i.kind != InstrKind::Call)
                    continue;
                EXPECT_TRUE(i.callEffectsValid);
                EXPECT_FALSE(i.callReads.isTop());
                EXPECT_FALSE(i.callWrites.isTop());
                stamped++;
            }
    EXPECT_EQ(stamped, 4);
}

TEST(ModRef, IpoOffComputesButDoesNotStamp)
{
    CompileResult r =
        compileSource(kTwoHelperSrc,
                      CompileOptions().interprocOpt(false));
    // Summaries still exist for reporting...
    ASSERT_TRUE(r.summaries);
    EXPECT_FALSE(functionSummary(r, "scale").ref.isTop());
    // ...but no call carries optimizer-consumable stamps.
    for (const auto& fn : r.cfg->functions)
        for (const auto& b : fn->blocks)
            for (const Instr& i : b->instrs)
                if (i.kind == InstrKind::Call)
                    EXPECT_FALSE(i.callEffectsValid);
}

TEST(ModRef, DumpAndJsonRenderings)
{
    CompileResult r = compileSource(kTwoHelperSrc);
    std::string dump = r.summaries->dump();
    EXPECT_NE(dump.find("function scale:"), std::string::npos);
    EXPECT_NE(dump.find("function run:"), std::string::npos);
    EXPECT_NE(dump.find("call scale"), std::string::npos);
    EXPECT_NE(dump.find("kco_"), std::string::npos);
    EXPECT_EQ(dump.find("{top}"), std::string::npos);

    std::string json = r.summaries->json();
    EXPECT_NE(json.find("\"functions\""), std::string::npos);
    EXPECT_NE(json.find("\"callee\": \"total\""), std::string::npos);
    EXPECT_NE(json.find("\"recursive\": false"), std::string::npos);

    CompileResult rec = compileSource(kRecursiveSrc);
    EXPECT_NE(rec.summaries->dump().find("recursive"),
              std::string::npos);
    EXPECT_NE(rec.summaries->json().find("\"recursive\": true"),
              std::string::npos);
}
