/**
 * @file
 * Points-to analysis, read/write sets, alias oracle and memory
 * partitioning (§3.3, §7.1).
 */
#include <gtest/gtest.h>

#include "analysis/points_to.h"
#include "cfg/lower.h"
#include "test_util.h"

using namespace cash;

namespace {

struct Built
{
    Program prog;
    MemoryLayout layout;
    std::unique_ptr<CfgProgram> cfg;
};

Built
analyze(const std::string& src)
{
    Built b;
    b.prog = parseProgram(src);
    analyzeProgram(b.prog);
    b.layout.build(b.prog);
    b.cfg = lowerProgram(b.prog, b.layout);
    runPointsTo(*b.cfg, b.prog, b.layout);
    return b;
}

std::vector<const Instr*>
memOps(const CfgFunction& fn)
{
    std::vector<const Instr*> out;
    for (const auto& b : fn.blocks)
        for (const Instr& i : b->instrs)
            if (i.kind == InstrKind::Load || i.kind == InstrKind::Store)
                out.push_back(&i);
    return out;
}

TEST(PointsTo, DirectGlobalAccessGetsItsObject)
{
    Built b = analyze("int g; int f(void) { return g; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_FALSE(ops[0]->rwSet.isTop());
    EXPECT_TRUE(ops[0]->rwSet.locations().count(
        b.prog.globals[0]->objectId));
}

TEST(PointsTo, DistinctGlobalsDoNotOverlap)
{
    Built b = analyze("int a[4]; int c[4];"
                      "int f(int i) { a[i] = 1; return c[i]; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_FALSE(
        b.cfg->oracle.mayOverlap(ops[0]->rwSet, ops[1]->rwSet));
}

TEST(PointsTo, PointerParamsGetExternalLocations)
{
    Built b = analyze("int f(int* p) { return *p; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 1u);
    ASSERT_FALSE(ops[0]->rwSet.isTop());
    for (int loc : ops[0]->rwSet.locations())
        EXPECT_TRUE(b.cfg->oracle.isExternal(loc));
}

TEST(PointsTo, ExternalsAliasGlobals)
{
    Built b = analyze("int g[4];"
                      "int f(int* p, int i) { g[i] = 1; return *p; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_TRUE(
        b.cfg->oracle.mayOverlap(ops[0]->rwSet, ops[1]->rwSet));
}

TEST(PointsTo, TwoExternalsAliasWithoutPragma)
{
    Built b = analyze("void f(int* p, int* q) { *p = *q; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_TRUE(
        b.cfg->oracle.mayOverlap(ops[0]->rwSet, ops[1]->rwSet));
}

TEST(PointsTo, PragmaIndependentSeparatesExternals)
{
    Built b = analyze("void f(int* p, int* q) {\n"
                      "#pragma independent p q\n"
                      " *p = *q; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_FALSE(
        b.cfg->oracle.mayOverlap(ops[0]->rwSet, ops[1]->rwSet));
}

TEST(PointsTo, PragmaAgainstGlobalArray)
{
    Built b = analyze("int a[8];"
                      "void f(int* p, int i) {\n"
                      "#pragma independent p a\n"
                      " a[i] = *p; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_FALSE(
        b.cfg->oracle.mayOverlap(ops[0]->rwSet, ops[1]->rwSet));
}

TEST(PointsTo, PointerArithmeticKeepsProvenance)
{
    Built b = analyze("int a[8];"
                      "int f(int i) { int* p = a; p = p + i;"
                      " return *p; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_TRUE(ops[0]->rwSet.locations().count(
        b.prog.globals[0]->objectId));
}

TEST(PointsTo, LoadedPointerIsTop)
{
    Built b = analyze("int* table[4];"
                      "int f(int i) { int* p = table[i]; return *p; }");
    auto ops = memOps(*b.cfg->find("f"));
    ASSERT_EQ(ops.size(), 2u);
    // Second load dereferences a pointer read from memory.
    EXPECT_TRUE(ops[1]->rwSet.isTop());
}

TEST(PointsTo, FrameObjectsNotAliasedByExternalsUnlessEscaping)
{
    Built b = analyze("int f(int* p) { int t[4]; t[0] = *p;"
                      " return t[0]; }");
    auto ops = memOps(*b.cfg->find("f"));
    // ops: load *p, store t[0], load t[0].
    const Instr* pLoad = ops[0];
    const Instr* tStore = ops[1];
    EXPECT_FALSE(
        b.cfg->oracle.mayOverlap(pLoad->rwSet, tStore->rwSet));
}

TEST(Partitions, DisjointObjectsSeparatePartitions)
{
    Built b = analyze("int a[4]; int c[4];"
                      "void f(int i) { a[i] = 1; c[i] = 2; }");
    PartitionResult parts =
        computePartitions(*b.cfg->find("f"), b.cfg->oracle);
    EXPECT_EQ(parts.numPartitions, 2);
    EXPECT_NE(parts.memOpPartition[0], parts.memOpPartition[1]);
}

TEST(Partitions, AliasingCollapsesPartitions)
{
    Built b = analyze("int a[4];"
                      "void f(int* p, int i) { a[i] = 1; *p = 2; }");
    PartitionResult parts =
        computePartitions(*b.cfg->find("f"), b.cfg->oracle);
    EXPECT_EQ(parts.numPartitions, 1);
}

TEST(Partitions, CallCollapsesEverything)
{
    Built b = analyze("int a[4]; int c[4];"
                      "void g(void) {}"
                      "void f(int i) { a[i] = 1; g(); c[i] = 2; }");
    PartitionResult parts =
        computePartitions(*b.cfg->find("f"), b.cfg->oracle);
    EXPECT_EQ(parts.numPartitions, 1);
}

TEST(Partitions, PragmaKeepsStreamsApart)
{
    Built b = analyze("void f(int* x, int* y, int n) {\n"
                      "#pragma independent x y\n"
                      " int i; for (i = 0; i < n; i++) y[i] = x[i]; }");
    PartitionResult parts =
        computePartitions(*b.cfg->find("f"), b.cfg->oracle);
    EXPECT_EQ(parts.numPartitions, 2);
}

} // namespace
