/**
 * @file
 * Golden determinism of the dataflow simulator over the benchsuite
 * kernels: two fresh simulators must report identical cycle counts,
 * return values and firing totals at every optimization level, and
 * the return value must match the golden interpreter.
 *
 * The simulator's event queue is a calendar wheel plus a ready
 * worklist plus an overflow heap (see docs/SIMULATOR.md); this suite
 * exists to catch any ordering divergence between those paths, which
 * would silently change reported cycle counts (the quantity every
 * figure in the paper's evaluation is built from).
 */
#include <gtest/gtest.h>

#include "benchsuite/kernels.h"
#include "test_util.h"

namespace cash {
namespace {

struct RunSummary
{
    uint32_t returnValue = 0;
    uint64_t cycles = 0;
    int64_t firings = 0;
    int64_t events = 0;
};

RunSummary
summarize(const SimResult& r)
{
    return {r.returnValue, r.cycles, r.stats.get("sim.firings"),
            r.stats.get("sim.events")};
}

class SimDeterminism : public testing::TestWithParam<std::string>
{
};

TEST_P(SimDeterminism, GoldenCyclesAcrossOptLevels)
{
    const Kernel& k = kernelByName(GetParam());
    const uint32_t expect =
        testutil::interpret(k.source, k.entry, k.args);

    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        SCOPED_TRACE(std::string("level ") + optLevelName(level));
        CompileResult r =
            compileSource(k.source, CompileOptions().opt(level));

        // Two simulators built from the same graphs must agree on
        // everything observable, run to run.
        DataflowSimulator simA(r.graphPtrs(), *r.layout,
                               MemConfig::perfectMemory());
        DataflowSimulator simB(r.graphPtrs(), *r.layout,
                               MemConfig::perfectMemory());
        SimResult resA = simA.run(k.entry, k.args);
        SimResult resB = simB.run(k.entry, k.args);
        RunSummary a = summarize(resA);
        RunSummary b = summarize(resB);

        EXPECT_EQ(a.returnValue, expect);
        EXPECT_EQ(a.returnValue, b.returnValue);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.firings, b.firings);
        EXPECT_EQ(a.events, b.events);

        // A re-run on the same simulator (memory reset) replays the
        // exact same schedule.
        simA.reset();
        RunSummary c = summarize(simA.run(k.entry, k.args));
        EXPECT_EQ(a.cycles, c.cycles);
        EXPECT_EQ(a.returnValue, c.returnValue);
        EXPECT_EQ(a.firings, c.firings);

        // Queue counters are wired into the stat set, and every
        // delivery is accounted to exactly one of the two paths.
        // Deliveries can exceed processed events: anything still
        // queued when the root returns is never dequeued.
        EXPECT_TRUE(resA.stats.has("sim.queue.bucket_ops"));
        EXPECT_TRUE(resA.stats.has("sim.queue.heap_ops"));
        EXPECT_TRUE(resA.stats.has("sim.act.recycled"));
        EXPECT_GE(resA.stats.get("sim.queue.bucket_ops") +
                      resA.stats.get("sim.queue.heap_ops"),
                  a.events);
        EXPECT_GE(resA.stats.get("sim.act.spawned"), 1);
        EXPECT_GE(resA.stats.get("sim.act.peakLive"), 1);
    }

    // Realistic memory adds LSQ/cache/TLB timing; determinism must
    // hold there too (same hierarchy state evolution every run).
    {
        SCOPED_TRACE("realistic memory");
        CompileResult r = compileSource(
            k.source, CompileOptions().opt(OptLevel::Full));
        DataflowSimulator simA(r.graphPtrs(), *r.layout,
                               MemConfig::realistic(2));
        DataflowSimulator simB(r.graphPtrs(), *r.layout,
                               MemConfig::realistic(2));
        RunSummary a = summarize(simA.run(k.entry, k.args));
        RunSummary b = summarize(simB.run(k.entry, k.args));
        EXPECT_EQ(a.returnValue, expect);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.firings, b.firings);
        EXPECT_EQ(a.events, b.events);
    }
}

std::vector<std::string>
kernelNames()
{
    std::vector<std::string> names;
    for (const Kernel& k : kernelSuite())
        names.push_back(k.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(Benchsuite, SimDeterminism,
                         testing::ValuesIn(kernelNames()),
                         [](const auto& info) { return info.param; });

} // namespace
} // namespace cash
