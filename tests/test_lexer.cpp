#include <gtest/gtest.h>

#include "frontend/lexer.h"

using namespace cash;

namespace {

std::vector<Token>
lex(const std::string& s)
{
    Lexer lexer(s);
    return lexer.lexAll();
}

TEST(Lexer, EmptyInputYieldsEof)
{
    std::vector<Token> toks = lex("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_TRUE(toks[0].is(Tok::EndOfFile));
}

TEST(Lexer, Identifiers)
{
    std::vector<Token> toks = lex("foo _bar baz123");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "foo");
    EXPECT_EQ(toks[1].text, "_bar");
    EXPECT_EQ(toks[2].text, "baz123");
}

TEST(Lexer, Keywords)
{
    std::vector<Token> toks = lex("int unsigned char if else while for "
                                  "return break continue const extern");
    EXPECT_TRUE(toks[0].is(Tok::KwInt));
    EXPECT_TRUE(toks[1].is(Tok::KwUnsigned));
    EXPECT_TRUE(toks[2].is(Tok::KwChar));
    EXPECT_TRUE(toks[3].is(Tok::KwIf));
    EXPECT_TRUE(toks[4].is(Tok::KwElse));
    EXPECT_TRUE(toks[5].is(Tok::KwWhile));
    EXPECT_TRUE(toks[6].is(Tok::KwFor));
    EXPECT_TRUE(toks[7].is(Tok::KwReturn));
    EXPECT_TRUE(toks[8].is(Tok::KwBreak));
    EXPECT_TRUE(toks[9].is(Tok::KwContinue));
    EXPECT_TRUE(toks[10].is(Tok::KwConst));
    EXPECT_TRUE(toks[11].is(Tok::KwExtern));
}

TEST(Lexer, DecimalLiterals)
{
    std::vector<Token> toks = lex("0 42 1234567");
    EXPECT_EQ(toks[0].intValue, 0);
    EXPECT_EQ(toks[1].intValue, 42);
    EXPECT_EQ(toks[2].intValue, 1234567);
}

TEST(Lexer, HexLiterals)
{
    std::vector<Token> toks = lex("0x0 0xff 0xDEAD 0xedb88320");
    EXPECT_EQ(toks[0].intValue, 0);
    EXPECT_EQ(toks[1].intValue, 0xff);
    EXPECT_EQ(toks[2].intValue, 0xDEAD);
    EXPECT_EQ(toks[3].intValue, 0xedb88320LL);
}

TEST(Lexer, UnsignedSuffix)
{
    std::vector<Token> toks = lex("3u 4U 5ul");
    EXPECT_TRUE(toks[0].isUnsigned);
    EXPECT_TRUE(toks[1].isUnsigned);
    EXPECT_TRUE(toks[2].isUnsigned);
}

TEST(Lexer, CharLiterals)
{
    std::vector<Token> toks = lex("'a' '\\n' '\\0' '\\\\'");
    EXPECT_EQ(toks[0].intValue, 'a');
    EXPECT_EQ(toks[1].intValue, '\n');
    EXPECT_EQ(toks[2].intValue, 0);
    EXPECT_EQ(toks[3].intValue, '\\');
}

TEST(Lexer, StringLiterals)
{
    std::vector<Token> toks = lex("\"hello\\n\"");
    ASSERT_TRUE(toks[0].is(Tok::StringLiteral));
    EXPECT_EQ(toks[0].text, "hello\n");
}

TEST(Lexer, CompoundOperators)
{
    std::vector<Token> toks =
        lex("<<= >>= << >> <= >= == != && || += -= *= /= %= &= |= ^= "
            "++ --");
    EXPECT_TRUE(toks[0].is(Tok::ShlAssign));
    EXPECT_TRUE(toks[1].is(Tok::ShrAssign));
    EXPECT_TRUE(toks[2].is(Tok::Shl));
    EXPECT_TRUE(toks[3].is(Tok::Shr));
    EXPECT_TRUE(toks[4].is(Tok::Le));
    EXPECT_TRUE(toks[5].is(Tok::Ge));
    EXPECT_TRUE(toks[6].is(Tok::EqEq));
    EXPECT_TRUE(toks[7].is(Tok::NotEq));
    EXPECT_TRUE(toks[8].is(Tok::AmpAmp));
    EXPECT_TRUE(toks[9].is(Tok::PipePipe));
    EXPECT_TRUE(toks[10].is(Tok::PlusAssign));
    EXPECT_TRUE(toks[17].is(Tok::CaretAssign));
    EXPECT_TRUE(toks[18].is(Tok::PlusPlus));
    EXPECT_TRUE(toks[19].is(Tok::MinusMinus));
}

TEST(Lexer, CommentsAreSkipped)
{
    std::vector<Token> toks =
        lex("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, PragmaBecomesToken)
{
    std::vector<Token> toks = lex("#pragma independent p q\nint x;");
    ASSERT_TRUE(toks[0].is(Tok::Pragma));
    EXPECT_EQ(toks[0].text, "pragma independent p q");
    EXPECT_TRUE(toks[1].is(Tok::KwInt));
}

TEST(Lexer, SourceLocationsTrackLines)
{
    std::vector<Token> toks = lex("a\n  b\nc");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.column, 3);
    EXPECT_EQ(toks[2].loc.line, 3);
}

TEST(Lexer, UnterminatedBlockCommentFails)
{
    EXPECT_THROW(lex("/* never closed"), FatalError);
}

TEST(Lexer, UnknownCharacterFails)
{
    EXPECT_THROW(lex("int @x;"), FatalError);
}

} // namespace
