/**
 * @file
 * Memory redundancy optimizations (§4-§5): token removal, immutable
 * loads, memory merging (PRE), store forwarding, dead stores and
 * loop-invariant load motion.
 */
#include <gtest/gtest.h>

#include "test_util.h"

using namespace cash;

namespace {

struct Ops
{
    int loads = 0;
    int stores = 0;
};

Ops
opsOf(const CompileResult& r, const std::string& fn)
{
    Ops o;
    r.graph(fn)->forEach([&](Node* n) {
        if (n->kind == NodeKind::Load)
            o.loads++;
        if (n->kind == NodeKind::Store)
            o.stores++;
    });
    return o;
}

CompileResult
full(const std::string& src)
{
    return compileSource(src, CompileOptions().opt(OptLevel::Full));
}

TEST(TokenRemoval, DisjointConstantIndices)
{
    // a[0] and a[1] never conflict: the store must not wait on the
    // load's token.
    CompileResult r = full("int a[4];"
                           "int f(void) { int t = a[0]; a[1] = 5;"
                           " return t; }");
    EXPECT_GT(r.stats.get("opt.token_removal.removed") +
                  r.stats.get("opt.transitive_reduction.dropped"),
              0);
}

TEST(TokenRemoval, CoarseGraphRecoversParallelism)
{
    // Even with points-to disabled at construction, §4.3 heuristics
    // recover the independence of the two arrays.
    CompileOptions co =
        CompileOptions().opt(OptLevel::Full).pointsTo(false);
    CompileResult r = compileSource(
        "int a[8]; int c[8];"
        "void f(int i) { a[i] = 1; c[i] = 2; }",
        co);
    SUCCEED();  // verified by the pipeline's internal checker
}

TEST(ImmutableLoads, ConstTableDetached)
{
    const char* src = "const int k[4] = {1, 2, 3, 4};"
                      "int f(int i) { return k[i & 3]; }";
    CompileResult r = full(src);
    EXPECT_GE(r.stats.get("opt.immutable.detached") +
                  r.stats.get("opt.immutable.folded"),
              1);
    testutil::crossCheck(src, "f", {2});
}

TEST(ImmutableLoads, ConstantAddressFoldsToValue)
{
    const char* src = "const int k[4] = {10, 20, 30, 40};"
                      "int f(void) { return k[2]; }";
    CompileResult r = full(src);
    EXPECT_EQ(opsOf(r, "f").loads, 0);
    EXPECT_EQ(testutil::simulate(src, "f").returnValue, 30u);
}

TEST(MemoryMerge, BranchLoadsHoisted)
{
    // The same load in both arms merges into one access (PRE/hoist).
    const char* src =
        "int a[8];"
        "int f(int c, int i) { int r;"
        " if (c) r = a[i] * 2; else r = a[i] * 3;"
        " return r; }";
    CompileResult r = full(src);
    EXPECT_EQ(opsOf(r, "f").loads, 1);
    EXPECT_EQ(testutil::crossCheck(src, "f", {1, 0}), 0u);
    testutil::crossCheck(src, "f", {0, 3});
}

TEST(MemoryMerge, BranchStoresMerged)
{
    const char* src =
        "int g;"
        "void f(int c, int x) { if (c) g = x; else g = x + 1; }"
        "int run(int c, int x) { f(c, x); return g; }";
    CompileResult r = full(src);
    EXPECT_EQ(opsOf(r, "f").stores, 1);
    EXPECT_EQ(testutil::crossCheck(src, "run", {1, 5}), 5u);
    EXPECT_EQ(testutil::crossCheck(src, "run", {0, 5}), 6u);
}

TEST(StoreForwarding, LoadAfterStoreBypassed)
{
    // The reload of g must be satisfied by the stored value: one store
    // remains and no load.
    const char* src = "int g;"
                      "int f(int x) { g = x * 3; return g; }";
    CompileResult r = full(src);
    Ops o = opsOf(r, "f");
    EXPECT_EQ(o.loads, 0);
    EXPECT_EQ(o.stores, 1);
    EXPECT_EQ(testutil::crossCheck(src, "f", {7}), 21u);
}

TEST(StoreForwarding, ConditionalStoreKeepsResidualLoad)
{
    // Store doesn't dominate the load: mux of stored value and the
    // (now conditional) load.
    const char* src =
        "int g;"
        "int f(int c, int x) { if (c) g = x; return g; }";
    CompileResult r = full(src);
    EXPECT_GE(r.stats.get("opt.store_forwarding.bypassed") +
                  r.stats.get("opt.store_forwarding.removed"),
              1);
    testutil::crossCheck(src, "f", {1, 42});
    testutil::crossCheck(src, "f", {0, 42});
}

TEST(DeadStore, OverwrittenStoreRemoved)
{
    const char* src = "int g;"
                      "int f(int x) { g = x; g = x + 1; return g; }";
    CompileResult r = full(src);
    EXPECT_EQ(opsOf(r, "f").stores, 1);
    EXPECT_EQ(testutil::crossCheck(src, "f", {5}), 6u);
}

TEST(DeadStore, InterveningLoadBlocksRemoval)
{
    const char* src =
        "int g;"
        "int f(int x) { g = x; int t = g; g = x + 1;"
        " return t + g; }";
    CompileResult r = full(src);
    // The first store's value is observed: forwarding kills the load,
    // after which the store may legitimately die — but the observed
    // VALUE must survive.
    EXPECT_EQ(testutil::crossCheck(src, "f", {10}), 21u);
}

TEST(DeadStore, Section2FullPipeline)
{
    // §2's composition: forwarding then post-dominated store removal.
    const char* src = R"(
unsigned a[8];
unsigned s1[1];
void f(unsigned* p, unsigned* arr, int i)
{
    #pragma independent p arr
    if (p) arr[i] += *p;
    else arr[i] = 1;
    arr[i] <<= arr[i + 1];
}
int run(int useNull)
{
    a[5] = 2u; a[6] = 3u; s1[0] = 4u;
    if (useNull) f((unsigned*)0, a, 5);
    else f(s1, a, 5);
    return (int)a[5];
}
)";
    CompileResult r = full(src);
    Ops o = opsOf(r, "f");
    EXPECT_EQ(o.stores, 1) << "both intermediate stores must die";
    EXPECT_EQ(o.loads, 3) << "the redundant a[i] reload must die";
    EXPECT_EQ(testutil::crossCheck(src, "run", {0}), 48u);
    EXPECT_EQ(testutil::crossCheck(src, "run", {1}), 8u);
}

TEST(LoopInvariant, LoadHoistedOutOfLoop)
{
    const char* src =
        "int scale[1]; int a[64];"
        "int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) s += a[i] * scale[0];"
        " return s; }";
    CompileResult r = full(src);
    EXPECT_GE(r.stats.get("opt.loop_invariant.hoisted"), 1);
    // The hoisted load executes once, not n times.
    SimResult out = testutil::simulate(src, "f", {32}, OptLevel::Full);
    SimResult unopt =
        testutil::simulate(src, "f", {32}, OptLevel::None);
    EXPECT_LT(out.stats.get("sim.dynLoads"),
              unopt.stats.get("sim.dynLoads"));
    EXPECT_EQ(out.returnValue, unopt.returnValue);
}

TEST(LoopInvariant, WriteInLoopBlocksHoisting)
{
    // scale[0] is written inside the loop: hoisting would be wrong.
    const char* src =
        "int scale[1]; int a[64];"
        "int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) {"
        "   s += a[i] * scale[0];"
        "   if (i == 3) scale[0] = 2;"
        " }"
        " return s; }";
    testutil::crossCheck(src, "f", {8});
}

TEST(Opts, DynamicLoadReductionShowsUp)
{
    // Figure 18's dynamic effect: optimized table-lookup code executes
    // fewer memory operations (a slice of the adpcm pattern).
    const char* src =
        "const int tbl[4] = {1, 2, 4, 8};"
        "int data[64];"
        "int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) {"
        "   int v = data[i];"
        "   if (v & 1) s += tbl[v & 3];"
        "   else s += tbl[(v >> 1) & 3];"
        " }"
        " return s; }";

    SimResult none =
        testutil::simulate(src, "f", {32}, OptLevel::None);
    SimResult fullr =
        testutil::simulate(src, "f", {32}, OptLevel::Full);
    EXPECT_EQ(none.returnValue, fullr.returnValue);
    EXPECT_LE(fullr.stats.get("sim.dynLoads"),
              none.stats.get("sim.dynLoads"));
}

} // namespace
