/**
 * @file
 * Property-based differential testing: randomly generated structured
 * Mini-C programs are executed by the golden interpreter and by the
 * spatial simulator at every optimization level; results and final
 * memory images must agree.
 *
 * The generator emits only well-defined programs: array indices are
 * masked into range, loops are bounded, and division is guarded.
 */
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "test_util.h"

using namespace cash;

namespace {

class ProgramGen
{
  public:
    explicit ProgramGen(uint32_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        std::ostringstream os;
        os << "int A[16];\nint B[16];\nint g1;\nint g2;\n";
        os << "int f(int p0, int p1) {\n";
        vars_ = {"p0", "p1"};
        int nv = 2 + pick(3);
        for (int i = 0; i < nv; i++) {
            std::string v = "v" + std::to_string(i);
            os << "  int " << v << " = " << expr(2) << ";\n";
            vars_.push_back(v);
        }
        mutableCount_ = vars_.size();  // loop iterators stay read-only
        int ns = 3 + pick(5);
        for (int i = 0; i < ns; i++)
            os << stmt(2);
        os << "  return " << expr(2) << " + g1 + g2 + A["
           << idx("p0") << "] + B[" << idx("p1") << "];\n";
        os << "}\n";
        return os.str();
    }

  private:
    int pick(int n) { return static_cast<int>(rng_() % n); }

    std::string
    var()
    {
        return vars_[static_cast<size_t>(pick(
            static_cast<int>(vars_.size())))];
    }

    std::string
    idx(const std::string& e)
    {
        return "(" + e + ") & 15";
    }

    std::string
    expr(int depth)
    {
        if (depth <= 0 || pick(3) == 0) {
            switch (pick(4)) {
              case 0: return std::to_string(pick(100) - 50);
              case 1: return var();
              case 2: return "A[" + idx(var()) + "]";
              default: return "B[" + idx(var()) + "]";
            }
        }
        static const char* ops[] = {"+", "-", "*",  "&", "|",
                                    "^", "<", "==", ">>"};
        std::string op = ops[pick(9)];
        std::string lhs = expr(depth - 1);
        std::string rhs = expr(depth - 1);
        if (op == ">>")
            rhs = "(" + rhs + " & 7)";
        return "(" + lhs + " " + op + " " + rhs + ")";
    }

    std::string
    lhs()
    {
        switch (pick(4)) {
          case 0: return "g1";
          case 1: return "g2";
          case 2: return "A[" + idx(var()) + "]";
          default: return "B[" + idx(var()) + "]";
        }
    }

    std::string
    stmt(int depth)
    {
        std::ostringstream os;
        switch (pick(depth > 0 ? 5 : 2)) {
          case 0:
            os << "  " << lhs() << " = " << expr(2) << ";\n";
            break;
          case 1:
            os << "  "
               << vars_[static_cast<size_t>(
                      pick(static_cast<int>(mutableCount_)))]
               << " = " << expr(2) << ";\n";
            break;
          case 2:
            os << "  if (" << expr(1) << ") {\n"
               << stmt(depth - 1) << "  } else {\n"
               << stmt(depth - 1) << "  }\n";
            break;
          case 3: {
            // Bounded counted loop over a fresh iterator.
            std::string it = "i" + std::to_string(loopId_++);
            os << "  { int " << it << ";\n"
               << "  for (" << it << " = 0; " << it << " < "
               << (2 + pick(14)) << "; " << it << "++) {\n";
            vars_.push_back(it);
            os << stmt(depth - 1);
            vars_.pop_back();
            os << "  } }\n";
            break;
          }
          default:
            os << "  " << lhs() << " += " << expr(1) << ";\n";
            break;
        }
        return os.str();
    }

    std::mt19937 rng_;
    std::vector<std::string> vars_;
    size_t mutableCount_ = 0;
    int loopId_ = 0;
};

class DifferentialTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DifferentialTest, SimulatorMatchesInterpreterEverywhere)
{
    ProgramGen gen(GetParam());
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    std::vector<uint32_t> args = {GetParam() % 13,
                                  (GetParam() / 7) % 11};

    // Golden run.
    Program prog = parseProgram(src);
    analyzeProgram(prog);
    MemoryLayout layout;
    layout.build(prog);
    Interpreter interp(prog, layout);
    InterpResult want = interp.call("f", args);

    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        CompileResult r =
            compileSource(src, CompileOptions().opt(level));
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        SimResult got = sim.run("f", args);
        ASSERT_EQ(got.returnValue, want.returnValue)
            << "level " << optLevelName(level);

        // The whole final global segment must match the interpreter's.
        for (const MemObject& obj : r.layout->objects()) {
            if (!obj.isGlobal)
                continue;
            for (uint32_t a = obj.address;
                 a + 4 <= obj.address + obj.size; a += 4) {
                ASSERT_EQ(sim.memory().loadWord(a),
                          interp.loadWord(a))
                    << "level " << optLevelName(level) << " object "
                    << obj.name << " addr " << a;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DifferentialTest,
                         ::testing::Range(1u, 41u));

TEST(Differential, RecursionHeavyActivationRecycling)
{
    // Deep mutual/tree recursion churns through thousands of
    // activations while only a handful are live at once, exercising
    // the simulator's activation free list.  Run twice per level to
    // catch recycle-order nondeterminism.
    const std::string src = R"(
        int fib(int n) {
            if (n < 2)
                return n;
            return fib(n - 1) + fib(n - 2);
        }
        int ack(int m, int n) {
            if (m == 0)
                return n + 1;
            if (n == 0)
                return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int run(int n) { return fib(n) + ack(2, n % 4); }
    )";
    const std::vector<uint32_t> args = {12};
    uint32_t want = testutil::interpret(src, "run", args);

    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        CompileResult r =
            compileSource(src, CompileOptions().opt(level));
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        SimResult first = sim.run("run", args);
        ASSERT_EQ(first.returnValue, want)
            << "level " << optLevelName(level);
        // Recursion depth stays bounded, so most activations must be
        // served from the free list rather than freshly allocated.
        EXPECT_GT(first.stats.get("sim.act.recycled"), 0)
            << "level " << optLevelName(level);
        EXPECT_LT(first.stats.get("sim.act.allocated"),
                  first.stats.get("sim.act.spawned"))
            << "level " << optLevelName(level);

        sim.reset();
        SimResult second = sim.run("run", args);
        EXPECT_EQ(second.returnValue, want);
        EXPECT_EQ(second.cycles, first.cycles)
            << "level " << optLevelName(level);
    }
}

TEST(Differential, RealisticMemoryToo)
{
    // A smaller sweep under the realistic hierarchy: timing-dependent
    // scheduling must never change results.
    for (uint32_t seed = 100; seed < 110; seed++) {
        ProgramGen gen(seed);
        std::string src = gen.generate();
        SCOPED_TRACE(src);
        uint32_t want = testutil::interpret(src, "f", {3, 4});
        SimResult got =
            testutil::simulate(src, "f", {3, 4}, OptLevel::Full,
                               MemConfig::realistic(1));
        ASSERT_EQ(got.returnValue, want);
    }
}

} // namespace
