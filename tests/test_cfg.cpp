/**
 * @file
 * AST → three-address CFG lowering: block structure, terminators,
 * memory instructions and address computation.
 */
#include <gtest/gtest.h>

#include "cfg/lower.h"
#include "test_util.h"

using namespace cash;

namespace {

struct Lowered
{
    Program prog;
    MemoryLayout layout;
    std::unique_ptr<CfgProgram> cfg;
};

Lowered
lower(const std::string& src)
{
    Lowered l{parseProgram(src), {}, nullptr};
    analyzeProgram(l.prog);
    l.layout.build(l.prog);
    l.cfg = lowerProgram(l.prog, l.layout);
    return l;
}

int
countInstr(const CfgFunction& fn, InstrKind kind)
{
    int n = 0;
    for (const auto& b : fn.blocks)
        for (const Instr& i : b->instrs)
            if (i.kind == kind)
                n++;
    return n;
}

TEST(CfgLower, StraightLineSingleBlock)
{
    Lowered l = lower("int f(int a, int b) { return a * b + 1; }");
    CfgFunction* fn = l.cfg->find("f");
    ASSERT_NE(fn, nullptr);
    int real = 0;
    for (const auto& b : fn->blocks)
        if (!b->instrs.empty() ||
            b->term.kind != Terminator::Kind::None)
            real++;
    EXPECT_EQ(real, 1);
    EXPECT_EQ(fn->block(fn->entry)->term.kind,
              Terminator::Kind::Return);
}

TEST(CfgLower, IfElseDiamond)
{
    Lowered l = lower("int f(int x) { int r;"
                      " if (x) r = 1; else r = 2; return r; }");
    CfgFunction* fn = l.cfg->find("f");
    EXPECT_EQ(fn->block(fn->entry)->term.kind,
              Terminator::Kind::CondBranch);
}

TEST(CfgLower, WhileLoopHasBackEdge)
{
    Lowered l = lower("int f(int n) { int i = 0;"
                      " while (i < n) i++; return i; }");
    CfgFunction* fn = l.cfg->find("f");
    bool backEdge = false;
    for (const auto& b : fn->blocks)
        for (int s : b->succs)
            if (s <= b->id)
                backEdge = true;
    EXPECT_TRUE(backEdge);
}

TEST(CfgLower, GlobalLoadStore)
{
    Lowered l = lower("int g; void f(int v) { g = v + g; }");
    CfgFunction* fn = l.cfg->find("f");
    EXPECT_EQ(countInstr(*fn, InstrKind::Load), 1);
    EXPECT_EQ(countInstr(*fn, InstrKind::Store), 1);
}

TEST(CfgLower, RegisterLocalsAvoidMemory)
{
    Lowered l = lower("int f(void) { int a = 1; int b = a + 2;"
                      " return a + b; }");
    CfgFunction* fn = l.cfg->find("f");
    EXPECT_EQ(countInstr(*fn, InstrKind::Load), 0);
    EXPECT_EQ(countInstr(*fn, InstrKind::Store), 0);
}

TEST(CfgLower, CompoundAssignSharesAddress)
{
    // a[i] += 1 must compute the address once: the load and store use
    // the same address register (store-forwarding relies on this).
    Lowered l = lower("int a[8]; void f(int i) { a[i] += 1; }");
    CfgFunction* fn = l.cfg->find("f");
    Operand loadAddr, storeAddr;
    for (const auto& b : fn->blocks) {
        for (const Instr& ins : b->instrs) {
            if (ins.kind == InstrKind::Load)
                loadAddr = ins.addr;
            if (ins.kind == InstrKind::Store)
                storeAddr = ins.addr;
        }
    }
    ASSERT_TRUE(loadAddr.isReg());
    ASSERT_TRUE(storeAddr.isReg());
    EXPECT_EQ(loadAddr.reg, storeAddr.reg);
}

TEST(CfgLower, PointerArithScaledByElementSize)
{
    Lowered l = lower("int f(int* p, int i) { return *(p + i); }");
    CfgFunction* fn = l.cfg->find("f");
    // Expect a multiply by 4 somewhere in the address computation.
    bool mulBy4 = false;
    for (const auto& b : fn->blocks)
        for (const Instr& ins : b->instrs)
            if (ins.kind == InstrKind::Bin && ins.op == Op::Mul &&
                ins.b.isConst() && ins.b.cval == 4)
                mulBy4 = true;
    EXPECT_TRUE(mulBy4);
}

TEST(CfgLower, CharAccessesAreByteSized)
{
    Lowered l = lower("char c[4]; int f(int i) { c[i] = (char)i;"
                      " return c[i]; }");
    CfgFunction* fn = l.cfg->find("f");
    for (const auto& b : fn->blocks) {
        for (const Instr& ins : b->instrs) {
            if (ins.kind == InstrKind::Load)
                EXPECT_EQ(ins.size, 1);
            if (ins.kind == InstrKind::Store)
                EXPECT_EQ(ins.size, 1);
        }
    }
}

TEST(CfgLower, GlobalAddressesAreConstants)
{
    Lowered l = lower("int g; int f(void) { return g; }");
    CfgFunction* fn = l.cfg->find("f");
    for (const auto& b : fn->blocks)
        for (const Instr& ins : b->instrs)
            if (ins.kind == InstrKind::Load)
                EXPECT_TRUE(ins.addr.isConst());
}

TEST(CfgLower, FrameLocalsUseFrameBase)
{
    Lowered l = lower("int f(void) { int t[4]; t[1] = 5;"
                      " return t[1]; }");
    CfgFunction* fn = l.cfg->find("f");
    EXPECT_GE(fn->frameBaseReg, 0);
    EXPECT_FALSE(fn->addrSeeds.empty());
}

TEST(CfgLower, ShortCircuitCreatesBranches)
{
    Lowered l = lower("int g(void);"
                      "int g(void) { return 1; }"
                      "int f(int a) { return a && g(); }");
    CfgFunction* fn = l.cfg->find("f");
    int branches = 0;
    for (const auto& b : fn->blocks)
        if (b->term.kind == Terminator::Kind::CondBranch)
            branches++;
    EXPECT_GE(branches, 1);
}

TEST(CfgLower, MemIdsAreDense)
{
    Lowered l = lower("int a[4]; int f(int i)"
                      "{ a[i] = a[i + 1] + a[i + 2]; return a[0]; }");
    CfgFunction* fn = l.cfg->find("f");
    std::vector<bool> seen(fn->numMemOps, false);
    for (const auto& b : fn->blocks) {
        for (const Instr& ins : b->instrs) {
            if (ins.memId >= 0) {
                ASSERT_LT(ins.memId, fn->numMemOps);
                EXPECT_FALSE(seen[ins.memId]);
                seen[ins.memId] = true;
            }
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(CfgLower, UnreachableCodeIsPruned)
{
    Lowered l = lower("int f(void) { return 1; return 2; }");
    CfgFunction* fn = l.cfg->find("f");
    int returns = 0;
    for (const auto& b : fn->blocks)
        if (b->term.kind == Terminator::Kind::Return)
            returns++;
    EXPECT_EQ(returns, 1);
}

TEST(CfgLower, EdgesAreConsistent)
{
    Lowered l = lower("int f(int n) { int s = 0; int i;"
                      " for (i = 0; i < n; i++)"
                      "   if (i & 1) s += i; else s -= i;"
                      " return s; }");
    CfgFunction* fn = l.cfg->find("f");
    for (const auto& b : fn->blocks) {
        for (int s : b->succs) {
            const BasicBlock* succ = fn->block(s);
            EXPECT_NE(std::find(succ->preds.begin(), succ->preds.end(),
                                b->id),
                      succ->preds.end());
        }
    }
}

} // namespace
