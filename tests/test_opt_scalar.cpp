/**
 * @file
 * Scalar graph optimizations: constant folding, algebraic identities,
 * CSE, and structural dead-code elimination.
 */
#include <gtest/gtest.h>

#include "test_util.h"

using namespace cash;

namespace {

int
countKind(const Graph& g, NodeKind k)
{
    int n = 0;
    g.forEach([&](Node* node) {
        if (node->kind == k)
            n++;
    });
    return n;
}

int
countArith(const Graph& g)
{
    return countKind(g, NodeKind::Arith);
}

TEST(ScalarOpts, ConstantFolding)
{
    CompileResult r = compileSource(
        "int f(void) { return (3 + 4) * (10 - 2) / 2; }");
    const Graph* g = r.graph("f");
    EXPECT_EQ(countArith(*g), 0);
    EXPECT_EQ(testutil::simulate(
                  "int f(void) { return (3 + 4) * (10 - 2) / 2; }",
                  "f")
                  .returnValue,
              28u);
}

TEST(ScalarOpts, AlgebraicIdentities)
{
    const char* src = "int f(int x)"
                      "{ return (x + 0) * 1 + (x - x) + (x ^ 0); }";
    CompileResult r = compileSource(src);
    // x*1, x+0, x^0 all fold: remaining arithmetic is the single add
    // of x + x.
    EXPECT_LE(countArith(*r.graph("f")), 1);
    EXPECT_EQ(testutil::crossCheck(src, "f", {21}), 42u);
}

TEST(ScalarOpts, MulByZero)
{
    CompileResult r =
        compileSource("int f(int x) { return x * 0 + 5; }");
    EXPECT_EQ(countArith(*r.graph("f")), 0);
}

TEST(ScalarOpts, CseDeduplicatesWithinHyperblock)
{
    const char* src =
        "int f(int a, int b)"
        "{ return (a * b + 1) + (a * b + 1); }";
    CompileResult r = compileSource(src);
    const Graph* g = r.graph("f");
    // a*b and +1 computed once, plus the final add: 3 arith nodes.
    EXPECT_LE(countArith(*g), 3);
    testutil::crossCheck(src, "f", {6, 7});
}

TEST(ScalarOpts, CommutativeCse)
{
    const char* src = "int f(int a, int b) { return a * b + b * a; }";
    CompileResult r = compileSource(src);
    EXPECT_LE(countArith(*r.graph("f")), 2);
    testutil::crossCheck(src, "f", {3, 9});
}

TEST(ScalarOpts, TautologyFolding)
{
    // if/else arms joined by complementary predicates: the combined
    // predicate folds to true, enabling Figure 1's store removal.
    const char* src =
        "int g;"
        "int f(int x) { if (x) g = 1; else g = 2; g = 3; return g; }";
    CompileResult r = compileSource(src);
    int stores = 0;
    r.graph("f")->forEach([&](Node* n) {
        if (n->kind == NodeKind::Store)
            stores++;
    });
    EXPECT_EQ(stores, 1);  // both branch stores proven dead
    testutil::crossCheck(src, "f", {1});
    testutil::crossCheck(src, "f", {0});
}

TEST(DeadCode, UnusedComputationRemoved)
{
    const char* src = "int f(int a) { int unused = a * 17 + 3;"
                      " return a; }";
    CompileResult r = compileSource(src);
    EXPECT_EQ(countArith(*r.graph("f")), 0);
}

TEST(DeadCode, FalseBranchEliminated)
{
    const char* src = "int g;"
                      "int f(int a) { if (0) g = a; return a + 1; }";
    CompileResult r = compileSource(src);
    int stores = 0;
    r.graph("f")->forEach([&](Node* n) {
        if (n->kind == NodeKind::Store)
            stores++;
    });
    EXPECT_EQ(stores, 0);
}

TEST(DeadCode, ConstantConditionCollapses)
{
    const char* src = "int f(int a) { int r;"
                      " if (1) r = a * 2; else r = a * 3;"
                      " return r; }";
    EXPECT_EQ(testutil::crossCheck(src, "f", {5}), 10u);
    CompileResult r = compileSource(src);
    EXPECT_EQ(countKind(*r.graph("f"), NodeKind::Mux), 0);
}

TEST(DeadCode, UnusedLoadRemoved)
{
    const char* src = "int g;"
                      "int f(int a) { int x = g; return a; }";
    CompileResult r = compileSource(src);
    int loads = 0;
    r.graph("f")->forEach([&](Node* n) {
        if (n->kind == NodeKind::Load)
            loads++;
    });
    EXPECT_EQ(loads, 0);
}

TEST(DeadCode, IrSizeShrinks)
{
    const char* src =
        "int f(int a, int b) {"
        "  int t1 = a + b; int t2 = a + b; int t3 = t1 * t2;"
        "  int dead = t3 * 99;"
        "  if (0) return dead;"
        "  return t3;"
        "}";
    CompileResult r = compileSource(src);
    EXPECT_LT(r.stats.get("ir.nodes.final"),
              r.stats.get("ir.nodes.initial"));
}

TEST(ScalarOpts, PredicateNetworkSimplifies)
{
    // Nested ifs with the same condition: inner predicate And(c, c)
    // must simplify.
    const char* src =
        "int f(int c, int a)"
        "{ int r = 0; if (c) { if (c) r = a; } return r; }";
    testutil::crossCheck(src, "f", {1, 9});
    testutil::crossCheck(src, "f", {0, 9});
}

} // namespace
