/**
 * @file
 * Boolean predicate reasoning (§5): implication and disjointness over
 * And/Or/Not networks.
 */
#include <gtest/gtest.h>

#include "analysis/boolean.h"
#include "test_util.h"

using namespace cash;

namespace {

struct PredFixture : ::testing::Test
{
    Graph g;
    Node* x = nullptr;
    Node* y = nullptr;
    Node* z = nullptr;

    void
    SetUp() override
    {
        // Opaque predicate leaves (arith over params).
        Node* p0 = g.newNode(NodeKind::Param, VT::Word, 0);
        Node* p1 = g.newNode(NodeKind::Param, VT::Word, 0);
        Node* zero = g.newConst(0, VT::Word, 0);
        x = g.newArith(Op::Ne, {p0, 0}, {zero, 0}, 0, VT::Pred);
        y = g.newArith(Op::Ne, {p1, 0}, {zero, 0}, 0, VT::Pred);
        z = g.newArith(Op::LtS, {p0, 0}, {p1, 0}, 0, VT::Pred);
    }

    PortRef pr(Node* n) { return {n, 0}; }
    PortRef land(Node* a, Node* b)
    {
        return {g.newArith(Op::And, {a, 0}, {b, 0}, 0, VT::Pred), 0};
    }
    PortRef lor(Node* a, Node* b)
    {
        return {g.newArith(Op::Or, {a, 0}, {b, 0}, 0, VT::Pred), 0};
    }
    PortRef lnot(Node* a)
    {
        return {g.newArith1(Op::NotBool, {a, 0}, 0, VT::Pred), 0};
    }
};

TEST_F(PredFixture, Reflexive)
{
    EXPECT_TRUE(predImplies(pr(x), pr(x)));
    EXPECT_FALSE(predImplies(pr(x), pr(y)));
}

TEST_F(PredFixture, ConstRules)
{
    PortRef t{g.newConst(1, VT::Pred, 0), 0};
    PortRef f{g.newConst(0, VT::Pred, 0), 0};
    EXPECT_TRUE(predImplies(pr(x), t));
    EXPECT_TRUE(predImplies(f, pr(x)));
    EXPECT_FALSE(predImplies(t, pr(x)));
    EXPECT_TRUE(isTruePred(t));
    EXPECT_TRUE(isFalsePred(f));
}

TEST_F(PredFixture, ConjunctionWeakens)
{
    PortRef xy = land(x, y);
    EXPECT_TRUE(predImplies(xy, pr(x)));
    EXPECT_TRUE(predImplies(xy, pr(y)));
    EXPECT_FALSE(predImplies(pr(x), xy));
}

TEST_F(PredFixture, DisjunctionStrengthens)
{
    PortRef xy = lor(x, y);
    EXPECT_TRUE(predImplies(pr(x), xy));
    EXPECT_TRUE(predImplies(pr(y), xy));
    EXPECT_FALSE(predImplies(xy, pr(x)));
}

TEST_F(PredFixture, OrOfBothImplies)
{
    // (x∧z) ∨ (y∧z) ⇒ z
    PortRef lhs = lor(land(x, z).node, land(y, z).node);
    EXPECT_TRUE(predImplies(lhs, pr(z)));
}

TEST_F(PredFixture, NegationDisjointness)
{
    PortRef nx = lnot(x);
    EXPECT_TRUE(predDisjoint(pr(x), nx));
    EXPECT_TRUE(predDisjoint(nx, pr(x)));
    EXPECT_FALSE(predDisjoint(pr(x), pr(y)));
}

TEST_F(PredFixture, ConjunctsInheritDisjointness)
{
    // (x∧y) disjoint ¬x
    PortRef xy = land(x, y);
    EXPECT_TRUE(predDisjoint(xy, lnot(x)));
    EXPECT_TRUE(predDisjoint(lnot(y), xy));
}

TEST_F(PredFixture, ImpliesNegationViaDisjointness)
{
    // (y ∧ ¬x) ⇒ ¬x.
    PortRef lhs = land(y, lnot(x).node);
    EXPECT_TRUE(predImplies(lhs, lnot(x)));
    // x ⇒ ¬(¬x): q=¬r with r=¬x disjoint from x.
    EXPECT_TRUE(predImplies(pr(x), lnot(lnot(x).node)));
}

TEST_F(PredFixture, StoreDominanceShape)
{
    // §5.2: prior store pred (c∧x) implies later store pred (c):
    // post-dominance via the path predicate structure.
    PortRef prior = land(z, x);
    EXPECT_TRUE(predImplies(prior, pr(z)));
    // Paper's Figure 1: both branch preds imply constant-true.
    PortRef t{g.newConst(1, VT::Pred, 0), 0};
    EXPECT_TRUE(predImplies(land(z, x), t));
    EXPECT_TRUE(predImplies(land(z, lnot(x).node), t));
}

TEST_F(PredFixture, DepthBoundTerminates)
{
    // A deep chain of conjunctions must not blow up or crash.
    Node* cur = x;
    for (int i = 0; i < 40; i++)
        cur = g.newArith(Op::And, {cur, 0}, {y, 0}, 0, VT::Pred);
    (void)predImplies({cur, 0}, pr(y));
    SUCCEED();
}

} // namespace
