/**
 * @file
 * Determinism of parallel per-function compilation, and the
 * PassRegistry API.
 *
 * The contract under test (docs/API.md): compiling at any job count
 * yields byte-identical results — same stats (modulo wall-clock
 * timing counters), same IR shape, same DOT text, same simulated
 * cycles.  Workers merge their outputs in function-declaration order,
 * so scheduling must never leak into anything observable.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchsuite/kernels.h"
#include "driver/compiler.h"
#include "pegasus/dot.h"
#include "sim/dataflow_sim.h"
#include "support/thread_pool.h"

using namespace cash;

namespace {

/** Stats minus the wall-clock keys ("*.time_us", "time.*"). */
std::string
statsFingerprint(const StatSet& stats)
{
    std::string out;
    for (const auto& [k, v] : stats.all()) {
        if (k.rfind("time.", 0) == 0)
            continue;
        if (k.size() > 8 && k.compare(k.size() - 8, 8, ".time_us") == 0)
            continue;
        out += k + "=" + std::to_string(v) + "\n";
    }
    return out;
}

std::string
dotFingerprint(const CompileResult& r)
{
    std::string out;
    for (const auto& g : r.graphs)
        out += toDot(*g);
    return out;
}

/** A program with enough functions to oversubscribe 8 workers. */
std::string
manyFunctionSource(int functions)
{
    std::string src = "int data[256];\nint acc[256];\n";
    for (int f = 0; f < functions; f++) {
        std::string name = "work" + std::to_string(f);
        src += "int " + name +
               "(int n) {\n"
               "    int i; int s = " + std::to_string(f) + ";\n"
               "    for (i = 0; i < n; i++) {\n"
               "        data[i] = i * " + std::to_string(f + 1) + ";\n"
               "        acc[i] = acc[i] + data[i];\n"
               "        s = s + acc[i];\n"
               "    }\n"
               "    return s;\n"
               "}\n";
    }
    src += "int run(int n) {\n    int s = 0;\n";
    for (int f = 0; f < functions; f++)
        src += "    s = s + work" + std::to_string(f) + "(n);\n";
    src += "    return s;\n}\n";
    return src;
}

} // namespace

// ---------------------------------------------------------------------
// Parallel determinism
// ---------------------------------------------------------------------

TEST(ParallelCompile, BenchsuiteIdenticalAtJ1AndJ8)
{
    for (const Kernel& k : kernelSuite()) {
        CompileResult serial =
            compileSource(k.source,
                          CompileOptions().opt(OptLevel::Full).jobs(1));
        CompileResult parallel =
            compileSource(k.source,
                          CompileOptions().opt(OptLevel::Full).jobs(8));

        EXPECT_EQ(statsFingerprint(serial.stats),
                  statsFingerprint(parallel.stats))
            << k.name;

        ASSERT_EQ(serial.graphs.size(), parallel.graphs.size())
            << k.name;
        for (size_t i = 0; i < serial.graphs.size(); i++) {
            EXPECT_EQ(serial.graphs[i]->name, parallel.graphs[i]->name);
            EXPECT_TRUE(measureIr(*serial.graphs[i]) ==
                        measureIr(*parallel.graphs[i]))
                << k.name << "/" << serial.graphs[i]->name;
        }
        EXPECT_EQ(dotFingerprint(serial), dotFingerprint(parallel))
            << k.name;

        // Simulated timing must agree cycle for cycle.
        DataflowSimulator simS(serial.graphPtrs(), *serial.layout,
                               MemConfig::perfectMemory());
        DataflowSimulator simP(parallel.graphPtrs(), *parallel.layout,
                               MemConfig::perfectMemory());
        SimResult a = simS.run(k.entry, k.args);
        SimResult b = simP.run(k.entry, k.args);
        EXPECT_EQ(a.returnValue, b.returnValue) << k.name;
        EXPECT_EQ(a.cycles, b.cycles) << k.name;
    }
}

TEST(ParallelCompile, ManyFunctionsIdenticalAcrossJobCounts)
{
    const std::string src = manyFunctionSource(24);
    CompileResult base =
        compileSource(src, CompileOptions().opt(OptLevel::Full).jobs(1));
    const std::string baseStats = statsFingerprint(base.stats);
    const std::string baseDot = dotFingerprint(base);

    for (int jobs : {2, 3, 8, 16}) {
        CompileResult r = compileSource(
            src, CompileOptions().opt(OptLevel::Full).jobs(jobs));
        EXPECT_EQ(baseStats, statsFingerprint(r.stats)) << jobs;
        EXPECT_EQ(baseDot, dotFingerprint(r)) << jobs;
    }
}

TEST(ParallelCompile, MediumLevelIdenticalToo)
{
    const std::string src = manyFunctionSource(8);
    CompileResult a = compileSource(
        src, CompileOptions().opt(OptLevel::Medium).jobs(1));
    CompileResult b = compileSource(
        src, CompileOptions().opt(OptLevel::Medium).jobs(8));
    EXPECT_EQ(statsFingerprint(a.stats), statsFingerprint(b.stats));
    EXPECT_EQ(dotFingerprint(a), dotFingerprint(b));
}

TEST(ParallelCompile, TraceEventSequenceDeterministic)
{
    const std::string src = manyFunctionSource(12);
    auto eventSequence = [&](int jobs) {
        TraceRecorder rec;
        rec.enable();
        compileSource(src, CompileOptions()
                               .opt(OptLevel::Full)
                               .jobs(jobs)
                               .trace(&rec));
        // Timestamps are wall clock; the *sequence* (name, category,
        // track) must not depend on scheduling.
        std::string out;
        for (const TraceEvent& ev : rec.events())
            out += ev.name + "|" + ev.cat + "|" +
                   std::to_string(ev.tid) + "\n";
        return out;
    };
    EXPECT_EQ(eventSequence(1), eventSequence(8));
}

TEST(ParallelCompile, ParseErrorsPropagateFromAnyJobCount)
{
    EXPECT_THROW(compileSource("int f(int a) { return }",
                               CompileOptions().jobs(8)),
                 FatalError);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4);
    std::vector<int> hits(1000, 0);
    pool.parallelFor(hits.size(),
                     [&](size_t i, int) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); i++)
        ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workers(), 1);
    std::vector<size_t> order;
    pool.parallelFor(16, [&](size_t i, int worker) {
        EXPECT_EQ(worker, 0);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 0; i < order.size(); i++)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    for (int round = 0; round < 4; round++) {
        try {
            pool.parallelFor(64, [&](size_t i, int) {
                if (i % 2 == 1)
                    throw std::runtime_error("task " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "task 1");
        }
    }
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int batch = 0; batch < 50; batch++) {
        std::vector<int> hits(batch + 1, 0);
        pool.parallelFor(hits.size(),
                         [&](size_t i, int) { hits[i]++; });
        for (int h : hits)
            ASSERT_EQ(h, 1);
    }
}

// ---------------------------------------------------------------------
// PassRegistry
// ---------------------------------------------------------------------

TEST(PassRegistry, UnknownPassIsAnError)
{
    EXPECT_THROW(PassRegistry::global().create("no_such_pass"),
                 FatalError);
    EXPECT_THROW(PassRegistry::global().createPipeline(
                     {"dead_code", "no_such_pass"}),
                 FatalError);
    EXPECT_THROW(compileSource("int f(int a) { return a; }",
                               CompileOptions().passes({"bogus"})),
                 FatalError);
}

TEST(PassRegistry, BuiltinsRegisteredUnderTheirNames)
{
    PassRegistry& reg = PassRegistry::global();
    for (const char* name :
         {"scalar_opts", "dead_code", "transitive_reduction",
          "token_removal", "immutable_loads", "memory_merge",
          "store_forwarding", "dead_store", "loop_invariant",
          "readonly_split", "monotone_pipelining", "loop_decoupling"}) {
        ASSERT_TRUE(reg.has(name)) << name;
        EXPECT_STREQ(reg.create(name)->name(), name);
    }
}

TEST(PassRegistry, HyphenAndUnderscoreInterchangeable)
{
    PassRegistry& reg = PassRegistry::global();
    EXPECT_TRUE(reg.has("token-removal"));
    EXPECT_STREQ(reg.create("token-removal")->name(), "token_removal");
}

TEST(PassRegistry, StandardPipelineRoundTripsThroughNames)
{
    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        std::vector<std::string> names = standardPipelineNames(level);
        std::vector<std::unique_ptr<Pass>> passes =
            PassRegistry::global().createPipeline(names);
        ASSERT_EQ(passes.size(), names.size());
        for (size_t i = 0; i < passes.size(); i++)
            EXPECT_EQ(passes[i]->name(), names[i]);
    }
}

namespace {

/** A pass that only counts its own invocations. */
class CountingPass : public Pass
{
  public:
    const char* name() const override { return "test_counting"; }
    bool
    run(Graph&, OptContext& ctx) override
    {
        ctx.count("opt.test_counting.ran");
        return false;
    }
};

} // namespace

TEST(PassRegistry, CustomPassRunsInCustomPipeline)
{
    PassRegistry::global().registerPass(
        "test_counting", [] { return std::make_unique<CountingPass>(); });
    ASSERT_TRUE(PassRegistry::global().has("test_counting"));

    CompileResult r = compileSource(
        "int f(int a) { return a * 2; }",
        CompileOptions().passes(
            {"scalar_opts", "test_counting", "dead_code"}));
    EXPECT_GT(r.stats.get("opt.test_counting.ran"), 0);
    // The custom pipeline replaced the standard one entirely.
    EXPECT_FALSE(r.stats.has("opt.pass.token_removal.runs"));
}

TEST(PassRegistry, CustomPipelineDeterministicInParallel)
{
    const std::string src = manyFunctionSource(8);
    std::vector<std::string> spec = {"scalar_opts", "immutable_loads",
                                     "token-removal", "dead_code"};
    CompileResult a =
        compileSource(src, CompileOptions().passes(spec).jobs(1));
    CompileResult b =
        compileSource(src, CompileOptions().passes(spec).jobs(8));
    EXPECT_EQ(statsFingerprint(a.stats), statsFingerprint(b.stats));
    EXPECT_EQ(dotFingerprint(a), dotFingerprint(b));
}

// ---------------------------------------------------------------------
// CompileOptions builder
// ---------------------------------------------------------------------

TEST(CompileOptions, FluentBuilderSetsAllFields)
{
    TraceRecorder rec;
    CompileOptions co = CompileOptions()
                            .opt(OptLevel::Medium)
                            .jobs(3)
                            .trace(&rec)
                            .verification(false)
                            .pointsTo(false)
                            .passes({"dead_code"});
    EXPECT_EQ(co.level, OptLevel::Medium);
    EXPECT_EQ(co.numJobs, 3);
    EXPECT_EQ(co.tracer, &rec);
    EXPECT_FALSE(co.verify);
    EXPECT_FALSE(co.pointsToInConstruction);
    ASSERT_EQ(co.passNames.size(), 1u);
    EXPECT_EQ(co.passNames[0], "dead_code");
}

TEST(CompileOptions, AggregateInitStaysSourceCompatible)
{
    // Positional aggregate init of the leading (pre-builder) fields
    // must keep compiling: older embedders write exactly this.
    CompileOptions co{OptLevel::Medium, true, true};
    EXPECT_EQ(co.level, OptLevel::Medium);
    EXPECT_EQ(co.numJobs, 0);
    EXPECT_TRUE(co.passNames.empty());
    CompileResult r =
        compileSource("int f(int a) { return a + 1; }", co);
    EXPECT_EQ(r.graphs.size(), 1u);
}
