/**
 * @file
 * Graph verifier: structural invariants are enforced and violations
 * detected.
 */
#include <gtest/gtest.h>

#include "pegasus/reachability.h"
#include "pegasus/verifier.h"
#include "test_util.h"

using namespace cash;

namespace {

TEST(Verifier, AcceptsBuiltGraphs)
{
    CompileResult r = compileSource(
        "int a[4]; int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) s += a[i & 3];"
        " return s; }");
    for (const auto& g : r.graphs)
        EXPECT_TRUE(verifyGraph(*g).empty());
}

TEST(Verifier, DetectsMissingInputs)
{
    Graph g;
    g.name = "t";
    Node* ld = g.newNode(NodeKind::Load, VT::Word, 0);
    // Load with no inputs at all.
    std::vector<std::string> problems = verifyGraph(g);
    EXPECT_FALSE(problems.empty());
    (void)ld;
}

TEST(Verifier, DetectsTokenTypeMismatch)
{
    Graph g;
    g.name = "t";
    Node* c = g.newConst(1, VT::Pred, 0);
    Node* w = g.newConst(7, VT::Word, 0);
    Node* ld = g.newNode(NodeKind::Load, VT::Word, 0);
    g.addInput(ld, {c, 0});
    g.addInput(ld, {w, 0});  // token slot wired to a Word
    g.addInput(ld, {w, 0});
    std::vector<std::string> problems = verifyGraph(g);
    EXPECT_FALSE(problems.empty());
}

TEST(Verifier, DetectsOddMux)
{
    Graph g;
    g.name = "t";
    Node* p = g.newConst(1, VT::Pred, 0);
    Node* mux = g.newNode(NodeKind::Mux, VT::Word, 0);
    g.addInput(mux, {p, 0});  // odd arity
    EXPECT_FALSE(verifyGraph(g).empty());
}

TEST(Verifier, DetectsForwardCycle)
{
    Graph g;
    g.name = "t";
    Node* a = g.newArith1(Op::Neg, {g.newConst(1, VT::Word, 0), 0}, 0);
    Node* b = g.newArith1(Op::Neg, {a, 0}, 0);
    g.setInput(a, 0, {b, 0});  // a ← b ← a, no back-edge flags
    EXPECT_FALSE(verifyGraph(g).empty());
}

TEST(Verifier, BackEdgeFlagLegalizesLoops)
{
    Graph g;
    g.name = "t";
    Node* init = g.newConst(0, VT::Word, 0);
    Node* pred = g.newConst(1, VT::Pred, 0);
    Node* merge = g.newNode(NodeKind::Merge, VT::Word, 0);
    Node* eta = g.newNode(NodeKind::Eta, VT::Word, 0);
    g.addInput(merge, {init, 0});
    g.addInput(eta, {merge, 0});
    g.addInput(eta, {pred, 0});
    g.addInput(merge, {eta, 0}, /*backEdge=*/true);
    merge->deciderIndex = merge->numInputs();
    g.addInput(merge, {pred, 0}, /*backEdge=*/true);
    EXPECT_TRUE(verifyGraph(g).empty());
}

TEST(Verifier, BackEdgeMergeWithoutDeciderFlagged)
{
    Graph g;
    g.name = "t";
    Node* init = g.newConst(0, VT::Word, 0);
    Node* pred = g.newConst(1, VT::Pred, 0);
    Node* merge = g.newNode(NodeKind::Merge, VT::Word, 0);
    Node* eta = g.newNode(NodeKind::Eta, VT::Word, 0);
    g.addInput(merge, {init, 0});
    g.addInput(eta, {merge, 0});
    g.addInput(eta, {pred, 0});
    g.addInput(merge, {eta, 0}, /*backEdge=*/true);
    EXPECT_FALSE(verifyGraph(g).empty());
}

TEST(Reachability, ForwardOnly)
{
    Graph g;
    g.name = "t";
    Node* c = g.newConst(3, VT::Word, 0);
    Node* a = g.newArith1(Op::Neg, {c, 0}, 0);
    Node* b = g.newArith1(Op::BitNot, {a, 0}, 0);
    ReachabilityCache reach(g);
    EXPECT_TRUE(reach.reaches(c, b));
    EXPECT_TRUE(reach.reaches(a, b));
    EXPECT_FALSE(reach.reaches(b, a));
    EXPECT_TRUE(reach.reaches(b, b));
}

TEST(Reachability, StopsAtBackEdges)
{
    Graph g;
    g.name = "t";
    Node* init = g.newConst(0, VT::Word, 0);
    Node* pred = g.newConst(1, VT::Pred, 0);
    Node* merge = g.newNode(NodeKind::Merge, VT::Word, 0);
    Node* inc = g.newArith(
        Op::Add, {merge, 0}, {g.newConst(1, VT::Word, 0), 0}, 0);
    Node* eta = g.newNode(NodeKind::Eta, VT::Word, 0);
    g.addInput(merge, {init, 0});
    g.addInput(eta, {inc, 0});
    g.addInput(eta, {pred, 0});
    g.addInput(merge, {eta, 0}, /*backEdge=*/true);
    merge->deciderIndex = merge->numInputs();
    g.addInput(merge, {pred, 0}, /*backEdge=*/true);

    ReachabilityCache reach(g);
    EXPECT_TRUE(reach.reaches(merge, eta));
    // ...but not around the loop: the merge's eta input is flagged as
    // a back edge, so the cycle is invisible to forward reachability.
    EXPECT_FALSE(reach.reaches(eta, merge));
    EXPECT_FALSE(reach.reaches(eta, inc));
}

TEST(GraphApi, RemoveInputShiftsUses)
{
    Graph g;
    g.name = "t";
    Node* a = g.newConst(1, VT::Token, 0);
    Node* b = g.newConst(2, VT::Token, 0);
    Node* c = g.newConst(3, VT::Token, 0);
    Node* comb = g.newNode(NodeKind::Combine, VT::Token, 0);
    g.addInput(comb, {a, 0});
    g.addInput(comb, {b, 0});
    g.addInput(comb, {c, 0});
    g.removeInput(comb, 1);
    ASSERT_EQ(comb->numInputs(), 2);
    EXPECT_EQ(comb->input(0).node, a);
    EXPECT_EQ(comb->input(1).node, c);
    EXPECT_TRUE(verifyGraph(g).empty());
}

TEST(GraphApi, ReplaceAllUsesRewires)
{
    Graph g;
    g.name = "t";
    Node* a = g.newConst(1, VT::Word, 0);
    Node* b = g.newConst(2, VT::Word, 0);
    Node* u1 = g.newArith1(Op::Neg, {a, 0}, 0);
    Node* u2 = g.newArith(Op::Add, {a, 0}, {a, 0}, 0);
    g.replaceAllUses({a, 0}, {b, 0});
    EXPECT_EQ(u1->input(0).node, b);
    EXPECT_EQ(u2->input(0).node, b);
    EXPECT_EQ(u2->input(1).node, b);
    EXPECT_TRUE(a->uses().empty());
}

TEST(GraphApi, EraseDetachesInputs)
{
    Graph g;
    g.name = "t";
    Node* a = g.newConst(1, VT::Word, 0);
    Node* u = g.newArith1(Op::Neg, {a, 0}, 0);
    g.erase(u);
    EXPECT_TRUE(a->uses().empty());
    EXPECT_TRUE(u->dead);
    EXPECT_EQ(g.numLive(), 1);
}

} // namespace
