/**
 * @file
 * Pegasus construction (§3): node/edge structure of built graphs —
 * predication, muxes, merge/eta rings, token wiring, transitive
 * reduction at construction, control merges and mu-deciders.
 */
#include <gtest/gtest.h>

#include "opt/opt_util.h"
#include "pegasus/verifier.h"
#include "test_util.h"

using namespace cash;

namespace {

CompileResult
buildOnly(const std::string& src, OptLevel level = OptLevel::None)
{
    return compileSource(src, CompileOptions().opt(level));
}

int
count(const Graph& g, NodeKind k)
{
    int n = 0;
    g.forEach([&](Node* node) {
        if (node->kind == k)
            n++;
    });
    return n;
}

TEST(Builder, GraphsVerifyAfterConstruction)
{
    CompileResult r = buildOnly(
        "int a[8];"
        "int f(int n) { int s = 0; int i;"
        " for (i = 0; i < n; i++) { if (i & 1) a[i] = i; s += i; }"
        " return s + a[0]; }");
    for (const auto& g : r.graphs)
        EXPECT_TRUE(verifyGraph(*g).empty());
}

TEST(Builder, ParamsAndInitialToken)
{
    CompileResult r = buildOnly("int f(int a, int b) { return a + b; }");
    const Graph* g = r.graph("f");
    EXPECT_EQ(g->numParams, 2);
    EXPECT_EQ(g->paramNodes.size(), 2u);
    ASSERT_NE(g->initialToken, nullptr);
    EXPECT_EQ(g->returnNodes.size(), 1u);
}

TEST(Builder, IfJoinMakesDecodedMux)
{
    CompileResult r = buildOnly(
        "int f(int x, int a, int b)"
        "{ int s; if (x) s = a * 2; else s = b * 3; return s; }");
    const Graph* g = r.graph("f");
    EXPECT_GE(count(*g, NodeKind::Mux), 1);
    // Decoded mux: even arity, pred/data pairs.
    g->forEach([&](Node* n) {
        if (n->kind == NodeKind::Mux)
            EXPECT_EQ(n->numInputs() % 2, 0);
    });
}

TEST(Builder, LoopMakesMergeEtaRing)
{
    CompileResult r = buildOnly(
        "int f(int n) { int i = 0; while (i < n) i++; return i; }");
    const Graph* g = r.graph("f");
    // At least: control merge, i merge, n merge, token ring merge.
    EXPECT_GE(count(*g, NodeKind::Merge), 3);
    EXPECT_GE(count(*g, NodeKind::Eta), 3);
    // Every back-edged merge carries a decider.
    g->forEach([&](Node* n) {
        if (n->kind != NodeKind::Merge)
            return;
        bool back = false;
        for (int i = 0; i < n->numInputs(); i++)
            if (i != n->deciderIndex && n->inputIsBackEdge(i))
                back = true;
        if (back)
            EXPECT_GE(n->deciderIndex, 0) << n->str();
    });
}

TEST(Builder, MemoryOpsHavePredTokenInputs)
{
    CompileResult r = buildOnly("int g; void f(int v) { g = v + g; }");
    r.graph("f")->forEach([&](Node* n) {
        if (n->kind == NodeKind::Load) {
            EXPECT_EQ(n->numInputs(), 3);
            EXPECT_EQ(n->input(1).node->outputType(n->input(1).port),
                      VT::Token);
        }
        if (n->kind == NodeKind::Store)
            EXPECT_EQ(n->numInputs(), 4);
    });
}

TEST(Builder, ProgramOrderChainAtCoarseLevel)
{
    // With points-to off, conflicting accesses chain in program order:
    // the store's token sources include the preceding load.
    CompileOptions co = CompileOptions().opt(OptLevel::None);
    CompileResult r = compileSource(
        "int a[4]; void f(int i) { int t = a[i]; a[i + 1] = t; }", co);
    const Graph* g = r.graph("f");
    const Node* load = nullptr;
    const Node* store = nullptr;
    g->forEach([&](Node* n) {
        if (n->kind == NodeKind::Load)
            load = n;
        if (n->kind == NodeKind::Store)
            store = n;
    });
    ASSERT_NE(load, nullptr);
    ASSERT_NE(store, nullptr);
    std::vector<PortRef> srcs =
        optutil::expandTokenSources(store->input(1));
    bool viaLoad = false;
    for (const PortRef& s : srcs)
        if (s.node == load)
            viaLoad = true;
    EXPECT_TRUE(viaLoad);
}

TEST(Builder, ReadsAreNotSequentialized)
{
    // Figure 4: two reads commute — neither takes the other's token.
    CompileResult r = buildOnly(
        "int b[4]; int f(int* p, int i) { return b[i] + *p; }");
    const Graph* g = r.graph("f");
    std::vector<const Node*> loads;
    g->forEach([&](Node* n) {
        if (n->kind == NodeKind::Load)
            loads.push_back(n);
    });
    ASSERT_EQ(loads.size(), 2u);
    for (const Node* a : loads) {
        for (const PortRef& s :
             optutil::expandTokenSources(a->input(1)))
            EXPECT_NE(s.node, a == loads[0] ? loads[1] : loads[0]);
    }
}

TEST(Builder, DisjointArraysSeparateRingsAtMedium)
{
    // Figure 6: with read/write sets, accesses to disjoint arrays need
    // no mutual token edges.
    CompileOptions co = CompileOptions().opt(OptLevel::Medium);
    CompileResult r = compileSource(
        "int a[4]; int b2[4];"
        "void f(int i) { a[i] = 1; b2[i] = 2; }",
        co);
    const Graph* g = r.graph("f");
    EXPECT_EQ(g->numPartitions, 2);
    std::vector<const Node*> stores;
    g->forEach([&](Node* n) {
        if (n->kind == NodeKind::Store)
            stores.push_back(n);
    });
    ASSERT_EQ(stores.size(), 2u);
    EXPECT_NE(stores[0]->partition, stores[1]->partition);
    for (const Node* s : stores)
        for (const PortRef& src :
             optutil::expandTokenSources(s->input(1)))
            EXPECT_NE(src.node, s == stores[0] ? stores[1] : stores[0]);
}

TEST(Builder, ReturnCollectsAllPartitions)
{
    CompileResult r = buildOnly(
        "int a[4]; int b2[4];"
        "int f(int i) { a[i] = 1; b2[i] = 2; return i; }",
        OptLevel::Medium);
    const Graph* g = r.graph("f");
    ASSERT_EQ(g->returnNodes.size(), 1u);
    const Node* ret = g->returnNodes[0];
    std::vector<PortRef> srcs =
        optutil::expandTokenSources(ret->input(1));
    // Both stores must be ordered before the return.
    int storeSrcs = 0;
    for (const PortRef& s : srcs)
        if (s.node->kind == NodeKind::Store)
            storeSrcs++;
    EXPECT_EQ(storeSrcs, 2);
}

TEST(Builder, TransitiveReductionAtConstruction)
{
    // st a[i]; ld a[i]; st a[i]: the second store's direct sources
    // must be the load only (the first store is implied).
    CompileResult r = buildOnly(
        "int a[4]; int f(int i)"
        "{ a[i] = 1; int t = a[i]; a[i] = t + 1; return t; }",
        OptLevel::Medium);
    const Graph* g = r.graph("f");
    std::vector<const Node*> stores;
    g->forEach([&](Node* n) {
        if (n->kind == NodeKind::Store)
            stores.push_back(n);
    });
    ASSERT_EQ(stores.size(), 2u);
    std::vector<PortRef> srcs =
        optutil::expandTokenSources(stores[1]->input(1));
    for (const PortRef& s : srcs)
        EXPECT_NE(s.node, stores[0]);
}

TEST(Builder, ControlMergesGiveConstOnlyBlocksATrigger)
{
    // The break block computes only constants; the control merge must
    // still deliver its value (regression for the strsearch deadlock).
    uint32_t v = testutil::crossCheck(
        "int f(int n) { int ok = 1; int i;"
        " for (i = 0; i < n; i++) {"
        "   if (i == 3) { ok = 0; break; } }"
        " return ok; }",
        "f", {10});
    EXPECT_EQ(v, 0u);
}

TEST(Builder, EtasFeedOnlyMerges)
{
    CompileResult r = buildOnly(
        "int a[16];"
        "int f(int n) { int s = 0; int i; int j;"
        " for (i = 0; i < n; i++)"
        "   for (j = 0; j < i; j++)"
        "     s += a[j & 15];"
        " return s; }",
        OptLevel::Full);
    r.graph("f")->forEach([&](Node* n) {
        if (n->kind != NodeKind::Eta)
            return;
        for (const Use& u : n->uses())
            EXPECT_EQ(u.user->kind, NodeKind::Merge) << n->str();
    });
}

TEST(Builder, HbInfosRecorded)
{
    CompileResult r = buildOnly(
        "int f(int n) { int i = 0; while (i < n) i++; return i; }");
    const Graph* g = r.graph("f");
    EXPECT_EQ(g->hyperblocks.size(), 3u);
    int loops = 0;
    for (const HbInfo& hb : g->hyperblocks)
        if (hb.isLoop)
            loops++;
    EXPECT_EQ(loops, 1);
}

} // namespace
