// Frontend hardening: hostile or malformed source must produce a
// FatalError diagnostic — never a crash, host stack overflow or
// (silent) integer wraparound.
#include <gtest/gtest.h>

#include <string>

#include "driver/compiler.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "support/diagnostics.h"

using namespace cash;

namespace {

TEST(FrontendRobustness, DeepParenNestingIsDiagnosed)
{
    // 20k nesting levels would overflow the host stack through the
    // recursive-descent parser; the depth guard must reject it first.
    std::string src = "int f(void) { return ";
    for (int i = 0; i < 20000; i++)
        src += "(";
    src += "1";
    for (int i = 0; i < 20000; i++)
        src += ")";
    src += "; }";
    EXPECT_THROW(parseProgram(src), FatalError);
}

TEST(FrontendRobustness, DeepStatementNestingIsDiagnosed)
{
    std::string src = "int f(int x) { ";
    for (int i = 0; i < 20000; i++)
        src += "if (x) ";
    src += "x = 1; return x; }";
    EXPECT_THROW(parseProgram(src), FatalError);
}

TEST(FrontendRobustness, ReasonableNestingStillParses)
{
    // The guard must not reject real programs: 100 levels is fine.
    std::string src = "int f(void) { return ";
    for (int i = 0; i < 100; i++)
        src += "(";
    src += "1";
    for (int i = 0; i < 100; i++)
        src += ")";
    src += "; }";
    Program p = parseProgram(src);
    EXPECT_EQ(p.functions.size(), 1u);
}

TEST(FrontendRobustness, OverflowingIntLiteralIsDiagnosed)
{
    // Would be signed-overflow UB with naive accumulation.
    EXPECT_THROW(parseProgram("int x = 99999999999999999999999;"),
                 FatalError);
    EXPECT_THROW(parseProgram("int x = 0xFFFFFFFFFFFFFFFFFF;"),
                 FatalError);
}

TEST(FrontendRobustness, LargeButValidLiteralStillParses)
{
    Program p = parseProgram("int x = 0x7FFFFFFF;");
    ASSERT_EQ(p.globals.size(), 1u);
}

TEST(FrontendRobustness, ArraySizeOverflowIsDiagnosed)
{
    EXPECT_THROW(
        parseProgram("int a[4000000000*4000000000*4000000000];"),
        FatalError);
    // Unaddressable in the 32-bit simulated address space.
    EXPECT_THROW(parseProgram("int a[4294967295];"), FatalError);
}

TEST(FrontendRobustness, GarbageInputsNeverCrash)
{
    // Truncated, binary-ish and syntactically absurd inputs: each must
    // either compile or raise FatalError.  Anything else (a signal, an
    // uncaught exception type) fails the test run itself.
    const char* cases[] = {
        "",
        ";;;;;;",
        "int",
        "int f(",
        "int f(void) {",
        "int f(void) { return",
        "int f(void) { return 1 +; }",
        "int a[",
        "int a[3",
        "\x01\x02\xff\xfe",
        "int f(int x) { return f(f(f(f(x)))); }",
        "((((((((((((",
        "}}}}}}}}}}}}",
        "int 0f(void) { return 0; }",
        "int f(void) { int x = 'a; return x; }",
        "#define X 1\nint f(void) { return X; }",
        "int f(void) { return 1 ? ; }",
        "struct s { int x; };",
        "int f(void) { goto done; done: return 0; }",
        "unsigned long long x = 18446744073709551616;",
    };
    for (const char* src : cases) {
        try {
            compileSource(src, {});
        } catch (const FatalError&) {
            // expected for malformed inputs
        }
    }
    SUCCEED();
}

TEST(FrontendRobustness, TruncationsOfValidProgramNeverCrash)
{
    // Every prefix of a real program goes through parse+sema: the
    // frontend must diagnose, not crash, at any cut point.
    const std::string full =
        "int a[16]; unsigned s;"
        "int f(int n) { int i; s = 0;"
        " for (i = 0; i < n; i++) { a[i] = i * 3; s += a[i]; }"
        " return (int)s; }";
    for (size_t cut = 0; cut < full.size(); cut++) {
        try {
            compileSource(full.substr(0, cut), {});
        } catch (const FatalError&) {
        }
    }
    SUCCEED();
}

} // namespace
