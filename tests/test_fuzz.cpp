/**
 * @file
 * The fuzz/soak harness (docs/FUZZING.md): seeded generation is
 * deterministic and always yields valid terminating programs, the
 * grammar-aware minimizer strictly shrinks while preserving a
 * predicate, the differential oracle matrix is clean on clean seeds,
 * an injected canary is detected and minimized, and the checker/
 * engine bugs the harness has already caught stay fixed.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lint.h"
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/oracles.h"
#include "test_util.h"

using namespace cash;
using namespace cash::fuzz;

namespace {

LintReport
lintCompiled(const CompileResult& r)
{
    LintContext ctx;
    ctx.oracle = &r.cfg->oracle;
    ctx.layout = r.layout.get();
    return runLints(r.graphPtrs(), ctx, {"ordering-soundness"});
}

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

TEST(FuzzGenerator, DeterministicPerSeed)
{
    GenProfile p = GenProfile::byName("small");
    for (uint64_t seed : {1ull, 7ull, 42ull, 12345ull}) {
        GenProgram a = generateProgram(seed, p);
        GenProgram b = generateProgram(seed, p);
        EXPECT_EQ(a.render(), b.render()) << "seed " << seed;
        EXPECT_GE(a.functionCount(), 2); // helpers + entry
        EXPECT_GT(a.statementCount(), 0);
    }
    // Different seeds diverge (splitmix64 won't collide here).
    EXPECT_NE(generateProgram(1, p).render(),
              generateProgram(2, p).render());
    // "mixed" resolves to a real family per seed, deterministically.
    GenProfile mixed = GenProfile::byName("mixed");
    EXPECT_EQ(generateProgram(9, mixed).render(),
              generateProgram(9, mixed).render());
    EXPECT_THROW(GenProfile::byName("gigantic"), FatalError);
}

TEST(FuzzGenerator, ProgramsAreValidAndTerminate)
{
    // The validity contract: every generated program parses, passes
    // sema, compiles at every level and runs to completion inside a
    // modest event budget.  A handful of seeds keeps this fast; the
    // soak binary is the full-traffic version of the same claim.
    GenProfile p = GenProfile::byName("small");
    for (uint64_t seed = 1; seed <= 8; seed++) {
        std::string src = generateProgram(seed, p).render();
        CompileResult r =
            compileSource(src, CompileOptions().opt(OptLevel::Full));
        ASSERT_TRUE(r.ok()) << "seed " << seed << "\n" << src;
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory());
        sim.setMaxEvents(5000000);
        SimResult out = sim.run(GenProgram::entryName(), {5});
        EXPECT_TRUE(out.ok())
            << "seed " << seed << ": " << out.error << "\n" << src;
    }
}

// ---------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------

TEST(FuzzMinimize, SiteOperationsShrinkStrictly)
{
    GenProgram prog =
        generateProgram(3, GenProfile::byName("small"));
    int64_t before = prog.statementCount();
    ASSERT_GT(countSites(prog, ReduceKind::DropStmt), 0);
    ASSERT_TRUE(applySite(&prog, ReduceKind::DropStmt, 0));
    EXPECT_LT(prog.statementCount(), before);
    // Out-of-range sites are rejected without touching the program.
    std::string snap = prog.render();
    EXPECT_FALSE(applySite(&prog, ReduceKind::DropStmt, 1 << 20));
    EXPECT_EQ(prog.render(), snap);
}

TEST(FuzzMinimize, GreedyReductionPreservesPredicate)
{
    // Predicate: the program still contains a for-loop.  The
    // minimizer must land on a small fixpoint that still has one.
    GenProgram prog =
        generateProgram(11, GenProfile::byName("small"));
    auto hasFor = [](const std::string& src) {
        return src.find("for (") != std::string::npos;
    };
    ASSERT_TRUE(hasFor(prog.render()));
    int64_t before = prog.statementCount();
    MinimizeStats st = minimizeProgram(&prog, hasFor, 500);
    EXPECT_TRUE(hasFor(prog.render()));
    EXPECT_LE(prog.statementCount(), before);
    EXPECT_EQ(st.beforeStmts, before);
    EXPECT_EQ(st.afterStmts, prog.statementCount());
    EXPECT_LE(st.accepted, st.evals);
    EXPECT_LE(st.evals, 500);
    // Minimized output is still a valid program.
    CompileResult r = compileSource(prog.render(), {});
    EXPECT_TRUE(r.ok()) << prog.render();
}

// ---------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------

TEST(FuzzOracles, CleanSeedsProduceCleanCases)
{
    SoakConfig cfg;
    cfg.profile = "small";
    cfg.jobsHigh = 2;
    for (uint64_t seed = 1; seed <= 3; seed++) {
        CaseReport rep = runCase(seed, cfg);
        EXPECT_FALSE(rep.violation())
            << "seed " << seed << ": " << rep.category << " — "
            << rep.detail;
        EXPECT_FALSE(rep.inconclusive) << "seed " << seed;
        EXPECT_GT(rep.runs, 0);
        EXPECT_EQ(rep.latenciesUs.size(),
                  static_cast<size_t>(rep.runs));
        EXPECT_FALSE(rep.outcomes.empty());
    }
}

TEST(FuzzOracles, CanaryCorruptionIsDetectedAndMinimizes)
{
    // Acceptance canary: a graph.corrupt-token injection into a
    // verify-off pipeline must be caught by the independent ordering
    // checker, and the failure must survive grammar-aware reduction
    // (same category on the minimized program).
    SoakConfig cfg;
    cfg.profile = "small";
    cfg.canary = true;
    cfg.checkJobs = false;
    CaseReport rep = runCase(2, cfg);
    EXPECT_TRUE(rep.canaryDetected) << rep.detail;
    EXPECT_NE(rep.category, "canary-missed") << rep.detail;

    GenProgram prog =
        generateProgram(2, GenProfile::byName("small"));
    auto stillDetected = [&](const std::string& src) {
        CaseReport r = runCaseOnSource(src, 2, cfg);
        return r.canaryDetected;
    };
    MinimizeStats st = minimizeProgram(&prog, stillDetected, 60);
    EXPECT_GT(st.evals, 0);
    EXPECT_LE(st.afterStmts, st.beforeStmts);
    EXPECT_TRUE(stillDetected(prog.render()));
}

// ---------------------------------------------------------------------
// Regressions the soak harness caught (stay-fixed tests)
// ---------------------------------------------------------------------

// Minimized by cash-soak from seed 17 (small profile): a predicated
// load feeding a same-hyperblock return must not be paired with a
// strictly-downstream access — the return terminates the invocation,
// so the two can never touch memory in the same run.
const char* kReturnExclusionSrc =
    "int g0[16];\n"
    "unsigned s0 = -2;\n"
    "int s1 = 4;\n"
    "int f0(int d, int a0, int a1)\n"
    "{\n"
    "    if (1) {\n"
    "        return s1;\n"
    "    }\n"
    "    int i2;\n"
    "    for (i2 = 0; i2 < 1; i2++) {\n"
    "    }\n"
    "    return (1 + f0(1, 132199, 1));\n"
    "}\n"
    "int run(int n) { return 1; }\n";

// Minimized from seed 20: constant-folding `if (-4)` leaves the else
// loop an unseeded merge ring — its store can never fire and must not
// be paired with the live read-modify-write of s0.
const char* kUnseededRingSrc =
    "int g0[16];\n"
    "unsigned s0 = 8;\n"
    "unsigned s1 = 6;\n"
    "int run(int n)\n"
    "{\n"
    "    int v0 = s1;\n"
    "    if ((-4)) {\n"
    "    }\n"
    "    else {\n"
    "        int i1;\n"
    "        for (i1 = 0; i1 < 1; i1++) {\n"
    "            g0[(v0) & 15] = (-1);\n"
    "        }\n"
    "    }\n"
    "    s0 -= ((-1) % v0);\n"
    "    return 1;\n"
    "}\n";

// Minimized from seed 45 (full opt only): the optimizer hoists the
// else-branch load ahead of its loop, hiding its predicate behind the
// ring merges; the dominating-eta analysis must still prove the
// then-branch store disjoint (predicates n and !n).
const char* kDominatingEtaSrc =
    "int g0[16];\n"
    "int run(int n)\n"
    "{\n"
    "    int v0 = 1;\n"
    "    if (n) {\n"
    "        int i1;\n"
    "        for (i1 = 0; i1 < 1; i1++) {\n"
    "            g0[((-8)) & 15] = 11;\n"
    "        }\n"
    "    }\n"
    "    else {\n"
    "        int i2;\n"
    "        for (i2 = 0; i2 < 1; i2++) {\n"
    "            v0 ^= g0[(1) & 15];\n"
    "        }\n"
    "    }\n"
    "    return 1;\n"
    "}\n";

// Minimized from seed 336 — the soak's first real optimizer bug.
// token_removal proves the g0[13] load disjoint from the g0[4] store
// and drops their direct edge; the load's ordering against the loop's
// unknown-address store must then be inherited through the loop's
// token-ring merge.  tokenConsumerInput() used to return -1 for
// merges, so addTokenSource() silently dropped that inherited edge,
// leaving the load racing a store that may alias it.
const char* kRingSeedInheritSrc =
    "int g0[16];\n"
    "int f0(int a0, int a1)\n"
    "{\n"
    "    int v0 = (((12 | a0)) ? (1) : (g0[(13) & 15]));\n"
    "    int v1 = (1 < v0);\n"
    "    g0[(4) & 15] = 1;\n"
    "    int i0;\n"
    "    for (i0 = 0; i0 < 1; i0++) {\n"
    "        g0[(v1) & 15] = (-515036);\n"
    "    }\n"
    "    return 15;\n"
    "}\n"
    "int run(int n) { return f0(n, 2); }\n";

TEST(FuzzRegressions, TokenRemovalSeedsRingWithInheritedOrder)
{
    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        CompileResult r = compileSource(kRingSeedInheritSrc,
                                        CompileOptions().opt(level));
        ASSERT_TRUE(r.ok());
        LintReport report = lintCompiled(r);
        EXPECT_EQ(report.errors(), 0)
            << optLevelName(level) << ": "
            << (report.findings.empty() ? ""
                                        : report.findings[0].str());
        DataflowSimulator sim(r.graphPtrs(), *r.layout,
                              MemConfig::perfectMemory(),
                              SimEngine::Macro);
        SimResult out = sim.run("run", {13});
        ASSERT_TRUE(out.ok()) << out.error;
        EXPECT_EQ(out.returnValue, 15u) << optLevelName(level);
    }
}

// Minimized from seed 3046 (oracle A, -O0 vs -O3 return divergence).
// memory_merge folds the branch stores into one predicated store, so
// the final load of s0 sees two *sequential* forwarding stores:
// s0 |= 1 (predicate: function entry) then s0 &= 1 (predicate: then-
// branch).  Both predicates are true on the then path — the
// forwarding mux must prioritize the store nearest the load, not
// decode on raw store predicates as if they were branch-exclusive.
const char* kSequentialForwardSrc =
    "int s0 = 12;\n"
    "int f0(int d, int a0, int a1)\n"
    "{\n"
    "    int v0 = (-326492);\n"
    "    int i1;\n"
    "    for (i1 = 0; i1 < 1; i1++) {\n"
    "    }\n"
    "    if (v0) {\n"
    "        s0 |= 1;\n"
    "        s0 &= 1;\n"
    "    }\n"
    "    else {\n"
    "        s0 += 12;\n"
    "    }\n"
    "    return s0;\n"
    "}\n"
    "int run(int n) { return ((1) ? (f0(4, 10, 1)) : (1)); }\n";

TEST(FuzzRegressions, StoreForwardingPrioritizesNearestStore)
{
    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        CompileResult r = compileSource(kSequentialForwardSrc,
                                        CompileOptions().opt(level));
        ASSERT_TRUE(r.ok());
        for (SimEngine engine :
             {SimEngine::Event, SimEngine::Macro}) {
            DataflowSimulator sim(r.graphPtrs(), *r.layout,
                                  MemConfig::perfectMemory(), engine);
            SimResult out = sim.run("run", {5});
            ASSERT_TRUE(out.ok()) << out.error;
            EXPECT_EQ(out.returnValue, 1u) << optLevelName(level);
        }
    }
}

TEST(FuzzRegressions, CheckerStaysQuietOnMinimizedRepros)
{
    for (const char* src : {kReturnExclusionSrc, kUnseededRingSrc,
                            kDominatingEtaSrc}) {
        for (OptLevel level :
             {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
            CompileResult r =
                compileSource(src, CompileOptions().opt(level));
            ASSERT_TRUE(r.ok());
            LintReport report = lintCompiled(r);
            EXPECT_EQ(report.errors(), 0)
                << optLevelName(level) << ": "
                << (report.findings.empty()
                        ? ""
                        : report.findings[0].str())
                << "\n" << src;
        }
    }
}

// Minimized from seed 8: the loop-exit EOS tail fires in the same
// cycle as the root return.  Run-to-quiescence means both engines
// report the identical complete firing multiset (Kahn determinism),
// not "identical minus whatever was in flight when the return landed".
const char* kQuiescenceSrc =
    "int g0[16];\n"
    "int g1[16];\n"
    "int s0 = 12;\n"
    "int s1 = 5;\n"
    "int run(int n)\n"
    "{\n"
    "    int v0 = 1;\n"
    "    int i3;\n"
    "    for (i3 = 0; i3 < 1; i3++) {\n"
    "        v0 |= (1 < (1 + v0));\n"
    "    }\n"
    "    return 1;\n"
    "}\n";

TEST(FuzzRegressions, EnginesAgreeOnFiringCounts)
{
    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        CompileResult r = compileSource(
            kQuiescenceSrc, CompileOptions().opt(level));
        ASSERT_TRUE(r.ok());
        int64_t firings[2] = {0, 0};
        int i = 0;
        for (SimEngine engine :
             {SimEngine::Event, SimEngine::Macro}) {
            DataflowSimulator sim(r.graphPtrs(), *r.layout,
                                  MemConfig::perfectMemory(), engine);
            SimResult out = sim.run("run", {5});
            ASSERT_TRUE(out.ok()) << out.error;
            EXPECT_EQ(out.returnValue, 1u);
            firings[i++] = out.stats.get("sim.firings");
        }
        EXPECT_EQ(firings[0], firings[1])
            << "event vs macro at " << optLevelName(level);
    }
}

} // namespace
