/**
 * @file
 * The memory-ordering soundness checker and the lint framework
 * (docs/ANALYSIS.md): clean pipelines produce zero error findings at
 * every level, every injected token corruption is flagged, findings
 * are deterministic at any job count, and each rule fires on a
 * hand-built positive graph while staying silent on its clean twin.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/interproc.h"
#include "analysis/lint.h"
#include "analysis/ordering_checker.h"
#include "benchsuite/kernels.h"
#include "pegasus/verifier.h"
#include "support/fault_injection.h"
#include "test_util.h"

using namespace cash;

namespace {

LintReport
lintCompiled(const CompileResult& r,
             const std::vector<std::string>& rules = {})
{
    // Mirror the driver's analyze path: the checker-side
    // interprocedural model is rederived over the final graphs so
    // calls get per-site effects instead of Top.
    InterprocModel interproc(r.graphPtrs(), r.cfg->paramLocation,
                             *r.layout);
    LintContext ctx;
    ctx.oracle = &r.cfg->oracle;
    ctx.layout = r.layout.get();
    ctx.interproc = &interproc;
    return runLints(r.graphPtrs(), ctx, rules);
}

std::string
reportFingerprint(const LintReport& report)
{
    std::string out;
    for (const LintFinding& f : report.findings)
        out += f.str() + "\n" + f.json() + "\n";
    return out;
}

// ---------------------------------------------------------------------
// Acceptance: the whole benchsuite, clean and corrupted
// ---------------------------------------------------------------------

TEST(OrderingChecker, CleanKernelsHaveNoErrorsAtAnyLevel)
{
    for (const Kernel& k : kernelSuite()) {
        for (OptLevel level :
             {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
            CompileResult r = compileSource(
                k.source, CompileOptions().opt(level));
            ASSERT_TRUE(r.ok()) << k.name;
            LintReport report =
                lintCompiled(r, {"ordering-soundness"});
            EXPECT_EQ(report.errors(), 0)
                << k.name << " at " << optLevelName(level) << ": "
                << (report.findings.empty()
                        ? ""
                        : report.findings[0].str());
        }
    }
}

TEST(OrderingChecker, CorruptTokenEdgeFlaggedOnEveryKernel)
{
    // Differential proof of usefulness: damage the verifier also
    // catches must be caught by the *independent* checker, for every
    // kernel, every graph with a corruption site and several seeds.
    for (const Kernel& k : kernelSuite()) {
        CompileResult r = compileSource(
            k.source, CompileOptions().opt(OptLevel::Full));
        ASSERT_TRUE(r.ok()) << k.name;
        int corrupted = 0;
        for (const auto& g : r.graphs) {
            for (uint64_t seed = 0; seed < 3; seed++) {
                // Corrupt a pristine copy each time; reuse the
                // compiled layout and oracle.
                CompileResult fresh = compileSource(
                    k.source, CompileOptions().opt(OptLevel::Full));
                Graph* victim = nullptr;
                for (const auto& vg : fresh.graphs)
                    if (vg->name == g->name)
                        victim = vg.get();
                ASSERT_NE(victim, nullptr) << k.name;
                std::string what = corruptTokenEdge(*victim, seed);
                if (what.empty())
                    break;  // no token-consuming side effects here
                corrupted++;
                LintContext ctx;
                ctx.oracle = &fresh.cfg->oracle;
                ctx.layout = fresh.layout.get();
                LintReport report = runLints(
                    {victim}, ctx, {"ordering-soundness"});
                EXPECT_GT(report.errors(), 0)
                    << k.name << "/" << g->name << " seed " << seed
                    << ": " << what << " escaped the checker";
            }
        }
        EXPECT_GT(corrupted, 0)
            << k.name << ": no graph offered a corruption site";
    }
}

TEST(OrderingChecker, FindingsByteIdenticalAcrossJobCounts)
{
    // A pointer selected between two pragma-independent parameters
    // gives the analysis something to say on a healthy compile.
    const char* src =
        "#pragma independent p q\n"
        "int f(int *p, int *q, int c) {"
        " int *r; if (c) r = p; else r = q;"
        " *r = 5; return *p + *q; }";
    CompileResult serial =
        compileSource(src, CompileOptions().jobs(1));
    CompileResult parallel =
        compileSource(src, CompileOptions().jobs(8));
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());

    LintReport a = lintCompiled(serial);
    LintReport b = lintCompiled(parallel);
    EXPECT_FALSE(a.findings.empty());
    EXPECT_EQ(reportFingerprint(a), reportFingerprint(b));
}

// ---------------------------------------------------------------------
// Per-pass checking: analysis failures quarantine like verifier ones
// ---------------------------------------------------------------------

TEST(OrderingChecker, PerPassCheckQuarantinesCorruptingPass)
{
    const char* src =
        "int a[8];"
        "int fill(int n) { int i;"
        " for (i = 0; i < n; i++) a[i & 7] = i + 2; return a[0]; }";
    FaultPlan plan = FaultPlan::parse(
        "graph.corrupt-token:pass=dead_code,func=fill,round=1");

    // Structural verification off: only the ordering checker stands
    // between the corruption and the simulator.
    CompileResult r = compileSource(
        src, CompileOptions()
                 .verification(false)
                 .orderingCheck(true)
                 .inject(&plan));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diagnostics[0].pass, "dead_code");
    EXPECT_EQ(static_cast<int>(r.diagnostics[0].code),
              static_cast<int>(ErrorCode::AnalysisError));
    EXPECT_TRUE(r.diagnostics[0].message.find("token") !=
                std::string::npos)
        << r.diagnostics[0].message;
    EXPECT_GT(r.stats.get("opt.rollbacks"), 0);

    // The rollback restored a graph that still computes the answer.
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    SimResult out = sim.run("fill", {10});
    ASSERT_TRUE(out.ok()) << out.error;
    EXPECT_EQ(out.returnValue,
              testutil::interpret(src, "fill", {10}));
}

// ---------------------------------------------------------------------
// AliasOracle edge cases the checker's set reasoning rests on
// ---------------------------------------------------------------------

TEST(AliasOracle, ExternalVersusGlobalOverlap)
{
    AliasOracle o;
    o.addExternal(5);
    o.addExposedObject(1);

    // A pointer parameter may hit an exposed global but not a
    // non-exposed one; two externals may always be equal; two
    // distinct concrete objects never overlap.
    EXPECT_TRUE(o.mayAliasLocations(5, 1));
    EXPECT_TRUE(o.mayAliasLocations(1, 5));
    EXPECT_FALSE(o.mayAliasLocations(5, 2));
    EXPECT_FALSE(o.mayAliasLocations(1, 2));
    o.addExternal(6);
    EXPECT_TRUE(o.mayAliasLocations(5, 6));
    EXPECT_TRUE(o.mayAliasLocations(5, 5));

    LocationSet ext = LocationSet::single(5);
    LocationSet exposed = LocationSet::single(1);
    LocationSet hidden = LocationSet::single(2);
    EXPECT_TRUE(o.mayOverlap(ext, exposed));
    EXPECT_FALSE(o.mayOverlap(ext, hidden));
    EXPECT_TRUE(o.mayOverlap(LocationSet::top(), hidden));
    EXPECT_FALSE(o.mayOverlap(LocationSet(), LocationSet::top()));
}

TEST(AliasOracle, PragmaIndependenceWinsOverExternalRules)
{
    AliasOracle o;
    o.addExternal(5);
    o.addExternal(6);
    EXPECT_TRUE(o.mayAliasLocations(5, 6));
    o.addIndependent(6, 5);  // normalized to (5, 6)
    EXPECT_FALSE(o.mayAliasLocations(5, 6));
    EXPECT_FALSE(o.mayAliasLocations(6, 5));
    ASSERT_EQ(o.independentPairs().size(), 1u);
    EXPECT_EQ(*o.independentPairs().begin(), std::make_pair(5, 6));
    // Independence is pairwise, not contagious.
    o.addExposedObject(1);
    EXPECT_TRUE(o.mayAliasLocations(5, 1));
    EXPECT_TRUE(o.mayAliasLocations(6, 1));
}

TEST(AliasOracle, PragmaPropagatesThroughPointerCopies)
{
    // The frontend's connection analysis must attach the externals of
    // both p and q to an access through a copy of either; the pragma
    // then separates the two loads from the store through the copy's
    // *other* origin only when provable.  End-to-end: with the pragma
    // the store to *p and the load of *q need no ordering, so the
    // compile stays clean under the checker at full optimization.
    const char* src =
        "#pragma independent p q\n"
        "int f(int *p, int *q, int n) { int i; int s = 0;"
        " for (i = 0; i < n; i++) { p[i] = i; s += q[i]; }"
        " return s; }";
    CompileResult r = compileSource(
        src, CompileOptions().opt(OptLevel::Full).orderingCheck(true));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(lintCompiled(r, {"ordering-soundness"}).errors(), 0);
    // The oracle actually recorded the pragma as an external pair.
    ASSERT_EQ(r.cfg->oracle.independentPairs().size(), 1u);
    auto [a, b] = *r.cfg->oracle.independentPairs().begin();
    EXPECT_TRUE(r.cfg->oracle.isExternal(a));
    EXPECT_TRUE(r.cfg->oracle.isExternal(b));
    EXPECT_FALSE(r.cfg->oracle.mayAliasLocations(a, b));
}

// ---------------------------------------------------------------------
// Hand-built graphs: one positive and one clean negative per rule
// ---------------------------------------------------------------------

/** Store anchored to @p token writing abstract location @p loc. */
Node*
addStore(Graph& g, PortRef token, int loc)
{
    Node* st = g.newNode(NodeKind::Store, VT::Word, 0);
    g.addInput(st, {g.truePred(0), 0});
    g.addInput(st, token);
    g.addInput(st, {g.newConst(64 + 8 * loc, VT::Word, 0), 0});
    g.addInput(st, {g.newConst(7, VT::Word, 0), 0});
    st->rwSet = LocationSet::single(loc);
    return st;
}

TEST(LintRules, OrderingSoundnessFlagsUnorderedConflictingStores)
{
    Graph g;
    g.name = "t";
    g.initialToken = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    // Two stores to the same location, both anchored directly to the
    // initial token: neither reaches the other.
    Node* s1 = addStore(g, {g.initialToken, 0}, 0);
    Node* s2 = addStore(g, {g.initialToken, 0}, 0);

    AliasOracle oracle;
    LintContext ctx;
    ctx.oracle = &oracle;
    LintReport bad = runLints({&g}, ctx, {"ordering-soundness"});
    ASSERT_EQ(bad.errors(), 1) << reportFingerprint(bad);
    EXPECT_EQ(bad.findings[0].nodeA, s1->id);
    EXPECT_EQ(bad.findings[0].nodeB, s2->id);
    EXPECT_TRUE(bad.findings[0].explanation.find("no token path") !=
                std::string::npos);

    // Chaining the second store behind the first restores the order.
    g.setInput(s2, 1, {s1, 0});
    EXPECT_EQ(runLints({&g}, ctx, {"ordering-soundness"}).errors(), 0);

    // Disjoint concrete objects never needed ordering to begin with.
    Graph g2;
    g2.name = "t2";
    g2.initialToken = g2.newNode(NodeKind::InitialToken, VT::Token, 0);
    addStore(g2, {g2.initialToken, 0}, 0);
    addStore(g2, {g2.initialToken, 0}, 1);
    EXPECT_EQ(runLints({&g2}, ctx, {"ordering-soundness"}).errors(), 0);
}

TEST(LintRules, OrderingSoundnessFlagsUnanchoredConsumer)
{
    Graph g;
    g.name = "t";
    g.initialToken = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* st = addStore(g, {g.initialToken, 0}, 0);
    // Re-wire the token input to a word constant, as a buggy pass
    // might: the store is no longer anchored.
    g.setInput(st, 1, {g.newConst(0, VT::Word, 0), 0});

    LintContext ctx;  // no oracle: only the anchoring part can fire
    LintReport report = runLints({&g}, ctx, {"ordering-soundness"});
    ASSERT_EQ(report.errors(), 1);
    EXPECT_EQ(report.findings[0].nodeA, st->id);
    EXPECT_TRUE(report.findings[0].explanation.find("not anchored") !=
                std::string::npos)
        << report.findings[0].explanation;
}

TEST(LintRules, RedundantTokenEdgeDetected)
{
    Graph g;
    g.name = "t";
    g.initialToken = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* s1 = addStore(g, {g.initialToken, 0}, 0);
    // s2 combines the initial token with s1's token — but s1 already
    // follows the initial token, so that first edge adds nothing.
    Node* comb = g.newNode(NodeKind::Combine, VT::Token, 0);
    g.addInput(comb, {g.initialToken, 0});
    g.addInput(comb, {s1, 0});
    Node* s2 = addStore(g, {comb, 0}, 0);

    LintContext ctx;
    LintReport report = runLints({&g}, ctx, {"redundant-token-edge"});
    ASSERT_EQ(report.warnings(), 1) << reportFingerprint(report);
    EXPECT_EQ(report.findings[0].nodeA, g.initialToken->id);
    EXPECT_EQ(report.findings[0].nodeB, s2->id);

    // Two genuinely parallel sources are not redundant.
    Graph g2;
    g2.name = "t2";
    g2.initialToken = g2.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* a = addStore(g2, {g2.initialToken, 0}, 0);
    Node* b = addStore(g2, {g2.initialToken, 0}, 1);
    Node* comb2 = g2.newNode(NodeKind::Combine, VT::Token, 0);
    g2.addInput(comb2, {a, 0});
    g2.addInput(comb2, {b, 0});
    addStore(g2, {comb2, 0}, 2);
    EXPECT_EQ(runLints({&g2}, ctx, {"redundant-token-edge"})
                  .warnings(),
              0);
}

TEST(LintRules, DeadTokenSinkDetected)
{
    Graph g;
    g.name = "t";
    g.initialToken = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* st = addStore(g, {g.initialToken, 0}, 0);
    // Token plumbing hanging off the store that orders nothing.
    Node* comb = g.newNode(NodeKind::Combine, VT::Token, 0);
    g.addInput(comb, {st, 0});

    LintContext ctx;
    LintReport report = runLints({&g}, ctx, {"dead-token-sink"});
    ASSERT_EQ(report.warnings(), 1) << reportFingerprint(report);
    EXPECT_EQ(report.findings[0].nodeA, comb->id);

    // The same combine feeding a second store is load-bearing.
    addStore(g, {comb, 0}, 0);
    EXPECT_EQ(runLints({&g}, ctx, {"dead-token-sink"}).warnings(), 0);
}

TEST(LintRules, UnprovablePragmaDetected)
{
    Graph g;
    g.name = "t";
    g.initialToken = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* st = addStore(g, {g.initialToken, 0}, 2);
    st->rwSet.insert(3);  // one access touching both "independent" locs

    AliasOracle oracle;
    oracle.addExternal(2);
    oracle.addExternal(3);
    oracle.addIndependent(2, 3);
    LintContext ctx;
    ctx.oracle = &oracle;
    LintReport report = runLints({&g}, ctx, {"unprovable-pragma"});
    ASSERT_EQ(report.warnings(), 1) << reportFingerprint(report);
    EXPECT_EQ(report.findings[0].nodeA, st->id);

    // An access touching only one side supports the claim.
    st->rwSet = LocationSet::single(2);
    EXPECT_EQ(runLints({&g}, ctx, {"unprovable-pragma"}).warnings(),
              0);
}

TEST(LintRules, MergeableResidueDetected)
{
    Graph g;
    g.name = "t";
    g.initialToken = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* addr = g.newConst(64, VT::Word, 0);
    Node* l1 = g.newNode(NodeKind::Load, VT::Word, 0);
    g.addInput(l1, {g.truePred(0), 0});
    g.addInput(l1, {g.initialToken, 0});
    g.addInput(l1, {addr, 0});
    Node* l2 = g.newNode(NodeKind::Load, VT::Word, 0);
    g.addInput(l2, {g.truePred(0), 0});
    g.addInput(l2, {g.initialToken, 0});
    g.addInput(l2, {addr, 0});

    LintContext ctx;
    LintReport report = runLints({&g}, ctx, {"mergeable-residue"});
    ASSERT_EQ(report.infos(), 1) << reportFingerprint(report);
    EXPECT_EQ(report.findings[0].nodeA, l1->id);
    EXPECT_EQ(report.findings[0].nodeB, l2->id);

    // Different token sources (one load ordered after a store) mean
    // the merger could change behavior: not residue.
    Node* st = addStore(g, {g.initialToken, 0}, 0);
    g.setInput(l2, 1, {st, 0});
    EXPECT_EQ(runLints({&g}, ctx, {"mergeable-residue"}).infos(), 0);
}

// ---------------------------------------------------------------------
// Checker internals on real compiles
// ---------------------------------------------------------------------

TEST(OrderingChecker, QueriesAreConsistentOnCompiledGraphs)
{
    CompileResult r = compileSource(
        "int a[8];"
        "int fill(int n) { int i;"
        " for (i = 0; i < n; i++) a[i & 7] = i + 2; return a[0]; }");
    ASSERT_TRUE(r.ok());
    const Graph* g = r.graph("fill");
    ASSERT_NE(g, nullptr);
    OrderingChecker checker(*g, &r.cfg->oracle, r.layout.get());

    EXPECT_FALSE(checker.sideEffects().empty());
    EXPECT_FALSE(checker.tokenNodes().empty());
    EXPECT_GT(checker.stats().tokenEdges, 0);
    for (const Node* a : checker.sideEffects()) {
        // A side effect's ordering sources exist and produce tokens.
        for (const Node* src : checker.orderingSources(a)) {
            EXPECT_NE(src->kind, NodeKind::Combine);
            EXPECT_TRUE(checker.tokenReaches(src, a))
                << src->id << " -> " << a->id;
        }
        for (const Node* b : checker.sideEffects()) {
            if (a == b)
                continue;
            // ordered() is the symmetric closure of tokenReaches.
            EXPECT_EQ(checker.ordered(a, b),
                      checker.tokenReaches(a, b) ||
                          checker.tokenReaches(b, a));
            // The forward closure is a subset of the full one.
            if (checker.tokenReachesForward(a, b)) {
                EXPECT_TRUE(checker.tokenReaches(a, b));
            }
        }
    }
    std::vector<LintFinding> findings;
    checker.check(findings);
    EXPECT_TRUE(findings.empty());
}

TEST(OrderingChecker, ConstTableLoadsAreExemptFromConflicts)
{
    // A load from a const table never conflicts with stores: §4.2
    // detaches immutable loads, and the checker must not re-demand an
    // ordering the passes legitimately erased.
    const char* src =
        "const int t[4] = {1, 2, 3, 4};"
        "int b[4];"
        "int f(int n) { int i; int s = 0;"
        " for (i = 0; i < n; i++) { b[i & 3] = i; s += t[i & 3]; }"
        " return s; }";
    for (OptLevel level :
         {OptLevel::None, OptLevel::Medium, OptLevel::Full}) {
        CompileResult r =
            compileSource(src, CompileOptions().opt(level));
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(lintCompiled(r, {"ordering-soundness"}).errors(), 0)
            << optLevelName(level);
    }
}

// ---------------------------------------------------------------------
// Framework plumbing
// ---------------------------------------------------------------------

TEST(LintFramework, RegistryNamesAndNormalization)
{
    LintRegistry& reg = LintRegistry::global();
    for (const std::string& name : standardLintNames()) {
        EXPECT_TRUE(reg.has(name)) << name;
        std::unique_ptr<LintRule> rule = reg.create(name);
        ASSERT_NE(rule, nullptr);
        EXPECT_FALSE(std::string(rule->description()).empty());
    }
    // '-' and '_' are interchangeable, unknown names are fatal.
    EXPECT_TRUE(reg.has("ordering_soundness"));
    EXPECT_TRUE(reg.has("ordering-soundness"));
    EXPECT_THROW(reg.create("no-such-rule"), FatalError);
    EXPECT_THROW(
        runLints({}, LintContext(), {"bogus"}), FatalError);
}

TEST(LintFramework, StatsAndSeverityCounters)
{
    Graph g;
    g.name = "t";
    g.initialToken = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* s1 = addStore(g, {g.initialToken, 0}, 0);
    addStore(g, {g.initialToken, 0}, 0);
    (void)s1;

    AliasOracle oracle;
    StatSet stats;
    LintContext ctx;
    ctx.oracle = &oracle;
    ctx.stats = &stats;
    LintReport report = runLints({&g}, ctx);
    EXPECT_EQ(report.errors(), 1);
    EXPECT_EQ(stats.get("analysis.findings"),
              static_cast<int64_t>(report.findings.size()));
    EXPECT_EQ(stats.get("analysis.errors"), 1);
    EXPECT_EQ(stats.get("analysis.ordering_soundness.count"), 1);

    // Findings render with rule, severity, function and node ids.
    const LintFinding& f = report.findings[0];
    EXPECT_NE(f.str().find("[error] ordering-soundness in 't'"),
              std::string::npos)
        << f.str();
    EXPECT_NE(f.json().find("\"rule\": \"ordering-soundness\""),
              std::string::npos)
        << f.json();
}

// ---------------------------------------------------------------------
// Verifier tightening: token-typed value operators are rejected
// ---------------------------------------------------------------------

TEST(VerifierTightening, TokenTypedValueOperatorsRejected)
{
    Graph g;
    g.name = "t";
    Node* it = g.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* neg = g.newArith1(Op::Neg, {it, 0}, 0, VT::Token);
    (void)neg;
    std::vector<std::string> problems = verifyGraph(g);
    ASSERT_FALSE(problems.empty());
    bool found = false;
    for (const std::string& p : problems)
        if (p.find("token-typed value operator") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << problems[0];

    // Token-typed Mux smuggling a token past the ordering analyses.
    Graph g2;
    g2.name = "t2";
    Node* it2 = g2.newNode(NodeKind::InitialToken, VT::Token, 0);
    Node* mux = g2.newNode(NodeKind::Mux, VT::Token, 0);
    g2.addInput(mux, {g2.truePred(0), 0});
    g2.addInput(mux, {it2, 0});
    bool flagged = false;
    for (const std::string& p : verifyGraph(g2))
        if (p.find("token-typed value operator") != std::string::npos)
            flagged = true;
    EXPECT_TRUE(flagged);

    // Compiled graphs never trip the new rule.
    CompileResult r = compileSource(
        "int a[4]; int f(int n) { a[n & 3] = n; return a[0]; }");
    for (const auto& cg : r.graphs)
        EXPECT_TRUE(verifyGraph(*cg).empty()) << cg->name;
}

} // namespace
