/**
 * @file
 * Dominator tree and natural-loop detection over hand-built CFGs.
 */
#include <gtest/gtest.h>

#include <map>

#include "cfg/dominators.h"
#include "cfg/loops.h"
#include "cfg/lower.h"
#include "test_util.h"

using namespace cash;

namespace {

/** Build a CFG skeleton from an edge list. */
CfgFunction
makeCfg(int blocks, const std::vector<std::pair<int, int>>& edges)
{
    CfgFunction fn;
    for (int i = 0; i < blocks; i++)
        fn.newBlock();
    // Determine terminators from out-degree.
    std::map<int, std::vector<int>> out;
    for (auto [a, b] : edges)
        out[a].push_back(b);
    for (int i = 0; i < blocks; i++) {
        auto& succs = out[i];
        BasicBlock* b = fn.block(i);
        if (succs.empty()) {
            b->term.kind = Terminator::Kind::Return;
        } else if (succs.size() == 1) {
            b->term.kind = Terminator::Kind::Jump;
            b->term.target0 = succs[0];
        } else {
            b->term.kind = Terminator::Kind::CondBranch;
            b->term.cond = Operand::regOf(fn.newReg());
            b->term.target0 = succs[0];
            b->term.target1 = succs[1];
        }
    }
    fn.entry = 0;
    fn.computeEdges();
    return fn;
}

TEST(Dominators, Diamond)
{
    //    0 → {1,2} → 3
    CfgFunction fn = makeCfg(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
    DominatorTree dom(fn);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 0);
    EXPECT_EQ(dom.idom(3), 0);
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_TRUE(dom.dominates(3, 3));
}

TEST(Dominators, Chain)
{
    CfgFunction fn = makeCfg(3, {{0, 1}, {1, 2}});
    DominatorTree dom(fn);
    EXPECT_EQ(dom.idom(2), 1);
    EXPECT_TRUE(dom.dominates(0, 2));
    EXPECT_TRUE(dom.dominates(1, 2));
}

TEST(Dominators, LoopBackEdgeDoesNotBreakDominance)
{
    // 0 → 1 → 2 → 1, 2 → 3
    CfgFunction fn = makeCfg(4, {{0, 1}, {1, 2}, {2, 1}, {2, 3}});
    DominatorTree dom(fn);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 1);
    EXPECT_EQ(dom.idom(3), 2);
}

TEST(Dominators, RpoCoversReachableOnly)
{
    CfgFunction fn = makeCfg(4, {{0, 1}, {1, 2}});  // 3 unreachable
    DominatorTree dom(fn);
    EXPECT_EQ(dom.rpo().size(), 3u);
    EXPECT_EQ(dom.rpoIndex(3), -1);
}

TEST(Loops, SimpleLoopDetected)
{
    CfgFunction fn = makeCfg(4, {{0, 1}, {1, 2}, {2, 1}, {1, 3}});
    DominatorTree dom(fn);
    LoopForest loops(fn, dom);
    ASSERT_EQ(loops.loops().size(), 1u);
    const NaturalLoop& l = loops.loops()[0];
    EXPECT_EQ(l.header, 1);
    EXPECT_TRUE(l.blocks.count(1));
    EXPECT_TRUE(l.blocks.count(2));
    EXPECT_FALSE(l.blocks.count(3));
    EXPECT_TRUE(loops.isBackEdge(2, 1));
    EXPECT_FALSE(loops.isBackEdge(0, 1));
}

TEST(Loops, NestedLoopsHaveDepths)
{
    // 0 → 1(outer hdr) → 2(inner hdr) → 3 → 2, 3 → 4 → 1, 4 → 5
    CfgFunction fn = makeCfg(
        6, {{0, 1}, {1, 2}, {2, 3}, {3, 2}, {3, 4}, {4, 1}, {4, 5}});
    DominatorTree dom(fn);
    LoopForest loops(fn, dom);
    ASSERT_EQ(loops.loops().size(), 2u);
    int inner = loops.innermostLoopOf(3);
    int outer = loops.innermostLoopOf(4);
    ASSERT_GE(inner, 0);
    ASSERT_GE(outer, 0);
    EXPECT_NE(inner, outer);
    EXPECT_EQ(loops.loops()[inner].depth, 2);
    EXPECT_EQ(loops.loops()[outer].depth, 1);
    EXPECT_EQ(loops.loops()[inner].parent, outer);
}

TEST(Loops, SelfLoop)
{
    CfgFunction fn = makeCfg(3, {{0, 1}, {1, 1}, {1, 2}});
    DominatorTree dom(fn);
    LoopForest loops(fn, dom);
    ASSERT_EQ(loops.loops().size(), 1u);
    EXPECT_EQ(loops.loops()[0].header, 1);
    EXPECT_EQ(loops.loops()[0].blocks.size(), 1u);
}

TEST(Loops, MiniCLoopsFromSource)
{
    Program p = parseProgram(
        "int f(int n) { int s = 0; int i; int j;"
        " for (i = 0; i < n; i++)"
        "   for (j = 0; j < i; j++)"
        "     s += j;"
        " return s; }");
    analyzeProgram(p);
    MemoryLayout layout;
    layout.build(p);
    auto cfg = lowerProgram(p, layout);
    CfgFunction* fn = cfg->find("f");
    DominatorTree dom(*fn);
    LoopForest loops(*fn, dom);
    EXPECT_EQ(loops.loops().size(), 2u);
}

} // namespace
