/**
 * @file
 * Dataflow-simulator semantics: operator behavior, eta/merge/mu
 * protocol, token generators, speculation safety, timing properties.
 */
#include <gtest/gtest.h>

#include "benchsuite/kernels.h"
#include "test_util.h"

using namespace cash;
using testutil::crossCheck;
using testutil::simulate;

namespace {

TEST(Simulator, SpeculativeDivByZeroIsSafe)
{
    // The division is on the not-taken path; spatial execution
    // computes it speculatively and must not trap.
    const char* src = "int f(int a, int b)"
                      "{ int r; if (b != 0) r = a / b; else r = -1;"
                      " return r; }";
    EXPECT_EQ(crossCheck(src, "f", {10, 2}), 5u);
    EXPECT_EQ(crossCheck(src, "f", {10, 0}),
              static_cast<uint32_t>(-1));
}

TEST(Simulator, PredicatedLoadsDoNotTouchMemory)
{
    // Null-guarded deref: the load must not execute when p == 0.
    const char* src = "int f(int usep, int* p)"
                      "{ if (usep) return *p; return 7; }";
    CompileResult r = compileSource(src, {});
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    SimResult out = sim.run("f", {0, 0});  // p = null
    EXPECT_EQ(out.returnValue, 7u);
    EXPECT_EQ(out.stats.get("sim.dynLoads"), 0);
    EXPECT_GE(out.stats.get("sim.nullified"), 1);
}

TEST(Simulator, DynamicCountsMatchWork)
{
    const char* src =
        "int a[64];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) a[i] = i;"
        " int s = 0; for (i = 0; i < n; i++) s += a[i];"
        " return s; }";
    CompileResult r = compileSource(src, {});
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    SimResult out = sim.run("f", {16});
    EXPECT_EQ(out.stats.get("sim.dynStores"), 16);
    EXPECT_EQ(out.stats.get("sim.dynLoads"), 16);
}

TEST(Simulator, MemoryPersistsAcrossRuns)
{
    const char* src = "int g;"
                      "int bump(int v) { g += v; return g; }";
    CompileResult r = compileSource(src, {});
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    EXPECT_EQ(sim.run("bump", {5}).returnValue, 5u);
    EXPECT_EQ(sim.run("bump", {7}).returnValue, 12u);
    sim.reset();
    EXPECT_EQ(sim.run("bump", {1}).returnValue, 1u);
}

TEST(Simulator, RecursionAllocatesFrames)
{
    const char* src =
        "int sumbuf(int n) {"
        "  int t[4];"
        "  int i;"
        "  for (i = 0; i < 4; i++) t[i] = n + i;"
        "  int s = t[0] + t[1] + t[2] + t[3];"
        "  if (n <= 0) return s;"
        "  return s + sumbuf(n - 1);"
        "}";
    crossCheck(src, "sumbuf", {6});
}

TEST(Simulator, CallResultsAndTokensFlow)
{
    const char* src =
        "int g;"
        "void put(int v) { g = v; }"
        "int get(void) { return g; }"
        "int f(int v) { put(v * 3); return get() + 1; }";
    EXPECT_EQ(crossCheck(src, "f", {5}), 16u);
}

TEST(Simulator, LoopCyclesScaleLinearly)
{
    const char* src = "int f(int n) { int s = 0; int i;"
                      " for (i = 0; i < n; i++) s += i;"
                      " return s; }";
    SimResult small = simulate(src, "f", {64});
    SimResult large = simulate(src, "f", {256});
    double ratio = static_cast<double>(large.cycles) /
                   static_cast<double>(small.cycles);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

TEST(Simulator, RealisticMemorySlowerThanPerfect)
{
    // Pointer chasing: each load's address depends on the previous
    // load's data, so cache latency sits squarely on the critical
    // path and cannot be hidden by pipelining.
    const char* src =
        "int nxt[4096];"
        "int f(int n) { int i; int cur = 0;"
        " for (i = 0; i < 4096; i++) nxt[i] = (i * 1117 + 7) & 4095;"
        " for (i = 0; i < n; i++) cur = nxt[cur];"
        " return cur; }";
    SimResult ideal = simulate(src, "f", {2048}, OptLevel::Full,
                               MemConfig::perfectMemory());
    SimResult real = simulate(src, "f", {2048}, OptLevel::Full,
                              MemConfig::realistic(2));
    EXPECT_EQ(real.returnValue, ideal.returnValue);
    EXPECT_GT(real.cycles, ideal.cycles);
    EXPECT_GT(real.stats.get("sim.mem.l1.misses"), 0);
}

TEST(Simulator, DeadlockIsDetected)
{
    // An infinite loop must be caught by the event limit rather than
    // hanging — reported as a degraded outcome, not an exception.
    const char* src = "int f(void) { int i = 0;"
                      " while (1) i++; return i; }";
    CompileResult r = compileSource(src, {});
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    sim.setMaxEvents(100000);
    SimResult sr = sim.run("f", {});
    EXPECT_TRUE(!sr.ok());
    EXPECT_EQ(static_cast<int>(sr.outcome),
              static_cast<int>(SimOutcome::EventLimit));
    EXPECT_TRUE(sr.error.find("event limit") != std::string::npos);
    EXPECT_EQ(sr.stats.get("sim.outcome.event_limit"), 1);
}

TEST(Simulator, ZeroTripLoop)
{
    const char* src = "int a[4];"
                      "int f(int n) { int s = 9; int i;"
                      " for (i = 0; i < n; i++) s += a[i];"
                      " return s; }";
    EXPECT_EQ(crossCheck(src, "f", {0}), 9u);
}

TEST(Simulator, LoopReentry)
{
    // The same loop body re-executed by an outer loop: the mu-merges
    // must cleanly switch back to their initial streams.
    const char* src =
        "int f(int n) { int total = 0; int k; int i;"
        " for (k = 0; k < 3; k++) {"
        "   int s = 0;"
        "   for (i = 0; i < n; i++) s += i + k;"
        "   total += s;"
        " }"
        " return total; }";
    crossCheck(src, "f", {5});
    crossCheck(src, "f", {0});
}

TEST(Simulator, TokenGeneratorSemantics)
{
    // Exercise tk(d) through the decoupled stencil at several sizes:
    // results must match the interpreter exactly (ordering preserved)
    // while decoupling overlaps iterations.
    const char* src =
        "int cells[512];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) cells[i] = i;"
        " for (i = 0; i + 3 < n; i++)"
        "   cells[i + 3] = cells[i] + 1;"
        " return cells[n - 1]; }";
    for (uint32_t n : {4u, 5u, 8u, 64u, 301u})
        crossCheck(src, "f", {n});
}

TEST(Simulator, PortContentionThrottles)
{
    const char* src =
        "int xs[4096]; int ys[4096]; int zs[4096]; int ws[4096];"
        "int f(int n) { int i;"
        " for (i = 0; i < n; i++) {"
        "   xs[i] = i; ys[i] = i; zs[i] = i; ws[i] = i;"
        " }"
        " return n; }";
    SimResult one = simulate(src, "f", {1024}, OptLevel::Full,
                             MemConfig::realistic(1));
    SimResult four = simulate(src, "f", {1024}, OptLevel::Full,
                              MemConfig::realistic(4));
    EXPECT_GT(one.cycles, four.cycles);
}

TEST(Simulator, DoWhileAtFunctionEntry)
{
    // The entry hyperblock itself is the loop header: its mu-merges
    // take one-shot initial values plus back-edge streams.
    const char* src =
        "int f(int n) { int s = 0;"
        " do { s += n; n -= 1; } while (n > 0);"
        " return s; }";
    crossCheck(src, "f", {5});
    crossCheck(src, "f", {1});
    crossCheck(src, "f", {0});  // body still runs once
}

TEST(Simulator, PipeliningRaisesMemoryOccupancy)
{
    // §6's point made dynamic: after ring splitting, many iterations'
    // accesses are outstanding at once.
    const Kernel& k = kernelByName("saxpy");
    SimResult none = testutil::simulate(k.source, k.entry, k.args,
                                        OptLevel::None,
                                        MemConfig::realistic(2));
    SimResult fullr = testutil::simulate(k.source, k.entry, k.args,
                                         OptLevel::Full,
                                         MemConfig::realistic(2));
    EXPECT_GT(fullr.stats.get("sim.mem.lsq.maxOccupancy"),
              none.stats.get("sim.mem.lsq.maxOccupancy"));
    EXPECT_GT(fullr.stats.get("sim.opsPerCycle_x100"),
              none.stats.get("sim.opsPerCycle_x100"));
}

TEST(Simulator, StackOverflowDetected)
{
    const char* src = "int f(int n) { int t[512]; t[0] = n;"
                      " if (n <= 0) return t[0];"
                      " return f(n - 1) + t[0]; }";
    CompileResult r = compileSource(src, {});
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::perfectMemory());
    SimResult sr = sim.run("f", {5000});
    EXPECT_TRUE(!sr.ok());
    EXPECT_EQ(static_cast<int>(sr.outcome),
              static_cast<int>(SimOutcome::StackOverflow));
    EXPECT_TRUE(sr.error.find("stack overflow") != std::string::npos);
    EXPECT_EQ(sr.stats.get("sim.outcome.stack_overflow"), 1);
}

} // namespace
