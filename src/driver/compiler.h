/**
 * @file
 * The CASH compilation pipeline: Mini-C source → AST → CFG →
 * hyperblocks → Pegasus → optimizations → spatial simulation.
 *
 * This is the library's primary entry point:
 * @code
 *   CompileResult r = compileSource(
 *       src, CompileOptions().opt(OptLevel::Full).jobs(8));
 *   DataflowSimulator sim(r.graphPtrs(), *r.layout,
 *                         MemConfig::realistic());
 *   SimResult out = sim.run("main", {});
 * @endcode
 *
 * Each function compiles to an independent Pegasus graph (§3), so the
 * optimization phase runs the per-function pipelines on a
 * work-stealing thread pool (`jobs()`).  Results are deterministic:
 * stats, traces and graphs are merged in function-declaration order,
 * so the output is byte-identical at any job count.
 *
 * See docs/API.md for the stable public surface.
 */
#ifndef CASH_DRIVER_COMPILER_H
#define CASH_DRIVER_COMPILER_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/modref.h"
#include "cfg/cfg.h"
#include "frontend/ast.h"
#include "frontend/layout.h"
#include "opt/pass.h"
#include "pegasus/graph.h"
#include "support/stats.h"

namespace cash {

/**
 * Compilation options, usable both ways:
 *   - aggregate (source-compatible with older code):
 *     `CompileOptions co; co.level = OptLevel::Medium;`
 *   - fluent builder:
 *     `CompileOptions().opt(OptLevel::Full).jobs(8).trace(&rec)`
 *
 * New fields must be appended at the END of the data members: several
 * callers positionally aggregate-initialize this struct.
 */
struct CompileOptions
{
    OptLevel level = OptLevel::Full;
    /** Run the graph verifier after construction and each pass. */
    bool verify = true;
    /**
     * Use read/write sets during token construction (§3.3).  Turned
     * off by OptLevel::None to produce the coarse program-order token
     * chain.
     */
    bool pointsToInConstruction = true;
    /**
     * Observability sink: when set and enabled, the pipeline records
     * per-phase spans and the pass manager records one span per pass
     * run (see docs/OBSERVABILITY.md).
     */
    TraceRecorder* tracer = nullptr;
    /**
     * Worker threads for per-function optimization: 0 = one per
     * hardware thread (the default), 1 = fully serial.  Output is
     * identical at any value; this only trades wall clock.
     */
    int numJobs = 0;
    /**
     * Custom pass pipeline: PassRegistry names run in order (to a
     * fixed point) instead of the standard pipeline of `level`.
     * Empty = standardPipelineNames(level).
     */
    std::vector<std::string> passNames;
    /**
     * Strict mode: disable pass isolation.  A pass that throws or
     * fails verification raises a FatalError immediately instead of
     * being rolled back, quarantined and reported in
     * CompileResult::diagnostics (the default, graceful behavior —
     * see docs/ROBUSTNESS.md).
     */
    bool strict = false;
    /**
     * Deterministic fault-injection plan (testing); null = the plan
     * from $CASH_INJECT, which is empty unless the variable is set.
     */
    const FaultPlan* faults = nullptr;
    /**
     * Run the independent memory-ordering soundness checker after
     * every pass (docs/ANALYSIS.md).  An error-severity finding is
     * handled like a verifier rejection: rollback + quarantine under
     * isolation, fatal in strict mode.  Off by default (it re-derives
     * the token closure per pass run); `cashc --verify-each-pass`
     * turns it on together with the structural verifier.
     */
    bool orderingChecks = false;
    /**
     * Interprocedural optimization: consume whole-program MOD/REF
     * summaries during construction and run `interproc_token_pruning`
     * in the Full pipeline (the TargetSpec `ipo` knob).  Off: calls
     * keep their conservative Top effects and the pruning pass is
     * dropped from the default pipeline (an explicit `passNames` list
     * is honored as given).  Summaries are still computed for
     * reporting either way.
     */
    bool interproc = true;

    // -- fluent builder -----------------------------------------------
    CompileOptions& opt(OptLevel l) { level = l; return *this; }
    CompileOptions& jobs(int n) { numJobs = n; return *this; }
    CompileOptions& trace(TraceRecorder* t) { tracer = t; return *this; }
    CompileOptions& verification(bool on) { verify = on; return *this; }
    CompileOptions& pointsTo(bool on)
    {
        pointsToInConstruction = on;
        return *this;
    }
    CompileOptions& passes(std::vector<std::string> names)
    {
        passNames = std::move(names);
        return *this;
    }
    CompileOptions& strictMode(bool on) { strict = on; return *this; }
    CompileOptions& orderingCheck(bool on)
    {
        orderingChecks = on;
        return *this;
    }
    CompileOptions& inject(const FaultPlan* plan)
    {
        faults = plan;
        return *this;
    }
    CompileOptions& interprocOpt(bool on)
    {
        interproc = on;
        return *this;
    }
};

/** Everything produced by one compilation. */
struct CompileResult
{
    std::shared_ptr<Program> ast;
    std::shared_ptr<MemoryLayout> layout;
    std::unique_ptr<CfgProgram> cfg;
    /** One Pegasus graph per function, in declaration order. */
    std::vector<std::unique_ptr<Graph>> graphs;
    /**
     * Whole-program MOD/REF summaries (analysis/modref.h), computed at
     * every level — `cashc --dump-summaries` and the stats-JSON
     * `analysis.summaries` block render from here.
     */
    std::shared_ptr<ModRefSummaries> summaries;
    StatSet stats;
    /**
     * Structured diagnostics from isolated pass failures, in
     * function-declaration order (deterministic at any job count).
     * Empty on a fully healthy compilation; each entry corresponds to
     * one rollback+quarantine (or one function whose construction
     * failed verification and was left unoptimized).
     */
    std::vector<PassFailure> diagnostics;

    /** True when no pass failed and nothing was quarantined. */
    bool ok() const { return diagnostics.empty(); }

    const Graph* graph(const std::string& name) const;
    std::vector<const Graph*> graphPtrs() const;

    /** Static memory-operation counts over all graphs. */
    int64_t staticLoads() const;
    int64_t staticStores() const;
    int64_t totalNodes() const;
};

/** Compile Mini-C source text through the full pipeline. */
CompileResult compileSource(const std::string& source,
                            const CompileOptions& options = {});

} // namespace cash

#endif // CASH_DRIVER_COMPILER_H
