/**
 * @file
 * The CASH compilation pipeline: Mini-C source → AST → CFG →
 * hyperblocks → Pegasus → optimizations → spatial simulation.
 *
 * This is the library's primary entry point:
 * @code
 *   CompileResult r = compileSource(src, {OptLevel::Full});
 *   DataflowSimulator sim(r.graphPtrs(), *r.layout,
 *                         MemConfig::realistic());
 *   SimResult out = sim.run("main", {});
 * @endcode
 */
#ifndef CASH_DRIVER_COMPILER_H
#define CASH_DRIVER_COMPILER_H

#include <memory>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "frontend/ast.h"
#include "frontend/layout.h"
#include "opt/pass.h"
#include "pegasus/graph.h"
#include "support/stats.h"

namespace cash {

struct CompileOptions
{
    OptLevel level = OptLevel::Full;
    /** Run the graph verifier after construction and each pass. */
    bool verify = true;
    /**
     * Use read/write sets during token construction (§3.3).  Turned
     * off by OptLevel::None to produce the coarse program-order token
     * chain.
     */
    bool pointsToInConstruction = true;
    /**
     * Observability sink: when set and enabled, the pipeline records
     * per-phase spans and the pass manager records one span per pass
     * run (see docs/OBSERVABILITY.md).
     */
    TraceRecorder* tracer = nullptr;
};

/** Everything produced by one compilation. */
struct CompileResult
{
    std::shared_ptr<Program> ast;
    std::shared_ptr<MemoryLayout> layout;
    std::unique_ptr<CfgProgram> cfg;
    std::vector<std::unique_ptr<Graph>> graphs;
    StatSet stats;

    const Graph* graph(const std::string& name) const;
    std::vector<const Graph*> graphPtrs() const;

    /** Static memory-operation counts over all graphs. */
    int64_t staticLoads() const;
    int64_t staticStores() const;
    int64_t totalNodes() const;
};

/** Compile Mini-C source text through the full pipeline. */
CompileResult compileSource(const std::string& source,
                            const CompileOptions& options = {});

} // namespace cash

#endif // CASH_DRIVER_COMPILER_H
