#include "driver/target_spec.h"

#include "support/strings.h"

namespace cash {

Status
parseOptLevel(const std::string& name, OptLevel* out)
{
    if (name == "none" || name == "0" || name == "O0")
        *out = OptLevel::None;
    else if (name == "medium" || name == "1" || name == "O1")
        *out = OptLevel::Medium;
    else if (name == "full" || name == "2" || name == "3" ||
             name == "O2" || name == "O3")
        *out = OptLevel::Full;
    else
        return Status::error(ErrorCode::InternalError,
                             "unknown opt level '" + name +
                                 "' (want none|medium|full)");
    return Status::ok();
}

Status
parseMemSpec(const std::string& name, MemConfig* out)
{
    if (name == "perfect")
        *out = MemConfig::perfectMemory();
    else if (name == "real1")
        *out = MemConfig::realistic(1);
    else if (name == "real2")
        *out = MemConfig::realistic(2);
    else if (name == "real4")
        *out = MemConfig::realistic(4);
    else
        return Status::error(ErrorCode::InternalError,
                             "unknown memory system '" + name +
                                 "' (want perfect|real1|real2|real4)");
    return Status::ok();
}

Status
parseSimEngine(const std::string& name, SimEngine* out)
{
    if (name == "event")
        *out = SimEngine::Event;
    else if (name == "macro")
        *out = SimEngine::Macro;
    else
        return Status::error(ErrorCode::InternalError,
                             "unknown simulation engine '" + name +
                                 "' (want event|macro)");
    return Status::ok();
}

Status
TargetSpec::setField(const std::string& key, const std::string& value)
{
    auto fieldError = [&](const Status& st) {
        return Status::error(st.code(), "target field '" + key + "': " +
                                            st.message());
    };
    if (key == "opt") {
        Status st = parseOptLevel(value, &level);
        if (!st)
            return fieldError(st);
    } else if (key == "mem") {
        MemConfig probe;
        Status st = parseMemSpec(value, &probe);
        if (!st)
            return fieldError(st);
        mem = value;
    } else if (key == "engine") {
        SimEngine probe;
        Status st = parseSimEngine(value, &probe);
        if (!st)
            return fieldError(st);
        engine = value;
    } else if (key == "fabric") {
        Status st = FabricModel::parse(value, &fabric);
        if (!st)
            return fieldError(st);
    } else if (key == "ipo") {
        if (value == "on" || value == "true" || value == "1")
            interproc = true;
        else if (value == "off" || value == "false" || value == "0")
            interproc = false;
        else
            return fieldError(Status::error(
                ErrorCode::InternalError,
                "unknown ipo setting '" + value + "' (want on|off)"));
    } else {
        return Status::error(ErrorCode::InternalError,
                             "unknown target field '" + key +
                                 "' (want opt|mem|engine|fabric|ipo)");
    }
    return Status::ok();
}

Status
TargetSpec::merge(const std::string& spec)
{
    TargetSpec t = *this;
    for (const std::string& raw : split(spec, ',')) {
        const std::string field = trim(raw);
        if (field.empty())
            continue;
        size_t eq = field.find('=');
        if (eq == std::string::npos)
            return Status::error(
                ErrorCode::InternalError,
                "bad target spec field '" + field +
                    "': expected key=value (e.g. "
                    "opt=O2,mem=real2,engine=macro,fabric=4x4:hop2)");
        Status st =
            t.setField(field.substr(0, eq), field.substr(eq + 1));
        if (!st)
            return st;
    }
    *this = t;
    return Status::ok();
}

Status
TargetSpec::parse(const std::string& spec, TargetSpec* out)
{
    TargetSpec t;
    Status st = t.merge(spec);
    if (st)
        *out = t;
    return st;
}

std::string
TargetSpec::str() const
{
    std::string s = std::string("opt=") + optLevelName(level) +
                    ",mem=" + mem + ",engine=" + engine;
    // Non-default only: default targets keep their historical spec
    // strings (and with them their service cache keys) byte-identical.
    if (!interproc)
        s += ",ipo=off";
    if (fabric != FabricModel())
        s += ",fabric=" + fabric.str();
    return s;
}

Status
TargetSpec::resolve(MemConfig* mc, SimEngine* se) const
{
    Status st = parseMemSpec(mem, mc);
    if (!st)
        return st;
    return parseSimEngine(engine, se);
}

} // namespace cash
