#include <chrono>

#include "driver/compiler.h"

#include "analysis/points_to.h"
#include "cfg/lower.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "pegasus/builder.h"
#include "pegasus/verifier.h"

namespace cash {

const Graph*
CompileResult::graph(const std::string& name) const
{
    for (const auto& g : graphs)
        if (g->name == name)
            return g.get();
    return nullptr;
}

std::vector<const Graph*>
CompileResult::graphPtrs() const
{
    std::vector<const Graph*> out;
    for (const auto& g : graphs)
        out.push_back(g.get());
    return out;
}

int64_t
CompileResult::staticLoads() const
{
    int64_t n = 0;
    for (const auto& g : graphs)
        g->forEach([&](Node* node) {
            if (node->kind == NodeKind::Load)
                n++;
        });
    return n;
}

int64_t
CompileResult::staticStores() const
{
    int64_t n = 0;
    for (const auto& g : graphs)
        g->forEach([&](Node* node) {
            if (node->kind == NodeKind::Store)
                n++;
        });
    return n;
}

int64_t
CompileResult::totalNodes() const
{
    int64_t n = 0;
    for (const auto& g : graphs)
        n += g->numLive();
    return n;
}

CompileResult
compileSource(const std::string& source, const CompileOptions& options)
{
    using Clock = std::chrono::steady_clock;
    auto us = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   b - a)
            .count();
    };

    TraceRecorder* tracer = options.tracer;
    CompileResult r;
    ScopedTimer whole(tracer, "compile", "compile");
    whole.arg("level", optLevelName(options.level));

    Clock::time_point t0 = Clock::now();
    {
        ScopedTimer t(tracer, "parse+sema", "frontend");
        r.ast = std::make_shared<Program>(parseProgram(source));
        analyzeProgram(*r.ast);
    }
    {
        ScopedTimer t(tracer, "layout", "frontend");
        r.layout = std::make_shared<MemoryLayout>();
        r.layout->build(*r.ast);
    }
    {
        ScopedTimer t(tracer, "lower", "frontend");
        r.cfg = lowerProgram(*r.ast, *r.layout);
    }
    {
        ScopedTimer t(tracer, "points-to", "frontend");
        runPointsTo(*r.cfg, *r.ast, *r.layout);
    }

    BuildOptions bo;
    bo.usePointsTo =
        options.pointsToInConstruction && options.level != OptLevel::None;
    {
        ScopedTimer t(tracer, "build-pegasus", "frontend");
        r.graphs = buildPegasus(*r.cfg, *r.ast, *r.layout, bo);
    }
    Clock::time_point t1 = Clock::now();

    for (auto& g : r.graphs) {
        if (options.verify)
            verifyOrDie(*g, "after construction of " + g->name);
        r.stats.add("ir.nodes.initial", g->numLive());
    }

    OptContext ctx;
    ctx.oracle = &r.cfg->oracle;
    ctx.layout = r.layout.get();
    ctx.stats = &r.stats;
    ctx.tracer = tracer;
    ctx.verifyAfterEachPass = options.verify;

    for (auto& g : r.graphs) {
        int rounds = optimizeGraph(*g, options.level, ctx);
        r.stats.add("opt.rounds", rounds);
        if (options.verify)
            verifyOrDie(*g, "after optimizing " + g->name);
        r.stats.add("ir.nodes.final", g->numLive());
    }
    Clock::time_point t2 = Clock::now();

    r.stats.set("ir.static.loads", r.staticLoads());
    r.stats.set("ir.static.stores", r.staticStores());
    // §7.1: CASH spends about half its time in the optimizers; record
    // the same split (verification time counts toward optimization).
    r.stats.set("time.frontend.us", us(t0, t1));
    r.stats.set("time.optimize.us", us(t1, t2));
    return r;
}

} // namespace cash
