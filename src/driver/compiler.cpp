#include <algorithm>
#include <chrono>

#include "driver/compiler.h"

#include "analysis/interproc.h"
#include "analysis/points_to.h"
#include "cfg/lower.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "pegasus/builder.h"
#include "pegasus/verifier.h"
#include "support/thread_pool.h"

namespace cash {

const Graph*
CompileResult::graph(const std::string& name) const
{
    for (const auto& g : graphs)
        if (g->name == name)
            return g.get();
    return nullptr;
}

std::vector<const Graph*>
CompileResult::graphPtrs() const
{
    std::vector<const Graph*> out;
    for (const auto& g : graphs)
        out.push_back(g.get());
    return out;
}

int64_t
CompileResult::staticLoads() const
{
    int64_t n = 0;
    for (const auto& g : graphs)
        g->forEach([&](Node* node) {
            if (node->kind == NodeKind::Load)
                n++;
        });
    return n;
}

int64_t
CompileResult::staticStores() const
{
    int64_t n = 0;
    for (const auto& g : graphs)
        g->forEach([&](Node* node) {
            if (node->kind == NodeKind::Store)
                n++;
        });
    return n;
}

int64_t
CompileResult::totalNodes() const
{
    int64_t n = 0;
    for (const auto& g : graphs)
        n += g->numLive();
    return n;
}

namespace {

/**
 * Per-function output slot for the parallel optimization phase.  Each
 * worker records exclusively into its task's slot; the owner merges
 * the slots in function-declaration order, so stats and traces are
 * byte-identical at any job count.
 */
struct FuncOptSlot
{
    StatSet stats;
    TraceRecorder trace;
    std::vector<PassFailure> failures;
};

} // namespace

CompileResult
compileSource(const std::string& source, const CompileOptions& options)
{
    using Clock = std::chrono::steady_clock;
    auto us = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   b - a)
            .count();
    };

    TraceRecorder* tracer = options.tracer;
    CompileResult r;
    ScopedTimer whole(tracer, "compile", "compile");
    whole.arg("level", optLevelName(options.level));

    Clock::time_point t0 = Clock::now();
    {
        ScopedTimer t(tracer, "parse+sema", "frontend");
        r.ast = std::make_shared<Program>(parseProgram(source));
        analyzeProgram(*r.ast);
    }
    {
        ScopedTimer t(tracer, "layout", "frontend");
        r.layout = std::make_shared<MemoryLayout>();
        r.layout->build(*r.ast);
    }
    {
        ScopedTimer t(tracer, "lower", "frontend");
        r.cfg = lowerProgram(*r.ast, *r.layout);
    }
    {
        ScopedTimer t(tracer, "points-to", "frontend");
        runPointsTo(*r.cfg, *r.ast, *r.layout);
    }
    // Whole-program MOD/REF summaries: always computed (reporting is
    // level-independent); the per-call-site stamps that construction
    // and the pruning pass consume are only planted when the ipo knob
    // is on at Full.
    const bool interprocActive = options.interproc &&
                                 options.level == OptLevel::Full &&
                                 options.pointsToInConstruction;
    {
        ScopedTimer t(tracer, "modref", "frontend");
        r.summaries = std::make_shared<ModRefSummaries>(
            computeModRef(*r.cfg, *r.layout, interprocActive));
    }

    BuildOptions bo;
    bo.usePointsTo =
        options.pointsToInConstruction && options.level != OptLevel::None;
    bo.interprocEffects = interprocActive;
    {
        ScopedTimer t(tracer, "build-pegasus", "frontend");
        r.graphs = buildPegasus(*r.cfg, *r.ast, *r.layout, bo);
    }
    Clock::time_point t1 = Clock::now();

    // ------------------------------------------------------------------
    // Per-function optimization, embarrassingly parallel: every
    // function owns an independent Pegasus graph, and the shared
    // analysis inputs (alias oracle, layout) are immutable from here
    // on.  Workers write only their own function's graph and slot.
    // ------------------------------------------------------------------
    std::vector<std::string> pipelineNames =
        options.passNames.empty() ? standardPipelineNames(options.level)
                                  : options.passNames;
    // ipo=off drops the pruning pass from the *default* pipeline; an
    // explicit --passes list runs exactly as written.
    if (options.passNames.empty() && !options.interproc)
        pipelineNames.erase(
            std::remove(pipelineNames.begin(), pipelineNames.end(),
                        std::string("interproc_token_pruning")),
            pipelineNames.end());
    // Resolve the spec up front so unknown names fail before any
    // worker starts.
    PassRegistry::global().createPipeline(pipelineNames);

    // Independent interprocedural model for the per-pass ordering
    // checker: derived from the construction-time graphs (a sound
    // over-approximation of every later pipeline stage), shared
    // immutably by all workers.
    std::unique_ptr<InterprocModel> interprocModel;
    if (options.orderingChecks)
        interprocModel = std::make_unique<InterprocModel>(
            r.graphPtrs(), r.cfg->paramLocation, *r.layout);

    int jobs = options.numJobs > 0 ? options.numJobs
                                   : ThreadPool::hardwareConcurrency();
    jobs = std::max(1, std::min<int>(jobs,
                                     static_cast<int>(r.graphs.size())));
    const bool traceOn = tracer && tracer->enabled();

    // Fault-injection plan: explicit plan, else $CASH_INJECT, else
    // nothing.  Immutable, shared by all workers.
    const FaultPlan* faults = options.faults;
    if (!faults && !FaultPlan::fromEnv().empty())
        faults = &FaultPlan::fromEnv();

    std::vector<FuncOptSlot> slots(r.graphs.size());
    auto optimizeOne = [&](size_t i, int) {
        Graph& g = *r.graphs[i];
        FuncOptSlot& slot = slots[i];
        if (traceOn) {
            slot.trace.syncClockTo(*tracer);
            // Track 0 is the owner thread; give every function its own
            // (deterministic) track.
            slot.trace.setTrackId(static_cast<int>(i) + 1);
            slot.trace.enable();
        }
        if (options.verify) {
            if (options.strict) {
                verifyOrDie(g, "after construction of " + g.name);
            } else {
                // A function whose construction already violates the
                // invariants is left unoptimized (passes assume a
                // well-formed graph); everything else proceeds.
                std::vector<std::string> problems = verifyGraph(g);
                if (!problems.empty()) {
                    PassFailure fail;
                    fail.function = g.name;
                    fail.pass = "<construction>";
                    fail.code = ErrorCode::VerifyError;
                    fail.message =
                        problems[0] + " (" +
                        std::to_string(problems.size()) + " problems)";
                    slot.failures.push_back(std::move(fail));
                    slot.stats.add("opt.construction_verify_failures");
                    slot.stats.add("ir.nodes.initial", g.numLive());
                    slot.stats.add("ir.nodes.final", g.numLive());
                    return;
                }
            }
        }
        slot.stats.add("ir.nodes.initial", g.numLive());

        // Per-worker pass instances: passes may keep scratch state.
        std::vector<std::unique_ptr<Pass>> pipeline =
            PassRegistry::global().createPipeline(pipelineNames);

        OptContext ctx;
        ctx.oracle = &r.cfg->oracle;
        ctx.layout = r.layout.get();
        ctx.stats = &slot.stats;
        ctx.tracer = traceOn ? &slot.trace : nullptr;
        ctx.verifyAfterEachPass = options.verify;
        ctx.checkOrdering = options.orderingChecks;
        ctx.interproc = interprocModel.get();
        ctx.isolatePasses = !options.strict;
        ctx.failures = &slot.failures;
        ctx.faults = faults;

        int rounds = optimizeGraph(g, pipeline, ctx);
        slot.stats.add("opt.rounds", rounds);
        if (options.verify && options.strict)
            verifyOrDie(g, "after optimizing " + g.name);
        slot.stats.add("ir.nodes.final", g.numLive());
    };

    {
        ScopedTimer t(tracer, "optimize", "opt.phase");
        t.arg("jobs", jobs);
        t.arg("functions", static_cast<int64_t>(r.graphs.size()));
        if (jobs <= 1) {
            for (size_t i = 0; i < r.graphs.size(); i++)
                optimizeOne(i, 0);
        } else {
            ThreadPool pool(jobs);
            pool.parallelFor(r.graphs.size(), optimizeOne);
        }
    }
    // Deterministic merge: function-declaration order, single thread.
    for (FuncOptSlot& slot : slots) {
        r.stats.merge(slot.stats);
        for (PassFailure& fail : slot.failures)
            r.diagnostics.push_back(std::move(fail));
        if (traceOn)
            tracer->append(slot.trace);
    }
    Clock::time_point t2 = Clock::now();

    r.stats.set("ir.static.loads", r.staticLoads());
    r.stats.set("ir.static.stores", r.staticStores());
    // §7.1: CASH spends about half its time in the optimizers; record
    // the same split (verification time counts toward optimization).
    r.stats.set("time.frontend.us", us(t0, t1));
    r.stats.set("time.optimize.us", us(t1, t2));
    return r;
}

} // namespace cash
