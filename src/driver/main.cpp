/**
 * @file
 * `cashc` — command-line driver: compile a Mini-C file to Pegasus,
 * optionally dump the graph (text or dot) and run it on the spatial
 * simulator.  All the actual work happens in the shared driver
 * library (driver_lib.h), which `cashd` (docs/SERVICE.md) reuses;
 * this file only translates argv → DriverRequest and
 * DriverReply → stdout/stderr/artifacts.
 *
 * Usage:
 *   cashc [options] file.c
 *     -O none|medium|full   optimization level (default full);
 *                           -O0/-O1/-O2/-O3 alias none/medium/full/full
 *     -j N, --jobs N        optimization worker threads (default: one
 *                           per hardware thread; output is identical
 *                           at any N)
 *     --passes=a,b,c        custom pass pipeline (PassRegistry names)
 *                           instead of the -O standard pipeline
 *     --list-passes         print registered pass names and exit
 *     --dump-cfg            print the three-address CFG
 *     --dump-graph          print the Pegasus graphs (text)
 *     --dump-summaries      print the whole-program MOD/REF summaries
 *                           (per-function sets + per-call-site resolved
 *                           effects; also adds `analysis.summaries` to
 *                           --stats-json, docs/SCHEMAS.md)
 *     --dot                 print Graphviz dot for all graphs
 *     --run f(a,b,...)      simulate calling f with integer args
 *     --target SPEC         the full compile/simulate target in one
 *                           spec (driver/target_spec.h):
 *                           opt=O2,mem=real2,engine=macro,fabric=4x4:hop2
 *                           Fields may repeat/combine with the flags
 *                           below; the last setting of a field wins.
 *     --fabric SPEC         tiled fabric for --run (docs/FABRIC.md),
 *                           e.g. 4x4, 2x2:hop3:credit8; alias for
 *                           --target fabric=SPEC (default 1x1: the
 *                           paper's idealized fabric)
 *     --mem perfect|real1|real2|real4   memory system for --run
 *                           (deprecated alias for --target mem=...)
 *     --engine event|macro  simulation engine for --run (default
 *                           macro: compiled super-operators, same
 *                           cycles/results as event, faster;
 *                           deprecated alias for --target engine=...)
 *     --max-events N        simulator event budget (livelock guard)
 *     --strict              fail fast: pass failures raise immediately
 *                           instead of rollback + quarantine
 *     --verify-each-pass    run the graph verifier AND the memory-
 *                           ordering soundness checker after every
 *                           pass (errors roll the pass back)
 *     --no-verify           skip graph verification entirely
 *     --analyze[=r1,r2]     run the lint rules over the final graphs
 *                           (default: all rules; see docs/ANALYSIS.md)
 *     --analyze-strict      exit 2 on error-severity findings and skip
 *                           simulation (implies --analyze)
 *     --list-lints          print registered lint rule names and exit
 *     --inject=SPEC         deterministic fault injection (testing);
 *                           see docs/ROBUSTNESS.md for the syntax
 *     --stats               print compile + run statistics
 *     --stats-json FILE     write compile + run statistics as JSON
 *     --trace FILE          write a Chrome trace-event file (Perfetto)
 *     --version             print version + wire-protocol level, exit
 *     --verbose             debug logging to stderr (repeat for more)
 *
 * Exit status: 0 on a fully healthy run; 1 when compilation recorded
 * diagnostics (rolled-back passes), the simulation degraded (deadlock,
 * event limit, ...) or a fatal error occurred; 2 on usage errors and
 * on error-severity findings under --analyze-strict.
 * Observability artifacts (--stats-json, --trace) are flushed on every
 * exit path — a failed run still produces its partial stats and trace.
 */
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/lint.h"
#include "driver/driver_lib.h"
#include "support/fault_injection.h"
#include "support/strings.h"
#include "support/trace.h"

using namespace cash;

namespace {

int
usage()
{
    std::cerr <<
        "usage: cashc [-O none|medium|full | -O0..-O3] [-j N]\n"
        "             [--passes=a,b,c]\n"
        "             [--list-passes] [--dump-cfg] [--dump-graph]"
        " [--dump-summaries] [--dot]\n"
        "             [--run 'f(1,2)'] [--mem perfect|real1|real2|real4]"
        " [--stats]\n"
        "             [--engine event|macro]"
        " [--target opt=..,mem=..,engine=..,fabric=..]\n"
        "             [--fabric RxC[:hopL][:capN][:creditK]]\n"
        "             [--max-events N] [--strict] [--verify-each-pass]"
        " [--no-verify]\n"
        "             [--analyze[=rule,...]] [--analyze-strict]"
        " [--list-lints]\n"
        "             [--inject=SPEC] [--stats-json out.json]"
        " [--trace out.json]\n"
        "             [--version] [--verbose] file.c\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string file;
    std::string traceFile;
    std::string statsJsonFile;
    std::string injectSpec;
    bool showStats = false;
    DriverRequest req;

    // Every target-shaped flag — the canonical --target and the
    // deprecated -O/--mem/--engine/--fabric aliases — funnels through
    // TargetSpec::setField, so each value is parsed exactly once and
    // the CLI can never drift from the service's options.target path.
    auto setTarget = [&](const std::string& key,
                         const std::string& value) {
        Status st = req.target.setField(key, value);
        if (!st)
            std::cerr << "cashc: " << st.message() << "\n";
        return st.isOk();
    };

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "-O" && i + 1 < argc) {
            if (!setTarget("opt", argv[++i]))
                return usage();
        } else if (arg.rfind("-O", 0) == 0 && arg.size() == 3) {
            if (!setTarget("opt", arg.substr(1)))
                return usage();
        } else if (arg == "-j" || arg == "--jobs") {
            if (i + 1 >= argc)
                return usage();
            req.jobs = std::atoi(argv[++i]);
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   std::isdigit(static_cast<unsigned char>(arg[2]))) {
            req.jobs = std::atoi(arg.c_str() + 2);
        } else if (arg.rfind("--passes=", 0) == 0) {
            for (const std::string& s : split(arg.substr(9), ','))
                if (!trim(s).empty())
                    req.passNames.push_back(trim(s));
        } else if (arg == "--passes" && i + 1 < argc) {
            for (const std::string& s : split(argv[++i], ','))
                if (!trim(s).empty())
                    req.passNames.push_back(trim(s));
        } else if (arg == "--list-passes") {
            for (const std::string& n : PassRegistry::global().names())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--version") {
            std::cout << versionString("cashc") << "\n";
            return 0;
        } else if (arg == "--dump-cfg") {
            req.wantCfg = true;
        } else if (arg == "--dump-graph") {
            req.wantGraphText = true;
        } else if (arg == "--dump-summaries") {
            req.dumpSummaries = true;
        } else if (arg == "--dot") {
            req.wantDot = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            traceFile = argv[++i];
        } else if (arg == "--stats-json" && i + 1 < argc) {
            statsJsonFile = argv[++i];
        } else if (arg == "--verbose" || arg == "-v") {
            traceLevel++;
        } else if (arg == "--stats") {
            showStats = true;
        } else if (arg == "--strict") {
            req.strict = true;
        } else if (arg == "--verify-each-pass") {
            req.verify = true;
            req.orderingChecks = true;
        } else if (arg == "--no-verify") {
            req.verify = false;
        } else if (arg == "--analyze") {
            req.analyze = true;
        } else if (arg.rfind("--analyze=", 0) == 0) {
            req.analyze = true;
            for (const std::string& s : split(arg.substr(10), ','))
                if (!trim(s).empty())
                    req.analyzeRules.push_back(trim(s));
        } else if (arg == "--analyze-strict") {
            req.analyze = true;
            req.analyzeStrict = true;
        } else if (arg == "--list-lints") {
            for (const std::string& n : LintRegistry::global().names())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--max-events" && i + 1 < argc) {
            req.maxEvents = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg.rfind("--inject=", 0) == 0) {
            injectSpec = arg.substr(9);
        } else if (arg == "--inject" && i + 1 < argc) {
            injectSpec = argv[++i];
        } else if (arg == "--run" && i + 1 < argc) {
            req.runSpec = argv[++i];
        } else if (arg == "--mem" && i + 1 < argc) {
            if (!setTarget("mem", argv[++i]))
                return usage();
        } else if (arg == "--engine" && i + 1 < argc) {
            if (!setTarget("engine", argv[++i]))
                return usage();
        } else if (arg.rfind("--engine=", 0) == 0) {
            if (!setTarget("engine", arg.substr(9)))
                return usage();
        } else if (arg == "--fabric" && i + 1 < argc) {
            if (!setTarget("fabric", argv[++i]))
                return usage();
        } else if (arg.rfind("--fabric=", 0) == 0) {
            if (!setTarget("fabric", arg.substr(9)))
                return usage();
        } else if (arg == "--target" && i + 1 < argc) {
            Status st = req.target.merge(argv[++i]);
            if (!st) {
                std::cerr << "cashc: " << st.message() << "\n";
                return usage();
            }
        } else if (arg.rfind("--target=", 0) == 0) {
            Status st = req.target.merge(arg.substr(9));
            if (!st) {
                std::cerr << "cashc: " << st.message() << "\n";
                return usage();
            }
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            file = arg;
        }
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::cerr << "cashc: cannot open " << file << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    req.source = buf.str();

    FaultPlan plan;
    if (!injectSpec.empty()) {
        try {
            plan = FaultPlan::parse(injectSpec);
        } catch (const FatalError& e) {
            std::cerr << "cashc: " << e.what() << "\n";
            return usage();
        }
        req.faults = &plan;
    }

    TraceRecorder& tracer = globalTracer();
    if (!traceFile.empty()) {
        tracer.enable();
        req.tracer = &tracer;
    }

    DriverReply rep = runDriverRequest(req);

    // Render the reply.  Observability artifacts are written on every
    // exit path: a degraded or failed run still flushes whatever it
    // recorded.
    if (!rep.fatal.empty())
        std::cerr << "cashc: " << rep.fatal << "\n";
    for (const PassFailure& d : rep.diagnostics)
        std::cerr << "cashc: " << d.str() << "\n";
    if (!rep.diagnostics.empty())
        std::cerr << "cashc: " << rep.diagnostics.size()
                  << " pass failure(s) rolled back; output may be"
                     " less optimized\n";

    std::cout << rep.cfgText << rep.graphText << rep.summariesText
              << rep.dot;

    if (rep.ranAnalysis) {
        for (const LintFinding& f : rep.findings)
            std::cout << f.str() << "\n";
        std::cerr << "cashc: analysis: " << rep.analysisErrors
                  << " error(s), " << rep.analysisWarnings
                  << " warning(s), " << rep.analysisInfos
                  << " info(s)\n";
        if (rep.analysisBlockedRun)
            std::cerr << "cashc: --analyze-strict: error findings;"
                         " skipping simulation\n";
    }

    if (rep.ranSim) {
        if (rep.simOutcome == SimOutcome::Ok) {
            std::cout << req.runSpec.substr(0, req.runSpec.find('('))
                      << " returned " << rep.returnValue << " in "
                      << rep.cycles << " cycles (" << rep.memName
                      << " memory)\n";
        } else {
            std::cerr << "cashc: simulation failed ("
                      << simOutcomeName(rep.simOutcome)
                      << "): " << rep.simError << "\n";
            if (!rep.deadlockText.empty())
                std::cerr << rep.deadlockText << "\n";
        }
        if (showStats)
            std::cout << rep.simStats.str();
    }
    if (showStats)
        std::cout << rep.compileStats.str();

    int exitCode = rep.exitCode;
    if (!statsJsonFile.empty()) {
        std::ofstream os(statsJsonFile);
        if (!os) {
            std::cerr << "cashc: cannot write " << statsJsonFile << "\n";
            if (exitCode == 0)
                exitCode = 1;
        } else {
            StatsJsonMeta meta;
            meta.file = file;
            meta.run = req.runSpec;
            meta.mem = req.target.mem;
            meta.level = req.target.level;
            // Only non-default targets surface the target string, so
            // idealized-fabric documents keep their historical bytes.
            if (!req.target.fabric.trivial() || !req.target.interproc)
                meta.target = req.target.str();
            os << statsJsonDocument(rep, meta);
        }
    }
    if (!traceFile.empty()) {
        std::ofstream os(traceFile);
        if (!os) {
            std::cerr << "cashc: cannot write " << traceFile << "\n";
            if (exitCode == 0)
                exitCode = 1;
        } else {
            tracer.writeChromeTrace(os);
        }
    }
    return exitCode;
}
