/**
 * @file
 * `cashc` — command-line driver: compile a Mini-C file to Pegasus,
 * optionally dump the graph (text or dot) and run it on the spatial
 * simulator.
 *
 * Usage:
 *   cashc [options] file.c
 *     -O none|medium|full   optimization level (default full);
 *                           -O0/-O1/-O2/-O3 alias none/medium/full/full
 *     -j N, --jobs N        optimization worker threads (default: one
 *                           per hardware thread; output is identical
 *                           at any N)
 *     --passes=a,b,c        custom pass pipeline (PassRegistry names)
 *                           instead of the -O standard pipeline
 *     --list-passes         print registered pass names and exit
 *     --dump-cfg            print the three-address CFG
 *     --dump-graph          print the Pegasus graphs (text)
 *     --dot                 print Graphviz dot for all graphs
 *     --run f(a,b,...)      simulate calling f with integer args
 *     --mem perfect|real1|real2|real4   memory system for --run
 *     --max-events N        simulator event budget (livelock guard)
 *     --strict              fail fast: pass failures raise immediately
 *                           instead of rollback + quarantine
 *     --verify-each-pass    run the graph verifier AND the memory-
 *                           ordering soundness checker after every
 *                           pass (errors roll the pass back)
 *     --no-verify           skip graph verification entirely
 *     --analyze[=r1,r2]     run the lint rules over the final graphs
 *                           (default: all rules; see docs/ANALYSIS.md)
 *     --analyze-strict      exit 2 on error-severity findings and skip
 *                           simulation (implies --analyze)
 *     --list-lints          print registered lint rule names and exit
 *     --inject=SPEC         deterministic fault injection (testing);
 *                           see docs/ROBUSTNESS.md for the syntax
 *     --stats               print compile + run statistics
 *     --stats-json FILE     write compile + run statistics as JSON
 *     --trace FILE          write a Chrome trace-event file (Perfetto)
 *     --verbose             debug logging to stderr (repeat for more)
 *
 * Exit status: 0 on a fully healthy run; 1 when compilation recorded
 * diagnostics (rolled-back passes), the simulation degraded (deadlock,
 * event limit, ...) or a fatal error occurred; 2 on usage errors and
 * on error-severity findings under --analyze-strict.
 * Observability artifacts (--stats-json, --trace) are flushed on every
 * exit path — a failed run still produces its partial stats and trace.
 */
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/lint.h"
#include "driver/compiler.h"
#include "pegasus/dot.h"
#include "sim/dataflow_sim.h"
#include "support/fault_injection.h"
#include "support/strings.h"
#include "support/trace.h"

using namespace cash;

namespace {

int
usage()
{
    std::cerr <<
        "usage: cashc [-O none|medium|full | -O0..-O3] [-j N]\n"
        "             [--passes=a,b,c]\n"
        "             [--list-passes] [--dump-cfg] [--dump-graph]"
        " [--dot]\n"
        "             [--run 'f(1,2)'] [--mem perfect|real1|real2|real4]"
        " [--stats]\n"
        "             [--max-events N] [--strict] [--verify-each-pass]"
        " [--no-verify]\n"
        "             [--analyze[=rule,...]] [--analyze-strict]"
        " [--list-lints]\n"
        "             [--inject=SPEC] [--stats-json out.json]"
        " [--trace out.json]\n"
        "             [--verbose] file.c\n";
    return 2;
}

/** One compile diagnostic as a JSON object. */
std::string
diagnosticJson(const PassFailure& d)
{
    return std::string("{\"function\": \"") + jsonEscape(d.function) +
           "\", \"pass\": \"" + jsonEscape(d.pass) +
           "\", \"round\": " + std::to_string(d.round) +
           ", \"code\": \"" + errorCodeName(d.code) +
           "\", \"message\": \"" + jsonEscape(d.message) + "\"}";
}

} // namespace

int
main(int argc, char** argv)
{
    std::string file;
    std::string runSpec;
    std::string memSpec = "real2";
    std::string traceFile;
    std::string statsJsonFile;
    std::string injectSpec;
    uint64_t maxEvents = 0;
    bool dumpCfg = false, dumpGraph = false, dumpDot = false;
    bool showStats = false;
    bool analyze = false, analyzeStrict = false;
    std::vector<std::string> analyzeRules;
    CompileOptions opts;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "-O" && i + 1 < argc) {
            std::string lvl = argv[++i];
            if (lvl == "none")
                opts.level = OptLevel::None;
            else if (lvl == "medium")
                opts.level = OptLevel::Medium;
            else if (lvl == "full")
                opts.level = OptLevel::Full;
            else
                return usage();
        } else if (arg == "-O0") {
            opts.level = OptLevel::None;
        } else if (arg == "-O1") {
            opts.level = OptLevel::Medium;
        } else if (arg == "-O2" || arg == "-O3") {
            opts.level = OptLevel::Full;
        } else if (arg == "-j" || arg == "--jobs") {
            if (i + 1 >= argc)
                return usage();
            opts.jobs(std::atoi(argv[++i]));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   std::isdigit(static_cast<unsigned char>(arg[2]))) {
            opts.jobs(std::atoi(arg.c_str() + 2));
        } else if (arg.rfind("--passes=", 0) == 0) {
            std::vector<std::string> names;
            for (const std::string& s : split(arg.substr(9), ','))
                if (!trim(s).empty())
                    names.push_back(trim(s));
            opts.passes(std::move(names));
        } else if (arg == "--passes" && i + 1 < argc) {
            std::vector<std::string> names;
            for (const std::string& s : split(argv[++i], ','))
                if (!trim(s).empty())
                    names.push_back(trim(s));
            opts.passes(std::move(names));
        } else if (arg == "--list-passes") {
            for (const std::string& n : PassRegistry::global().names())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--dump-cfg") {
            dumpCfg = true;
        } else if (arg == "--dump-graph") {
            dumpGraph = true;
        } else if (arg == "--dot") {
            dumpDot = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            traceFile = argv[++i];
        } else if (arg == "--stats-json" && i + 1 < argc) {
            statsJsonFile = argv[++i];
        } else if (arg == "--verbose" || arg == "-v") {
            traceLevel++;
        } else if (arg == "--stats") {
            showStats = true;
        } else if (arg == "--strict") {
            opts.strictMode(true);
        } else if (arg == "--verify-each-pass") {
            opts.verification(true);
            opts.orderingCheck(true);
        } else if (arg == "--no-verify") {
            opts.verification(false);
        } else if (arg == "--analyze") {
            analyze = true;
        } else if (arg.rfind("--analyze=", 0) == 0) {
            analyze = true;
            for (const std::string& s : split(arg.substr(10), ','))
                if (!trim(s).empty())
                    analyzeRules.push_back(trim(s));
        } else if (arg == "--analyze-strict") {
            analyze = true;
            analyzeStrict = true;
        } else if (arg == "--list-lints") {
            for (const std::string& n : LintRegistry::global().names())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--max-events" && i + 1 < argc) {
            maxEvents = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg.rfind("--inject=", 0) == 0) {
            injectSpec = arg.substr(9);
        } else if (arg == "--inject" && i + 1 < argc) {
            injectSpec = argv[++i];
        } else if (arg == "--run" && i + 1 < argc) {
            runSpec = argv[++i];
        } else if (arg == "--mem" && i + 1 < argc) {
            memSpec = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            file = arg;
        }
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::cerr << "cashc: cannot open " << file << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    FaultPlan plan;
    if (!injectSpec.empty()) {
        try {
            plan = FaultPlan::parse(injectSpec);
        } catch (const FatalError& e) {
            std::cerr << "cashc: " << e.what() << "\n";
            return usage();
        }
        opts.inject(&plan);
    }

    TraceRecorder& tracer = globalTracer();
    if (!traceFile.empty()) {
        tracer.enable();
        opts.tracer = &tracer;
    }

    // Observability artifacts are written on *every* exit path below:
    // a degraded or failed run still flushes whatever it recorded.
    StatSet compileStats;
    StatSet simStats;
    std::vector<PassFailure> diagnostics;
    std::vector<LintFinding> findings;
    std::string fatalMsg;
    std::string simError;
    bool ranSim = false;
    bool ranAnalysis = false;
    int exitCode = 0;

    auto flushArtifacts = [&]() -> bool {
        bool ok = true;
        if (!statsJsonFile.empty()) {
            std::ofstream os(statsJsonFile);
            if (!os) {
                std::cerr << "cashc: cannot write " << statsJsonFile
                          << "\n";
                ok = false;
            } else {
                os << "{\n  \"schema\": \"cash-stats-v1\",\n"
                   << "  \"meta\": {\n"
                   << "    \"file\": \"" << jsonEscape(file) << "\",\n"
                   << "    \"opt_level\": \""
                   << optLevelName(opts.level) << "\",\n"
                   << "    \"mem\": \"" << jsonEscape(memSpec)
                   << "\",\n"
                   << "    \"run\": \"" << jsonEscape(runSpec)
                   << "\",\n"
                   << "    \"exit\": " << exitCode;
                if (!fatalMsg.empty())
                    os << ",\n    \"error\": \""
                       << jsonEscape(fatalMsg) << "\"";
                if (!simError.empty())
                    os << ",\n    \"sim_error\": \""
                       << jsonEscape(simError) << "\"";
                os << "\n  },\n";
                if (!diagnostics.empty()) {
                    os << "  \"diagnostics\": [\n";
                    for (size_t d = 0; d < diagnostics.size(); d++)
                        os << "    " << diagnosticJson(diagnostics[d])
                           << (d + 1 < diagnostics.size() ? ",\n"
                                                          : "\n");
                    os << "  ],\n";
                }
                if (ranAnalysis) {
                    os << "  \"analysis\": {\n    \"findings\": [";
                    for (size_t f = 0; f < findings.size(); f++)
                        os << (f ? ",\n      " : "\n      ")
                           << findings[f].json();
                    os << (findings.empty() ? "]" : "\n    ]")
                       << "\n  },\n";
                }
                os << "  \"compile\": " << statSetJson(compileStats, 2);
                if (ranSim)
                    os << ",\n  \"sim\": " << statSetJson(simStats, 2);
                os << "\n}\n";
            }
        }
        if (!traceFile.empty()) {
            std::ofstream os(traceFile);
            if (!os) {
                std::cerr << "cashc: cannot write " << traceFile
                          << "\n";
                ok = false;
            } else {
                tracer.writeChromeTrace(os);
            }
        }
        return ok;
    };

    try {
        CompileResult r = compileSource(buf.str(), opts);
        compileStats = r.stats;
        diagnostics = r.diagnostics;
        if (!r.ok()) {
            for (const PassFailure& d : r.diagnostics)
                std::cerr << "cashc: " << d.str() << "\n";
            std::cerr << "cashc: " << r.diagnostics.size()
                      << " pass failure(s) rolled back; output may be"
                         " less optimized\n";
            exitCode = 1;
        }

        if (dumpCfg)
            for (const auto& fn : r.cfg->functions)
                std::cout << fn->str();
        if (dumpGraph)
            for (const auto& g : r.graphs)
                std::cout << toText(*g);
        if (dumpDot)
            for (const auto& g : r.graphs)
                std::cout << toDot(*g);

        bool analysisBlocksRun = false;
        if (analyze) {
            LintContext lctx;
            lctx.oracle = &r.cfg->oracle;
            lctx.layout = r.layout.get();
            lctx.stats = &compileStats;
            if (!traceFile.empty())
                lctx.tracer = &tracer;
            LintReport report =
                runLints(r.graphPtrs(), lctx, analyzeRules);
            findings = report.findings;
            ranAnalysis = true;
            for (const LintFinding& f : findings)
                std::cout << f.str() << "\n";
            std::cerr << "cashc: analysis: " << report.errors()
                      << " error(s), " << report.warnings()
                      << " warning(s), " << report.infos()
                      << " info(s)\n";
            if (analyzeStrict && report.errors() > 0) {
                std::cerr << "cashc: --analyze-strict: error findings;"
                             " skipping simulation\n";
                exitCode = 2;
                analysisBlocksRun = true;
            }
        }

        if (!runSpec.empty() && !analysisBlocksRun) {
            size_t open = runSpec.find('(');
            std::string fname = open == std::string::npos
                                    ? runSpec
                                    : runSpec.substr(0, open);
            std::vector<uint32_t> args;
            if (open != std::string::npos) {
                size_t close = runSpec.rfind(')');
                std::string inner =
                    runSpec.substr(open + 1, close - open - 1);
                for (const std::string& s : split(inner, ','))
                    if (!trim(s).empty())
                        args.push_back(static_cast<uint32_t>(
                            std::stoll(trim(s))));
            }
            MemConfig mc = MemConfig::realistic(2);
            if (memSpec == "perfect")
                mc = MemConfig::perfectMemory();
            else if (memSpec == "real1")
                mc = MemConfig::realistic(1);
            else if (memSpec == "real4")
                mc = MemConfig::realistic(4);

            DataflowSimulator sim(r.graphPtrs(), *r.layout, mc);
            if (!traceFile.empty())
                sim.setTracer(&tracer);
            if (maxEvents)
                sim.setMaxEvents(maxEvents);
            if (!plan.empty())
                sim.setFaultPlan(&plan);
            SimResult out = sim.run(fname, args);
            simStats = out.stats;
            ranSim = true;
            if (out.ok()) {
                std::cout << fname << " returned " << out.returnValue
                          << " in " << out.cycles << " cycles ("
                          << mc.name << " memory)\n";
                simStats.set("sim.returnValue",
                             static_cast<int64_t>(out.returnValue));
            } else {
                simError = out.error;
                std::cerr << "cashc: simulation failed ("
                          << simOutcomeName(out.outcome)
                          << "): " << out.error << "\n";
                if (out.outcome == SimOutcome::Deadlock)
                    std::cerr << out.deadlock.str() << "\n";
                exitCode = 1;
            }
            if (showStats)
                std::cout << out.stats.str();
        }
        if (showStats)
            std::cout << r.stats.str();
    } catch (const FatalError& e) {
        fatalMsg = e.what();
        std::cerr << "cashc: " << fatalMsg << "\n";
        exitCode = 1;
    }

    if (!flushArtifacts() && exitCode == 0)
        exitCode = 1;
    return exitCode;
}
