/**
 * @file
 * `cashc` — command-line driver: compile a Mini-C file to Pegasus,
 * optionally dump the graph (text or dot) and run it on the spatial
 * simulator.
 *
 * Usage:
 *   cashc [options] file.c
 *     -O none|medium|full   optimization level (default full)
 *     -j N, --jobs N        optimization worker threads (default: one
 *                           per hardware thread; output is identical
 *                           at any N)
 *     --passes=a,b,c        custom pass pipeline (PassRegistry names)
 *                           instead of the -O standard pipeline
 *     --list-passes         print registered pass names and exit
 *     --dump-cfg            print the three-address CFG
 *     --dump-graph          print the Pegasus graphs (text)
 *     --dot                 print Graphviz dot for all graphs
 *     --run f(a,b,...)      simulate calling f with integer args
 *     --mem perfect|real1|real2|real4   memory system for --run
 *     --stats               print compile + run statistics
 *     --stats-json FILE     write compile + run statistics as JSON
 *     --trace FILE          write a Chrome trace-event file (Perfetto)
 *     --verbose             debug logging to stderr (repeat for more)
 */
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/compiler.h"
#include "pegasus/dot.h"
#include "sim/dataflow_sim.h"
#include "support/strings.h"
#include "support/trace.h"

using namespace cash;

namespace {

int
usage()
{
    std::cerr <<
        "usage: cashc [-O none|medium|full] [-j N] [--passes=a,b,c]\n"
        "             [--list-passes] [--dump-cfg] [--dump-graph]"
        " [--dot]\n"
        "             [--run 'f(1,2)'] [--mem perfect|real1|real2|real4]"
        " [--stats]\n"
        "             [--stats-json out.json] [--trace out.json]"
        " [--verbose] file.c\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string file;
    std::string runSpec;
    std::string memSpec = "real2";
    std::string traceFile;
    std::string statsJsonFile;
    bool dumpCfg = false, dumpGraph = false, dumpDot = false;
    bool showStats = false;
    CompileOptions opts;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "-O" && i + 1 < argc) {
            std::string lvl = argv[++i];
            if (lvl == "none")
                opts.level = OptLevel::None;
            else if (lvl == "medium")
                opts.level = OptLevel::Medium;
            else if (lvl == "full")
                opts.level = OptLevel::Full;
            else
                return usage();
        } else if (arg == "-j" || arg == "--jobs") {
            if (i + 1 >= argc)
                return usage();
            opts.jobs(std::atoi(argv[++i]));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2 &&
                   std::isdigit(static_cast<unsigned char>(arg[2]))) {
            opts.jobs(std::atoi(arg.c_str() + 2));
        } else if (arg.rfind("--passes=", 0) == 0) {
            std::vector<std::string> names;
            for (const std::string& s : split(arg.substr(9), ','))
                if (!trim(s).empty())
                    names.push_back(trim(s));
            opts.passes(std::move(names));
        } else if (arg == "--passes" && i + 1 < argc) {
            std::vector<std::string> names;
            for (const std::string& s : split(argv[++i], ','))
                if (!trim(s).empty())
                    names.push_back(trim(s));
            opts.passes(std::move(names));
        } else if (arg == "--list-passes") {
            for (const std::string& n : PassRegistry::global().names())
                std::cout << n << "\n";
            return 0;
        } else if (arg == "--dump-cfg") {
            dumpCfg = true;
        } else if (arg == "--dump-graph") {
            dumpGraph = true;
        } else if (arg == "--dot") {
            dumpDot = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            traceFile = argv[++i];
        } else if (arg == "--stats-json" && i + 1 < argc) {
            statsJsonFile = argv[++i];
        } else if (arg == "--verbose" || arg == "-v") {
            traceLevel++;
        } else if (arg == "--stats") {
            showStats = true;
        } else if (arg == "--run" && i + 1 < argc) {
            runSpec = argv[++i];
        } else if (arg == "--mem" && i + 1 < argc) {
            memSpec = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            file = arg;
        }
    }
    if (file.empty())
        return usage();

    std::ifstream in(file);
    if (!in) {
        std::cerr << "cashc: cannot open " << file << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    TraceRecorder& tracer = globalTracer();
    if (!traceFile.empty()) {
        tracer.enable();
        opts.tracer = &tracer;
    }

    StatSet simStats;
    bool ranSim = false;
    try {
        CompileResult r = compileSource(buf.str(), opts);

        if (dumpCfg)
            for (const auto& fn : r.cfg->functions)
                std::cout << fn->str();
        if (dumpGraph)
            for (const auto& g : r.graphs)
                std::cout << toText(*g);
        if (dumpDot)
            for (const auto& g : r.graphs)
                std::cout << toDot(*g);

        if (!runSpec.empty()) {
            size_t open = runSpec.find('(');
            std::string fname = open == std::string::npos
                                    ? runSpec
                                    : runSpec.substr(0, open);
            std::vector<uint32_t> args;
            if (open != std::string::npos) {
                size_t close = runSpec.rfind(')');
                std::string inner =
                    runSpec.substr(open + 1, close - open - 1);
                for (const std::string& s : split(inner, ','))
                    if (!trim(s).empty())
                        args.push_back(static_cast<uint32_t>(
                            std::stoll(trim(s))));
            }
            MemConfig mc = MemConfig::realistic(2);
            if (memSpec == "perfect")
                mc = MemConfig::perfectMemory();
            else if (memSpec == "real1")
                mc = MemConfig::realistic(1);
            else if (memSpec == "real4")
                mc = MemConfig::realistic(4);

            DataflowSimulator sim(r.graphPtrs(), *r.layout, mc);
            if (!traceFile.empty())
                sim.setTracer(&tracer);
            SimResult out = sim.run(fname, args);
            std::cout << fname << " returned " << out.returnValue
                      << " in " << out.cycles << " cycles ("
                      << mc.name << " memory)\n";
            if (showStats)
                std::cout << out.stats.str();
            simStats = out.stats;
            simStats.set("sim.returnValue",
                         static_cast<int64_t>(out.returnValue));
            ranSim = true;
        }
        if (showStats)
            std::cout << r.stats.str();

        if (!statsJsonFile.empty()) {
            std::ofstream os(statsJsonFile);
            if (!os) {
                std::cerr << "cashc: cannot write " << statsJsonFile
                          << "\n";
                return 1;
            }
            os << "{\n  \"schema\": \"cash-stats-v1\",\n"
               << "  \"meta\": {\n"
               << "    \"file\": \"" << jsonEscape(file) << "\",\n"
               << "    \"opt_level\": \"" << optLevelName(opts.level)
               << "\",\n"
               << "    \"mem\": \"" << jsonEscape(memSpec) << "\",\n"
               << "    \"run\": \"" << jsonEscape(runSpec) << "\"\n"
               << "  },\n"
               << "  \"compile\": " << statSetJson(r.stats, 2);
            if (ranSim)
                os << ",\n  \"sim\": " << statSetJson(simStats, 2);
            os << "\n}\n";
        }
    } catch (const FatalError& e) {
        std::cerr << "cashc: " << e.what() << "\n";
        return 1;
    }

    if (!traceFile.empty()) {
        std::ofstream os(traceFile);
        if (!os) {
            std::cerr << "cashc: cannot write " << traceFile << "\n";
            return 1;
        }
        tracer.writeChromeTrace(os);
    }
    return 0;
}
