/**
 * @file
 * TargetSpec: the one description of *how* to compile and simulate.
 *
 * Historically the optimization level, memory system, simulation
 * engine (and now the fabric shape) each had their own flag and their
 * own parse function scattered across `driver_lib` and
 * `service/protocol.cpp`.  TargetSpec collapses that surface into a
 * single value type with one canonical string grammar:
 *
 *     opt=O2,mem=real2,engine=macro,fabric=4x4:hop2
 *
 * Every front end resolves through this type — `cashc --target=SPEC`
 * (legacy `-O`/`--mem`/`--engine` flags are deprecated aliases that
 * call `setField`), and the service's `options.target` (object or
 * string form, docs/SCHEMAS.md) — so the CLI and the service can
 * never drift.  `str()` renders the canonical form; it round-trips
 * through `parse()` and is the target fragment of the service cache
 * key, which is why all three entry paths produce identical keys.
 */
#ifndef CASH_DRIVER_TARGET_SPEC_H
#define CASH_DRIVER_TARGET_SPEC_H

#include <string>

#include "fabric/fabric.h"
#include "opt/pass.h"
#include "sim/dataflow_sim.h"
#include "support/diagnostics.h"

namespace cash {

/** "none"/"medium"/"full" (also "0".."3", "O0".."O3") → level. */
Status parseOptLevel(const std::string& name, OptLevel* out);

/** perfect|real1|real2|real4 → MemConfig. */
Status parseMemSpec(const std::string& name, MemConfig* out);

/** event|macro → SimEngine (docs/SIMULATOR.md, macro-firing engine). */
Status parseSimEngine(const std::string& name, SimEngine* out);

/**
 * The compile/simulate target: opt level, memory system, simulation
 * engine and fabric shape.  Defaults match the historical flag
 * defaults (`-O3 --mem real2 --engine macro`, idealized fabric).
 */
struct TargetSpec
{
    OptLevel level = OptLevel::Full;
    /** Memory system token (perfect|real1|real2|real4). */
    std::string mem = "real2";
    /** Simulation engine token (event|macro). */
    std::string engine = "macro";
    /** Tiled fabric; default (1x1) is the paper's idealized fabric. */
    FabricModel fabric;
    /**
     * Interprocedural optimization (`ipo=on|off`): whole-program
     * MOD/REF summaries feeding construction and the
     * `interproc_token_pruning` pass.  On by default; only effective
     * at opt=full (docs/FABRIC.md, docs/ANALYSIS.md).
     */
    bool interproc = true;

    /**
     * Parse the comma grammar (`opt=...,mem=...,engine=...,
     * fabric=...`) on top of the defaults.  Unknown keys and bad
     * values produce field-level error messages.
     */
    static Status parse(const std::string& spec, TargetSpec* out);

    /**
     * Apply @p spec's fields on top of the current value (fields not
     * named keep their setting) — the flag-combination semantics of
     * the front ends, where the last setting of a field wins.
     */
    Status merge(const std::string& spec);

    /**
     * Set one field by key ("opt", "mem", "engine", "fabric") with
     * full validation — the shared entry point for `parse`, the
     * deprecated CLI aliases and the service's `options.target`
     * object form.
     */
    Status setField(const std::string& key, const std::string& value);

    /**
     * Canonical spec string: `opt=<level>,mem=<mem>,engine=<engine>`
     * plus `,fabric=<spec>` when the fabric is non-default.
     * Round-trips through parse(); used verbatim as the target
     * fragment of the service cache key.
     */
    std::string str() const;

    /** Resolve the validated tokens into simulator inputs. */
    Status resolve(MemConfig* mc, SimEngine* se) const;

    // Fluent builder (append-only, like CompileOptions).
    TargetSpec& opt(OptLevel l) { level = l; return *this; }
    TargetSpec& memSystem(std::string m) { mem = std::move(m); return *this; }
    TargetSpec& simEngine(std::string e) { engine = std::move(e); return *this; }
    TargetSpec& fabricModel(FabricModel f) { fabric = f; return *this; }
    TargetSpec& interprocOpt(bool on) { interproc = on; return *this; }

    bool
    operator==(const TargetSpec& o) const
    {
        return level == o.level && mem == o.mem && engine == o.engine &&
               fabric == o.fabric && interproc == o.interproc;
    }
    bool operator!=(const TargetSpec& o) const { return !(*this == o); }
};

} // namespace cash

#endif // CASH_DRIVER_TARGET_SPEC_H
