/**
 * @file
 * The reusable driver: one structured request → one structured reply.
 *
 * `cashc` (the CLI) and `cashd` (the compile service, docs/SERVICE.md)
 * run the exact same workflow — compile, optionally analyze,
 * optionally simulate — so the workflow lives here, behind plain data
 * types, and the two front ends only differ in how they *parse*
 * requests (argv vs. `cash-svc-v1` frames) and *render* replies
 * (stdout/stderr vs. response frames).
 *
 * Determinism contract: for a fixed DriverRequest (and no fault
 * plan), every field of DriverReply except wall-clock counters is
 * byte-identical across runs, threads and job counts — that is what
 * makes service results cacheable.  `stripWallClock()` removes the
 * only nondeterministic keys; `statsJsonDocument()` then renders a
 * stable `cash-stats-v1` document (docs/SCHEMAS.md).
 */
#ifndef CASH_DRIVER_DRIVER_LIB_H
#define CASH_DRIVER_DRIVER_LIB_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "driver/compiler.h"
#include "driver/target_spec.h"
#include "sim/dataflow_sim.h"
#include "support/diagnostics.h"

namespace cash {

/** Release version of the cash toolchain (cashc, cashd, cash). */
inline constexpr const char* kCashVersion = "0.8.0";

/** "<tool> <version> (<wire schema>, protocol <n>)". */
std::string versionString(const std::string& tool);

/**
 * Everything one driver invocation needs.  All fields have usable
 * defaults; `source` is the only required one.
 */
struct DriverRequest
{
    /** Mini-C source text (not a path — callers do their own I/O). */
    std::string source;
    /** Opt level, memory system, sim engine and fabric — one value
     *  type with one grammar (driver/target_spec.h). */
    TargetSpec target;
    /** Custom pipeline (PassRegistry names); empty = standard of level. */
    std::vector<std::string> passNames;
    /** Optimization worker threads; 0 = hardware, 1 = serial. */
    int jobs = 0;
    bool verify = true;
    /** Independent ordering checker after every pass (--verify-each-pass). */
    bool orderingChecks = false;
    bool strict = false;

    bool analyze = false;
    bool analyzeStrict = false;
    /** Lint rule subset; empty = standardLintNames(). */
    std::vector<std::string> analyzeRules;

    /** Simulation spec "f(1,2)"; empty = do not simulate. */
    std::string runSpec;
    /** Simulator event budget; 0 = unlimited. */
    uint64_t maxEvents = 0;
    /** Simulator wall-clock budget in ms; 0 = unlimited. */
    int64_t simWallMs = 0;

    /** Extra artifacts to render into the reply. */
    bool wantCfg = false;
    bool wantGraphText = false;
    bool wantDot = false;
    /** Render the MOD/REF summaries (`cashc --dump-summaries`; also
     *  turns on the stats-JSON `analysis.summaries` block). */
    bool dumpSummaries = false;

    /** Deterministic fault injection (testing); may be null. */
    const FaultPlan* faults = nullptr;
    /** Observability sink; may be null.  NOT thread-safe to share. */
    TraceRecorder* tracer = nullptr;
};

/** Everything one driver invocation produced. */
struct DriverReply
{
    /**
     * Process-style exit code: 0 healthy; 1 on rolled-back passes, a
     * degraded simulation or a fatal error; 2 on error-severity
     * findings under analyzeStrict.
     */
    int exitCode = 0;

    StatSet compileStats;
    std::vector<PassFailure> diagnostics;

    bool ranAnalysis = false;
    std::vector<LintFinding> findings;
    int64_t analysisErrors = 0;
    int64_t analysisWarnings = 0;
    int64_t analysisInfos = 0;
    /** analyzeStrict saw errors: simulation was skipped. */
    bool analysisBlockedRun = false;

    bool ranSim = false;
    SimOutcome simOutcome = SimOutcome::Ok;
    uint32_t returnValue = 0;
    uint64_t cycles = 0;
    StatSet simStats;
    std::string simError;
    /** DeadlockReport rendering; empty unless outcome == Deadlock. */
    std::string deadlockText;
    /** Resolved memory-config display name (e.g. "realistic-2"). */
    std::string memName;

    std::string cfgText;
    std::string graphText;
    std::string dot;
    /** MOD/REF summary dump (text form); empty unless requested. */
    std::string summariesText;
    /** `analysis.summaries` JSON body; empty unless requested. */
    std::string summariesJson;

    /** FatalError message; empty on non-fatal runs. */
    std::string fatal;
};

/**
 * Run compile [+ analyze] [+ simulate] per @p req.  Never throws:
 * FatalError (syntax errors, unknown passes, bad specs, strict-mode
 * pass failures) lands in `reply.fatal` with exitCode 1.
 */
DriverReply runDriverRequest(const DriverRequest& req);

// parseOptLevel / parseMemSpec / parseSimEngine moved to
// driver/target_spec.h (included above) with the TargetSpec redesign.

/** "f(1,2,-3)" (or bare "f") → function name + argument values. */
Status parseRunSpec(const std::string& spec, std::string* function,
                    std::vector<uint32_t>* args);

/**
 * Copy of @p stats without wall-clock counters ("time.*" prefix,
 * "*.time_us" suffix) — everything that remains is deterministic for
 * a fixed request, so it can be cached and byte-compared.
 */
StatSet stripWallClock(const StatSet& stats);

/** Request-identity block of a `cash-stats-v1` document. */
struct StatsJsonMeta
{
    std::string file; ///< Source label (path or request tag).
    std::string run;  ///< runSpec as requested.
    std::string mem;  ///< memSpec as requested.
    OptLevel level = OptLevel::Full;
    /** Canonical TargetSpec::str(); rendered only when non-empty
     *  (set for non-default fabrics, so idealized-fabric documents
     *  stay byte-identical to the pre-fabric schema). */
    std::string target;
};

/**
 * Render @p rep as a `cash-stats-v1` JSON document (docs/SCHEMAS.md):
 * meta block from @p meta and the reply's exit/fatal/sim errors, then
 * diagnostics, analysis findings, compile counters, sim counters.
 * With @p deterministic, wall-clock counters are stripped (the
 * service uses this; `cashc --stats-json` keeps them).
 */
std::string statsJsonDocument(const DriverReply& rep,
                              const StatsJsonMeta& meta,
                              bool deterministic = false);

} // namespace cash

#endif // CASH_DRIVER_DRIVER_LIB_H
