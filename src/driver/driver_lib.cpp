#include "driver/driver_lib.h"

#include <cstdlib>
#include <sstream>

#include "analysis/interproc.h"
#include "pegasus/dot.h"
#include "service/protocol.h"
#include "support/strings.h"
#include "support/trace.h"

namespace cash {

std::string
versionString(const std::string& tool)
{
    return tool + " " + kCashVersion + " (" + kSvcSchema +
           ", protocol " + std::to_string(kSvcProtocolVersion) + ")";
}

Status
parseRunSpec(const std::string& spec, std::string* function,
             std::vector<uint32_t>* args)
{
    function->clear();
    args->clear();
    size_t open = spec.find('(');
    if (open == std::string::npos) {
        *function = trim(spec);
    } else {
        size_t close = spec.rfind(')');
        if (close == std::string::npos || close < open)
            return Status::error(ErrorCode::InternalError,
                                 "bad run spec '" + spec +
                                     "': unbalanced parentheses");
        *function = trim(spec.substr(0, open));
        std::string inner = spec.substr(open + 1, close - open - 1);
        for (const std::string& s : split(inner, ',')) {
            std::string t = trim(s);
            if (t.empty())
                continue;
            const char* c = t.c_str();
            char* end = nullptr;
            long long v = std::strtoll(c, &end, 10);
            if (end == c || *end != '\0')
                return Status::error(ErrorCode::InternalError,
                                     "bad run spec '" + spec +
                                         "': argument '" + t +
                                         "' is not an integer");
            args->push_back(static_cast<uint32_t>(v));
        }
    }
    if (function->empty())
        return Status::error(ErrorCode::InternalError,
                             "bad run spec '" + spec +
                                 "': empty function name");
    return Status::ok();
}

StatSet
stripWallClock(const StatSet& stats)
{
    StatSet out;
    for (const auto& [k, v] : stats.all()) {
        if (k.rfind("time.", 0) == 0)
            continue;
        if (k.size() > 8 && k.compare(k.size() - 8, 8, ".time_us") == 0)
            continue;
        if (stats.isGauge(k))
            out.set(k, v);
        else
            out.add(k, v);
    }
    return out;
}

DriverReply
runDriverRequest(const DriverRequest& req)
{
    DriverReply rep;

    CompileOptions opts;
    opts.level = req.target.level;
    opts.verify = req.verify;
    opts.numJobs = req.jobs;
    opts.passNames = req.passNames;
    opts.strict = req.strict;
    opts.orderingChecks = req.orderingChecks;
    opts.faults = req.faults;
    opts.tracer = req.tracer;
    opts.interproc = req.target.interproc;

    try {
        CompileResult r = compileSource(req.source, opts);
        rep.compileStats = r.stats;
        rep.diagnostics = r.diagnostics;
        if (!r.ok())
            rep.exitCode = 1;

        if (req.wantCfg)
            for (const auto& fn : r.cfg->functions)
                rep.cfgText += fn->str();
        if (req.wantGraphText)
            for (const auto& g : r.graphs)
                rep.graphText += toText(*g);
        if (req.wantDot)
            for (const auto& g : r.graphs)
                rep.dot += toDot(*g);
        if (req.dumpSummaries && r.summaries) {
            rep.summariesText = r.summaries->dump();
            rep.summariesJson = r.summaries->json();
        }

        if (req.analyze) {
            // Fresh interprocedural model over the *final* graphs: the
            // checker-side re-derivation that independently re-proves
            // every pruned cross-call edge (analysis/interproc.h).
            InterprocModel interprocModel(
                r.graphPtrs(), r.cfg->paramLocation, *r.layout);
            LintContext lctx;
            lctx.oracle = &r.cfg->oracle;
            lctx.layout = r.layout.get();
            lctx.stats = &rep.compileStats;
            lctx.interproc = &interprocModel;
            if (req.tracer && req.tracer->enabled())
                lctx.tracer = req.tracer;
            LintReport report =
                runLints(r.graphPtrs(), lctx, req.analyzeRules);
            rep.findings = report.findings;
            rep.ranAnalysis = true;
            rep.analysisErrors = report.errors();
            rep.analysisWarnings = report.warnings();
            rep.analysisInfos = report.infos();
            if (req.analyzeStrict && report.errors() > 0) {
                rep.exitCode = 2;
                rep.analysisBlockedRun = true;
            }
        }

        if (!req.runSpec.empty() && !rep.analysisBlockedRun) {
            std::string fname;
            std::vector<uint32_t> args;
            Status st = parseRunSpec(req.runSpec, &fname, &args);
            if (!st) {
                rep.fatal = st.message();
                rep.exitCode = 1;
                return rep;
            }
            MemConfig mc = MemConfig::realistic(2);
            SimEngine engine = SimEngine::Macro;
            st = req.target.resolve(&mc, &engine);
            if (!st) {
                rep.fatal = st.message();
                rep.exitCode = 1;
                return rep;
            }
            rep.memName = mc.name;

            // Tiled fabric (docs/FABRIC.md): place every graph onto
            // the grid; a trivial (1x1) fabric costs nothing and is
            // byte-identical to the idealized-fabric path.
            FabricSession fabric;
            const FabricSession* fabricPtr = nullptr;
            if (!req.target.fabric.trivial()) {
                fabric = placeAll(r.graphPtrs(), req.target.fabric);
                fabricPtr = &fabric;
            }

            DataflowSimulator sim(r.graphPtrs(), *r.layout, mc,
                                  engine, fabricPtr);
            if (req.tracer && req.tracer->enabled())
                sim.setTracer(req.tracer);
            if (req.maxEvents)
                sim.setMaxEvents(req.maxEvents);
            if (req.simWallMs)
                sim.setWallBudgetMs(req.simWallMs);
            if (req.faults && !req.faults->empty())
                sim.setFaultPlan(req.faults);
            SimResult out = sim.run(fname, args);
            rep.ranSim = true;
            rep.simOutcome = out.outcome;
            rep.returnValue = out.returnValue;
            rep.cycles = out.cycles;
            rep.simStats = out.stats;
            if (out.ok()) {
                rep.simStats.set("sim.returnValue",
                                 static_cast<int64_t>(out.returnValue));
            } else {
                rep.simError = out.error;
                if (out.outcome == SimOutcome::Deadlock)
                    rep.deadlockText = out.deadlock.str();
                rep.exitCode = 1;
            }
        }
    } catch (const FatalError& e) {
        rep.fatal = e.what();
        rep.exitCode = 1;
    }
    return rep;
}

namespace {

/** One compile diagnostic as a JSON object (docs/SCHEMAS.md). */
std::string
diagnosticJson(const PassFailure& d)
{
    return std::string("{\"function\": \"") + jsonEscape(d.function) +
           "\", \"pass\": \"" + jsonEscape(d.pass) +
           "\", \"round\": " + std::to_string(d.round) +
           ", \"code\": \"" + errorCodeName(d.code) +
           "\", \"message\": \"" + jsonEscape(d.message) + "\"}";
}

} // namespace

std::string
statsJsonDocument(const DriverReply& rep, const StatsJsonMeta& meta,
                  bool deterministic)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"cash-stats-v1\",\n"
       << "  \"meta\": {\n"
       << "    \"file\": \"" << jsonEscape(meta.file) << "\",\n"
       << "    \"opt_level\": \"" << optLevelName(meta.level) << "\",\n"
       << "    \"mem\": \"" << jsonEscape(meta.mem) << "\",\n";
    if (!meta.target.empty())
        os << "    \"target\": \"" << jsonEscape(meta.target)
           << "\",\n";
    os << "    \"run\": \"" << jsonEscape(meta.run) << "\",\n"
       << "    \"exit\": " << rep.exitCode;
    if (!rep.fatal.empty())
        os << ",\n    \"error\": \"" << jsonEscape(rep.fatal) << "\"";
    if (!rep.simError.empty())
        os << ",\n    \"sim_error\": \"" << jsonEscape(rep.simError)
           << "\"";
    os << "\n  },\n";
    if (!rep.diagnostics.empty()) {
        os << "  \"diagnostics\": [\n";
        for (size_t d = 0; d < rep.diagnostics.size(); d++)
            os << "    " << diagnosticJson(rep.diagnostics[d])
               << (d + 1 < rep.diagnostics.size() ? ",\n" : "\n");
        os << "  ],\n";
    }
    if (rep.ranAnalysis || !rep.summariesJson.empty()) {
        os << "  \"analysis\": {";
        bool needComma = false;
        if (rep.ranAnalysis) {
            os << "\n    \"findings\": [";
            for (size_t f = 0; f < rep.findings.size(); f++)
                os << (f ? ",\n      " : "\n      ")
                   << rep.findings[f].json();
            os << (rep.findings.empty() ? "]" : "\n    ]");
            needComma = true;
        }
        if (!rep.summariesJson.empty()) {
            // Pre-rendered ModRefSummaries::json() object body
            // (docs/SCHEMAS.md, `analysis.summaries`).
            os << (needComma ? ",\n    " : "\n    ")
               << "\"summaries\": " << rep.summariesJson;
        }
        os << "\n  },\n";
    }
    const StatSet compile =
        deterministic ? stripWallClock(rep.compileStats)
                      : rep.compileStats;
    os << "  \"compile\": " << statSetJson(compile, 2);
    if (rep.ranSim) {
        const StatSet sim = deterministic ? stripWallClock(rep.simStats)
                                          : rep.simStats;
        os << ",\n  \"sim\": " << statSetJson(sim, 2);
    }
    os << "\n}\n";
    return os.str();
}

} // namespace cash
