/**
 * @file
 * Abstract memory locations and read/write sets (paper §3.3).
 *
 * Every memory access operation carries a read/write set: the set of
 * abstract locations it may touch.  Abstract locations are:
 *   - one per concrete memory object (globals and frame-resident
 *     locals), identified by the MemObject id from the layout;
 *   - one *external* location per pointer parameter of the function
 *     being compiled (what the paper's pointer parameters may point at);
 *   - Top ("unknown"), which overlaps everything.
 *
 * The AliasOracle encodes which locations may overlap, including the
 * effect of `#pragma independent` annotations (§7.1) propagated by a
 * simple connection analysis.
 */
#ifndef CASH_ANALYSIS_MEMLOC_H
#define CASH_ANALYSIS_MEMLOC_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace cash {

/** A set of abstract location ids, with a Top element. */
class LocationSet
{
  public:
    LocationSet() = default;

    static LocationSet
    top()
    {
        LocationSet s;
        s.isTop_ = true;
        return s;
    }

    static LocationSet
    single(int loc)
    {
        LocationSet s;
        s.locs_.insert(loc);
        return s;
    }

    bool isTop() const { return isTop_; }
    bool empty() const { return !isTop_ && locs_.empty(); }
    const std::set<int>& locations() const { return locs_; }

    void insert(int loc) { if (!isTop_) locs_.insert(loc); }

    void
    unionWith(const LocationSet& other)
    {
        if (other.isTop_)
            isTop_ = true;
        if (isTop_) {
            locs_.clear();
            return;
        }
        locs_.insert(other.locs_.begin(), other.locs_.end());
    }

    bool
    operator==(const LocationSet& o) const
    {
        return isTop_ == o.isTop_ && locs_ == o.locs_;
    }

    std::string str() const;

  private:
    bool isTop_ = false;
    std::set<int> locs_;
};

/**
 * Pairwise may-alias information between abstract locations.
 *
 * Concrete objects never alias each other (distinct C objects).
 * External locations may alias each other, any global, and any
 * address-taken frame object — unless an independence pair (from
 * `#pragma independent`) says otherwise.
 */
class AliasOracle
{
  public:
    /** Register location @p loc as an external (pointer-param) target. */
    void addExternal(int loc) { externals_.insert(loc); }

    /** Concrete object @p loc whose address escapes (externals may hit it). */
    void addExposedObject(int loc) { exposed_.insert(loc); }

    /** Declare that @p a and @p b never overlap (pragma independent). */
    void addIndependent(int a, int b);

    bool isExternal(int loc) const { return externals_.count(loc) != 0; }

    /** May locations @p a and @p b overlap? */
    bool mayAliasLocations(int a, int b) const;

    /** May the two read/write sets touch a common address? */
    bool mayOverlap(const LocationSet& a, const LocationSet& b) const;

    /** All external (pointer-param) locations. */
    const std::set<int>& externalLocations() const { return externals_; }

    /** All normalized (a ≤ b) independence pairs from pragmas. */
    const std::set<std::pair<int, int>>& independentPairs() const
    {
        return independent_;
    }

  private:
    std::set<int> externals_;
    std::set<int> exposed_;
    std::set<std::pair<int, int>> independent_;
};

} // namespace cash

#endif // CASH_ANALYSIS_MEMLOC_H
