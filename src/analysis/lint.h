/**
 * @file
 * Rule-based lint framework for Pegasus graphs (`cashc --analyze`).
 *
 * A lint rule inspects a finished (or mid-pipeline) graph and reports
 * structured findings; it never mutates anything.  Rules are published
 * through a name-keyed LintRegistry, mirroring the PassRegistry:
 * `runLints()` instantiates a rule set by name ('-' and '_' are
 * interchangeable) and runs it over a list of graphs in order,
 * producing a deterministic LintReport.
 *
 * The initial rule catalog (docs/ANALYSIS.md):
 *   ordering-soundness   error  conflicting memory ops not ordered by
 *                               a token path (the §4 invariant)
 *   redundant-token-edge warn   token edge implied by the transitive
 *                               closure (missed §3.4 reduction)
 *   dead-token-sink      warn   token plumbing from which no side
 *                               effect is reachable
 *   unprovable-pragma    warn   `#pragma independent` contradicted (or
 *                               not supported) by the access sets
 *   mergeable-residue    info   equivalent memory ops left unmerged
 *                               after §5.1
 *   summary-divergence   error  a call's optimizer-stamped MOD/REF
 *                               effects disagree with the independent
 *                               interprocedural rederivation
 *   prunable-call-edge   info   direct cross-call token edge whose
 *                               endpoint effects are provably disjoint
 *                               (interproc_token_pruning would drop it)
 */
#ifndef CASH_ANALYSIS_LINT_H
#define CASH_ANALYSIS_LINT_H

#include <functional>
#include <memory>
#include <mutex>
#include <map>
#include <string>
#include <vector>

#include "analysis/memloc.h"
#include "frontend/layout.h"
#include "pegasus/graph.h"
#include "support/stats.h"
#include "support/trace.h"

namespace cash {

class InterprocModel;

enum class LintSeverity
{
    Info,
    Warn,
    Error,
};

/** Stable lower-case name of @p s ("info", "warn", "error"). */
const char* lintSeverityName(LintSeverity s);

/** One structured finding from a lint rule. */
struct LintFinding
{
    std::string rule;
    LintSeverity severity = LintSeverity::Info;
    std::string func;        ///< Graph (function) name.
    int nodeA = -1;          ///< Primary node id.
    int nodeB = -1;          ///< Secondary node id (-1 when n/a).
    std::string location;    ///< Source location when known ("" else).
    std::string explanation;

    /** One-line rendering for logs / cashc stdout. */
    std::string str() const;

    /** JSON object (analysis.findings element, docs/ANALYSIS.md). */
    std::string json() const;
};

/**
 * Shared read-only inputs for a lint run.  `oracle` and `layout` are
 * the same analysis facts the builder used; `stats`/`tracer` are
 * optional observability sinks (counters land under "analysis.").
 */
struct LintContext
{
    const AliasOracle* oracle = nullptr;
    const MemoryLayout* layout = nullptr;
    StatSet* stats = nullptr;
    TraceRecorder* tracer = nullptr;
    /**
     * Independent interprocedural effect model (analysis/interproc.h);
     * null = interprocedural rules are skipped and the ordering
     * checker keeps calls at Top.
     */
    const InterprocModel* interproc = nullptr;
};

/** Base class of all lint rules.  Rules are stateless between runs. */
class LintRule
{
  public:
    virtual ~LintRule() = default;
    virtual const char* name() const = 0;
    virtual LintSeverity severity() const = 0;
    virtual const char* description() const = 0;
    /** Append findings for @p g to @p out (never mutates the graph). */
    virtual void run(const Graph& g, const LintContext& ctx,
                     std::vector<LintFinding>& out) const = 0;
};

/**
 * Name-keyed registry of lint-rule factories, mirroring PassRegistry.
 * The built-in rules are pre-registered in global(); lookups treat '-'
 * and '_' interchangeably.  All methods are thread-safe.
 */
class LintRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<LintRule>()>;

    static LintRegistry& global();

    void registerRule(const std::string& name, Factory factory);
    bool has(const std::string& name) const;
    /** All registered names, sorted. */
    std::vector<std::string> names() const;
    /** Instantiate rule @p name; fatal() on unknown names. */
    std::unique_ptr<LintRule> create(const std::string& name) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, Factory> factories_;
};

/** The default rule set, in severity-then-catalog order. */
std::vector<std::string> standardLintNames();

/** Aggregated result of one lint run. */
struct LintReport
{
    std::vector<LintFinding> findings;

    int64_t errors() const { return countSeverity(LintSeverity::Error); }
    int64_t warnings() const { return countSeverity(LintSeverity::Warn); }
    int64_t infos() const { return countSeverity(LintSeverity::Info); }

    int64_t countSeverity(LintSeverity s) const;
};

/**
 * Run the rules named in @p ruleNames (empty = standardLintNames())
 * over @p graphs in order.  Findings are ordered by (graph, rule,
 * node id) and are deterministic for a given graph list; counters
 * `analysis.<rule>.count`, `analysis.findings` and
 * `analysis.{errors,warnings,infos}` are bumped on ctx.stats and one
 * trace span per (graph, rule) is recorded when ctx.tracer is enabled.
 */
LintReport runLints(const std::vector<const Graph*>& graphs,
                    const LintContext& ctx,
                    const std::vector<std::string>& ruleNames = {});

} // namespace cash

#endif // CASH_ANALYSIS_LINT_H
