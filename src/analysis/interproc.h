/**
 * @file
 * Checker-side interprocedural effect model (docs/ANALYSIS.md,
 * "Interprocedural checking").
 *
 * The optimizer prunes cross-call token edges using the MOD/REF
 * summaries of analysis/modref.h.  Trusting those same summaries to
 * *check* the pruned graphs would be circular, so this model re-derives
 * everything from a different substrate, sharing no code with modref:
 *
 *   - effects are recomputed from the Pegasus graphs themselves, by
 *     abstract evaluation of each Load/Store *address input* (modref
 *     reads the CFG-level points-to rwSets instead);
 *   - the whole-program fixpoint is a plain global iteration to
 *     convergence (modref condenses the call graph with Tarjan SCCs
 *     and solves components bottom-up);
 *   - call-site resolution happens at *query* time against the current
 *     — possibly optimized — graph, evaluating the call's live
 *     argument inputs (modref stamps construction-time sets).
 *
 * Soundness across passes: the per-function summaries are computed
 * once over the construction-time graphs.  Passes only ever remove or
 * merge accesses, never invent new locations, so those summaries stay
 * over-approximations of every later pipeline stage, and one immutable
 * model can be shared by all parallel optimization workers.
 */
#ifndef CASH_ANALYSIS_INTERPROC_H
#define CASH_ANALYSIS_INTERPROC_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/memloc.h"
#include "frontend/layout.h"
#include "pegasus/graph.h"

namespace cash {

/**
 * Immutable whole-program effect model for the ordering checker and
 * the `--analyze` lints.  Thread-safe after construction: queries read
 * only the model's own tables and the graph passed in.
 */
class InterprocModel
{
  public:
    /**
     * Build from the construction-time graphs (declaration order),
     * the per-function pointer-parameter location table
     * (CfgProgram::paramLocation, same order) and the layout.
     */
    InterprocModel(const std::vector<const Graph*>& graphs,
                   const std::vector<std::vector<int>>& paramLocation,
                   const MemoryLayout& layout);

    /**
     * Effective may-read set of call node @p call inside @p g, in the
     * caller's location space, resolved against the current graph
     * state.  Top for unknown callees or unprovable argument bindings.
     */
    LocationSet callReadSet(const Graph& g, const Node* call) const;

    /** Effective may-write set; same conventions as callReadSet(). */
    LocationSet callWriteSet(const Graph& g, const Node* call) const;

    /** Whole-function REF summary (own location space); null unknown. */
    const LocationSet* funcRef(const FuncDecl* decl) const;

    /** Whole-function MOD summary (own location space); null unknown. */
    const LocationSet* funcMod(const FuncDecl* decl) const;

    /**
     * Abstract points-to set of value @p v in @p g: the objects (and
     * pointer-parameter externals) the value may address.  Exposed for
     * the lint rules; Top when the value escapes the evaluator.
     */
    LocationSet pointsTo(const Graph& g, PortRef v) const;

  private:
    int functionIndex(const FuncDecl* decl) const;
    LocationSet evalPtr(const Graph& g, int fnIdx, PortRef v,
                        std::set<const Node*>& visiting) const;
    LocationSet addrSet(const Graph& g, int fnIdx, const Node* access)
        const;
    LocationSet translate(const LocationSet& calleeSet, int calleeIdx,
                          const Graph& callerG, int callerIdx,
                          const Node* call) const;

    const MemoryLayout& layout_;
    std::vector<std::vector<int>> paramLoc_;
    std::map<const FuncDecl*, int> index_;
    std::vector<const FuncDecl*> decls_;
    int numObjects_ = 0;
    /** Frame-object ids per function (layout objects with func==decl). */
    std::vector<std::vector<int>> frameObjs_;
    /** Converged per-function summaries, own location space. */
    std::vector<LocationSet> ref_, mod_;
};

} // namespace cash

#endif // CASH_ANALYSIS_INTERPROC_H
