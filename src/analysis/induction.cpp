#include "analysis/induction.h"

namespace cash {

namespace {

/** Strip value-preserving wrappers (Copy arith). */
PortRef
stripCopies(PortRef v)
{
    while (v.valid() && v.node->kind == NodeKind::Arith &&
           v.node->op == Op::Copy)
        v = v.node->input(0);
    return v;
}

} // namespace

InductionAnalysis::InductionAnalysis(const Graph& g)
{
    g.forEach([&](Node* n) {
        if (n->kind != NodeKind::Merge || n->type != VT::Word)
            return;
        // Exactly one back-edge input, at least one initial input
        // (the mu-decider slot is neither).
        int backIdx = -1;
        int backCount = 0;
        int initIdx = -1;
        int initCount = 0;
        for (int i = 0; i < n->numInputs(); i++) {
            if (i == n->deciderIndex)
                continue;
            if (n->inputIsBackEdge(i)) {
                backIdx = i;
                backCount++;
            } else {
                initIdx = i;
                initCount++;
            }
        }
        if (backCount != 1 || initCount < 1)
            return;

        // The back input must be an eta whose value is merge ± const.
        PortRef back = n->input(backIdx);
        if (back.node->kind != NodeKind::Eta)
            return;
        PortRef v = stripCopies(back.node->input(0));
        if (v.node->kind != NodeKind::Arith)
            return;
        int64_t step = 0;
        PortRef x = stripCopies(v.node->input(0));
        if (v.node->op == Op::Add) {
            PortRef y = stripCopies(v.node->input(1));
            if (x.node == n && x.port == 0 &&
                y.node->kind == NodeKind::Const) {
                step = y.node->constValue;
            } else if (y.node == n && y.port == 0 &&
                       x.node->kind == NodeKind::Const) {
                step = x.node->constValue;
                x = y;
            } else {
                return;
            }
        } else if (v.node->op == Op::Sub) {
            PortRef y = stripCopies(v.node->input(1));
            if (x.node == n && x.port == 0 &&
                y.node->kind == NodeKind::Const)
                step = -y.node->constValue;
            else
                return;
        } else {
            return;
        }
        if (step == 0)
            return;

        InductionVar iv;
        iv.merge = n;
        iv.hyperblock = n->hyperblock;
        iv.step = step;
        if (initCount == 1)
            iv.start = n->input(initIdx);
        ivs_[n] = iv;
    });
}

const InductionVar*
InductionAnalysis::ivOf(const Node* merge) const
{
    auto it = ivs_.find(merge);
    return it == ivs_.end() ? nullptr : &it->second;
}

} // namespace cash
