/**
 * @file
 * Symbolic (affine) address analysis (paper §4.3 heuristic 1 and 2).
 *
 * Address expressions are decomposed into affine forms
 *     c0 + Σ ci·base_i + Σ sj·ITER(loop_j)
 * where bases are opaque graph values and ITER(h) is the iteration
 * count of loop hyperblock h (induction-variable merges expand to
 * start + step·ITER).  Two addresses whose difference is a nonzero
 * constant can never be equal; the loop-pipelining passes additionally
 * reason about the ITER coefficients to derive dependence distances.
 */
#ifndef CASH_ANALYSIS_SYMBOLIC_H
#define CASH_ANALYSIS_SYMBOLIC_H

#include <cstdint>
#include <map>
#include <string>

#include "pegasus/graph.h"

namespace cash {

class InductionAnalysis;

/** A term basis: either an opaque node output or a loop counter. */
struct SymBase
{
    const Node* node = nullptr;
    int port = 0;
    int iterHb = -1;  ///< ≥0: the ITER(hyperblock) pseudo-variable.

    bool
    operator<(const SymBase& o) const
    {
        if (iterHb != o.iterHb)
            return iterHb < o.iterHb;
        if (node != o.node)
            return node < o.node;
        return port < o.port;
    }
    bool
    operator==(const SymBase& o) const
    {
        return node == o.node && port == o.port && iterHb == o.iterHb;
    }
};

/** An affine expression over SymBases. */
struct AffineExpr
{
    bool valid = false;
    int64_t constant = 0;
    std::map<SymBase, int64_t> terms;

    static AffineExpr invalid() { return AffineExpr{}; }
    static AffineExpr constantOf(int64_t c);
    static AffineExpr baseOf(SymBase b);

    AffineExpr plus(const AffineExpr& o) const;
    AffineExpr minus(const AffineExpr& o) const;
    AffineExpr times(int64_t k) const;

    /** True when the expression is a plain constant. */
    bool isConstant(int64_t* c) const;

    /** Coefficient of ITER(@p hb) (0 when absent). */
    int64_t iterCoeff(int hb) const;

    /** Expression with the ITER(@p hb) term removed. */
    AffineExpr withoutIter(int hb) const;

    std::string str() const;
};

/**
 * Memoized affine decomposition of graph values.
 */
class SymbolicAddress
{
  public:
    /** @param ivs optional induction analysis for IV-merge expansion. */
    explicit SymbolicAddress(const InductionAnalysis* ivs = nullptr)
        : ivs_(ivs)
    {
    }

    AffineExpr expr(PortRef v);

    /**
     * Can accesses (@p a, @p sizeA) and (@p b, @p sizeB) never touch a
     * common byte *in the same iteration context* (all ITER variables
     * equal)?  True only when provable.
     */
    static bool disjoint(const AffineExpr& a, int sizeA,
                         const AffineExpr& b, int sizeB);

  private:
    AffineExpr compute(PortRef v, int depth);

    const InductionAnalysis* ivs_;
    std::map<std::pair<const Node*, int>, AffineExpr> memo_;
};

} // namespace cash

#endif // CASH_ANALYSIS_SYMBOLIC_H
