#include "analysis/interproc.h"

namespace cash {

namespace {

/** Objects a constant address may fall into (globals only: locals are
 *  reached through the frame base, never by literal address). */
LocationSet
globalsContaining(int64_t v, const MemoryLayout& layout)
{
    LocationSet out;
    if (v == 0)
        return out;
    for (const MemObject& obj : layout.objects()) {
        if (obj.isGlobal && v >= obj.address &&
            v < static_cast<int64_t>(obj.address) + obj.size)
            out.insert(obj.id);
    }
    return out;
}

} // namespace

InterprocModel::InterprocModel(
    const std::vector<const Graph*>& graphs,
    const std::vector<std::vector<int>>& paramLocation,
    const MemoryLayout& layout)
    : layout_(layout), paramLoc_(paramLocation)
{
    numObjects_ = static_cast<int>(layout.objects().size());
    const int n = static_cast<int>(graphs.size());
    decls_.resize(n, nullptr);
    frameObjs_.resize(n);
    for (int i = 0; i < n; i++) {
        decls_[i] = graphs[i]->decl;
        index_[graphs[i]->decl] = i;
    }
    paramLoc_.resize(n);
    for (const MemObject& obj : layout.objects()) {
        if (!obj.func)
            continue;
        auto it = index_.find(obj.func);
        if (it != index_.end())
            frameObjs_[it->second].push_back(obj.id);
    }

    // Whole-program fixpoint by plain global iteration: every round
    // re-derives each function's effects from its graph, folding in
    // the current callee summaries.  Location sets only grow and the
    // universe is finite, so this converges; no call-graph
    // condensation is needed (deliberately unlike analysis/modref.cpp).
    ref_.assign(n, LocationSet());
    mod_.assign(n, LocationSet());
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 64) {
        changed = false;
        for (int fi = 0; fi < n; fi++) {
            const Graph& g = *graphs[fi];
            LocationSet r, m;
            g.forEach([&](Node* node) {
                switch (node->kind) {
                  case NodeKind::Load:
                    r.unionWith(addrSet(g, fi, node));
                    break;
                  case NodeKind::Store:
                    m.unionWith(addrSet(g, fi, node));
                    break;
                  case NodeKind::Call: {
                    int ci = functionIndex(node->callee);
                    if (ci < 0) {
                        r = LocationSet::top();
                        m = LocationSet::top();
                        break;
                    }
                    r.unionWith(
                        translate(ref_[ci], ci, g, fi, node));
                    m.unionWith(
                        translate(mod_[ci], ci, g, fi, node));
                    break;
                  }
                  default:
                    break;
                }
            });
            if (!(r == ref_[fi]) || !(m == mod_[fi])) {
                ref_[fi] = std::move(r);
                mod_[fi] = std::move(m);
                changed = true;
            }
        }
    }
}

int
InterprocModel::functionIndex(const FuncDecl* decl) const
{
    if (!decl)
        return -1;
    auto it = index_.find(decl);
    return it == index_.end() ? -1 : it->second;
}

LocationSet
InterprocModel::evalPtr(const Graph& g, int fnIdx, PortRef v,
                        std::set<const Node*>& visiting) const
{
    if (!v.valid())
        return LocationSet::top();
    const Node* n = v.node;
    if (visiting.count(n))
        return LocationSet();  // cycle: entries come from outside
    visiting.insert(n);
    LocationSet out;
    switch (n->kind) {
      case NodeKind::Const:
        out = globalsContaining(n->constValue, layout_);
        break;
      case NodeKind::Param:
        if (fnIdx < 0) {
            out = LocationSet::top();
        } else if (n->paramIndex >= 0 &&
                   n->paramIndex <
                       static_cast<int>(paramLoc_[fnIdx].size())) {
            int loc = paramLoc_[fnIdx][n->paramIndex];
            if (loc >= 0)
                out = LocationSet::single(loc);
            // Non-pointer parameter: addresses nothing.
        } else if (g.hasFrame) {
            // The frame-base input: any of this function's frame slots.
            for (int id : frameObjs_[fnIdx])
                out.insert(id);
        }
        break;
      case NodeKind::Arith: {
        // frameBase + constant offset is the address of one specific
        // frame slot (the shape lowering emits for every local):
        // resolve it by offset containment instead of smearing over
        // the whole frame.
        if (n->op == Op::Add && n->numInputs() == 2 && fnIdx >= 0 &&
            g.hasFrame) {
            const Node* a =
                n->input(0).valid() ? n->input(0).node : nullptr;
            const Node* b =
                n->input(1).valid() ? n->input(1).node : nullptr;
            const Node* base = nullptr;
            const Node* off = nullptr;
            auto isFrameBase = [&](const Node* p) {
                return p && p->kind == NodeKind::Param &&
                       p->paramIndex >=
                           static_cast<int>(paramLoc_[fnIdx].size());
            };
            if (isFrameBase(a) && b && b->kind == NodeKind::Const) {
                base = a;
                off = b;
            } else if (isFrameBase(b) && a &&
                       a->kind == NodeKind::Const) {
                base = b;
                off = a;
            }
            if (base) {
                for (int id : frameObjs_[fnIdx]) {
                    const MemObject& obj = layout_.object(id);
                    if (off->constValue >= obj.address &&
                        off->constValue <
                            static_cast<int64_t>(obj.address) +
                                obj.size)
                        out.insert(id);
                }
                if (!out.empty())
                    break;
            }
        }
        // Pointer arithmetic keeps the base objects; union over all
        // operands covers whichever side carries the pointer.
        for (const PortRef& in : n->inputs())
            out.unionWith(evalPtr(g, fnIdx, in, visiting));
        break;
      }
      case NodeKind::Mux:
        // [p0, d0, p1, d1, ...]: only the data arms flow through.
        for (int i = 1; i < n->numInputs(); i += 2)
            out.unionWith(evalPtr(g, fnIdx, n->input(i), visiting));
        break;
      case NodeKind::Merge:
        for (int i = 0; i < n->numInputs(); i++) {
            if (i == n->deciderIndex)
                continue;
            out.unionWith(evalPtr(g, fnIdx, n->input(i), visiting));
        }
        break;
      case NodeKind::Eta:
        out = evalPtr(g, fnIdx, n->input(0), visiting);
        break;
      case NodeKind::Load:
      case NodeKind::Call:
        // A pointer loaded from memory or returned by a call may
        // address anything.
        out = (v.port == 0) ? LocationSet::top() : LocationSet();
        break;
      default:
        // Tokens, predicates and other plumbing address nothing.
        break;
    }
    visiting.erase(n);
    return out;
}

LocationSet
InterprocModel::addrSet(const Graph& g, int fnIdx,
                        const Node* access) const
{
    // Load: [pred, token, addr]; Store: [pred, token, addr, value].
    if (access->numInputs() < 3)
        return LocationSet::top();
    std::set<const Node*> visiting;
    LocationSet s = evalPtr(g, fnIdx, access->input(2), visiting);
    return s.empty() ? LocationSet::top() : s;
}

LocationSet
InterprocModel::translate(const LocationSet& calleeSet, int calleeIdx,
                          const Graph& callerG, int callerIdx,
                          const Node* call) const
{
    if (calleeSet.isTop())
        return LocationSet::top();
    LocationSet out;
    const std::vector<int>& plocs = paramLoc_[calleeIdx];
    for (int loc : calleeSet.locations()) {
        if (loc < numObjects_) {
            // Concrete object: globals pass through, and callee frame
            // slots are *kept* — unordered calls into the same callee
            // share its statically placed frame.
            out.insert(loc);
            continue;
        }
        int param = -1;
        for (size_t p = 0; p < plocs.size(); p++) {
            if (plocs[p] == loc) {
                param = static_cast<int>(p);
                break;
            }
        }
        // Call: [pred, token, arg...] — argument p is input 2 + p.
        if (param < 0 || 2 + param >= call->numInputs())
            return LocationSet::top();
        std::set<const Node*> visiting;
        LocationSet arg = evalPtr(callerG, callerIdx,
                                  call->input(2 + param), visiting);
        if (arg.isTop() || arg.empty())
            return LocationSet::top();
        out.unionWith(arg);
    }
    return out;
}

LocationSet
InterprocModel::callReadSet(const Graph& g, const Node* call) const
{
    int ci = functionIndex(call->callee);
    if (ci < 0)
        return LocationSet::top();
    return translate(ref_[ci], ci, g, functionIndex(g.decl), call);
}

LocationSet
InterprocModel::callWriteSet(const Graph& g, const Node* call) const
{
    int ci = functionIndex(call->callee);
    if (ci < 0)
        return LocationSet::top();
    return translate(mod_[ci], ci, g, functionIndex(g.decl), call);
}

const LocationSet*
InterprocModel::funcRef(const FuncDecl* decl) const
{
    int i = functionIndex(decl);
    return i < 0 ? nullptr : &ref_[i];
}

const LocationSet*
InterprocModel::funcMod(const FuncDecl* decl) const
{
    int i = functionIndex(decl);
    return i < 0 ? nullptr : &mod_[i];
}

LocationSet
InterprocModel::pointsTo(const Graph& g, PortRef v) const
{
    std::set<const Node*> visiting;
    return evalPtr(g, functionIndex(g.decl), v, visiting);
}

} // namespace cash
