/**
 * @file
 * Independent memory-ordering soundness checker (the §4 invariant).
 *
 * Every optimization in §4–§6 is only correct if one property
 * survives: *any two memory operations that may conflict stay ordered
 * by a token path*.  This checker re-derives that property from
 * scratch — it recomputes each side effect's read/write sets from the
 * MemoryLayout/AliasOracle and walks the raw token edges itself,
 * deliberately sharing no code with the opt/ helpers it is checking.
 *
 * Algorithm: collect every node that produces or consumes a token
 * value, build the token edge relation over them, condense strongly
 * connected components (token rings are cycles) and propagate
 * bitset reachability in reverse topological order — one bit per
 * token node, so the closure is O(V·E/64) rather than O(n³).  A
 * second, forward-only closure (back edges excluded) serves the
 * transitive-reduction lint.  Conflicting side-effect pairs are then
 * filtered by hyperblock reachability, alias-oracle overlap (with
 * const objects exempt from read sets — nothing writes them) and, as
 * a last resort, same-iteration symbolic address disjointness, and
 * every surviving pair must be connected by the closure.
 */
#ifndef CASH_ANALYSIS_ORDERING_CHECKER_H
#define CASH_ANALYSIS_ORDERING_CHECKER_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/lint.h"
#include "analysis/memloc.h"
#include "frontend/layout.h"
#include "pegasus/graph.h"

namespace cash {

class InductionAnalysis;
class InterprocModel;
class SymbolicAddress;

/** Work counters of one checker run (bench_analyze_throughput). */
struct OrderingStats
{
    int64_t sideEffects = 0;      ///< Side-effect nodes examined.
    int64_t tokenNodes = 0;       ///< Nodes in the token graph.
    int64_t tokenEdges = 0;       ///< Token edges walked.
    int64_t pairsConsidered = 0;  ///< Side-effect pairs examined.
    int64_t pairsConflicting = 0; ///< Pairs that needed ordering.
    int64_t pairsSymbolic = 0;    ///< Pairs cleared symbolically.
};

/**
 * The checker for one graph.  Construction builds the token graph and
 * both reachability closures; queries are then O(1) bitset probes.
 * The graph must not be mutated while a checker is alive.
 */
class OrderingChecker
{
  public:
    /**
     * With a non-null @p interproc, calls get per-call-site effective
     * read/write sets from the independent interprocedural model
     * (analysis/interproc.h) instead of the conservative Top — the
     * mode that re-proves every `interproc_token_pruning` decision.
     */
    OrderingChecker(const Graph& g, const AliasOracle* oracle,
                    const MemoryLayout* layout,
                    const InterprocModel* interproc = nullptr);
    ~OrderingChecker();

    /**
     * Run the ordering-soundness rule: report every side effect whose
     * token anchor is missing or ill-typed, and every may-conflicting
     * side-effect pair with no token path in either direction.
     */
    void check(std::vector<LintFinding>& out);

    /** Is there a token path a ⇝ b (back edges included)? */
    bool tokenReaches(const Node* a, const Node* b) const;

    /** Token path a ⇝ b using forward (non-back) edges only. */
    bool tokenReachesForward(const Node* a, const Node* b) const;

    /** Ordered in either direction? */
    bool
    ordered(const Node* a, const Node* b) const
    {
        return tokenReaches(a, b) || tokenReaches(b, a);
    }

    /**
     * Might @p a and @p b dynamically coexist and touch a common
     * address with at least one write?  (Recomputed sets + oracle +
     * hyperblock reachability; no symbolic reasoning.)
     */
    bool mayConflict(const Node* a, const Node* b) const;

    /** Provably address-disjoint within one iteration context? */
    bool symbolicallyDisjoint(const Node* a, const Node* b);

    /** Live side-effect nodes, in node-id order. */
    const std::vector<const Node*>& sideEffects() const
    {
        return sideEffects_;
    }

    /** All nodes of the token graph, in node-id order. */
    const std::vector<const Node*>& tokenNodes() const
    {
        return tokenNodes_;
    }

    /**
     * The non-Combine producers feeding @p n's token input, found by
     * walking through Combine nodes only (independent reimplementation
     * of the token-source expansion used by the passes).
     */
    std::vector<const Node*> orderingSources(const Node* n) const;

    /** The recomputed effective read set of @p n (const-filtered). */
    LocationSet effectiveReadSet(const Node* n) const;

    /** The recomputed effective write set of @p n. */
    LocationSet effectiveWriteSet(const Node* n) const;

    const OrderingStats& stats() const { return stats_; }

  private:
    void buildTokenGraph();
    void buildClosure(bool includeBackEdges,
                      std::vector<uint64_t>& matrix);
    void buildHbReach();
    void buildProductive();
    void buildGates();
    bool productive(const Node* n) const;
    std::vector<PortRef> accessPreds(const Node* n) const;
    bool predsExclude(const Node* a, const Node* b) const;
    bool hbCoexist(const Node* a, const Node* b) const;
    bool returnExcludes(const Node* a, const Node* b) const;
    bool returnExcludesDir(const Node* x, const Node* y) const;
    bool reachBit(const std::vector<uint64_t>& matrix, const Node* a,
                  const Node* b) const;
    LocationSet refinedSet(const Node* n) const;

    const Graph& g_;
    const AliasOracle* oracle_;
    const MemoryLayout* layout_;
    const InterprocModel* interproc_;

    std::map<const Node*, int> index_;       ///< token node → dense id.
    std::vector<const Node*> tokenNodes_;
    std::vector<std::vector<int>> succAll_;  ///< All token edges.
    std::vector<std::vector<int>> succFwd_;  ///< Non-back token edges.
    int words_ = 0;                          ///< Bitset row width.
    std::vector<uint64_t> reachAll_;         ///< N×words_ closure.
    std::vector<uint64_t> reachFwd_;         ///< Forward-only closure.

    std::vector<const Node*> sideEffects_;
    std::vector<std::vector<bool>> hbReach_; ///< HB id → reachable ids.
    std::vector<bool> productive_;           ///< Token node can ever fire.
    std::vector<uint64_t> gateEta_;          ///< Dominating-eta bitsets.
    mutable std::map<const Node*, std::vector<PortRef>> predCache_;

    std::unique_ptr<InductionAnalysis> ivs_; ///< Lazy (symbolic only).
    std::unique_ptr<SymbolicAddress> sym_;

    OrderingStats stats_;
};

} // namespace cash

#endif // CASH_ANALYSIS_ORDERING_CHECKER_H
