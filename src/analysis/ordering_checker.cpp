#include "analysis/ordering_checker.h"

#include <algorithm>

#include "analysis/boolean.h"
#include "analysis/induction.h"
#include "analysis/interproc.h"
#include "analysis/symbolic.h"

namespace cash {

namespace {

/** Does @p n produce a token on any output port? */
bool
producesToken(const Node* n)
{
    for (int p = 0; p < n->numOutputs(); p++)
        if (n->outputType(p) == VT::Token)
            return true;
    return false;
}

/** Does @p n consume a token-typed value on any input? */
bool
consumesToken(const Node* n)
{
    for (int i = 0; i < n->numInputs(); i++) {
        const PortRef& in = n->input(i);
        if (in.valid() && in.node->outputType(in.port) == VT::Token)
            return true;
    }
    return false;
}

std::string
nodeDesc(const Node* n)
{
    return std::string(nodeKindName(n->kind)) + " n" +
           std::to_string(n->id);
}

} // namespace

OrderingChecker::OrderingChecker(const Graph& g,
                                 const AliasOracle* oracle,
                                 const MemoryLayout* layout,
                                 const InterprocModel* interproc)
    : g_(g), oracle_(oracle), layout_(layout), interproc_(interproc)
{
    buildTokenGraph();
    buildClosure(/*includeBackEdges=*/true, reachAll_);
    buildClosure(/*includeBackEdges=*/false, reachFwd_);
    buildHbReach();
    buildProductive();
    buildGates();
}

OrderingChecker::~OrderingChecker() = default;

void
OrderingChecker::buildTokenGraph()
{
    // Token-graph vertices: every live node that produces or consumes
    // a token value.  liveNodes() is node-id ordered, so the dense
    // indices (and with them every finding sequence) are deterministic.
    for (const Node* n : g_.liveNodes()) {
        if (producesToken(n) || consumesToken(n)) {
            index_[n] = static_cast<int>(tokenNodes_.size());
            tokenNodes_.push_back(n);
        }
        if (n->isSideEffect())
            sideEffects_.push_back(n);
    }
    stats_.tokenNodes = static_cast<int64_t>(tokenNodes_.size());
    stats_.sideEffects = static_cast<int64_t>(sideEffects_.size());

    const int n = static_cast<int>(tokenNodes_.size());
    succAll_.assign(n, {});
    succFwd_.assign(n, {});
    for (int vi = 0; vi < n; vi++) {
        const Node* v = tokenNodes_[vi];
        for (int i = 0; i < v->numInputs(); i++) {
            const PortRef& in = v->input(i);
            if (!in.valid() || in.node->dead ||
                in.node->outputType(in.port) != VT::Token)
                continue;
            auto it = index_.find(in.node);
            if (it == index_.end())
                continue;
            succAll_[it->second].push_back(vi);
            if (!v->inputIsBackEdge(i))
                succFwd_[it->second].push_back(vi);
            stats_.tokenEdges++;
        }
    }
}

/**
 * Reachability closure over the token graph: condense SCCs with an
 * iterative Tarjan walk, then OR successor bitsets in the reverse
 * topological order Tarjan emits SCCs in.  Every member of an SCC
 * shares the SCC's row (token rings are cycles: all mutually ordered).
 */
void
OrderingChecker::buildClosure(bool includeBackEdges,
                              std::vector<uint64_t>& matrix)
{
    const int n = static_cast<int>(tokenNodes_.size());
    words_ = (n + 63) / 64;
    matrix.assign(static_cast<size_t>(n) * words_, 0);
    if (n == 0)
        return;
    const std::vector<std::vector<int>>& succ =
        includeBackEdges ? succAll_ : succFwd_;

    // Iterative Tarjan SCC.
    std::vector<int> low(n, -1), num(n, -1), sccOf(n, -1);
    std::vector<bool> onStack(n, false);
    std::vector<int> stack;
    std::vector<std::vector<int>> sccs;
    int counter = 0;
    struct Frame
    {
        int v;
        size_t next;
    };
    for (int root = 0; root < n; root++) {
        if (num[root] != -1)
            continue;
        std::vector<Frame> frames{{root, 0}};
        num[root] = low[root] = counter++;
        stack.push_back(root);
        onStack[root] = true;
        while (!frames.empty()) {
            Frame& f = frames.back();
            if (f.next < succ[f.v].size()) {
                int w = succ[f.v][f.next++];
                if (num[w] == -1) {
                    num[w] = low[w] = counter++;
                    stack.push_back(w);
                    onStack[w] = true;
                    frames.push_back({w, 0});
                } else if (onStack[w]) {
                    low[f.v] = std::min(low[f.v], num[w]);
                }
            } else {
                if (low[f.v] == num[f.v]) {
                    sccs.emplace_back();
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        sccOf[w] = static_cast<int>(sccs.size()) - 1;
                        sccs.back().push_back(w);
                    } while (w != f.v);
                }
                int v = f.v;
                frames.pop_back();
                if (!frames.empty())
                    low[frames.back().v] =
                        std::min(low[frames.back().v], low[v]);
            }
        }
    }

    // Tarjan emits an SCC only after every SCC it can reach, so the
    // emission order is already reverse-topological: propagate rows in
    // that order.  row(S) = member bits of S ∪ rows of successor SCCs.
    std::vector<std::vector<uint64_t>> sccRow(
        sccs.size(), std::vector<uint64_t>(words_, 0));
    for (size_t s = 0; s < sccs.size(); s++) {
        std::vector<uint64_t>& row = sccRow[s];
        for (int v : sccs[s]) {
            row[v / 64] |= uint64_t(1) << (v % 64);
            for (int w : succ[v]) {
                if (sccOf[w] == static_cast<int>(s))
                    continue;
                const std::vector<uint64_t>& other = sccRow[sccOf[w]];
                for (int k = 0; k < words_; k++)
                    row[k] |= other[k];
            }
        }
    }
    for (int v = 0; v < n; v++)
        std::copy(sccRow[sccOf[v]].begin(), sccRow[sccOf[v]].end(),
                  matrix.begin() + static_cast<size_t>(v) * words_);

    // Singleton SCC without a self-loop: drop the reflexive bit so the
    // relation is "reachable via at least one edge" plus ring mutuals.
    for (int v = 0; v < n; v++) {
        if (sccs[sccOf[v]].size() > 1)
            continue;
        bool selfLoop = false;
        for (int w : succ[v])
            if (w == v)
                selfLoop = true;
        if (!selfLoop)
            matrix[static_cast<size_t>(v) * words_ + v / 64] &=
                ~(uint64_t(1) << (v % 64));
    }
}

void
OrderingChecker::buildHbReach()
{
    // Control may transfer a → b (transitively, self included): only
    // such hyperblock pairs can dynamically coexist in one call.
    size_t maxId = g_.hyperblocks.size();
    for (const HbInfo& hb : g_.hyperblocks)
        maxId = std::max(maxId, static_cast<size_t>(hb.id) + 1);
    hbReach_.assign(maxId, std::vector<bool>(maxId, false));
    for (const HbInfo& hb : g_.hyperblocks) {
        if (hb.id < 0 || static_cast<size_t>(hb.id) >= maxId)
            continue;
        std::vector<int> work{hb.id};
        hbReach_[hb.id][hb.id] = true;
        while (!work.empty()) {
            int cur = work.back();
            work.pop_back();
            for (const HbInfo& other : g_.hyperblocks) {
                if (other.id != cur)
                    continue;
                for (int s : other.successors) {
                    if (s < 0 || static_cast<size_t>(s) >= maxId ||
                        hbReach_[hb.id][s])
                        continue;
                    hbReach_[hb.id][s] = true;
                    work.push_back(s);
                }
            }
        }
    }
}

bool
OrderingChecker::hbCoexist(const Node* a, const Node* b) const
{
    int ha = a->hyperblock, hb = b->hyperblock;
    if (ha == hb)
        return true;
    // Unknown hyperblocks (hand-built graphs): assume the worst.
    if (ha < 0 || hb < 0 ||
        static_cast<size_t>(ha) >= hbReach_.size() ||
        static_cast<size_t>(hb) >= hbReach_.size())
        return true;
    return hbReach_[ha][hb] || hbReach_[hb][ha];
}

void
OrderingChecker::buildProductive()
{
    // Least fixpoint of "can this token-graph node ever fire?".  A
    // constant-folded branch leaves its loop subgraph in the graph
    // with ring merges that have only back-edge inputs: no forward
    // seed ever arrives, so the ring — and every side effect inside
    // it — is permanently starved.  Such nodes cannot participate in
    // a dynamic hazard.  Merges fire when ANY token input delivers;
    // every other consumer is a strict join and needs ALL of them.
    // Nodes with no token-graph inputs (init-token, token producers
    // fed purely by data) seed the fixpoint as productive.
    const size_t n = tokenNodes_.size();
    productive_.assign(n, false);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t vi = 0; vi < n; vi++) {
            if (productive_[vi])
                continue;
            const Node* v = tokenNodes_[vi];
            bool any = false, all = true, have = false;
            for (int i = 0; i < v->numInputs(); i++) {
                const PortRef& in = v->input(i);
                if (!in.valid() || in.node->dead ||
                    in.node->outputType(in.port) != VT::Token)
                    continue;
                auto it = index_.find(in.node);
                if (it == index_.end())
                    continue;
                have = true;
                if (productive_[it->second])
                    any = true;
                else
                    all = false;
            }
            if (!have || (v->kind == NodeKind::Merge ? any : all)) {
                productive_[vi] = true;
                changed = true;
            }
        }
    }
}

bool
OrderingChecker::productive(const Node* n) const
{
    auto it = index_.find(n);
    return it == index_.end() || productive_[it->second];
}

void
OrderingChecker::buildGates()
{
    // gate(v) = etas lying on EVERY forward token path from a source
    // to v: ∩ over forward predecessors u of (gate(u) ∪ {u if eta}),
    // ∅ at sources.  Kahn order over the forward DAG; anything left
    // unprocessed (a forward cycle would be a graph bug, but stay
    // safe) keeps an empty set, which only weakens the exclusion.
    const int n = static_cast<int>(tokenNodes_.size());
    gateEta_.assign(static_cast<size_t>(n) * words_, 0);
    if (n == 0)
        return;
    std::vector<std::vector<int>> inFwd(n);
    std::vector<int> indeg(n, 0);
    for (int u = 0; u < n; u++)
        for (int v : succFwd_[u]) {
            inFwd[v].push_back(u);
            indeg[v]++;
        }
    std::vector<int> work;
    for (int v = 0; v < n; v++)
        if (indeg[v] == 0)
            work.push_back(v);
    std::vector<bool> done(n, false);
    while (!work.empty()) {
        int v = work.back();
        work.pop_back();
        uint64_t* row = gateEta_.data() +
                        static_cast<size_t>(v) * words_;
        bool first = true;
        for (int u : inFwd[v]) {
            const uint64_t* urow =
                gateEta_.data() + static_cast<size_t>(u) * words_;
            for (int w = 0; w < words_; w++) {
                uint64_t via = urow[w];
                if (tokenNodes_[u]->kind == NodeKind::Eta &&
                    u / 64 == w)
                    via |= uint64_t(1) << (u % 64);
                if (first)
                    row[w] = via;
                else
                    row[w] &= via;
            }
            first = false;
        }
        done[v] = true;
        for (int s : succFwd_[v])
            if (--indeg[s] == 0)
                work.push_back(s);
    }
    // Unprocessed nodes (unexpected forward cycle): clear their rows.
    for (int v = 0; v < n; v++)
        if (!done[v])
            std::fill(gateEta_.begin() + static_cast<size_t>(v) * words_,
                      gateEta_.begin() +
                          static_cast<size_t>(v + 1) * words_,
                      0);
}

bool
OrderingChecker::returnExcludesDir(const Node* x, const Node* y) const
{
    // A predicated return terminates the invocation: when it fires,
    // the hyperblock's complementary exit etas never pass the token
    // on, so strictly-downstream hyperblocks starve.  Node @p x in
    // hb_x therefore never coexists with @p y in hb_y when control
    // can only flow x → y (no back path) and x fires only in
    // invocations where some return of hb_x fires — either because x
    // *is* that return, or because x's predicate implies the
    // return's.  Conversely, once the exit eta has fired the return
    // predicate was false, so x never fired.  Mutual hb reachability
    // (both inside a loop) stays conservative.
    int hx = x->hyperblock, hy = y->hyperblock;
    if (hx == hy || hx < 0 || hy < 0 ||
        static_cast<size_t>(hx) >= hbReach_.size() ||
        static_cast<size_t>(hy) >= hbReach_.size())
        return false;
    if (!hbReach_[hx][hy] || hbReach_[hy][hx])
        return false;
    if (x->kind == NodeKind::Return)
        return true;
    int px = x->predInIndex();
    if (px < 0 || px >= x->numInputs() || !x->input(px).valid())
        return false;
    for (const Node* r : sideEffects_) {
        if (r->kind != NodeKind::Return || r->hyperblock != hx)
            continue;
        int pr = r->predInIndex();
        if (pr < 0 || pr >= r->numInputs() || !r->input(pr).valid())
            continue;
        if (predImplies(x->input(px), r->input(pr)))
            return true;
    }
    return false;
}

bool
OrderingChecker::returnExcludes(const Node* a, const Node* b) const
{
    return returnExcludesDir(a, b) || returnExcludesDir(b, a);
}

bool
OrderingChecker::reachBit(const std::vector<uint64_t>& matrix,
                          const Node* a, const Node* b) const
{
    auto ia = index_.find(a);
    auto ib = index_.find(b);
    if (ia == index_.end() || ib == index_.end())
        return false;
    int bi = ib->second;
    return (matrix[static_cast<size_t>(ia->second) * words_ + bi / 64] >>
            (bi % 64)) &
           1;
}

bool
OrderingChecker::tokenReaches(const Node* a, const Node* b) const
{
    return reachBit(reachAll_, a, b);
}

bool
OrderingChecker::tokenReachesForward(const Node* a, const Node* b) const
{
    return reachBit(reachFwd_, a, b);
}

/**
 * Recompute @p n's access set from first principles: a constant
 * address is resolved against the MemoryLayout's global objects
 * (checking containment byte-for-byte), everything else keeps the
 * set recorded at construction.  This is the independence from the
 * opt/ helpers the checker exists for: a pass that corrupts rwSet
 * metadata on a statically addressed access is caught here.
 */
LocationSet
OrderingChecker::refinedSet(const Node* n) const
{
    if (!n->isMemoryAccess())
        return n->rwSet;
    if (layout_ && n->numInputs() > 2) {
        const PortRef& addr = n->input(2);
        if (addr.valid() && addr.node->kind == NodeKind::Const) {
            uint32_t a = static_cast<uint32_t>(addr.node->constValue);
            for (const MemObject& obj : layout_->objects()) {
                if (!obj.isGlobal)
                    continue;
                if (a >= obj.address &&
                    a + static_cast<uint32_t>(n->size) <=
                        obj.address + obj.size)
                    return LocationSet::single(obj.id);
            }
        }
    }
    return n->rwSet;
}

LocationSet
OrderingChecker::effectiveReadSet(const Node* n) const
{
    switch (n->kind) {
      case NodeKind::Load: {
        // Reads of const objects can never conflict: no (legal) write
        // targets them.  §4.2 relies on this when it detaches
        // immutable loads from the token graph entirely.
        LocationSet s = refinedSet(n);
        if (s.isTop() || !layout_)
            return s;
        LocationSet filtered;
        for (int loc : s.locations()) {
            if (loc >= 0 &&
                static_cast<size_t>(loc) < layout_->objects().size() &&
                layout_->object(loc).isConst)
                continue;
            filtered.insert(loc);
        }
        return filtered;
      }
      case NodeKind::Call:
        // Without an interprocedural model a call may read anything;
        // with one, resolve the call site against the current graph.
        if (interproc_)
            return interproc_->callReadSet(g_, n);
        return LocationSet::top();
      case NodeKind::Return:
        // A return must observe every store (the procedure's memory
        // effects complete before it does).
        return LocationSet::top();
      default:
        return LocationSet();
    }
}

LocationSet
OrderingChecker::effectiveWriteSet(const Node* n) const
{
    switch (n->kind) {
      case NodeKind::Store:
        return refinedSet(n);
      case NodeKind::Call:
        if (interproc_)
            return interproc_->callWriteSet(g_, n);
        return LocationSet::top();
      default:
        return LocationSet();
    }
}

bool
OrderingChecker::mayConflict(const Node* a, const Node* b) const
{
    if (!oracle_)
        return false;
    LocationSet ra = effectiveReadSet(a), wa = effectiveWriteSet(a);
    LocationSet rb = effectiveReadSet(b), wb = effectiveWriteSet(b);
    bool overlap = oracle_->mayOverlap(wa, rb) ||
                   oracle_->mayOverlap(wb, ra) ||
                   oracle_->mayOverlap(wa, wb);
    if (!overlap || !hbCoexist(a, b))
        return false;
    // A node that can never fire (starved ring behind a folded
    // branch) conflicts with nothing.
    if (!productive(a) || !productive(b))
        return false;
    if (returnExcludes(a, b))
        return false;
    // Mutually exclusive activations never conflict: the §2 example
    // runs both branch calls in parallel precisely because only one
    // predicate can be 1.  The builder encodes that exclusion as
    // block-level reachability while wiring tokens; predication
    // erases the blocks, so re-derive it from the predicates —
    // both the nodes' own predicate inputs and the predicates of
    // etas gating every token path that can feed them (a load
    // hoisted out of one branch stays exclusive with a store whose
    // ring is seeded from the other branch).
    if (predsExclude(a, b))
        return false;
    return true;
}

std::vector<PortRef>
OrderingChecker::accessPreds(const Node* n) const
{
    auto cached = predCache_.find(n);
    if (cached != predCache_.end())
        return cached->second;
    // Predicates that must be true for @p n to perform its memory
    // access: its own predicate input (a nullified access touches
    // nothing), plus the predicate of every eta that dominates all
    // forward token paths from the sources to @p n.  Ring back edges
    // never bypass such an eta: a value circulating a ring entered it
    // through the ring's forward seed, and an eta whose predicate was
    // false emits EOS, which the seeded merge discards — so a value
    // reaching @p n proves each dominating eta fired with a true
    // predicate.
    std::vector<PortRef> preds;
    int pi = n->predInIndex();
    if (pi >= 0 && pi < n->numInputs() && n->input(pi).valid())
        preds.push_back(n->input(pi));
    constexpr size_t kMaxPreds = 8;
    auto it = index_.find(n);
    if (it != index_.end() && !gateEta_.empty()) {
        const uint64_t* row =
            gateEta_.data() + static_cast<size_t>(it->second) * words_;
        for (int w = 0; w < words_ && preds.size() < kMaxPreds; w++) {
            uint64_t bits = row[w];
            while (bits && preds.size() < kMaxPreds) {
                int bit = __builtin_ctzll(bits);
                bits &= bits - 1;
                const Node* e = tokenNodes_[w * 64 + bit];
                int ep = e->predInIndex();
                if (ep >= 0 && ep < e->numInputs() &&
                    e->input(ep).valid())
                    preds.push_back(e->input(ep));
            }
        }
    }
    predCache_[n] = preds;
    return preds;
}

bool
OrderingChecker::predsExclude(const Node* a, const Node* b) const
{
    std::vector<PortRef> pa = accessPreds(a);
    std::vector<PortRef> pb = accessPreds(b);
    for (const PortRef& p : pa)
        for (const PortRef& q : pb)
            if (predDisjoint(p, q))
                return true;
    return false;
}

bool
OrderingChecker::symbolicallyDisjoint(const Node* a, const Node* b)
{
    if (!a->isMemoryAccess() || !b->isMemoryAccess() ||
        a->numInputs() <= 2 || b->numInputs() <= 2)
        return false;
    // Same-iteration disjointness only applies to accesses that
    // advance in lockstep; restrict to a common hyperblock.
    if (a->hyperblock != b->hyperblock)
        return false;
    if (!sym_) {
        ivs_.reset(new InductionAnalysis(g_));
        sym_.reset(new SymbolicAddress(ivs_.get()));
    }
    AffineExpr ea = sym_->expr(a->input(2));
    AffineExpr eb = sym_->expr(b->input(2));
    return SymbolicAddress::disjoint(ea, a->size, eb, b->size);
}

std::vector<const Node*>
OrderingChecker::orderingSources(const Node* n) const
{
    std::vector<const Node*> out;
    int ti = n->tokenInIndex();
    if (ti < 0 || ti >= n->numInputs())
        return out;
    const PortRef& root = n->input(ti);
    if (!root.valid())
        return out;
    std::vector<const Node*> work{root.node};
    std::set<const Node*> seen;
    while (!work.empty()) {
        const Node* cur = work.back();
        work.pop_back();
        if (!seen.insert(cur).second)
            continue;
        if (cur->kind == NodeKind::Combine) {
            for (int i = 0; i < cur->numInputs(); i++)
                if (cur->input(i).valid())
                    work.push_back(cur->input(i).node);
        } else {
            out.push_back(cur);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Node* a, const Node* b) { return a->id < b->id; });
    return out;
}

void
OrderingChecker::check(std::vector<LintFinding>& out)
{
    // Part 1 — anchoring: every token consumer must actually have a
    // well-typed token input.  A detached side effect can fire the
    // moment its other inputs arrive, unordered against everything;
    // this is exactly what `graph.corrupt-token` injection produces.
    // Scan all live nodes, not just the token graph: a corrupted
    // Return in a store-free function neither produces nor consumes a
    // token any more, yet is exactly the node that must be reported.
    for (const Node* n : g_.liveNodes()) {
        int ti = n->tokenInIndex();
        if (ti < 0)
            continue;
        std::string problem;
        if (ti >= n->numInputs())
            problem = "its token input slot is missing";
        else if (!n->input(ti).valid())
            problem = "its token input is disconnected";
        else if (n->input(ti).node->outputType(n->input(ti).port) !=
                 VT::Token)
            problem = std::string("its token input reads a ") +
                      vtName(n->input(ti).node->outputType(
                          n->input(ti).port)) +
                      " value from " + nodeDesc(n->input(ti).node);
        if (problem.empty())
            continue;
        LintFinding f;
        f.rule = "ordering-soundness";
        f.severity = LintSeverity::Error;
        f.func = g_.name;
        f.nodeA = n->id;
        if (n->loc.valid())
            f.location = n->loc.str();
        f.explanation = nodeDesc(n) +
                        " is not anchored in the token graph: " +
                        problem;
        out.push_back(f);
    }

    // Part 2 — ordering: every may-conflicting side-effect pair must
    // be connected by a token path in some direction.
    for (size_t i = 0; i < sideEffects_.size(); i++) {
        for (size_t j = i + 1; j < sideEffects_.size(); j++) {
            const Node* a = sideEffects_[i];
            const Node* b = sideEffects_[j];
            stats_.pairsConsidered++;
            if (effectiveWriteSet(a).empty() &&
                effectiveWriteSet(b).empty())
                continue;  // read–read never conflicts
            if (!mayConflict(a, b))
                continue;
            stats_.pairsConflicting++;
            if (ordered(a, b))
                continue;
            if (symbolicallyDisjoint(a, b)) {
                stats_.pairsSymbolic++;
                continue;
            }
            LintFinding f;
            f.rule = "ordering-soundness";
            f.severity = LintSeverity::Error;
            f.func = g_.name;
            f.nodeA = a->id;
            f.nodeB = b->id;
            if (a->loc.valid())
                f.location = a->loc.str();
            else if (b->loc.valid())
                f.location = b->loc.str();
            f.explanation =
                nodeDesc(a) + " (rw " + refinedSet(a).str() + ") and " +
                nodeDesc(b) + " (rw " + refinedSet(b).str() +
                ") may touch a common address but no token path orders"
                " them";
            out.push_back(f);
        }
    }
}

} // namespace cash
