/**
 * @file
 * Whole-program MOD/REF summaries over the CFG IR.
 *
 * The paper's memory-ordering construction treats every call as
 * reading and writing Top, so cross-call token edges serialize all
 * memory traffic at call boundaries.  This layer computes, per
 * function, the set of abstract locations it may read (REF) and
 * write (MOD) — including everything reachable through its callees —
 * and then resolves those summaries at every call site by translating
 * the callee's pointer-parameter external locations through the
 * caller's points-to bindings for the actual arguments.
 *
 * Structure (docs/ANALYSIS.md, "Interprocedural MOD/REF"):
 *   1. call graph over CfgProgram (Instr::callee), condensed with an
 *      iterative Tarjan SCC pass so recursion becomes a fixpoint over
 *      one component;
 *   2. bottom-up summary computation in reverse topological order of
 *      the condensation: Load/Store contribute their points-to rwSets,
 *      calls contribute the callee summary translated through the
 *      call site's argument location sets (Instr::argPts);
 *   3. per-call-site effective read/write sets stamped onto the call
 *      Instr (callReads/callWrites/callEffectsValid) for the builder,
 *      the partitioner and the `interproc_token_pruning` pass.
 *
 * Top only enters through genuine unknowns: a callee with no body, a
 * pointer argument whose points-to set is unknown, or an access whose
 * own rwSet is already Top (e.g. a pointer loaded back from memory).
 * Callee frame objects stay in the translated sets on purpose: two
 * unordered calls into the same function share its statically placed
 * frame, so their summaries must keep conflicting on it.
 *
 * The independent checker-side rederivation lives in
 * analysis/interproc.{h,cpp} and shares no code with this file.
 */
#ifndef CASH_ANALYSIS_MODREF_H
#define CASH_ANALYSIS_MODREF_H

#include <memory>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "frontend/layout.h"

namespace cash {

/** Whole-function summary, in the function's own location space. */
struct FunctionModRef
{
    std::string name;
    const FuncDecl* decl = nullptr;
    LocationSet ref;          ///< May-read locations.
    LocationSet mod;          ///< May-write locations.
    bool recursive = false;   ///< Member of a nontrivial SCC/self-loop.
    int scc = -1;             ///< Condensation component id.
    int callSites = 0;        ///< Call instructions in the body.
};

/** One call site's resolved effects, in the caller's location space. */
struct CallSiteModRef
{
    std::string caller;
    std::string callee;
    int block = -1;           ///< Basic-block id of the call.
    int index = -1;           ///< Instruction index within the block.
    LocationSet reads;
    LocationSet writes;
};

/**
 * The computed program summaries.  Deterministic: functions in
 * declaration order, call sites in (function, block, index) order.
 */
class ModRefSummaries
{
  public:
    const std::vector<FunctionModRef>& functions() const
    {
        return functions_;
    }
    const std::vector<CallSiteModRef>& callSites() const
    {
        return callSites_;
    }

    /** Summary of @p decl, or null when unknown. */
    const FunctionModRef* byDecl(const FuncDecl* decl) const;

    /** Human-readable name of abstract location @p loc. */
    std::string locName(int loc) const;
    /** "{a,b,main.p}" rendering of @p s with symbolic names. */
    std::string setStr(const LocationSet& s) const;

    /** `cashc --dump-summaries` text: one line per function/site. */
    std::string dump() const;
    /** The `analysis.summaries` JSON object body (docs/SCHEMAS.md). */
    std::string json() const;

  private:
    friend ModRefSummaries computeModRef(CfgProgram&,
                                         const MemoryLayout&, bool);
    std::vector<FunctionModRef> functions_;
    std::vector<CallSiteModRef> callSites_;
    /** loc id → symbolic name (object or "func.param"). */
    std::vector<std::string> locNames_;
};

/**
 * Compute summaries for @p cfg (points-to must have run).  With
 * @p stampCalls, every call Instr gets callReads/callWrites/
 * callEffectsValid set so construction and optimization can consume
 * per-call-site effects; without it the program is left untouched
 * (dump-only use at levels where pruning is off).
 */
ModRefSummaries computeModRef(CfgProgram& cfg,
                              const MemoryLayout& layout,
                              bool stampCalls);

} // namespace cash

#endif // CASH_ANALYSIS_MODREF_H
