/**
 * @file
 * Structural boolean reasoning on predicate networks (paper §5: "our
 * algorithms rely on boolean manipulation of the controlling
 * predicates").
 */
#ifndef CASH_ANALYSIS_BOOLEAN_H
#define CASH_ANALYSIS_BOOLEAN_H

#include "pegasus/graph.h"

namespace cash {

/** Is @p p the constant true (false) predicate? */
bool isTruePred(PortRef p);
bool isFalsePred(PortRef p);

/**
 * Does @p p imply @p q (whenever p is 1, q is 1)?  Sound but
 * incomplete: structural rules over And/Or/Not with a depth bound.
 * Used for store post-dominance (§5.2: "each predicate of an earlier
 * store implies the predicate of the latter one").
 */
bool predImplies(PortRef p, PortRef q);

/**
 * Are @p p and @p q disjoint (never simultaneously 1)?  Sound but
 * incomplete.
 */
bool predDisjoint(PortRef p, PortRef q);

} // namespace cash

#endif // CASH_ANALYSIS_BOOLEAN_H
