#include "analysis/lint.h"

#include <algorithm>

#include "analysis/interproc.h"
#include "analysis/ordering_checker.h"
#include "pegasus/reachability.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace cash {

const char*
lintSeverityName(LintSeverity s)
{
    switch (s) {
      case LintSeverity::Info: return "info";
      case LintSeverity::Warn: return "warn";
      case LintSeverity::Error: return "error";
    }
    return "?";
}

std::string
LintFinding::str() const
{
    std::string s = std::string("[") + lintSeverityName(severity) +
                    "] " + rule + " in '" + func + "'";
    if (nodeA >= 0) {
        s += " n" + std::to_string(nodeA);
        if (nodeB >= 0)
            s += "/n" + std::to_string(nodeB);
    }
    if (!location.empty())
        s += " at " + location;
    return s + ": " + explanation;
}

std::string
LintFinding::json() const
{
    std::string s = std::string("{\"rule\": \"") + jsonEscape(rule) +
                    "\", \"severity\": \"" + lintSeverityName(severity) +
                    "\", \"function\": \"" + jsonEscape(func) +
                    "\", \"nodeA\": " + std::to_string(nodeA) +
                    ", \"nodeB\": " + std::to_string(nodeB) +
                    ", \"location\": \"" + jsonEscape(location) +
                    "\", \"explanation\": \"" + jsonEscape(explanation) +
                    "\"}";
    return s;
}

int64_t
LintReport::countSeverity(LintSeverity s) const
{
    int64_t n = 0;
    for (const LintFinding& f : findings)
        if (f.severity == s)
            n++;
    return n;
}

namespace {

std::string
nodeDesc(const Node* n)
{
    return std::string(nodeKindName(n->kind)) + " n" +
           std::to_string(n->id);
}

/**
 * The non-Combine producers feeding @p n's token input (walking
 * through Combine chains only), node-id sorted.  Kept local so the
 * lint layer stays independent of the opt/ helpers it audits.
 */
std::vector<const Node*>
tokenSourceNodes(const Node* n)
{
    std::vector<const Node*> out;
    int ti = n->tokenInIndex();
    if (ti < 0 || ti >= n->numInputs() || !n->input(ti).valid())
        return out;
    std::vector<const Node*> work{n->input(ti).node};
    std::set<const Node*> seen;
    while (!work.empty()) {
        const Node* cur = work.back();
        work.pop_back();
        if (!seen.insert(cur).second)
            continue;
        if (cur->kind == NodeKind::Combine) {
            for (int i = 0; i < cur->numInputs(); i++)
                if (cur->input(i).valid())
                    work.push_back(cur->input(i).node);
        } else {
            out.push_back(cur);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Node* a, const Node* b) { return a->id < b->id; });
    return out;
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/** The §4 invariant: conflicting memory ops stay token-ordered. */
class OrderingSoundnessRule : public LintRule
{
  public:
    const char* name() const override { return "ordering_soundness"; }
    LintSeverity severity() const override { return LintSeverity::Error; }
    const char*
    description() const override
    {
        return "conflicting memory operations must be ordered by a"
               " token path";
    }

    void
    run(const Graph& g, const LintContext& ctx,
        std::vector<LintFinding>& out) const override
    {
        OrderingChecker checker(g, ctx.oracle, ctx.layout,
                                ctx.interproc);
        checker.check(out);
    }
};

/** Token edges already implied by the closure (missed §3.4). */
class RedundantTokenEdgeRule : public LintRule
{
  public:
    const char* name() const override { return "redundant_token_edge"; }
    LintSeverity severity() const override { return LintSeverity::Warn; }
    const char*
    description() const override
    {
        return "token edge implied by the transitive closure (missed"
               " transitive reduction)";
    }

    void
    run(const Graph& g, const LintContext& ctx,
        std::vector<LintFinding>& out) const override
    {
        OrderingChecker checker(g, ctx.oracle, ctx.layout);
        for (const Node* n : checker.tokenNodes()) {
            if (n->tokenInIndex() < 0)
                continue;
            std::vector<const Node*> sources = tokenSourceNodes(n);
            if (sources.size() < 2)
                continue;
            for (const Node* u : sources) {
                const Node* via = nullptr;
                for (const Node* w : sources) {
                    // Forward-only reach: a loop-carried path does not
                    // make an intra-iteration edge redundant.
                    if (w != u && checker.tokenReachesForward(u, w)) {
                        via = w;
                        break;
                    }
                }
                if (!via)
                    continue;
                LintFinding f;
                f.rule = "redundant-token-edge";
                f.severity = LintSeverity::Warn;
                f.func = g.name;
                f.nodeA = u->id;
                f.nodeB = n->id;
                if (n->loc.valid())
                    f.location = n->loc.str();
                f.explanation =
                    "token edge " + nodeDesc(u) + " -> " + nodeDesc(n) +
                    " is redundant: " + nodeDesc(u) +
                    " already reaches " + nodeDesc(via) +
                    ", another token source of the same consumer";
                out.push_back(f);
            }
        }
    }
};

/** Token plumbing from which no side effect is reachable. */
class DeadTokenSinkRule : public LintRule
{
  public:
    const char* name() const override { return "dead_token_sink"; }
    LintSeverity severity() const override { return LintSeverity::Warn; }
    const char*
    description() const override
    {
        return "token chain feeding no side effect (starves silently"
               " in simulation)";
    }

    void
    run(const Graph& g, const LintContext& ctx,
        std::vector<LintFinding>& out) const override
    {
        OrderingChecker checker(g, ctx.oracle, ctx.layout);
        for (const Node* n : checker.tokenNodes()) {
            bool plumbing =
                n->kind == NodeKind::Combine ||
                n->kind == NodeKind::TokenGen ||
                ((n->kind == NodeKind::Merge ||
                  n->kind == NodeKind::Eta ||
                  n->kind == NodeKind::Const) &&
                 n->type == VT::Token);
            if (!plumbing)
                continue;
            bool useful = false;
            for (const Node* s : checker.sideEffects()) {
                if (checker.tokenReaches(n, s)) {
                    useful = true;
                    break;
                }
            }
            if (useful)
                continue;
            LintFinding f;
            f.rule = "dead-token-sink";
            f.severity = LintSeverity::Warn;
            f.func = g.name;
            f.nodeA = n->id;
            if (n->loc.valid())
                f.location = n->loc.str();
            f.explanation =
                nodeDesc(n) + " carries tokens that can never order a"
                " side effect; the chain is dead weight (or a starved"
                " remnant of a broken rewrite)";
            out.push_back(f);
        }
    }
};

/** `#pragma independent` claims the access sets contradict. */
class UnprovablePragmaRule : public LintRule
{
  public:
    const char* name() const override { return "unprovable_pragma"; }
    LintSeverity severity() const override { return LintSeverity::Warn; }
    const char*
    description() const override
    {
        return "#pragma independent asserts independence the points-to"
               " analysis cannot support";
    }

    void
    run(const Graph& g, const LintContext& ctx,
        std::vector<LintFinding>& out) const override
    {
        if (!ctx.oracle)
            return;
        for (const auto& [a, b] : ctx.oracle->independentPairs()) {
            for (const Node* n : g.liveNodes()) {
                if (!n->isMemoryAccess() || n->rwSet.isTop())
                    continue;
                const std::set<int>& locs = n->rwSet.locations();
                if (!locs.count(a) || !locs.count(b))
                    continue;
                LintFinding f;
                f.rule = "unprovable-pragma";
                f.severity = LintSeverity::Warn;
                f.func = g.name;
                f.nodeA = n->id;
                if (n->loc.valid())
                    f.location = n->loc.str();
                if (a == b)
                    f.explanation =
                        "#pragma independent declares location " +
                        std::to_string(a) +
                        " independent of itself; " + nodeDesc(n) +
                        " touches it — the pragma is unsound and"
                        " disambiguation built on it is unsafe";
                else
                    f.explanation =
                        "#pragma independent separates locations " +
                        std::to_string(a) + " and " + std::to_string(b) +
                        ", but " + nodeDesc(n) + " (rw " +
                        n->rwSet.str() +
                        ") may touch both — the independence claim is"
                        " not provable from the points-to facts";
                out.push_back(f);
            }
        }
    }
};

/** Equivalent memory ops the §5.1 merger could still combine. */
class MergeableResidueRule : public LintRule
{
  public:
    const char* name() const override { return "mergeable_residue"; }
    LintSeverity severity() const override { return LintSeverity::Info; }
    const char*
    description() const override
    {
        return "equivalent memory operations left unmerged after"
               " redundancy elimination";
    }

    void
    run(const Graph& g, const LintContext& ctx,
        std::vector<LintFinding>& out) const override
    {
        (void)ctx;
        std::vector<const Node*> ops;
        for (const Node* n : g.liveNodes()) {
            // Full arity only: a malformed access (e.g. a corrupted
            // token input) is ordering-soundness's problem, not ours.
            int want = n->kind == NodeKind::Load ? 3 : 4;
            if (n->isMemoryAccess() && n->numInputs() == want)
                ops.push_back(n);
        }
        ReachabilityCache reach(g);
        for (size_t i = 0; i < ops.size(); i++) {
            for (size_t j = i + 1; j < ops.size(); j++) {
                const Node* a = ops[i];
                const Node* b = ops[j];
                if (a->kind != b->kind ||
                    a->hyperblock != b->hyperblock ||
                    a->size != b->size ||
                    a->signExtend != b->signExtend ||
                    !(a->input(2) == b->input(2)))
                    continue;
                if (tokenSourceNodes(a) != tokenSourceNodes(b))
                    continue;
                // Same cycle guard the merger applies: a pair it
                // would refuse to merge is not residue.
                if (reach.reaches(b, a->input(0).node) ||
                    reach.reaches(a, b->input(0).node))
                    continue;
                if (a->kind == NodeKind::Store &&
                    (reach.reaches(b, a->input(3).node) ||
                     reach.reaches(a, b->input(3).node)))
                    continue;
                LintFinding f;
                f.rule = "mergeable-residue";
                f.severity = LintSeverity::Info;
                f.func = g.name;
                f.nodeA = a->id;
                f.nodeB = b->id;
                if (a->loc.valid())
                    f.location = a->loc.str();
                f.explanation =
                    nodeDesc(a) + " and " + nodeDesc(b) +
                    " access the same address with the same width and"
                    " token sources; memory_merge (§5.1) could combine"
                    " them";
                out.push_back(f);
            }
        }
    }
};

/** True when every location of @p a is covered by @p b. */
bool
subsetOf(const LocationSet& a, const LocationSet& b)
{
    if (b.isTop())
        return true;
    if (a.isTop())
        return false;
    for (int loc : a.locations())
        if (!b.locations().count(loc))
            return false;
    return true;
}

/**
 * Effect sets of one side effect for the interprocedural rules: calls
 * resolve through the independent model, memory accesses keep their
 * construction sets.  Returns false for kinds the rules skip (Return,
 * plumbing) and for unbounded sets.
 */
bool
interprocEffects(const Graph& g, const Node* n,
                 const InterprocModel& model, LocationSet* reads,
                 LocationSet* writes)
{
    switch (n->kind) {
      case NodeKind::Load:
        if (n->rwSet.isTop())
            return false;
        *reads = n->rwSet;
        return true;
      case NodeKind::Store:
        if (n->rwSet.isTop())
            return false;
        *writes = n->rwSet;
        return true;
      case NodeKind::Call: {
        LocationSet r = model.callReadSet(g, n);
        LocationSet w = model.callWriteSet(g, n);
        if (r.isTop() || w.isTop())
            return false;
        *reads = std::move(r);
        *writes = std::move(w);
        return true;
      }
      default:
        return false;
    }
}

/**
 * A direct cross-call token edge whose endpoint effects the
 * independent model proves disjoint: `interproc_token_pruning` would
 * remove it, but the pass was off (ipo=off / below opt=full) or could
 * not prove it from its own summaries.
 */
class PrunableCallEdgeRule : public LintRule
{
  public:
    const char* name() const override { return "prunable_call_edge"; }
    LintSeverity severity() const override { return LintSeverity::Info; }
    const char*
    description() const override
    {
        return "cross-call token edge between provably disjoint side"
               " effects (interproc_token_pruning would drop it)";
    }

    void
    run(const Graph& g, const LintContext& ctx,
        std::vector<LintFinding>& out) const override
    {
        if (!ctx.oracle || !ctx.interproc)
            return;
        for (const Node* n : g.liveNodes()) {
            if (n->kind != NodeKind::Load &&
                n->kind != NodeKind::Store &&
                n->kind != NodeKind::Call)
                continue;
            LocationSet rn, wn;
            if (!interprocEffects(g, n, *ctx.interproc, &rn, &wn))
                continue;
            for (const Node* j : tokenSourceNodes(n)) {
                if (n->kind != NodeKind::Call &&
                    j->kind != NodeKind::Call)
                    continue;  // intraprocedural pairs: token_removal
                LocationSet rj, wj;
                if (!interprocEffects(g, j, *ctx.interproc, &rj, &wj))
                    continue;
                if (ctx.oracle->mayOverlap(wn, rj) ||
                    ctx.oracle->mayOverlap(wj, rn) ||
                    ctx.oracle->mayOverlap(wn, wj))
                    continue;
                LintFinding f;
                f.rule = "prunable-call-edge";
                f.severity = LintSeverity::Info;
                f.func = g.name;
                f.nodeA = j->id;
                f.nodeB = n->id;
                if (n->loc.valid())
                    f.location = n->loc.str();
                f.explanation =
                    "token edge " + nodeDesc(j) + " -> " + nodeDesc(n) +
                    " orders side effects with disjoint interprocedural"
                    " effect sets; interproc_token_pruning would remove"
                    " it (kept: pruning disabled at this level, or the"
                    " optimizer's own summaries could not prove the"
                    " disjointness)";
                out.push_back(f);
            }
        }
    }
};

/**
 * The optimizer's stamped per-call-site effects must cover everything
 * the independent rederivation believes possible — a stamp that claims
 * *less* means the pruning pass may have dropped a required edge.
 */
class SummaryDivergenceRule : public LintRule
{
  public:
    const char* name() const override { return "summary_divergence"; }
    LintSeverity severity() const override { return LintSeverity::Error; }
    const char*
    description() const override
    {
        return "optimizer call-effect stamps disagree with the"
               " independent interprocedural rederivation";
    }

    void
    run(const Graph& g, const LintContext& ctx,
        std::vector<LintFinding>& out) const override
    {
        if (!ctx.interproc)
            return;
        for (const Node* n : g.liveNodes()) {
            if (n->kind != NodeKind::Call || !n->callEffectsValid)
                continue;
            LocationSet reads = ctx.interproc->callReadSet(g, n);
            LocationSet writes = ctx.interproc->callWriteSet(g, n);
            std::string problem;
            if (!subsetOf(reads, n->callReads))
                problem = "rederived read set " + reads.str() +
                          " is not covered by the stamped " +
                          n->callReads.str();
            else if (!subsetOf(writes, n->callWrites))
                problem = "rederived write set " + writes.str() +
                          " is not covered by the stamped " +
                          n->callWrites.str();
            if (problem.empty())
                continue;
            LintFinding f;
            f.rule = "summary-divergence";
            f.severity = LintSeverity::Error;
            f.func = g.name;
            f.nodeA = n->id;
            if (n->loc.valid())
                f.location = n->loc.str();
            f.explanation =
                nodeDesc(n) + " (" +
                (n->callee ? n->callee->name : std::string("?")) +
                "): " + problem +
                "; every optimization that consumed the stamp is"
                " suspect";
            out.push_back(f);
        }
    }
};

/** Registry keys spell '-' and '_' interchangeably (as PassRegistry). */
std::string
normalizeRuleName(const std::string& name)
{
    std::string key = name;
    for (char& c : key)
        if (c == '-')
            c = '_';
    return key;
}

} // namespace

// ---------------------------------------------------------------------
// LintRegistry
// ---------------------------------------------------------------------

LintRegistry&
LintRegistry::global()
{
    static LintRegistry* registry = [] {
        auto* r = new LintRegistry();
        r->registerRule("ordering_soundness", [] {
            return std::unique_ptr<LintRule>(new OrderingSoundnessRule());
        });
        r->registerRule("redundant_token_edge", [] {
            return std::unique_ptr<LintRule>(new RedundantTokenEdgeRule());
        });
        r->registerRule("dead_token_sink", [] {
            return std::unique_ptr<LintRule>(new DeadTokenSinkRule());
        });
        r->registerRule("unprovable_pragma", [] {
            return std::unique_ptr<LintRule>(new UnprovablePragmaRule());
        });
        r->registerRule("mergeable_residue", [] {
            return std::unique_ptr<LintRule>(new MergeableResidueRule());
        });
        r->registerRule("summary_divergence", [] {
            return std::unique_ptr<LintRule>(new SummaryDivergenceRule());
        });
        r->registerRule("prunable_call_edge", [] {
            return std::unique_ptr<LintRule>(new PrunableCallEdgeRule());
        });
        return r;
    }();
    return *registry;
}

void
LintRegistry::registerRule(const std::string& name, Factory factory)
{
    std::lock_guard<std::mutex> lock(mu_);
    factories_[normalizeRuleName(name)] = std::move(factory);
}

bool
LintRegistry::has(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(normalizeRuleName(name)) != 0;
}

std::vector<std::string>
LintRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [k, _] : factories_)
        out.push_back(k);
    return out;
}

std::unique_ptr<LintRule>
LintRegistry::create(const std::string& name) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = factories_.find(normalizeRuleName(name));
        if (it != factories_.end())
            factory = it->second;
    }
    if (!factory)
        fatal("unknown lint rule '" + name + "' (available: " +
              join(names(), ", ") + ")");
    return factory();
}

std::vector<std::string>
standardLintNames()
{
    return {"ordering-soundness", "redundant-token-edge",
            "dead-token-sink", "unprovable-pragma",
            "mergeable-residue", "summary-divergence",
            "prunable-call-edge"};
}

LintReport
runLints(const std::vector<const Graph*>& graphs,
         const LintContext& ctx,
         const std::vector<std::string>& ruleNames)
{
    const std::vector<std::string>& names =
        ruleNames.empty() ? standardLintNames() : ruleNames;
    std::vector<std::unique_ptr<LintRule>> rules;
    rules.reserve(names.size());
    for (const std::string& n : names)
        rules.push_back(LintRegistry::global().create(n));

    TraceRecorder* tracer =
        ctx.tracer && ctx.tracer->enabled() ? ctx.tracer : nullptr;

    LintReport report;
    for (const Graph* g : graphs) {
        for (size_t ri = 0; ri < rules.size(); ri++) {
            uint64_t t0 = tracer ? tracer->nowUs() : 0;
            size_t before = report.findings.size();
            rules[ri]->run(*g, ctx, report.findings);
            int64_t found =
                static_cast<int64_t>(report.findings.size() - before);
            if (ctx.stats && found)
                ctx.stats->add(
                    std::string("analysis.") + rules[ri]->name() +
                        ".count",
                    found);
            if (tracer)
                tracer->completeEvent(
                    std::string("lint ") + rules[ri]->name(),
                    "analysis", t0, tracer->nowUs() - t0,
                    {{"graph", g->name},
                     {"rule", std::string(rules[ri]->name())},
                     {"findings", found}});
        }
    }
    if (ctx.stats) {
        ctx.stats->add("analysis.findings",
                       static_cast<int64_t>(report.findings.size()));
        ctx.stats->add("analysis.errors", report.errors());
        ctx.stats->add("analysis.warnings", report.warnings());
        ctx.stats->add("analysis.infos", report.infos());
    }
    return report;
}

} // namespace cash
