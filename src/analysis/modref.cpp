#include "analysis/modref.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/strings.h"
#include "support/trace.h"

namespace cash {

namespace {

/** One call instruction, positioned for deterministic reporting. */
struct CallRef
{
    int block = -1;
    int index = -1;
    Instr* instr = nullptr;
    int calleeIdx = -1;  ///< Index into cfg.functions, -1 = unknown.
};

/**
 * Translate a callee-space location set into the caller's space at
 * one call site: concrete objects (globals and callee frame slots)
 * pass through, the callee's pointer-param externals are replaced by
 * the caller's points-to set for the matching argument, and any
 * unknown binding degrades to Top.
 */
LocationSet
translateSet(const LocationSet& s, int calleeIdx, const Instr& call,
             const CfgProgram& cfg, int numObjects)
{
    if (s.isTop())
        return LocationSet::top();
    LocationSet out;
    const std::vector<int>& plocs = cfg.paramLocation[calleeIdx];
    for (int loc : s.locations()) {
        if (loc < numObjects) {
            out.insert(loc);
            continue;
        }
        int param = -1;
        for (size_t p = 0; p < plocs.size(); p++) {
            if (plocs[p] == loc) {
                param = static_cast<int>(p);
                break;
            }
        }
        if (param < 0 ||
            param >= static_cast<int>(call.argPts.size()))
            return LocationSet::top();
        const LocationSet& arg = call.argPts[param];
        if (arg.isTop() || arg.empty())
            return LocationSet::top();
        out.unionWith(arg);
    }
    return out;
}

/** Iterative Tarjan SCC over the call graph (caller → callee). */
void
condense(const std::vector<std::vector<int>>& succ,
         std::vector<int>* sccOf, int* numSccs)
{
    int n = static_cast<int>(succ.size());
    sccOf->assign(n, -1);
    std::vector<int> low(n, -1), disc(n, -1), stack;
    std::vector<bool> onStack(n, false);
    int time = 0, comps = 0;

    struct Frame
    {
        int v;
        size_t edge;
    };
    for (int root = 0; root < n; root++) {
        if (disc[root] >= 0)
            continue;
        std::vector<Frame> frames{{root, 0}};
        disc[root] = low[root] = time++;
        stack.push_back(root);
        onStack[root] = true;
        while (!frames.empty()) {
            Frame& f = frames.back();
            if (f.edge < succ[f.v].size()) {
                int w = succ[f.v][f.edge++];
                if (disc[w] < 0) {
                    disc[w] = low[w] = time++;
                    stack.push_back(w);
                    onStack[w] = true;
                    frames.push_back({w, 0});
                } else if (onStack[w]) {
                    low[f.v] = std::min(low[f.v], disc[w]);
                }
                continue;
            }
            if (low[f.v] == disc[f.v]) {
                // Components complete callee-side first, so walking
                // them in id order is reverse-topological: every
                // callee summary is final before its callers run.
                int w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = false;
                    (*sccOf)[w] = comps;
                } while (w != f.v);
                comps++;
            }
            int v = f.v;
            frames.pop_back();
            if (!frames.empty())
                low[frames.back().v] =
                    std::min(low[frames.back().v], low[v]);
        }
    }
    *numSccs = comps;
}

std::string
setJson(const ModRefSummaries& s, const LocationSet& set)
{
    if (set.isTop())
        return "[\"<top>\"]";
    std::string out = "[";
    bool first = true;
    for (int loc : set.locations()) {
        out += (first ? "\"" : ", \"") + jsonEscape(s.locName(loc)) +
               "\"";
        first = false;
    }
    return out + "]";
}

} // namespace

const FunctionModRef*
ModRefSummaries::byDecl(const FuncDecl* decl) const
{
    for (const FunctionModRef& f : functions_)
        if (f.decl == decl)
            return &f;
    return nullptr;
}

std::string
ModRefSummaries::locName(int loc) const
{
    if (loc >= 0 && loc < static_cast<int>(locNames_.size()) &&
        !locNames_[loc].empty())
        return locNames_[loc];
    return "loc" + std::to_string(loc);
}

std::string
ModRefSummaries::setStr(const LocationSet& s) const
{
    if (s.isTop())
        return "{top}";
    std::string out = "{";
    bool first = true;
    for (int loc : s.locations()) {
        if (!first)
            out += ",";
        out += locName(loc);
        first = false;
    }
    return out + "}";
}

std::string
ModRefSummaries::dump() const
{
    std::ostringstream os;
    for (const FunctionModRef& f : functions_) {
        os << "function " << f.name << ": ref=" << setStr(f.ref)
           << " mod=" << setStr(f.mod);
        if (f.recursive)
            os << " recursive";
        os << " scc=" << f.scc << " callsites=" << f.callSites
           << "\n";
        for (const CallSiteModRef& c : callSites_) {
            if (c.caller != f.name)
                continue;
            os << "  call " << c.callee << " @b" << c.block << ".i"
               << c.index << ": reads=" << setStr(c.reads)
               << " writes=" << setStr(c.writes) << "\n";
        }
    }
    return os.str();
}

std::string
ModRefSummaries::json() const
{
    std::ostringstream os;
    os << "{\n    \"functions\": [";
    bool firstFn = true;
    for (const FunctionModRef& f : functions_) {
        os << (firstFn ? "\n" : ",\n") << "      {\"function\": \""
           << jsonEscape(f.name) << "\", \"recursive\": "
           << (f.recursive ? "true" : "false") << ", \"scc\": "
           << f.scc << ",\n       \"ref\": " << setJson(*this, f.ref)
           << ", \"mod\": " << setJson(*this, f.mod)
           << ",\n       \"calls\": [";
        bool firstCall = true;
        for (const CallSiteModRef& c : callSites_) {
            if (c.caller != f.name)
                continue;
            os << (firstCall ? "\n" : ",\n")
               << "         {\"callee\": \"" << jsonEscape(c.callee)
               << "\", \"block\": " << c.block << ", \"index\": "
               << c.index << ", \"reads\": " << setJson(*this, c.reads)
               << ", \"writes\": " << setJson(*this, c.writes) << "}";
            firstCall = false;
        }
        os << (firstCall ? "]}" : "\n       ]}");
        firstFn = false;
    }
    os << "\n    ]\n  }";
    return os.str();
}

ModRefSummaries
computeModRef(CfgProgram& cfg, const MemoryLayout& layout,
              bool stampCalls)
{
    ModRefSummaries out;
    const int n = static_cast<int>(cfg.functions.size());
    const int numObjects = static_cast<int>(layout.objects().size());

    std::map<const FuncDecl*, int> index;
    for (int i = 0; i < n; i++)
        index[cfg.functions[i]->decl] = i;

    // Location names: objects first, then pointer-param externals.
    int maxLoc = numObjects;
    for (const std::vector<int>& plocs : cfg.paramLocation)
        for (int loc : plocs)
            maxLoc = std::max(maxLoc, loc + 1);
    out.locNames_.assign(maxLoc, std::string());
    for (const MemObject& obj : layout.objects())
        out.locNames_[obj.id] =
            obj.func ? obj.func->name + "." + obj.name : obj.name;
    for (int fi = 0; fi < n; fi++) {
        const FuncDecl* decl = cfg.functions[fi]->decl;
        const std::vector<int>& plocs = cfg.paramLocation[fi];
        for (size_t p = 0; p < plocs.size(); p++)
            if (plocs[p] >= 0)
                out.locNames_[plocs[p]] =
                    decl->name + "." + decl->params[p]->name;
    }

    // Call graph.
    std::vector<std::vector<CallRef>> calls(n);
    std::vector<std::vector<int>> succ(n);
    for (int fi = 0; fi < n; fi++) {
        for (const auto& b : cfg.functions[fi]->blocks) {
            for (size_t ii = 0; ii < b->instrs.size(); ii++) {
                Instr& instr = b->instrs[ii];
                if (instr.kind != InstrKind::Call)
                    continue;
                CallRef cr;
                cr.block = b->id;
                cr.index = static_cast<int>(ii);
                cr.instr = &instr;
                auto it = instr.callee ? index.find(instr.callee)
                                       : index.end();
                if (it != index.end()) {
                    cr.calleeIdx = it->second;
                    succ[fi].push_back(it->second);
                }
                calls[fi].push_back(cr);
            }
        }
    }

    std::vector<int> sccOf;
    int numSccs = 0;
    condense(succ, &sccOf, &numSccs);
    std::vector<std::vector<int>> comps(numSccs);
    for (int fi = 0; fi < n; fi++)
        comps[sccOf[fi]].push_back(fi);
    std::vector<bool> recursive(n, false);
    for (int fi = 0; fi < n; fi++) {
        if (comps[sccOf[fi]].size() > 1)
            recursive[fi] = true;
        for (int s : succ[fi])
            if (s == fi)
                recursive[fi] = true;
    }

    // Bottom-up summaries; nontrivial SCCs iterate to a fixpoint
    // (location sets only grow, the universe is finite).
    std::vector<LocationSet> ref(n), mod(n);
    for (int c = 0; c < numSccs; c++) {
        bool changed = true;
        int rounds = 0;
        while (changed && rounds++ < 64) {
            changed = false;
            for (int fi : comps[c]) {
                LocationSet r, m;
                for (const CallRef& cr : calls[fi]) {
                    if (cr.calleeIdx < 0) {
                        r = LocationSet::top();
                        m = LocationSet::top();
                        break;
                    }
                    r.unionWith(translateSet(ref[cr.calleeIdx],
                                             cr.calleeIdx, *cr.instr,
                                             cfg, numObjects));
                    m.unionWith(translateSet(mod[cr.calleeIdx],
                                             cr.calleeIdx, *cr.instr,
                                             cfg, numObjects));
                }
                for (const auto& b : cfg.functions[fi]->blocks) {
                    for (const Instr& i : b->instrs) {
                        if (i.kind == InstrKind::Load)
                            r.unionWith(i.rwSet);
                        else if (i.kind == InstrKind::Store)
                            m.unionWith(i.rwSet);
                    }
                }
                if (!(r == ref[fi]) || !(m == mod[fi])) {
                    ref[fi] = std::move(r);
                    mod[fi] = std::move(m);
                    changed = true;
                }
            }
        }
    }

    // Publish function rows and resolve every call site with the
    // converged summaries.
    for (int fi = 0; fi < n; fi++) {
        FunctionModRef fr;
        fr.name = cfg.functions[fi]->decl->name;
        fr.decl = cfg.functions[fi]->decl;
        fr.ref = ref[fi];
        fr.mod = mod[fi];
        fr.recursive = recursive[fi];
        fr.scc = sccOf[fi];
        fr.callSites = static_cast<int>(calls[fi].size());
        out.functions_.push_back(std::move(fr));

        for (const CallRef& cr : calls[fi]) {
            CallSiteModRef site;
            site.caller = cfg.functions[fi]->decl->name;
            site.callee = cr.instr->callee ? cr.instr->callee->name
                                           : "<unknown>";
            site.block = cr.block;
            site.index = cr.index;
            if (cr.calleeIdx >= 0) {
                site.reads = translateSet(ref[cr.calleeIdx],
                                          cr.calleeIdx, *cr.instr,
                                          cfg, numObjects);
                site.writes = translateSet(mod[cr.calleeIdx],
                                           cr.calleeIdx, *cr.instr,
                                           cfg, numObjects);
            } else {
                site.reads = LocationSet::top();
                site.writes = LocationSet::top();
            }
            if (stampCalls) {
                cr.instr->callReads = site.reads;
                cr.instr->callWrites = site.writes;
                cr.instr->callEffectsValid = true;
            }
            out.callSites_.push_back(std::move(site));
        }
    }
    return out;
}

} // namespace cash
