/**
 * @file
 * Discovery of per-partition memory token rings in loop hyperblocks
 * (paper §6, Figure 11): the merge-eta circuit carrying a partition's
 * memory state around a loop, the operations it orders, and the exit
 * etas delivering the final state.  The §6 loop-pipelining passes
 * rewrite these rings.
 */
#ifndef CASH_ANALYSIS_LOOP_RINGS_H
#define CASH_ANALYSIS_LOOP_RINGS_H

#include <optional>
#include <vector>

#include "pegasus/graph.h"

namespace cash {

struct TokenRing
{
    int hyperblock = -1;
    int partition = -1;
    Node* merge = nullptr;        ///< Ring entry merge.
    Node* backEta = nullptr;      ///< Eta feeding the merge's back input.
    PortRef backPred;             ///< Loop-continuation predicate.
    std::vector<PortRef> initialInputs;  ///< Non-back merge inputs.
    std::vector<Node*> ops;       ///< Memory ops ordered by this ring.
    std::vector<Node*> exitEtas;  ///< Token etas taking the final state.
    /** Ops whose token output is not consumed by another ring op. */
    std::vector<Node*> danglingOps;
    /** The §6 generator/collector transformation already ran here. */
    bool alreadySplit = false;
};

/**
 * Find the ring for (@p hb, @p partition) in @p g when it has the
 * canonical shape the §6 transformations can rewrite:
 *  - @p hb is a self-loop hyperblock;
 *  - the ring merge exists with exactly one back input, an eta in hb;
 *  - the hyperblock contains no call or return touching the partition;
 *  - every ring op's token sources are the merge or other ring ops.
 * Returns nullopt otherwise.
 */
std::optional<TokenRing> findTokenRing(Graph& g, int hb, int partition);

} // namespace cash

#endif // CASH_ANALYSIS_LOOP_RINGS_H
