#include "analysis/points_to.h"

#include <functional>
#include <map>
#include <numeric>

#include "support/diagnostics.h"

namespace cash {

namespace {

/** Map a constant address to the global object containing it. */
LocationSet
constToLocations(int64_t v, const MemoryLayout& layout)
{
    if (v == 0)
        return LocationSet();  // null: touches nothing
    for (const MemObject& obj : layout.objects()) {
        if (obj.isGlobal && v >= obj.address &&
            v < static_cast<int64_t>(obj.address) + obj.size)
            return LocationSet::single(obj.id);
    }
    return LocationSet();
}

class FunctionPointsTo
{
  public:
    FunctionPointsTo(CfgFunction& fn, const MemoryLayout& layout,
                     AliasOracle& oracle, std::vector<int> paramLoc)
        : fn_(fn), layout_(layout), oracle_(oracle),
          paramLoc_(std::move(paramLoc))
    {
    }

    void
    run()
    {
        pts_.assign(fn_.numRegs, LocationSet());
        for (int p = 0; p < fn_.numParams; p++) {
            if (fn_.regIsPointer[p] && paramLoc_[p] >= 0)
                pts_[p] = LocationSet::single(paramLoc_[p]);
        }

        bool changed = true;
        int rounds = 0;
        while (changed && rounds++ < 64) {
            changed = false;
            for (const auto& b : fn_.blocks)
                for (const Instr& i : b->instrs)
                    changed |= transfer(i);
        }

        // Attach read/write sets and record escapes.
        for (auto& b : fn_.blocks) {
            for (Instr& i : b->instrs) {
                switch (i.kind) {
                  case InstrKind::Load:
                  case InstrKind::Store: {
                    LocationSet s = operandLocations(i.addr);
                    i.rwSet = s.empty() ? LocationSet::top() : s;
                    if (i.kind == InstrKind::Store)
                        exposeFrameLocations(operandLocations(i.value));
                    break;
                  }
                  case InstrKind::Call:
                    i.rwSet = LocationSet::top();
                    // Record per-argument points-to sets: the MOD/REF
                    // summary translation (analysis/modref.h) binds
                    // callee pointer params to these at each site.
                    i.argPts.clear();
                    for (const Operand& a : i.args) {
                        LocationSet s = operandLocations(a);
                        exposeFrameLocations(s);
                        i.argPts.push_back(std::move(s));
                    }
                    break;
                  default:
                    break;
                }
            }
        }
    }

  private:
    LocationSet
    operandLocations(const Operand& o) const
    {
        if (o.isConst())
            return constToLocations(o.cval, layout_);
        if (o.isReg())
            return pts_[o.reg];
        return LocationSet();
    }

    void
    exposeFrameLocations(const LocationSet& s)
    {
        if (s.isTop())
            return;
        for (int loc : s.locations()) {
            if (loc < static_cast<int>(layout_.objects().size()) &&
                !layout_.object(loc).isGlobal)
                oracle_.addExposedObject(loc);
        }
    }

    bool
    transfer(const Instr& i)
    {
        if (i.dst < 0)
            return false;
        // Seeds are exact: lowering knows the object.
        auto seed = fn_.addrSeeds.find(i.dst);
        if (seed != fn_.addrSeeds.end()) {
            if (pts_[i.dst] == seed->second)
                return false;
            pts_[i.dst] = seed->second;
            return true;
        }
        LocationSet next = pts_[i.dst];
        switch (i.kind) {
          case InstrKind::Bin:
            next.unionWith(operandLocations(i.a));
            next.unionWith(operandLocations(i.b));
            break;
          case InstrKind::Un:
          case InstrKind::Copy:
            next.unionWith(operandLocations(i.a));
            break;
          case InstrKind::Load:
          case InstrKind::Call:
            // A pointer read back from memory / returned from a call
            // may reference anything.
            next = LocationSet::top();
            break;
          case InstrKind::Store:
            return false;
        }
        if (next == pts_[i.dst])
            return false;
        pts_[i.dst] = next;
        return true;
    }

    CfgFunction& fn_;
    const MemoryLayout& layout_;
    AliasOracle& oracle_;
    std::vector<int> paramLoc_;
    std::vector<LocationSet> pts_;
};

/** Resolve a pragma operand name to a location id within a function. */
int
pragmaLocation(const std::string& name, const CfgFunction* fn,
               const Program& program, const std::vector<int>& paramLoc)
{
    if (fn) {
        const FuncDecl* decl = fn->decl;
        for (size_t i = 0; i < decl->params.size(); i++)
            if (decl->params[i]->name == name)
                return paramLoc[i];
    }
    const VarDecl* g = program.findGlobal(name);
    if (g && g->objectId >= 0)
        return g->objectId;
    return -1;
}

} // namespace

void
runPointsTo(CfgProgram& cfg, const Program& program,
            const MemoryLayout& layout)
{
    // Globals are always exposed: the caller may pass their address.
    for (const MemObject& obj : layout.objects())
        if (obj.isGlobal)
            cfg.oracle.addExposedObject(obj.id);

    // Allocate external locations for pointer params.
    int nextLoc = static_cast<int>(layout.objects().size());
    cfg.paramLocation.clear();
    for (auto& fn : cfg.functions) {
        std::vector<int> locs(fn->numParams, -1);
        for (int p = 0; p < fn->numParams; p++) {
            if (fn->regIsPointer[p]) {
                locs[p] = nextLoc++;
                cfg.oracle.addExternal(locs[p]);
            }
        }
        cfg.paramLocation.push_back(locs);
    }

    // Apply pragma independences before running per-function analysis.
    for (const PragmaIndependent& pr : program.pragmas) {
        for (size_t fi = 0; fi < cfg.functions.size(); fi++) {
            CfgFunction* fn = cfg.functions[fi].get();
            if (!pr.funcName.empty() && fn->decl->name != pr.funcName)
                continue;
            int a = pragmaLocation(pr.first, fn, program,
                                   cfg.paramLocation[fi]);
            int b = pragmaLocation(pr.second, fn, program,
                                   cfg.paramLocation[fi]);
            if (a >= 0 && b >= 0)
                cfg.oracle.addIndependent(a, b);
            else if (!pr.funcName.empty())
                warn(pr.loc.str() +
                     ": pragma independent names unknown pointers '" +
                     pr.first + "'/'" + pr.second + "'");
        }
    }

    for (size_t fi = 0; fi < cfg.functions.size(); fi++) {
        FunctionPointsTo fp(*cfg.functions[fi], layout, cfg.oracle,
                            cfg.paramLocation[fi]);
        fp.run();
    }
}

PartitionResult
computePartitions(const CfgFunction& fn, const AliasOracle& oracle)
{
    // Gather the location universe of this function's memory accesses.
    std::vector<LocationSet> opSets;
    bool anyTop = false;
    std::set<int> universe;
    for (const auto& b : fn.blocks) {
        for (const Instr& i : b->instrs) {
            if (i.kind == InstrKind::Call) {
                // Calls have no memId and pin no partition (the
                // builder threads them through every ring), so a call
                // only collapses the rings when its effects are
                // unbounded: no modref stamp, or a Top summary.
                if (!i.callEffectsValid || i.callReads.isTop() ||
                    i.callWrites.isTop())
                    anyTop = true;
                continue;
            }
            if (i.kind != InstrKind::Load && i.kind != InstrKind::Store)
                continue;
            if (i.memId >= 0) {
                if (static_cast<int>(opSets.size()) <= i.memId)
                    opSets.resize(i.memId + 1);
                opSets[i.memId] = i.rwSet;
            }
            if (i.rwSet.isTop())
                anyTop = true;
            else
                for (int l : i.rwSet.locations())
                    universe.insert(l);
        }
    }

    std::vector<int> ids(universe.begin(), universe.end());
    std::map<int, int> index;
    for (size_t i = 0; i < ids.size(); i++)
        index[ids[i]] = static_cast<int>(i);

    // Union-find over the universe (+1 virtual element for Top).
    int n = static_cast<int>(ids.size()) + 1;
    int topElem = n - 1;
    std::vector<int> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

    if (anyTop)
        for (int i = 0; i < n - 1; i++)
            unite(i, topElem);

    for (const LocationSet& s : opSets) {
        if (s.isTop())
            continue;
        int first = -1;
        for (int l : s.locations()) {
            int e = index[l];
            if (first < 0)
                first = e;
            else
                unite(first, e);
        }
    }
    // Aliasing locations must share a ring.
    for (size_t i = 0; i < ids.size(); i++)
        for (size_t j = i + 1; j < ids.size(); j++)
            if (oracle.mayAliasLocations(ids[i], ids[j]))
                unite(static_cast<int>(i), static_cast<int>(j));

    // Dense partition numbering.
    std::map<int, int> repToPart;
    auto partOf = [&](int elem) {
        int r = find(elem);
        auto it = repToPart.find(r);
        if (it != repToPart.end())
            return it->second;
        int p = static_cast<int>(repToPart.size());
        repToPart[r] = p;
        return p;
    };

    PartitionResult res;
    res.memOpPartition.assign(fn.numMemOps, 0);
    for (const auto& b : fn.blocks) {
        for (const Instr& i : b->instrs) {
            if (i.memId < 0)
                continue;
            if (i.rwSet.isTop()) {
                res.memOpPartition[i.memId] = partOf(topElem);
            } else if (i.rwSet.empty()) {
                res.memOpPartition[i.memId] = partOf(topElem);
            } else {
                res.memOpPartition[i.memId] =
                    partOf(index[*i.rwSet.locations().begin()]);
            }
        }
    }
    res.numPartitions = static_cast<int>(repToPart.size());
    if (res.numPartitions == 0)
        res.numPartitions = 1;  // token plumbing wants at least one ring
    return res;
}

} // namespace cash
