/**
 * @file
 * Flow-insensitive intraprocedural points-to analysis (paper §3.3/§7.1).
 *
 * Computes a LocationSet for every pointer-valued virtual register and
 * attaches read/write sets to every Load/Store instruction.  External
 * locations stand for whatever a pointer parameter may reference; the
 * `#pragma independent` annotations are propagated to the AliasOracle
 * via a simple connection analysis (two registers derived from
 * independent pointers keep the independence).
 */
#ifndef CASH_ANALYSIS_POINTS_TO_H
#define CASH_ANALYSIS_POINTS_TO_H

#include "analysis/memloc.h"
#include "cfg/cfg.h"
#include "frontend/ast.h"
#include "frontend/layout.h"

namespace cash {

/**
 * Run the points-to analysis over every function of @p cfg.
 *
 * Fills Instr::rwSet on loads/stores, populates @p cfg->oracle with
 * external locations, exposure facts and independence pairs, and
 * records each pointer parameter's external location id.
 */
void runPointsTo(CfgProgram& cfg, const Program& program,
                 const MemoryLayout& layout);

/**
 * Compute memory partitions for one function: location ids that
 * co-occur in some access's read/write set (or may alias each other)
 * are merged.  Returns, per memory op (indexed by Instr::memId), the
 * partition id, plus the partition count.  Ops with Top sets share the
 * special all-partition; in that case everything collapses into one.
 */
struct PartitionResult
{
    int numPartitions = 0;
    std::vector<int> memOpPartition;  ///< Indexed by memId.
};

PartitionResult computePartitions(const CfgFunction& fn,
                                  const AliasOracle& oracle);

} // namespace cash

#endif // CASH_ANALYSIS_POINTS_TO_H
