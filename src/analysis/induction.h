/**
 * @file
 * Induction-variable analysis on Pegasus loop rings (paper §4.3
 * heuristic 2 and §6.2, after Wolfe).
 *
 * An induction variable is a Word merge in a loop hyperblock whose
 * single back-edge input recirculates merge ± constant through an eta.
 */
#ifndef CASH_ANALYSIS_INDUCTION_H
#define CASH_ANALYSIS_INDUCTION_H

#include <map>

#include "pegasus/graph.h"

namespace cash {

struct InductionVar
{
    const Node* merge = nullptr;
    int hyperblock = -1;
    int64_t step = 0;        ///< Per-iteration increment (nonzero).
    PortRef start;           ///< Value entering the loop (may be null
                             ///< when several initial inputs exist).
};

class InductionAnalysis
{
  public:
    explicit InductionAnalysis(const Graph& g);

    /** Induction descriptor of @p merge, or null. */
    const InductionVar* ivOf(const Node* merge) const;

    const std::map<const Node*, InductionVar>& all() const
    {
        return ivs_;
    }

  private:
    std::map<const Node*, InductionVar> ivs_;
};

} // namespace cash

#endif // CASH_ANALYSIS_INDUCTION_H
