#include "analysis/loop_rings.h"

#include <algorithm>
#include <set>

#include "opt/opt_util.h"

namespace cash {

std::optional<TokenRing>
findTokenRing(Graph& g, int hb, int partition)
{
    if (hb < 0 || hb >= static_cast<int>(g.hyperblocks.size()))
        return std::nullopt;
    if (!g.hyperblocks[hb].isLoop)
        return std::nullopt;

    auto it = g.ringMerge.find({hb, partition});
    if (it == g.ringMerge.end())
        return std::nullopt;
    Node* merge = it->second;
    if (!merge || merge->dead || merge->kind != NodeKind::Merge ||
        merge->hyperblock != hb)
        return std::nullopt;

    TokenRing ring;
    ring.hyperblock = hb;
    ring.partition = partition;
    ring.merge = merge;

    // Exactly one back input; it must be an eta living in this
    // hyperblock (single-hyperblock loop body).
    for (int i = 0; i < merge->numInputs(); i++) {
        if (i == merge->deciderIndex)
            continue;
        if (merge->inputIsBackEdge(i)) {
            if (ring.backEta)
                return std::nullopt;
            Node* eta = merge->input(i).node;
            if (eta->kind != NodeKind::Eta || eta->hyperblock != hb)
                return std::nullopt;
            ring.backEta = eta;
        } else {
            ring.initialInputs.push_back(merge->input(i));
        }
    }
    if (!ring.backEta || ring.initialInputs.empty())
        return std::nullopt;
    ring.backPred = ring.backEta->input(1);

    // Collect the partition's operations inside the hyperblock; bail
    // on calls/returns (they touch every partition).
    std::set<const Node*> opSet;
    bool bad = false;
    g.forEach([&](Node* n) {
        if (n->dead || n->hyperblock != hb)
            return;
        if (n->kind == NodeKind::Call || n->kind == NodeKind::Return)
            bad = true;
        if (n->isMemoryAccess() && n->partition == partition) {
            // Immutable loads detached from the token network (§4.2)
            // take a constant token and participate in no ring.
            if (n->input(n->tokenInIndex()).node->kind ==
                NodeKind::Const)
                return;
            ring.ops.push_back(n);
            opSet.insert(n);
        }
    });
    if (bad)
        return std::nullopt;

    // Every op's token sources must stay within the ring.
    for (Node* op : ring.ops) {
        for (const PortRef& s :
             optutil::expandTokenSources(op->input(op->tokenInIndex()))) {
            if (s.node == merge)
                continue;
            if (opSet.count(s.node))
                continue;
            return std::nullopt;
        }
    }

    // Dangling ops: token output not consumed by another ring op.
    for (Node* op : ring.ops) {
        std::vector<Node*> consumers = optutil::directTokenConsumers(op);
        bool consumedInside = false;
        for (Node* c : consumers)
            if (opSet.count(c))
                consumedInside = true;
        if (!consumedInside)
            ring.danglingOps.push_back(op);
    }

    // Exit etas: token etas in this hyperblock whose source set is the
    // ring state (merge and/or dangling ops), excluding the back eta.
    g.forEach([&](Node* n) {
        if (n->dead || n->hyperblock != hb || n == ring.backEta)
            return;
        if (n->kind != NodeKind::Eta || n->type != VT::Token)
            return;
        std::vector<PortRef> srcs =
            optutil::expandTokenSources(n->input(0));
        bool ours = !srcs.empty();
        for (const PortRef& s : srcs) {
            if (s.node != merge && !opSet.count(s.node))
                ours = false;
        }
        if (ours)
            ring.exitEtas.push_back(n);
    });

    // The back eta itself must carry ring state.
    for (const PortRef& s :
         optutil::expandTokenSources(ring.backEta->input(0))) {
        if (s.node != merge && !opSet.count(s.node))
            return std::nullopt;
    }
    // A back eta recirculating the merge directly marks a ring the
    // generator/collector transformation already rewrote.
    ring.alreadySplit =
        ring.backEta->input(0) == PortRef{merge, 0};

    return ring;
}

} // namespace cash
