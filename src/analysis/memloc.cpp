#include "analysis/memloc.h"

#include <algorithm>
#include <sstream>

namespace cash {

std::string
LocationSet::str() const
{
    if (isTop_)
        return "{top}";
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (int l : locs_) {
        if (!first)
            os << ",";
        os << l;
        first = false;
    }
    os << "}";
    return os.str();
}

void
AliasOracle::addIndependent(int a, int b)
{
    independent_.insert({std::min(a, b), std::max(a, b)});
}

bool
AliasOracle::mayAliasLocations(int a, int b) const
{
    if (independent_.count({std::min(a, b), std::max(a, b)}))
        return false;
    if (a == b)
        return true;
    bool extA = isExternal(a), extB = isExternal(b);
    if (extA && extB)
        return true;  // two unconstrained pointers may be equal
    if (extA)
        return exposed_.count(b) != 0;
    if (extB)
        return exposed_.count(a) != 0;
    return false;  // two distinct concrete objects never overlap
}

bool
AliasOracle::mayOverlap(const LocationSet& a, const LocationSet& b) const
{
    if (a.empty() || b.empty())
        return false;
    if (a.isTop() || b.isTop())
        return true;
    for (int la : a.locations())
        for (int lb : b.locations())
            if (mayAliasLocations(la, lb))
                return true;
    return false;
}

} // namespace cash
