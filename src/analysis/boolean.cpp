#include "analysis/boolean.h"

namespace cash {

namespace {

constexpr int kDepthLimit = 16;

PortRef
strip(PortRef p)
{
    while (p.valid() && p.node->kind == NodeKind::Arith &&
           p.node->op == Op::Copy)
        p = p.node->input(0);
    return p;
}

bool
isNotOf(PortRef p, PortRef q)
{
    p = strip(p);
    q = strip(q);
    if (p.node->kind == NodeKind::Arith && p.node->op == Op::NotBool &&
        strip(p.node->input(0)) == q)
        return true;
    if (q.node->kind == NodeKind::Arith && q.node->op == Op::NotBool &&
        strip(q.node->input(0)) == p)
        return true;
    return false;
}

bool impliesRec(PortRef p, PortRef q, int depth);

bool
disjointRec(PortRef p, PortRef q, int depth)
{
    if (depth > kDepthLimit)
        return false;
    p = strip(p);
    q = strip(q);
    if (isFalsePred(p) || isFalsePred(q))
        return true;
    if (isNotOf(p, q))
        return true;
    // p = a ∧ b: disjoint(q) if either conjunct is disjoint from q.
    if (p.node->kind == NodeKind::Arith && p.node->op == Op::And) {
        if (disjointRec(p.node->input(0), q, depth + 1) ||
            disjointRec(p.node->input(1), q, depth + 1))
            return true;
    }
    if (q.node->kind == NodeKind::Arith && q.node->op == Op::And) {
        if (disjointRec(q.node->input(0), p, depth + 1) ||
            disjointRec(q.node->input(1), p, depth + 1))
            return true;
    }
    // p = a ∨ b: disjoint(q) iff both are.
    if (p.node->kind == NodeKind::Arith && p.node->op == Op::Or) {
        if (disjointRec(p.node->input(0), q, depth + 1) &&
            disjointRec(p.node->input(1), q, depth + 1))
            return true;
    }
    if (q.node->kind == NodeKind::Arith && q.node->op == Op::Or) {
        if (disjointRec(q.node->input(0), p, depth + 1) &&
            disjointRec(q.node->input(1), p, depth + 1))
            return true;
    }
    return false;
}

bool
impliesRec(PortRef p, PortRef q, int depth)
{
    if (depth > kDepthLimit)
        return false;
    p = strip(p);
    q = strip(q);
    if (p == q)
        return true;
    if (isTruePred(q) || isFalsePred(p))
        return true;
    // p = a ∧ b implies q if either conjunct does.
    if (p.node->kind == NodeKind::Arith && p.node->op == Op::And) {
        if (impliesRec(p.node->input(0), q, depth + 1) ||
            impliesRec(p.node->input(1), q, depth + 1))
            return true;
    }
    // q = a ∨ b is implied if p implies either disjunct.
    if (q.node->kind == NodeKind::Arith && q.node->op == Op::Or) {
        if (impliesRec(p, q.node->input(0), depth + 1) ||
            impliesRec(p, q.node->input(1), depth + 1))
            return true;
    }
    // p = a ∨ b implies q iff both disjuncts do.
    if (p.node->kind == NodeKind::Arith && p.node->op == Op::Or) {
        if (impliesRec(p.node->input(0), q, depth + 1) &&
            impliesRec(p.node->input(1), q, depth + 1))
            return true;
    }
    // q = ¬r: p implies q iff p and r are disjoint.
    if (q.node->kind == NodeKind::Arith && q.node->op == Op::NotBool) {
        if (disjointRec(p, q.node->input(0), depth + 1))
            return true;
    }
    return false;
}

} // namespace

bool
isTruePred(PortRef p)
{
    p = strip(p);
    return p.node->kind == NodeKind::Const && p.node->constValue != 0;
}

bool
isFalsePred(PortRef p)
{
    p = strip(p);
    return p.node->kind == NodeKind::Const && p.node->constValue == 0;
}

bool
predImplies(PortRef p, PortRef q)
{
    return impliesRec(p, q, 0);
}

bool
predDisjoint(PortRef p, PortRef q)
{
    return disjointRec(p, q, 0);
}

} // namespace cash
