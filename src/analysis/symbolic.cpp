#include "analysis/symbolic.h"

#include <sstream>

#include "analysis/induction.h"

namespace cash {

AffineExpr
AffineExpr::constantOf(int64_t c)
{
    AffineExpr e;
    e.valid = true;
    e.constant = c;
    return e;
}

AffineExpr
AffineExpr::baseOf(SymBase b)
{
    AffineExpr e;
    e.valid = true;
    e.terms[b] = 1;
    return e;
}

AffineExpr
AffineExpr::plus(const AffineExpr& o) const
{
    if (!valid || !o.valid)
        return invalid();
    AffineExpr e = *this;
    e.constant += o.constant;
    for (const auto& [b, c] : o.terms) {
        e.terms[b] += c;
        if (e.terms[b] == 0)
            e.terms.erase(b);
    }
    return e;
}

AffineExpr
AffineExpr::minus(const AffineExpr& o) const
{
    return plus(o.times(-1));
}

AffineExpr
AffineExpr::times(int64_t k) const
{
    if (!valid)
        return invalid();
    AffineExpr e;
    e.valid = true;
    e.constant = constant * k;
    if (k != 0)
        for (const auto& [b, c] : terms)
            e.terms[b] = c * k;
    return e;
}

bool
AffineExpr::isConstant(int64_t* c) const
{
    if (!valid || !terms.empty())
        return false;
    *c = constant;
    return true;
}

int64_t
AffineExpr::iterCoeff(int hb) const
{
    for (const auto& [b, c] : terms)
        if (b.iterHb == hb)
            return c;
    return 0;
}

AffineExpr
AffineExpr::withoutIter(int hb) const
{
    AffineExpr e = *this;
    for (auto it = e.terms.begin(); it != e.terms.end();) {
        if (it->first.iterHb == hb)
            it = e.terms.erase(it);
        else
            ++it;
    }
    return e;
}

std::string
AffineExpr::str() const
{
    if (!valid)
        return "<invalid>";
    std::ostringstream os;
    os << constant;
    for (const auto& [b, c] : terms) {
        os << " + " << c << "*";
        if (b.iterHb >= 0)
            os << "ITER(hb" << b.iterHb << ")";
        else
            os << "n" << b.node->id << "." << b.port;
    }
    return os.str();
}

AffineExpr
SymbolicAddress::expr(PortRef v)
{
    return compute(v, 0);
}

AffineExpr
SymbolicAddress::compute(PortRef v, int depth)
{
    if (!v.valid() || depth > 64)
        return AffineExpr::invalid();
    auto key = std::make_pair(static_cast<const Node*>(v.node), v.port);
    auto memo = memo_.find(key);
    if (memo != memo_.end())
        return memo->second;
    // Pre-insert an opaque self to break recursion (e.g. through a
    // non-induction loop merge).
    memo_[key] = AffineExpr::baseOf(SymBase{v.node, v.port, -1});

    AffineExpr result = AffineExpr::baseOf(SymBase{v.node, v.port, -1});
    const Node* n = v.node;
    switch (n->kind) {
      case NodeKind::Const:
        result = AffineExpr::constantOf(n->constValue);
        break;
      case NodeKind::Arith: {
        switch (n->op) {
          case Op::Copy:
            result = compute(n->input(0), depth + 1);
            break;
          case Op::Add:
            result = compute(n->input(0), depth + 1)
                         .plus(compute(n->input(1), depth + 1));
            break;
          case Op::Sub:
            result = compute(n->input(0), depth + 1)
                         .minus(compute(n->input(1), depth + 1));
            break;
          case Op::Mul: {
            AffineExpr a = compute(n->input(0), depth + 1);
            AffineExpr b = compute(n->input(1), depth + 1);
            int64_t c;
            if (b.isConstant(&c))
                result = a.times(c);
            else if (a.isConstant(&c))
                result = b.times(c);
            break;
          }
          case Op::Shl: {
            AffineExpr a = compute(n->input(0), depth + 1);
            int64_t c;
            AffineExpr b = compute(n->input(1), depth + 1);
            if (b.isConstant(&c) && c >= 0 && c < 31)
                result = a.times(int64_t(1) << c);
            break;
          }
          default:
            break;  // opaque
        }
        break;
      }
      case NodeKind::Eta:
        // An eta forwards its value unchanged.
        result = compute(n->input(0), depth + 1);
        break;
      case NodeKind::Merge: {
        if (ivs_) {
            const InductionVar* iv = ivs_->ivOf(n);
            if (iv) {
                AffineExpr start =
                    iv->start.valid()
                        ? compute(iv->start, depth + 1)
                        : AffineExpr::baseOf(SymBase{n, 100, -1});
                AffineExpr iter = AffineExpr::baseOf(
                    SymBase{nullptr, 0, iv->hyperblock});
                result = start.plus(iter.times(iv->step));
            }
        }
        break;  // non-IV merges stay opaque
      }
      default:
        break;  // opaque
    }

    if (!result.valid)
        result = AffineExpr::baseOf(SymBase{v.node, v.port, -1});
    memo_[key] = result;
    return result;
}

bool
SymbolicAddress::disjoint(const AffineExpr& a, int sizeA,
                          const AffineExpr& b, int sizeB)
{
    if (!a.valid || !b.valid)
        return false;
    AffineExpr diff = a.minus(b);
    int64_t c;
    if (!diff.isConstant(&c))
        return false;
    // a = b + c: ranges [b+c, b+c+sizeA) and [b, b+sizeB) are disjoint
    // iff c >= sizeB or c <= -sizeA.
    return c >= sizeB || c <= -sizeA;
}

} // namespace cash
