#include "cfg/liveness.h"

namespace cash {

std::vector<int>
Liveness::uses(const Instr& i)
{
    std::vector<int> out;
    auto add = [&](const Operand& o) {
        if (o.isReg())
            out.push_back(o.reg);
    };
    switch (i.kind) {
      case InstrKind::Bin:
        add(i.a);
        add(i.b);
        break;
      case InstrKind::Un:
      case InstrKind::Copy:
        add(i.a);
        break;
      case InstrKind::Load:
        add(i.addr);
        break;
      case InstrKind::Store:
        add(i.addr);
        add(i.value);
        break;
      case InstrKind::Call:
        for (const Operand& a : i.args)
            add(a);
        break;
    }
    return out;
}

int
Liveness::def(const Instr& i)
{
    return i.dst;
}

std::vector<int>
Liveness::uses(const Terminator& t)
{
    std::vector<int> out;
    if (t.kind == Terminator::Kind::CondBranch && t.cond.isReg())
        out.push_back(t.cond.reg);
    if (t.kind == Terminator::Kind::Return && t.retValue.isReg())
        out.push_back(t.retValue.reg);
    return out;
}

Liveness::Liveness(const CfgFunction& fn)
{
    size_t n = fn.blocks.size();
    liveIn_.assign(n, {});
    liveOut_.assign(n, {});

    // Per-block use/def.
    std::vector<std::set<int>> use(n), defSet(n);
    for (const auto& b : fn.blocks) {
        std::set<int>& u = use[b->id];
        std::set<int>& d = defSet[b->id];
        for (const Instr& i : b->instrs) {
            for (int r : uses(i))
                if (!d.count(r))
                    u.insert(r);
            int dr = def(i);
            if (dr >= 0)
                d.insert(dr);
        }
        for (int r : uses(b->term))
            if (!d.count(r))
                u.insert(r);
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate in reverse block order (approximate reverse CFG).
        for (size_t k = n; k-- > 0;) {
            const BasicBlock* b = fn.block(static_cast<int>(k));
            std::set<int> out;
            for (int s : b->succs)
                out.insert(liveIn_[s].begin(), liveIn_[s].end());
            std::set<int> in = use[k];
            for (int r : out)
                if (!defSet[k].count(r))
                    in.insert(r);
            if (out != liveOut_[k] || in != liveIn_[k]) {
                liveOut_[k] = std::move(out);
                liveIn_[k] = std::move(in);
                changed = true;
            }
        }
    }
}

} // namespace cash
