/**
 * @file
 * Dominator tree over a CfgFunction (Cooper-Harvey-Kennedy iterative
 * algorithm).
 */
#ifndef CASH_CFG_DOMINATORS_H
#define CASH_CFG_DOMINATORS_H

#include <vector>

#include "cfg/cfg.h"

namespace cash {

/** Immediate-dominator tree for one function. */
class DominatorTree
{
  public:
    explicit DominatorTree(const CfgFunction& fn);

    /** Immediate dominator of @p block (-1 for the entry/unreachable). */
    int idom(int block) const { return idom_.at(block); }

    /** Does @p a dominate @p b (reflexive)? */
    bool dominates(int a, int b) const;

    /** Blocks in reverse postorder (cached). */
    const std::vector<int>& rpo() const { return rpo_; }

    /** Reverse-postorder index of a block (-1 = unreachable). */
    int rpoIndex(int block) const { return rpoIndex_.at(block); }

  private:
    std::vector<int> idom_;
    std::vector<int> rpo_;
    std::vector<int> rpoIndex_;
};

} // namespace cash

#endif // CASH_CFG_DOMINATORS_H
