#include "cfg/loops.h"

#include <algorithm>
#include <map>

namespace cash {

LoopForest::LoopForest(const CfgFunction& fn, const DominatorTree& dom)
{
    std::map<int, NaturalLoop> byHeader;

    for (const auto& b : fn.blocks) {
        for (int s : b->succs) {
            if (dom.rpoIndex(b->id) < 0)
                continue;  // unreachable
            if (dom.dominates(s, b->id)) {
                // Back edge b → s; s is a loop header.
                backEdges_.insert({b->id, s});
                NaturalLoop& loop = byHeader[s];
                loop.header = s;
                loop.backEdgeSources.push_back(b->id);
                // Collect the natural loop body by backwards walk.
                std::vector<int> work{b->id};
                loop.blocks.insert(s);
                while (!work.empty()) {
                    int cur = work.back();
                    work.pop_back();
                    if (loop.blocks.count(cur))
                        continue;
                    loop.blocks.insert(cur);
                    for (int p : fn.block(cur)->preds)
                        if (dom.rpoIndex(p) >= 0)
                            work.push_back(p);
                }
            }
        }
    }

    for (auto& [header, loop] : byHeader)
        loops_.push_back(std::move(loop));

    // Nesting: loop A is inside B iff A's header is in B and A != B.
    for (size_t i = 0; i < loops_.size(); i++) {
        int best = -1;
        size_t bestSize = SIZE_MAX;
        for (size_t j = 0; j < loops_.size(); j++) {
            if (i == j)
                continue;
            if (loops_[j].blocks.count(loops_[i].header) &&
                loops_[j].blocks.size() < bestSize) {
                best = static_cast<int>(j);
                bestSize = loops_[j].blocks.size();
            }
        }
        loops_[i].parent = best;
    }
    for (auto& loop : loops_) {
        int d = 1;
        int p = loop.parent;
        while (p >= 0) {
            d++;
            p = loops_[p].parent;
        }
        loop.depth = d;
    }
}

int
LoopForest::innermostLoopOf(int block) const
{
    int best = -1;
    size_t bestSize = SIZE_MAX;
    for (size_t i = 0; i < loops_.size(); i++) {
        if (loops_[i].blocks.count(block) &&
            loops_[i].blocks.size() < bestSize) {
            best = static_cast<int>(i);
            bestSize = loops_[i].blocks.size();
        }
    }
    return best;
}

bool
LoopForest::isHeader(int block) const
{
    for (const auto& l : loops_)
        if (l.header == block)
            return true;
    return false;
}

bool
LoopForest::isBackEdge(int src, int dst) const
{
    return backEdges_.count({src, dst}) != 0;
}

} // namespace cash
