#include "cfg/cfg.h"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.h"

namespace cash {

const char*
opName(Op op)
{
    switch (op) {
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::DivS: return "divs";
      case Op::DivU: return "divu";
      case Op::RemS: return "rems";
      case Op::RemU: return "remu";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::ShrS: return "shrs";
      case Op::ShrU: return "shru";
      case Op::LtS: return "lts";
      case Op::LtU: return "ltu";
      case Op::LeS: return "les";
      case Op::LeU: return "leu";
      case Op::Eq: return "eq";
      case Op::Ne: return "ne";
      case Op::Neg: return "neg";
      case Op::NotBool: return "not";
      case Op::BitNot: return "bnot";
      case Op::SextB: return "sextb";
      case Op::ZextB: return "zextb";
      case Op::Copy: return "copy";
    }
    return "?";
}

bool
opIsUnary(Op op)
{
    switch (op) {
      case Op::Neg:
      case Op::NotBool:
      case Op::BitNot:
      case Op::SextB:
      case Op::ZextB:
        return true;
      default:
        return false;
    }
}

bool
opIsCompare(Op op)
{
    switch (op) {
      case Op::LtS: case Op::LtU: case Op::LeS: case Op::LeU:
      case Op::Eq: case Op::Ne:
        return true;
      default:
        return false;
    }
}

std::string
Operand::str() const
{
    switch (kind) {
      case Kind::None: return "_";
      case Kind::Reg: return "r" + std::to_string(reg);
      case Kind::Const: return std::to_string(cval);
    }
    return "?";
}

std::string
Instr::str() const
{
    std::ostringstream os;
    switch (kind) {
      case InstrKind::Bin:
        os << "r" << dst << " = " << opName(op) << " " << a.str() << ", "
           << b.str();
        break;
      case InstrKind::Un:
        os << "r" << dst << " = " << opName(op) << " " << a.str();
        break;
      case InstrKind::Copy:
        os << "r" << dst << " = " << a.str();
        break;
      case InstrKind::Load:
        os << "r" << dst << " = load" << size << " [" << addr.str() << "]"
           << " rw" << rwSet.str();
        break;
      case InstrKind::Store:
        os << "store" << size << " [" << addr.str() << "] = "
           << value.str() << " rw" << rwSet.str();
        break;
      case InstrKind::Call: {
        os << (dst >= 0 ? "r" + std::to_string(dst) + " = " : "")
           << "call " << (callee ? callee->name : "?") << "(";
        for (size_t i = 0; i < args.size(); i++) {
            if (i)
                os << ", ";
            os << args[i].str();
        }
        os << ")";
        break;
      }
    }
    return os.str();
}

std::string
Terminator::str() const
{
    switch (kind) {
      case Kind::None: return "<none>";
      case Kind::Jump: return "jump B" + std::to_string(target0);
      case Kind::CondBranch:
        return "br " + cond.str() + " ? B" + std::to_string(target0) +
               " : B" + std::to_string(target1);
      case Kind::Return:
        return "return " + (retValue.isNone() ? "" : retValue.str());
    }
    return "?";
}

void
CfgFunction::computeEdges()
{
    for (auto& b : blocks) {
        b->succs.clear();
        b->preds.clear();
    }
    for (auto& b : blocks) {
        switch (b->term.kind) {
          case Terminator::Kind::Jump:
            b->succs.push_back(b->term.target0);
            break;
          case Terminator::Kind::CondBranch:
            b->succs.push_back(b->term.target0);
            if (b->term.target1 != b->term.target0)
                b->succs.push_back(b->term.target1);
            break;
          default:
            break;
        }
    }
    for (auto& b : blocks)
        for (int s : b->succs)
            blocks.at(s)->preds.push_back(b->id);
}

std::vector<int>
CfgFunction::reversePostorder() const
{
    std::vector<int> order;
    std::vector<char> state(blocks.size(), 0);  // 0=unseen 1=open 2=done
    // Iterative postorder DFS.
    std::vector<std::pair<int, size_t>> stack;
    stack.push_back({entry, 0});
    state[entry] = 1;
    while (!stack.empty()) {
        auto& [id, next] = stack.back();
        const BasicBlock* b = block(id);
        if (next < b->succs.size()) {
            int s = b->succs[next++];
            if (!state[s]) {
                state[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[id] = 2;
            order.push_back(id);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

void
CfgFunction::pruneUnreachable()
{
    computeEdges();
    std::vector<int> rpo = reversePostorder();
    std::vector<bool> reach(blocks.size(), false);
    for (int id : rpo)
        reach[id] = true;
    bool any = false;
    for (auto& b : blocks) {
        if (!reach[b->id]) {
            // Neutralize: clear contents and detach edges.
            b->instrs.clear();
            b->term = Terminator{};
            any = true;
        }
    }
    if (any)
        computeEdges();
}

std::string
CfgFunction::str() const
{
    std::ostringstream os;
    os << "function " << (decl ? decl->name : "?") << " (" << numParams
       << " params, " << numRegs << " regs)\n";
    for (const auto& b : blocks) {
        os << "B" << b->id << ":";
        if (!b->preds.empty()) {
            os << "  ; preds:";
            for (int p : b->preds)
                os << " B" << p;
        }
        os << "\n";
        for (const Instr& i : b->instrs)
            os << "    " << i.str() << "\n";
        os << "    " << b->term.str() << "\n";
    }
    return os.str();
}

CfgFunction*
CfgProgram::find(const std::string& name) const
{
    for (const auto& f : functions)
        if (f->decl && f->decl->name == name)
            return f.get();
    return nullptr;
}

} // namespace cash
