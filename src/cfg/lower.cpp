#include "cfg/lower.h"

#include <map>

#include "support/diagnostics.h"

namespace cash {

namespace {

bool
isPointerish(const TypePtr& t)
{
    return t->isPointer() || t->isArray();
}

/** Element stride for pointer arithmetic on @p t (pointer or array). */
int64_t
strideOf(const TypePtr& t)
{
    CASH_ASSERT(isPointerish(t), "stride of non-pointer");
    return t->element->sizeBytes();
}

class FunctionLowerer
{
  public:
    FunctionLowerer(const Program& prog, const MemoryLayout& layout,
                    const FuncDecl* decl, CfgFunction* fn)
        : prog_(prog), layout_(layout), decl_(decl), fn_(fn)
    {
    }

    void
    run()
    {
        fn_->decl = decl_;
        fn_->numParams = static_cast<int>(decl_->params.size());
        // Registers: params, then local register scalars (ids assigned
        // by sema), then the frame base, then temporaries.
        for (const VarDecl* p : decl_->params)
            fn_->newReg(isPointerish(p->type));
        for (const VarDecl* l : decl_->locals) {
            if (l->varId >= 0) {
                int r = fn_->newReg(isPointerish(l->type));
                CASH_ASSERT(r == l->varId, "register numbering mismatch");
            }
        }
        if (layout_.frameSize(decl_) > 0)
            fn_->frameBaseReg = fn_->newReg(true);

        cur_ = fn_->newBlock();
        fn_->entry = cur_->id;
        lowerStmt(decl_->body);
        if (!terminated())
            setReturn(Operand::none());

        fn_->computeEdges();
        fn_->pruneUnreachable();
        numberMemOps();
    }

  private:
    // -----------------------------------------------------------------
    // Emission helpers
    // -----------------------------------------------------------------

    bool terminated() const
    {
        return cur_->term.kind != Terminator::Kind::None;
    }

    void
    emit(Instr i)
    {
        CASH_ASSERT(!terminated(), "emitting into terminated block");
        cur_->instrs.push_back(std::move(i));
    }

    Operand
    emitBin(Op op, Operand a, Operand b, bool ptrResult = false)
    {
        Instr i;
        i.kind = InstrKind::Bin;
        i.op = op;
        i.dst = fn_->newReg(ptrResult);
        i.a = a;
        i.b = b;
        int dst = i.dst;
        emit(std::move(i));
        return Operand::regOf(dst);
    }

    Operand
    emitUn(Op op, Operand a)
    {
        Instr i;
        i.kind = InstrKind::Un;
        i.op = op;
        i.dst = fn_->newReg(false);
        i.a = a;
        int dst = i.dst;
        emit(std::move(i));
        return Operand::regOf(dst);
    }

    void
    emitCopyTo(int dstReg, Operand a)
    {
        Instr i;
        i.kind = InstrKind::Copy;
        i.dst = dstReg;
        i.a = a;
        emit(std::move(i));
    }

    Operand
    emitLoad(Operand addr, int size, bool sext, SourceLoc loc)
    {
        Instr i;
        i.kind = InstrKind::Load;
        i.dst = fn_->newReg(false);
        i.addr = addr;
        i.size = size;
        i.signExtend = sext;
        i.loc = loc;
        int dst = i.dst;
        emit(std::move(i));
        return Operand::regOf(dst);
    }

    void
    emitStore(Operand addr, Operand value, int size, SourceLoc loc)
    {
        Instr i;
        i.kind = InstrKind::Store;
        i.addr = addr;
        i.value = value;
        i.size = size;
        i.loc = loc;
        emit(std::move(i));
    }

    void
    setJump(int target)
    {
        cur_->term.kind = Terminator::Kind::Jump;
        cur_->term.target0 = target;
    }

    void
    setBranch(Operand cond, int t, int f)
    {
        cur_->term.kind = Terminator::Kind::CondBranch;
        cur_->term.cond = cond;
        cur_->term.target0 = t;
        cur_->term.target1 = f;
    }

    void
    setReturn(Operand v)
    {
        cur_->term.kind = Terminator::Kind::Return;
        cur_->term.retValue = v;
    }

    /** Continue emission in a fresh (possibly dead) block. */
    void
    startBlock(BasicBlock* b)
    {
        cur_ = b;
    }

    // -----------------------------------------------------------------
    // Addresses
    // -----------------------------------------------------------------

    /** Operand holding the address of memory object @p d. */
    Operand
    objectAddress(const VarDecl* d)
    {
        CASH_ASSERT(d->objectId >= 0, "no object for variable");
        const MemObject& obj = layout_.object(d->objectId);
        if (obj.isGlobal)
            return Operand::constOf(obj.address);
        // Frame local: frameBase + offset; seed the points-to set.
        CASH_ASSERT(fn_->frameBaseReg >= 0, "frame object without frame");
        Operand r = emitBin(Op::Add, Operand::regOf(fn_->frameBaseReg),
                            Operand::constOf(obj.address), true);
        fn_->addrSeeds[r.reg] = LocationSet::single(obj.id);
        return r;
    }

    // An lvalue is either a register or a memory address.
    struct LV
    {
        bool isReg = false;
        int reg = -1;
        Operand addr;
        int size = 4;
        bool sext = true;
        SourceLoc loc;
    };

    LV
    lowerLValue(const Expr* e)
    {
        LV lv;
        lv.loc = e->loc;
        switch (e->kind) {
          case ExprKind::VarRef: {
            const VarDecl* d = static_cast<const VarRefExpr*>(e)->decl;
            if (!d->inMemory) {
                lv.isReg = true;
                lv.reg = d->varId;
                return lv;
            }
            lv.addr = objectAddress(d);
            lv.size = d->type->accessSize();
            lv.sext = d->type->kind != TypeKind::UChar;
            return lv;
          }
          case ExprKind::Index: {
            auto* i = static_cast<const IndexExpr*>(e);
            Operand base = lowerExpr(i->base);
            Operand idx = lowerExpr(i->index);
            int64_t stride = e->type->accessSize();
            Operand off = scaleIndex(idx, stride);
            lv.addr = emitBin(Op::Add, base, off, true);
            lv.size = e->type->accessSize();
            lv.sext = e->type->kind != TypeKind::UChar;
            return lv;
          }
          case ExprKind::Deref: {
            auto* d = static_cast<const DerefExpr*>(e);
            lv.addr = lowerExpr(d->pointer);
            lv.size = e->type->accessSize();
            lv.sext = e->type->kind != TypeKind::UChar;
            return lv;
          }
          default:
            fatalAt(e->loc, "not an lvalue in lowering");
        }
    }

    Operand
    scaleIndex(Operand idx, int64_t stride)
    {
        if (stride == 1)
            return idx;
        if (idx.isConst())
            return Operand::constOf(idx.cval * stride);
        return emitBin(Op::Mul, idx, Operand::constOf(stride));
    }

    Operand
    readLV(const LV& lv)
    {
        if (lv.isReg)
            return Operand::regOf(lv.reg);
        return emitLoad(lv.addr, lv.size, lv.sext, lv.loc);
    }

    void
    writeLV(const LV& lv, Operand v)
    {
        if (lv.isReg)
            emitCopyTo(lv.reg, v);
        else
            emitStore(lv.addr, v, lv.size, lv.loc);
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    Operand
    lowerExpr(const Expr* e)
    {
        switch (e->kind) {
          case ExprKind::IntLit:
            return Operand::constOf(
                static_cast<const IntLitExpr*>(e)->value);
          case ExprKind::StrLit: {
            const VarDecl* g = static_cast<const StrLitExpr*>(e)->object;
            return Operand::constOf(layout_.object(g->objectId).address);
          }
          case ExprKind::VarRef: {
            const VarDecl* d = static_cast<const VarRefExpr*>(e)->decl;
            if (d->type->isArray())
                return objectAddress(d);  // decay
            if (!d->inMemory)
                return Operand::regOf(d->varId);
            return emitLoad(objectAddress(d), d->type->accessSize(),
                            d->type->kind != TypeKind::UChar, e->loc);
          }
          case ExprKind::Unary: {
            auto* u = static_cast<const UnaryExpr*>(e);
            Operand v = lowerExpr(u->operand);
            switch (u->op) {
              case UnaryOp::Neg: return emitUn(Op::Neg, v);
              case UnaryOp::Not: return emitUn(Op::NotBool, v);
              case UnaryOp::BitNot: return emitUn(Op::BitNot, v);
              case UnaryOp::Plus: return v;
            }
            return v;
          }
          case ExprKind::Binary:
            return lowerBinary(static_cast<const BinaryExpr*>(e));
          case ExprKind::Assign:
            return lowerAssign(static_cast<const AssignExpr*>(e));
          case ExprKind::Index:
          case ExprKind::Deref: {
            LV lv = lowerLValue(e);
            return readLV(lv);
          }
          case ExprKind::AddrOf: {
            auto* a = static_cast<const AddrOfExpr*>(e);
            if (a->lvalue->kind == ExprKind::VarRef) {
                const VarDecl* d =
                    static_cast<const VarRefExpr*>(a->lvalue)->decl;
                return objectAddress(d);
            }
            LV lv = lowerLValue(a->lvalue);
            CASH_ASSERT(!lv.isReg, "address of register lvalue");
            return lv.addr;
          }
          case ExprKind::Call:
            return lowerCall(static_cast<const CallExpr*>(e));
          case ExprKind::Cast: {
            auto* c = static_cast<const CastExpr*>(e);
            Operand v = lowerExpr(c->operand);
            switch (c->target->kind) {
              case TypeKind::Char: return emitUn(Op::SextB, v);
              case TypeKind::UChar: return emitUn(Op::ZextB, v);
              default: return v;
            }
          }
          case ExprKind::Cond: {
            auto* c = static_cast<const CondExpr*>(e);
            int res = fn_->newReg(isPointerish(c->type) ||
                                  isPointerish(decayType(c->thenExpr)));
            Operand cond = lowerExpr(c->cond);
            BasicBlock* bbT = fn_->newBlock();
            BasicBlock* bbF = fn_->newBlock();
            BasicBlock* bbJ = fn_->newBlock();
            setBranch(cond, bbT->id, bbF->id);
            startBlock(bbT);
            emitCopyTo(res, lowerExpr(c->thenExpr));
            setJump(bbJ->id);
            startBlock(bbF);
            emitCopyTo(res, lowerExpr(c->elseExpr));
            setJump(bbJ->id);
            startBlock(bbJ);
            return Operand::regOf(res);
          }
          case ExprKind::IncDec: {
            auto* i = static_cast<const IncDecExpr*>(e);
            LV lv = lowerLValue(i->lvalue);
            Operand cur = readLV(lv);
            TypePtr lt = i->lvalue->type;
            Operand step = Operand::constOf(
                lt->isPointer() ? strideOf(lt) : 1);
            Operand next = emitBin(i->isIncrement ? Op::Add : Op::Sub,
                                   cur, step, lt->isPointer());
            writeLV(lv, next);
            return i->isPrefix ? next : cur;
          }
        }
        return Operand::none();
    }

    TypePtr
    decayType(const Expr* e) const
    {
        return e->type;
    }

    Operand
    lowerBinary(const BinaryExpr* b)
    {
        // Short-circuit operators need control flow.
        if (b->op == BinaryOp::LogAnd || b->op == BinaryOp::LogOr)
            return lowerShortCircuit(b);

        Operand l = lowerExpr(b->lhs);
        Operand r = lowerExpr(b->rhs);
        TypePtr lt = b->lhs->type, rt = b->rhs->type;
        bool ptrL = isPointerish(lt), ptrR = isPointerish(rt);
        bool uns = lt->isUnsignedInt() || rt->isUnsignedInt() ||
                   ptrL || ptrR;

        switch (b->op) {
          case BinaryOp::Add:
            if (ptrL)
                return emitBin(Op::Add, l, scaleIndex(r, strideOf(lt)),
                               true);
            if (ptrR)
                return emitBin(Op::Add, r, scaleIndex(l, strideOf(rt)),
                               true);
            return emitBin(Op::Add, l, r);
          case BinaryOp::Sub:
            if (ptrL && ptrR) {
                Operand diff = emitBin(Op::Sub, l, r);
                int64_t s = strideOf(lt);
                if (s == 1)
                    return diff;
                return emitBin(Op::DivS, diff, Operand::constOf(s));
            }
            if (ptrL)
                return emitBin(Op::Sub, l, scaleIndex(r, strideOf(lt)),
                               true);
            return emitBin(Op::Sub, l, r);
          case BinaryOp::Mul: return emitBin(Op::Mul, l, r);
          case BinaryOp::Div:
            return emitBin(uns ? Op::DivU : Op::DivS, l, r);
          case BinaryOp::Rem:
            return emitBin(uns ? Op::RemU : Op::RemS, l, r);
          case BinaryOp::And: return emitBin(Op::And, l, r);
          case BinaryOp::Or: return emitBin(Op::Or, l, r);
          case BinaryOp::Xor: return emitBin(Op::Xor, l, r);
          case BinaryOp::Shl: return emitBin(Op::Shl, l, r);
          case BinaryOp::Shr:
            return emitBin(lt->isUnsignedInt() ? Op::ShrU : Op::ShrS,
                           l, r);
          case BinaryOp::Lt:
            return emitBin(uns ? Op::LtU : Op::LtS, l, r);
          case BinaryOp::Le:
            return emitBin(uns ? Op::LeU : Op::LeS, l, r);
          case BinaryOp::Gt:
            return emitBin(uns ? Op::LtU : Op::LtS, r, l);
          case BinaryOp::Ge:
            return emitBin(uns ? Op::LeU : Op::LeS, r, l);
          case BinaryOp::Eq: return emitBin(Op::Eq, l, r);
          case BinaryOp::Ne: return emitBin(Op::Ne, l, r);
          default:
            panic("unhandled binary op in lowering");
        }
    }

    Operand
    lowerShortCircuit(const BinaryExpr* b)
    {
        bool isAnd = b->op == BinaryOp::LogAnd;
        int res = fn_->newReg(false);
        Operand l = lowerExpr(b->lhs);
        BasicBlock* bbRhs = fn_->newBlock();
        BasicBlock* bbShort = fn_->newBlock();
        BasicBlock* bbJoin = fn_->newBlock();
        if (isAnd)
            setBranch(l, bbRhs->id, bbShort->id);
        else
            setBranch(l, bbShort->id, bbRhs->id);

        startBlock(bbRhs);
        Operand r = lowerExpr(b->rhs);
        emitCopyTo(res, emitUn(Op::NotBool, emitUn(Op::NotBool, r)));
        setJump(bbJoin->id);

        startBlock(bbShort);
        emitCopyTo(res, Operand::constOf(isAnd ? 0 : 1));
        setJump(bbJoin->id);

        startBlock(bbJoin);
        return Operand::regOf(res);
    }

    Operand
    lowerAssign(const AssignExpr* a)
    {
        if (a->op == AssignOp::Assign) {
            Operand v = lowerExpr(a->rhs);
            v = narrowForStore(v, a->lhs->type);
            LV lv = lowerLValue(a->lhs);
            writeLV(lv, v);
            return v;
        }
        // Compound assignment: single address computation (the paper's
        // `a[i] += *p` produces one load and one store at the *same*
        // address node, which store-forwarding relies on).
        LV lv = lowerLValue(a->lhs);
        Operand cur = readLV(lv);
        Operand rhs = lowerExpr(a->rhs);
        TypePtr lt = a->lhs->type;
        bool uns = lt->isUnsignedInt() || lt->isPointer();
        Operand v;
        switch (a->op) {
          case AssignOp::Add:
            v = lt->isPointer()
                    ? emitBin(Op::Add, cur, scaleIndex(rhs, strideOf(lt)),
                              true)
                    : emitBin(Op::Add, cur, rhs);
            break;
          case AssignOp::Sub:
            v = lt->isPointer()
                    ? emitBin(Op::Sub, cur, scaleIndex(rhs, strideOf(lt)),
                              true)
                    : emitBin(Op::Sub, cur, rhs);
            break;
          case AssignOp::Mul: v = emitBin(Op::Mul, cur, rhs); break;
          case AssignOp::Div:
            v = emitBin(uns ? Op::DivU : Op::DivS, cur, rhs);
            break;
          case AssignOp::Rem:
            v = emitBin(uns ? Op::RemU : Op::RemS, cur, rhs);
            break;
          case AssignOp::And: v = emitBin(Op::And, cur, rhs); break;
          case AssignOp::Or: v = emitBin(Op::Or, cur, rhs); break;
          case AssignOp::Xor: v = emitBin(Op::Xor, cur, rhs); break;
          case AssignOp::Shl: v = emitBin(Op::Shl, cur, rhs); break;
          case AssignOp::Shr:
            v = emitBin(lt->isUnsignedInt() ? Op::ShrU : Op::ShrS, cur,
                        rhs);
            break;
          case AssignOp::Assign:
            panic("plain assign handled above");
        }
        v = narrowForStore(v, lt);
        writeLV(lv, v);
        return v;
    }

    /** Chars are stored through their low byte; registers hold the
     *  widened value, so narrow register-resident char writes. */
    Operand
    narrowForStore(Operand v, const TypePtr& t)
    {
        if (t->kind == TypeKind::Char)
            return emitUn(Op::SextB, v);
        if (t->kind == TypeKind::UChar)
            return emitUn(Op::ZextB, v);
        return v;
    }

    Operand
    lowerCall(const CallExpr* c)
    {
        Instr i;
        i.kind = InstrKind::Call;
        i.callee = c->decl;
        i.loc = c->loc;
        i.rwSet = LocationSet::top();
        for (const Expr* a : c->args)
            i.args.push_back(lowerExpr(a));
        if (!c->decl->returnType->isVoid())
            i.dst = fn_->newReg(c->decl->returnType->isPointer());
        int dst = i.dst;
        emit(std::move(i));
        return dst >= 0 ? Operand::regOf(dst) : Operand::none();
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    void
    lowerStmt(const Stmt* s)
    {
        if (terminated() && s->kind != StmtKind::Empty) {
            // Dead code after return/break: lower into a fresh
            // unreachable block so the IR stays well-formed.
            startBlock(fn_->newBlock());
        }
        switch (s->kind) {
          case StmtKind::Expr:
            lowerExpr(static_cast<const ExprStmt*>(s)->expr);
            break;
          case StmtKind::Decl:
            for (const VarDecl* d :
                 static_cast<const DeclStmt*>(s)->decls)
                lowerLocalInit(d);
            break;
          case StmtKind::If: {
            auto* i = static_cast<const IfStmt*>(s);
            Operand cond = lowerExpr(i->cond);
            BasicBlock* bbT = fn_->newBlock();
            BasicBlock* bbJ = fn_->newBlock();
            BasicBlock* bbF = i->elseStmt ? fn_->newBlock() : bbJ;
            setBranch(cond, bbT->id, bbF->id);
            startBlock(bbT);
            lowerStmt(i->thenStmt);
            if (!terminated())
                setJump(bbJ->id);
            if (i->elseStmt) {
                startBlock(bbF);
                lowerStmt(i->elseStmt);
                if (!terminated())
                    setJump(bbJ->id);
            }
            startBlock(bbJ);
            break;
          }
          case StmtKind::While: {
            auto* w = static_cast<const WhileStmt*>(s);
            BasicBlock* header = fn_->newBlock();
            setJump(header->id);
            startBlock(header);
            Operand cond = lowerExpr(w->cond);
            BasicBlock* body = fn_->newBlock();
            BasicBlock* exit = fn_->newBlock();
            setBranch(cond, body->id, exit->id);
            loops_.push_back({header->id, exit->id});
            startBlock(body);
            lowerStmt(w->body);
            if (!terminated())
                setJump(header->id);
            loops_.pop_back();
            startBlock(exit);
            break;
          }
          case StmtKind::DoWhile: {
            auto* w = static_cast<const DoWhileStmt*>(s);
            BasicBlock* body = fn_->newBlock();
            BasicBlock* condBlock = fn_->newBlock();
            BasicBlock* exit = fn_->newBlock();
            setJump(body->id);
            loops_.push_back({condBlock->id, exit->id});
            startBlock(body);
            lowerStmt(w->body);
            if (!terminated())
                setJump(condBlock->id);
            loops_.pop_back();
            startBlock(condBlock);
            Operand cond = lowerExpr(w->cond);
            setBranch(cond, body->id, exit->id);
            startBlock(exit);
            break;
          }
          case StmtKind::For: {
            auto* f = static_cast<const ForStmt*>(s);
            if (f->init)
                lowerStmt(f->init);
            BasicBlock* header = fn_->newBlock();
            if (!terminated())
                setJump(header->id);
            startBlock(header);
            BasicBlock* body = fn_->newBlock();
            BasicBlock* step = fn_->newBlock();
            BasicBlock* exit = fn_->newBlock();
            if (f->cond) {
                Operand cond = lowerExpr(f->cond);
                setBranch(cond, body->id, exit->id);
            } else {
                setJump(body->id);
            }
            loops_.push_back({step->id, exit->id});
            startBlock(body);
            lowerStmt(f->body);
            if (!terminated())
                setJump(step->id);
            loops_.pop_back();
            startBlock(step);
            if (f->step)
                lowerExpr(f->step);
            setJump(header->id);
            startBlock(exit);
            break;
          }
          case StmtKind::Return: {
            auto* r = static_cast<const ReturnStmt*>(s);
            Operand v =
                r->value ? lowerExpr(r->value) : Operand::none();
            setReturn(v);
            break;
          }
          case StmtKind::Break:
            CASH_ASSERT(!loops_.empty(), "break outside loop");
            setJump(loops_.back().second);
            break;
          case StmtKind::Continue:
            CASH_ASSERT(!loops_.empty(), "continue outside loop");
            setJump(loops_.back().first);
            break;
          case StmtKind::Block:
            for (const Stmt* sub :
                 static_cast<const BlockStmt*>(s)->stmts)
                lowerStmt(sub);
            break;
          case StmtKind::Empty:
            break;
        }
    }

    void
    lowerLocalInit(const VarDecl* d)
    {
        if (d->init) {
            Operand v = lowerExpr(d->init);
            v = narrowForStore(v, d->type);
            if (d->inMemory) {
                emitStore(objectAddress(d), v, d->type->accessSize(),
                          d->loc);
            } else {
                emitCopyTo(d->varId, v);
            }
        }
        if (!d->initList.empty()) {
            Operand base = objectAddress(d);
            int esize = d->type->element->accessSize();
            for (size_t i = 0; i < d->initList.size(); i++) {
                Operand v = lowerExpr(d->initList[i]);
                Operand addr = emitBin(
                    Op::Add, base,
                    Operand::constOf(static_cast<int64_t>(i) * esize),
                    true);
                if (d->objectId >= 0)
                    fn_->addrSeeds[addr.reg] =
                        LocationSet::single(d->objectId);
                emitStore(addr, v, esize, d->loc);
            }
        }
    }

    void
    numberMemOps()
    {
        int next = 0;
        for (auto& b : fn_->blocks)
            for (Instr& i : b->instrs)
                if (i.kind == InstrKind::Load ||
                    i.kind == InstrKind::Store)
                    i.memId = next++;
        fn_->numMemOps = next;
    }

    const Program& prog_;
    const MemoryLayout& layout_;
    const FuncDecl* decl_;
    CfgFunction* fn_;
    BasicBlock* cur_ = nullptr;
    std::vector<std::pair<int, int>> loops_;  ///< (continue, break)
};

} // namespace

std::unique_ptr<CfgProgram>
lowerProgram(const Program& program, const MemoryLayout& layout)
{
    auto cfg = std::make_unique<CfgProgram>();
    for (const FuncDecl* f : program.functions) {
        if (!f->body)
            continue;
        auto fn = std::make_unique<CfgFunction>();
        FunctionLowerer lowerer(program, layout, f, fn.get());
        lowerer.run();
        cfg->functions.push_back(std::move(fn));
    }
    return cfg;
}

} // namespace cash
