/**
 * @file
 * Lowering from the Mini-C AST to the three-address CFG IR.
 */
#ifndef CASH_CFG_LOWER_H
#define CASH_CFG_LOWER_H

#include <memory>

#include "cfg/cfg.h"
#include "frontend/ast.h"
#include "frontend/layout.h"

namespace cash {

/**
 * Lower every defined function of @p program onto CFG form.
 *
 * Requires sema and layout to have run.  Global variable addresses are
 * folded as constants; frame-resident locals are addressed relative to
 * an implicit frame-base input register.  `#pragma independent`
 * annotations are recorded for the points-to analysis.
 */
std::unique_ptr<CfgProgram> lowerProgram(const Program& program,
                                         const MemoryLayout& layout);

} // namespace cash

#endif // CASH_CFG_LOWER_H
