#include "cfg/hyperblock.h"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.h"

namespace cash {

HyperblockPartition::HyperblockPartition(const CfgFunction& fn,
                                         const DominatorTree& dom,
                                         const LoopForest& loops)
{
    blockToHb_.assign(fn.blocks.size(), -1);
    const std::vector<int>& rpo = dom.rpo();

    // Pass 1: assign blocks to hyperblocks in reverse postorder.
    for (int b : rpo) {
        bool startNew = false;
        if (b == fn.entry || loops.isHeader(b)) {
            startNew = true;
        } else {
            // All forward predecessors must be in one hyperblock and in
            // the same innermost loop.
            int candidate = -1;
            for (int p : fn.block(b)->preds) {
                if (dom.rpoIndex(p) < 0)
                    continue;  // unreachable pred
                if (loops.isBackEdge(p, b))
                    continue;
                int ph = blockToHb_[p];
                if (ph < 0 || (candidate >= 0 && ph != candidate)) {
                    candidate = -2;
                    break;
                }
                candidate = ph;
            }
            if (candidate >= 0 &&
                loops.innermostLoopOf(b) ==
                    loops.innermostLoopOf(hbs_[candidate].header)) {
                blockToHb_[b] = candidate;
                hbs_[candidate].blocks.push_back(b);
                hbs_[candidate].blockSet.insert(b);
                continue;
            }
            startNew = true;
        }
        CASH_ASSERT(startNew, "hyperblock assignment fell through");
        Hyperblock hb;
        hb.id = static_cast<int>(hbs_.size());
        hb.header = b;
        hb.blocks.push_back(b);
        hb.blockSet.insert(b);
        hb.loopIndex = loops.innermostLoopOf(b);
        hb.loopDepth =
            hb.loopIndex >= 0 ? loops.loops()[hb.loopIndex].depth : 0;
        blockToHb_[b] = hb.id;
        hbs_.push_back(std::move(hb));
    }

    // Pass 2: exits and incoming edges.
    for (Hyperblock& hb : hbs_) {
        for (int b : hb.blocks) {
            for (int s : fn.block(b)->succs) {
                int sh = blockToHb_[s];
                bool internal =
                    sh == hb.id && s != hb.header;
                if (internal)
                    continue;
                HbExit e;
                e.srcBlock = b;
                e.dstBlock = s;
                e.targetHb = sh;
                e.isBackEdge = loops.isBackEdge(b, s);
                if (e.isBackEdge && sh == hb.id)
                    hb.isLoop = true;
                hb.exits.push_back(e);
            }
        }
    }
    for (Hyperblock& hb : hbs_) {
        for (size_t i = 0; i < hb.exits.size(); i++) {
            const HbExit& e = hb.exits[i];
            if (e.targetHb >= 0) {
                hbs_[e.targetHb].incoming.push_back(
                    {hb.id, static_cast<int>(i)});
            }
        }
    }

    // Pass 3: in-hyperblock reachability (reverse topological).
    for (const Hyperblock& hb : hbs_) {
        for (auto it = hb.blocks.rbegin(); it != hb.blocks.rend(); ++it) {
            int b = *it;
            std::set<int>& r = reach_[b];
            r.insert(b);
            for (int s : fn.block(b)->succs) {
                if (blockToHb_[s] == hb.id && s != hb.header) {
                    const std::set<int>& rs = reach_[s];
                    r.insert(rs.begin(), rs.end());
                }
            }
        }
    }
}

bool
HyperblockPartition::reaches(int fromBlock, int toBlock) const
{
    auto it = reach_.find(fromBlock);
    return it != reach_.end() && it->second.count(toBlock) != 0;
}

std::string
HyperblockPartition::str() const
{
    std::ostringstream os;
    for (const Hyperblock& hb : hbs_) {
        os << "HB" << hb.id << (hb.isLoop ? " (loop)" : "") << ":";
        for (int b : hb.blocks)
            os << " B" << b;
        os << "  exits:";
        for (const HbExit& e : hb.exits) {
            os << " B" << e.srcBlock << "->";
            if (e.targetHb >= 0)
                os << "HB" << e.targetHb;
            else
                os << "?";
            if (e.isBackEdge)
                os << "^";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace cash
