#include "cfg/dominators.h"

#include "support/diagnostics.h"

namespace cash {

DominatorTree::DominatorTree(const CfgFunction& fn)
{
    int n = static_cast<int>(fn.blocks.size());
    idom_.assign(n, -1);
    rpoIndex_.assign(n, -1);
    rpo_ = fn.reversePostorder();
    for (size_t i = 0; i < rpo_.size(); i++)
        rpoIndex_[rpo_[i]] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy "engineered" iterative dominators.
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex_[a] > rpoIndex_[b])
                a = idom_[a];
            while (rpoIndex_[b] > rpoIndex_[a])
                b = idom_[b];
        }
        return a;
    };

    idom_[fn.entry] = fn.entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo_) {
            if (b == fn.entry)
                continue;
            int newIdom = -1;
            for (int p : fn.block(b)->preds) {
                if (rpoIndex_[p] < 0 || idom_[p] < 0)
                    continue;  // unreachable or not processed yet
                newIdom = newIdom < 0 ? p : intersect(p, newIdom);
            }
            if (newIdom >= 0 && idom_[b] != newIdom) {
                idom_[b] = newIdom;
                changed = true;
            }
        }
    }
    // Normalize: entry's idom is -1 externally.
    idom_[fn.entry] = -1;
}

bool
DominatorTree::dominates(int a, int b) const
{
    if (a == b)
        return true;
    int cur = b;
    while (cur >= 0) {
        cur = idom_[cur];
        if (cur == a)
            return true;
    }
    return false;
}

} // namespace cash
