/**
 * @file
 * Three-address control-flow-graph IR.
 *
 * The Mini-C AST is lowered onto this IR (cfg/lower.h); hyperblock
 * formation, liveness and the Pegasus builder all consume it.  All
 * scalar values live in an unbounded space of virtual registers —
 * spatial computation never spills (paper §7.2).
 */
#ifndef CASH_CFG_CFG_H
#define CASH_CFG_CFG_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/memloc.h"
#include "frontend/ast.h"

namespace cash {

/** Operation codes; signedness is baked into the opcode. */
enum class Op
{
    // Binary
    Add, Sub, Mul, DivS, DivU, RemS, RemU,
    And, Or, Xor, Shl, ShrS, ShrU,
    LtS, LtU, LeS, LeU, Eq, Ne,
    // Unary
    Neg, NotBool, BitNot, SextB, ZextB,
    Copy,
};

const char* opName(Op op);
bool opIsUnary(Op op);
/** True for comparison opcodes producing 0/1. */
bool opIsCompare(Op op);

/** An instruction operand: nothing, a virtual register or a constant. */
struct Operand
{
    enum class Kind { None, Reg, Const };
    Kind kind = Kind::None;
    int reg = -1;
    int64_t cval = 0;

    static Operand none() { return {}; }
    static Operand regOf(int r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }
    static Operand constOf(int64_t v)
    {
        Operand o;
        o.kind = Kind::Const;
        o.cval = v;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isConst() const { return kind == Kind::Const; }
    bool isNone() const { return kind == Kind::None; }
    std::string str() const;
};

enum class InstrKind { Bin, Un, Copy, Load, Store, Call };

/**
 * One three-address instruction.  A discriminated record rather than a
 * class hierarchy: the instruction set is small and fixed.
 */
struct Instr
{
    InstrKind kind = InstrKind::Copy;
    Op op = Op::Copy;
    int dst = -1;            ///< Destination register (-1 = none).
    Operand a, b;            ///< Bin/Un/Copy operands.

    // Memory access fields (Load/Store).
    Operand addr;
    Operand value;           ///< Stored value.
    int size = 4;            ///< Access width in bytes (1 or 4).
    bool signExtend = true;  ///< Byte loads: sign- vs zero-extend.
    LocationSet rwSet;       ///< May-touch set (filled by points-to).
    int memId = -1;          ///< Dense id among memory ops of a function.

    // Call fields.
    const FuncDecl* callee = nullptr;
    std::vector<Operand> args;
    /**
     * Per-argument points-to sets at this call site (parallel to
     * `args`; empty set for scalar arguments).  Captured by the
     * points-to attach phase so the interprocedural MOD/REF pass
     * (analysis/modref.h) can translate callee summaries into the
     * caller's location space.
     */
    std::vector<LocationSet> argPts;
    /** Call-site effective effect sets (analysis/modref.h). */
    LocationSet callReads, callWrites;
    /** True once modref stamped callReads/callWrites. */
    bool callEffectsValid = false;

    SourceLoc loc;

    std::string str() const;
};

/** Block terminator. */
struct Terminator
{
    enum class Kind { None, Jump, CondBranch, Return };
    Kind kind = Kind::None;
    Operand cond;            ///< CondBranch condition (true → target0).
    int target0 = -1;        ///< Jump target / taken target.
    int target1 = -1;        ///< Fall-through target.
    Operand retValue;        ///< Return value (may be None).

    std::string str() const;
};

struct BasicBlock
{
    int id = -1;
    std::vector<Instr> instrs;
    Terminator term;
    std::vector<int> succs;
    std::vector<int> preds;
};

/**
 * A function in CFG form.
 */
class CfgFunction
{
  public:
    const FuncDecl* decl = nullptr;
    std::vector<std::unique_ptr<BasicBlock>> blocks;
    int entry = 0;
    int numRegs = 0;            ///< Total virtual registers.
    int numParams = 0;          ///< Registers [0, numParams) are params.
    std::vector<bool> regIsPointer;  ///< Provenance for points-to.
    int numMemOps = 0;          ///< Count of Load/Store instructions.
    /**
     * Implicit extra input holding the activation-frame base address,
     * or -1 when the function has no memory-resident locals.
     */
    int frameBaseReg = -1;
    /**
     * Point-to seeds: registers that lowering *knows* hold the address
     * of a specific object (e.g. frameBase+offset computations).  The
     * points-to analysis uses the seed verbatim for these registers.
     */
    std::map<int, LocationSet> addrSeeds;

    BasicBlock* block(int id) { return blocks.at(id).get(); }
    const BasicBlock* block(int id) const { return blocks.at(id).get(); }

    BasicBlock*
    newBlock()
    {
        auto b = std::make_unique<BasicBlock>();
        b->id = static_cast<int>(blocks.size());
        blocks.push_back(std::move(b));
        return blocks.back().get();
    }

    int
    newReg(bool isPointer = false)
    {
        regIsPointer.push_back(isPointer);
        return numRegs++;
    }

    /** Recompute preds/succs from terminators. */
    void computeEdges();

    /** Remove blocks unreachable from the entry. */
    void pruneUnreachable();

    /** Blocks in reverse postorder from the entry. */
    std::vector<int> reversePostorder() const;

    std::string str() const;
};

/** A whole lowered program plus its alias oracle. */
struct CfgProgram
{
    std::vector<std::unique_ptr<CfgFunction>> functions;
    AliasOracle oracle;
    /** External location id for pointer param (function, varId). */
    std::vector<std::vector<int>> paramLocation;

    CfgFunction* find(const std::string& name) const;
};

} // namespace cash

#endif // CASH_CFG_CFG_H
