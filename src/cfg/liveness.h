/**
 * @file
 * Live-variable analysis over virtual registers.
 *
 * The Pegasus builder uses liveness at hyperblock boundaries to decide
 * which values need eta/merge nodes (paper §3.1).
 */
#ifndef CASH_CFG_LIVENESS_H
#define CASH_CFG_LIVENESS_H

#include <set>
#include <vector>

#include "cfg/cfg.h"

namespace cash {

/** Backward may-liveness of virtual registers per block. */
class Liveness
{
  public:
    explicit Liveness(const CfgFunction& fn);

    const std::set<int>& liveIn(int block) const
    {
        return liveIn_.at(block);
    }
    const std::set<int>& liveOut(int block) const
    {
        return liveOut_.at(block);
    }

    /** Registers used by instruction @p i (operand registers). */
    static std::vector<int> uses(const Instr& i);
    /** Register defined by @p i, or -1. */
    static int def(const Instr& i);
    /** Registers used by terminator @p t. */
    static std::vector<int> uses(const Terminator& t);

  private:
    std::vector<std::set<int>> liveIn_;
    std::vector<std::set<int>> liveOut_;
};

} // namespace cash

#endif // CASH_CFG_LIVENESS_H
