/**
 * @file
 * Hyperblock formation (paper §3.1).
 *
 * A hyperblock is a single-entry acyclic collection of basic blocks
 * that is predicated into straight-line code.  Loop headers always
 * start a new hyperblock; a block joins its predecessors' hyperblock
 * only when all (forward) predecessors agree and the block belongs to
 * the same innermost loop.
 */
#ifndef CASH_CFG_HYPERBLOCK_H
#define CASH_CFG_HYPERBLOCK_H

#include <map>
#include <set>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/dominators.h"
#include "cfg/loops.h"

namespace cash {

/** An edge leaving a hyperblock. */
struct HbExit
{
    int srcBlock = -1;   ///< Block inside the hyperblock.
    int dstBlock = -1;   ///< Target block (a hyperblock header).
    int targetHb = -1;
    bool isBackEdge = false;  ///< Loops back to this hyperblock itself.
};

/** An edge entering a hyperblock (parallel to HbExit records). */
struct HbEntry
{
    int fromHb = -1;
    int exitIndex = -1;  ///< Index into the source hyperblock's exits.
};

struct Hyperblock
{
    int id = -1;
    int header = -1;
    std::vector<int> blocks;  ///< Topological order; blocks[0]==header.
    std::set<int> blockSet;
    int loopIndex = -1;       ///< Innermost loop of the header, or -1.
    int loopDepth = 0;
    bool isLoop = false;      ///< Has a back edge onto its own header.
    std::vector<HbExit> exits;
    std::vector<HbEntry> incoming;
};

/**
 * Partition of a function's blocks into hyperblocks.
 */
class HyperblockPartition
{
  public:
    HyperblockPartition(const CfgFunction& fn, const DominatorTree& dom,
                        const LoopForest& loops);

    const std::vector<Hyperblock>& hyperblocks() const { return hbs_; }
    const Hyperblock& hb(int id) const { return hbs_.at(id); }

    /** Hyperblock containing @p block (-1 for unreachable blocks). */
    int hbOf(int block) const { return blockToHb_.at(block); }

    /** In-hyperblock forward reachability (reflexive). */
    bool reaches(int fromBlock, int toBlock) const;

    std::string str() const;

  private:
    std::vector<Hyperblock> hbs_;
    std::vector<int> blockToHb_;
    /** Per block: set of in-HB blocks reachable from it (incl. self). */
    std::map<int, std::set<int>> reach_;
};

} // namespace cash

#endif // CASH_CFG_HYPERBLOCK_H
