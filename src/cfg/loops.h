/**
 * @file
 * Natural-loop detection over a CfgFunction.
 */
#ifndef CASH_CFG_LOOPS_H
#define CASH_CFG_LOOPS_H

#include <set>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/dominators.h"

namespace cash {

/** One natural loop: a header and the set of blocks it contains. */
struct NaturalLoop
{
    int header = -1;
    std::set<int> blocks;
    std::vector<int> backEdgeSources;
    int parent = -1;  ///< Index of enclosing loop, -1 at top level.
    int depth = 1;
};

/** All natural loops of a function (merged per header). */
class LoopForest
{
  public:
    LoopForest(const CfgFunction& fn, const DominatorTree& dom);

    const std::vector<NaturalLoop>& loops() const { return loops_; }

    /** Index of the innermost loop containing @p block, or -1. */
    int innermostLoopOf(int block) const;

    /** Is @p block a loop header? */
    bool isHeader(int block) const;

    /** Is CFG edge @p src → @p dst a back edge? */
    bool isBackEdge(int src, int dst) const;

  private:
    std::vector<NaturalLoop> loops_;
    std::set<std::pair<int, int>> backEdges_;
};

} // namespace cash

#endif // CASH_CFG_LOOPS_H
