#include "fabric/placer.h"

#include <algorithm>
#include <cassert>

#include "pegasus/graph.h"
#include "pegasus/node.h"

namespace cash {

namespace {

/** splitmix64 — the only use of the seed: breaking exact ties. */
uint64_t
mix(uint64_t seed, uint64_t v)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (v + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Undirected weighted adjacency in CSR form. */
struct AdjGraph
{
    int n = 0;
    std::vector<int32_t> off;  ///< n + 1.
    std::vector<int32_t> nbr;
    std::vector<int32_t> w;
    std::vector<int32_t> weight;  ///< Node weight (fine-node count).

    int64_t
    degree(int u) const
    {
        int64_t d = 0;
        for (int e = off[u]; e < off[u + 1]; e++)
            d += w[e];
        return d;
    }
};

/** Build an AdjGraph from undirected (u, v) pairs, merging parallels. */
AdjGraph
buildAdj(int n, std::vector<std::pair<int32_t, int32_t>>& pairs,
         const std::vector<int32_t>& weight)
{
    // Symmetrize, normalize, merge parallel edges into weights.
    std::vector<std::pair<int32_t, int32_t>> sym;
    sym.reserve(pairs.size() * 2);
    for (auto& p : pairs) {
        if (p.first == p.second)
            continue;
        sym.push_back(p);
        sym.emplace_back(p.second, p.first);
    }
    std::sort(sym.begin(), sym.end());

    AdjGraph g;
    g.n = n;
    g.weight = weight;
    g.off.assign(n + 1, 0);
    for (size_t i = 0; i < sym.size();) {
        size_t j = i;
        while (j < sym.size() && sym[j] == sym[i])
            j++;
        g.nbr.push_back(sym[i].second);
        g.w.push_back(static_cast<int32_t>(j - i));
        g.off[sym[i].first + 1]++;
        i = j;
    }
    for (int u = 0; u < n; u++)
        g.off[u + 1] += g.off[u];
    return g;
}

/**
 * One round of heavy-edge matching: each unmatched cluster (id order)
 * pairs with its heaviest unmatched neighbour whose combined weight
 * stays within @p maxWeight.  Returns the coarse graph and fills
 * @p coarseOf (fine-cluster -> coarse-cluster).
 */
AdjGraph
coarsen(const AdjGraph& g, int maxWeight, std::vector<int32_t>* coarseOf,
        bool* changed)
{
    std::vector<int32_t> match(g.n, -1);
    *changed = false;
    for (int u = 0; u < g.n; u++) {
        if (match[u] >= 0)
            continue;
        int best = -1;
        int32_t bestW = 0;
        for (int e = g.off[u]; e < g.off[u + 1]; e++) {
            int v = g.nbr[e];
            if (match[v] >= 0 ||
                g.weight[u] + g.weight[v] > maxWeight)
                continue;
            if (g.w[e] > bestW || (g.w[e] == bestW && v < best)) {
                best = v;
                bestW = g.w[e];
            }
        }
        match[u] = (best >= 0) ? best : u;
        if (best >= 0) {
            match[best] = u;
            *changed = true;
        }
    }

    coarseOf->assign(g.n, -1);
    int nc = 0;
    for (int u = 0; u < g.n; u++) {
        if ((*coarseOf)[u] >= 0)
            continue;
        (*coarseOf)[u] = nc;
        (*coarseOf)[match[u]] = nc;
        nc++;
    }

    std::vector<int32_t> cw(nc, 0);
    for (int u = 0; u < g.n; u++)
        cw[(*coarseOf)[u]] += g.weight[u];
    std::vector<std::pair<int32_t, int32_t>> pairs;
    for (int u = 0; u < g.n; u++)
        for (int e = g.off[u]; e < g.off[u + 1]; e++) {
            int cu = (*coarseOf)[u], cv = (*coarseOf)[g.nbr[e]];
            if (cu < cv)
                for (int k = 0; k < g.w[e]; k++)
                    pairs.emplace_back(cu, cv);
        }
    return buildAdj(nc, pairs, cw);
}

/**
 * Greedy BFS-grow seeding: fill tiles in row-major order, each tile
 * growing from its most-connected frontier cluster.  Clusters that
 * fit nowhere greedily go to the emptiest tile (repaired later).
 */
void
bfsGrowSeed(const AdjGraph& g, int numTiles, int capacity, uint64_t seed,
            std::vector<int32_t>* tileOf)
{
    tileOf->assign(g.n, -1);
    std::vector<int32_t> load(numTiles, 0);
    int unassigned = g.n;

    // gain[u]: connection weight from u into the tile being grown.
    std::vector<int64_t> gain(g.n, 0);

    for (int t = 0; t < numTiles && unassigned > 0; t++) {
        std::fill(gain.begin(), gain.end(), 0);
        while (unassigned > 0) {
            // Highest-gain unassigned cluster that fits; among zero
            // gain (fresh seed) prefer highest degree.  Ties break on
            // the seed hash, then id — fully deterministic.
            int best = -1;
            int64_t bestKey1 = -1, bestKey2 = -1;
            uint64_t bestH = 0;
            for (int u = 0; u < g.n; u++) {
                if ((*tileOf)[u] >= 0 ||
                    load[t] + g.weight[u] > capacity)
                    continue;
                int64_t k1 = gain[u], k2 = g.degree(u);
                uint64_t h = mix(seed, u);
                if (best < 0 || k1 > bestKey1 ||
                    (k1 == bestKey1 &&
                     (k2 > bestKey2 ||
                      (k2 == bestKey2 && h < bestH)))) {
                    best = u;
                    bestKey1 = k1;
                    bestKey2 = k2;
                    bestH = h;
                }
            }
            if (best < 0)
                break;  // Nothing fits in this tile anymore.
            (*tileOf)[best] = t;
            load[t] += g.weight[best];
            unassigned--;
            for (int e = g.off[best]; e < g.off[best + 1]; e++)
                gain[g.nbr[e]] += g.w[e];
        }
    }

    // Leftovers (greedy packing miss): emptiest tile, id order.
    for (int u = 0; u < g.n; u++) {
        if ((*tileOf)[u] >= 0)
            continue;
        int t = static_cast<int>(
            std::min_element(load.begin(), load.end()) - load.begin());
        (*tileOf)[u] = t;
        load[t] += g.weight[u];
    }
}

} // namespace

Placement
placeGraph(const Graph& g, const FabricModel& fm, uint64_t seed)
{
    Placement pl;
    pl.numTiles = fm.numTiles();

    const std::vector<Node*> nodes = g.liveNodes();
    const int n = static_cast<int>(nodes.size());
    pl.numNodes = n;
    pl.tileOf.assign(n, 0);

    // Dense index per node id.
    int maxId = -1;
    for (const Node* nd : nodes)
        maxId = std::max(maxId, nd->id);
    std::vector<int32_t> denseOf(maxId + 1, -1);
    for (int i = 0; i < n; i++)
        denseOf[nodes[i]->id] = i;

    // Combined data+token edge multigraph over live nodes.
    std::vector<std::pair<int32_t, int32_t>> pairs;
    for (int i = 0; i < n; i++)
        for (const PortRef& in : nodes[i]->inputs()) {
            if (!in.node || in.node->dead)
                continue;
            pl.totalEdges++;
            pairs.emplace_back(denseOf[in.node->id], i);
        }

    const int T = fm.numTiles();
    const int balanced = (n + T - 1) / T;
    const int capacity = std::max(fm.tileCapacity, balanced);
    pl.capacity = capacity;

    if (fm.trivial() || n == 0) {
        pl.usedTiles = n > 0 ? 1 : 0;
        pl.maxTileOps = n;
        return pl;
    }

    AdjGraph fine =
        buildAdj(n, pairs, std::vector<int32_t>(n, 1));

    // ---- 1. Coarsen until within a small multiple of the tiles. ----
    std::vector<std::vector<int32_t>> maps;  // Projection chain.
    AdjGraph cur = fine;
    while (cur.n > 4 * T) {
        std::vector<int32_t> coarseOf;
        bool changed = false;
        AdjGraph next =
            coarsen(cur, std::max(1, capacity / 2), &coarseOf, &changed);
        if (!changed)
            break;
        maps.push_back(std::move(coarseOf));
        cur = std::move(next);
    }

    // ---- 2. Greedy BFS-grow seeding on the coarse graph. ----
    std::vector<int32_t> tile;
    bfsGrowSeed(cur, T, capacity, seed, &tile);

    // Project back to fine nodes.
    for (auto it = maps.rbegin(); it != maps.rend(); ++it) {
        const std::vector<int32_t>& coarseOf = *it;
        std::vector<int32_t> finer(coarseOf.size());
        for (size_t u = 0; u < coarseOf.size(); u++)
            finer[u] = tile[coarseOf[u]];
        tile = std::move(finer);
    }

    std::vector<int32_t> load(T, 0);
    for (int i = 0; i < n; i++)
        load[tile[i]]++;

    // ---- 3. KL-style boundary refinement: single-node moves that
    // reduce total cut cost (weight x hop distance), capacity-bound.
    auto moveCost = [&](int u, int t) {
        int64_t c = 0;
        for (int e = fine.off[u]; e < fine.off[u + 1]; e++)
            c += static_cast<int64_t>(fine.w[e]) *
                 fm.hopDist(t, tile[fine.nbr[e]]);
        return c;
    };
    for (int pass = 0; pass < 8; pass++) {
        int moves = 0;
        for (int u = 0; u < n; u++) {
            const int from = tile[u];
            int64_t bestCost = moveCost(u, from);
            int bestTile = from;
            // Candidate targets: tiles hosting a neighbour.
            for (int e = fine.off[u]; e < fine.off[u + 1]; e++) {
                const int t = tile[fine.nbr[e]];
                if (t == bestTile || load[t] >= capacity)
                    continue;
                const int64_t c = moveCost(u, t);
                if (c < bestCost ||
                    (c == bestCost && t < bestTile && t != from)) {
                    bestCost = c;
                    bestTile = t;
                }
            }
            if (bestTile != from && moveCost(u, from) > bestCost) {
                load[from]--;
                load[bestTile]++;
                tile[u] = bestTile;
                moves++;
            }
        }
        if (moves == 0)
            break;
    }

    // ---- 4. Capacity repair: total capacity >= n, so overloaded
    // tiles can always shed their cheapest boundary node somewhere.
    while (true) {
        int over = -1;
        for (int t = 0; t < T; t++)
            if (load[t] > capacity && (over < 0 || load[t] > load[over]))
                over = t;
        if (over < 0)
            break;
        int bestU = -1, bestT = -1;
        int64_t bestDelta = 0;
        for (int u = 0; u < n; u++) {
            if (tile[u] != over)
                continue;
            for (int t = 0; t < T; t++) {
                if (t == over || load[t] >= capacity)
                    continue;
                const int64_t d = moveCost(u, t) - moveCost(u, over);
                if (bestU < 0 || d < bestDelta ||
                    (d == bestDelta && (u < bestU ||
                                        (u == bestU && t < bestT)))) {
                    bestU = u;
                    bestT = t;
                    bestDelta = d;
                }
            }
        }
        assert(bestU >= 0 && "total capacity >= node count");
        if (bestU < 0)
            break;
        load[over]--;
        load[bestT]++;
        tile[bestU] = bestT;
    }

    pl.tileOf = std::move(tile);

    // ---- Quality report. ----
    for (int i = 0; i < n; i++)
        for (const PortRef& in : nodes[i]->inputs()) {
            if (!in.node || in.node->dead)
                continue;
            const int d = fm.hopDist(pl.tileOf[denseOf[in.node->id]],
                                     pl.tileOf[i]);
            if (d > 0) {
                pl.cutEdges++;
                pl.cutHops += d;
            }
        }
    for (int t = 0; t < T; t++) {
        pl.maxTileOps = std::max<int64_t>(pl.maxTileOps, load[t]);
        if (load[t] > 0)
            pl.usedTiles++;
    }
    return pl;
}

FabricSession
placeAll(const std::vector<const Graph*>& graphs, const FabricModel& fm,
         uint64_t seed)
{
    FabricSession s;
    s.model = fm;
    for (const Graph* g : graphs)
        s.placements.emplace(g->name, placeGraph(*g, fm, seed));
    return s;
}

} // namespace cash
