/**
 * @file
 * Tiled-fabric model (docs/FABRIC.md).
 *
 * The paper assumes an idealized fabric where every Pegasus operator
 * is a free ASIC node with point-to-point wires.  A FabricModel
 * instead describes a bounded NxM grid of tiles: each tile hosts a
 * limited number of operators, neighbouring tiles are one "hop"
 * apart, and every directed tile pair is connected by a FIFO channel
 * with a bounded number of in-flight credits.  The placer
 * (fabric/placer.h) maps each graph onto the grid; the simulator
 * charges per-hop latency and credit backpressure on every cross-tile
 * edge.
 *
 * Spec grammar (the `fabric=` field of a TargetSpec):
 *
 *     <R>x<C>[:hop<L>][:cap<N>][:credit<K>]
 *
 * e.g. `4x4`, `2x2:hop3`, `8x8:hop2:cap16:credit8`.  `str()` renders
 * the canonical form (suffixes only for non-default values) and
 * round-trips through `parse()`; it is the fabric fragment of the
 * service cache key, so canonicalization is load-bearing.
 */
#ifndef CASH_FABRIC_FABRIC_H
#define CASH_FABRIC_FABRIC_H

#include <cstdlib>
#include <string>

#include "support/diagnostics.h"

namespace cash {

/** An NxM grid of operator tiles with a mesh interconnect. */
struct FabricModel
{
    int rows = 1;
    int cols = 1;
    /** Cycles charged per Manhattan hop on a cross-tile edge. */
    int hopLatency = 1;
    /**
     * Operators a tile may host; 0 = balanced (the placer derives
     * ceil(liveNodes / numTiles) per graph).
     */
    int tileCapacity = 0;
    /**
     * In-flight transfers per directed tile-pair channel; 0 =
     * unbounded (no credit backpressure).
     */
    int linkCredits = 0;

    int numTiles() const { return rows * cols; }

    /** A 1x1 (or degenerate) fabric: no placement, no timing effect. */
    bool trivial() const { return rows * cols <= 1; }

    int tileRow(int tile) const { return tile / cols; }
    int tileCol(int tile) const { return tile % cols; }

    /** Manhattan hop distance between two tiles. */
    int
    hopDist(int a, int b) const
    {
        return std::abs(tileRow(a) - tileRow(b)) +
               std::abs(tileCol(a) - tileCol(b));
    }

    /** Parse the spec grammar above.  Field-level error messages. */
    static Status parse(const std::string& spec, FabricModel* out);

    /** Canonical spec; round-trips through parse(). */
    std::string str() const;

    bool
    operator==(const FabricModel& o) const
    {
        return rows == o.rows && cols == o.cols &&
               hopLatency == o.hopLatency &&
               tileCapacity == o.tileCapacity &&
               linkCredits == o.linkCredits;
    }
    bool operator!=(const FabricModel& o) const { return !(*this == o); }
};

} // namespace cash

#endif // CASH_FABRIC_FABRIC_H
