/**
 * @file
 * Partitioner/placer: Pegasus graphs onto a FabricModel grid.
 *
 * Placement is a multi-level min-cut over the *combined* data+token
 * edge graph (every input edge between live nodes, uniform weight,
 * multi-edges accumulated):
 *
 *   1. coarsen by heavy-edge matching until the cluster count is
 *      within a small multiple of the tile count;
 *   2. seed the grid with a greedy BFS-grow: tiles are filled in
 *      row-major order, each growing from the most-connected frontier
 *      cluster, so connected subgraphs land on one tile;
 *   3. project back to nodes and run Kernighan–Lin-style boundary
 *      refinement: repeated single-node moves that reduce total
 *      cut cost (edge weight x Manhattan hop distance) under the
 *      capacity constraint.
 *
 * The whole pipeline is deterministic for a fixed seed (the seed only
 * perturbs exact-tie choices through a splitmix hash); the default
 * seed is fixed, so placement is byte-stable across runs and -jN.
 */
#ifndef CASH_FABRIC_PLACER_H
#define CASH_FABRIC_PLACER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fabric/fabric.h"

namespace cash {

class Graph;

/** Where each live node of one graph lives, plus quality metrics. */
struct Placement
{
    int numTiles = 1;
    /** Tile id per dense live-node index (Graph::liveNodes() order). */
    std::vector<int32_t> tileOf;

    // Static quality report (docs/FABRIC.md, `fabric.*` stats keys).
    int64_t totalEdges = 0;   ///< Data+token edges between live nodes.
    int64_t cutEdges = 0;     ///< Edges whose endpoints sit on
                              ///  different tiles.
    int64_t cutHops = 0;      ///< Sum of hop distances over cut edges.
    int64_t numNodes = 0;     ///< Live nodes placed.
    int64_t maxTileOps = 0;   ///< Most-loaded tile.
    int64_t usedTiles = 0;    ///< Tiles hosting at least one node.
    int64_t capacity = 0;     ///< Effective per-tile capacity used.
};

/** Default placement seed; tests rely on this exact value. */
inline constexpr uint64_t kPlacementSeed = 0x5eedcab5u;

/**
 * Place @p g onto @p fm.  Always succeeds: the effective capacity is
 * max(fm.tileCapacity, ceil(liveNodes/numTiles)), so every graph
 * fits.  Deterministic for a fixed @p seed.
 */
Placement placeGraph(const Graph& g, const FabricModel& fm,
                     uint64_t seed = kPlacementSeed);

/**
 * One compiled request's fabric context: the model plus a placement
 * per graph (keyed by graph name).  The simulator takes a pointer to
 * one of these; null (or a trivial model) means the idealized fabric
 * and costs nothing on any path.
 */
struct FabricSession
{
    FabricModel model;
    std::map<std::string, Placement> placements;
};

/** placeGraph over every graph, keyed by name. */
FabricSession placeAll(const std::vector<const Graph*>& graphs,
                       const FabricModel& fm,
                       uint64_t seed = kPlacementSeed);

} // namespace cash

#endif // CASH_FABRIC_PLACER_H
