#include "fabric/fabric.h"

#include <sstream>
#include <vector>

namespace cash {

namespace {

/** Strictly-positive decimal integer; false on junk or overflow. */
bool
parsePosInt(const std::string& text, int* out)
{
    if (text.empty() || text.size() > 6)
        return false;
    long v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + (c - '0');
    }
    if (v < 1 || v > 1000000)
        return false;
    *out = static_cast<int>(v);
    return true;
}

Status
badFabric(const std::string& spec, const std::string& why)
{
    return Status::error(ErrorCode::InternalError,
                         "bad fabric spec '" + spec + "': " + why +
                             " (expected <R>x<C>[:hop<L>][:cap<N>]"
                             "[:credit<K>], e.g. 4x4:hop2)");
}

} // namespace

Status
FabricModel::parse(const std::string& spec, FabricModel* out)
{
    FabricModel fm;

    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        size_t colon = spec.find(':', start);
        parts.push_back(spec.substr(start, colon - start));
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }

    size_t x = parts[0].find('x');
    if (x == std::string::npos)
        return badFabric(spec, "missing '<R>x<C>' grid shape");
    if (!parsePosInt(parts[0].substr(0, x), &fm.rows))
        return badFabric(spec, "bad row count '" + parts[0].substr(0, x) +
                                   "'");
    if (!parsePosInt(parts[0].substr(x + 1), &fm.cols))
        return badFabric(spec,
                         "bad column count '" + parts[0].substr(x + 1) +
                             "'");
    if (fm.rows * fm.cols > 4096)
        return badFabric(spec, "grid larger than 4096 tiles");

    for (size_t i = 1; i < parts.size(); i++) {
        const std::string& p = parts[i];
        if (p.rfind("hop", 0) == 0) {
            if (!parsePosInt(p.substr(3), &fm.hopLatency))
                return badFabric(spec, "bad hop latency '" + p + "'");
        } else if (p.rfind("cap", 0) == 0) {
            if (!parsePosInt(p.substr(3), &fm.tileCapacity))
                return badFabric(spec, "bad tile capacity '" + p + "'");
        } else if (p.rfind("credit", 0) == 0) {
            if (!parsePosInt(p.substr(6), &fm.linkCredits))
                return badFabric(spec, "bad link credits '" + p + "'");
        } else {
            return badFabric(spec, "unknown suffix '" + p + "'");
        }
    }

    *out = fm;
    return Status::ok();
}

std::string
FabricModel::str() const
{
    std::ostringstream os;
    os << rows << 'x' << cols;
    if (hopLatency != 1)
        os << ":hop" << hopLatency;
    if (tileCapacity != 0)
        os << ":cap" << tileCapacity;
    if (linkCredits != 0)
        os << ":credit" << linkCredits;
    return os.str();
}

} // namespace cash
