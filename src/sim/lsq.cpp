#include "sim/lsq.h"

#include <algorithm>

namespace cash {

Lsq::Lsq(int size, int ports) : size_(size), ports_(ports)
{
    portFree_.assign(ports_, 0);
    occupancyHist_.assign(size_ + 1, 0);
}

void
Lsq::reset()
{
    std::fill(portFree_.begin(), portFree_.end(), 0);
    while (!outstanding_.empty())
        outstanding_.pop();
    maxOccupancy_ = 0;
    portStalls_ = 0;
    fullStalls_ = 0;
    occupancyHist_.assign(size_ + 1, 0);
}

uint64_t
Lsq::issue(uint64_t now)
{
    // Free completed slots.
    while (!outstanding_.empty() && outstanding_.top() <= now)
        outstanding_.pop();

    uint64_t t = now;
    // Wait for a free LSQ slot.
    if (static_cast<int>(outstanding_.size()) >= size_) {
        while (!outstanding_.empty() &&
               static_cast<int>(outstanding_.size()) >= size_) {
            t = std::max(t, outstanding_.top());
            outstanding_.pop();
        }
        fullStalls_++;
    }

    // Earliest-free port.
    size_t best = 0;
    for (size_t p = 1; p < portFree_.size(); p++)
        if (portFree_[p] < portFree_[best])
            best = p;
    if (portFree_[best] > t)
        portStalls_++;
    t = std::max(t, portFree_[best]);
    portFree_[best] = t + 1;  // one issue per port per cycle
    return t;
}

void
Lsq::complete(uint64_t when)
{
    occupancyHist_[std::min<size_t>(outstanding_.size(), size_)]++;
    outstanding_.push(when);
    maxOccupancy_ = std::max(maxOccupancy_,
                             static_cast<uint64_t>(outstanding_.size()));
}

} // namespace cash
