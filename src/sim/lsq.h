/**
 * @file
 * Load-store queue occupancy and port arbitration.
 *
 * Models a finite-size LSQ with a fixed number of issue ports: an
 * access must first find a free LSQ slot (bounded outstanding
 * accesses), then the earliest-free port.  The hierarchy is
 * non-blocking: misses overlap; ports are occupied for one cycle per
 * issued access.
 */
#ifndef CASH_SIM_LSQ_H
#define CASH_SIM_LSQ_H

#include <cstdint>
#include <queue>
#include <vector>

namespace cash {

class Lsq
{
  public:
    Lsq(int size, int ports);

    /**
     * Reserve a slot+port for an access arriving at @p now that will
     * occupy its LSQ slot until the completion time the caller later
     * reports via complete().  Returns the issue (port-grant) time.
     */
    uint64_t issue(uint64_t now);

    /** Record that the access issued at issue() finishes at @p when. */
    void complete(uint64_t when);

    void reset();

    uint64_t maxOccupancy() const { return maxOccupancy_; }
    uint64_t portStalls() const { return portStalls_; }
    uint64_t fullStalls() const { return fullStalls_; }

    /** Accesses in flight right now (slots in use). */
    uint64_t occupancy() const { return outstanding_.size(); }

    /**
     * Occupancy histogram: entry k counts accesses that found k other
     * accesses outstanding when they entered the queue.
     */
    const std::vector<uint64_t>& occupancyHist() const
    {
        return occupancyHist_;
    }

  private:
    int size_;
    int ports_;
    std::vector<uint64_t> portFree_;
    /** Completion times of outstanding accesses (min-heap). */
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<uint64_t>>
        outstanding_;
    uint64_t maxOccupancy_ = 0;
    uint64_t portStalls_ = 0;
    uint64_t fullStalls_ = 0;
    std::vector<uint64_t> occupancyHist_;
};

} // namespace cash

#endif // CASH_SIM_LSQ_H
