#include "sim/tlb.h"

namespace cash {

namespace {

uint32_t
log2u(uint32_t v)
{
    uint32_t s = 0;
    while ((1u << s) < v)
        s++;
    return s;
}

} // namespace

Tlb::Tlb(int entries, uint32_t pageSize, uint64_t missPenalty)
    : entries_(entries), pageShift_(log2u(pageSize)),
      missPenalty_(missPenalty)
{
}

void
Tlb::reset()
{
    lru_.clear();
    map_.clear();
    hits_ = 0;
    misses_ = 0;
}

uint64_t
Tlb::access(uint32_t addr)
{
    uint32_t page = addr >> pageShift_;
    auto it = map_.find(page);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_++;
        return 0;
    }
    misses_++;
    lru_.push_front(page);
    map_[page] = lru_.begin();
    if (static_cast<int>(lru_.size()) > entries_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    return missPenalty_;
}

} // namespace cash
