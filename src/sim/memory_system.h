/**
 * @file
 * The load-store queue and memory hierarchy shared by all memory
 * operations of a spatial computation (paper §7.3).
 *
 * "All memory operations inject requests into a load-store queue with
 *  a finite number of ports and a finite size. ... The L1 cache has 2
 *  cycles hit latency and 8kb, while the L2 cache has 8 cycles hit
 *  latency and 256kb.  Memory latency is 72 cycles, with 4 cycles
 *  between consecutive words.  The memory is dual-ported.  The data
 *  TLB has 64 pages with a 30 cycle TLB miss cost."
 */
#ifndef CASH_SIM_MEMORY_SYSTEM_H
#define CASH_SIM_MEMORY_SYSTEM_H

#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>

#include "sim/cache.h"
#include "sim/lsq.h"
#include "sim/tlb.h"
#include "support/stats.h"
#include "support/trace.h"

namespace cash {

/** Memory-system configuration (several named presets below). */
struct MemConfig
{
    std::string name = "realistic-2p";
    bool perfect = false;       ///< Fixed-latency ideal memory.
    uint64_t perfectLatency = 2;

    int ports = 2;
    int lsqSize = 32;

    uint32_t l1Size = 8 * 1024;
    int l1Assoc = 2;
    uint32_t l1Line = 32;
    uint64_t l1Latency = 2;

    uint32_t l2Size = 256 * 1024;
    int l2Assoc = 4;
    uint32_t l2Line = 32;
    uint64_t l2Latency = 8;

    uint64_t dramLatency = 72;
    uint64_t dramWordGap = 4;

    int tlbEntries = 64;
    uint32_t pageSize = 4096;
    uint64_t tlbMissPenalty = 30;

    /** Ideal memory: every access completes in perfectLatency cycles
     *  with unlimited bandwidth. */
    static MemConfig perfectMemory();
    /** The paper's realistic two-level hierarchy with @p ports ports. */
    static MemConfig realistic(int ports = 2);
};

/**
 * Timing model for memory accesses.  Functional data movement happens
 * in MemoryImage at node-fire time; this class answers "when".
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig& cfg);

    struct Timing
    {
        uint64_t start = 0;       ///< When the access left the LSQ port.
        uint64_t complete = 0;    ///< When the data is available.
    };

    /**
     * Issue an access at time @p now.  Accounts for LSQ occupancy,
     * port contention, TLB and the cache hierarchy.
     */
    Timing request(uint32_t addr, bool isWrite, int size, uint64_t now);

    void reset();

    /** Dump counters into @p stats under the "sim.mem." prefix. */
    void reportStats(StatSet& stats) const;

    /** Record LSQ-occupancy counter samples into @p tracer. */
    void setTracer(TraceRecorder* tracer) { tracer_ = tracer; }

    /** In-flight LSQ entries right now (deadlock diagnostics). */
    uint64_t lsqOccupancy() const { return lsq_.occupancy(); }

    const MemConfig& config() const { return cfg_; }

  private:
    uint64_t hierarchyLatency(uint32_t addr, bool isWrite);

    MemConfig cfg_;
    Lsq lsq_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Tlb> tlb_;
    TraceRecorder* tracer_ = nullptr;
    uint64_t accesses_ = 0;
    uint64_t dramAccesses_ = 0;
    /** Access-latency histogram, one counter per histBucket() bucket;
     *  labels are rendered only in reportStats(). */
    std::array<uint64_t, kHistBuckets> latencyHist_{};
};

} // namespace cash

#endif // CASH_SIM_MEMORY_SYSTEM_H
