/**
 * @file
 * Super-operator region compiler for the macro-firing simulation
 * engine (docs/SIMULATOR.md, "Macro-firing engine").
 *
 * A *region* is the set of pure operators (Arith / Mux / Combine /
 * Eta) plus order-robust mu-merges of one Pegasus graph, compiled
 * into a flat op-tape evaluated *incrementally*: every operand stream
 * is a ring buffer, and each boundary delivery triggers a worklist
 * cascade that fires every interior operator as often as its streams
 * allow, computing result values and completion times without any
 * global event dispatch.  Everything stateful whose outcome depends
 * on within-cycle arrival order — token generators, memory
 * operations, calls, returns, loose merges — stays event-driven.
 *
 * Chain fusion: an AND-firing operator whose *every* consumer is a
 * single interior non-merge operator is invisible to the rest of the
 * system — it owns no ring and no external edge — so its value and
 * completion time pass through a register slot of its consumer's
 * *evaluation cone* instead.  A cone is the in-tree of fused ops
 * feeding one sink; the worklist visits sinks only, and one sink
 * firing evaluates the whole expression tree in registers.  Deferring
 * a fused op to its sink's firing is exact: it has no other
 * observers, and its max-plus completion time is the same whenever it
 * is computed.  Structural cycles of single-consumer pure ops (which
 * can never fire) are broken back to rings so every cone has a sink.
 *
 * Exactness argument, pure operators: they are AND-firing, so the
 * k-th firing of an interior node happens at the *maximum* of its
 * operands' k-th arrival times, plus the operator latency — times
 * compose max-plus along interior paths, and per-stream FIFO order is
 * all that matters (AND-firing is insensitive to arrival order
 * *across* streams).  Each stream's times are monotone by induction
 * (boundary streams inherit the event engine's per-port delivery
 * clock; max of monotone streams is monotone), so ring position k
 * *is* the k-th firing, exactly as the event engine would discover it
 * one delivery at a time.  Every cascade firing consumes at least one
 * item produced by the triggering delivery, so emission times never
 * precede the current cycle.
 *
 * Exactness argument, merges: a mu-merge is absorbable when its mode
 * machine is stream-deterministic — a *single* forward input (the
 * forward scan picks the first pending stream, so multiple forward
 * streams would race on arrival order) and strict wait-for-all back
 * edges (one item per back input per iteration makes the back round
 * insensitive to arrival order).  The event engine fires such a merge
 * at the dispatch time of whichever delivery completed its enabling:
 * by induction that is max(consumed item times, previous firing's
 * time) — mode transitions gate later firings exactly like an extra
 * operand whose time is the previous firing.  The replay tracks that
 * one timestamp per merge and reproduces every firing, including
 * EOS-discard and all-EOS drain rounds, decider consultations, and
 * one-shot initial values (rerouted into a private input stream).
 *
 * A pure cycle never fires (no item can complete its operand set) —
 * but a cycle *through a merge* is a loop, and the cascade replays
 * entire loop executions from one boundary delivery, so the simulator
 * re-checks its event budget inside the cascade to keep livelocked
 * programs failing with the same EventLimit outcome.
 */
#ifndef CASH_SIM_REGION_COMPILER_H
#define CASH_SIM_REGION_COMPILER_H

#include <cstdint>
#include <vector>

#include "pegasus/node.h"

namespace cash {

/**
 * The simulator-independent view of one graph the region compiler
 * consumes: per dense node, its kind/op/latency and input edges
 * (with constant-folded inputs resolved, mirroring the simulator's
 * input descriptors).
 */
/** Role of one merge operand in the mode machine. */
enum : int8_t
{
    kRegRoleFwd = 0,     ///< Forward (initial-value) input.
    kRegRoleBack = 1,    ///< Back-edge input.
    kRegRoleDecider = 2, ///< Loop-continuation decider.
};

/** Widest mux the evaluator absorbs (operands gather into a stack
 *  buffer); wider muxes stay event-driven. */
constexpr int32_t kMaxRegionMuxArgs = 64;

struct RegionGraphView
{
    struct In
    {
        bool isConst = false;
        uint32_t constValue = 0;
        /** Producer (dense id + output port); valid when !isConst. */
        int32_t node = -1;
        int32_t port = 0;
        /** Merge operand role (kRegRole*); 0 for non-merge inputs. */
        int8_t role = kRegRoleFwd;
        /** Fed only by a one-shot initial value at activation start
         *  (the static producer never fires): must get a private
         *  input stream, never shared with other consumers. */
        bool initOnly = false;
    };
    struct NodeV
    {
        NodeKind kind = NodeKind::Const;
        Op op = Op::Add;
        bool unary = false;
        uint8_t latency = 0;
        /** Merges: every back producer is a same-hyperblock eta, so
         *  back rounds consume one item per input (order-robust). */
        bool strictBack = false;
        std::vector<In> in;
    };
    std::vector<NodeV> nodes;
    /**
     * Optional fusion-group id per node (tiled fabric: the node's
     * tile).  When non-empty, a region never spans two groups — the
     * compiler keeps only the candidates of the best-populated group
     * (ties: lowest id), so a super-operator always lives on one tile
     * and cross-tile edges keep their per-hop cost (docs/FABRIC.md).
     */
    std::vector<int32_t> group;
};

/** Operand of a tape op: a 2-bit tag plus an index, packed in an
 *  int32. */
enum class RegArg : int32_t
{
    Stream = 0, ///< Ring buffer (region input or interior result stream).
    Const = 1,  ///< Constant (index into CompiledRegion::constPool).
    Reg = 2,    ///< Cone-local register (fused single-consumer chain).
};
inline int32_t
regArgEncode(RegArg tag, int32_t idx)
{
    return (idx << 2) | static_cast<int32_t>(tag);
}
inline RegArg
regArgTag(int32_t enc)
{
    return static_cast<RegArg>(enc & 3);
}
inline int32_t
regArgIndex(int32_t enc)
{
    return enc >> 2;
}

/** One entry of a region's op-tape (dense-node order). */
struct RegionOp
{
    int32_t dense = -1;  ///< Original node (emissions, diagnostics).
    NodeKind kind = NodeKind::Arith;
    Op op = Op::Add;
    bool unary = false;
    uint8_t latency = 0;
    /** Some consumer is outside the region: results leave through the
     *  ordinary output()/deliver() path. */
    uint8_t hasExternal = 0;
    int32_t argOff = 0;  ///< Operands in CompiledRegion::args.
    int32_t argCnt = 0;
    /** Interior result stream fed by this op, or -1 when no interior
     *  consumer exists. */
    int32_t outRing = -1;
    /** Operands read from interior streams: deliveries the event
     *  engine would have dispatched per firing (equivalent-event
     *  accounting).  Merges consume a variable operand subset per
     *  firing, so theirs stays 0 and the evaluator counts reads. */
    int32_t eqInterior = 0;
    /** Merges: dense index into the per-activation mode/time state,
     *  or -1 for AND-firing operators. */
    int32_t mSlot = -1;
    /** Cone sinks: interior deliveries one firing of the whole cone
     *  stands for (sum of eqInterior over the cone, including the
     *  sink itself); 0 elsewhere. */
    int32_t coneEq = 0;
    /** Merges: operand position of the single forward input and of
     *  the decider (constant or stream; -1 when absent), precomputed
     *  so the evaluator never rescans roles. */
    int16_t fwdK = -1;
    int16_t deciderK = -1;
};

/** One compiled super-operator (at most one per graph). */
struct CompiledRegion
{
    /** One boundary input stream: an external producer port with at
     *  least one interior consumer.  The simulator reroutes all its
     *  interior consumer edges to a single collapsed delivery. */
    struct Input
    {
        int32_t node = -1;  ///< External producer (dense id).
        int32_t port = 0;   ///< Its output port.
    };
    /** Input streams occupy rings [0, inputs.size()); interior result
     *  streams follow. */
    std::vector<Input> inputs;
    int32_t numRings = 0;
    std::vector<RegionOp> tape;
    std::vector<int32_t> args;       ///< Encoded operands (RegArg).
    /** Parallel to args: merge operand roles (kRegRole*); 0 for
     *  AND-firing operators' operands. */
    std::vector<int8_t> argRole;
    std::vector<uint32_t> constPool;
    /** Absorbed merge count: sizes per-activation mode/time state. */
    int32_t numMerges = 0;
    /** Per input stream: original interior consumer edge count; a
     *  collapsed delivery stands for that many event-engine ones. */
    std::vector<int32_t> inputEdges;
    /** Ring -> consuming cone sinks (cascade seeding), CSR layout.
     *  A ring read by a fused chain member wakes the chain's sink. */
    std::vector<int32_t> seedOff;
    std::vector<int32_t> seedOp;
    /** Tape op -> its evaluation cone (CSR over tape indices): the
     *  fused single-consumer chain members feeding a sink, in
     *  operands-before-consumers order, with the sink itself last.
     *  Fused members and absorbed merges get an empty range — the
     *  worklist only ever visits sinks.  A member's cone-local
     *  position is its register slot (RegArg::Reg operands). */
    std::vector<int32_t> coneOff;
    std::vector<int32_t> coneOp;
    /** Widest cone (sizes the evaluator's register scratch). */
    int32_t coneMax = 0;
    /** Sink -> gating stream operands (CSR over tape indices): a
     *  (ring, global arg index) pair per stream operand anywhere in
     *  the sink's cone, so the evaluator's firing-count scan is one
     *  flat loop of `tail - consumed` with no member or tag
     *  decoding.  Empty for merges (the mode machine gates itself). */
    std::vector<int32_t> gateOff;
    std::vector<int32_t> gateRing;
    std::vector<int32_t> gateArg;
    /** Cascade scan order (tape indices): merges first, then cone
     *  sinks topologically over forward sink-to-sink ring edges, so
     *  one ascending scan fires an entire acyclic wave — producers
     *  always before consumers, and only back edges (which must pass
     *  through merges) carry work into another scan.  scanPos is the
     *  inverse map (tape index -> scan position; -1 for fused
     *  members, which are never seeded). */
    std::vector<int32_t> scanOrder;
    std::vector<int32_t> scanPos;
    /** Ring -> consuming operand positions (ring garbage collection):
     *  entries are global arg indices, whose consumption counters
     *  bound the reclaimable prefix. */
    std::vector<int32_t> gcOff;
    std::vector<int32_t> gcArg;
    /** args.size(): sizes the per-activation consumption counters. */
    int32_t totalArgs = 0;
};

/** Result of compiling one graph. */
struct RegionPlan
{
    std::vector<CompiledRegion> regions;
    /** Per dense node: owning region id, or -1 (event-driven). */
    std::vector<int32_t> regionOf;
};

/**
 * Compile @p view's pure interior into a super-operator.  Graphs with
 * fewer than @p minOps candidates stay fully event-driven (a one-op
 * region only adds dispatch overhead).  Deterministic: the result
 * depends only on the view, never on iteration order of runtime
 * containers.
 */
RegionPlan compileRegions(const RegionGraphView& view, int minOps = 2);

} // namespace cash

#endif // CASH_SIM_REGION_COMPILER_H
