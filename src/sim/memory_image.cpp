#include "sim/memory_image.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace cash {

MemoryImage::MemoryImage(const MemoryLayout& layout) : layout_(layout)
{
    reset();
}

void
MemoryImage::reset()
{
    mem_.assign(MemoryLayout::kMemorySize, 0);
    const std::vector<uint8_t>& img = layout_.globalImage();
    std::copy(img.begin(), img.end(),
              mem_.begin() + MemoryLayout::kGlobalBase);
}

uint32_t
MemoryImage::load(uint32_t addr, int size, bool signExtend) const
{
    if (addr == 0 || addr + size > mem_.size())
        fatal("simulated load from invalid address " +
              std::to_string(addr));
    uint32_t v = 0;
    for (int i = 0; i < size; i++)
        v |= static_cast<uint32_t>(mem_[addr + i]) << (8 * i);
    if (size == 1 && signExtend)
        v = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int8_t>(v & 0xff)));
    return v;
}

void
MemoryImage::store(uint32_t addr, uint32_t value, int size)
{
    if (addr == 0 || addr + size > mem_.size())
        fatal("simulated store to invalid address " +
              std::to_string(addr));
    for (int i = 0; i < size; i++)
        mem_[addr + i] = static_cast<uint8_t>((value >> (8 * i)) & 0xff);
}

} // namespace cash
