/**
 * @file
 * A simple fully-associative LRU data TLB (paper §7.3: 64 pages,
 * 30-cycle miss cost).
 */
#ifndef CASH_SIM_TLB_H
#define CASH_SIM_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

namespace cash {

class Tlb
{
  public:
    Tlb(int entries, uint32_t pageSize, uint64_t missPenalty);

    /** Returns the extra cycles charged for this translation. */
    uint64_t access(uint32_t addr);

    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    int entries_;
    uint32_t pageShift_;
    uint64_t missPenalty_;
    std::list<uint32_t> lru_;  ///< Front = most recent.
    std::unordered_map<uint32_t, std::list<uint32_t>::iterator> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace cash

#endif // CASH_SIM_TLB_H
