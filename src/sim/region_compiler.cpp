#include "sim/region_compiler.h"

#include <algorithm>
#include <map>
#include <utility>

#include "support/diagnostics.h"

namespace cash {

namespace {

/** Operators the streaming evaluator can absorb: pure, AND-firing,
 *  and therefore insensitive to arrival order across streams. */
bool
pureKind(NodeKind k)
{
    return k == NodeKind::Arith || k == NodeKind::Mux ||
           k == NodeKind::Combine || k == NodeKind::Eta;
}

/** Mu-merges whose mode machine is stream-deterministic (see the
 *  header): exactly one forward input, strict wait-for-all back
 *  edges, and at least one dynamic input so the merge actually
 *  receives a delivery under either engine. */
bool
mergeAbsorbable(const RegionGraphView::NodeV& nv)
{
    if (nv.kind != NodeKind::Merge)
        return false;
    int fwd = 0, back = 0;
    bool dynamic = false;
    for (const RegionGraphView::In& in : nv.in) {
        if (in.role == kRegRoleFwd)
            fwd++;
        else if (in.role == kRegRoleBack)
            back++;
        if (!in.isConst)
            dynamic = true;
    }
    if (fwd != 1 || !dynamic)
        return false;
    return back == 0 || nv.strictBack;
}

} // namespace

RegionPlan
compileRegions(const RegionGraphView& view, int minOps)
{
    const size_t n = view.nodes.size();
    RegionPlan plan;
    plan.regionOf.assign(n, -1);

    // Candidates: pure operators and order-robust merges with at
    // least one dynamic input.  An all-constant operator never
    // receives a delivery and so never fires under either engine;
    // seeding it from a worklist would invent firings the event
    // engine does not perform.
    std::vector<uint8_t> cand(n, 0);
    int numCand = 0;
    for (size_t i = 0; i < n; i++) {
        const RegionGraphView::NodeV& nv = view.nodes[i];
        if (!pureKind(nv.kind) && !mergeAbsorbable(nv))
            continue;
        if (nv.kind == NodeKind::Mux &&
            nv.in.size() > static_cast<size_t>(kMaxRegionMuxArgs))
            continue;  // gather buffer is fixed-size
        for (const RegionGraphView::In& in : nv.in)
            if (!in.isConst) {
                cand[i] = 1;
                numCand++;
                break;
            }
    }
    // Tiled fabric: a region must not fuse across tile boundaries.
    // Keep only the candidates of the best-populated group (ties:
    // lowest group id); the rest stay event-driven.
    if (!view.group.empty()) {
        CASH_ASSERT(view.group.size() == n, "group size mismatch");
        std::map<int32_t, int> perGroup;
        for (size_t i = 0; i < n; i++)
            if (cand[i])
                perGroup[view.group[i]]++;
        int32_t bestGroup = 0;
        int bestCount = -1;
        for (const auto& [grp, count] : perGroup)
            if (count > bestCount) {
                bestGroup = grp;
                bestCount = count;
            }
        for (size_t i = 0; i < n; i++)
            if (cand[i] && view.group[i] != bestGroup) {
                cand[i] = 0;
                numCand--;
            }
    }

    if (numCand < minOps)
        return plan;

    CompiledRegion R;
    R.tape.reserve(static_cast<size_t>(numCand));
    std::vector<int32_t> tapeOf(n, -1);
    for (size_t i = 0; i < n; i++) {
        if (!cand[i])
            continue;
        tapeOf[i] = static_cast<int32_t>(R.tape.size());
        plan.regionOf[i] = 0;
        RegionOp op;
        op.dense = static_cast<int32_t>(i);
        op.kind = view.nodes[i].kind;
        op.op = view.nodes[i].op;
        op.unary = view.nodes[i].unary;
        op.latency = view.nodes[i].latency;
        if (op.kind == NodeKind::Merge)
            op.mSlot = R.numMerges++;
        R.tape.push_back(op);
    }

    // Consumer summary per candidate: interior consumers get a result
    // ring; external consumers keep the ordinary delivery path.  The
    // interior consumer lists (deduplicated) drive DAG fusion below.
    std::vector<uint8_t> hasInterior(n, 0), hasExternal(n, 0);
    std::vector<std::vector<int32_t>> consumers(n);
    for (size_t j = 0; j < n; j++)
        for (const RegionGraphView::In& in : view.nodes[j].in) {
            if (in.isConst || in.node < 0 || !cand[in.node])
                continue;
            CASH_ASSERT(in.port == 0,
                        "pure operator with multiple output ports");
            (cand[j] ? hasInterior : hasExternal)[in.node] = 1;
            if (cand[j]) {
                std::vector<int32_t>& cs = consumers[in.node];
                if (std::find(cs.begin(), cs.end(),
                              static_cast<int32_t>(j)) == cs.end())
                    cs.push_back(static_cast<int32_t>(j));
            }
        }

    // DAG fusion (see the header): a producer every one of whose
    // consumers is an interior non-merge op needs no ring when those
    // consumers all evaluate inside one sink's cone — its value rides
    // a register slot of that cone.  Eta can't be fused as a producer
    // (its output is conditional) and a merge can't absorb a register
    // (its operand cadence is modal).
    std::vector<uint8_t> fused(n, 0);
    for (size_t i = 0; i < n; i++) {
        if (!cand[i] || hasExternal[i] || !hasInterior[i])
            continue;
        const NodeKind pk = view.nodes[i].kind;
        if (pk != NodeKind::Arith && pk != NodeKind::Mux &&
            pk != NodeKind::Combine)
            continue;
        bool ok = !consumers[i].empty();
        for (const int32_t c : consumers[i])
            if (c == static_cast<int32_t>(i) ||
                view.nodes[c].kind == NodeKind::Merge)
                ok = false;
        fused[i] = ok;
    }
    // A structural cycle of fused pure ops can never fire; break it
    // back to rings so every cone has a sink.  Restart after each cut
    // (cuts are rare — such graphs deadlock at runtime anyway).
    std::vector<int32_t> finish;  // fused nodes, consumers-first
    for (bool again = true; again;) {
        again = false;
        finish.clear();
        std::vector<int8_t> state(n, 0);  // 0 new, 1 on path, 2 done
        std::vector<std::pair<int32_t, size_t>> stk;
        for (size_t i = 0; i < n && !again; i++) {
            if (!fused[i] || state[i])
                continue;
            stk.assign(1, {static_cast<int32_t>(i), 0});
            state[i] = 1;
            while (!stk.empty() && !again) {
                const int32_t nd = stk.back().first;
                size_t& k = stk.back().second;
                bool descended = false;
                while (k < consumers[nd].size()) {
                    const int32_t c = consumers[nd][k++];
                    if (!fused[c])
                        continue;
                    if (state[c] == 1) {  // cycle: cut everything on
                                          // the path (conservative)
                        for (const auto& f : stk)
                            fused[f.first] = 0;
                        again = true;
                        break;
                    }
                    if (state[c] == 0) {
                        state[c] = 1;
                        stk.emplace_back(c, 0);
                        descended = true;
                        break;
                    }
                }
                if (again || descended)
                    continue;
                state[nd] = 2;
                finish.push_back(nd);
                stk.pop_back();
            }
        }
    }
    // The sink of a fused op: the one cone all its consumers evaluate
    // in.  Consumers-first order makes this a single pass — and when
    // the consumers' sinks disagree, the producer keeps its ring and
    // becomes a sink itself, which later producers observe directly.
    std::vector<int32_t> sinkOf(n, -1);
    for (size_t i = 0; i < n; i++)
        if (cand[i])
            sinkOf[i] = static_cast<int32_t>(i);
    for (const int32_t nd : finish) {
        int32_t s = -1;
        bool ok = true;
        for (const int32_t c : consumers[nd]) {
            const int32_t cs = fused[c] ? sinkOf[c] : c;
            if (s < 0)
                s = cs;
            else if (s != cs)
                ok = false;
        }
        if (ok && s >= 0)
            sinkOf[nd] = s;
        else
            fused[nd] = 0;
    }

    // Input streams: one per external producer port with interior
    // consumers, interned in first-use (tape, operand) order.
    // Init-only inputs (one-shot merge initial values) get a private
    // stream each: the activation injects exactly one item per merge
    // input, so sharing a stream between two consumers of the same
    // static producer would double-count the injection.
    std::map<std::pair<int32_t, int32_t>, int32_t> inStream;
    std::map<std::pair<int32_t, int32_t>, int32_t> privStream;
    for (size_t t = 0; t < R.tape.size(); t++) {
        const RegionOp& op = R.tape[t];
        const std::vector<RegionGraphView::In>& ins =
            view.nodes[op.dense].in;
        for (size_t k = 0; k < ins.size(); k++) {
            const RegionGraphView::In& in = ins[k];
            if (in.isConst || cand[in.node])
                continue;
            if (in.initOnly) {
                privStream[{static_cast<int32_t>(t),
                            static_cast<int32_t>(k)}] =
                    static_cast<int32_t>(R.inputs.size());
                R.inputs.push_back({in.node, in.port});
                continue;
            }
            auto key = std::make_pair(in.node, in.port);
            if (inStream
                    .emplace(key,
                             static_cast<int32_t>(R.inputs.size()))
                    .second)
                R.inputs.push_back({in.node, in.port});
        }
    }
    const int32_t nIn = static_cast<int32_t>(R.inputs.size());

    // Interior result rings follow the input streams, in tape order.
    // Fused ops own no ring: their single consumer reads a register.
    R.numRings = nIn;
    for (RegionOp& op : R.tape) {
        if (hasInterior[op.dense] && !fused[op.dense])
            op.outRing = R.numRings++;
        op.hasExternal = hasExternal[op.dense];
    }

    // Evaluation cones: per sink, its fused in-tree in operands-
    // before-consumers order (iterative postorder — chains can be
    // deep).  A member's cone-local position is its register slot.
    std::vector<int32_t> slotOf(n, -1);
    R.coneOff.resize(R.tape.size() + 1);
    std::vector<std::pair<int32_t, size_t>> dfs;
    for (size_t t = 0; t < R.tape.size(); t++) {
        R.coneOff[t] = static_cast<int32_t>(R.coneOp.size());
        const RegionOp& op = R.tape[t];
        if (fused[op.dense])
            continue;  // member: evaluated inside its sink's cone
        const int32_t base = static_cast<int32_t>(R.coneOp.size());
        dfs.clear();
        dfs.emplace_back(op.dense, 0);
        while (!dfs.empty()) {
            const int32_t nd = dfs.back().first;
            const std::vector<RegionGraphView::In>& ins =
                view.nodes[nd].in;
            size_t& k = dfs.back().second;
            bool descended = false;
            while (k < ins.size()) {
                const RegionGraphView::In& in = ins[k++];
                if (!in.isConst && in.node >= 0 && fused[in.node] &&
                    slotOf[in.node] < 0) {
                    dfs.emplace_back(in.node, 0);
                    descended = true;
                    break;
                }
            }
            if (descended)
                continue;
            if (nd != op.dense) {
                slotOf[nd] =
                    static_cast<int32_t>(R.coneOp.size()) - base;
                R.coneOp.push_back(tapeOf[nd]);
            }
            dfs.pop_back();
        }
        R.coneOp.push_back(static_cast<int32_t>(t));  // sink last
        const int32_t csize =
            static_cast<int32_t>(R.coneOp.size()) - base;
        if (csize > R.coneMax)
            R.coneMax = csize;
    }
    R.coneOff[R.tape.size()] = static_cast<int32_t>(R.coneOp.size());

    // Operand encodings, in original input order (operand k of a tape
    // op is input k of its node — deadlock diagnostics rely on this).
    std::map<uint32_t, int32_t> constIdx;
    for (size_t t = 0; t < R.tape.size(); t++) {
        RegionOp& op = R.tape[t];
        const RegionGraphView::NodeV& nv = view.nodes[op.dense];
        op.argOff = static_cast<int32_t>(R.args.size());
        op.argCnt = static_cast<int32_t>(nv.in.size());
        for (size_t k = 0; k < nv.in.size(); k++) {
            const RegionGraphView::In& in = nv.in[k];
            int32_t enc;
            if (in.isConst) {
                auto [it, fresh] = constIdx.emplace(
                    in.constValue,
                    static_cast<int32_t>(R.constPool.size()));
                if (fresh)
                    R.constPool.push_back(in.constValue);
                enc = regArgEncode(RegArg::Const, it->second);
            } else if (cand[in.node] && fused[in.node]) {
                enc = regArgEncode(RegArg::Reg, slotOf[in.node]);
                CASH_ASSERT(slotOf[in.node] >= 0,
                            "fused producer without a register slot");
                if (op.mSlot < 0)
                    op.eqInterior++;
            } else if (cand[in.node]) {
                const int32_t ring = R.tape[tapeOf[in.node]].outRing;
                CASH_ASSERT(ring >= 0, "interior edge without ring");
                enc = regArgEncode(RegArg::Stream, ring);
                if (op.mSlot < 0)
                    op.eqInterior++;
            } else if (in.initOnly) {
                enc = regArgEncode(
                    RegArg::Stream,
                    privStream.at({static_cast<int32_t>(t),
                                   static_cast<int32_t>(k)}));
            } else {
                enc = regArgEncode(
                    RegArg::Stream,
                    inStream.at(std::make_pair(in.node, in.port)));
            }
            R.args.push_back(enc);
            R.argRole.push_back(in.role);
            if (op.mSlot >= 0) {
                if (in.role == kRegRoleDecider)
                    op.deciderK = static_cast<int16_t>(k);
                else if (in.role == kRegRoleFwd)
                    op.fwdK = static_cast<int16_t>(k);
            }
        }
    }
    R.totalArgs = static_cast<int32_t>(R.args.size());

    // One sink firing stands for every interior delivery its cone's
    // members would have consumed under the event engine.
    for (size_t t = 0; t < R.tape.size(); t++) {
        RegionOp& op = R.tape[t];
        if (op.mSlot >= 0 || fused[op.dense])
            continue;
        int32_t eq = 0;
        for (int32_t ci = R.coneOff[t]; ci < R.coneOff[t + 1]; ci++)
            eq += R.tape[R.coneOp[ci]].eqInterior;
        op.coneEq = eq;
    }

    // Gate lists: per cone sink, the flat (ring, arg) pairs its
    // firing-count scan walks — every stream operand anywhere in the
    // cone, so the evaluator never re-decodes members or tags just to
    // learn a visit is premature.
    R.gateOff.resize(R.tape.size() + 1);
    for (size_t t = 0; t < R.tape.size(); t++) {
        R.gateOff[t] = static_cast<int32_t>(R.gateRing.size());
        const RegionOp& op = R.tape[t];
        if (op.mSlot >= 0 || fused[op.dense])
            continue;
        for (int32_t ci = R.coneOff[t]; ci < R.coneOff[t + 1];
             ci++) {
            const RegionOp& m = R.tape[R.coneOp[ci]];
            for (int32_t k = 0; k < m.argCnt; k++) {
                const int32_t enc = R.args[m.argOff + k];
                if (regArgTag(enc) != RegArg::Stream)
                    continue;
                R.gateRing.push_back(regArgIndex(enc));
                R.gateArg.push_back(m.argOff + k);
            }
        }
    }
    R.gateOff[R.tape.size()] =
        static_cast<int32_t>(R.gateRing.size());

    // Ring consumer lists (CSR): cone sinks to seed in the cascade (a
    // ring read by a fused member wakes the member's sink), consuming
    // arg positions for garbage collection.
    std::vector<std::vector<int32_t>> ringArgs(
        static_cast<size_t>(R.numRings));
    std::vector<std::vector<int32_t>> ringOps(
        static_cast<size_t>(R.numRings));
    for (size_t t = 0; t < R.tape.size(); t++) {
        const RegionOp& op = R.tape[t];
        const int32_t sinkT = tapeOf[sinkOf[op.dense]];
        for (int32_t k = 0; k < op.argCnt; k++) {
            const int32_t enc = R.args[op.argOff + k];
            if (regArgTag(enc) != RegArg::Stream)
                continue;
            const int32_t ring = regArgIndex(enc);
            ringArgs[ring].push_back(op.argOff + k);
            std::vector<int32_t>& ops = ringOps[ring];
            if (std::find(ops.begin(), ops.end(), sinkT) ==
                ops.end())
                ops.push_back(sinkT);
        }
    }
    R.seedOff.resize(static_cast<size_t>(R.numRings) + 1);
    R.gcOff.resize(static_cast<size_t>(R.numRings) + 1);
    for (int32_t r = 0; r < R.numRings; r++) {
        R.seedOff[r] = static_cast<int32_t>(R.seedOp.size());
        R.seedOp.insert(R.seedOp.end(), ringOps[r].begin(),
                        ringOps[r].end());
        R.gcOff[r] = static_cast<int32_t>(R.gcArg.size());
        R.gcArg.insert(R.gcArg.end(), ringArgs[r].begin(),
                       ringArgs[r].end());
    }
    R.seedOff[R.numRings] = static_cast<int32_t>(R.seedOp.size());
    R.gcOff[R.numRings] = static_cast<int32_t>(R.gcArg.size());

    R.inputEdges.resize(static_cast<size_t>(nIn));
    for (int32_t r = 0; r < nIn; r++)
        R.inputEdges[r] = static_cast<int32_t>(ringArgs[r].size());

    // Cascade scan order (see the header): merges first, then cone
    // sinks in topological order of forward sink-to-sink ring edges
    // (iterative DFS postorder, reversed).  Cycles can only pass
    // through merges or through pure sink loops that never fire, so
    // ignoring DFS back edges is safe.
    R.scanPos.assign(R.tape.size(), -1);
    for (size_t t = 0; t < R.tape.size(); t++)
        if (R.tape[t].mSlot >= 0)
            R.scanOrder.push_back(static_cast<int32_t>(t));
    {
        std::vector<int8_t> st(R.tape.size(), 0);
        std::vector<int32_t> post;
        std::vector<std::pair<int32_t, int32_t>> stk;
        for (size_t t0 = 0; t0 < R.tape.size(); t0++) {
            const RegionOp& op0 = R.tape[t0];
            if (op0.mSlot >= 0 || fused[op0.dense] || st[t0])
                continue;
            stk.assign(1, {static_cast<int32_t>(t0), -1});
            st[t0] = 1;
            while (!stk.empty()) {
                const int32_t t = stk.back().first;
                int32_t& s = stk.back().second;
                const int32_t ring = R.tape[t].outRing;
                if (s < 0)
                    s = ring >= 0 ? R.seedOff[ring] : INT32_MAX;
                bool descended = false;
                while (ring >= 0 && s < R.seedOff[ring + 1]) {
                    const int32_t c = R.seedOp[s++];
                    if (R.tape[c].mSlot >= 0 || st[c])
                        continue;
                    st[c] = 1;
                    stk.emplace_back(c, -1);
                    descended = true;
                    break;
                }
                if (descended)
                    continue;
                st[t] = 2;
                post.push_back(t);
                stk.pop_back();
            }
        }
        R.scanOrder.insert(R.scanOrder.end(), post.rbegin(),
                           post.rend());
    }
    for (size_t p = 0; p < R.scanOrder.size(); p++)
        R.scanPos[R.scanOrder[p]] = static_cast<int32_t>(p);

    plan.regions.push_back(std::move(R));
    return plan;
}

} // namespace cash
