/**
 * @file
 * A set-associative write-back write-allocate LRU cache model used for
 * the L1 and L2 levels (paper §7.3: L1 = 8 KB / 2-cycle hit,
 * L2 = 256 KB / 8-cycle hit).  Latency-only: state tracks tags and
 * dirty bits; data lives in the shared MemoryImage.
 */
#ifndef CASH_SIM_CACHE_H
#define CASH_SIM_CACHE_H

#include <cstdint>
#include <vector>

namespace cash {

class Cache
{
  public:
    Cache(const char* name, uint32_t sizeBytes, int assoc,
          uint32_t lineBytes, uint64_t hitLatency);

    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;  ///< A dirty line was evicted.
        uint64_t latency = 0;    ///< Hit latency at this level.
    };

    /**
     * Look up @p addr; on a miss the line is allocated (the caller
     * charges the next level's latency).
     */
    AccessResult access(uint32_t addr, bool isWrite);

    void reset();

    const char* name() const { return name_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }
    uint32_t lineBytes() const { return lineBytes_; }
    uint64_t hitLatency() const { return hitLatency_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint32_t tag = 0;
        uint64_t lastUse = 0;
    };

    const char* name_;
    int assoc_;
    uint32_t lineBytes_;
    uint32_t numSets_;
    uint64_t hitLatency_;
    std::vector<Line> lines_;  ///< numSets_ × assoc_.
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace cash

#endif // CASH_SIM_CACHE_H
