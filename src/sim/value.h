/**
 * @file
 * Scalar value semantics shared by the dataflow simulator and the
 * compiler's constant folder: 32-bit wrapping arithmetic with
 * speculation-safe division (divide-by-zero yields 0 instead of
 * trapping, since predicated-false operations still execute
 * speculatively in spatial hardware).
 */
#ifndef CASH_SIM_VALUE_H
#define CASH_SIM_VALUE_H

#include <cstdint>

#include "cfg/cfg.h"

namespace cash {

/** Evaluate a binary opcode over 32-bit values. */
uint32_t evalBinary(Op op, uint32_t a, uint32_t b);

/** Evaluate a unary opcode. */
uint32_t evalUnary(Op op, uint32_t a);

} // namespace cash

#endif // CASH_SIM_VALUE_H
