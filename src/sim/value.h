/**
 * @file
 * Scalar value semantics shared by the dataflow simulator and the
 * compiler's constant folder: 32-bit wrapping arithmetic with
 * speculation-safe division (divide-by-zero yields 0 instead of
 * trapping, since predicated-false operations still execute
 * speculatively in spatial hardware).
 *
 * Defined inline: the simulator evaluates one opcode per Arith firing,
 * so these sit on the hottest path in the system.
 */
#ifndef CASH_SIM_VALUE_H
#define CASH_SIM_VALUE_H

#include <cstdint>

#include "cfg/cfg.h"
#include "support/diagnostics.h"

namespace cash {

/** Evaluate a binary opcode over 32-bit values. */
inline uint32_t
evalBinary(Op op, uint32_t a, uint32_t b)
{
    int32_t as = static_cast<int32_t>(a);
    int32_t bs = static_cast<int32_t>(b);
    switch (op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Mul: return a * b;
      case Op::DivS:
        if (b == 0)
            return 0;  // speculation-safe
        if (a == 0x80000000u && b == 0xffffffffu)
            return a;
        return static_cast<uint32_t>(as / bs);
      case Op::DivU:
        return b == 0 ? 0 : a / b;
      case Op::RemS:
        if (b == 0)
            return 0;
        if (a == 0x80000000u && b == 0xffffffffu)
            return 0;
        return static_cast<uint32_t>(as % bs);
      case Op::RemU:
        return b == 0 ? 0 : a % b;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return a << (b & 31);
      case Op::ShrS: return static_cast<uint32_t>(as >> (b & 31));
      case Op::ShrU: return a >> (b & 31);
      case Op::LtS: return as < bs;
      case Op::LtU: return a < b;
      case Op::LeS: return as <= bs;
      case Op::LeU: return a <= b;
      case Op::Eq: return a == b;
      case Op::Ne: return a != b;
      default:
        panic("evalBinary on unary opcode");
    }
}

/**
 * Evaluate a mux over interleaved (predicate, data) operand pairs:
 * the last true predicate's data wins, 0 when none is true.  Array
 * form of the simulator's Mux firing rule, usable from straight-line
 * op-tapes (region_compiler.h) where operands are gathered up front.
 */
inline uint32_t
evalMuxPairs(const uint32_t* vals, int n)
{
    uint32_t out = 0;
    for (int i = 0; i + 1 < n; i += 2)
        if (vals[i])
            out = vals[i + 1];
    return out;
}

/** Evaluate a unary opcode. */
inline uint32_t
evalUnary(Op op, uint32_t a)
{
    switch (op) {
      case Op::Neg: return -a;
      case Op::NotBool: return a == 0;
      case Op::BitNot: return ~a;
      case Op::SextB:
        return static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int8_t>(a & 0xff)));
      case Op::ZextB: return a & 0xff;
      case Op::Copy: return a;
      default:
        panic("evalUnary on binary opcode");
    }
}

} // namespace cash

#endif // CASH_SIM_VALUE_H
