#include "sim/dataflow_sim.h"

#include <algorithm>
#include <functional>
#include <set>

#include "sim/latency.h"
#include "sim/value.h"
#include "support/diagnostics.h"

namespace cash {

const char*
simOutcomeName(SimOutcome o)
{
    switch (o) {
      case SimOutcome::Ok: return "ok";
      case SimOutcome::Deadlock: return "deadlock";
      case SimOutcome::EventLimit: return "event_limit";
      case SimOutcome::StackOverflow: return "stack_overflow";
      case SimOutcome::MissingGraph: return "missing_graph";
    }
    return "?";
}

std::string
StuckNode::str() const
{
    std::string s = "act" + std::to_string(activation) + " " +
                    function + ": " + node + " waiting on";
    for (const std::string& w : waitingOn)
        s += " " + w;
    return s;
}

std::string
DeadlockReport::str() const
{
    std::string s = "deadlock at cycle " + std::to_string(stallTime) +
                    " (lsq occupancy " + std::to_string(lsqOccupancy) +
                    "), " + std::to_string(stuck.size()) +
                    " starved node(s):";
    for (const StuckNode& n : stuck)
        s += "\n  " + n.str();
    return s;
}

DataflowSimulator::DataflowSimulator(
    const std::vector<const Graph*>& graphs, const MemoryLayout& layout,
    const MemConfig& cfg)
    : layout_(layout), image_(layout), memsys_(cfg)
{
    for (const Graph* g : graphs)
        buildIndex(g);
    linkCallees();
    fireCounts_.assign(static_cast<size_t>(NodeKind::TokenGen) + 1, 0);
}

void
DataflowSimulator::setTracer(TraceRecorder* tracer)
{
    tracer_ = tracer;
    memsys_.setTracer(tracer);
}

void
DataflowSimulator::buildIndex(const Graph* g)
{
    GraphIndex gi;
    gi.g = g;
    std::vector<Node*> nodes = g->liveNodes();
    std::map<const Node*, int> dense;  // index-time only; the hot path
                                       // uses the flat CSR arrays
    for (size_t i = 0; i < nodes.size(); i++)
        dense[nodes[i]] = static_cast<int>(i);

    // Statically-known producer values: Const nodes, and pure
    // arithmetic whose inputs are themselves static.  Firing is
    // delivery-triggered, so an operator with only constant inputs
    // would never fire and would starve its consumers forever — such
    // graphs reach the simulator when constant folding did not run
    // (custom pipelines, quarantined passes, raw builder output).
    // Folding them into the consumers' input descriptors makes the
    // engine independent of any optimizer invariant.
    std::map<const Node*, std::pair<bool, uint32_t>> staticMemo;
    std::set<const Node*> staticVisiting;  // cycle guard
    std::function<bool(const Node*, uint32_t&)> staticValue =
        [&](const Node* n, uint32_t& out) -> bool {
        auto it = staticMemo.find(n);
        if (it != staticMemo.end()) {
            out = it->second.second;
            return it->second.first;
        }
        bool known = false;
        uint32_t v = 0;
        if (n->kind == NodeKind::Const) {
            known = true;
            v = static_cast<uint32_t>(n->constValue);
        } else if (n->kind == NodeKind::Arith &&
                   staticVisiting.insert(n).second) {
            if ((n->op == Op::Copy || opIsUnary(n->op)) &&
                n->numInputs() == 1) {
                uint32_t x;
                if (n->input(0).valid() &&
                    staticValue(n->input(0).node, x)) {
                    known = true;
                    v = evalUnary(n->op, x);
                }
            } else if (n->numInputs() == 2) {
                uint32_t x, y;
                if (n->input(0).valid() && n->input(1).valid() &&
                    staticValue(n->input(0).node, x) &&
                    staticValue(n->input(1).node, y)) {
                    known = true;
                    v = evalBinary(n->op, x, y);
                }
            }
            staticVisiting.erase(n);
        }
        staticMemo[n] = {known, v};
        out = v;
        return known;
    };
    gi.nodes.resize(nodes.size());
    gi.hot.resize(nodes.size() + 1);  // +1: sentinel (input counts)
    for (size_t i = 0; i < nodes.size(); i++) {
        NodeIndex& ni = gi.nodes[i];
        NodeHot& h = gi.hot[i];
        ni.n = nodes[i];
        h.kind = static_cast<uint8_t>(nodes[i]->kind);
        h.latency = static_cast<uint8_t>(nodeLatency(nodes[i]));
        if (nodes[i]->kind == NodeKind::Arith) {
            h.op = static_cast<uint8_t>(nodes[i]->op);
            h.unary = nodes[i]->op == Op::Copy ||
                      opIsUnary(nodes[i]->op);
        }
        h.fifoBase = gi.numFifoSlots;
        h.portBase = gi.numPortSlots;
        gi.numFifoSlots += nodes[i]->numInputs();
        gi.numPortSlots += std::max(nodes[i]->numOutputs(), 1);
        for (int k = 0; k < nodes[i]->numInputs(); k++) {
            const PortRef& in = nodes[i]->input(k);
            CASH_ASSERT(in.valid() && !in.node->dead,
                        "simulating graph with dangling input");
            // Static inputs are always-ready, except on Merge *value*
            // slots, where a one-shot initial value is injected
            // instead (static deciders stay always-ready).
            InputDesc d;
            uint32_t sv = 0;
            if (staticValue(in.node, sv) &&
                (nodes[i]->kind != NodeKind::Merge ||
                 k == nodes[i]->deciderIndex)) {
                d.isConst = true;
                d.constValue = sv;
            } else {
                h.need++;
            }
            gi.inDesc.push_back(d);
        }
        if (nodes[i]->kind == NodeKind::TokenGen) {
            ni.tkSlot = static_cast<int>(gi.tkInit.size());
            gi.tkInit.push_back(nodes[i]->tkCount);
        }
        if (nodes[i]->kind == NodeKind::Merge) {
            const Node* m = nodes[i];
            ni.deciderIdx = m->deciderIndex;
            ni.strictBack = true;
            for (int k = 0; k < m->numInputs(); k++) {
                if (k == m->deciderIndex)
                    continue;
                if (m->inputIsBackEdge(k)) {
                    ni.backInputs.push_back(k);
                    const Node* prod = m->input(k).node;
                    if (prod->kind != NodeKind::Eta ||
                        prod->hyperblock != m->hyperblock)
                        ni.strictBack = false;
                } else {
                    ni.fwdInputs.push_back(k);
                }
                uint32_t mv = 0;
                if (staticValue(m->input(k).node, mv))
                    gi.mergeInits.push_back(
                        {static_cast<int>(i), k, mv});
            }
        }
    }
    gi.hot[nodes.size()].fifoBase = gi.numFifoSlots;
    gi.hot[nodes.size()].portBase = gi.numPortSlots;
    // CSR consumer lists: count uses per producer port, then fill.
    std::vector<int> counts(gi.numPortSlots, 0);
    for (size_t i = 0; i < nodes.size(); i++) {
        Node* n = nodes[i];
        for (int k = 0; k < n->numInputs(); k++) {
            if (gi.inDesc[gi.hot[i].fifoBase + k].isConst)
                continue;
            const PortRef& in = n->input(k);
            auto pit = dense.find(in.node);
            CASH_ASSERT(pit != dense.end(), "input from foreign node");
            counts[gi.hot[pit->second].portBase + in.port]++;
        }
    }
    gi.consOff.resize(gi.numPortSlots + 1);
    int total = 0;
    for (int p = 0; p < gi.numPortSlots; p++) {
        gi.consOff[p] = total;
        total += counts[p];
    }
    gi.consOff[gi.numPortSlots] = total;
    gi.cons.resize(total);
    std::vector<int> fill(gi.consOff.begin(),
                          gi.consOff.end() - 1);
    for (size_t i = 0; i < nodes.size(); i++) {
        Node* n = nodes[i];
        for (int k = 0; k < n->numInputs(); k++) {
            if (gi.inDesc[gi.hot[i].fifoBase + k].isConst)
                continue;
            const PortRef& in = n->input(k);
            int prod = dense.find(in.node)->second;
            int port = gi.hot[prod].portBase + in.port;
            gi.cons[fill[port]++] = {static_cast<int32_t>(i),
                                     gi.hot[i].fifoBase + k};
        }
    }
    // Distinguished nodes, resolved once so activation start never
    // touches a map.
    for (const Node* p : g->paramNodes)
        gi.paramDense.push_back(dense.at(p));
    gi.initialTokenDense = dense.at(g->initialToken);
    graphs_[g->name] = std::move(gi);
}

void
DataflowSimulator::linkCallees()
{
    // Resolve callee GraphIndex pointers after all graphs are indexed;
    // std::map nodes are stable, so the pointers stay valid.  A call to
    // a graph that was not provided stays null and is a fatal error if
    // it ever fires (matching the old by-name lookup).
    for (auto& [name, gi] : graphs_) {
        (void)name;
        for (NodeIndex& ni : gi.nodes) {
            if (ni.n->kind != NodeKind::Call || !ni.n->callee)
                continue;
            auto it = graphs_.find(ni.n->callee->name);
            if (it != graphs_.end())
                ni.callee = &it->second;
        }
    }
}

void
DataflowSimulator::failRun(SimOutcome outcome, std::string why)
{
    // First failure wins; later ones are consequences of the first.
    if (runOutcome_ != SimOutcome::Ok)
        return;
    runOutcome_ = outcome;
    runError_ = std::move(why);
}

void
DataflowSimulator::reset()
{
    image_.reset();
    memsys_.reset();
    stackPtr_ = MemoryLayout::kStackTop;
}

DataflowSimulator::Activation*
DataflowSimulator::startActivation(const GraphIndex& gi,
                                   const std::vector<uint32_t>& args,
                                   uint64_t when, Activation* parent,
                                   int parentCallNode)
{
    // Frame check first, before any allocation or parent accounting,
    // so a refused activation leaves no half-initialized state behind.
    if (gi.g->hasFrame && stackPtr_ < gi.g->frameBytes + 0x1000) {
        failRun(SimOutcome::StackOverflow,
                "simulated stack overflow starting '" + gi.g->name +
                    "' (frame " + std::to_string(gi.g->frameBytes) +
                    " bytes, stack pointer " +
                    std::to_string(stackPtr_) + ")");
        return nullptr;
    }

    Activation* a;
    if (!freePool_.empty()) {
        a = freePool_.back();
        freePool_.pop_back();
        a->pooled = false;
        actRecycled_++;
    } else {
        activations_.push_back(std::make_unique<Activation>());
        a = activations_.back().get();
    }
    a->id = nextActId_++;
    a->gi = &gi;
    a->parent = parent;
    a->parentCallNode = parentCallNode;
    a->startTime = when;
    a->frameBase = 0;
    a->frameSize = 0;
    a->inflight = 0;
    a->liveChildren = 0;
    a->finished = false;
    a->fifo.resize(gi.numFifoSlots);
    for (ItemFifo& f : a->fifo)
        f.clear();  // keeps spill capacity across recycling
    a->portClock.assign(gi.numPortSlots, 0);
    a->readyCnt.assign(gi.nodes.size(), 0);
    a->mergeMode.assign(gi.nodes.size(), Activation::MergeMode::Fwd);
    a->tkCounter = gi.tkInit;
    actSpawned_++;
    liveActs_++;
    if (liveActs_ > peakLiveActs_)
        peakLiveActs_ = liveActs_;
    if (parent)
        parent->liveChildren++;

    const Graph* g = gi.g;
    CASH_ASSERT(args.size() == static_cast<size_t>(g->numParams),
                "bad simulated argument count for " + g->name);

    if (g->hasFrame) {
        a->frameSize = g->frameBytes;
        stackPtr_ -= a->frameSize;
        a->frameBase = stackPtr_;
    }

    // Inject parameters and the initial token.
    for (size_t p = 0; p < gi.paramDense.size(); p++) {
        uint32_t v = p < args.size() ? args[p] : a->frameBase;
        output(a, gi.paramDense[p], 0, v, when);
    }
    output(a, gi.initialTokenDense, 0, 0, when);

    // One-shot initial values for merge inputs wired to constants.
    for (const GraphIndex::MergeInit& mi : gi.mergeInits)
        deliver(a, mi.node, gi.hot[mi.node].fifoBase + mi.input,
                Item{mi.value, false}, when);
    return a;
}

void
DataflowSimulator::recycle(Activation* a)
{
    a->pooled = true;
    freePool_.push_back(a);
}

void
DataflowSimulator::releaseActivations()
{
    freePool_.clear();
    activations_.clear();
}

// The three hottest paths in the system — one deliver per event, one
// readiness check per delivery — are force-inlined into their (sole,
// same-TU) callers; the compiler's size heuristics otherwise leave
// them out of line.
inline __attribute__((always_inline)) void
DataflowSimulator::deliver(Activation* a, int node, int slot,
                           Item item, uint64_t when)
{
    Event e;
    e.seq = seq_++;
    e.act = a;
    e.node = node;
    e.slot = slot;
    e.item = item;
    // Injected fault: silently lose this delivery.  Keyed on the
    // deterministic sequence number, so the same spec drops the same
    // logical event on every run.
    if (faults_ && faults_->dropEvent(e.seq)) {
        droppedEvents_++;
        return;
    }
    a->inflight++;
    if (when <= now_) {
        // Zero-latency delivery (the common case: wires between
        // combinational operators) — straight onto the worklist.
        bucketOps_++;
        ready_.push_back(e);
    } else if (when - now_ <= kWheelSize) {
        bucketOps_++;
        wheel_[when & (kWheelSize - 1)].push_back(e);
        wheelCount_++;
    } else {
        heapOps_++;
        overflow_.push({when, e});
    }
}

bool
DataflowSimulator::advanceTime()
{
    if (wheelCount_ == 0 && overflow_.empty())
        return false;
    // The next pending timestamp: nearest non-empty wheel slot (at
    // most kWheelSize probes) vs. the overflow heap's top.
    uint64_t next = 0;
    bool have = false;
    if (wheelCount_ > 0) {
        uint64_t t = now_ + 1;
        while (wheel_[t & (kWheelSize - 1)].empty())
            t++;
        next = t;
        have = true;
    }
    if (!overflow_.empty() &&
        (!have || overflow_.top().time < next))
        next = overflow_.top().time;
    now_ = next;

    // Drain the slot for now_.  Every event in a slot shares one
    // timestamp: insertions only cover (now_, now_ + kWheelSize], a
    // window that holds each residue class exactly once.
    std::vector<Event>& slot = wheel_[now_ & (kWheelSize - 1)];
    size_t fromWheel = slot.size();
    wheelCount_ -= fromWheel;
    bool merged = false;
    while (!overflow_.empty() && overflow_.top().time == now_) {
        slot.push_back(overflow_.top().e);
        overflow_.pop();
        merged = true;
    }
    // Wheel inserts and heap pops are each seq-sorted already; only a
    // mix of both needs re-sorting to restore global (time, seq) order.
    if (merged && fromWheel > 0)
        std::sort(slot.begin(), slot.end(),
                  [](const Event& x, const Event& y) {
                      return x.seq < y.seq;
                  });
    // The caller drained ready_, so adopt the slot's buffer wholesale;
    // the slot inherits the empty one for future inserts.
    std::swap(ready_, slot);
    return true;
}

void
DataflowSimulator::output(Activation* a, int node, int port,
                          uint32_t value, uint64_t when, bool eos)
{
    const GraphIndex* gi = a->gi;
    int p = gi->hot[node].portBase + port;
    uint64_t& clock = a->portClock[p];
    if (when < clock)
        when = clock;  // in-order delivery per output port
    clock = when;
    const Item item{value, eos};
    for (int c = gi->consOff[p]; c < gi->consOff[p + 1]; c++)
        deliver(a, gi->cons[c].node, gi->cons[c].slot, item, when);
}

inline __attribute__((always_inline)) bool
DataflowSimulator::ready(const Activation* a, int node) const
{
    const NodeHot& h = a->gi->hot[node];
    NodeKind k = static_cast<NodeKind>(h.kind);
    if (k != NodeKind::Merge && k != NodeKind::TokenGen)
        return a->readyCnt[node] == h.need;
    const ItemFifo* fifo = a->fifo.data() + h.fifoBase;
    if (k == NodeKind::TokenGen) {
        if (!fifo[1].empty())
            return true;  // token returns always processable
        if (fifo[0].empty())
            return false;
        if (fifo[0].front().value)
            return true;  // true predicate
        // A false predicate (reset) must wait until all owed tokens
        // have been paid back by the leading loop.
        return a->tkCounter[a->gi->nodes[node].tkSlot] >= 0;
    }
    const NodeIndex& ni = a->gi->nodes[node];
    switch (a->mergeMode[node]) {
      case Activation::MergeMode::Fwd:
        for (int i : ni.fwdInputs)
            if (!fifo[i].empty())
                return true;
        return false;
      case Activation::MergeMode::AwaitDecider:
        return a->gi->inDesc[h.fifoBase + ni.deciderIdx].isConst ||
               !fifo[ni.deciderIdx].empty();
      case Activation::MergeMode::Back:
        if (ni.strictBack) {
            for (int i : ni.backInputs)
                if (fifo[i].empty())
                    return false;
            return true;
        }
        for (int i : ni.backInputs)
            if (!fifo[i].empty())
                return true;
        return false;
    }
    return false;
}

void
DataflowSimulator::fireMerge(Activation* a, int node, uint64_t now)
{
    const NodeIndex& ni = a->gi->nodes[node];
    ItemFifo* fifo = a->fifo.data() + a->gi->hot[node].fifoBase;
    auto& mode = a->mergeMode[node];
    // After forwarding a value, a mu-merge consults its decider (the
    // loop-continuation predicate of that activation) to choose
    // between the back-edge and initial streams next.
    auto afterEmit = [&]() {
        mode = ni.deciderIdx >= 0 ? Activation::MergeMode::AwaitDecider
                                  : Activation::MergeMode::Fwd;
    };

    switch (mode) {
      case Activation::MergeMode::Fwd: {
        // Discard EOS markers from not-taken edges; forward the first
        // pending value.
        for (int i : ni.fwdInputs) {
            ItemFifo& q = fifo[i];
            if (q.empty())
                continue;
            Item it = q.front();
            popItem(a, node, q);
            if (it.eos)
                return;  // retried while ready
            output(a, node, 0, it.value, now);
            afterEmit();
            return;
        }
        panic("merge fired without forward inputs");
      }
      case Activation::MergeMode::AwaitDecider: {
        const InputDesc& dsc =
            a->gi->inDesc[a->gi->hot[node].fifoBase + ni.deciderIdx];
        uint32_t d;
        if (dsc.isConst) {
            d = dsc.constValue;
        } else {
            ItemFifo& q = fifo[ni.deciderIdx];
            Item it = q.front();
            popItem(a, node, q);
            CASH_ASSERT(!it.eos,
                        "EOS item reached a non-merge consumer");
            d = it.value;
        }
        mode = d ? Activation::MergeMode::Back
                 : Activation::MergeMode::Fwd;
        return;
      }
      case Activation::MergeMode::Back: {
        if (ni.strictBack) {
            // One item from every back eta; exactly one carries the
            // iteration value.  An all-EOS round is the drained tail
            // of the previous loop execution.
            bool gotValue = false;
            uint32_t value = 0;
            for (int i : ni.backInputs) {
                ItemFifo& q = fifo[i];
                Item it = q.front();
                popItem(a, node, q);
                if (!it.eos) {
                    CASH_ASSERT(!gotValue,
                                "two back-edge values in one iteration");
                    gotValue = true;
                    value = it.value;
                }
            }
            if (gotValue) {
                output(a, node, 0, value, now);
                afterEmit();
            }
            return;
        }
        // Loose mode (back edges from other hyperblocks): consume
        // items as they arrive, discarding stale EOS markers.
        for (int i : ni.backInputs) {
            ItemFifo& q = fifo[i];
            if (q.empty())
                continue;
            Item it = q.front();
            popItem(a, node, q);
            if (it.eos)
                return;
            output(a, node, 0, it.value, now);
            afterEmit();
            return;
        }
        panic("merge fired without back inputs");
      }
    }
}

inline __attribute__((always_inline)) void
DataflowSimulator::tryFire(Activation* a, int node, uint64_t now)
{
    // Loop: a firing can unblock the same node again without a fresh
    // delivery (e.g. a token generator whose deferred reset becomes
    // processable after a token repayment).
    while (ready(a, node))
        fire(a, node, now);
}

void
DataflowSimulator::fire(Activation* a, int node, uint64_t now)
{
    firings_++;
    const GraphIndex* gi = a->gi;
    const NodeHot& h = gi->hot[node];
    const NodeKind kind = static_cast<NodeKind>(h.kind);
    fireCounts_[static_cast<size_t>(kind)]++;
    if (traceLevel >= 2)
        trace(2, "t=" + std::to_string(now) + " act" +
                     std::to_string(a->id) + " fire " +
                     gi->nodes[node].n->str());

    // Input bases hoisted once; takeIn(i) consumes input i of this
    // node (constants read from the descriptor, values popped with
    // the readiness counter maintained).
    const InputDesc* dsc = gi->inDesc.data() + h.fifoBase;
    ItemFifo* fifo = a->fifo.data() + h.fifoBase;
    auto takeIn = [&](int i) -> uint32_t {
        const InputDesc& d = dsc[i];
        if (d.isConst)
            return d.constValue;
        ItemFifo& q = fifo[i];
        CASH_ASSERT(!q.empty(), "taking from empty FIFO");
        Item it = q.front();
        q.pop_front();
        if (q.empty())
            a->readyCnt[node]--;
        CASH_ASSERT(!it.eos, "EOS item reached a non-merge consumer");
        return it.value;
    };

    switch (kind) {
      case NodeKind::Arith: {
        const Op op = static_cast<Op>(h.op);
        uint32_t v;
        if (h.unary)
            v = evalUnary(op, takeIn(0));
        else {
            uint32_t x = takeIn(0);
            uint32_t y = takeIn(1);
            v = evalBinary(op, x, y);
        }
        output(a, node, 0, v, now + h.latency);
        break;
      }
      case NodeKind::Mux: {
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        uint32_t out = 0;
        for (int i = 0; i < nin; i += 2) {
            uint32_t p = takeIn(i);
            uint32_t d = takeIn(i + 1);
            if (p)
                out = d;
        }
        output(a, node, 0, out, now);
        break;
      }
      case NodeKind::Merge:
        fireMerge(a, node, now);
        break;
      case NodeKind::Eta: {
        uint32_t v = takeIn(0);
        uint32_t p = takeIn(1);
        if (traceLevel >= 2)
            trace(2, "  eta n" +
                         std::to_string(gi->nodes[node].n->id) +
                         " v=" + std::to_string(v) + " p=" +
                         std::to_string(p));
        if (p)
            output(a, node, 0, v, now);
        else
            output(a, node, 0, 0, now, /*eos=*/true);
        break;
      }
      case NodeKind::Combine: {
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        for (int i = 0; i < nin; i++)
            takeIn(i);
        output(a, node, 0, 0, now);
        break;
      }
      case NodeKind::Load: {
        const Node* n = gi->nodes[node].n;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        uint32_t addr = takeIn(2);
        if (traceLevel >= 2)
            trace(2, "  load n" + std::to_string(n->id) + " p=" +
                         std::to_string(p) + " addr=" +
                         std::to_string(addr));
        if (!p) {
            nullified_++;
            output(a, node, 0, 0, now);  // arbitrary result (§3.1)
            output(a, node, 1, 0, now);
            break;
        }
        dynLoads_++;
        uint32_t v = image_.load(addr, n->size, n->signExtend);
        MemorySystem::Timing t =
            memsys_.request(addr, false, n->size, now);
        output(a, node, 0, v, t.complete);
        // The token signals that the access is ordered; it may be
        // generated before the data returns (§3.2).
        output(a, node, 1, 0, t.start + 1);
        break;
      }
      case NodeKind::Store: {
        const Node* n = gi->nodes[node].n;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        uint32_t addr = takeIn(2);
        uint32_t v = takeIn(3);
        if (traceLevel >= 2)
            trace(2, "  store n" + std::to_string(n->id) + " p=" +
                         std::to_string(p) + " addr=" +
                         std::to_string(addr) + " v=" +
                         std::to_string(v));
        if (!p) {
            nullified_++;
            output(a, node, 0, 0, now);
            break;
        }
        dynStores_++;
        image_.store(addr, v, n->size);
        MemorySystem::Timing t =
            memsys_.request(addr, true, n->size, now);
        output(a, node, 0, 0, t.start + 1);
        break;
      }
      case NodeKind::Call: {
        const NodeIndex& ni = gi->nodes[node];
        const Node* n = ni.n;
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        std::vector<uint32_t> args;
        for (int i = 2; i < nin; i++)
            args.push_back(takeIn(i));
        if (!p) {
            output(a, node, 0, 0, now);
            output(a, node, 1, 0, now);
            break;
        }
        callsMade_++;
        CASH_ASSERT(n->callee, "call without callee");
        if (!ni.callee) {
            failRun(SimOutcome::MissingGraph,
                    "no compiled graph for function '" +
                        n->callee->name + "' (called from '" +
                        gi->g->name + "')");
            break;
        }
        startActivation(*ni.callee, args, now + 1, a, node);
        break;
      }
      case NodeKind::Return: {
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        uint32_t v = 0;
        bool hasV = nin == 3;
        if (hasV)
            v = takeIn(2);
        if (p)
            finishActivation(a, v, hasV, now);
        break;
      }
      case NodeKind::TokenGen: {
        const NodeIndex& ni = gi->nodes[node];
        int64_t& c = a->tkCounter[ni.tkSlot];
        // Token returns have priority: they pay outstanding debts.
        if (!fifo[1].empty()) {
            takeIn(1);
            bool owed = c < 0;
            c++;
            if (owed)
                output(a, node, 0, 0, now);
        } else {
            // A false predicate (loop completed) may only be processed
            // once every debt is paid; ready() guarantees that.
            uint32_t p = takeIn(0);
            if (p) {
                c--;
                if (c >= 0)
                    output(a, node, 0, 0, now);
            } else {
                CASH_ASSERT(c >= 0, "token generator reset while owing");
                c = ni.n->tkCount;  // reset (§6.3)
                // Emit the loop-completion token so per-activation
                // token balance holds in the single-hyperblock ring
                // encoding (see DESIGN.md).
                output(a, node, 0, 0, now);
            }
        }
        break;
      }
      case NodeKind::Const:
      case NodeKind::Param:
      case NodeKind::InitialToken:
        panic("source node fired");
    }
}

void
DataflowSimulator::finishActivation(Activation* a, uint32_t value,
                                    bool hasValue, uint64_t now)
{
    if (a->finished)
        return;  // a second return firing would be a graph bug
    a->finished = true;
    liveActs_--;
    if (tracer_ && tracer_->enabled())
        tracer_->completeEvent(a->gi->g->name, "sim.activation",
                               a->startTime, now - a->startTime,
                               {{"activation", a->id}},
                               kTraceCyclePid);
    if (a->frameSize && stackPtr_ == a->frameBase)
        stackPtr_ += a->frameSize;
    if (!a->parent) {
        done_ = true;
        rootResult_ = hasValue ? value : 0;
        rootDoneTime_ = now;
        return;
    }
    // Deliver result + token to the parent's call node consumers.
    output(a->parent, a->parentCallNode, 0, hasValue ? value : 0,
           now + 1);
    output(a->parent, a->parentCallNode, 1, 0, now + 1);
    // The parent outlives all its children: it can only be recycled
    // once liveChildren drops to zero *and* the two deliveries above
    // have drained.
    a->parent->liveChildren--;
}

DeadlockReport
DataflowSimulator::buildDeadlockReport() const
{
    // A deadlocked graph stalls at a frontier of partially-fed nodes:
    // some inputs arrived and now sit in FIFOs forever, others never
    // will.  Nodes with no pending inputs at all are merely downstream
    // of the frontier and are omitted — reporting them would bury the
    // root cause.
    DeadlockReport rep;
    rep.stallTime = now_;
    rep.lsqOccupancy = memsys_.lsqOccupancy();
    constexpr size_t kMaxStuck = 64;  // bound the dump on huge graphs
    for (const auto& act : activations_) {
        if (act->pooled || act->finished)
            continue;
        for (size_t i = 0; i < act->gi->nodes.size(); i++) {
            const NodeHot& h = act->gi->hot[i];
            const Node* n = act->gi->nodes[i].n;
            bool any = false, all = true;
            for (int k = 0; k < n->numInputs(); k++) {
                if (act->gi->inDesc[h.fifoBase + k].isConst)
                    continue;
                if (act->fifo[h.fifoBase + k].empty())
                    all = false;
                else
                    any = true;
            }
            if (!any || all)
                continue;
            StuckNode stuck;
            stuck.activation = act->id;
            stuck.function = act->gi->g->name;
            stuck.node = n->str();
            for (int k = 0; k < n->numInputs(); k++) {
                if (act->gi->inDesc[h.fifoBase + k].isConst ||
                    !act->fifo[h.fifoBase + k].empty())
                    continue;
                const PortRef& in = n->input(k);
                bool token =
                    in.valid() &&
                    in.node->outputType(in.port) == VT::Token;
                stuck.waitingOn.push_back(
                    "in" + std::to_string(k) +
                    (token ? " (token)" : " (data)"));
            }
            rep.stuck.push_back(std::move(stuck));
            if (rep.stuck.size() >= kMaxStuck)
                return rep;
        }
    }
    return rep;
}

void
DataflowSimulator::sampleQueueCounters(uint64_t now)
{
    tracer_->counterEvent("sim.queue.bucket_ops", now,
                          static_cast<int64_t>(bucketOps_));
    tracer_->counterEvent("sim.queue.heap_ops", now,
                          static_cast<int64_t>(heapOps_));
    tracer_->counterEvent("sim.act.recycled", now,
                          static_cast<int64_t>(actRecycled_));
    tracer_->counterEvent("sim.act.live", now,
                          static_cast<int64_t>(liveActs_));
}

SimResult
DataflowSimulator::run(const std::string& name,
                       const std::vector<uint32_t>& args)
{
    // Fresh dynamic state (memory and caches persist across runs).
    ready_.clear();
    readyHead_ = 0;
    for (std::vector<Event>& slot : wheel_)
        slot.clear();
    wheelCount_ = 0;
    overflow_ = {};
    now_ = 0;
    seq_ = 0;
    releaseActivations();
    nextActId_ = 0;
    done_ = false;
    rootResult_ = 0;
    rootDoneTime_ = 0;
    events_ = firings_ = dynLoads_ = dynStores_ = 0;
    nullified_ = callsMade_ = 0;
    bucketOps_ = heapOps_ = 0;
    actSpawned_ = actRecycled_ = liveActs_ = peakLiveActs_ = 0;
    std::fill(fireCounts_.begin(), fireCounts_.end(), 0);
    runOutcome_ = SimOutcome::Ok;
    runError_.clear();
    droppedEvents_ = 0;

    ScopedTimer span(tracer_, "sim.run " + name, "sim");
    DeadlockReport deadlock;
    auto git = graphs_.find(name);
    if (git == graphs_.end())
        failRun(SimOutcome::MissingGraph,
                "no compiled graph for function '" + name + "'");
    else
        startActivation(git->second, args, 0, nullptr, -1);

    const bool tracing = tracer_ && tracer_->enabled();
    while (!done_ && runOutcome_ == SimOutcome::Ok) {
        if (readyHead_ == ready_.size()) {
            ready_.clear();
            readyHead_ = 0;
            if (!advanceTime())
                break;
            continue;
        }
        const Event e = ready_[readyHead_++];
        if (++events_ > maxEvents_) {
            failRun(SimOutcome::EventLimit,
                    "simulation event limit exceeded after " +
                        std::to_string(maxEvents_) +
                        " events in '" + name + "' (livelock?)");
            break;
        }
        Activation* a = e.act;
        a->inflight--;
        if (a->finished && !a->parent)
            continue;
        ItemFifo& q = a->fifo[e.slot];
        if (q.empty())
            a->readyCnt[e.node]++;
        q.push_back(e.item);
        tryFire(a, e.node, now_);
        // Recycle as soon as nothing can target this activation again:
        // it returned, no queued events reference it, and no child can
        // still deliver a result into it.
        if (a->finished && a->parent && a->inflight == 0 &&
            a->liveChildren == 0)
            recycle(a);
        if (tracing && (events_ & 0xFFF) == 0)
            sampleQueueCounters(now_);
    }

    if (!done_ && runOutcome_ == SimOutcome::Ok) {
        deadlock = buildDeadlockReport();
        if (traceLevel >= 1)
            for (const StuckNode& s : deadlock.stuck)
                trace(1, "starved " + s.str());
        failRun(SimOutcome::Deadlock,
                "dataflow simulation deadlocked in '" + name +
                    "' at cycle " + std::to_string(now_) + " (" +
                    std::to_string(deadlock.stuck.size()) +
                    " starved nodes)");
    }

    if (tracing)
        sampleQueueCounters(done_ ? rootDoneTime_ : now_);

    // Stats are filled on every outcome — a degraded run still reports
    // everything it observed up to the stall.
    SimResult r;
    r.returnValue = rootResult_;
    r.cycles = done_ ? rootDoneTime_ : now_;
    r.outcome = runOutcome_;
    r.error = runError_;
    r.deadlock = std::move(deadlock);
    r.stats.set(std::string("sim.outcome.") +
                    simOutcomeName(runOutcome_),
                1);
    if (droppedEvents_)
        r.stats.set("sim.events.dropped",
                    static_cast<int64_t>(droppedEvents_));
    r.stats.set("sim.cycles", static_cast<int64_t>(r.cycles));
    r.stats.set("sim.events", static_cast<int64_t>(events_));
    r.stats.set("sim.firings", static_cast<int64_t>(firings_));
    r.stats.set("sim.dynLoads", static_cast<int64_t>(dynLoads_));
    r.stats.set("sim.dynStores", static_cast<int64_t>(dynStores_));
    r.stats.set("sim.nullified", static_cast<int64_t>(nullified_));
    r.stats.set("sim.calls", static_cast<int64_t>(callsMade_));
    r.stats.set("sim.queue.bucket_ops",
                static_cast<int64_t>(bucketOps_));
    r.stats.set("sim.queue.heap_ops", static_cast<int64_t>(heapOps_));
    r.stats.set("sim.act.spawned", static_cast<int64_t>(actSpawned_));
    r.stats.set("sim.act.recycled",
                static_cast<int64_t>(actRecycled_));
    r.stats.set("sim.act.peakLive",
                static_cast<int64_t>(peakLiveActs_));
    r.stats.set("sim.act.allocated",
                static_cast<int64_t>(activations_.size()));
    for (size_t k = 0; k < fireCounts_.size(); k++)
        if (fireCounts_[k])
            r.stats.set(std::string("sim.fire.") +
                            nodeKindName(static_cast<NodeKind>(k)),
                        static_cast<int64_t>(fireCounts_[k]));
    span.arg("cycles", static_cast<int64_t>(rootDoneTime_));
    span.arg("firings", static_cast<int64_t>(firings_));
    // Spatial ILP: average operator firings per cycle (x100).
    if (rootDoneTime_ > 0)
        r.stats.set("sim.opsPerCycle_x100",
                    static_cast<int64_t>(100 * firings_ /
                                         rootDoneTime_));
    memsys_.reportStats(r.stats);
    // Free all activation storage now rather than at the next run():
    // on early done_ the root's still-running children hold FIFO and
    // port-clock arrays that would otherwise linger.
    releaseActivations();
    return r;
}

} // namespace cash
