#include "sim/dataflow_sim.h"

#include <algorithm>

#include "sim/latency.h"
#include "sim/value.h"
#include "support/diagnostics.h"

namespace cash {

DataflowSimulator::DataflowSimulator(
    const std::vector<const Graph*>& graphs, const MemoryLayout& layout,
    const MemConfig& cfg)
    : layout_(layout), image_(layout), memsys_(cfg)
{
    for (const Graph* g : graphs)
        buildIndex(g);
    fireCounts_.assign(static_cast<size_t>(NodeKind::TokenGen) + 1, 0);
}

void
DataflowSimulator::setTracer(TraceRecorder* tracer)
{
    tracer_ = tracer;
    memsys_.setTracer(tracer);
}

void
DataflowSimulator::buildIndex(const Graph* g)
{
    GraphIndex gi;
    gi.g = g;
    std::vector<Node*> nodes = g->liveNodes();
    for (size_t i = 0; i < nodes.size(); i++)
        gi.dense[nodes[i]] = static_cast<int>(i);
    gi.nodes.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); i++) {
        NodeIndex& ni = gi.nodes[i];
        ni.n = nodes[i];
        ni.inputs.resize(nodes[i]->numInputs());
        for (int k = 0; k < nodes[i]->numInputs(); k++) {
            const PortRef& in = nodes[i]->input(k);
            CASH_ASSERT(in.valid() && !in.node->dead,
                        "simulating graph with dangling input");
            // Const inputs are always-ready, except on Merge *value*
            // slots, where a one-shot initial value is injected
            // instead (constant deciders stay always-ready).
            if (in.node->kind == NodeKind::Const &&
                (nodes[i]->kind != NodeKind::Merge ||
                 k == nodes[i]->deciderIndex)) {
                ni.inputs[k].isConst = true;
                ni.inputs[k].constValue =
                    static_cast<uint32_t>(in.node->constValue);
            }
        }
        ni.consumers.resize(std::max(nodes[i]->numOutputs(), 1));
        if (nodes[i]->kind == NodeKind::Merge) {
            const Node* m = nodes[i];
            ni.deciderIdx = m->deciderIndex;
            ni.strictBack = true;
            for (int k = 0; k < m->numInputs(); k++) {
                if (k == m->deciderIndex)
                    continue;
                if (m->inputIsBackEdge(k)) {
                    ni.backInputs.push_back(k);
                    const Node* prod = m->input(k).node;
                    if (prod->kind != NodeKind::Eta ||
                        prod->hyperblock != m->hyperblock)
                        ni.strictBack = false;
                } else {
                    ni.fwdInputs.push_back(k);
                }
            }
        }
    }
    // Consumer lists.
    for (size_t i = 0; i < nodes.size(); i++) {
        Node* n = nodes[i];
        for (int k = 0; k < n->numInputs(); k++) {
            const PortRef& in = n->input(k);
            if (gi.nodes[gi.dense[n]].inputs[k].isConst)
                continue;
            auto pit = gi.dense.find(in.node);
            CASH_ASSERT(pit != gi.dense.end(), "input from foreign node");
            gi.nodes[pit->second].consumers[in.port].push_back(
                {static_cast<int>(i), k});
        }
    }
    graphs_[g->name] = std::move(gi);
}

const DataflowSimulator::GraphIndex&
DataflowSimulator::indexOf(const std::string& name)
{
    auto it = graphs_.find(name);
    if (it == graphs_.end())
        fatal("no compiled graph for function '" + name + "'");
    return it->second;
}

void
DataflowSimulator::reset()
{
    image_.reset();
    memsys_.reset();
    stackPtr_ = MemoryLayout::kStackTop;
}

DataflowSimulator::Activation*
DataflowSimulator::startActivation(const GraphIndex& gi,
                                   const std::vector<uint32_t>& args,
                                   uint64_t when, Activation* parent,
                                   int parentCallNode)
{
    auto act = std::make_unique<Activation>();
    Activation* a = act.get();
    a->id = static_cast<int>(activations_.size());
    a->gi = &gi;
    a->parent = parent;
    a->parentCallNode = parentCallNode;
    a->startTime = when;
    a->fifo.resize(gi.nodes.size());
    a->portClock.resize(gi.nodes.size());
    a->mergeMode.assign(gi.nodes.size(), Activation::MergeMode::Fwd);
    for (size_t i = 0; i < gi.nodes.size(); i++) {
        a->fifo[i].resize(gi.nodes[i].inputs.size());
        a->portClock[i].assign(gi.nodes[i].consumers.size(), 0);
    }
    activations_.push_back(std::move(act));

    const Graph* g = gi.g;
    CASH_ASSERT(args.size() == static_cast<size_t>(g->numParams),
                "bad simulated argument count for " + g->name);

    if (g->hasFrame) {
        a->frameSize = g->frameBytes;
        if (stackPtr_ < a->frameSize + 0x1000)
            fatal("simulated stack overflow");
        stackPtr_ -= a->frameSize;
        a->frameBase = stackPtr_;
    }

    // Inject parameters and the initial token.
    for (size_t p = 0; p < g->paramNodes.size(); p++) {
        uint32_t v = p < args.size() ? args[p] : a->frameBase;
        output(a, gi.dense.at(g->paramNodes[p]), 0, v, when);
    }
    output(a, gi.dense.at(g->initialToken), 0, 0, when);

    // One-shot initial values for merge inputs wired to constants.
    for (size_t i = 0; i < gi.nodes.size(); i++) {
        const Node* n = gi.nodes[i].n;
        if (n->kind != NodeKind::Merge)
            continue;
        for (int k = 0; k < n->numInputs(); k++) {
            if (k == n->deciderIndex)
                continue;
            if (n->input(k).node->kind == NodeKind::Const) {
                deliver(a, static_cast<int>(i), k,
                        Item{static_cast<uint32_t>(
                                 n->input(k).node->constValue),
                             false},
                        when);
            }
        }
    }
    return a;
}

void
DataflowSimulator::deliver(Activation* a, int node, int input,
                           Item item, uint64_t when)
{
    Event e;
    e.time = when;
    e.seq = seq_++;
    e.act = a;
    e.node = node;
    e.input = input;
    e.item = item;
    queue_.push(e);
}

void
DataflowSimulator::output(Activation* a, int node, int port,
                          uint32_t value, uint64_t when, bool eos)
{
    const NodeIndex& ni = a->gi->nodes[node];
    if (port >= static_cast<int>(ni.consumers.size()))
        return;
    uint64_t& clock = a->portClock[node][port];
    if (when < clock)
        when = clock;  // in-order delivery per output port
    clock = when;
    for (const Consumer& c : ni.consumers[port])
        deliver(a, c.node, c.input, Item{value, eos}, when);
}

bool
DataflowSimulator::ready(const Activation* a, int node) const
{
    const NodeIndex& ni = a->gi->nodes[node];
    NodeKind k = ni.n->kind;
    if (k == NodeKind::TokenGen) {
        if (!a->fifo[node][1].empty())
            return true;  // token returns always processable
        if (a->fifo[node][0].empty())
            return false;
        if (a->fifo[node][0].front().value)
            return true;  // true predicate
        // A false predicate (reset) must wait until all owed tokens
        // have been paid back by the leading loop.
        auto it = a->tkCounter.find(node);
        int64_t c = it == a->tkCounter.end() ? ni.n->tkCount
                                             : it->second;
        return c >= 0;
    }
    if (k == NodeKind::Merge) {
        switch (a->mergeMode[node]) {
          case Activation::MergeMode::Fwd:
            for (int i : ni.fwdInputs)
                if (!a->fifo[node][i].empty())
                    return true;
            return false;
          case Activation::MergeMode::AwaitDecider:
            return ni.inputs[ni.deciderIdx].isConst ||
                   !a->fifo[node][ni.deciderIdx].empty();
          case Activation::MergeMode::Back:
            if (ni.strictBack) {
                for (int i : ni.backInputs)
                    if (a->fifo[node][i].empty())
                        return false;
                return true;
            }
            for (int i : ni.backInputs)
                if (!a->fifo[node][i].empty())
                    return true;
            return false;
        }
        return false;
    }
    for (size_t i = 0; i < ni.inputs.size(); i++)
        if (!ni.inputs[i].isConst && a->fifo[node][i].empty())
            return false;
    return true;
}

uint32_t
DataflowSimulator::take(Activation* a, int node, int input)
{
    const InputDesc& d = a->gi->nodes[node].inputs[input];
    if (d.isConst)
        return d.constValue;
    auto& q = a->fifo[node][input];
    CASH_ASSERT(!q.empty(), "taking from empty FIFO");
    Item it = q.front();
    q.pop_front();
    CASH_ASSERT(!it.eos, "EOS item reached a non-merge consumer");
    return it.value;
}

void
DataflowSimulator::fireMerge(Activation* a, int node, uint64_t now)
{
    const NodeIndex& ni = a->gi->nodes[node];
    auto& mode = a->mergeMode[node];
    // After forwarding a value, a mu-merge consults its decider (the
    // loop-continuation predicate of that activation) to choose
    // between the back-edge and initial streams next.
    auto afterEmit = [&]() {
        mode = ni.deciderIdx >= 0 ? Activation::MergeMode::AwaitDecider
                                  : Activation::MergeMode::Fwd;
    };

    switch (mode) {
      case Activation::MergeMode::Fwd: {
        // Discard EOS markers from not-taken edges; forward the first
        // pending value.
        for (int i : ni.fwdInputs) {
            auto& q = a->fifo[node][i];
            if (q.empty())
                continue;
            Item it = q.front();
            q.pop_front();
            if (it.eos)
                return;  // retried while ready
            output(a, node, 0, it.value, now);
            afterEmit();
            return;
        }
        panic("merge fired without forward inputs");
      }
      case Activation::MergeMode::AwaitDecider: {
        uint32_t d = take(a, node, ni.deciderIdx);
        mode = d ? Activation::MergeMode::Back
                 : Activation::MergeMode::Fwd;
        return;
      }
      case Activation::MergeMode::Back: {
        if (ni.strictBack) {
            // One item from every back eta; exactly one carries the
            // iteration value.  An all-EOS round is the drained tail
            // of the previous loop execution.
            bool gotValue = false;
            uint32_t value = 0;
            for (int i : ni.backInputs) {
                auto& q = a->fifo[node][i];
                Item it = q.front();
                q.pop_front();
                if (!it.eos) {
                    CASH_ASSERT(!gotValue,
                                "two back-edge values in one iteration");
                    gotValue = true;
                    value = it.value;
                }
            }
            if (gotValue) {
                output(a, node, 0, value, now);
                afterEmit();
            }
            return;
        }
        // Loose mode (back edges from other hyperblocks): consume
        // items as they arrive, discarding stale EOS markers.
        for (int i : ni.backInputs) {
            auto& q = a->fifo[node][i];
            if (q.empty())
                continue;
            Item it = q.front();
            q.pop_front();
            if (it.eos)
                return;
            output(a, node, 0, it.value, now);
            afterEmit();
            return;
        }
        panic("merge fired without back inputs");
      }
    }
}

void
DataflowSimulator::tryFire(Activation* a, int node, uint64_t now)
{
    // Loop: a firing can unblock the same node again without a fresh
    // delivery (e.g. a token generator whose deferred reset becomes
    // processable after a token repayment).
    while (ready(a, node))
        fire(a, node, now);
}

void
DataflowSimulator::fire(Activation* a, int node, uint64_t now)
{
    firings_++;
    const NodeIndex& ni = a->gi->nodes[node];
    const Node* n = ni.n;
    fireCounts_[static_cast<size_t>(n->kind)]++;
    if (traceLevel >= 2)
        trace(2, "t=" + std::to_string(now) + " act" +
                     std::to_string(a->id) + " fire " + n->str());

    switch (n->kind) {
      case NodeKind::Arith: {
        uint32_t v;
        if (n->op == Op::Copy || opIsUnary(n->op))
            v = evalUnary(n->op, take(a, node, 0));
        else {
            uint32_t x = take(a, node, 0);
            uint32_t y = take(a, node, 1);
            v = evalBinary(n->op, x, y);
        }
        output(a, node, 0, v, now + nodeLatency(n));
        break;
      }
      case NodeKind::Mux: {
        uint32_t out = 0;
        for (int i = 0; i < n->numInputs(); i += 2) {
            uint32_t p = take(a, node, i);
            uint32_t d = take(a, node, i + 1);
            if (p)
                out = d;
        }
        output(a, node, 0, out, now);
        break;
      }
      case NodeKind::Merge:
        fireMerge(a, node, now);
        break;
      case NodeKind::Eta: {
        uint32_t v = take(a, node, 0);
        uint32_t p = take(a, node, 1);
        if (traceLevel >= 2)
            trace(2, "  eta n" + std::to_string(n->id) + " v=" +
                         std::to_string(v) + " p=" + std::to_string(p));
        if (p)
            output(a, node, 0, v, now);
        else
            output(a, node, 0, 0, now, /*eos=*/true);
        break;
      }
      case NodeKind::Combine: {
        for (int i = 0; i < n->numInputs(); i++)
            take(a, node, i);
        output(a, node, 0, 0, now);
        break;
      }
      case NodeKind::Load: {
        uint32_t p = take(a, node, 0);
        take(a, node, 1);  // token
        uint32_t addr = take(a, node, 2);
        if (traceLevel >= 2)
            trace(2, "  load n" + std::to_string(n->id) + " p=" +
                         std::to_string(p) + " addr=" +
                         std::to_string(addr));
        if (!p) {
            nullified_++;
            output(a, node, 0, 0, now);  // arbitrary result (§3.1)
            output(a, node, 1, 0, now);
            break;
        }
        dynLoads_++;
        uint32_t v = image_.load(addr, n->size, n->signExtend);
        MemorySystem::Timing t =
            memsys_.request(addr, false, n->size, now);
        output(a, node, 0, v, t.complete);
        // The token signals that the access is ordered; it may be
        // generated before the data returns (§3.2).
        output(a, node, 1, 0, t.start + 1);
        break;
      }
      case NodeKind::Store: {
        uint32_t p = take(a, node, 0);
        take(a, node, 1);  // token
        uint32_t addr = take(a, node, 2);
        uint32_t v = take(a, node, 3);
        if (traceLevel >= 2)
            trace(2, "  store n" + std::to_string(n->id) + " p=" +
                         std::to_string(p) + " addr=" +
                         std::to_string(addr) + " v=" +
                         std::to_string(v));
        if (!p) {
            nullified_++;
            output(a, node, 0, 0, now);
            break;
        }
        dynStores_++;
        image_.store(addr, v, n->size);
        MemorySystem::Timing t =
            memsys_.request(addr, true, n->size, now);
        output(a, node, 0, 0, t.start + 1);
        break;
      }
      case NodeKind::Call: {
        uint32_t p = take(a, node, 0);
        take(a, node, 1);  // token
        std::vector<uint32_t> args;
        for (int i = 2; i < n->numInputs(); i++)
            args.push_back(take(a, node, i));
        if (!p) {
            output(a, node, 0, 0, now);
            output(a, node, 1, 0, now);
            break;
        }
        callsMade_++;
        CASH_ASSERT(n->callee, "call without callee");
        const GraphIndex& gi = indexOf(n->callee->name);
        startActivation(gi, args, now + 1, a, node);
        break;
      }
      case NodeKind::Return: {
        uint32_t p = take(a, node, 0);
        take(a, node, 1);  // token
        uint32_t v = 0;
        bool hasV = n->numInputs() == 3;
        if (hasV)
            v = take(a, node, 2);
        if (p)
            finishActivation(a, v, hasV, now);
        break;
      }
      case NodeKind::TokenGen: {
        auto [it, inserted] = a->tkCounter.try_emplace(node, n->tkCount);
        int64_t& c = it->second;
        // Token returns have priority: they pay outstanding debts.
        if (!a->fifo[node][1].empty()) {
            take(a, node, 1);
            bool owed = c < 0;
            c++;
            if (owed)
                output(a, node, 0, 0, now);
        } else {
            // A false predicate (loop completed) may only be processed
            // once every debt is paid; ready() guarantees that.
            uint32_t p = take(a, node, 0);
            if (p) {
                c--;
                if (c >= 0)
                    output(a, node, 0, 0, now);
            } else {
                CASH_ASSERT(c >= 0, "token generator reset while owing");
                c = n->tkCount;  // reset (§6.3)
                // Emit the loop-completion token so per-activation
                // token balance holds in the single-hyperblock ring
                // encoding (see DESIGN.md).
                output(a, node, 0, 0, now);
            }
        }
        break;
      }
      case NodeKind::Const:
      case NodeKind::Param:
      case NodeKind::InitialToken:
        panic("source node fired");
    }
}

void
DataflowSimulator::finishActivation(Activation* a, uint32_t value,
                                    bool hasValue, uint64_t now)
{
    if (a->finished)
        return;  // a second return firing would be a graph bug
    a->finished = true;
    if (tracer_ && tracer_->enabled())
        tracer_->completeEvent(a->gi->g->name, "sim.activation",
                               a->startTime, now - a->startTime,
                               {{"activation", a->id}},
                               kTraceCyclePid);
    if (a->frameSize && stackPtr_ == a->frameBase)
        stackPtr_ += a->frameSize;
    if (!a->parent) {
        done_ = true;
        rootResult_ = hasValue ? value : 0;
        rootDoneTime_ = now;
        return;
    }
    // Deliver result + token to the parent's call node consumers.
    output(a->parent, a->parentCallNode, 0, hasValue ? value : 0,
           now + 1);
    output(a->parent, a->parentCallNode, 1, 0, now + 1);
}

SimResult
DataflowSimulator::run(const std::string& name,
                       const std::vector<uint32_t>& args)
{
    // Fresh dynamic state (memory and caches persist across runs).
    queue_ = {};
    seq_ = 0;
    activations_.clear();
    done_ = false;
    rootResult_ = 0;
    rootDoneTime_ = 0;
    events_ = firings_ = dynLoads_ = dynStores_ = 0;
    nullified_ = callsMade_ = 0;
    std::fill(fireCounts_.begin(), fireCounts_.end(), 0);

    ScopedTimer span(tracer_, "sim.run " + name, "sim");
    const GraphIndex& gi = indexOf(name);
    startActivation(gi, args, 0, nullptr, -1);

    while (!queue_.empty() && !done_) {
        Event e = queue_.top();
        queue_.pop();
        if (++events_ > maxEvents_)
            fatal("simulation event limit exceeded (livelock?)");
        if (e.act->finished && !e.act->parent)
            continue;
        auto& q = e.act->fifo[e.node][e.input];
        q.push_back(e.item);
        tryFire(e.act, e.node, e.time);
    }

    if (!done_) {
        if (traceLevel >= 1) {
            for (const auto& act : activations_) {
                for (size_t i = 0; i < act->gi->nodes.size(); i++) {
                    bool any = false, all = true;
                    const NodeIndex& ni = act->gi->nodes[i];
                    for (size_t k = 0; k < ni.inputs.size(); k++) {
                        if (ni.inputs[k].isConst)
                            continue;
                        if (act->fifo[i][k].empty())
                            all = false;
                        else
                            any = true;
                    }
                    if (any && !all) {
                        std::string waits;
                        for (size_t k = 0; k < ni.inputs.size(); k++)
                            if (!ni.inputs[k].isConst &&
                                act->fifo[i][k].empty())
                                waits += " in" + std::to_string(k);
                        trace(1, "starved act" +
                                     std::to_string(act->id) + " " +
                                     ni.n->str() + " waiting on" +
                                     waits);
                    }
                }
            }
        }
        fatal("dataflow simulation deadlocked in '" + name + "'");
    }

    SimResult r;
    r.returnValue = rootResult_;
    r.cycles = rootDoneTime_;
    r.stats.set("sim.cycles", static_cast<int64_t>(rootDoneTime_));
    r.stats.set("sim.events", static_cast<int64_t>(events_));
    r.stats.set("sim.firings", static_cast<int64_t>(firings_));
    r.stats.set("sim.dynLoads", static_cast<int64_t>(dynLoads_));
    r.stats.set("sim.dynStores", static_cast<int64_t>(dynStores_));
    r.stats.set("sim.nullified", static_cast<int64_t>(nullified_));
    r.stats.set("sim.calls", static_cast<int64_t>(callsMade_));
    for (size_t k = 0; k < fireCounts_.size(); k++)
        if (fireCounts_[k])
            r.stats.set(std::string("sim.fire.") +
                            nodeKindName(static_cast<NodeKind>(k)),
                        static_cast<int64_t>(fireCounts_[k]));
    span.arg("cycles", static_cast<int64_t>(rootDoneTime_));
    span.arg("firings", static_cast<int64_t>(firings_));
    // Spatial ILP: average operator firings per cycle (x100).
    if (rootDoneTime_ > 0)
        r.stats.set("sim.opsPerCycle_x100",
                    static_cast<int64_t>(100 * firings_ /
                                         rootDoneTime_));
    memsys_.reportStats(r.stats);
    return r;
}

} // namespace cash
