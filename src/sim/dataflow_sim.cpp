#include "sim/dataflow_sim.h"

#include <algorithm>
#include <functional>
#include <set>

#include "sim/latency.h"
#include "sim/value.h"
#include "support/diagnostics.h"

namespace cash {

const char*
simEngineName(SimEngine e)
{
    switch (e) {
      case SimEngine::Event: return "event";
      case SimEngine::Macro: return "macro";
    }
    return "?";
}

const char*
simOutcomeName(SimOutcome o)
{
    switch (o) {
      case SimOutcome::Ok: return "ok";
      case SimOutcome::Deadlock: return "deadlock";
      case SimOutcome::EventLimit: return "event_limit";
      case SimOutcome::StackOverflow: return "stack_overflow";
      case SimOutcome::MissingGraph: return "missing_graph";
      case SimOutcome::Timeout: return "timeout";
    }
    return "?";
}

std::string
StuckNode::str() const
{
    std::string s = "act" + std::to_string(activation) + " " +
                    function + ": " + node + " waiting on";
    for (const std::string& w : waitingOn)
        s += " " + w;
    return s;
}

std::string
DeadlockReport::str() const
{
    std::string s = "deadlock at cycle " + std::to_string(stallTime) +
                    " (lsq occupancy " + std::to_string(lsqOccupancy) +
                    "), " + std::to_string(stuck.size()) +
                    " starved node(s):";
    for (const StuckNode& n : stuck)
        s += "\n  " + n.str();
    return s;
}

DataflowSimulator::DataflowSimulator(
    const std::vector<const Graph*>& graphs, const MemoryLayout& layout,
    const MemConfig& cfg, SimEngine engine, const FabricSession* fabric)
    : layout_(layout), image_(layout), memsys_(cfg), engine_(engine)
{
    if (fabric && !fabric->model.trivial()) {
        fabric_ = fabric;
        fabricActive_ = true;
    }
    for (const Graph* g : graphs)
        buildIndex(g);
    linkCallees();
    fireCounts_.assign(static_cast<size_t>(NodeKind::TokenGen) + 1, 0);
    if (fabric_) {
        for (const auto& entry : graphs_) {
            auto it = fabric_->placements.find(entry.first);
            if (it == fabric_->placements.end())
                continue;
            const Placement& pl = it->second;
            fabricCutEdges_ += pl.cutEdges;
            fabricTotalEdges_ += pl.totalEdges;
            fabricCutHops_ += pl.cutHops;
            fabricMaxTileOps_ =
                std::max(fabricMaxTileOps_, pl.maxTileOps);
            fabricUsedTiles_ += pl.usedTiles;
            fabricNodes_ += pl.numNodes;
        }
    }
}

void
DataflowSimulator::setTracer(TraceRecorder* tracer)
{
    tracer_ = tracer;
    memsys_.setTracer(tracer);
}

void
DataflowSimulator::buildIndex(const Graph* g)
{
    GraphIndex gi;
    gi.g = g;
    std::vector<Node*> nodes = g->liveNodes();
    std::map<const Node*, int> dense;  // index-time only; the hot path
                                       // uses the flat CSR arrays
    for (size_t i = 0; i < nodes.size(); i++)
        dense[nodes[i]] = static_cast<int>(i);

    // Tiled fabric: the placement for this graph, if one was supplied.
    const Placement* placed = nullptr;
    if (fabric_) {
        auto pit = fabric_->placements.find(g->name);
        if (pit != fabric_->placements.end()) {
            CASH_ASSERT(pit->second.tileOf.size() == nodes.size(),
                        "placement does not match live-node count");
            placed = &pit->second;
            gi.tileOf = pit->second.tileOf;
        }
    }

    // Statically-known producer values: Const nodes, and pure
    // arithmetic whose inputs are themselves static.  Firing is
    // delivery-triggered, so an operator with only constant inputs
    // would never fire and would starve its consumers forever — such
    // graphs reach the simulator when constant folding did not run
    // (custom pipelines, quarantined passes, raw builder output).
    // Folding them into the consumers' input descriptors makes the
    // engine independent of any optimizer invariant.
    std::map<const Node*, std::pair<bool, uint32_t>> staticMemo;
    std::set<const Node*> staticVisiting;  // cycle guard
    std::function<bool(const Node*, uint32_t&)> staticValue =
        [&](const Node* n, uint32_t& out) -> bool {
        auto it = staticMemo.find(n);
        if (it != staticMemo.end()) {
            out = it->second.second;
            return it->second.first;
        }
        bool known = false;
        uint32_t v = 0;
        if (n->kind == NodeKind::Const) {
            known = true;
            v = static_cast<uint32_t>(n->constValue);
        } else if (n->kind == NodeKind::Arith &&
                   staticVisiting.insert(n).second) {
            if ((n->op == Op::Copy || opIsUnary(n->op)) &&
                n->numInputs() == 1) {
                uint32_t x;
                if (n->input(0).valid() &&
                    staticValue(n->input(0).node, x)) {
                    known = true;
                    v = evalUnary(n->op, x);
                }
            } else if (n->numInputs() == 2) {
                uint32_t x, y;
                if (n->input(0).valid() && n->input(1).valid() &&
                    staticValue(n->input(0).node, x) &&
                    staticValue(n->input(1).node, y)) {
                    known = true;
                    v = evalBinary(n->op, x, y);
                }
            }
            staticVisiting.erase(n);
        }
        staticMemo[n] = {known, v};
        out = v;
        return known;
    };
    gi.nodes.resize(nodes.size());
    gi.hot.resize(nodes.size() + 1);  // +1: sentinel (input counts)
    for (size_t i = 0; i < nodes.size(); i++) {
        NodeIndex& ni = gi.nodes[i];
        NodeHot& h = gi.hot[i];
        ni.n = nodes[i];
        h.kind = static_cast<uint8_t>(nodes[i]->kind);
        h.latency = static_cast<uint8_t>(nodeLatency(nodes[i]));
        if (nodes[i]->kind == NodeKind::Arith) {
            h.op = static_cast<uint8_t>(nodes[i]->op);
            h.unary = nodes[i]->op == Op::Copy ||
                      opIsUnary(nodes[i]->op);
        }
        h.fifoBase = gi.numFifoSlots;
        h.portBase = gi.numPortSlots;
        gi.numFifoSlots += nodes[i]->numInputs();
        gi.numPortSlots += std::max(nodes[i]->numOutputs(), 1);
        for (int k = 0; k < nodes[i]->numInputs(); k++) {
            const PortRef& in = nodes[i]->input(k);
            CASH_ASSERT(in.valid() && !in.node->dead,
                        "simulating graph with dangling input");
            // Static inputs are always-ready, except on Merge *value*
            // slots, where a one-shot initial value is injected
            // instead (static deciders stay always-ready).
            InputDesc d;
            uint32_t sv = 0;
            if (staticValue(in.node, sv) &&
                (nodes[i]->kind != NodeKind::Merge ||
                 k == nodes[i]->deciderIndex)) {
                d.isConst = true;
                d.constValue = sv;
            } else {
                h.need++;
            }
            gi.inDesc.push_back(d);
        }
        if (nodes[i]->kind == NodeKind::TokenGen) {
            ni.tkSlot = static_cast<int>(gi.tkInit.size());
            gi.tkInit.push_back(nodes[i]->tkCount);
        }
        if (nodes[i]->kind == NodeKind::Merge) {
            const Node* m = nodes[i];
            ni.deciderIdx = m->deciderIndex;
            ni.strictBack = true;
            for (int k = 0; k < m->numInputs(); k++) {
                if (k == m->deciderIndex)
                    continue;
                if (m->inputIsBackEdge(k)) {
                    ni.backInputs.push_back(k);
                    const Node* prod = m->input(k).node;
                    if (prod->kind != NodeKind::Eta ||
                        prod->hyperblock != m->hyperblock)
                        ni.strictBack = false;
                } else {
                    ni.fwdInputs.push_back(k);
                }
                uint32_t mv = 0;
                if (staticValue(m->input(k).node, mv))
                    gi.mergeInits.push_back(
                        {static_cast<int>(i), k, mv});
            }
        }
    }
    gi.numRealNodes = static_cast<int>(nodes.size());

    // Macro engine: partition pure interiors into super-operators and
    // materialize each as a pseudo-node appended after the real ones.
    // The pseudo-node's fifo slots are the region's collapsed inputs,
    // so delivery, readiness counting, deadlock scanning and recycling
    // all reuse the ordinary machinery.
    if (engine_ == SimEngine::Macro) {
        RegionGraphView view;
        view.nodes.resize(nodes.size());
        for (size_t i = 0; i < nodes.size(); i++) {
            RegionGraphView::NodeV& nv = view.nodes[i];
            const bool isMerge = nodes[i]->kind == NodeKind::Merge;
            nv.kind = nodes[i]->kind;
            nv.op = nodes[i]->op;
            nv.unary = gi.hot[i].unary != 0;
            nv.latency = gi.hot[i].latency;
            nv.strictBack = isMerge && gi.nodes[i].strictBack;
            nv.in.reserve(static_cast<size_t>(nodes[i]->numInputs()));
            for (int k = 0; k < nodes[i]->numInputs(); k++) {
                const InputDesc& d =
                    gi.inDesc[gi.hot[i].fifoBase + k];
                RegionGraphView::In in;
                in.isConst = d.isConst;
                in.constValue = d.constValue;
                if (!d.isConst) {
                    const PortRef& pr = nodes[i]->input(k);
                    in.node = dense.at(pr.node);
                    in.port = pr.port;
                }
                if (isMerge) {
                    if (k == gi.nodes[i].deciderIdx)
                        in.role = kRegRoleDecider;
                    else if (nodes[i]->inputIsBackEdge(k))
                        in.role = kRegRoleBack;
                    // Merge value slots wired to static producers get
                    // a one-shot initial value instead of deliveries.
                    uint32_t mv = 0;
                    if (!d.isConst &&
                        staticValue(nodes[i]->input(k).node, mv))
                        in.initOnly = true;
                }
                nv.in.push_back(in);
            }
        }
        // Fabric: a super-operator must not fuse across tiles; the
        // compiler keeps candidates of one tile only (docs/FABRIC.md).
        if (placed)
            view.group = gi.tileOf;
        gi.plan = compileRegions(view);
        regionsTotal_ +=
            static_cast<int64_t>(gi.plan.regions.size());
        if (!gi.plan.regions.empty()) {
            haveRegions_ = true;
            const size_t cm = static_cast<size_t>(
                gi.plan.regions[0].coneMax);
            if (cm > regVal_.size()) {
                regVal_.resize(cm);
                regTim_.resize(cm);
            }
        }

        const size_t numR = gi.plan.regions.size();
        gi.nodes.resize(nodes.size() + numR);
        gi.hot.resize(nodes.size() + numR + 1);
        for (size_t r = 0; r < numR; r++) {
            const CompiledRegion& R = gi.plan.regions[r];
            NodeHot& h = gi.hot[nodes.size() + r];
            h.kind = kRegionKind;
            h.fifoBase = gi.numFifoSlots;
            h.portBase = gi.numPortSlots;
            h.need = static_cast<uint16_t>(R.inputs.size());
            gi.numFifoSlots += static_cast<int>(R.inputs.size());
            gi.numPortSlots += 1;  // placeholder port (no consumers)
            for (size_t k = 0; k < R.inputs.size(); k++)
                gi.inDesc.push_back(InputDesc{});
            gi.nodes[nodes.size() + r].region =
                static_cast<int32_t>(r);
            // The pseudo-node lives on its (single) tile: the group
            // constraint above keeps every tape op on one tile.
            if (placed)
                gi.tileOf.push_back(gi.tileOf[R.tape[0].dense]);
        }

        // One-shot initial values targeting absorbed merges must land
        // in the region's private input stream instead of the (now
        // unreachable) merge fifo.  Operand k of a tape op is input k
        // of its node, so the encoded arg locates the stream.
        if (!gi.plan.regions.empty()) {
            const CompiledRegion& R = gi.plan.regions[0];
            std::vector<int32_t> tapeOf(nodes.size(), -1);
            for (size_t t = 0; t < R.tape.size(); t++)
                tapeOf[R.tape[t].dense] = static_cast<int32_t>(t);
            for (GraphIndex::MergeInit& mi : gi.mergeInits) {
                if (gi.plan.regionOf[mi.node] < 0)
                    continue;
                const RegionOp& op = R.tape[tapeOf[mi.node]];
                const int32_t enc = R.args[op.argOff + mi.input];
                CASH_ASSERT(regArgTag(enc) == RegArg::Stream,
                            "merge init on a constant operand");
                mi.node = static_cast<int>(nodes.size());
                mi.input = regArgIndex(enc);
            }
        }
    }
    const size_t allNodes = gi.nodes.size();
    gi.hot[allNodes].fifoBase = gi.numFifoSlots;
    gi.hot[allNodes].portBase = gi.numPortSlots;

    // CSR consumer lists: count uses per producer port, then fill.
    // Region interiors are rerouted: an edge into an interior node is
    // dropped when it comes from the same region and redirected to the
    // region's collapsed input slot otherwise (one entry per input
    // port, however many interior consumers it had).
    auto interior = [&](size_t i) {
        return !gi.plan.regionOf.empty() && gi.plan.regionOf[i] >= 0;
    };
    std::vector<int> counts(gi.numPortSlots, 0);
    for (size_t i = 0; i < nodes.size(); i++) {
        if (interior(i))
            continue;
        Node* n = nodes[i];
        for (int k = 0; k < n->numInputs(); k++) {
            if (gi.inDesc[gi.hot[i].fifoBase + k].isConst)
                continue;
            const PortRef& in = n->input(k);
            auto pit = dense.find(in.node);
            CASH_ASSERT(pit != dense.end(), "input from foreign node");
            counts[gi.hot[pit->second].portBase + in.port]++;
        }
    }
    for (size_t r = 0; r < gi.plan.regions.size(); r++)
        for (const CompiledRegion::Input& ri :
             gi.plan.regions[r].inputs)
            counts[gi.hot[ri.node].portBase + ri.port]++;
    gi.consOff.resize(gi.numPortSlots + 1);
    int total = 0;
    for (int p = 0; p < gi.numPortSlots; p++) {
        gi.consOff[p] = total;
        total += counts[p];
    }
    gi.consOff[gi.numPortSlots] = total;
    gi.cons.resize(total);
    std::vector<int> fill(gi.consOff.begin(),
                          gi.consOff.end() - 1);
    for (size_t i = 0; i < nodes.size(); i++) {
        if (interior(i))
            continue;
        Node* n = nodes[i];
        for (int k = 0; k < n->numInputs(); k++) {
            if (gi.inDesc[gi.hot[i].fifoBase + k].isConst)
                continue;
            const PortRef& in = n->input(k);
            int prod = dense.find(in.node)->second;
            int port = gi.hot[prod].portBase + in.port;
            gi.cons[fill[port]++] = {static_cast<int32_t>(i),
                                     gi.hot[i].fifoBase + k};
        }
    }
    for (size_t r = 0; r < gi.plan.regions.size(); r++) {
        const CompiledRegion& R = gi.plan.regions[r];
        const int pseudo = static_cast<int>(nodes.size() + r);
        for (size_t k = 0; k < R.inputs.size(); k++) {
            int port = gi.hot[R.inputs[k].node].portBase +
                       R.inputs[k].port;
            gi.cons[fill[port]++] = {static_cast<int32_t>(pseudo),
                                     gi.hot[pseudo].fifoBase +
                                         static_cast<int32_t>(k)};
        }
    }
    // Fabric: per-consumer hop cost and credit channel, parallel to
    // the CSR `cons` array so output() charges them with one lookup.
    if (placed) {
        gi.consHop.assign(gi.cons.size(), 0);
        gi.consChan.assign(gi.cons.size(), -1);
        const FabricModel& fm = fabric_->model;
        const int T = fm.numTiles();
        for (size_t i = 0; i < allNodes; i++) {
            const int srcTile = gi.tileOf[i];
            for (int p = gi.hot[i].portBase; p < gi.hot[i + 1].portBase;
                 p++)
                for (int c = gi.consOff[p]; c < gi.consOff[p + 1];
                     c++) {
                    const int dstTile = gi.tileOf[gi.cons[c].node];
                    const int d = fm.hopDist(srcTile, dstTile);
                    if (d == 0)
                        continue;
                    gi.consHop[c] = d * fm.hopLatency;
                    if (fm.linkCredits > 0)
                        gi.consChan[c] = srcTile * T + dstTile;
                }
        }
    }

    // Distinguished nodes, resolved once so activation start never
    // touches a map.
    for (const Node* p : g->paramNodes)
        gi.paramDense.push_back(dense.at(p));
    gi.initialTokenDense = dense.at(g->initialToken);
    graphs_[g->name] = std::move(gi);
}

void
DataflowSimulator::linkCallees()
{
    // Resolve callee GraphIndex pointers after all graphs are indexed;
    // std::map nodes are stable, so the pointers stay valid.  A call to
    // a graph that was not provided stays null and is a fatal error if
    // it ever fires (matching the old by-name lookup).
    for (auto& [name, gi] : graphs_) {
        (void)name;
        for (NodeIndex& ni : gi.nodes) {
            if (!ni.n)
                continue;  // region pseudo-node
            if (ni.n->kind != NodeKind::Call || !ni.n->callee)
                continue;
            auto it = graphs_.find(ni.n->callee->name);
            if (it != graphs_.end())
                ni.callee = &it->second;
        }
    }
}

void
DataflowSimulator::failRun(SimOutcome outcome, std::string why)
{
    // First failure wins; later ones are consequences of the first.
    if (runOutcome_ != SimOutcome::Ok)
        return;
    runOutcome_ = outcome;
    runError_ = std::move(why);
}

void
DataflowSimulator::reset()
{
    image_.reset();
    memsys_.reset();
    stackPtr_ = MemoryLayout::kStackTop;
}

DataflowSimulator::Activation*
DataflowSimulator::startActivation(const GraphIndex& gi,
                                   const std::vector<uint32_t>& args,
                                   uint64_t when, Activation* parent,
                                   int parentCallNode)
{
    // Frame check first, before any allocation or parent accounting,
    // so a refused activation leaves no half-initialized state behind.
    if (gi.g->hasFrame && stackPtr_ < gi.g->frameBytes + 0x1000) {
        failRun(SimOutcome::StackOverflow,
                "simulated stack overflow starting '" + gi.g->name +
                    "' (frame " + std::to_string(gi.g->frameBytes) +
                    " bytes, stack pointer " +
                    std::to_string(stackPtr_) + ")");
        return nullptr;
    }

    Activation* a;
    if (!freePool_.empty()) {
        a = freePool_.back();
        freePool_.pop_back();
        a->pooled = false;
        actRecycled_++;
    } else {
        activations_.push_back(std::make_unique<Activation>());
        a = activations_.back().get();
    }
    a->id = nextActId_++;
    a->gi = &gi;
    a->parent = parent;
    a->parentCallNode = parentCallNode;
    a->startTime = when;
    a->frameBase = 0;
    a->frameSize = 0;
    a->inflight = 0;
    a->liveChildren = 0;
    a->finished = false;
    a->fifo.resize(gi.numFifoSlots);
    for (ItemFifo& f : a->fifo)
        f.clear();  // keeps spill capacity across recycling
    a->portClock.assign(gi.numPortSlots, 0);
    a->readyCnt.assign(gi.nodes.size(), 0);
    a->mergeMode.assign(gi.nodes.size(), Activation::MergeMode::Fwd);
    a->tkCounter = gi.tkInit;
    if (!gi.plan.regions.empty()) {
        const CompiledRegion& R = gi.plan.regions[0];
        a->regRing.resize(static_cast<size_t>(R.numRings));
        for (RegRing& r : a->regRing)
            r.clear();  // keeps ring capacity across recycling
        a->regConsumed.assign(static_cast<size_t>(R.totalArgs), 0);
        a->regMergeMode.assign(static_cast<size_t>(R.numMerges), 0);
        a->regMergeTime.assign(static_cast<size_t>(R.numMerges), 0);
    }
    a->regDirty = 0;
    actSpawned_++;
    liveActs_++;
    if (liveActs_ > peakLiveActs_)
        peakLiveActs_ = liveActs_;
    if (parent)
        parent->liveChildren++;

    const Graph* g = gi.g;
    CASH_ASSERT(args.size() == static_cast<size_t>(g->numParams),
                "bad simulated argument count for " + g->name);

    if (g->hasFrame) {
        a->frameSize = g->frameBytes;
        stackPtr_ -= a->frameSize;
        a->frameBase = stackPtr_;
    }

    // Inject parameters and the initial token.
    for (size_t p = 0; p < gi.paramDense.size(); p++) {
        uint32_t v = p < args.size() ? args[p] : a->frameBase;
        output(a, gi.paramDense[p], 0, v, when);
    }
    output(a, gi.initialTokenDense, 0, 0, when);

    // One-shot initial values for merge inputs wired to constants.
    for (const GraphIndex::MergeInit& mi : gi.mergeInits)
        deliver(a, mi.node, gi.hot[mi.node].fifoBase + mi.input,
                Item{mi.value, false}, when);
    return a;
}

void
DataflowSimulator::recycle(Activation* a)
{
    a->pooled = true;
    freePool_.push_back(a);
}

void
DataflowSimulator::releaseActivations()
{
    freePool_.clear();
    activations_.clear();
}

// The three hottest paths in the system — one deliver per event, one
// readiness check per delivery — are force-inlined into their (sole,
// same-TU) callers; the compiler's size heuristics otherwise leave
// them out of line.
inline __attribute__((always_inline)) void
DataflowSimulator::deliver(Activation* a, int node, int slot,
                           Item item, uint64_t when)
{
    // Macro engine: deliveries into a super-operator bypass the event
    // queue entirely — the cascade is a confluent max-plus replay, so
    // absorbing the item immediately (even with a future timestamp)
    // computes the same values and completion times the queue walk
    // would, without a calendar round-trip per boundary input.
    if (haveRegions_ &&
        a->gi->hot[node].kind == kRegionKind) {
        item.time = when;
        fireRegion(a, slot - a->gi->hot[node].fifoBase, item);
        return;
    }
    Event e;
    e.seq = seq_++;
    e.act = a;
    e.node = node;
    e.slot = slot;
    e.item = item;
    // Injected fault: silently lose this delivery.  Keyed on the
    // deterministic sequence number, so the same spec drops the same
    // logical event on every run.
    if (faults_ && faults_->dropEvent(e.seq)) {
        droppedEvents_++;
        return;
    }
    a->inflight++;
    if (when <= now_) {
        // Zero-latency delivery (the common case: wires between
        // combinational operators) — straight onto the worklist.
        bucketOps_++;
        ready_.push_back(e);
    } else if (when - now_ <= kWheelSize) {
        bucketOps_++;
        const uint64_t s = when & (kWheelSize - 1);
        wheel_[s].push_back(e);
        wheelBits_[s >> 6] |= 1ull << (s & 63);
        wheelCount_++;
    } else {
        // Coarse wheels: level j holds events whose band index
        // (when >> kWheelBits*(j+1)) is within kWheelSize of now_'s —
        // at any moment each band residue class maps to one absolute
        // band, so insertion is a single push (see advanceTime).
        int j = 0;
        for (; j < kCoarseLevels; j++) {
            const uint64_t shift = kWheelBits * (j + 1);
            if ((when >> shift) - (now_ >> shift) < kWheelSize)
                break;
        }
        if (j < kCoarseLevels) {
            bucketOps_++;
            const uint64_t shift = kWheelBits * (j + 1);
            const uint64_t s = (when >> shift) & (kWheelSize - 1);
            coarse_[j][s].push_back({when, e});
            coarseBits_[j][s >> 6] |= 1ull << (s & 63);
            coarseCount_[j]++;
        } else {
            heapOps_++;
            overflow_.push({when, e});
        }
    }
}

bool
DataflowSimulator::advanceTime()
{
    // Candidate dispatch time from the fine wheel and the heap, then
    // pull down any coarse band that could precede it; repeat until
    // the candidate is provably the global minimum.  Bands migrate
    // one level at a time, so an event costs at most kCoarseLevels+1
    // O(1) pushes over its queue lifetime.
    for (;;) {
        uint64_t next = 0;
        bool have = false;
        if (wheelCount_ > 0) {
            // Nearest occupied fine slot: circular ctz scan over the
            // occupancy words, starting at now_ + 1.
            const uint64_t s = (now_ + 1) & (kWheelSize - 1);
            uint64_t dist;  // occupied-slot distance from s
            uint64_t w = s >> 6;
            uint64_t bits = wheelBits_[w] >> (s & 63);
            if (bits) {
                dist = static_cast<uint64_t>(__builtin_ctzll(bits));
            } else {
                dist = 64 - (s & 63);
                w = (w + 1) & (kWheelWords - 1);
                while (!(bits = wheelBits_[w])) {
                    dist += 64;
                    w = (w + 1) & (kWheelWords - 1);
                }
                dist += static_cast<uint64_t>(__builtin_ctzll(bits));
            }
            next = now_ + 1 + dist;
            have = true;
        }
        if (!overflow_.empty() &&
            (!have || overflow_.top().time < next)) {
            next = overflow_.top().time;
            have = true;
        }
        // Nearest pending coarse band (by band start) across levels.
        // Pending band indices live in [cStart, cStart + 255] with
        // cStart = (now_+1) >> shift: when now_+1 is band-aligned (as
        // after a band-edge jump below), now_'s own band can hold no
        // future time and the window starts one past it — scanning
        // from now_'s residue would misresolve a wrapped slot to a
        // band 256 too low and leap the clock over pending events.
        int bj = -1;
        uint64_t bandIdx = 0, bandLo = 0;
        for (int j = 0; j < kCoarseLevels; j++) {
            if (coarseCount_[j] == 0)
                continue;
            const uint64_t shift = kWheelBits * (j + 1);
            const uint64_t cStart = (now_ + 1) >> shift;
            const uint64_t s = cStart & (kWheelSize - 1);
            uint64_t dist;
            uint64_t w = s >> 6;
            uint64_t bits = coarseBits_[j][w] >> (s & 63);
            if (bits) {
                dist = static_cast<uint64_t>(__builtin_ctzll(bits));
            } else {
                dist = 64 - (s & 63);
                w = (w + 1) & (kWheelWords - 1);
                while (!(bits = coarseBits_[j][w])) {
                    dist += 64;
                    w = (w + 1) & (kWheelWords - 1);
                }
                dist += static_cast<uint64_t>(__builtin_ctzll(bits));
            }
            const uint64_t lo = (cStart + dist) << shift;
            if (bj < 0 || lo < bandLo) {
                bj = j;
                bandIdx = cStart + dist;
                bandLo = lo;
            }
        }
        if (bj < 0 || (have && next < bandLo)) {
            if (!have)
                return false;  // nothing pending anywhere
            now_ = next;
            break;
        }
        // The band might hold the earliest event.  Nothing pends in
        // (now_, bandLo): the fine/heap candidate is >= bandLo and
        // every other band starts later — so jumping now_ to the band
        // edge skips only idle cycles, and re-establishes the lower
        // level's residue-window invariant for the migrated times.
        if (bandLo > now_ + 1)
            now_ = bandLo - 1;
        const uint64_t bs = bandIdx & (kWheelSize - 1);
        std::vector<TimedEvent>& band = coarse_[bj][bs];
        const bool dirty = coarseDirty_[bj][bs] != 0;
        coarseDirty_[bj][bs] = 0;
        coarseBits_[bj][bs >> 6] &= ~(1ull << (bs & 63));
        coarseCount_[bj] -= band.size();
        if (bj == 0) {
            for (const TimedEvent& te : band) {
                const uint64_t fs = te.time & (kWheelSize - 1);
                // An occupied target means same-time events whose
                // seqs interleave with ours: flag for a drain sort.
                if (dirty || !wheel_[fs].empty())
                    wheelDirty_[fs] = 1;
                wheel_[fs].push_back(te.e);
                wheelBits_[fs >> 6] |= 1ull << (fs & 63);
            }
            wheelCount_ += band.size();
        } else {
            const uint64_t lshift = kWheelBits * bj;
            for (const TimedEvent& te : band) {
                const uint64_t fs =
                    (te.time >> lshift) & (kWheelSize - 1);
                if (dirty || !coarse_[bj - 1][fs].empty())
                    coarseDirty_[bj - 1][fs] = 1;
                coarse_[bj - 1][fs].push_back(te);
                coarseBits_[bj - 1][fs >> 6] |= 1ull << (fs & 63);
            }
            coarseCount_[bj - 1] += band.size();
        }
        band.clear();
    }

    // Drain the slot for now_.  Every event in a slot shares one
    // timestamp: insertions only cover (now_, now_ + kWheelSize], a
    // window that holds each residue class exactly once.
    const uint64_t ds = now_ & (kWheelSize - 1);
    std::vector<Event>& slot = wheel_[ds];
    wheelBits_[ds >> 6] &= ~(1ull << (ds & 63));
    size_t fromWheel = slot.size();
    wheelCount_ -= fromWheel;
    const bool dirtySlot = wheelDirty_[ds] != 0 && fromWheel > 1;
    wheelDirty_[ds] = 0;
    bool merged = false;
    while (!overflow_.empty() && overflow_.top().time == now_) {
        slot.push_back(overflow_.top().e);
        overflow_.pop();
        merged = true;
    }
    // Direct inserts and heap pops are each seq-sorted already; a mix
    // of both — or a slot flagged by band migration — needs a re-sort
    // to restore global (time, seq) order.
    if (dirtySlot || (merged && fromWheel > 0))
        std::sort(slot.begin(), slot.end(),
                  [](const Event& x, const Event& y) {
                      return x.seq < y.seq;
                  });
    // The caller drained ready_, so adopt the slot's buffer wholesale;
    // the slot inherits the empty one for future inserts.
    std::swap(ready_, slot);
    return true;
}

void
DataflowSimulator::output(Activation* a, int node, int port,
                          uint32_t value, uint64_t when, bool eos)
{
    const GraphIndex* gi = a->gi;
    int p = gi->hot[node].portBase + port;
    uint64_t& clock = a->portClock[p];
    if (when < clock)
        when = clock;  // in-order delivery per output port
    clock = when;
    const Item item{value, eos};
    if (!fabricActive_ || gi->consHop.empty()) {
        for (int c = gi->consOff[p]; c < gi->consOff[p + 1]; c++)
            deliver(a, gi->cons[c].node, gi->cons[c].slot, item, when);
        return;
    }
    // Tiled fabric: charge per-hop latency on every cross-tile edge,
    // plus credit-based backpressure when the tile-pair channel is
    // bounded.  Per-edge FIFO order is preserved: the hop cost is a
    // per-edge constant, and the earliest-free credit slot is monotone
    // over a channel's (time-ordered) sends.
    const int credits = fabric_->model.linkCredits;
    for (int c = gi->consOff[p]; c < gi->consOff[p + 1]; c++) {
        uint64_t arrive = when;
        const int32_t hop = gi->consHop[c];
        if (hop) {
            fabricCrossDeliveries_++;
            uint64_t depart = when;
            const int32_t chan = gi->consChan[c];
            if (chan >= 0) {
                uint64_t* slot =
                    &chanFree_[static_cast<size_t>(chan) * credits];
                uint64_t* best = slot;
                for (int k = 1; k < credits; k++)
                    if (slot[k] < *best)
                        best = &slot[k];
                if (*best > depart) {
                    fabricCreditStalls_++;
                    fabricCreditStallCycles_ += *best - depart;
                    depart = *best;
                }
                arrive = depart + hop;
                *best = arrive;  // credit frees on arrival
            } else {
                arrive = when + hop;
            }
            fabricHopCycles_ += arrive - when;
        }
        deliver(a, gi->cons[c].node, gi->cons[c].slot, item, arrive);
    }
}

inline __attribute__((always_inline)) bool
DataflowSimulator::ready(const Activation* a, int node) const
{
    const NodeHot& h = a->gi->hot[node];
    NodeKind k = static_cast<NodeKind>(h.kind);
    if (k != NodeKind::Merge && k != NodeKind::TokenGen)
        return a->readyCnt[node] == h.need;
    const ItemFifo* fifo = a->fifo.data() + h.fifoBase;
    if (k == NodeKind::TokenGen) {
        if (!fifo[1].empty())
            return true;  // token returns always processable
        if (fifo[0].empty())
            return false;
        if (fifo[0].front().value)
            return true;  // true predicate
        // A false predicate (reset) must wait until all owed tokens
        // have been paid back by the leading loop.
        return a->tkCounter[a->gi->nodes[node].tkSlot] >= 0;
    }
    const NodeIndex& ni = a->gi->nodes[node];
    switch (a->mergeMode[node]) {
      case Activation::MergeMode::Fwd:
        for (int i : ni.fwdInputs)
            if (!fifo[i].empty())
                return true;
        return false;
      case Activation::MergeMode::AwaitDecider:
        return a->gi->inDesc[h.fifoBase + ni.deciderIdx].isConst ||
               !fifo[ni.deciderIdx].empty();
      case Activation::MergeMode::Back:
        if (ni.strictBack) {
            for (int i : ni.backInputs)
                if (fifo[i].empty())
                    return false;
            return true;
        }
        for (int i : ni.backInputs)
            if (!fifo[i].empty())
                return true;
        return false;
    }
    return false;
}

void
DataflowSimulator::fireMerge(Activation* a, int node, uint64_t now)
{
    const NodeIndex& ni = a->gi->nodes[node];
    ItemFifo* fifo = a->fifo.data() + a->gi->hot[node].fifoBase;
    auto& mode = a->mergeMode[node];
    // After forwarding a value, a mu-merge consults its decider (the
    // loop-continuation predicate of that activation) to choose
    // between the back-edge and initial streams next.
    auto afterEmit = [&]() {
        mode = ni.deciderIdx >= 0 ? Activation::MergeMode::AwaitDecider
                                  : Activation::MergeMode::Fwd;
    };

    switch (mode) {
      case Activation::MergeMode::Fwd: {
        // Discard EOS markers from not-taken edges; forward the first
        // pending value.
        for (int i : ni.fwdInputs) {
            ItemFifo& q = fifo[i];
            if (q.empty())
                continue;
            Item it = q.front();
            popItem(a, node, q);
            if (it.eos)
                return;  // retried while ready
            output(a, node, 0, it.value, now);
            afterEmit();
            return;
        }
        panic("merge fired without forward inputs");
      }
      case Activation::MergeMode::AwaitDecider: {
        const InputDesc& dsc =
            a->gi->inDesc[a->gi->hot[node].fifoBase + ni.deciderIdx];
        uint32_t d;
        if (dsc.isConst) {
            d = dsc.constValue;
        } else {
            ItemFifo& q = fifo[ni.deciderIdx];
            Item it = q.front();
            popItem(a, node, q);
            CASH_ASSERT(!it.eos,
                        "EOS item reached a non-merge consumer");
            d = it.value;
        }
        mode = d ? Activation::MergeMode::Back
                 : Activation::MergeMode::Fwd;
        return;
      }
      case Activation::MergeMode::Back: {
        if (ni.strictBack) {
            // One item from every back eta; exactly one carries the
            // iteration value.  An all-EOS round is the drained tail
            // of the previous loop execution.
            bool gotValue = false;
            uint32_t value = 0;
            for (int i : ni.backInputs) {
                ItemFifo& q = fifo[i];
                Item it = q.front();
                popItem(a, node, q);
                if (!it.eos) {
                    CASH_ASSERT(!gotValue,
                                "two back-edge values in one iteration");
                    gotValue = true;
                    value = it.value;
                }
            }
            if (gotValue) {
                output(a, node, 0, value, now);
                afterEmit();
            }
            return;
        }
        // Loose mode (back edges from other hyperblocks): consume
        // items as they arrive, discarding stale EOS markers.
        for (int i : ni.backInputs) {
            ItemFifo& q = fifo[i];
            if (q.empty())
                continue;
            Item it = q.front();
            popItem(a, node, q);
            if (it.eos)
                return;
            output(a, node, 0, it.value, now);
            afterEmit();
            return;
        }
        panic("merge fired without back inputs");
      }
    }
}

inline __attribute__((always_inline)) void
DataflowSimulator::tryFire(Activation* a, int node, uint64_t now)
{
    // Loop: a firing can unblock the same node again without a fresh
    // delivery (e.g. a token generator whose deferred reset becomes
    // processable after a token repayment).
    while (ready(a, node))
        fire(a, node, now);
}

void
DataflowSimulator::fire(Activation* a, int node, uint64_t now)
{
    const GraphIndex* gi = a->gi;
    const NodeHot& h = gi->hot[node];
    // Region pseudo-nodes never travel the fifo/tryFire path: the run
    // loop feeds their deliveries straight into fireRegion().
    CASH_ASSERT(h.kind != kRegionKind, "super-operator in fire()");
    firings_++;
    const NodeKind kind = static_cast<NodeKind>(h.kind);
    fireCounts_[static_cast<size_t>(kind)]++;
    if (traceLevel >= 2)
        trace(2, "t=" + std::to_string(now) + " act" +
                     std::to_string(a->id) + " fire " +
                     gi->nodes[node].n->str());

    // Input bases hoisted once; takeIn(i) consumes input i of this
    // node (constants read from the descriptor, values popped with
    // the readiness counter maintained).
    const InputDesc* dsc = gi->inDesc.data() + h.fifoBase;
    ItemFifo* fifo = a->fifo.data() + h.fifoBase;
    auto takeIn = [&](int i) -> uint32_t {
        const InputDesc& d = dsc[i];
        if (d.isConst)
            return d.constValue;
        ItemFifo& q = fifo[i];
        CASH_ASSERT(!q.empty(), "taking from empty FIFO");
        Item it = q.front();
        q.pop_front();
        if (q.empty())
            a->readyCnt[node]--;
        CASH_ASSERT(!it.eos, "EOS item reached a non-merge consumer");
        return it.value;
    };

    switch (kind) {
      case NodeKind::Arith: {
        const Op op = static_cast<Op>(h.op);
        uint32_t v;
        if (h.unary)
            v = evalUnary(op, takeIn(0));
        else {
            uint32_t x = takeIn(0);
            uint32_t y = takeIn(1);
            v = evalBinary(op, x, y);
        }
        output(a, node, 0, v, now + h.latency);
        break;
      }
      case NodeKind::Mux: {
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        uint32_t out = 0;
        for (int i = 0; i < nin; i += 2) {
            uint32_t p = takeIn(i);
            uint32_t d = takeIn(i + 1);
            if (p)
                out = d;
        }
        output(a, node, 0, out, now);
        break;
      }
      case NodeKind::Merge:
        fireMerge(a, node, now);
        break;
      case NodeKind::Eta: {
        uint32_t v = takeIn(0);
        uint32_t p = takeIn(1);
        if (traceLevel >= 2)
            trace(2, "  eta n" +
                         std::to_string(gi->nodes[node].n->id) +
                         " v=" + std::to_string(v) + " p=" +
                         std::to_string(p));
        if (p)
            output(a, node, 0, v, now);
        else
            output(a, node, 0, 0, now, /*eos=*/true);
        break;
      }
      case NodeKind::Combine: {
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        for (int i = 0; i < nin; i++)
            takeIn(i);
        output(a, node, 0, 0, now);
        break;
      }
      case NodeKind::Load: {
        const Node* n = gi->nodes[node].n;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        uint32_t addr = takeIn(2);
        if (traceLevel >= 2)
            trace(2, "  load n" + std::to_string(n->id) + " p=" +
                         std::to_string(p) + " addr=" +
                         std::to_string(addr));
        if (!p) {
            nullified_++;
            output(a, node, 0, 0, now);  // arbitrary result (§3.1)
            output(a, node, 1, 0, now);
            break;
        }
        dynLoads_++;
        uint32_t v = image_.load(addr, n->size, n->signExtend);
        MemorySystem::Timing t =
            memsys_.request(addr, false, n->size, now);
        output(a, node, 0, v, t.complete);
        // The token signals that the access is ordered; it may be
        // generated before the data returns (§3.2).
        output(a, node, 1, 0, t.start + 1);
        break;
      }
      case NodeKind::Store: {
        const Node* n = gi->nodes[node].n;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        uint32_t addr = takeIn(2);
        uint32_t v = takeIn(3);
        if (traceLevel >= 2)
            trace(2, "  store n" + std::to_string(n->id) + " p=" +
                         std::to_string(p) + " addr=" +
                         std::to_string(addr) + " v=" +
                         std::to_string(v));
        if (!p) {
            nullified_++;
            output(a, node, 0, 0, now);
            break;
        }
        dynStores_++;
        image_.store(addr, v, n->size);
        MemorySystem::Timing t =
            memsys_.request(addr, true, n->size, now);
        output(a, node, 0, 0, t.start + 1);
        break;
      }
      case NodeKind::Call: {
        const NodeIndex& ni = gi->nodes[node];
        const Node* n = ni.n;
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        std::vector<uint32_t> args;
        for (int i = 2; i < nin; i++)
            args.push_back(takeIn(i));
        if (!p) {
            output(a, node, 0, 0, now);
            output(a, node, 1, 0, now);
            break;
        }
        callsMade_++;
        CASH_ASSERT(n->callee, "call without callee");
        if (!ni.callee) {
            failRun(SimOutcome::MissingGraph,
                    "no compiled graph for function '" +
                        n->callee->name + "' (called from '" +
                        gi->g->name + "')");
            break;
        }
        startActivation(*ni.callee, args, now + 1, a, node);
        break;
      }
      case NodeKind::Return: {
        const int nin = gi->hot[node + 1].fifoBase - h.fifoBase;
        uint32_t p = takeIn(0);
        takeIn(1);  // token
        uint32_t v = 0;
        bool hasV = nin == 3;
        if (hasV)
            v = takeIn(2);
        if (p)
            finishActivation(a, v, hasV, now);
        break;
      }
      case NodeKind::TokenGen: {
        const NodeIndex& ni = gi->nodes[node];
        int64_t& c = a->tkCounter[ni.tkSlot];
        // Token returns have priority: they pay outstanding debts.
        if (!fifo[1].empty()) {
            takeIn(1);
            bool owed = c < 0;
            c++;
            if (owed)
                output(a, node, 0, 0, now);
        } else {
            // A false predicate (loop completed) may only be processed
            // once every debt is paid; ready() guarantees that.
            uint32_t p = takeIn(0);
            if (p) {
                c--;
                if (c >= 0)
                    output(a, node, 0, 0, now);
            } else {
                CASH_ASSERT(c >= 0, "token generator reset while owing");
                c = ni.n->tkCount;  // reset (§6.3)
                // Emit the loop-completion token so per-activation
                // token balance holds in the single-hyperblock ring
                // encoding (see DESIGN.md).
                output(a, node, 0, 0, now);
            }
        }
        break;
      }
      case NodeKind::Const:
      case NodeKind::Param:
      case NodeKind::InitialToken:
        panic("source node fired");
    }
}

void
DataflowSimulator::gcRegRing(Activation* a, const CompiledRegion& R,
                             int32_t ring)
{
    // Reclaimable prefix: everything below the slowest consumer's
    // position (reads are absolute indices, so advancing head never
    // moves data — it only keeps the grow trigger honest).
    RegRing& r = a->regRing[ring];
    uint64_t low = UINT64_MAX;
    for (int32_t gp = R.gcOff[ring]; gp < R.gcOff[ring + 1]; gp++) {
        const uint64_t c = a->regConsumed[R.gcArg[gp]];
        if (c < low)
            low = c;
    }
    if (low != UINT64_MAX && low > r.head)
        r.head = low;
}

void
DataflowSimulator::fireRegion(Activation* a, int slot, const Item& it)
{
    // Absorb the delivery: one collapsed push stands for the original
    // interior fan-out of this producer port (the collapsed delivery
    // itself never entered the queue, so the full edge count is
    // credited back to the equivalent-event total).
    const CompiledRegion& R0 = a->gi->plan.regions[0];
    a->regRing[slot].push(it.value, it.time, it.eos);
    if (a->regRing[slot].size() > 64)
        gcRegRing(a, R0, slot);
    eqExtraEvents_ += static_cast<uint64_t>(R0.inputEdges[slot]);
    regionsFired_++;
    a->regDirty++;
    regPending_.emplace_back(a, slot);
}

bool
DataflowSimulator::flushRegions()
{
    if (regPending_.empty())
        return false;
    // Entries appended by cascade emissions extend the loop; batching
    // consecutive same-activation entries into one worklist pass is
    // what makes deferral pay — all of a cycle's deliveries share one
    // cascade, and its cones see every new item at once.
    for (size_t i = 0; i < regPending_.size(); i++) {
        Activation* act = regPending_[i].first;
        act->regDirty--;
        seedRegion(act, regPending_[i].second);
        while (i + 1 < regPending_.size() &&
               regPending_[i + 1].first == act) {
            i++;
            act->regDirty--;
            seedRegion(act, regPending_[i].second);
        }
        cascadeRegion(act);
        if (runOutcome_ != SimOutcome::Ok)
            break;
    }
    regPending_.clear();
    return true;
}

void
DataflowSimulator::seedRegion(Activation* a, int slot)
{
    const CompiledRegion& R = a->gi->plan.regions[0];
    if (regInWork_.size() < R.tape.size())
        regInWork_.resize(R.tape.size(), 0);
    for (int32_t s = R.seedOff[slot]; s < R.seedOff[slot + 1]; s++) {
        const int32_t t = R.seedOp[s];
        if (!regInWork_[t]) {
            regInWork_[t] = 1;
            regNext_.push_back(R.scanPos[t]);
        }
    }
}

void
DataflowSimulator::cascadeRegion(Activation* a)
{
    const GraphIndex* gi = a->gi;
    const CompiledRegion& R = gi->plan.regions[0];
    const int32_t nIn = static_cast<int32_t>(R.inputs.size());
    uint64_t inlined = 0;

    // Cascade: fire every pending op as often as its streams allow; a
    // production flags the consumers of its ring.  Pending ops are
    // visited in scan order — merges, then sinks topologically — so
    // within one wave every producer fires before its consumers and a
    // consumer is visited at most once; only back edges (through
    // merges) start another wave.  Result times are the max over
    // dynamic operand times plus the op latency: pure operators
    // AND-fire, so arrival times compose max-plus along interior
    // paths, exactly as the event engine would discover them one
    // delivery at a time.  Constant operands impose no time
    // constraint.
    while (!regNext_.empty() && runOutcome_ == SimOutcome::Ok) {
        std::swap(regWave_, regNext_);
        regNext_.clear();
        std::sort(regWave_.begin(), regWave_.end());
        for (size_t wi = 0; wi < regWave_.size(); wi++) {
        const int32_t si = regWave_[wi];
        const int32_t t = R.scanOrder[si];
        regInWork_[t] = 0;
        const RegionOp& op = R.tape[t];
        const int32_t* args = R.args.data() + op.argOff;
        uint64_t* cons = a->regConsumed.data() + op.argOff;
        RegRing* out = op.outRing >= 0 ? &a->regRing[op.outRing]
                                       : nullptr;
        uint64_t nfire = 0;
        bool produced = false;

        if (op.mSlot >= 0) {
            // Absorbed mu-merge: replay the mode machine stream-
            // synchronously.  Each firing happens at the maximum of
            // the consumed items' times and the previous firing's
            // time — the dispatch cycle at which the event engine
            // would perform it (see region_compiler.h).  Interior
            // reads are deliveries the event engine would have
            // dispatched, counted as they are consumed because the
            // subset consumed per firing depends on the mode.
            const int8_t* roles = R.argRole.data() + op.argOff;
            const int32_t fwdK = op.fwdK;
            const int32_t deciderK = op.deciderK;
            uint8_t& mode = a->regMergeMode[op.mSlot];
            uint64_t& tMode = a->regMergeTime[op.mSlot];
            auto avail = [&](int32_t k) {
                return a->regRing[regArgIndex(args[k])].tail >
                       cons[k];
            };
            uint32_t tv = 0;
            bool teos = false;
            uint64_t tt = 0;
            auto take = [&](int32_t k) {
                const int32_t ring = regArgIndex(args[k]);
                const RegRing& r = a->regRing[ring];
                const RegItem& it = r.buf[cons[k]++ & r.mask];
                if (ring >= nIn)
                    eqExtraEvents_++;
                tv = it.val;
                teos = it.eos != 0;
                tt = it.tim;
            };
            auto emit = [&](uint32_t v, uint64_t when) {
                if (out) {
                    out->push(v, when, false);
                    produced = true;
                }
                if (op.hasExternal)
                    output(a, op.dense, 0, v, when, false);
                mode = deciderK >= 0 ? 1 : 0;
            };
            for (;;) {
                if (mode == 0) {  // forward
                    if (!avail(fwdK))
                        break;
                    take(fwdK);
                    tMode = std::max(tt, tMode);
                    nfire++;
                    if (!teos)
                        emit(tv, tMode);
                    // EOS from a not-taken edge: discard, stay put.
                } else if (mode == 1) {  // consult decider
                    uint32_t d;
                    if (regArgTag(args[deciderK]) == RegArg::Const) {
                        d = R.constPool[regArgIndex(args[deciderK])];
                    } else {
                        if (!avail(deciderK))
                            break;
                        take(deciderK);
                        CASH_ASSERT(
                            !teos,
                            "EOS item reached a non-merge consumer");
                        tMode = std::max(tt, tMode);
                        d = tv;
                    }
                    nfire++;
                    mode = d ? 2 : 0;
                } else {  // back round (strict: one item per input)
                    int32_t backs = 0;
                    bool all = true;
                    for (int32_t k = 0; k < op.argCnt; k++)
                        if (roles[k] == kRegRoleBack) {
                            backs++;
                            if (!avail(k)) {
                                all = false;
                                break;
                            }
                        }
                    if (backs == 0 || !all)
                        break;
                    bool gotValue = false;
                    uint32_t value = 0;
                    uint64_t tF = tMode;
                    for (int32_t k = 0; k < op.argCnt; k++) {
                        if (roles[k] != kRegRoleBack)
                            continue;
                        take(k);
                        tF = std::max(tt, tF);
                        if (!teos) {
                            CASH_ASSERT(
                                !gotValue,
                                "two back-edge values in one "
                                "iteration");
                            gotValue = true;
                            value = tv;
                        }
                    }
                    tMode = tF;
                    nfire++;
                    // An all-EOS round is the drained tail of the
                    // previous loop execution: consume, stay back.
                    if (gotValue)
                        emit(value, tF);
                }
            }
            firings_ += nfire;
            fireCounts_[static_cast<size_t>(NodeKind::Merge)] +=
                nfire;
            inlined += nfire;
        } else {
            // Cone visit: the sink and its fused chain members fire
            // as a unit (see region_compiler.h).  Firings available
            // now: min over the cone's stream operands — interior
            // register edges supply exactly one value per firing by
            // construction.
            const int32_t cOff = R.coneOff[t];
            const int32_t cEnd = R.coneOff[t + 1];
            uint64_t navail = UINT64_MAX;
            for (int32_t g = R.gateOff[t]; g < R.gateOff[t + 1];
                 g++) {
                const uint64_t got =
                    a->regRing[R.gateRing[g]].tail -
                    a->regConsumed[R.gateArg[g]];
                if (got < navail) {
                    navail = got;
                    if (navail == 0)
                        break;  // an empty stream settles it
                }
            }
            if (navail == 0 || navail == UINT64_MAX)
                continue;
            nfire = navail;

            for (uint64_t f = 0; f < nfire; f++) {
                for (int32_t ci = cOff; ci < cEnd; ci++) {
                    const RegionOp& m = R.tape[R.coneOp[ci]];
                    const int32_t* margs = R.args.data() + m.argOff;
                    uint64_t* mcons =
                        a->regConsumed.data() + m.argOff;
                    uint64_t when = 0;
                    auto read = [&](int32_t k) -> uint32_t {
                        const int32_t enc = margs[k];
                        const RegArg tag = regArgTag(enc);
                        if (tag == RegArg::Const)
                            return R.constPool[regArgIndex(enc)];
                        if (tag == RegArg::Reg) {
                            const int32_t s = regArgIndex(enc);
                            if (regTim_[s] > when)
                                when = regTim_[s];
                            return regVal_[s];
                        }
                        const RegRing& r =
                            a->regRing[regArgIndex(enc)];
                        const RegItem& item =
                            r.buf[mcons[k]++ & r.mask];
                        CASH_ASSERT(
                            !item.eos,
                            "EOS item reached a non-merge consumer");
                        if (item.tim > when)
                            when = item.tim;
                        return item.val;
                    };
                    uint32_t v = 0;
                    bool eos = false;
                    switch (m.kind) {
                      case NodeKind::Arith:
                        v = m.unary
                                ? evalUnary(m.op, read(0))
                                : evalBinary(m.op, read(0),
                                             read(1));
                        break;
                      case NodeKind::Mux: {
                        uint32_t mv[kMaxRegionMuxArgs];
                        for (int32_t k = 0; k < m.argCnt; k++)
                            mv[k] = read(k);
                        v = evalMuxPairs(
                            mv, static_cast<int>(m.argCnt));
                        break;
                      }
                      case NodeKind::Combine:
                        for (int32_t k = 0; k < m.argCnt; k++)
                            read(k);
                        break;
                      case NodeKind::Eta: {
                        const uint32_t val = read(0);
                        const uint32_t p = read(1);
                        if (p)
                            v = val;
                        else
                            eos = true;
                        break;
                      }
                      default:
                        panic("non-pure op on region tape");
                    }
                    when += m.latency;
                    if (ci < cEnd - 1) {
                        // Fused member: the result rides a register
                        // slot (members never push or emit — they
                        // have no observers outside the cone).
                        regVal_[ci - cOff] = v;
                        regTim_[ci - cOff] = when;
                    } else {
                        if (out)
                            out->push(v, when, eos);
                        if (m.hasExternal)
                            output(a, m.dense, 0, v, when, eos);
                    }
                }
            }
            produced = out != nullptr;
            const uint64_t coneOps =
                static_cast<uint64_t>(cEnd - cOff);
            firings_ += nfire * coneOps;
            for (int32_t ci = cOff; ci < cEnd; ci++)
                fireCounts_[static_cast<size_t>(
                    R.tape[R.coneOp[ci]].kind)] += nfire;
            inlined += nfire * coneOps;
            eqExtraEvents_ +=
                nfire * static_cast<uint64_t>(op.coneEq);
        }
        if (nfire == 0)
            continue;

        if (produced) {
            for (int32_t s = R.seedOff[op.outRing];
                 s < R.seedOff[op.outRing + 1]; s++) {
                const int32_t c = R.seedOp[s];
                if (!regInWork_[c]) {
                    regInWork_[c] = 1;
                    const int32_t p = R.scanPos[c];
                    if (p > si) {
                        // Forward edge: fires later this wave, at its
                        // sorted place so its own consumers still see
                        // it before them.
                        regWave_.insert(
                            std::lower_bound(
                                regWave_.begin() +
                                    static_cast<ptrdiff_t>(wi) + 1,
                                regWave_.end(), p),
                            p);
                    } else {
                        // Back edge (through a merge): next wave.
                        regNext_.push_back(p);
                    }
                }
            }
            // Bound growth of the one ring this visit pushed into; a
            // replayed loop can stream thousands of items through it
            // within a single cascade.
            if (out->size() > 64)
                gcRegRing(a, R, op.outRing);
        }
        // A cycle through a merge is a loop the cascade replays in
        // full, so a livelocked program would otherwise spin here
        // forever: re-check the event budget the run loop enforces,
        // using equivalent events so the threshold matches the event
        // engine's workload measure.
        if (events_ + eqExtraEvents_ > maxEvents_) {
            failRun(SimOutcome::EventLimit,
                    "simulation event limit exceeded after " +
                        std::to_string(maxEvents_) +
                        " equivalent events in '" + gi->g->name +
                        "' (livelock?)");
            break;
        }
        if ((++cascadeVisits_ & 0xFFF) == 0 && wallExpired()) {
            failRun(SimOutcome::Timeout,
                    "simulation wall-clock budget of " +
                        std::to_string(wallBudgetMs_) +
                        " ms exceeded in '" + gi->g->name + "'");
            break;
        }
        }
    }
    if (runOutcome_ != SimOutcome::Ok) {  // aborted mid-wave: pending
                                          // flags and lists are stale
        std::fill(regInWork_.begin(), regInWork_.end(), 0);
        regWave_.clear();
        regNext_.clear();
    }
    regionOpsInlined_ += inlined;
    if (tracer_ && tracer_->enabled() && inlined)
        tracer_->completeEvent(
            gi->g->name, "sim.region", now_, 0,
            {{"region", static_cast<int64_t>(0)},
             {"ops", static_cast<int64_t>(inlined)}},
            kTraceCyclePid);
}

bool
DataflowSimulator::wallExpired()
{
    return wallBudgetMs_ > 0 &&
           std::chrono::steady_clock::now() > wallDeadline_;
}

void
DataflowSimulator::finishActivation(Activation* a, uint32_t value,
                                    bool hasValue, uint64_t now)
{
    if (a->finished)
        return;  // a second return firing would be a graph bug
    a->finished = true;
    liveActs_--;
    if (tracer_ && tracer_->enabled())
        tracer_->completeEvent(a->gi->g->name, "sim.activation",
                               a->startTime, now - a->startTime,
                               {{"activation", a->id}},
                               kTraceCyclePid);
    if (a->frameSize && stackPtr_ == a->frameBase)
        stackPtr_ += a->frameSize;
    if (!a->parent) {
        done_ = true;
        rootResult_ = hasValue ? value : 0;
        rootDoneTime_ = now;
        return;
    }
    // Deliver result + token to the parent's call node consumers.
    output(a->parent, a->parentCallNode, 0, hasValue ? value : 0,
           now + 1);
    output(a->parent, a->parentCallNode, 1, 0, now + 1);
    // The parent outlives all its children: it can only be recycled
    // once liveChildren drops to zero *and* the two deliveries above
    // have drained.
    a->parent->liveChildren--;
}

DeadlockReport
DataflowSimulator::buildDeadlockReport() const
{
    // A deadlocked graph stalls at a frontier of partially-fed nodes:
    // some inputs arrived and now sit in FIFOs forever, others never
    // will.  Nodes with no pending inputs at all are merely downstream
    // of the frontier and are omitted — reporting them would bury the
    // root cause.
    DeadlockReport rep;
    rep.stallTime = now_;
    rep.lsqOccupancy = memsys_.lsqOccupancy();
    constexpr size_t kMaxStuck = 64;  // bound the dump on huge graphs
    for (const auto& act : activations_) {
        if (act->pooled || act->finished)
            continue;
        for (size_t i = 0; i < act->gi->nodes.size(); i++) {
            const NodeHot& h = act->gi->hot[i];
            const Node* n = act->gi->nodes[i].n;
            if (!n) {
                // Super-operator pseudo-node: scan the compiled tape
                // for partially-fed interior operators — some operand
                // streams hold unconsumed items, others never will.
                // Operand k of a tape op is input k of its node, so
                // the rendering matches the event engine's.
                const GraphIndex& gi = *act->gi;
                const CompiledRegion& R =
                    gi.plan.regions[gi.nodes[i].region];
                for (const RegionOp& op : R.tape) {
                    bool anyR = false, allR = true;
                    for (int32_t k = 0; k < op.argCnt; k++) {
                        const int32_t enc = R.args[op.argOff + k];
                        if (regArgTag(enc) != RegArg::Stream)
                            continue;
                        const RegRing& r =
                            act->regRing[regArgIndex(enc)];
                        if (r.tail >
                            act->regConsumed[op.argOff + k])
                            anyR = true;
                        else
                            allR = false;
                    }
                    if (!anyR || allR)
                        continue;
                    const Node* in = gi.nodes[op.dense].n;
                    StuckNode stuck;
                    stuck.activation = act->id;
                    stuck.function = gi.g->name;
                    stuck.node = in->str();
                    for (int32_t k = 0; k < op.argCnt; k++) {
                        const int32_t enc = R.args[op.argOff + k];
                        if (regArgTag(enc) != RegArg::Stream ||
                            act->regRing[regArgIndex(enc)].tail >
                                act->regConsumed[op.argOff + k])
                            continue;
                        const PortRef& pr = in->input(k);
                        bool token =
                            pr.valid() &&
                            pr.node->outputType(pr.port) == VT::Token;
                        stuck.waitingOn.push_back(
                            "in" + std::to_string(k) +
                            (token ? " (token)" : " (data)"));
                    }
                    rep.stuck.push_back(std::move(stuck));
                    if (rep.stuck.size() >= kMaxStuck)
                        return rep;
                }
                continue;
            }
            bool any = false, all = true;
            for (int k = 0; k < n->numInputs(); k++) {
                if (act->gi->inDesc[h.fifoBase + k].isConst)
                    continue;
                if (act->fifo[h.fifoBase + k].empty())
                    all = false;
                else
                    any = true;
            }
            if (!any || all)
                continue;
            StuckNode stuck;
            stuck.activation = act->id;
            stuck.function = act->gi->g->name;
            stuck.node = n->str();
            for (int k = 0; k < n->numInputs(); k++) {
                if (act->gi->inDesc[h.fifoBase + k].isConst ||
                    !act->fifo[h.fifoBase + k].empty())
                    continue;
                const PortRef& in = n->input(k);
                bool token =
                    in.valid() &&
                    in.node->outputType(in.port) == VT::Token;
                stuck.waitingOn.push_back(
                    "in" + std::to_string(k) +
                    (token ? " (token)" : " (data)"));
            }
            rep.stuck.push_back(std::move(stuck));
            if (rep.stuck.size() >= kMaxStuck)
                return rep;
        }
    }
    return rep;
}

void
DataflowSimulator::sampleQueueCounters(uint64_t now)
{
    tracer_->counterEvent("sim.queue.bucket_ops", now,
                          static_cast<int64_t>(bucketOps_));
    tracer_->counterEvent("sim.queue.heap_ops", now,
                          static_cast<int64_t>(heapOps_));
    tracer_->counterEvent("sim.act.recycled", now,
                          static_cast<int64_t>(actRecycled_));
    tracer_->counterEvent("sim.act.live", now,
                          static_cast<int64_t>(liveActs_));
}

SimResult
DataflowSimulator::run(const std::string& name,
                       const std::vector<uint32_t>& args)
{
    // Fresh dynamic state (memory and caches persist across runs).
    ready_.clear();
    readyHead_ = 0;
    for (std::vector<Event>& slot : wheel_)
        slot.clear();
    wheelBits_.fill(0);
    wheelCount_ = 0;
    wheelDirty_.fill(0);
    for (int j = 0; j < kCoarseLevels; j++) {
        for (std::vector<TimedEvent>& band : coarse_[j])
            band.clear();
        coarseBits_[j].fill(0);
        coarseDirty_[j].fill(0);
        coarseCount_[j] = 0;
    }
    overflow_ = {};
    now_ = 0;
    seq_ = 0;
    releaseActivations();
    nextActId_ = 0;
    done_ = false;
    rootResult_ = 0;
    rootDoneTime_ = 0;
    events_ = firings_ = dynLoads_ = dynStores_ = 0;
    nullified_ = callsMade_ = 0;
    bucketOps_ = heapOps_ = 0;
    actSpawned_ = actRecycled_ = liveActs_ = peakLiveActs_ = 0;
    std::fill(fireCounts_.begin(), fireCounts_.end(), 0);
    runOutcome_ = SimOutcome::Ok;
    runError_.clear();
    droppedEvents_ = 0;
    regionsFired_ = 0;
    regionOpsInlined_ = 0;
    eqExtraEvents_ = 0;
    regPending_.clear();
    regWave_.clear();
    regNext_.clear();
    std::fill(regInWork_.begin(), regInWork_.end(), 0);
    fabricCrossDeliveries_ = fabricHopCycles_ = 0;
    fabricCreditStalls_ = fabricCreditStallCycles_ = 0;
    if (fabricActive_ && fabric_->model.linkCredits > 0) {
        const size_t t = static_cast<size_t>(fabric_->model.numTiles());
        chanFree_.assign(t * t * fabric_->model.linkCredits, 0);
    }

    ScopedTimer span(tracer_, "sim.run " + name, "sim");
    DeadlockReport deadlock;
    auto git = graphs_.find(name);
    if (git == graphs_.end())
        failRun(SimOutcome::MissingGraph,
                "no compiled graph for function '" + name + "'");
    else
        startActivation(git->second, args, 0, nullptr, -1);

    if (wallBudgetMs_ > 0)
        wallDeadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wallBudgetMs_);

    const bool tracing = tracer_ && tracer_->enabled();
    // Run to quiescence rather than stopping at the root return: the
    // drained tail (loop-exit EOS rounds, in-flight deliveries) is
    // part of the execution's firing multiset, which dataflow
    // determinism makes schedule-independent.  Stopping at done_
    // instead made sim.firings depend on queue order whenever the
    // return raced the tail — the macro engine's cascades batch those
    // firings eagerly and would count a superset.  Cycle counts are
    // unaffected: they report rootDoneTime_, not the drain.
    while (runOutcome_ == SimOutcome::Ok) {
        if (readyHead_ == ready_.size()) {
            // The worklist drained: run the region cascades all of
            // this cycle's absorbed deliveries seeded (their
            // emissions may refill the worklist at now_).
            if (flushRegions())
                continue;
            ready_.clear();
            readyHead_ = 0;
            if (!advanceTime())
                break;
            continue;
        }
        const Event e = ready_[readyHead_++];
        if (++events_ > maxEvents_) {
            failRun(SimOutcome::EventLimit,
                    "simulation event limit exceeded after " +
                        std::to_string(maxEvents_) +
                        " events in '" + name + "' (livelock?)");
            break;
        }
        if ((events_ & 0x3FFF) == 0 && wallExpired()) {
            failRun(SimOutcome::Timeout,
                    "simulation wall-clock budget of " +
                        std::to_string(wallBudgetMs_) +
                        " ms exceeded in '" + name + "'");
            break;
        }
        Activation* a = e.act;
        a->inflight--;
        // Region deliveries never reach the queues: deliver() feeds
        // them straight into fireRegion().
        ItemFifo& q = a->fifo[e.slot];
        if (q.empty())
            a->readyCnt[e.node]++;
        q.push_back(e.item);
        tryFire(a, e.node, now_);
        // Recycle as soon as nothing can target this activation again:
        // it returned, no queued events reference it, and no child can
        // still deliver a result into it.
        if (a->finished && a->parent && a->inflight == 0 &&
            a->liveChildren == 0 && a->regDirty == 0)
            recycle(a);
        if (tracing && (events_ & 0xFFF) == 0)
            sampleQueueCounters(now_);
    }

    if (!done_ && runOutcome_ == SimOutcome::Ok) {
        deadlock = buildDeadlockReport();
        if (traceLevel >= 1)
            for (const StuckNode& s : deadlock.stuck)
                trace(1, "starved " + s.str());
        failRun(SimOutcome::Deadlock,
                "dataflow simulation deadlocked in '" + name +
                    "' at cycle " + std::to_string(now_) + " (" +
                    std::to_string(deadlock.stuck.size()) +
                    " starved nodes)");
    }

    if (tracing)
        sampleQueueCounters(done_ ? rootDoneTime_ : now_);

    // Stats are filled on every outcome — a degraded run still reports
    // everything it observed up to the stall.
    SimResult r;
    r.returnValue = rootResult_;
    r.cycles = done_ ? rootDoneTime_ : now_;
    r.outcome = runOutcome_;
    r.error = runError_;
    r.deadlock = std::move(deadlock);
    r.stats.set(std::string("sim.outcome.") +
                    simOutcomeName(runOutcome_),
                1);
    if (droppedEvents_)
        r.stats.set("sim.events.dropped",
                    static_cast<int64_t>(droppedEvents_));
    r.stats.set("sim.cycles", static_cast<int64_t>(r.cycles));
    r.stats.set("sim.events", static_cast<int64_t>(events_));
    // Events the event engine would have processed for the same run:
    // actual deliveries plus the interior deliveries each super-op
    // firing absorbed.  Engine-comparable (sim.events itself is not).
    r.stats.set("sim.events.equivalent",
                static_cast<int64_t>(events_) + eqExtraEvents_);
    if (engine_ == SimEngine::Macro) {
        r.stats.set("sim.region.count", regionsTotal_);
        r.stats.set("sim.region.fired",
                    static_cast<int64_t>(regionsFired_));
        r.stats.set("sim.region.ops_inlined",
                    static_cast<int64_t>(regionOpsInlined_));
    }
    // Fabric keys appear only on a non-trivial fabric, so idealized
    // runs stay byte-identical to the pre-fabric output.
    if (fabricActive_) {
        const FabricModel& fm = fabric_->model;
        r.stats.set("fabric.tiles",
                    static_cast<int64_t>(fm.numTiles()));
        r.stats.set("fabric.hop_latency",
                    static_cast<int64_t>(fm.hopLatency));
        r.stats.set("fabric.link_credits",
                    static_cast<int64_t>(fm.linkCredits));
        r.stats.set("fabric.nodes", fabricNodes_);
        r.stats.set("fabric.edges.total", fabricTotalEdges_);
        r.stats.set("fabric.edges.cut", fabricCutEdges_);
        r.stats.set("fabric.edges.cut_hops", fabricCutHops_);
        r.stats.set("fabric.occupancy.max", fabricMaxTileOps_);
        if (fabricUsedTiles_ > 0)
            r.stats.set("fabric.occupancy.mean_x100",
                        100 * fabricNodes_ / fabricUsedTiles_);
        r.stats.set("fabric.cross_deliveries",
                    static_cast<int64_t>(fabricCrossDeliveries_));
        r.stats.set("fabric.hop_cycles",
                    static_cast<int64_t>(fabricHopCycles_));
        r.stats.set("fabric.credit_stalls",
                    static_cast<int64_t>(fabricCreditStalls_));
        r.stats.set("fabric.credit_stall_cycles",
                    static_cast<int64_t>(fabricCreditStallCycles_));
    }
    r.stats.set("sim.firings", static_cast<int64_t>(firings_));
    r.stats.set("sim.dynLoads", static_cast<int64_t>(dynLoads_));
    r.stats.set("sim.dynStores", static_cast<int64_t>(dynStores_));
    r.stats.set("sim.nullified", static_cast<int64_t>(nullified_));
    r.stats.set("sim.calls", static_cast<int64_t>(callsMade_));
    r.stats.set("sim.queue.bucket_ops",
                static_cast<int64_t>(bucketOps_));
    r.stats.set("sim.queue.heap_ops", static_cast<int64_t>(heapOps_));
    r.stats.set("sim.act.spawned", static_cast<int64_t>(actSpawned_));
    r.stats.set("sim.act.recycled",
                static_cast<int64_t>(actRecycled_));
    r.stats.set("sim.act.peakLive",
                static_cast<int64_t>(peakLiveActs_));
    r.stats.set("sim.act.allocated",
                static_cast<int64_t>(activations_.size()));
    for (size_t k = 0; k < fireCounts_.size(); k++)
        if (fireCounts_[k])
            r.stats.set(std::string("sim.fire.") +
                            nodeKindName(static_cast<NodeKind>(k)),
                        static_cast<int64_t>(fireCounts_[k]));
    span.arg("cycles", static_cast<int64_t>(rootDoneTime_));
    span.arg("firings", static_cast<int64_t>(firings_));
    // Spatial ILP: average operator firings per cycle (x100).  The
    // macro engine counts every inlined interior firing in firings_,
    // so the figure is engine-invariant as-is.
    if (rootDoneTime_ > 0)
        r.stats.set("sim.opsPerCycle_x100",
                    static_cast<int64_t>(100 * firings_ /
                                         rootDoneTime_));
    memsys_.reportStats(r.stats);
    // Free all activation storage now rather than at the next run():
    // on early done_ the root's still-running children hold FIFO and
    // port-clock arrays that would otherwise linger.
    releaseActivations();
    return r;
}

} // namespace cash
