#include "sim/memory_system.h"

namespace cash {

MemConfig
MemConfig::perfectMemory()
{
    MemConfig c;
    c.name = "perfect";
    c.perfect = true;
    c.ports = 0;  // unlimited
    return c;
}

MemConfig
MemConfig::realistic(int ports)
{
    MemConfig c;
    c.name = "realistic-" + std::to_string(ports) + "p";
    c.ports = ports;
    return c;
}

MemorySystem::MemorySystem(const MemConfig& cfg)
    : cfg_(cfg),
      lsq_(cfg.lsqSize, cfg.ports > 0 ? cfg.ports : 1)
{
    if (!cfg_.perfect) {
        l1_ = std::make_unique<Cache>("l1", cfg_.l1Size, cfg_.l1Assoc,
                                      cfg_.l1Line, cfg_.l1Latency);
        l2_ = std::make_unique<Cache>("l2", cfg_.l2Size, cfg_.l2Assoc,
                                      cfg_.l2Line, cfg_.l2Latency);
        tlb_ = std::make_unique<Tlb>(cfg_.tlbEntries, cfg_.pageSize,
                                     cfg_.tlbMissPenalty);
    }
}

void
MemorySystem::reset()
{
    lsq_.reset();
    if (l1_)
        l1_->reset();
    if (l2_)
        l2_->reset();
    if (tlb_)
        tlb_->reset();
    accesses_ = 0;
    dramAccesses_ = 0;
    latencyHist_.fill(0);
}

uint64_t
MemorySystem::hierarchyLatency(uint32_t addr, bool isWrite)
{
    uint64_t lat = tlb_->access(addr);
    Cache::AccessResult r1 = l1_->access(addr, isWrite);
    lat += r1.latency;
    if (r1.hit)
        return lat;
    Cache::AccessResult r2 = l2_->access(addr, isWrite);
    lat += r2.latency;
    if (r2.hit)
        return lat;
    // Line fill from DRAM: first word after dramLatency, then one word
    // every dramWordGap cycles.
    dramAccesses_++;
    uint64_t words = cfg_.l2Line / 4;
    lat += cfg_.dramLatency + (words - 1) * cfg_.dramWordGap;
    return lat;
}

MemorySystem::Timing
MemorySystem::request(uint32_t addr, bool isWrite, int size, uint64_t now)
{
    (void)size;
    accesses_++;
    Timing t;
    if (cfg_.perfect) {
        t.start = now;
        t.complete = now + cfg_.perfectLatency;
        return t;
    }
    t.start = lsq_.issue(now);
    uint64_t lat = hierarchyLatency(addr, isWrite);
    t.complete = t.start + lat;
    lsq_.complete(t.complete);
    latencyHist_[histBucketIndex(lat)]++;
    if (tracer_ && tracer_->enabled())
        tracer_->counterEvent("sim.lsq.occupancy", t.start,
                              static_cast<int64_t>(lsq_.occupancy()));
    return t;
}

void
MemorySystem::reportStats(StatSet& stats) const
{
    stats.add("sim.mem.accesses", accesses_);
    if (cfg_.perfect)
        return;
    stats.add("sim.mem.l1.hits", l1_->hits());
    stats.add("sim.mem.l1.misses", l1_->misses());
    stats.add("sim.mem.l1.writebacks", l1_->writebacks());
    stats.add("sim.mem.l2.hits", l2_->hits());
    stats.add("sim.mem.l2.misses", l2_->misses());
    stats.add("sim.mem.l2.writebacks", l2_->writebacks());
    stats.add("sim.mem.tlb.hits", tlb_->hits());
    stats.add("sim.mem.tlb.misses", tlb_->misses());
    stats.add("sim.mem.dram.accesses", dramAccesses_);
    stats.add("sim.mem.lsq.portStalls", lsq_.portStalls());
    stats.add("sim.mem.lsq.fullStalls", lsq_.fullStalls());
    stats.add("sim.mem.lsq.maxOccupancy", lsq_.maxOccupancy());
    const std::vector<uint64_t>& occ = lsq_.occupancyHist();
    for (size_t k = 0; k < occ.size(); k++)
        if (occ[k])
            stats.add("sim.mem.lsq.occHist." + histBucket(k),
                      static_cast<int64_t>(occ[k]));
    for (int i = 0; i < kHistBuckets; i++)
        if (latencyHist_[i])
            stats.add(std::string("sim.mem.latencyHist.") +
                          histBucketLabel(i),
                      static_cast<int64_t>(latencyHist_[i]));
}

} // namespace cash
