/**
 * @file
 * Event-driven execution of Pegasus graphs with asynchronous-handshake
 * (Kahn network) semantics — the paper's "coarse hardware simulator"
 * (§7.3).
 *
 * Every edge is an unbounded FIFO; a node fires when its required
 * inputs are available, consumes them, and delivers outputs to its
 * consumers after the operation latency.  Memory operations share a
 * MemorySystem (LSQ + caches + TLB); data moves at fire time (token
 * edges guarantee conflicting accesses are ordered), timing is modeled
 * separately.  Loops execute by streaming successive values through
 * merge/eta rings, which is what makes pipelining (§6) visible as
 * reduced cycle counts.
 *
 * The engine is built for throughput (see docs/SIMULATOR.md):
 *
 *   * Events are dispatched through a same-timestamp ready worklist
 *     plus a time-bucketed calendar wheel; only deliveries scheduled
 *     further than the wheel horizon touch a binary heap.  Ordering is
 *     bit-exact with a global (time, seq) priority queue.
 *   * Per-port FIFOs store their first two items inline (most ports
 *     hold at most one) and spill to a geometric ring buffer.
 *   * Per-graph metadata is flattened into CSR-style arrays (fifo
 *     slots, port clocks, consumer lists, input descriptors) and
 *     per-node readiness is tracked with a counter, so the hot path
 *     performs no map lookups and no per-input scans.
 *   * Finished activations are recycled through a free list, so
 *     call-heavy and recursive workloads run in memory proportional to
 *     the peak number of live activations, not the total spawned.
 */
#ifndef CASH_SIM_DATAFLOW_SIM_H
#define CASH_SIM_DATAFLOW_SIM_H

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "fabric/placer.h"
#include "frontend/layout.h"
#include "pegasus/graph.h"
#include "sim/memory_image.h"
#include "sim/memory_system.h"
#include "sim/region_compiler.h"
#include "support/fault_injection.h"
#include "support/stats.h"

namespace cash {

/**
 * Execution engine selection (docs/SIMULATOR.md, "Macro-firing
 * engine"):
 *
 *   * **Event** — every operator firing is a discrete event on the
 *     calendar queue.
 *   * **Macro** — each graph's pure interior (including order-robust
 *     mu-merges) is precompiled into a super-operator op-tape
 *     (region_compiler.h) evaluated as a streaming cascade over
 *     per-operand ring buffers with analytic (max-plus) timing;
 *     tokens, memory operations, calls and order-sensitive merges
 *     stay event-driven.  Exactness contract: return values and
 *     firing counts are always byte-identical to Event, cycle counts
 *     are byte-identical under perfect memory and may drift by a
 *     small bounded amount (4 cycles + 1%) under realistic memory,
 *     where collapsing within-cycle dispatch order can change
 *     same-cycle arbitration in the memory hierarchy.
 */
enum class SimEngine
{
    Event,
    Macro,
};

/** Stable lower_snake name ("event", "macro"). */
const char* simEngineName(SimEngine e);

/**
 * How a simulated invocation ended.  Simulation failures are ordinary
 * results, not exceptions: the engine never raises for conditions a
 * malformed or adversarial input graph can cause (docs/ROBUSTNESS.md).
 */
enum class SimOutcome
{
    Ok,
    /** No events pending but the root activation never returned. */
    Deadlock,
    /** maxEvents exceeded — livelock or runaway loop. */
    EventLimit,
    /** Simulated call stack exhausted. */
    StackOverflow,
    /** The named function (or a fired callee) was never compiled. */
    MissingGraph,
    /** Host wall-clock budget exceeded (see setWallBudgetMs). */
    Timeout,
};

/** Stable lower_snake name ("ok", "deadlock", ...). */
const char* simOutcomeName(SimOutcome o);

/** One node stuck waiting when the simulation deadlocked. */
struct StuckNode
{
    int activation = -1;
    std::string function;
    /** Node::str() rendering of the starved node. */
    std::string node;
    /** Starved inputs, e.g. "in1 (token)" — present inputs omitted. */
    std::vector<std::string> waitingOn;

    std::string str() const;
};

/**
 * Diagnostic dump captured at deadlock time: every partially-fed node
 * (some inputs arrived, others never will), plus memory-system state.
 * A node with *no* pending inputs is merely downstream of the stall
 * and is not reported.
 */
struct DeadlockReport
{
    uint64_t stallTime = 0;     ///< Simulated cycle of the stall.
    uint64_t lsqOccupancy = 0;  ///< In-flight LSQ entries at stall.
    std::vector<StuckNode> stuck;

    /** Multi-line human-readable rendering for logs / cashc stderr. */
    std::string str() const;
};

/** Result of one simulated invocation. */
struct SimResult
{
    uint32_t returnValue = 0;
    /** rootDoneTime when ok; the stall/stop time otherwise. */
    uint64_t cycles = 0;
    StatSet stats;
    SimOutcome outcome = SimOutcome::Ok;
    /** One-line description of the failure; empty when ok. */
    std::string error;
    /** Populated when outcome == Deadlock. */
    DeadlockReport deadlock;

    bool ok() const { return outcome == SimOutcome::Ok; }
};

class DataflowSimulator
{
  public:
    /**
     * @param graphs   all compiled procedures (callees resolved by name)
     * @param layout   memory layout used to build the graphs
     * @param cfg      memory-system configuration
     * @param fabric   tiled-fabric model + placements (docs/FABRIC.md);
     *                 null or trivial = the paper's idealized fabric,
     *                 with zero cost on any simulation path.  Must
     *                 outlive the simulator.
     */
    DataflowSimulator(const std::vector<const Graph*>& graphs,
                      const MemoryLayout& layout, const MemConfig& cfg,
                      SimEngine engine = SimEngine::Macro,
                      const FabricSession* fabric = nullptr);

    /** Invoke @p name with @p args; memory persists across calls. */
    SimResult run(const std::string& name,
                  const std::vector<uint32_t>& args);

    MemoryImage& memory() { return image_; }
    const MemoryImage& memory() const { return image_; }

    /** Reset memory, caches and the stack. */
    void reset();

    void setMaxEvents(uint64_t n) { maxEvents_ = n; }

    /**
     * Abort a run with SimOutcome::Timeout once it has consumed
     * @p ms milliseconds of host wall-clock time (0 = unlimited).
     * The deadline is polled every few thousand events, so the
     * overshoot is bounded by the cost of one polling window.  A
     * wall guard makes results host-dependent by design — it exists
     * for services and soak harnesses that must bound the damage a
     * pathological graph can do, not for reproducible measurement.
     */
    void setWallBudgetMs(int64_t ms) { wallBudgetMs_ = ms; }

    /**
     * Deterministic fault injection (testing): a plan with a
     * sim.drop-event point silently discards the matching delivery,
     * typically starving a consumer into a reportable deadlock.
     */
    void setFaultPlan(const FaultPlan* plan) { faults_ = plan; }

    /**
     * Observability sink: when set and enabled, run() records one span
     * per activation, LSQ-occupancy and queue-counter samples, all in
     * the simulated-cycles time domain (see docs/OBSERVABILITY.md).
     */
    void setTracer(TraceRecorder* tracer);

  private:
    struct GraphIndex;

    // --- static per-graph indexing -----------------------------------
    struct InputDesc
    {
        bool isConst = false;
        uint32_t constValue = 0;
    };
    /** One consumer endpoint: dense node plus its flat fifo slot. */
    struct Consumer
    {
        int32_t node = -1;
        int32_t slot = -1;
    };
    /**
     * Per-node hot metadata, packed so the dispatch path touches one
     * small record: flat fifo/port bases, the firing rule, and the
     * number of non-const inputs required to fire.
     */
    struct NodeHot
    {
        int32_t fifoBase = 0;
        int32_t portBase = 0;
        uint16_t need = 0;   ///< Non-const inputs (AND-firing nodes).
        uint8_t kind = 0;    ///< NodeKind.
        uint8_t latency = 0; ///< nodeLatency() (Arith only).
        uint8_t op = 0;      ///< Op (Arith only).
        uint8_t unary = 0;   ///< Copy/unary Op (Arith only).
        uint8_t pad[2] = {0, 0};
    };
    /** Cold per-node details, consulted at fire time. */
    struct NodeIndex
    {
        const Node* n = nullptr;
        /** For merges: forward and back-edge input slots. */
        std::vector<int> fwdInputs;
        std::vector<int> backInputs;
        int deciderIdx = -1;
        /** All back producers are etas in this hyperblock, so one item
         *  arrives on every back input each iteration (wait-for-all
         *  consumption is deterministic). */
        bool strictBack = false;
        /** For TokenGens: dense slot in Activation::tkCounter. */
        int tkSlot = -1;
        /** For Calls: resolved callee index (null until linked; a
         *  firing with an unresolved callee is a fatal error). */
        const GraphIndex* callee = nullptr;
        /** For region pseudo-nodes (n == nullptr): the region id. */
        int32_t region = -1;
    };
    struct GraphIndex
    {
        const Graph* g = nullptr;
        /** One entry per node plus a sentinel whose fifoBase is the
         *  total slot count, so node @c i has
         *  hot[i+1].fifoBase - hot[i].fifoBase inputs. */
        std::vector<NodeHot> hot;
        std::vector<NodeIndex> nodes;
        /** Flat input descriptors, indexed by fifo slot. */
        std::vector<InputDesc> inDesc;
        /** CSR consumer lists: consumers of output port @c p of node
         *  @c i are cons[consOff[hot[i].portBase+p] ..
         *  consOff[hot[i].portBase+p+1]). */
        std::vector<int> consOff;
        std::vector<Consumer> cons;
        int numFifoSlots = 0;
        int numPortSlots = 0;
        /** Initial TokenGen counter values, one per tkSlot. */
        std::vector<int64_t> tkInit;
        /** Dense indices of g->paramNodes / g->initialToken. */
        std::vector<int> paramDense;
        int initialTokenDense = -1;
        /** One-shot initial values for merge inputs wired to consts. */
        struct MergeInit
        {
            int node = -1;
            int input = -1;
            uint32_t value = 0;
        };
        std::vector<MergeInit> mergeInits;
        /**
         * Macro engine: compiled super-operator (region_compiler.h).
         * The region is materialized as a *pseudo-node* appended
         * after the real nodes (dense id numRealNodes + r) whose fifo
         * slots address the region's input streams, so the CSR
         * consumer lists and the delivery queue are reused untouched;
         * the run loop intercepts deliveries to the pseudo-node and
         * feeds them straight into the streaming cascade (its fifos
         * stay empty).  Interior nodes keep their hot[] entries but
         * never receive deliveries: their incoming edges are rerouted
         * to the pseudo-node (or dropped, for interior edges) when
         * the CSR consumer lists are built.
         */
        RegionPlan plan;
        int numRealNodes = 0;
        /**
         * Tiled fabric (docs/FABRIC.md): tile per dense node
         * (region pseudo-nodes inherit their tape's tile), plus
         * per-CSR-consumer hop cost in cycles and credit channel id
         * (-1 = same tile or unbounded credits), parallel to `cons`.
         * All empty on the idealized fabric.
         */
        std::vector<int32_t> tileOf;
        std::vector<int32_t> consHop;
        std::vector<int32_t> consChan;
    };
    /** NodeHot::kind of a region pseudo-node (outside NodeKind). */
    static constexpr uint8_t kRegionKind = 0xFF;

    // --- dynamic state ------------------------------------------------
    /**
     * One FIFO slot.  `eos` marks an end-of-stream token: an eta whose
     * predicate is false emits EOS instead of a value, so loop merges
     * can deterministically switch between their initial and back-edge
     * input streams (gated-SSA mu-node discipline).  Only Merge nodes
     * consume EOS items; they are never forwarded.
     */
    struct Item
    {
        uint32_t value = 0;
        bool eos = false;
        /** Arrival cycle, stamped when the delivery is consumed.  Only
         *  region pseudo-nodes read it: the macro engine's analytic
         *  timing needs each input's k-th arrival time, which the
         *  event engine keeps implicit in queue position. */
        uint64_t time = 0;
    };

    /**
     * A per-port FIFO with two inline slots and a power-of-two ring
     * spill buffer.  Most ports hold at most one in-flight item, so the
     * common case never allocates; clear() keeps spill capacity for
     * activation recycling.
     */
    class ItemFifo
    {
      public:
        ItemFifo() = default;
        ItemFifo(const ItemFifo&) = delete;
        ItemFifo& operator=(const ItemFifo&) = delete;
        ItemFifo(ItemFifo&& o) noexcept { moveFrom(o); }
        ItemFifo&
        operator=(ItemFifo&& o) noexcept
        {
            if (this != &o) {
                release();
                moveFrom(o);
            }
            return *this;
        }
        ~ItemFifo() { release(); }

        bool empty() const { return size_ == 0; }
        uint32_t size() const { return size_; }
        const Item& front() const { return buf_[head_]; }

        void
        push_back(Item it)
        {
            if (size_ == cap_)
                grow();
            buf_[(head_ + size_) & (cap_ - 1)] = it;
            size_++;
        }

        void
        pop_front()
        {
            head_ = (head_ + 1) & (cap_ - 1);
            size_--;
        }

        /** Drop contents, keep spill capacity (recycling path). */
        void
        clear()
        {
            head_ = 0;
            size_ = 0;
        }

      private:
        void
        grow()
        {
            uint32_t ncap = cap_ * 2;
            Item* nbuf = new Item[ncap];
            for (uint32_t i = 0; i < size_; i++)
                nbuf[i] = buf_[(head_ + i) & (cap_ - 1)];
            release();
            buf_ = nbuf;
            cap_ = ncap;
            head_ = 0;
        }
        void
        release()
        {
            if (buf_ != inline_)
                delete[] buf_;
        }
        void
        moveFrom(ItemFifo& o)
        {
            if (o.buf_ == o.inline_) {
                inline_[0] = o.inline_[0];
                inline_[1] = o.inline_[1];
                buf_ = inline_;
            } else {
                buf_ = o.buf_;
            }
            cap_ = o.cap_;
            head_ = o.head_;
            size_ = o.size_;
            o.buf_ = o.inline_;
            o.cap_ = kInline;
            o.head_ = o.size_ = 0;
        }

        static constexpr uint32_t kInline = 2;  // power of two
        Item inline_[kInline];
        Item* buf_ = inline_;
        uint32_t cap_ = kInline;
        uint32_t head_ = 0;
        uint32_t size_ = 0;
    };

    /**
     * One operand stream of a compiled super-operator: a power-of-two
     * ring of (value, completion time, EOS) triples addressed by
     * *absolute* indices — `head`/`tail` only grow, so the k-th item
     * ever pushed lives at `k & (capacity-1)` until reclaimed, and a
     * consumption counter doubles as a stream position.  clear() keeps
     * capacity for activation recycling.
     */
    /** One ring entry, interleaved so a read touches one cache line
     *  (eos widened to pad the record to 16 bytes). */
    struct RegItem
    {
        uint32_t val;
        uint32_t eos;
        uint64_t tim;
    };
    struct RegRing
    {
        std::vector<RegItem> buf;
        uint64_t head = 0;
        uint64_t tail = 0;
        /** Cached capacity - 1; kept in sync by grow() so the hot
         *  paths never recompute it from the vector length. */
        uint64_t mask = 0;
        uint64_t cap = 0;

        uint64_t size() const { return tail - head; }
        void
        push(uint32_t v, uint64_t t, bool e)
        {
            if (tail - head == cap)
                grow();
            buf[tail & mask] = {v, e, t};
            tail++;
        }
        void
        clear()
        {
            head = tail = 0;
        }

      private:
        void
        grow()
        {
            const size_t ncap = cap ? cap * 2 : 8;
            std::vector<RegItem> nbuf(ncap);
            for (uint64_t k = head; k < tail; k++)
                nbuf[k & (ncap - 1)] = buf[k & mask];
            buf.swap(nbuf);
            cap = ncap;
            mask = ncap - 1;
        }
    };

    struct Activation
    {
        int id = -1;
        const GraphIndex* gi = nullptr;
        /** Flat per-input-slot FIFOs (see NodeHot::fifoBase). */
        std::vector<ItemFifo> fifo;
        /**
         * Monotonic delivery clock per (node, output port), flat (see
         * NodeHot::portBase): a port delivers the results of
         * successive firings in firing order, so a fast later result
         * (e.g. a nullified memory op) cannot overtake a slow earlier
         * one on the same wire.
         */
        std::vector<uint64_t> portClock;
        /** Non-empty non-const input fifos per node; an AND-firing
         *  node is ready exactly when readyCnt == NodeHot::need. */
        std::vector<uint16_t> readyCnt;
        /** Per-merge consumption state (mu-node protocol). */
        enum class MergeMode : uint8_t { Fwd, AwaitDecider, Back };
        std::vector<MergeMode> mergeMode;
        /** TokenGen state, one slot per NodeIndex::tkSlot. */
        std::vector<int64_t> tkCounter;
        /** Macro engine: super-operator operand streams (one per
         *  CompiledRegion ring) and per-operand consumption counters
         *  (absolute stream positions, indexed like
         *  CompiledRegion::args).  Empty when the graph compiled no
         *  region. */
        std::vector<RegRing> regRing;
        std::vector<uint64_t> regConsumed;
        /** Macro engine: absorbed-merge mode machine (MergeMode
         *  values) and the time each merge last fired — mode
         *  transitions gate later firings like an extra operand
         *  (indexed by RegionOp::mSlot). */
        std::vector<uint8_t> regMergeMode;
        std::vector<uint64_t> regMergeTime;
        /** Deferred region deliveries in regPending_ targeting this
         *  activation (blocks recycling until flushed). */
        int32_t regDirty = 0;
        Activation* parent = nullptr;
        int parentCallNode = -1;
        uint32_t frameBase = 0;
        uint32_t frameSize = 0;
        uint64_t startTime = 0;
        /** Queued events targeting this activation. */
        uint32_t inflight = 0;
        /** Children started and not yet finished. */
        uint32_t liveChildren = 0;
        bool finished = false;
        /** On the free list (storage may be reused). */
        bool pooled = false;
    };

    /** A queued delivery.  Time is implicit: ready_ events are at
     *  now_, each wheel slot holds a single timestamp, and overflow
     *  events carry theirs in TimedEvent. */
    struct Event
    {
        uint64_t seq = 0;
        Activation* act = nullptr;
        int32_t node = -1;
        int32_t slot = -1;  ///< Flat fifo slot of the target input.
        Item item;
    };
    struct TimedEvent
    {
        uint64_t time = 0;
        Event e;
        bool operator>(const TimedEvent& o) const
        {
            return time != o.time ? time > o.time : e.seq > o.e.seq;
        }
    };

    void buildIndex(const Graph* g);
    void linkCallees();
    /** Macro engine: absorb one boundary delivery into super-operator
     *  input stream @p slot.  Called synchronously from deliver() —
     *  region deliveries never enter the event queue; the cascade
     *  itself is deferred to flushRegions() at the next worklist
     *  drain, so a cycle's deliveries batch into one pass and host
     *  stack depth never tracks simulated recursion depth. */
    void fireRegion(Activation* a, int slot, const Item& it);
    /** Queue the cone sinks consuming input stream @p slot onto the
     *  cascade worklist. */
    void seedRegion(Activation* a, int slot);
    /** One cascade over activation @p a's region: fire every queued
     *  tape op as often as its streams allow. */
    void cascadeRegion(Activation* a);
    /** Drain regPending_: cascade every activation with deferred
     *  region deliveries.  Returns whether any cascade ran (the run
     *  loop re-checks ready_ before advancing time). */
    bool flushRegions();
    /** Advance @p ring's reclaim bound to its slowest consumer. */
    void gcRegRing(Activation* a, const CompiledRegion& R,
                   int32_t ring);

    Activation* startActivation(const GraphIndex& gi,
                                const std::vector<uint32_t>& args,
                                uint64_t when, Activation* parent,
                                int parentCallNode);
    void deliver(Activation* a, int node, int slot, Item item,
                 uint64_t when);
    void output(Activation* a, int node, int port, uint32_t value,
                uint64_t when, bool eos = false);
    bool ready(const Activation* a, int node) const;
    void tryFire(Activation* a, int node, uint64_t now);
    void fire(Activation* a, int node, uint64_t now);
    void fireMerge(Activation* a, int node, uint64_t now);
    /** Pop the front item of @p q (slot of @p node), maintaining the
     *  readiness counter. */
    void
    popItem(Activation* a, int node, ItemFifo& q)
    {
        q.pop_front();
        if (q.empty())
            a->readyCnt[node]--;
    }
    void finishActivation(Activation* a, uint32_t value, bool hasValue,
                          uint64_t now);
    void recycle(Activation* a);
    /** Drop all activation storage (end of run / fresh run). */
    void releaseActivations();
    /** Advance now_ to the next pending timestamp; false when idle. */
    bool advanceTime();
    void sampleQueueCounters(uint64_t now);
    /** Record a degraded outcome; the run loop stops at its next
     *  iteration and run() returns it in SimResult. */
    void failRun(SimOutcome outcome, std::string why);
    /** Scan live activations for partially-fed nodes (deadlock dump). */
    DeadlockReport buildDeadlockReport() const;

    std::map<std::string, GraphIndex> graphs_;
    const MemoryLayout& layout_;
    MemoryImage image_;
    MemorySystem memsys_;
    const SimEngine engine_;
    /** Regions compiled across all graphs (sim.region.count). */
    int64_t regionsTotal_ = 0;

    // --- tiled fabric (docs/FABRIC.md) -------------------------------
    /** Non-null only for a non-trivial fabric with placements. */
    const FabricSession* fabric_ = nullptr;
    bool fabricActive_ = false;
    /**
     * Credit state per directed tile-pair channel: linkCredits slots
     * per channel (chan * linkCredits + k), each holding the cycle
     * its in-flight transfer arrives (frees the credit).  A send
     * takes the earliest-free slot; when none is free at send time
     * the transfer stalls until one is (FIFO order per channel is
     * preserved — the earliest-free slot is monotone over sends).
     */
    std::vector<uint64_t> chanFree_;
    // Static placement quality, aggregated over all placed graphs.
    int64_t fabricCutEdges_ = 0;
    int64_t fabricTotalEdges_ = 0;
    int64_t fabricCutHops_ = 0;
    int64_t fabricMaxTileOps_ = 0;
    int64_t fabricUsedTiles_ = 0;
    int64_t fabricNodes_ = 0;
    // Per-run interconnect counters (fabric.* stats keys).
    uint64_t fabricCrossDeliveries_ = 0;
    uint64_t fabricHopCycles_ = 0;
    uint64_t fabricCreditStalls_ = 0;
    uint64_t fabricCreditStallCycles_ = 0;

    // --- macro-engine cascade scratch (reused, never shrunk) ---------
    /** Pending flag per tape index: set when one of the op's operand
     *  streams grows, cleared as the cascade's wave scan visits it.
     *  All-zero between cascades (error paths wipe it wholesale). */
    std::vector<uint8_t> regInWork_;
    /** Worklists of pending scan positions: regNext_ collects seeds
     *  for the upcoming wave (unsorted; sorted as the wave starts),
     *  regWave_ is the wave being drained in ascending scan order so
     *  producers fire before in-wave consumers.  Cost scales with
     *  active ops, not tape width — regions bundle every loop of a
     *  graph, so one boundary delivery usually touches a small
     *  neighborhood of a much wider tape. */
    std::vector<int32_t> regWave_;
    std::vector<int32_t> regNext_;
    /** Any graph compiled a region (single branch in deliver()). */
    bool haveRegions_ = false;
    /** (activation, input slot) deliveries absorbed but not yet
     *  cascaded (the item is already in the ring); drained FIFO by
     *  flushRegions() when the run loop's worklist empties. */
    std::vector<std::pair<Activation*, int32_t>> regPending_;
    /** Cone register scratch (values + completion times), sized to
     *  the widest cone across graphs; only valid within one sink
     *  firing — cascades never nest (see fireRegion). */
    std::vector<uint32_t> regVal_;
    std::vector<uint64_t> regTim_;

    // --- event queue: ready worklist + hierarchical calendar wheel ---
    /** Fine-wheel horizon in cycles; must be a power of two.  Covers
     *  the common operator/cache latencies (ALU 1, Mul 3, Div/Rem 20,
     *  L1/L2 hits, TLB walk).  Events beyond it land in the coarse
     *  wheels: the macro engine's cascade emissions carry analytic
     *  max-plus timestamps that run arbitrarily far ahead of the
     *  dispatch clock (an interior loop replays whole executions from
     *  one boundary delivery), and funneling those residuals through a
     *  comparison heap dominated the macro engine's run time. */
    static constexpr uint64_t kWheelBits = 8;
    static constexpr uint64_t kWheelSize = 1ull << kWheelBits;
    static constexpr uint64_t kWheelWords = kWheelSize / 64;
    /** Coarse levels above the fine wheel.  Level j has kWheelSize
     *  bands of 2^(kWheelBits*(j+1)) cycles each, so three levels
     *  push the heap threshold past 2^32 cycles; a band migrates down
     *  one level when the dispatch clock nears it, giving O(levels)
     *  pushes per event instead of O(log n) heap percolation. */
    static constexpr int kCoarseLevels = 3;
    /** Events at exactly now_, in (time, seq) order. */
    std::vector<Event> ready_;
    size_t readyHead_ = 0;
    /** wheel_[t & (kWheelSize-1)]: events at time t, for t in
     *  (now_, now_ + kWheelSize]; each slot holds a single timestamp
     *  (see advanceTime()). */
    std::array<std::vector<Event>, kWheelSize> wheel_;
    /** Slot occupancy bits (bit s of word s/64 = slot s non-empty):
     *  advanceTime() finds the nearest pending slot with a circular
     *  count-trailing-zeros scan instead of probing slot by slot. */
    std::array<uint64_t, kWheelWords> wheelBits_{};
    uint64_t wheelCount_ = 0;
    /** Fine slots that may hold out-of-seq events: a migrated band
     *  can append an older (lower-seq) event behind a directly
     *  inserted one at the same timestamp, so the drain re-sorts
     *  flagged slots to restore global (time, seq) order. */
    std::array<uint8_t, kWheelSize> wheelDirty_{};
    /** coarse_[j][(t >> kWheelBits*(j+1)) & (kWheelSize-1)]: events
     *  of one band, in insertion order (seq order unless dirty). */
    std::array<std::array<std::vector<TimedEvent>, kWheelSize>,
               kCoarseLevels>
        coarse_;
    std::array<std::array<uint64_t, kWheelWords>, kCoarseLevels>
        coarseBits_{};
    std::array<uint64_t, kCoarseLevels> coarseCount_{};
    std::array<std::array<uint8_t, kWheelSize>, kCoarseLevels>
        coarseDirty_{};
    /** Events beyond the coarsest horizon (vanishingly rare). */
    std::priority_queue<TimedEvent, std::vector<TimedEvent>,
                        std::greater<TimedEvent>>
        overflow_;
    uint64_t now_ = 0;
    uint64_t seq_ = 0;

    std::vector<std::unique_ptr<Activation>> activations_;
    /** Finished activations whose storage can be reused. */
    std::vector<Activation*> freePool_;
    int nextActId_ = 0;
    uint32_t stackPtr_ = MemoryLayout::kStackTop;

    bool done_ = false;
    uint32_t rootResult_ = 0;
    uint64_t rootDoneTime_ = 0;
    uint64_t maxEvents_ = 200000000;
    int64_t wallBudgetMs_ = 0;  ///< 0 = no wall-clock guard.
    std::chrono::steady_clock::time_point wallDeadline_;
    uint64_t cascadeVisits_ = 0;  ///< Wall-guard polling counter.
    bool wallExpired();

    /** Degraded-outcome state for the current run (see failRun). */
    SimOutcome runOutcome_ = SimOutcome::Ok;
    std::string runError_;

    const FaultPlan* faults_ = nullptr;
    uint64_t droppedEvents_ = 0;

    TraceRecorder* tracer_ = nullptr;

    // Per-run counters.
    uint64_t events_ = 0;
    uint64_t firings_ = 0;
    uint64_t dynLoads_ = 0;
    uint64_t dynStores_ = 0;
    uint64_t nullified_ = 0;  ///< Pred-false memory ops.
    uint64_t callsMade_ = 0;
    uint64_t bucketOps_ = 0;  ///< Deliveries via worklist/wheel.
    uint64_t heapOps_ = 0;    ///< Deliveries via the overflow heap.
    uint64_t actSpawned_ = 0;
    uint64_t actRecycled_ = 0;
    uint64_t liveActs_ = 0;
    uint64_t peakLiveActs_ = 0;
    /** Boundary deliveries absorbed into super-operator streams. */
    uint64_t regionsFired_ = 0;
    /** Interior firings evaluated by cascades (also in firings_, which
     *  therefore stays engine-invariant). */
    uint64_t regionOpsInlined_ = 0;
    /** Interior deliveries the event engine would have dispatched for
     *  the inlined ops (sim.events.equivalent = events_ + this). */
    uint64_t eqExtraEvents_ = 0;
    /** Firings per NodeKind, reported as "sim.fire.<kind>". */
    std::vector<uint64_t> fireCounts_;
};

} // namespace cash

#endif // CASH_SIM_DATAFLOW_SIM_H
