/**
 * @file
 * Event-driven execution of Pegasus graphs with asynchronous-handshake
 * (Kahn network) semantics — the paper's "coarse hardware simulator"
 * (§7.3).
 *
 * Every edge is an unbounded FIFO; a node fires when its required
 * inputs are available, consumes them, and delivers outputs to its
 * consumers after the operation latency.  Memory operations share a
 * MemorySystem (LSQ + caches + TLB); data moves at fire time (token
 * edges guarantee conflicting accesses are ordered), timing is modeled
 * separately.  Loops execute by streaming successive values through
 * merge/eta rings, which is what makes pipelining (§6) visible as
 * reduced cycle counts.
 */
#ifndef CASH_SIM_DATAFLOW_SIM_H
#define CASH_SIM_DATAFLOW_SIM_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "frontend/layout.h"
#include "pegasus/graph.h"
#include "sim/memory_image.h"
#include "sim/memory_system.h"
#include "support/stats.h"

namespace cash {

/** Result of one simulated invocation. */
struct SimResult
{
    uint32_t returnValue = 0;
    uint64_t cycles = 0;
    StatSet stats;
};

class DataflowSimulator
{
  public:
    /**
     * @param graphs   all compiled procedures (callees resolved by name)
     * @param layout   memory layout used to build the graphs
     * @param cfg      memory-system configuration
     */
    DataflowSimulator(const std::vector<const Graph*>& graphs,
                      const MemoryLayout& layout, const MemConfig& cfg);

    /** Invoke @p name with @p args; memory persists across calls. */
    SimResult run(const std::string& name,
                  const std::vector<uint32_t>& args);

    MemoryImage& memory() { return image_; }
    const MemoryImage& memory() const { return image_; }

    /** Reset memory, caches and the stack. */
    void reset();

    void setMaxEvents(uint64_t n) { maxEvents_ = n; }

    /**
     * Observability sink: when set and enabled, run() records one span
     * per activation and LSQ-occupancy counter samples, all in the
     * simulated-cycles time domain (see docs/OBSERVABILITY.md).
     */
    void setTracer(TraceRecorder* tracer);

  private:
    // --- static per-graph indexing -----------------------------------
    struct InputDesc
    {
        bool isConst = false;
        uint32_t constValue = 0;
    };
    struct Consumer
    {
        int node = -1;   ///< Dense consumer index.
        int input = -1;  ///< Input slot on the consumer.
    };
    struct NodeIndex
    {
        const Node* n = nullptr;
        std::vector<InputDesc> inputs;
        /** Consumers per output port. */
        std::vector<std::vector<Consumer>> consumers;
        /** For merges: forward and back-edge input slots. */
        std::vector<int> fwdInputs;
        std::vector<int> backInputs;
        int deciderIdx = -1;
        /** All back producers are etas in this hyperblock, so one item
         *  arrives on every back input each iteration (wait-for-all
         *  consumption is deterministic). */
        bool strictBack = false;
    };
    struct GraphIndex
    {
        const Graph* g = nullptr;
        std::vector<NodeIndex> nodes;
        std::map<const Node*, int> dense;
    };

    // --- dynamic state ------------------------------------------------
    /**
     * One FIFO slot.  `eos` marks an end-of-stream token: an eta whose
     * predicate is false emits EOS instead of a value, so loop merges
     * can deterministically switch between their initial and back-edge
     * input streams (gated-SSA mu-node discipline).  Only Merge nodes
     * consume EOS items; they are never forwarded.
     */
    struct Item
    {
        uint32_t value = 0;
        bool eos = false;
    };

    struct Activation
    {
        int id = -1;
        const GraphIndex* gi = nullptr;
        std::vector<std::vector<std::deque<Item>>> fifo;
        /** Per-merge consumption state (mu-node protocol). */
        enum class MergeMode : uint8_t { Fwd, AwaitDecider, Back };
        std::vector<MergeMode> mergeMode;
        /**
         * Monotonic delivery clock per (node, output port): a port
         * delivers the results of successive firings in firing order,
         * so a fast later result (e.g. a nullified memory op) cannot
         * overtake a slow earlier one on the same wire.
         */
        std::vector<std::vector<uint64_t>> portClock;
        std::map<int, int64_t> tkCounter;  ///< TokenGen state.
        Activation* parent = nullptr;
        int parentCallNode = -1;
        uint32_t frameBase = 0;
        uint32_t frameSize = 0;
        uint64_t startTime = 0;
        bool finished = false;
    };

    struct Event
    {
        uint64_t time = 0;
        uint64_t seq = 0;
        Activation* act = nullptr;
        int node = -1;
        int input = -1;
        Item item;
        bool operator>(const Event& o) const
        {
            return time != o.time ? time > o.time : seq > o.seq;
        }
    };

    const GraphIndex& indexOf(const std::string& name);
    void buildIndex(const Graph* g);

    Activation* startActivation(const GraphIndex& gi,
                                const std::vector<uint32_t>& args,
                                uint64_t when, Activation* parent,
                                int parentCallNode);
    void deliver(Activation* a, int node, int input, Item item,
                 uint64_t when);
    void output(Activation* a, int node, int port, uint32_t value,
                uint64_t when, bool eos = false);
    bool ready(const Activation* a, int node) const;
    void tryFire(Activation* a, int node, uint64_t now);
    void fire(Activation* a, int node, uint64_t now);
    void fireMerge(Activation* a, int node, uint64_t now);
    uint32_t take(Activation* a, int node, int input);
    void finishActivation(Activation* a, uint32_t value, bool hasValue,
                          uint64_t now);

    std::map<std::string, GraphIndex> graphs_;
    const MemoryLayout& layout_;
    MemoryImage image_;
    MemorySystem memsys_;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue_;
    uint64_t seq_ = 0;
    std::vector<std::unique_ptr<Activation>> activations_;
    uint32_t stackPtr_ = MemoryLayout::kStackTop;

    bool done_ = false;
    uint32_t rootResult_ = 0;
    uint64_t rootDoneTime_ = 0;
    uint64_t maxEvents_ = 200000000;

    TraceRecorder* tracer_ = nullptr;

    // Per-run counters.
    uint64_t events_ = 0;
    uint64_t firings_ = 0;
    uint64_t dynLoads_ = 0;
    uint64_t dynStores_ = 0;
    uint64_t nullified_ = 0;  ///< Pred-false memory ops.
    uint64_t callsMade_ = 0;
    /** Firings per NodeKind, reported as "sim.fire.<kind>". */
    std::vector<uint64_t> fireCounts_;
};

} // namespace cash

#endif // CASH_SIM_DATAFLOW_SIM_H
