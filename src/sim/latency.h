/**
 * @file
 * Per-operation latencies (paper §7.3: "each operation has the same
 * latency as in a pisa architecture SimpleScalar simulator").
 */
#ifndef CASH_SIM_LATENCY_H
#define CASH_SIM_LATENCY_H

#include <cstdint>

#include "pegasus/node.h"

namespace cash {

/**
 * Latency in cycles of a non-memory node.  Memory operations get their
 * latency from the memory system; calls from the callee's execution.
 */
uint64_t nodeLatency(const Node* n);

} // namespace cash

#endif // CASH_SIM_LATENCY_H
