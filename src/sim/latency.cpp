#include "sim/latency.h"

namespace cash {

uint64_t
nodeLatency(const Node* n)
{
    switch (n->kind) {
      case NodeKind::Arith:
        switch (n->op) {
          case Op::Mul:
            return 3;   // SimpleScalar IntMult
          case Op::DivS:
          case Op::DivU:
          case Op::RemS:
          case Op::RemU:
            return 20;  // SimpleScalar IntDiv
          default:
            return 1;   // IntALU
        }
      case NodeKind::Mux:
      case NodeKind::Merge:
      case NodeKind::Eta:
      case NodeKind::Combine:
      case NodeKind::TokenGen:
        return 0;  // steering/synchronization: wires in hardware
      default:
        return 0;
    }
}

} // namespace cash
