/**
 * @file
 * The simulated flat byte-addressable memory shared by all functional
 * units of a dataflow simulation.
 */
#ifndef CASH_SIM_MEMORY_IMAGE_H
#define CASH_SIM_MEMORY_IMAGE_H

#include <cstdint>
#include <vector>

#include "frontend/layout.h"

namespace cash {

class MemoryImage
{
  public:
    explicit MemoryImage(const MemoryLayout& layout);

    /** Restore the initial (global-initializer) contents. */
    void reset();

    uint32_t load(uint32_t addr, int size, bool signExtend) const;
    void store(uint32_t addr, uint32_t value, int size);

    uint32_t loadWord(uint32_t addr) const { return load(addr, 4, false); }
    void storeWord(uint32_t addr, uint32_t v) { store(addr, v, 4); }

    const std::vector<uint8_t>& bytes() const { return mem_; }
    size_t size() const { return mem_.size(); }

  private:
    const MemoryLayout& layout_;
    std::vector<uint8_t> mem_;
};

} // namespace cash

#endif // CASH_SIM_MEMORY_IMAGE_H
