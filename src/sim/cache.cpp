#include "sim/cache.h"

#include "support/diagnostics.h"

namespace cash {

Cache::Cache(const char* name, uint32_t sizeBytes, int assoc,
             uint32_t lineBytes, uint64_t hitLatency)
    : name_(name), assoc_(assoc), lineBytes_(lineBytes),
      hitLatency_(hitLatency)
{
    CASH_ASSERT(sizeBytes % (lineBytes * assoc) == 0,
                "cache geometry must divide evenly");
    numSets_ = sizeBytes / (lineBytes * assoc);
    lines_.assign(static_cast<size_t>(numSets_) * assoc_, Line{});
}

void
Cache::reset()
{
    for (Line& l : lines_)
        l = Line{};
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

Cache::AccessResult
Cache::access(uint32_t addr, bool isWrite)
{
    tick_++;
    uint32_t lineAddr = addr / lineBytes_;
    uint32_t set = lineAddr % numSets_;
    uint32_t tag = lineAddr / numSets_;
    Line* base = &lines_[static_cast<size_t>(set) * assoc_];

    AccessResult res;
    res.latency = hitLatency_;

    for (int w = 0; w < assoc_; w++) {
        Line& l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = tick_;
            l.dirty |= isWrite;
            hits_++;
            res.hit = true;
            return res;
        }
    }

    // Miss: allocate, evicting LRU.
    misses_++;
    Line* victim = base;
    for (int w = 1; w < assoc_; w++)
        if (!base[w].valid ||
            (victim->valid && base[w].lastUse < victim->lastUse))
            victim = &base[w];
    if (victim->valid && victim->dirty) {
        writebacks_++;
        res.writeback = true;
    }
    victim->valid = true;
    victim->dirty = isWrite;
    victim->tag = tag;
    victim->lastUse = tick_;
    return res;
}

} // namespace cash
