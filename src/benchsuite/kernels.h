/**
 * @file
 * The Mini-C kernel suite standing in for the paper's MediaBench and
 * SPECint95 programs (§7, Table 2).  Each kernel is a self-contained
 * Mini-C translation unit with an integer-only entry point so that
 * tests, benchmarks and examples can compile and run it uniformly.
 *
 * Kernels are chosen to exercise the same phenomena the paper's
 * benchmarks exhibit: redundant loads/stores, disambiguable arrays,
 * pointer parameters with `#pragma independent`, constant tables
 * (immutable loads), monotone induction stores, read-only sweeps and
 * fixed-distance loop-carried dependences.
 */
#ifndef CASH_BENCHSUITE_KERNELS_H
#define CASH_BENCHSUITE_KERNELS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cash {

struct Kernel
{
    std::string name;
    std::string domain;       ///< MediaBench/SPEC family it models.
    std::string description;
    std::string source;       ///< Mini-C translation unit.
    std::string entry;        ///< Entry function (scalar args only).
    std::vector<uint32_t> args;
    int pragmas = 0;          ///< #pragma independent count (Table 2).
};

/** The whole suite. */
const std::vector<Kernel>& kernelSuite();

/** Lookup by name (fatal if missing). */
const Kernel& kernelByName(const std::string& name);

/** The paper's §2 motivating example (Figure 1). */
std::string section2ExampleSource();

/** The paper's §6.3 loop-decoupling example (Figure 15). */
std::string decouplingExampleSource();

/** The paper's Figure 12 read-only / monotone loop. */
std::string figure12Source();

} // namespace cash

#endif // CASH_BENCHSUITE_KERNELS_H
