#include "benchsuite/kernels.h"

#include "support/diagnostics.h"

namespace cash {

namespace {

// ---------------------------------------------------------------------
// adpcm-style codec (MediaBench adpcm): constant step tables, index
// clamping, branchy inner loop over a sample buffer.
// ---------------------------------------------------------------------
const char* kAdpcmSrc = R"(
const int indexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8
};
const int stepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767, 32767
};

int input[512];
int encoded[512];

int adpcm_encode(int n)
{
    int valpred = 0;
    int index = 0;
    int i;
    for (i = 0; i < n; i++) {
        int val = input[i];
        int step = stepTable[index];
        int diff = val - valpred;
        int sign = 0;
        if (diff < 0) { sign = 8; diff = -diff; }
        int delta = 0;
        if (diff >= step) { delta = 4; diff -= step; }
        step >>= 1;
        if (diff >= step) { delta |= 2; diff -= step; }
        step >>= 1;
        if (diff >= step) { delta |= 1; }
        delta |= sign;
        int vpdiff = stepTable[index] >> 3;
        if (delta & 4) vpdiff += stepTable[index];
        if (delta & 2) vpdiff += stepTable[index] >> 1;
        if (delta & 1) vpdiff += stepTable[index] >> 2;
        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;
        index += indexTable[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
        encoded[i] = delta;
    }
    return valpred;
}

int adpcm_run(int n)
{
    int i;
    int seed = 12345;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        input[i] = (seed >> 16) % 8192;
    }
    int v = adpcm_encode(n);
    int sum = 0;
    for (i = 0; i < n; i++)
        sum += encoded[i];
    return v + sum;
}
)";

// ---------------------------------------------------------------------
// fir filter (gsm-style): read-only coefficient table, sliding window,
// pragma-independent input/output arrays.
// ---------------------------------------------------------------------
const char* kFirSrc = R"(
const int coeff[16] = {
    3, -9, 22, -41, 66, -96, 127, 4095,
    127, -96, 66, -41, 22, -9, 3, 1
};
int signal[1024];
int filtered[1024];

void fir(int* src, int* dst, int n)
{
    #pragma independent src dst
    int i;
    int j;
    for (i = 0; i + 16 <= n; i++) {
        int acc = 0;
        for (j = 0; j < 16; j++)
            acc += src[i + j] * coeff[j];
        dst[i] = acc >> 12;
    }
}

int fir_run(int n)
{
    int i;
    int seed = 7;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        signal[i] = (seed >> 18) % 1024;
    }
    fir(signal, filtered, n);
    int sum = 0;
    for (i = 0; i + 16 <= n; i++)
        sum ^= filtered[i] + i;
    return sum;
}
)";

// ---------------------------------------------------------------------
// idct-like integer transform (mpeg2 style): row/col passes over an
// 8x8 block array, disjoint temporaries.
// ---------------------------------------------------------------------
const char* kDctSrc = R"(
int block[64];
int tmp[64];

void rowpass(void)
{
    int i;
    for (i = 0; i < 8; i++) {
        int b = i * 8;
        int s0 = block[b] + block[b + 7];
        int s1 = block[b + 1] + block[b + 6];
        int s2 = block[b + 2] + block[b + 5];
        int s3 = block[b + 3] + block[b + 4];
        int d0 = block[b] - block[b + 7];
        int d1 = block[b + 1] - block[b + 6];
        int d2 = block[b + 2] - block[b + 5];
        int d3 = block[b + 3] - block[b + 4];
        tmp[b] = s0 + s1 + s2 + s3;
        tmp[b + 1] = (d0 * 5 + d1 * 4 + d2 * 2 + d3) >> 2;
        tmp[b + 2] = s0 - s3 + ((s1 - s2) >> 1);
        tmp[b + 3] = (d0 * 4 - d1 - d2 * 5 + d3 * 2) >> 2;
        tmp[b + 4] = s0 - s1 - s2 + s3;
        tmp[b + 5] = (d0 * 2 - d1 * 5 + d2 + d3 * 4) >> 2;
        tmp[b + 6] = ((s0 - s3) >> 1) - s1 + s2;
        tmp[b + 7] = (d0 - d1 * 2 + d2 * 4 - d3 * 5) >> 2;
    }
}

void colpass(void)
{
    int i;
    for (i = 0; i < 8; i++) {
        int s0 = tmp[i] + tmp[i + 56];
        int s1 = tmp[i + 8] + tmp[i + 48];
        int s2 = tmp[i + 16] + tmp[i + 40];
        int s3 = tmp[i + 24] + tmp[i + 32];
        block[i] = (s0 + s1 + s2 + s3) >> 3;
        block[i + 8] = (s0 - s1 + s2 - s3) >> 3;
        block[i + 16] = (s0 - s3) >> 2;
        block[i + 24] = (s1 - s2) >> 2;
        block[i + 32] = (s0 + s3 - s1 - s2) >> 3;
        block[i + 40] = (tmp[i] - tmp[i + 56]) >> 1;
        block[i + 48] = (tmp[i + 8] - tmp[i + 48]) >> 1;
        block[i + 56] = (tmp[i + 16] - tmp[i + 40]) >> 1;
    }
}

int dct_run(int iters)
{
    int i;
    int k;
    for (i = 0; i < 64; i++)
        block[i] = (i * 29 + 13) % 255 - 128;
    for (k = 0; k < iters; k++) {
        rowpass();
        colpass();
    }
    int sum = 0;
    for (i = 0; i < 64; i++)
        sum += block[i];
    return sum;
}
)";

// ---------------------------------------------------------------------
// histogram (jpeg/epic style): data-dependent store addresses that no
// static analysis can disambiguate.
// ---------------------------------------------------------------------
const char* kHistogramSrc = R"(
int data[2048];
int hist[256];

int histogram(int n)
{
    int i;
    for (i = 0; i < 256; i++)
        hist[i] = 0;
    for (i = 0; i < n; i++)
        hist[data[i] & 255] += 1;
    int max = 0;
    for (i = 0; i < 256; i++)
        if (hist[i] > max) max = hist[i];
    return max;
}

int histogram_run(int n)
{
    int i;
    int seed = 99;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        data[i] = seed >> 16;
    }
    return histogram(n);
}
)";

// ---------------------------------------------------------------------
// string search (stringsearch / pegwit style): byte loads, early exit.
// ---------------------------------------------------------------------
const char* kStrSearchSrc = R"(
char haystack[4096];
char needle[16];

int find(int hlen, int nlen)
{
    int i;
    int j;
    for (i = 0; i + nlen <= hlen; i++) {
        int ok = 1;
        for (j = 0; j < nlen; j++) {
            if (haystack[i + j] != needle[j]) {
                ok = 0;
                break;
            }
        }
        if (ok)
            return i;
    }
    return -1;
}

int strsearch_run(int hlen)
{
    int i;
    int seed = 5;
    for (i = 0; i < hlen; i++) {
        seed = seed * 1103515245 + 12345;
        haystack[i] = (char)((seed >> 16) % 26 + 97);
    }
    for (i = 0; i < 6; i++)
        needle[i] = haystack[hlen - 6 + i];
    return find(hlen, 6);
}
)";

// ---------------------------------------------------------------------
// crc32 (pegwit/compress style): constant table, byte stream.
// ---------------------------------------------------------------------
const char* kCrcSrc = R"(
unsigned crcTable[256];
char message[2048];

void crc_init(void)
{
    unsigned c;
    int n;
    int k;
    for (n = 0; n < 256; n++) {
        c = (unsigned)n;
        for (k = 0; k < 8; k++) {
            if (c & 1)
                c = 0xedb88320 ^ (c >> 1);
            else
                c = c >> 1;
        }
        crcTable[n] = c;
    }
}

unsigned crc32(int len)
{
    unsigned c = 0xffffffff;
    int i;
    for (i = 0; i < len; i++)
        c = crcTable[(c ^ (unsigned char)message[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffff;
}

int crc_run(int len)
{
    int i;
    for (i = 0; i < len; i++)
        message[i] = (char)(i * 7 + 3);
    crc_init();
    return (int)crc32(len);
}
)";

// ---------------------------------------------------------------------
// saxpy / vector kernels (epic style): pragma-independent streams —
// the paper's Figure 10 pipelining showcase.
// ---------------------------------------------------------------------
const char* kSaxpySrc = R"(
int xs[4096];
int ys[4096];
int zs[4096];

void saxpy(int* x, int* y, int* z, int a, int n)
{
    #pragma independent x y
    #pragma independent x z
    #pragma independent y z
    int i;
    for (i = 0; i < n; i++)
        z[i] = a * x[i] + y[i];
}

int saxpy_run(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        xs[i] = i * 3 + 1;
        ys[i] = i - 7;
    }
    saxpy(xs, ys, zs, 5, n);
    int sum = 0;
    for (i = 0; i < n; i++)
        sum += zs[i];
    return sum;
}
)";

// ---------------------------------------------------------------------
// pointer chase (130.li style): linked structure through index arrays.
// ---------------------------------------------------------------------
const char* kChaseSrc = R"(
int nextIdx[1024];
int weight[1024];

int chase(int start, int steps)
{
    int cur = start;
    int acc = 0;
    int i;
    for (i = 0; i < steps; i++) {
        acc += weight[cur];
        cur = nextIdx[cur];
    }
    return acc;
}

int chase_run(int steps)
{
    int i;
    for (i = 0; i < 1024; i++) {
        nextIdx[i] = (i * 167 + 31) % 1024;
        weight[i] = i % 17;
    }
    return chase(0, steps);
}
)";

// ---------------------------------------------------------------------
// matrix multiply (mesa/ijpeg style): classic three-deep loop nest.
// ---------------------------------------------------------------------
const char* kMatmulSrc = R"(
int A[32 * 32];
int B[32 * 32];
int C[32 * 32];

void matmul(int n)
{
    int i;
    int j;
    int k;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            int acc = 0;
            for (k = 0; k < n; k++)
                acc += A[i * 32 + k] * B[k * 32 + j];
            C[i * 32 + j] = acc;
        }
    }
}

int matmul_run(int n)
{
    int i;
    for (i = 0; i < 32 * 32; i++) {
        A[i] = i % 13;
        B[i] = (i * 5) % 11;
    }
    matmul(n);
    int sum = 0;
    for (i = 0; i < n * 32; i++)
        sum += C[i];
    return sum;
}
)";

// ---------------------------------------------------------------------
// g721-style predictor update: scalar state machine with memory taps.
// ---------------------------------------------------------------------
const char* kG721Src = R"(
int dq[8];
int b[8];
int predictor(int samples)
{
    int i;
    int k;
    for (i = 0; i < 8; i++) {
        dq[i] = 0;
        b[i] = 0;
    }
    int seed = 321;
    int se = 0;
    for (k = 0; k < samples; k++) {
        seed = seed * 1103515245 + 12345;
        int d = (seed >> 20) % 256 - 128;
        se = 0;
        for (i = 0; i < 8; i++)
            se += (b[i] * dq[i]) >> 8;
        int err = d - se;
        for (i = 0; i < 8; i++) {
            if ((err ^ dq[i]) >= 0)
                b[i] += (dq[i] != 0) * 32;
            else
                b[i] -= (dq[i] != 0) * 32;
        }
        for (i = 7; i > 0; i--)
            dq[i] = dq[i - 1];
        dq[0] = d;
    }
    return se;
}

int g721_run(int samples)
{
    return predictor(samples);
}
)";

// ---------------------------------------------------------------------
// compress-style run-length coder: byte in, byte out with a mode flag
// (stresses §2-style redundant access patterns).
// ---------------------------------------------------------------------
const char* kRleSrc = R"(
char rawbuf[4096];
char packed[8192];

int rle_encode(int n)
{
    int i = 0;
    int o = 0;
    while (i < n) {
        char c = rawbuf[i];
        int run = 1;
        while (i + run < n && rawbuf[i + run] == c && run < 127)
            run++;
        packed[o] = (char)run;
        packed[o + 1] = c;
        o += 2;
        i += run;
    }
    return o;
}

int rle_run(int n)
{
    int i;
    int seed = 17;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        if ((seed >> 16) & 3)
            rawbuf[i] = 65;
        else
            rawbuf[i] = (char)((seed >> 18) % 26 + 65);
    }
    return rle_encode(n);
}
)";

// ---------------------------------------------------------------------
// stencil with fixed dependence distance (Fortran-style; §6.3 target).
// ---------------------------------------------------------------------
const char* kStencilSrc = R"(
int cells[8192];

int stencil(int n)
{
    int i;
    for (i = 0; i + 3 < n; i++)
        cells[i + 3] = (cells[i] + cells[i + 3]) >> 1;
    return cells[n - 1];
}

int stencil_run(int n)
{
    int i;
    for (i = 0; i < n; i++)
        cells[i] = i * 37 % 256;
    return stencil(n);
}
)";

// ---------------------------------------------------------------------
// The paper's §2 motivating example wrapped in a runnable harness.
// ---------------------------------------------------------------------
const char* kMemoptSrc = R"(
unsigned table[64];
unsigned src[1];

void f(unsigned* p, unsigned* a, int i)
{
    #pragma independent p a
    if (p) a[i] += *p;
    else a[i] = 1;
    a[i] <<= a[i + 1];
}

int memopt_run(int useNull)
{
    int i;
    for (i = 0; i < 64; i++)
        table[i] = (unsigned)(i + 1);
    src[0] = 3u;
    if (useNull)
        f((unsigned*)0, table, 5);
    else
        f(src, table, 5);
    return (int)table[5];
}
)";

// ---------------------------------------------------------------------
// gsm-style LPC autocorrelation: sliding dot products over a signal.
// ---------------------------------------------------------------------
const char* kAutocorrSrc = R"(
int samples[1024];
int acf[9];

void autocorr(int n)
{
    int k;
    int i;
    for (k = 0; k <= 8; k++) {
        int acc = 0;
        for (i = k; i < n; i++)
            acc += (samples[i] >> 4) * (samples[i - k] >> 4);
        acf[k] = acc;
    }
}

int autocorr_run(int n)
{
    int i;
    int seed = 44;
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        samples[i] = (seed >> 17) % 4096 - 2048;
    }
    autocorr(n);
    int s = 0;
    for (i = 0; i <= 8; i++)
        s ^= acf[i] + i;
    return s;
}
)";

// ---------------------------------------------------------------------
// epic-style Haar wavelet: in-place butterflies at halving strides
// (distance-carried dependences at varying distances).
// ---------------------------------------------------------------------
const char* kWaveletSrc = R"(
int wv[1024];
int tmpw[1024];

void haar(int n)
{
    int len = n;
    int i;
    while (len > 1) {
        int half = len / 2;
        for (i = 0; i < half; i++) {
            int a = wv[2 * i];
            int b = wv[2 * i + 1];
            tmpw[i] = (a + b) >> 1;
            tmpw[half + i] = a - b;
        }
        for (i = 0; i < len; i++)
            wv[i] = tmpw[i];
        len = half;
    }
}

int wavelet_run(int n)
{
    int i;
    for (i = 0; i < n; i++)
        wv[i] = (i * 31 + 7) % 509;
    haar(n);
    int s = 0;
    for (i = 0; i < n; i++)
        s += wv[i] * (i + 1);
    return s;
}
)";

// ---------------------------------------------------------------------
// jpeg-style zigzag + quantization: permutation table reads, constant
// divisor table (immutable loads), independent output stream.
// ---------------------------------------------------------------------
const char* kQuantSrc = R"(
const int zigzag[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63
};
const int qtable[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68,109,103, 77,
    24, 35, 55, 64, 81,104,113, 92,
    49, 64, 78, 87,103,121,120,101,
    72, 92, 95, 98,112,100,103, 99
};
int coefs[64];
int quantized[64];

void quantize(void)
{
    int i;
    for (i = 0; i < 64; i++) {
        int c = coefs[zigzag[i]];
        quantized[i] = c / qtable[i];
    }
}

int quant_run(int blocks)
{
    int b;
    int i;
    int s = 0;
    for (b = 0; b < blocks; b++) {
        for (i = 0; i < 64; i++)
            coefs[i] = ((i * 13 + b * 7) % 255 - 128) * 8;
        quantize();
        for (i = 0; i < 64; i++)
            s += quantized[i];
    }
    return s;
}
)";

// ---------------------------------------------------------------------
// mpeg2-style motion-estimation SAD over two pragma-independent
// frames: the read-only splitting showcase with real arithmetic.
// ---------------------------------------------------------------------
const char* kSadSrc = R"(
char ref[4096];
char cur[4096];

int sad16(char* a, char* b2, int stride)
{
    #pragma independent a b2
    int y;
    int x;
    int acc = 0;
    for (y = 0; y < 16; y++) {
        for (x = 0; x < 16; x++) {
            int d = a[y * stride + x] - b2[y * stride + x];
            if (d < 0) d = -d;
            acc += d;
        }
    }
    return acc;
}

int sad_run(int tries)
{
    int i;
    int seed = 9;
    for (i = 0; i < 4096; i++) {
        seed = seed * 1103515245 + 12345;
        ref[i] = (char)((seed >> 16) & 127);
        cur[i] = (char)((seed >> 18) & 127);
    }
    int best = 1 << 30;
    for (i = 0; i < tries; i++) {
        int s = sad16(ref, cur + i * 8, 64);
        if (s < best) best = s;
    }
    return best;
}
)";

// ---------------------------------------------------------------------
// 130.li-style mark phase: a cons-cell heap in index arrays, with a
// worklist traversal (irregular control + data-dependent loads).
// ---------------------------------------------------------------------
const char* kMarkSrc = R"(
int carIdx[512];
int cdrIdx[512];
int mark[512];
int stack[512];

int markFrom(int root)
{
    int sp = 0;
    int count = 0;
    stack[sp] = root;
    sp = 1;
    while (sp > 0) {
        sp -= 1;
        int cell = stack[sp];
        if (cell < 0)
            continue;
        if (mark[cell])
            continue;
        mark[cell] = 1;
        count += 1;
        stack[sp] = carIdx[cell];
        sp += 1;
        stack[sp] = cdrIdx[cell];
        sp += 1;
    }
    return count;
}

int mark_run(int cells)
{
    int i;
    for (i = 0; i < cells; i++) {
        mark[i] = 0;
        carIdx[i] = (i * 2 + 1 < cells) ? i * 2 + 1 : -1;
        cdrIdx[i] = (i * 2 + 2 < cells) ? i * 2 + 2 : -1;
    }
    return markFrom(0);
}
)";

// ---------------------------------------------------------------------
// 099.go-style board scan: neighbor counting on a 2-D grid encoded in
// one array, heavy predication in the inner loop.
// ---------------------------------------------------------------------
const char* kBoardSrc = R"(
char board[361];

int liberties(int n)
{
    int i;
    int libs = 0;
    for (i = 0; i < n * n; i++) {
        if (board[i] != 0)
            continue;
        int r = i / n;
        int c = i % n;
        int occupied = 0;
        if (r > 0 && board[i - n]) occupied += 1;
        if (r < n - 1 && board[i + n]) occupied += 1;
        if (c > 0 && board[i - 1]) occupied += 1;
        if (c < n - 1 && board[i + 1]) occupied += 1;
        libs += 4 - occupied;
    }
    return libs;
}

int board_run(int n)
{
    int i;
    int seed = 77;
    for (i = 0; i < n * n; i++) {
        seed = seed * 1103515245 + 12345;
        board[i] = (char)(((seed >> 16) % 3 == 0) ? 1 : 0);
    }
    return liberties(n);
}
)";

// ---------------------------------------------------------------------
// 147.vortex-style record store: fixed-width records with field
// updates through a pointer parameter (store forwarding food).
// ---------------------------------------------------------------------
const char* kRecordSrc = R"(
int store_[1024];

void upsert(int* recs, int key, int val)
{
    int i;
    for (i = 0; i < 128; i++) {
        int base = i * 4;
        if (recs[base] == key) {
            recs[base + 1] = val;
            recs[base + 2] += 1;
            return;
        }
        if (recs[base] == 0) {
            recs[base] = key;
            recs[base + 1] = val;
            recs[base + 2] = 1;
            recs[base + 3] = i;
            return;
        }
    }
}

int record_run(int ops)
{
    int i;
    for (i = 0; i < 1024; i++)
        store_[i] = 0;
    int seed = 3;
    for (i = 0; i < ops; i++) {
        seed = seed * 1103515245 + 12345;
        int key = ((seed >> 16) % 50) + 1;
        upsert(store_, key, i);
    }
    int s = 0;
    for (i = 0; i < 128; i++)
        s += store_[i * 4 + 1] + store_[i * 4 + 2];
    return s;
}
)";

// ---------------------------------------------------------------------
// Helper-function dot/scale: the classic DSP inner products factored
// into callees that take their buffers as pointer parameters.  The
// four calls in the driver touch pairwise-disjoint arrays, so every
// cross-call token edge between them is interproc_token_pruning food.
// ---------------------------------------------------------------------
const char* kHelperDotSrc = R"(
int xa_[512];
int xb_[512];
int ya_[512];
int yb_[512];
int kco_[16];

void scale(int* v, int n)
{
    int i;
    for (i = 0; i < n; i++)
        v[i] = v[i] * kco_[i & 15];
}

int dotp(int* x, int* y, int n)
{
    int i;
    int s = 0;
    for (i = 0; i < n; i++)
        s += x[i] * y[i];
    return s;
}

int hdot_run(int n)
{
    int i;
    for (i = 0; i < 16; i++)
        kco_[i] = (i & 3) + 1;
    for (i = 0; i < n; i++) {
        xa_[i] = i & 7;
        xb_[i] = (i >> 1) & 7;
        ya_[i] = 3 - (i & 3);
        yb_[i] = (i & 15) - 7;
    }
    scale(xa_, n);
    scale(xb_, n);
    return dotp(xa_, ya_, n) + dotp(xb_, yb_, n);
}
)";

// ---------------------------------------------------------------------
// Two-level call chain: the driver calls per-stage wrappers which call
// a shared leaf through pointer parameters, so summary translation has
// to resolve externals through two bindings (stage arg -> leaf param).
// ---------------------------------------------------------------------
const char* kCallChainSrc = R"(
int src_[512];
int mid_[512];
int aux_[512];
int out_[512];

void copyscale(int* d, int* s, int n, int k)
{
    int i;
    for (i = 0; i < n; i++)
        d[i] = s[i] * k;
}

void stage_lo(int n)
{
    copyscale(mid_, src_, n, 2);
}

void stage_hi(int n)
{
    copyscale(out_, aux_, n, 3);
}

int chain_run(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        src_[i] = i & 31;
        aux_[i] = (i * 5) & 31;
    }
    stage_lo(n);
    stage_hi(n);
    int s = 0;
    for (i = 0; i < n; i++)
        s += mid_[i] + out_[i];
    return s;
}
)";

// ---------------------------------------------------------------------
// Recursive divide-and-conquer reducer: a self-recursive read-only
// callee (an SCC in the call graph, summarized by fixpoint) bracketed
// by writes to a disjoint log array, so the calls around the recursion
// stay prunable even though the callee is cyclic.
// ---------------------------------------------------------------------
const char* kRecSumSrc = R"(
int tree_[1024];
int log_[64];

void touch(int* t, int d)
{
    t[d] += 1;
}

int redsum(int* v, int lo, int hi)
{
    if (hi - lo <= 1)
        return v[lo];
    int mid = lo + (hi - lo) / 2;
    return redsum(v, lo, mid) + redsum(v, mid, hi);
}

int recsum_run(int n)
{
    int i;
    for (i = 0; i < n; i++)
        tree_[i] = (i * 7) % 13;
    for (i = 0; i < 64; i++)
        log_[i] = 0;
    touch(log_, 1);
    int s = redsum(tree_, 0, n);
    touch(log_, 2);
    return s + log_[1] + log_[2];
}
)";

std::vector<Kernel>
makeSuite()
{
    std::vector<Kernel> suite;
    auto add = [&](const char* name, const char* domain,
                   const char* desc, const char* src, const char* entry,
                   std::vector<uint32_t> args, int pragmas) {
        Kernel k;
        k.name = name;
        k.domain = domain;
        k.description = desc;
        k.source = src;
        k.entry = entry;
        k.args = std::move(args);
        k.pragmas = pragmas;
        suite.push_back(std::move(k));
    };

    add("adpcm", "adpcm_e", "ADPCM encoder with constant step tables",
        kAdpcmSrc, "adpcm_run", {256}, 0);
    add("fir", "gsm_e", "16-tap FIR filter over a signal buffer",
        kFirSrc, "fir_run", {512}, 1);
    add("dct", "mpeg2_d", "8x8 integer transform row/column passes",
        kDctSrc, "dct_run", {8}, 0);
    add("histogram", "jpeg_e", "byte histogram with data-dependent "
        "stores", kHistogramSrc, "histogram_run", {1024}, 0);
    add("strsearch", "pegwit_e", "naive substring search over bytes",
        kStrSearchSrc, "strsearch_run", {1024}, 0);
    add("crc", "129.compress", "table-driven CRC-32 over a message",
        kCrcSrc, "crc_run", {1024}, 0);
    add("saxpy", "epic_e", "streaming a*x+y with independent arrays",
        kSaxpySrc, "saxpy_run", {1024}, 3);
    add("chase", "130.li", "pointer chasing through an index array",
        kChaseSrc, "chase_run", {2048}, 0);
    add("matmul", "mesa", "32x32 integer matrix multiply",
        kMatmulSrc, "matmul_run", {16}, 0);
    add("g721", "g721_e", "adaptive predictor state machine",
        kG721Src, "g721_run", {128}, 0);
    add("rle", "129.compress", "run-length encoder over bytes",
        kRleSrc, "rle_run", {1024}, 0);
    add("stencil", "124.m88ksim", "distance-3 recurrence (loop "
        "decoupling target)", kStencilSrc, "stencil_run", {2048}, 0);
    add("memopt", "section-2", "the paper's motivating example",
        kMemoptSrc, "memopt_run", {0}, 1);
    add("autocorr", "gsm_d", "LPC autocorrelation dot products",
        kAutocorrSrc, "autocorr_run", {512}, 0);
    add("wavelet", "epic_d", "in-place Haar wavelet butterflies",
        kWaveletSrc, "wavelet_run", {256}, 0);
    add("quant", "jpeg_d", "zigzag + quantization with const tables",
        kQuantSrc, "quant_run", {8}, 0);
    add("sad", "mpeg2_e", "16x16 motion-estimation SAD",
        kSadSrc, "sad_run", {8}, 1);
    add("mark", "130.li", "mark phase over a cons-cell heap",
        kMarkSrc, "mark_run", {400}, 0);
    add("goboard", "099.go", "liberty counting on a go board",
        kBoardSrc, "board_run", {19}, 0);
    add("vortexdb", "147.vortex", "record-store upserts",
        kRecordSrc, "record_run", {256}, 0);
    add("helperdot", "gsm_e", "dot/scale helpers over disjoint "
        "buffers (interprocedural pruning target)",
        kHelperDotSrc, "hdot_run", {256}, 0);
    add("callchain", "epic_e", "two-level call chain through a shared "
        "leaf (summary translation target)",
        kCallChainSrc, "chain_run", {256}, 0);
    add("recsum", "130.li", "recursive divide-and-conquer reducer "
        "(call-graph SCC fixpoint target)",
        kRecSumSrc, "recsum_run", {256}, 0);
    return suite;
}

} // namespace

const std::vector<Kernel>&
kernelSuite()
{
    static const std::vector<Kernel> suite = makeSuite();
    return suite;
}

const Kernel&
kernelByName(const std::string& name)
{
    for (const Kernel& k : kernelSuite())
        if (k.name == name)
            return k;
    fatal("unknown kernel: " + name);
}

std::string
section2ExampleSource()
{
    return kMemoptSrc;
}

std::string
decouplingExampleSource()
{
    return kStencilSrc;
}

std::string
figure12Source()
{
    return R"(
int a[4096];
int b[4097];
int psrc[1];

void g(int* p, int n)
{
    #pragma independent p a
    #pragma independent p b
    int i;
    for (i = 0; i < n; i++) {
        b[i + 1] = i & 0xf;
        a[i] = b[i] + *p;
    }
}

int fig12_run(int n)
{
    int i;
    for (i = 0; i <= n; i++)
        b[i] = 0;
    psrc[0] = 42;
    g(psrc, n);
    int sum = 0;
    for (i = 0; i < n; i++)
        sum += a[i] + b[i];
    return sum;
}
)";
}

} // namespace cash
