/**
 * @file
 * Seeded random Mini-C program generation for the fuzz/soak harness
 * (docs/FUZZING.md).
 *
 * The generator does not emit text directly: it builds a small
 * grammar-level IR (GenExpr / GenStmt / GenProgram) and renders it.
 * That split is what makes the delta reducer (minimize.h) *grammar
 * aware* — it shrinks programs by removing statements, unwrapping
 * loops and collapsing expression trees on the IR, so every reduction
 * candidate is still a syntactically plausible Mini-C program rather
 * than a random byte-level slice.
 *
 * Determinism contract: `generateProgram(seed, profile)` depends on
 * nothing but its arguments.  The RNG is a self-contained splitmix64
 * (no std:: distributions, whose sequences vary across standard
 * libraries), so a seed reproduces the same program on every machine
 * — the property every corpus entry and repro command relies on.
 *
 * Validity contract: every generated program parses, passes sema and
 * terminates.  The generator enforces this structurally:
 *   * array subscripts are always masked to the array extent
 *     (sizes are powers of two);
 *   * loops are canonical counted forms whose induction variable is
 *     never reassigned in the body;
 *   * recursion always decrements an explicit depth parameter with a
 *     `<= 0` base case, entered with a small literal depth;
 *   * callees are generated before their callers (self-calls aside),
 *     so the static call multigraph is a DAG plus self-loops;
 *   * an estimated dynamic-work budget caps loop nesting and
 *     call-in-loop fan-out, keeping every program comfortably inside
 *     the soak driver's simulator event budget.
 * Division by zero and oversized shifts need no guards: the Pegasus
 * evaluation rules make them total (sim/value.h).
 */
#ifndef CASH_FUZZ_GENERATOR_H
#define CASH_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace cash {
namespace fuzz {

/**
 * Size/feature knobs of one generated program family.  Use the named
 * profiles (profileByName) for the stable CLI surface; the struct
 * stays public so tests can pin exact shapes.
 */
struct GenProfile
{
    std::string name = "small";
    /** Helper functions besides the `run` entry (min..max). */
    int minFunctions = 1;
    int maxFunctions = 3;
    /** Statements per block (min..max, before nesting). */
    int minStmts = 2;
    int maxStmts = 5;
    /** Expression tree depth cap. */
    int maxExprDepth = 3;
    /** Loop/if nesting depth cap. */
    int maxBlockDepth = 2;
    /** Loop trip-count cap (trips are 1..maxLoopTrips literals). */
    int maxLoopTrips = 8;
    /** Global arrays available to every function (1..maxArrays). */
    int maxArrays = 2;
    /** Elements per global array; must be a power of two. */
    int arrayElems = 16;
    /** Scalar globals (memory-resident cross-call state). */
    int maxGlobals = 2;
    /** Generate pointer-parameter functions + #pragma independent. */
    bool pointers = true;
    /** Generate bounded self-recursive functions. */
    bool recursion = true;
    /** Recursion depth literal cap at call sites. */
    int maxRecursionDepth = 5;
    /** Mix `unsigned` scalars in with `int`. */
    bool unsignedTypes = true;
    /**
     * Estimated dynamic-work ceiling (abstract units, roughly one per
     * executed statement).  Loops multiply their body's estimate by
     * the trip count and calls add the callee's estimate, so this is
     * what keeps generated programs off the simulator event limit.
     */
    int64_t workBudget = 60000;

    /**
     * small | medium | large — fixed knob sets of increasing size —
     * calls — a multi-function family (many helpers, pointer
     * parameters, recursion) that stresses the interprocedural
     * MOD/REF layer — or mixed, which picks one of small/medium/large
     * per seed (the soak default: one seed range covers all
     * families).  Fatal on unknown names, listing the valid ones.
     */
    static GenProfile byName(const std::string& name);
};

// ---------------------------------------------------------------------
// Grammar IR
// ---------------------------------------------------------------------

/** One expression-tree node. */
struct GenExpr
{
    enum class K
    {
        Lit,      ///< integer literal `value`
        Var,      ///< scalar variable reference `name`
        ArrLoad,  ///< `name[(kids[0]) & mask]`
        Unary,    ///< `op kids[0]`
        Binary,   ///< `(kids[0] op kids[1])`
        Cond,     ///< `(kids[0] ? kids[1] : kids[2])`
        Call,     ///< `name(kids...)`
    };

    K k = K::Lit;
    int64_t value = 0;       ///< Lit payload.
    std::string name;        ///< Var/ArrLoad/Call payload.
    std::string op;          ///< Unary/Binary operator spelling.
    int64_t mask = 0;        ///< ArrLoad subscript mask (elems - 1).
    std::vector<GenExpr> kids;

    static GenExpr lit(int64_t v);
    static GenExpr var(const std::string& n);

    void render(std::string* out) const;
    std::string str() const;
};

/** One statement-tree node. */
struct GenStmt
{
    enum class K
    {
        Decl,     ///< `<type> name = expr;`
        Assign,   ///< `name <op>= expr;`  (op "" = plain '=')
        ArrStore, ///< `name[(idx) & mask] = expr;`
        PtrStore, ///< `name[(idx) & mask] = expr;` through a pointer
        If,       ///< `if (cond) {...} [else {...}]`
        For,      ///< `for (name = 0; name < trips; name++) {...}`
        While,    ///< counted while: `name = trips; while (name > 0)`
        Return,   ///< `return expr;`
        Expr,     ///< bare call for effect: `name = call;` sunk? no: `expr;`
    };

    K k = K::Decl;
    std::string name;        ///< Decl/Assign/For/While variable, store array.
    std::string type;        ///< Decl type spelling ("int"/"unsigned").
    std::string op;          ///< Assign compound op ("", "+", "^", ...).
    int64_t trips = 0;       ///< For/While trip count.
    int64_t mask = 0;        ///< ArrStore/PtrStore subscript mask.
    GenExpr a;               ///< Primary expression (init/rhs/cond/subscript).
    GenExpr b;               ///< Secondary expression (store rhs).
    std::vector<GenStmt> body;
    std::vector<GenStmt> elseBody;

    void render(std::string* out, int indent) const;
};

/** A pointer parameter of a generated function. */
struct GenParam
{
    std::string name;
    bool isPointer = false;
};

/** One generated function. */
struct GenFunc
{
    std::string name;
    std::vector<GenParam> params;
    /** Pairs of pointer-parameter names declared `#pragma independent`. */
    std::vector<std::pair<std::string, std::string>> pragmas;
    std::vector<GenStmt> stmts;
    bool recursive = false;
    /** Estimated dynamic work of one invocation (generation metadata). */
    int64_t workEstimate = 1;

    void render(std::string* out) const;
};

/** One generated array/scalar global. */
struct GenGlobal
{
    std::string name;
    std::string type;    ///< Element type spelling.
    int64_t elems = 0;   ///< 0 = scalar.
    int64_t init = 0;    ///< Scalar initializer.
};

/**
 * A whole generated translation unit.  `render()` is the only way the
 * rest of the harness consumes it; the structure is retained so the
 * minimizer can produce grammar-level reduction candidates.
 */
struct GenProgram
{
    uint64_t seed = 0;
    std::string profile;
    std::vector<GenGlobal> globals;
    std::vector<GenFunc> funcs;   ///< Callees first; entry is last.

    /** The entry function name (always "run", one int parameter). */
    static const char* entryName() { return "run"; }

    /** Functions in the unit (the per-seed contribution to soak
     *  "generated functions" accounting). */
    int64_t functionCount() const
    {
        return static_cast<int64_t>(funcs.size());
    }

    /** Total statement-tree nodes (minimizer progress metric). */
    int64_t statementCount() const;

    std::string render() const;
};

/** Deterministic splitmix64 — the harness's only randomness source. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, n); n must be > 0. */
    int64_t
    below(int64_t n)
    {
        return static_cast<int64_t>(next() % static_cast<uint64_t>(n));
    }

    /** Uniform in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability pct/100. */
    bool chance(int pct) { return below(100) < pct; }

  private:
    uint64_t state_;
};

/** Generate the program for (@p seed, @p profile). */
GenProgram generateProgram(uint64_t seed, const GenProfile& profile);

} // namespace fuzz
} // namespace cash

#endif // CASH_FUZZ_GENERATOR_H
