/**
 * @file
 * Grammar-aware delta reduction for generated Mini-C programs
 * (docs/FUZZING.md, "Minimization").
 *
 * Reduction operates on the generator IR, never on source text: each
 * step enumerates *sites* — (kind, index) pairs addressing a function,
 * statement, or expression node by deterministic pre-order position —
 * and applies one structural shrink there (drop a function and stub
 * its calls, drop a statement, unwrap a loop/if into its body, replace
 * an expression by one of its children or a literal, shrink a trip
 * count).  A candidate is kept iff the caller's predicate still holds
 * on the rendered source; candidates that break scoping or types
 * simply fail the predicate (the harness classifies them as frontend
 * rejects, never the original violation) and are discarded.
 *
 * The loop is greedy-to-fixpoint under an evaluation budget, so it
 * terminates even when the predicate is expensive: every accepted step
 * strictly shrinks the node count, every rejected step is abandoned.
 */
#ifndef CASH_FUZZ_MINIMIZE_H
#define CASH_FUZZ_MINIMIZE_H

#include "fuzz/generator.h"

#include <cstdint>
#include <functional>

namespace cash {
namespace fuzz {

/** One structural shrink family (see file comment). */
enum class ReduceKind
{
    DropFunc,      ///< delete a non-entry function, stub its calls with 1
    DropStmt,      ///< delete one statement (never a final Return)
    UnwrapBlock,   ///< replace an If/For/While by its body statements
    ExprToChild,   ///< replace an expression node by one child
    ExprToLit,     ///< replace an expression node by literal 1
    ShrinkTrips,   ///< halve a loop trip count (min 1)
};

/** Number of applicable sites for @p kind in @p prog. */
int64_t countSites(const GenProgram& prog, ReduceKind kind);

/**
 * Apply @p kind at site @p index (0-based, same enumeration order as
 * countSites).  Returns false (program untouched) when the site turned
 * out inapplicable; true when a strictly smaller candidate was made.
 */
bool applySite(GenProgram* prog, ReduceKind kind, int64_t index);

/** Outcome accounting for a minimization run. */
struct MinimizeStats
{
    int64_t evals = 0;    ///< predicate invocations
    int64_t accepted = 0; ///< shrinks kept
    int64_t beforeStmts = 0;
    int64_t afterStmts = 0;
};

/**
 * Shrink @p prog while @p stillFails(rendered source) holds, with at
 * most @p maxEvals predicate evaluations.  The predicate must already
 * be true of the input; the result is the smallest fixpoint reached.
 */
MinimizeStats
minimizeProgram(GenProgram* prog,
                const std::function<bool(const std::string&)>& stillFails,
                int64_t maxEvals = 2000);

} // namespace fuzz
} // namespace cash

#endif // CASH_FUZZ_MINIMIZE_H
