/**
 * @file
 * Differential oracles for the fuzz/soak harness (docs/FUZZING.md).
 *
 * One *case* is one generated program pushed through a fixed matrix
 * of targets — unoptimized vs. optimized, macro vs. event engine,
 * interprocedural pruning on vs. off (ipo), tiled fabric vs.
 * idealized, -j1 vs. -jN — with three cross-checks on the results:
 *
 *   Oracle A (semantics):  every target agrees on the simulation
 *     outcome, every Ok target agrees on the return value, and the
 *     same-level engine pair agrees on `sim.firings` (the macro
 *     engine's exactness contract).  A deadlock or stack overflow on
 *     a generated program is itself a violation — the generator only
 *     emits terminating programs.
 *   Oracle B (soundness judges): on a clean program both independent
 *     judges are clean — the structural verifier reports no pass
 *     failures and the §4 ordering checker reports no error-severity
 *     findings.  Either judge objecting to what the other accepted
 *     is an inconsistency worth a reproducer.
 *   Oracle C (determinism): a -j1 and a -jN compile of the same
 *     request produce byte-identical deterministic stats documents,
 *     graph dumps and DOT.
 *
 * Event-budget trips are *inconclusive*, not violations: budgets are
 * measured in engine-specific events, so a program that exhausts one
 * budget may finish under another.  Such cases are histogrammed and
 * skipped by Oracle A.
 *
 * Violation categories are stable strings ("oracle-a:return", ...)
 * with enough detail that the minimizer can demand *the same*
 * category after each reduction — that is what keeps delta reduction
 * from wandering onto an unrelated failure (e.g. deleting a recursion
 * guard and "finding" a stack overflow).
 *
 * `--via-socket` mode routes every target through a running cashd
 * instead of in-process calls; Oracle C then becomes repeat-request
 * byte identity (the service pins jobs=1 per request by design, and
 * the second response must come from the result cache).
 */
#ifndef CASH_FUZZ_ORACLES_H
#define CASH_FUZZ_ORACLES_H

#include "fuzz/generator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cash {
namespace fuzz {

/** Knobs of one soak campaign (shared by every case). */
struct SoakConfig
{
    std::string profile = "mixed";
    /** Event budget per simulation; generated programs sit far under
     *  it, so a trip means "inconclusive", not "hang". */
    uint64_t maxEvents = 5000000;
    /** The -jN side of Oracle C. */
    int jobsHigh = 4;
    /** Fabric spec for the fabric target; "" disables that target. */
    std::string fabric = "2x2";
    /** Run Oracle C (skipped per-case in canary mode). */
    bool checkJobs = true;
    /** Soak a live cashd at this socket instead of in-process. */
    std::string viaSocket;
    /**
     * Canary mode: inject `graph.corrupt-token` into a verify-off
     * pipeline and demand the ordering checker catches it.  A case
     * where the checker stays silent is reported as category
     * "canary-missed" (the harness must detect, not just survive).
     */
    bool canary = false;
};

/** What happened to one generated program across the whole matrix. */
struct CaseReport
{
    uint64_t seed = 0;
    int64_t functions = 0;   ///< Functions in the generated unit.
    int64_t runs = 0;        ///< Pipeline invocations performed.

    /** Violation category ("" = clean); stable across minimization. */
    std::string category;
    /** Human diagnosis of the violation ("" = clean). */
    std::string detail;
    /** Event budget tripped somewhere: Oracle A skipped. */
    bool inconclusive = false;
    /** Canary mode: the checker flagged the injected corruption. */
    bool canaryDetected = false;

    /** One "<target>=<outcome>" entry per simulated target. */
    std::vector<std::string> outcomes;
    /** Wall-clock per pipeline invocation, microseconds. */
    std::vector<int64_t> latenciesUs;

    bool violation() const { return !category.empty(); }
};

/** Run the full oracle matrix over @p source (already rendered). */
CaseReport runCaseOnSource(const std::string& source, uint64_t seed,
                           const SoakConfig& cfg);

/** Generate seed @p seed under @p cfg.profile and run the matrix. */
CaseReport runCase(uint64_t seed, const SoakConfig& cfg);

} // namespace fuzz
} // namespace cash

#endif // CASH_FUZZ_ORACLES_H
