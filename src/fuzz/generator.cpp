#include "fuzz/generator.h"

#include "support/diagnostics.h"

#include <algorithm>
#include <cassert>

namespace cash {
namespace fuzz {

// ---------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------

namespace {

GenProfile
smallProfile()
{
    GenProfile p;
    p.name = "small";
    return p;
}

GenProfile
mediumProfile()
{
    GenProfile p;
    p.name = "medium";
    p.minFunctions = 2;
    p.maxFunctions = 5;
    p.minStmts = 3;
    p.maxStmts = 7;
    p.maxExprDepth = 4;
    p.maxBlockDepth = 3;
    p.maxLoopTrips = 12;
    p.maxArrays = 3;
    p.arrayElems = 32;
    p.maxGlobals = 3;
    p.workBudget = 120000;
    return p;
}

GenProfile
largeProfile()
{
    GenProfile p;
    p.name = "large";
    p.minFunctions = 4;
    p.maxFunctions = 8;
    p.minStmts = 4;
    p.maxStmts = 9;
    p.maxExprDepth = 5;
    p.maxBlockDepth = 3;
    p.maxLoopTrips = 16;
    p.maxArrays = 4;
    p.arrayElems = 64;
    p.maxGlobals = 4;
    p.maxRecursionDepth = 6;
    p.workBudget = 200000;
    return p;
}

/**
 * Interprocedural stress family: many helper functions, pointer
 * parameters and recursion all on, with modest bodies so the dynamic
 * work goes into call boundaries rather than loop trip counts.  This
 * is the soak profile for the MOD/REF summary layer: lots of
 * cross-call token edges for `interproc_token_pruning` to consider
 * (docs/FUZZING.md, "calls").
 */
GenProfile
callsProfile()
{
    GenProfile p;
    p.name = "calls";
    p.minFunctions = 5;
    p.maxFunctions = 9;
    p.minStmts = 2;
    p.maxStmts = 5;
    p.maxExprDepth = 3;
    p.maxBlockDepth = 2;
    p.maxLoopTrips = 8;
    p.maxArrays = 4;
    p.arrayElems = 32;
    p.maxGlobals = 3;
    p.pointers = true;
    p.recursion = true;
    p.maxRecursionDepth = 6;
    p.workBudget = 150000;
    return p;
}

} // namespace

GenProfile
GenProfile::byName(const std::string& name)
{
    if (name == "small")
        return smallProfile();
    if (name == "medium")
        return mediumProfile();
    if (name == "large")
        return largeProfile();
    if (name == "calls")
        return callsProfile();
    if (name == "mixed") {
        GenProfile p = smallProfile();
        p.name = "mixed";
        return p;
    }
    fatal("unknown fuzz profile '" + name +
          "' (known: small, medium, large, calls, mixed)");
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

GenExpr
GenExpr::lit(int64_t v)
{
    GenExpr e;
    e.k = K::Lit;
    e.value = v;
    return e;
}

GenExpr
GenExpr::var(const std::string& n)
{
    GenExpr e;
    e.k = K::Var;
    e.name = n;
    return e;
}

void
GenExpr::render(std::string* out) const
{
    switch (k) {
      case K::Lit:
        if (value < 0) {
            out->append("(");
            out->append(std::to_string(value));
            out->append(")");
        } else {
            out->append(std::to_string(value));
        }
        break;
      case K::Var:
        out->append(name);
        break;
      case K::ArrLoad:
        out->append(name);
        out->append("[(");
        kids[0].render(out);
        out->append(") & ");
        out->append(std::to_string(mask));
        out->append("]");
        break;
      case K::Unary:
        out->append("(");
        out->append(op);
        out->append("(");
        kids[0].render(out);
        out->append("))");
        break;
      case K::Binary:
        out->append("(");
        kids[0].render(out);
        out->append(" ");
        out->append(op);
        out->append(" ");
        kids[1].render(out);
        out->append(")");
        break;
      case K::Cond:
        out->append("((");
        kids[0].render(out);
        out->append(") ? (");
        kids[1].render(out);
        out->append(") : (");
        kids[2].render(out);
        out->append("))");
        break;
      case K::Call:
        out->append(name);
        out->append("(");
        for (size_t i = 0; i < kids.size(); ++i) {
            if (i)
                out->append(", ");
            kids[i].render(out);
        }
        out->append(")");
        break;
    }
}

std::string
GenExpr::str() const
{
    std::string s;
    render(&s);
    return s;
}

namespace {

void
indentTo(std::string* out, int indent)
{
    out->append(static_cast<size_t>(indent) * 4, ' ');
}

void
renderBlock(std::string* out, const std::vector<GenStmt>& body, int indent)
{
    out->append("{\n");
    for (const GenStmt& s : body)
        s.render(out, indent + 1);
    indentTo(out, indent);
    out->append("}\n");
}

} // namespace

void
GenStmt::render(std::string* out, int indent) const
{
    indentTo(out, indent);
    switch (k) {
      case K::Decl:
        out->append(type.empty() ? "int" : type);
        out->append(" ");
        out->append(name);
        out->append(" = ");
        a.render(out);
        out->append(";\n");
        break;
      case K::Assign:
        out->append(name);
        out->append(" ");
        out->append(op);
        out->append("= ");
        a.render(out);
        out->append(";\n");
        break;
      case K::ArrStore:
      case K::PtrStore:
        out->append(name);
        out->append("[(");
        a.render(out);
        out->append(") & ");
        out->append(std::to_string(mask));
        out->append("] = ");
        b.render(out);
        out->append(";\n");
        break;
      case K::If:
        out->append("if (");
        a.render(out);
        out->append(") ");
        renderBlock(out, body, indent);
        if (!elseBody.empty()) {
            indentTo(out, indent);
            out->append("else ");
            renderBlock(out, elseBody, indent);
        }
        break;
      case K::For:
        // The counter declaration rides along with the loop so a
        // GenStmt stays one self-contained reduction unit.
        out->append("int ");
        out->append(name);
        out->append(";\n");
        indentTo(out, indent);
        out->append("for (");
        out->append(name);
        out->append(" = 0; ");
        out->append(name);
        out->append(" < ");
        out->append(std::to_string(trips));
        out->append("; ");
        out->append(name);
        out->append("++) ");
        renderBlock(out, body, indent);
        break;
      case K::While:
        out->append("int ");
        out->append(name);
        out->append(" = ");
        out->append(std::to_string(trips));
        out->append(";\n");
        indentTo(out, indent);
        out->append("while (");
        out->append(name);
        out->append(" > 0) {\n");
        for (const GenStmt& s : body)
            s.render(out, indent + 1);
        indentTo(out, indent + 1);
        out->append(name);
        out->append(" = ");
        out->append(name);
        out->append(" - 1;\n");
        indentTo(out, indent);
        out->append("}\n");
        break;
      case K::Return:
        out->append("return ");
        a.render(out);
        out->append(";\n");
        break;
      case K::Expr:
        a.render(out);
        out->append(";\n");
        break;
    }
}

void
GenFunc::render(std::string* out) const
{
    out->append("int ");
    out->append(name);
    out->append("(");
    for (size_t i = 0; i < params.size(); ++i) {
        if (i)
            out->append(", ");
        out->append(params[i].isPointer ? "int* " : "int ");
        out->append(params[i].name);
    }
    out->append(")\n{\n");
    for (const auto& pr : pragmas) {
        out->append("    #pragma independent ");
        out->append(pr.first);
        out->append(" ");
        out->append(pr.second);
        out->append("\n");
    }
    for (const GenStmt& s : stmts)
        s.render(out, 1);
    out->append("}\n");
}

namespace {

int64_t
countStmts(const std::vector<GenStmt>& body)
{
    int64_t n = 0;
    for (const GenStmt& s : body)
        n += 1 + countStmts(s.body) + countStmts(s.elseBody);
    return n;
}

} // namespace

int64_t
GenProgram::statementCount() const
{
    int64_t n = 0;
    for (const GenFunc& f : funcs)
        n += countStmts(f.stmts);
    return n;
}

std::string
GenProgram::render() const
{
    std::string out;
    out.append("/* generated: seed=");
    out.append(std::to_string(seed));
    out.append(" profile=");
    out.append(profile);
    out.append(" */\n");
    for (const GenGlobal& g : globals) {
        out.append(g.type);
        out.append(" ");
        out.append(g.name);
        if (g.elems > 0) {
            out.append("[");
            out.append(std::to_string(g.elems));
            out.append("]");
        } else {
            out.append(" = ");
            out.append(std::to_string(g.init));
        }
        out.append(";\n");
    }
    for (const GenFunc& f : funcs) {
        out.append("\n");
        f.render(&out);
    }
    return out;
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

namespace {

/**
 * Call-site shape of an already generated function.  Parameter order
 * is fixed by construction: depth parameter first (recursive funcs),
 * then pointer parameters, then scalar parameters.
 */
struct Callee
{
    const GenFunc* fn = nullptr;
    int ptrParams = 0;
    int intParams = 0;
    bool recursive = false;
};

class FuncGen
{
  public:
    FuncGen(Rng& rng,
            const GenProfile& prof,
            const std::vector<GenGlobal>& globals,
            const std::vector<Callee>& callees,
            int64_t workBudget)
        : rng_(rng), prof_(prof), globals_(globals), callees_(callees),
          budget_(workBudget)
    {
    }

    /**
     * Generate @p fn's body.  @p fn must already carry its name and
     * params; pointer params become extra store/load targets, and a
     * recursive function gets the canonical depth-guard scaffold.
     */
    void
    run(GenFunc* fn)
    {
        fn_ = fn;
        for (const GenParam& p : fn->params) {
            if (p.isPointer)
                ptrParams_.push_back(p.name);
            else
                readable_.push_back(p.name);
        }

        if (fn->recursive) {
            // if (d <= 0) return <base>;  guards every deeper state.
            GenStmt guard;
            guard.k = GenStmt::K::If;
            guard.a = binary(GenExpr::var("d"), "<=", GenExpr::lit(0));
            GenStmt base;
            base.k = GenStmt::K::Return;
            base.a = genExpr(1);
            guard.body.push_back(std::move(base));
            fn->stmts.push_back(std::move(guard));
        }

        int locals = static_cast<int>(rng_.range(1, 2));
        for (int i = 0; i < locals; ++i)
            fn->stmts.push_back(genDecl());

        genStmts(&fn->stmts, /*depth=*/0, /*scale=*/1);

        GenStmt ret;
        ret.k = GenStmt::K::Return;
        ret.a = genExpr(prof_.maxExprDepth);
        if (fn->recursive) {
            // Fold one self-call into the result so the recursion is
            // live: return (expr + self(d - 1, ...)).
            GenExpr self;
            self.k = GenExpr::K::Call;
            self.name = fn->name;
            self.kids.push_back(
                binary(GenExpr::var("d"), "-", GenExpr::lit(1)));
            appendCallArgs(&self, ptrParams_.empty() ? 0 : -1,
                           static_cast<int>(fn->params.size()) - 1 -
                               static_cast<int>(ptrParams_.size()));
            ret.a = binary(std::move(ret.a), "+", std::move(self));
        }
        fn->stmts.push_back(std::move(ret));

        int64_t perCall = spent_ + 4;
        fn->workEstimate = fn->recursive
                               ? perCall * (prof_.maxRecursionDepth + 1)
                               : perCall;
    }

  private:
    static GenExpr
    binary(GenExpr a, const std::string& op, GenExpr b)
    {
        GenExpr e;
        e.k = GenExpr::K::Binary;
        e.op = op;
        e.kids.push_back(std::move(a));
        e.kids.push_back(std::move(b));
        return e;
    }

    bool overBudget() const { return spent_ >= budget_; }

    std::string
    freshLocal()
    {
        return "v" + std::to_string(nextLocal_++);
    }

    std::string
    freshCounter()
    {
        return "i" + std::to_string(nextCounter_++);
    }

    /** Any readable scalar, or a literal when the scope is empty. */
    GenExpr
    pickVar()
    {
        std::vector<std::string> pool = readable_;
        for (const GenGlobal& g : globals_)
            if (g.elems == 0)
                pool.push_back(g.name);
        if (pool.empty())
            return GenExpr::lit(rng_.range(0, 9));
        return GenExpr::var(pool[rng_.below(
            static_cast<int64_t>(pool.size()))]);
    }

    /** A global-array or pointer-param load target, if any exist. */
    bool
    pickArrayTarget(std::string* name, int64_t* mask, bool stores)
    {
        struct Target
        {
            std::string name;
            int64_t mask;
        };
        std::vector<Target> pool;
        for (const GenGlobal& g : globals_)
            if (g.elems > 0)
                pool.push_back({g.name, g.elems - 1});
        for (const std::string& p : ptrParams_)
            pool.push_back({p, prof_.arrayElems - 1});
        (void)stores;
        if (pool.empty())
            return false;
        const Target& t =
            pool[rng_.below(static_cast<int64_t>(pool.size()))];
        *name = t.name;
        *mask = t.mask;
        return true;
    }

    /**
     * Append arguments for a call: pointer params get distinct global
     * arrays (so `#pragma independent` pairs are honestly disjoint),
     * scalar params get shallow expressions.  @p ptrCount of -1 means
     * "reuse this function's own pointer params in order" (self-call).
     */
    void
    appendCallArgs(GenExpr* call, int ptrCount, int intCount)
    {
        if (ptrCount == -1) {
            for (const std::string& p : ptrParams_)
                call->kids.push_back(GenExpr::var(p));
        } else if (ptrCount > 0) {
            // Distinct arrays, chosen by rotating a random start
            // through the global-array list.
            std::vector<std::string> arrays;
            for (const GenGlobal& g : globals_)
                if (g.elems > 0)
                    arrays.push_back(g.name);
            assert(static_cast<int>(arrays.size()) >= ptrCount);
            int64_t start =
                rng_.below(static_cast<int64_t>(arrays.size()));
            for (int i = 0; i < ptrCount; ++i)
                call->kids.push_back(GenExpr::var(
                    arrays[(start + i) % arrays.size()]));
        }
        for (int i = 0; i < intCount; ++i)
            call->kids.push_back(genExpr(1));
    }

    /** A call expression to some earlier function, budget allowing. */
    bool
    genCall(GenExpr* out, int64_t scale)
    {
        if (callees_.empty())
            return false;
        int64_t arrays = 0;
        for (const GenGlobal& g : globals_)
            if (g.elems > 0)
                ++arrays;
        std::vector<const Callee*> pool;
        for (const Callee& c : callees_) {
            if (c.ptrParams > arrays)
                continue;
            if (spent_ + c.fn->workEstimate * scale > budget_)
                continue;
            pool.push_back(&c);
        }
        if (pool.empty())
            return false;
        const Callee* c =
            pool[rng_.below(static_cast<int64_t>(pool.size()))];
        spent_ += c->fn->workEstimate * scale;
        out->k = GenExpr::K::Call;
        out->name = c->fn->name;
        if (c->recursive)
            out->kids.push_back(GenExpr::lit(
                rng_.range(1, prof_.maxRecursionDepth)));
        appendCallArgs(out, c->ptrParams, c->intParams);
        return true;
    }

    GenExpr
    genExpr(int depth, int64_t scale = 1)
    {
        spent_ += 1;
        if (depth <= 0 || overBudget())
            return rng_.chance(55) ? pickVar()
                                   : GenExpr::lit(rng_.range(-8, 20));

        int64_t roll = rng_.below(100);
        if (roll < 14)
            return GenExpr::lit(rng_.chance(10)
                                    ? rng_.range(-1000000, 1000000)
                                    : rng_.range(-8, 20));
        if (roll < 34)
            return pickVar();
        if (roll < 44) {
            GenExpr e;
            std::string name;
            int64_t mask = 0;
            if (pickArrayTarget(&name, &mask, /*stores=*/false)) {
                e.k = GenExpr::K::ArrLoad;
                e.name = name;
                e.mask = mask;
                e.kids.push_back(genExpr(depth - 1, scale));
                return e;
            }
            return pickVar();
        }
        if (roll < 52) {
            GenExpr e;
            e.k = GenExpr::K::Unary;
            static const char* ops[] = {"-", "~", "!"};
            e.op = ops[rng_.below(3)];
            e.kids.push_back(genExpr(depth - 1, scale));
            return e;
        }
        if (roll < 60) {
            GenExpr e;
            e.k = GenExpr::K::Cond;
            e.kids.push_back(genExpr(depth - 1, scale));
            e.kids.push_back(genExpr(depth - 1, scale));
            e.kids.push_back(genExpr(depth - 1, scale));
            return e;
        }
        if (roll < 68) {
            GenExpr e;
            if (genCall(&e, scale))
                return e;
            // fall through to binary when no callee fits
        }
        static const char* ops[] = {"+", "-",  "*",  "/",  "%", "&",
                                    "|", "^",  "<<", ">>", "<", "<=",
                                    ">", ">=", "==", "!=", "&&", "||"};
        return binary(genExpr(depth - 1, scale),
                      ops[rng_.below(18)],
                      genExpr(depth - 1, scale));
    }

    GenStmt
    genDecl()
    {
        GenStmt s;
        s.k = GenStmt::K::Decl;
        s.type = (prof_.unsignedTypes && rng_.chance(25)) ? "unsigned"
                                                          : "int";
        s.name = freshLocal();
        s.a = genExpr(prof_.maxExprDepth - 1);
        readable_.push_back(s.name);
        writable_.push_back(s.name);
        spent_ += 1;
        return s;
    }

    /** A writable scalar: a declared local or a scalar global. */
    bool
    pickWritable(std::string* name)
    {
        std::vector<std::string> pool = writable_;
        for (const GenGlobal& g : globals_)
            if (g.elems == 0)
                pool.push_back(g.name);
        if (pool.empty())
            return false;
        *name = pool[rng_.below(static_cast<int64_t>(pool.size()))];
        return true;
    }

    void
    genStmts(std::vector<GenStmt>* out, int depth, int64_t scale)
    {
        int n = static_cast<int>(
            rng_.range(prof_.minStmts, prof_.maxStmts));
        for (int i = 0; i < n && !overBudget(); ++i)
            out->push_back(genStmt(depth, scale));
    }

    GenStmt
    genStmt(int depth, int64_t scale)
    {
        spent_ += scale;
        int64_t roll = rng_.below(100);

        if (roll < 18 && depth == 0)
            return genDecl();

        if (roll < 46) {
            GenStmt s;
            std::string name;
            if (!pickWritable(&name))
                return genDeclOrAssignFallback(depth);
            s.k = GenStmt::K::Assign;
            s.name = name;
            static const char* ops[] = {"", "", "+", "-", "^", "&", "|"};
            s.op = ops[rng_.below(7)];
            s.a = genExpr(prof_.maxExprDepth, scale);
            return s;
        }

        if (roll < 62) {
            GenStmt s;
            std::string name;
            int64_t mask = 0;
            if (!pickArrayTarget(&name, &mask, /*stores=*/true))
                return genDeclOrAssignFallback(depth);
            bool viaPtr = false;
            for (const std::string& p : ptrParams_)
                if (p == name)
                    viaPtr = true;
            s.k = viaPtr ? GenStmt::K::PtrStore : GenStmt::K::ArrStore;
            s.name = name;
            s.mask = mask;
            s.a = genExpr(2, scale);
            s.b = genExpr(prof_.maxExprDepth - 1, scale);
            return s;
        }

        if (roll < 78 && depth < prof_.maxBlockDepth) {
            GenStmt s;
            s.k = GenStmt::K::If;
            s.a = genExpr(prof_.maxExprDepth - 1, scale);
            genStmts(&s.body, depth + 1, scale);
            if (s.body.empty())
                s.body.push_back(genDeclOrAssignFallback(depth + 1));
            if (rng_.chance(40))
                genStmts(&s.elseBody, depth + 1, scale);
            return s;
        }

        if (depth < prof_.maxBlockDepth) {
            int64_t trips = rng_.range(1, prof_.maxLoopTrips);
            int64_t bodyScale = scale * trips;
            // Refuse loops whose body could not even run one
            // statement per trip inside the remaining budget.
            if (spent_ + bodyScale * prof_.minStmts <= budget_) {
                GenStmt s;
                s.k = rng_.chance(70) ? GenStmt::K::For
                                      : GenStmt::K::While;
                s.name = freshCounter();
                s.trips = trips;
                readable_.push_back(s.name);
                genStmts(&s.body, depth + 1, bodyScale);
                if (s.body.empty())
                    s.body.push_back(
                        genDeclOrAssignFallback(depth + 1));
                readable_.pop_back();
                return s;
            }
        }

        return genDeclOrAssignFallback(depth);
    }

    /** Smallest safe statement — used when a pick has no target. */
    GenStmt
    genDeclOrAssignFallback(int depth)
    {
        if (depth == 0 || writable_.empty() || rng_.chance(30)) {
            std::string name;
            if (depth == 0)
                return genDecl();
            if (!pickWritable(&name)) {
                // No writable scalar anywhere: emit a throwaway
                // top-level-style decl is illegal here, so store to
                // an array if one exists, else a bare expression.
                GenStmt s;
                std::string arr;
                int64_t mask = 0;
                if (pickArrayTarget(&arr, &mask, true)) {
                    s.k = GenStmt::K::ArrStore;
                    s.name = arr;
                    s.mask = mask;
                    s.a = GenExpr::lit(rng_.range(0, 7));
                    s.b = genExpr(1);
                    return s;
                }
                s.k = GenStmt::K::Expr;
                s.a = genExpr(1);
                return s;
            }
            GenStmt s;
            s.k = GenStmt::K::Assign;
            s.name = name;
            s.a = genExpr(1);
            return s;
        }
        GenStmt s;
        s.k = GenStmt::K::Assign;
        s.name = writable_[rng_.below(
            static_cast<int64_t>(writable_.size()))];
        s.a = genExpr(1);
        return s;
    }

    Rng& rng_;
    const GenProfile& prof_;
    const std::vector<GenGlobal>& globals_;
    const std::vector<Callee>& callees_;
    GenFunc* fn_ = nullptr;
    std::vector<std::string> readable_;
    std::vector<std::string> writable_;
    std::vector<std::string> ptrParams_;
    int nextLocal_ = 0;
    int nextCounter_ = 0;
    int64_t budget_ = 0;
    int64_t spent_ = 0;
};

} // namespace

GenProgram
generateProgram(uint64_t seed, const GenProfile& profile)
{
    GenProfile prof = profile;
    if (profile.name == "mixed") {
        // One deterministic draw decides the family for this seed.
        Rng pick(seed ^ 0x6d69786564ull);
        static const char* fams[] = {"small", "medium", "large"};
        prof = GenProfile::byName(fams[pick.below(3)]);
    }

    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xc0ffee);

    GenProgram prog;
    prog.seed = seed;
    prog.profile = profile.name;

    int nArrays = static_cast<int>(rng.range(1, prof.maxArrays));
    for (int i = 0; i < nArrays; ++i) {
        GenGlobal g;
        g.name = "g" + std::to_string(i);
        g.type = "int";
        g.elems = prof.arrayElems;
        prog.globals.push_back(g);
    }
    int nGlobals = static_cast<int>(rng.range(0, prof.maxGlobals));
    for (int i = 0; i < nGlobals; ++i) {
        GenGlobal g;
        g.name = "s" + std::to_string(i);
        g.type = (prof.unsignedTypes && rng.chance(25)) ? "unsigned"
                                                        : "int";
        g.init = rng.range(-4, 12);
        prog.globals.push_back(g);
    }

    int nFuncs =
        static_cast<int>(rng.range(prof.minFunctions, prof.maxFunctions));
    int64_t perFunc = prof.workBudget / (nFuncs + 2);

    std::vector<Callee> callees;
    for (int i = 0; i < nFuncs; ++i) {
        GenFunc fn;
        fn.name = "f" + std::to_string(i);

        bool recursive = prof.recursion && rng.chance(25);
        bool pointers =
            !recursive && prof.pointers && nArrays >= 2 && rng.chance(35);

        Callee c;
        c.recursive = recursive;
        fn.recursive = recursive;
        if (recursive)
            fn.params.push_back({"d", false});
        if (pointers) {
            int np = static_cast<int>(rng.range(2, std::min(nArrays, 3)));
            for (int p = 0; p < np; ++p)
                fn.params.push_back({"p" + std::to_string(p), true});
            c.ptrParams = np;
            // Every adjacent pointer pair is declared independent;
            // call sites always pass distinct global arrays, so the
            // pragma is honest and the alias oracle gets exercised.
            for (int p = 0; p + 1 < np; ++p)
                fn.pragmas.push_back({"p" + std::to_string(p),
                                      "p" + std::to_string(p + 1)});
        }
        int ni = static_cast<int>(rng.range(1, 2));
        for (int p = 0; p < ni; ++p)
            fn.params.push_back({"a" + std::to_string(p), false});
        c.intParams = ni;

        int64_t fnBudget = recursive
                               ? perFunc / (prof.maxRecursionDepth + 1)
                               : perFunc;
        FuncGen gen(rng, prof, prog.globals, callees,
                    std::max<int64_t>(fnBudget, 16));
        gen.run(&fn);
        prog.funcs.push_back(std::move(fn));
        c.fn = nullptr; // fixed up below; vector may reallocate
        callees.push_back(c);
        for (size_t j = 0; j < callees.size(); ++j)
            callees[j].fn = &prog.funcs[j];
    }

    // The entry: int run(int n), generated last so it can call every
    // helper; any helper the random walk missed is folded into the
    // return expression to guarantee whole-program coverage.
    GenFunc entry;
    entry.name = GenProgram::entryName();
    entry.params.push_back({"n", false});
    FuncGen gen(rng, prof, prog.globals, callees,
                std::max<int64_t>(prof.workBudget / 2, 64));
    gen.run(&entry);

    std::vector<bool> called(prog.funcs.size(), false);
    struct Walk
    {
        static void
        mark(const GenExpr& e,
             const std::vector<GenFunc>& funcs,
             std::vector<bool>* called)
        {
            if (e.k == GenExpr::K::Call)
                for (size_t i = 0; i < funcs.size(); ++i)
                    if (funcs[i].name == e.name)
                        (*called)[i] = true;
            for (const GenExpr& kid : e.kids)
                mark(kid, funcs, called);
        }
        static void
        walk(const std::vector<GenStmt>& body,
             const std::vector<GenFunc>& funcs,
             std::vector<bool>* called)
        {
            for (const GenStmt& s : body) {
                mark(s.a, funcs, called);
                mark(s.b, funcs, called);
                walk(s.body, funcs, called);
                walk(s.elseBody, funcs, called);
            }
        }
    };
    for (const GenFunc& f : prog.funcs)
        Walk::walk(f.stmts, prog.funcs, &called);
    Walk::walk(entry.stmts, prog.funcs, &called);

    GenStmt& ret = entry.stmts.back();
    assert(ret.k == GenStmt::K::Return);
    for (size_t i = 0; i < prog.funcs.size(); ++i) {
        if (called[i])
            continue;
        const Callee& c = callees[i];
        GenExpr call;
        call.k = GenExpr::K::Call;
        call.name = prog.funcs[i].name;
        if (c.recursive)
            call.kids.push_back(
                GenExpr::lit(rng.range(1, prof.maxRecursionDepth)));
        if (c.ptrParams > 0) {
            std::vector<std::string> arrays;
            for (const GenGlobal& g : prog.globals)
                if (g.elems > 0)
                    arrays.push_back(g.name);
            int64_t start =
                rng.below(static_cast<int64_t>(arrays.size()));
            for (int p = 0; p < c.ptrParams; ++p)
                call.kids.push_back(GenExpr::var(
                    arrays[(start + p) % arrays.size()]));
        }
        for (int p = 0; p < c.intParams; ++p)
            call.kids.push_back(GenExpr::lit(rng.range(0, 9)));

        GenExpr sum;
        sum.k = GenExpr::K::Binary;
        sum.op = "+";
        sum.kids.push_back(std::move(ret.a));
        sum.kids.push_back(std::move(call));
        ret.a = std::move(sum);
    }

    prog.funcs.push_back(std::move(entry));
    return prog;
}

} // namespace fuzz
} // namespace cash
