/**
 * @file
 * `cash-soak` — the traffic-scale fuzz/soak driver (docs/FUZZING.md).
 *
 * Generates seeded Mini-C programs (fuzz/generator.h), pushes each
 * through the differential-oracle matrix (fuzz/oracles.h) on a worker
 * pool, auto-minimizes every violation into a grammar-reduced
 * reproducer (fuzz/minimize.h), and writes corpus artifacts plus a
 * `BENCH_soak.json` report (throughput, latency percentiles, outcome
 * histograms) so reliability is a per-PR trend line.
 *
 * Exit codes: 0 all oracles held (canary mode: every canary was
 * caught), 1 violations (or a missed canary), 2 usage errors.
 */
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/oracles.h"
#include "support/thread_pool.h"

#include "bench/bench_util.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace cash;
using namespace cash::fuzz;

int
usage(const char* msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "cash-soak: %s\n\n", msg);
    std::fprintf(stderr,
        "usage: cash-soak [options]\n"
        "\n"
        "Campaign:\n"
        "  --seeds A..B        inclusive seed range (default 1..100)\n"
        "  --profile NAME      small|medium|large|calls|mixed\n"
        "                      (default mixed; calls = interprocedural\n"
        "                      stress: many helpers + recursion)\n"
        "  -j, --jobs N        worker threads (default: hardware)\n"
        "  --stop-after N      stop scheduling after N violations\n"
        "\n"
        "Oracles:\n"
        "  --max-events N      per-run simulator event budget\n"
        "                      (default 5000000)\n"
        "  --fabric SPEC       fabric target of the matrix (default\n"
        "                      2x2; 'none' disables it)\n"
        "  --no-jobs-oracle    skip the -j1-vs-jN byte-identity check\n"
        "  --via-socket PATH   soak a running cashd instead of the\n"
        "                      in-process pipeline\n"
        "  --canary            fault-injection canary campaign: every\n"
        "                      seed gets graph.corrupt-token injected\n"
        "                      and the checker oracle must catch it\n"
        "\n"
        "Corpus:\n"
        "  --corpus DIR        reproducer directory (default\n"
        "                      soak_corpus)\n"
        "  --no-minimize       keep original reproducers only\n"
        "  --minimize-cap N    minimize at most N violations\n"
        "                      (default 5)\n"
        "  --replay FILE.c     run the oracle matrix once on FILE.c\n"
        "                      (with --seed N for the run spec)\n"
        "  --seed N            seed used by --replay (default 1)\n"
        "\n"
        "Report:\n"
        "  --report NAME       write BENCH_<NAME>.json (default soak)\n");
    return 2;
}

bool
parseSeedRange(const std::string& text, uint64_t* lo, uint64_t* hi)
{
    size_t dots = text.find("..");
    if (dots == std::string::npos)
        return false;
    try {
        *lo = std::stoull(text.substr(0, dots));
        *hi = std::stoull(text.substr(dots + 2));
    } catch (...) {
        return false;
    }
    return *lo <= *hi;
}

int64_t
percentile(std::vector<int64_t>& sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

/** One minimized (or original) reproducer written to the corpus. */
void
writeReproducer(const std::string& corpusDir, const CaseReport& rc,
                const std::string& profile, bool canary,
                const std::string& origSource,
                const std::string& minSource,
                const MinimizeStats* min)
{
    std::error_code ec;
    std::filesystem::create_directories(corpusDir, ec);
    const std::string base =
        corpusDir + "/seed" + std::to_string(rc.seed);

    std::ofstream(base + ".orig.c") << origSource;
    if (!minSource.empty())
        std::ofstream(base + ".min.c") << minSource;

    std::ostringstream repro;
    repro << "# category: "
          << (rc.category.empty() ? "canary-detected" : rc.category)
          << "\n";
    if (!rc.detail.empty())
        repro << "# detail: " << rc.detail << "\n";
    if (min)
        repro << "# minimized: " << min->beforeStmts << " -> "
              << min->afterStmts << " statements in " << min->evals
              << " evaluations\n";
    repro << "cash-soak --seeds " << rc.seed << ".." << rc.seed
          << " --profile " << profile << (canary ? " --canary" : "")
          << "\n";
    std::ofstream(base + ".repro") << repro.str();

    std::printf("  reproducer: %s.{orig.c%s,repro}\n", base.c_str(),
                minSource.empty() ? "" : ",min.c");
}

} // namespace

int
main(int argc, char** argv)
{
    uint64_t seedLo = 1, seedHi = 100;
    std::string profileName = "mixed";
    int jobs = 0;
    int64_t stopAfter = 0;
    std::string corpusDir = "soak_corpus";
    std::string reportName = "soak";
    std::string replayFile;
    uint64_t replaySeed = 1;
    bool minimize = true;
    int64_t minimizeCap = 5;
    SoakConfig cfg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "cash-soak: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            if (!parseSeedRange(value("--seeds"), &seedLo, &seedHi))
                return usage("bad --seeds (want A..B with A <= B)");
        } else if (arg == "--profile") {
            profileName = value("--profile");
        } else if (arg == "-j" || arg == "--jobs") {
            jobs = std::atoi(value("--jobs"));
        } else if (arg == "--stop-after") {
            stopAfter = std::atoll(value("--stop-after"));
        } else if (arg == "--max-events") {
            cfg.maxEvents = std::strtoull(value("--max-events"),
                                          nullptr, 10);
        } else if (arg == "--fabric") {
            cfg.fabric = value("--fabric");
            if (cfg.fabric == "none")
                cfg.fabric.clear();
        } else if (arg == "--no-jobs-oracle") {
            cfg.checkJobs = false;
        } else if (arg == "--via-socket") {
            cfg.viaSocket = value("--via-socket");
        } else if (arg == "--canary") {
            cfg.canary = true;
        } else if (arg == "--corpus") {
            corpusDir = value("--corpus");
        } else if (arg == "--no-minimize") {
            minimize = false;
        } else if (arg == "--minimize-cap") {
            minimizeCap = std::atoll(value("--minimize-cap"));
        } else if (arg == "--replay") {
            replayFile = value("--replay");
        } else if (arg == "--seed") {
            replaySeed = std::strtoull(value("--seed"), nullptr, 10);
        } else if (arg == "--report") {
            reportName = value("--report");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            return usage(("unknown option '" + arg + "'").c_str());
        }
    }
    if (cfg.canary && !cfg.viaSocket.empty())
        return usage("--canary needs the in-process pipeline "
                     "(the service refuses fault injection)");

    GenProfile profile;
    try {
        profile = GenProfile::byName(profileName);
    } catch (const FatalError& e) {
        return usage(e.what());
    }
    cfg.profile = profileName;

    // ------------------------------------------------------------------
    // Replay mode: one source file through the matrix, verbose result.
    // ------------------------------------------------------------------
    if (!replayFile.empty()) {
        std::ifstream in(replayFile);
        if (!in)
            return usage(("cannot read " + replayFile).c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        CaseReport rc = runCaseOnSource(ss.str(), replaySeed, cfg);
        std::printf("replay %s (seed %llu):\n", replayFile.c_str(),
                    static_cast<unsigned long long>(rc.seed));
        for (const std::string& o : rc.outcomes)
            std::printf("  %s\n", o.c_str());
        if (cfg.canary)
            std::printf("  canary: %s\n",
                        rc.canaryDetected ? "detected" : "MISSED");
        if (rc.violation()) {
            std::printf("  VIOLATION %s: %s\n", rc.category.c_str(),
                        rc.detail.c_str());
            return 1;
        }
        std::printf("  %s\n",
                    rc.inconclusive ? "inconclusive" : "clean");
        return 0;
    }

    // ------------------------------------------------------------------
    // Campaign: the seed range on a worker pool.
    // ------------------------------------------------------------------
    const size_t n = static_cast<size_t>(seedHi - seedLo + 1);
    std::vector<CaseReport> results(n);
    std::vector<char> skipped(n, 0);
    std::atomic<int64_t> violationCount{0};

    auto t0 = std::chrono::steady_clock::now();
    {
        ThreadPool pool(jobs);
        pool.parallelFor(n, [&](size_t i, int) {
            if (stopAfter > 0 &&
                violationCount.load(std::memory_order_relaxed) >=
                    stopAfter) {
                skipped[i] = 1;
                return;
            }
            results[i] = runCase(seedLo + i, cfg);
            if (results[i].violation())
                violationCount.fetch_add(1,
                                         std::memory_order_relaxed);
        });
    }
    auto elapsedMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // Aggregate.
    int64_t programs = 0, functions = 0, runs = 0, inconclusive = 0;
    int64_t skippedCount = 0, canariesCaught = 0;
    std::vector<int64_t> latencies;
    std::map<std::string, int64_t> histogram;
    std::vector<const CaseReport*> violations;
    for (size_t i = 0; i < n; ++i) {
        if (skipped[i]) {
            ++skippedCount;
            continue;
        }
        const CaseReport& rc = results[i];
        ++programs;
        functions += rc.functions;
        runs += rc.runs;
        if (rc.inconclusive)
            ++inconclusive;
        if (rc.canaryDetected)
            ++canariesCaught;
        if (rc.violation())
            violations.push_back(&rc);
        latencies.insert(latencies.end(), rc.latenciesUs.begin(),
                         rc.latenciesUs.end());
        for (const std::string& o : rc.outcomes)
            ++histogram[o];
    }
    std::sort(latencies.begin(), latencies.end());

    std::printf("cash-soak: %lld programs (%lld functions, %lld "
                "pipeline runs) in %lld ms\n",
                static_cast<long long>(programs),
                static_cast<long long>(functions),
                static_cast<long long>(runs),
                static_cast<long long>(elapsedMs));
    if (cfg.canary)
        std::printf("  canaries caught: %lld/%lld\n",
                    static_cast<long long>(canariesCaught),
                    static_cast<long long>(programs));
    std::printf("  violations: %zu, inconclusive: %lld, skipped: "
                "%lld\n",
                violations.size(),
                static_cast<long long>(inconclusive),
                static_cast<long long>(skippedCount));
    for (const auto& [label, count] : histogram)
        std::printf("  %-28s %lld\n", label.c_str(),
                    static_cast<long long>(count));

    // ------------------------------------------------------------------
    // Minimize + write reproducers.
    // ------------------------------------------------------------------
    int64_t minimized = 0;
    for (const CaseReport* v : violations) {
        std::printf("violation seed=%llu %s: %s\n",
                    static_cast<unsigned long long>(v->seed),
                    v->category.c_str(), v->detail.c_str());
        GenProgram prog = generateProgram(v->seed, profile);
        std::string orig = prog.render();
        std::string minSource;
        MinimizeStats stats;
        bool haveStats = false;
        if (minimize && minimized < minimizeCap) {
            std::string wantCategory = v->category;
            stats = minimizeProgram(
                &prog,
                [&](const std::string& src) {
                    return runCaseOnSource(src, v->seed, cfg)
                               .category == wantCategory;
                });
            minSource = prog.render();
            haveStats = true;
            ++minimized;
        }
        writeReproducer(corpusDir, *v, profileName, cfg.canary, orig,
                        minSource, haveStats ? &stats : nullptr);
    }

    // Canary acceptance artifact: the first *caught* canary is also
    // minimized, proving detection survives grammar reduction.
    if (cfg.canary && violations.empty() && minimize && programs > 0) {
        for (size_t i = 0; i < n; ++i) {
            if (skipped[i] || !results[i].canaryDetected)
                continue;
            const CaseReport& rc = results[i];
            GenProgram prog = generateProgram(rc.seed, profile);
            std::string orig = prog.render();
            MinimizeStats stats = minimizeProgram(
                &prog, [&](const std::string& src) {
                    return runCaseOnSource(src, rc.seed, cfg)
                        .canaryDetected;
                });
            writeReproducer(corpusDir, rc, profileName, true, orig,
                            prog.render(), &stats);
            break;
        }
    }

    // ------------------------------------------------------------------
    // BENCH_soak.json
    // ------------------------------------------------------------------
    benchutil::BenchReport report(reportName);
    report.meta("seeds", std::to_string(seedLo) + ".." +
                             std::to_string(seedHi));
    report.meta("profile", profileName);
    report.meta("mode", cfg.canary
                            ? "canary"
                            : (cfg.viaSocket.empty() ? "in-process"
                                                     : "via-socket"));
    report.meta("programs", programs);
    report.meta("functions", functions);
    report.meta("pipeline_runs", runs);
    report.meta("violations",
                static_cast<int64_t>(violations.size()));
    report.meta("inconclusive", inconclusive);
    report.meta("skipped", skippedCount);
    if (cfg.canary)
        report.meta("canaries_caught", canariesCaught);
    report.meta("elapsed_ms", elapsedMs);
    report.meta("funcs_per_sec",
                elapsedMs > 0 ? static_cast<double>(functions) *
                                    1000.0 /
                                    static_cast<double>(elapsedMs)
                              : 0.0);
    report.meta("latency_p50_us", percentile(latencies, 0.50));
    report.meta("latency_p99_us", percentile(latencies, 0.99));
    for (const auto& [label, count] : histogram) {
        benchutil::JsonRow row;
        row.emplace_back("outcome", label);
        row.emplace_back("count", count);
        report.addRow(std::move(row));
    }
    report.write();

    if (!violations.empty())
        return 1;
    if (cfg.canary && canariesCaught != programs)
        return 1;
    return 0;
}
